#!/usr/bin/env python3
"""Validate and gate the machine-readable artifacts the benches emit.

One entry point replaces the inline python blocks ci.sh used to carry:

    validate_bench.py local_sort BENCH_local_sort.json
    validate_bench.py exchange   BENCH_exchange.json
    validate_bench.py recovery   BENCH_recovery.json
    validate_bench.py histogram  BENCH_histogram.json
    validate_bench.py ledger     ledger.json [ledger2.json ...]

Kinds and their gates (unchanged from the historical ci.sh heredocs):
  local_sort  cell shape; the radix kernel must beat std::sort on uniform
              u64 at n = 2^20 (the wall-clock claim behind Auto dispatch).
  exchange    cell shape incl. per-round k-ary breakdowns; the pull path
              must beat packed by >= 1.3x on the u64 P=16 exchange
              superstep, and the best k-ary exchange must beat
              packed-alltoallv-plus-merge by >= 1.3x on u64 P=16.
  recovery    cell shape; fault-free checkpoint overhead <= 10% at
              P in {4, 8, 16}; ResumeCheckpoint beats RestartFull for
              crashes at or after the exchange superstep.
  histogram   cell shape of the PR 10 histogram-mode sweep
              (BENCH_histogram.json); every (dist, epsilon, P) cell
              carries all three modes; hybrid must cut histogram-phase
              sim time >= 1.2x AND probe volume vs dense on the canonical
              uniform u64 P=16 eps=0.01 cell, and may never regress the
              makespan by > 5% in any cell.
  ledger      hds-run-ledger schema check: versioned header, op-class /
              sample / feature cross-consistency, and the fit never losing
              to the probe surrogate (err2_fit <= err2_default).
  model-report  hds-model-report schema check (examples/model_check --json):
              the static matcher saw no schedule mismatches, every
              exploration ran clean and deterministic (byte-identical
              output, exact sim-time equality across interleavings), and
              every seeded protocol mutation was caught with a replayable
              counterexample.

Exit status: 0 OK, 1 gate failure or malformed artifact, 2 usage error.
No dependencies beyond the standard library.
"""

from __future__ import annotations

import json
import sys


def fail(msg: str) -> None:
    print(f"validate_bench: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def require(cond: bool, msg: str) -> None:
    if not cond:
        fail(msg)


def load(path: str):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")


def check_local_sort(path: str) -> None:
    cells = load(path)
    require(isinstance(cells, list) and bool(cells),
            f"{path}: empty or malformed JSON")
    for c in cells:
        for k in ("type", "n", "kernel", "seconds_median",
                  "speedup_vs_comparison"):
            require(k in c, f"missing field {k}: {c}")
    target = [c for c in cells
              if c["type"] == "u64" and c["n"] == 1 << 20 and
              c["kernel"] == "radix"]
    require(bool(target), "no u64 radix cell at n=2^20")
    speedup = target[0]["speedup_vs_comparison"]
    require(speedup > 1.0,
            f"radix lost to std::sort on u64 at 2^20: {speedup}x")
    print(f"perf smoke OK: radix {speedup:.2f}x faster than std::sort "
          "(u64, n=2^20)")


def check_exchange(path: str) -> None:
    cells = load(path)
    require(isinstance(cells, list) and bool(cells),
            f"{path}: empty or malformed JSON")
    for c in cells:
        for k in ("type", "nranks", "path", "phase", "n_per_rank",
                  "seconds_median", "speedup_vs_packed", "algo", "k"):
            require(k in c, f"missing field {k}: {c}")
        require(c["path"] in ("packed", "pull"), str(c))
        require(c["phase"] in ("exchange", "exchange+merge"), str(c))
        require(c["algo"] in ("alltoallv", "kary"), str(c))
        require(c["seconds_median"] > 0.0, str(c))
        if c["algo"] == "kary":
            require(c["k"] >= 2 and c["phase"] == "exchange+merge", str(c))
            require(bool(c.get("rounds")),
                    f"kary cell missing per-round breakdown: {c}")
            for r in c["rounds"]:
                require(r["exchange_s"] >= 0.0 and r["merge_s"] >= 0.0,
                        str(c))
        else:
            require(c["k"] == 0 and "rounds" not in c, str(c))
    target = [c for c in cells
              if c["type"] == "u64" and c["nranks"] == 16 and
              c["path"] == "pull" and c["phase"] == "exchange" and
              c["algo"] == "alltoallv"]
    require(bool(target), "no u64 P=16 pull exchange cell")
    speedup = target[0]["speedup_vs_packed"]
    require(speedup >= 1.3,
            f"pull path only {speedup:.2f}x vs packed on u64 P=16 exchange "
            "(< 1.3x)")
    print(f"perf gate OK: pull {speedup:.2f}x faster than packed "
          "(u64, P=16, exchange superstep)")
    kary = [c for c in cells
            if c["algo"] == "kary" and c["type"] == "u64" and
            c["nranks"] == 16]
    require(bool(kary), "no u64 P=16 kary cells")
    best = max(kary, key=lambda c: c["speedup_vs_packed"])
    require(best["speedup_vs_packed"] >= 1.3,
            f"best k-ary (k={best['k']}) only "
            f"{best['speedup_vs_packed']:.2f}x vs packed alltoallv on u64 "
            "P=16 exchange+merge (< 1.3x)")
    print(f"perf gate OK: k-ary k={best['k']} "
          f"{best['speedup_vs_packed']:.2f}x faster than packed alltoallv "
          "(u64, P=16, exchange+merge supersteps)")


def check_recovery(path: str) -> None:
    cells = load(path)
    require(isinstance(cells, list) and bool(cells),
            f"{path}: empty or malformed JSON")
    for c in cells:
        for k in ("kind", "nranks", "crash", "mode", "n_per_rank",
                  "sim_seconds", "vs_restart", "overhead_frac",
                  "recomputed_fraction", "recover_s", "attempts",
                  "checkpoint_bytes"):
            require(k in c, f"missing field {k}: {c}")
        require(c["kind"] in ("overhead", "crash"), str(c))
        require(c["sim_seconds"] > 0.0, str(c))
    ovh = [c for c in cells
           if c["kind"] == "overhead" and c["mode"] == "checkpointed"]
    require(len(ovh) == 3, "expected overhead cells at P in {4, 8, 16}")
    for c in ovh:
        require(c["overhead_frac"] <= 0.10,
                f"checkpoint overhead {c['overhead_frac']:.1%} > 10% "
                f"at P={c['nranks']}")
    for crash in ("exchange-begin", "exchange-end"):
        resume = [c for c in cells if c["kind"] == "crash"
                  and c["crash"] == crash and
                  c["mode"] == "ResumeCheckpoint"]
        require(bool(resume), f"no ResumeCheckpoint cell for {crash}")
        require(resume[0]["vs_restart"] > 1.0,
                f"resume did not beat restart at {crash}: "
                f"{resume[0]['vs_restart']:.2f}x")
        require(resume[0]["recomputed_fraction"] < 1.0, str(resume[0]))
    print("recovery gate OK: overhead <= 10% at P in {4,8,16}, resume "
          "beats restart at/after the exchange superstep")


def check_histogram(path: str) -> None:
    cells = load(path)
    require(isinstance(cells, list) and bool(cells),
            f"{path}: empty or malformed JSON")
    by_cell: dict[tuple, dict[str, dict]] = {}
    for c in cells:
        for k in ("type", "dist", "epsilon", "nranks", "mode", "iterations",
                  "sampled_rounds", "probes_total", "hist_bytes_sampled",
                  "hist_bytes_dense", "histogram_s", "makespan_s"):
            require(k in c, f"missing field {k}: {c}")
        require(c["mode"] in ("dense", "sampled", "hybrid"), str(c))
        require(c["histogram_s"] > 0.0 and c["makespan_s"] > 0.0, str(c))
        require(c["iterations"] >= 1, str(c))
        if c["mode"] == "dense":
            require(c["sampled_rounds"] == 0 and
                    c["hist_bytes_sampled"] == 0,
                    f"dense cell with sampled traffic: {c}")
        by_cell.setdefault(
            (c["dist"], c["epsilon"], c["nranks"]), {})[c["mode"]] = c
    for key, modes in by_cell.items():
        require(set(modes) == {"dense", "sampled", "hybrid"},
                f"cell {key} missing modes: has {sorted(modes)}")
        dense, hybrid = modes["dense"], modes["hybrid"]
        ratio = hybrid["makespan_s"] / dense["makespan_s"]
        require(ratio <= 1.05,
                f"hybrid regresses makespan {ratio:.2f}x at {key}")
    gated = by_cell.get(("uniform", 0.01, 16))
    require(gated is not None, "no uniform eps=0.01 P=16 cell")
    dense, hybrid = gated["dense"], gated["hybrid"]
    speedup = dense["histogram_s"] / hybrid["histogram_s"]
    require(speedup >= 1.2,
            f"hybrid histogram phase only {speedup:.2f}x vs dense on "
            "uniform u64 P=16 eps=0.01 (< 1.2x)")
    require(hybrid["probes_total"] < dense["probes_total"],
            f"hybrid probed {hybrid['probes_total']} candidates vs dense "
            f"{dense['probes_total']} on the gated cell")
    print(f"perf gate OK: hybrid histogram phase {speedup:.2f}x faster than "
          f"dense (u64 uniform, P=16, eps=0.01; probes "
          f"{hybrid['probes_total']} vs {dense['probes_total']}), makespan "
          f"within 5% on all {len(by_cell)} cells")


def check_ledger(path: str) -> None:
    led = load(path)
    require(isinstance(led, dict), f"{path}: not a JSON object")
    require(led.get("schema") == "hds-run-ledger",
            f"{path}: schema is {led.get('schema')!r}")
    require(led.get("version") == 1, f"{path}: unknown ledger version")
    for k in ("bench", "nranks", "makespan_s", "config", "machine",
              "phases", "phase_seconds", "op_classes", "samples",
              "timeline", "counters", "scalars"):
        require(k in led, f"{path}: missing key {k!r}")
    P = led["nranks"]
    require(isinstance(P, int) and P >= 1, f"{path}: bad nranks {P}")
    require(len(led["phase_seconds"]) in (0, P),
            f"{path}: phase_seconds has {len(led['phase_seconds'])} rows "
            f"for {P} ranks")
    nsamples = 0
    for name, st in led["op_classes"].items():
        for k in ("count", "bytes", "slice_s", "model_s", "max_slice_s"):
            require(k in st, f"{path}: op class {name} missing {k}")
        require(st["count"] > 0, f"{path}: op class {name} with count 0")
        # model charge never exceeds the slice span it was recorded in
        require(st["model_s"] <= st["slice_s"] + 1e-9,
                f"{path}: {name} model_s {st['model_s']} > slice_s "
                f"{st['slice_s']}")
        if name not in ("compute", "none"):
            nsamples += st["count"]
    require(len(led["samples"]) == nsamples,
            f"{path}: {len(led['samples'])} samples but op classes total "
            f"{nsamples}")
    for s in led["samples"]:
        require(len(s) == 4, f"{path}: malformed sample {s}")
    if "features" in led:
        ft = led["features"]
        require(ft["total_err2_fit"] <= ft["total_err2_default"] + 1e-18,
                f"{path}: fit lost to the probe surrogate "
                f"({ft['total_err2_fit']} > {ft['total_err2_default']})")
        for name, f in ft["classes"].items():
            require(f["err2_fit"] <= f["err2_default"] + 1e-18,
                    f"{path}: class {name} fit lost to the surrogate")
    print(f"ledger OK: {path} ({led['bench']}, P={P}, "
          f"{len(led['samples'])} samples, "
          f"{len(led['scalars'])} scalar cells)")


def check_model_report(path: str) -> None:
    rep = load(path)
    require(isinstance(rep, dict), f"{path}: not a JSON object")
    require(rep.get("schema") == "hds-model-report",
            f"{path}: schema is {rep.get('schema')!r}")
    require(rep.get("version") == 1, f"{path}: unknown model-report version")
    for k in ("matcher", "explorations", "mutations"):
        require(k in rep, f"{path}: missing key {k!r}")

    mt = rep["matcher"]
    for k in ("configs", "failures", "ops", "loans_opened", "loans_waited"):
        require(k in mt, f"{path}: matcher missing {k!r}")
    require(mt["configs"] >= 1, f"{path}: matcher ran no configurations")
    require(mt["failures"] == 0,
            f"{path}: static matcher found {mt['failures']} schedule "
            "mismatch(es)")
    require(mt["loans_waited"] == mt["loans_opened"],
            f"{path}: {mt['loans_opened'] - mt['loans_waited']} loan(s) "
            "not explicitly waited")

    require(len(rep["explorations"]) >= 1, f"{path}: no explorations")
    for ex in rep["explorations"]:
        for k in ("scenario", "nranks", "runs", "decisions", "deterministic",
                  "issues", "counterexample"):
            require(k in ex, f"{path}: exploration missing {k!r}")
        name = ex["scenario"]
        require(ex["runs"] >= 1, f"{path}: {name}: no runs executed")
        require(ex["deterministic"] is True,
                f"{path}: {name}: output/sim-time diverged across schedules")
        require(ex["issues"] == [],
                f"{path}: {name}: oracle violations: {ex['issues']}")

    require(len(rep["mutations"]) >= 3,
            f"{path}: only {len(rep['mutations'])} seeded mutation(s) "
            "exercised (need >= 3)")
    for mu in rep["mutations"]:
        for k in ("scenario", "mutation", "caught", "kind", "counterexample"):
            require(k in mu, f"{path}: mutation entry missing {k!r}")
        require(mu["caught"] is True,
                f"{path}: seeded mutation {mu['mutation']!r} on "
                f"{mu['scenario']!r} was NOT caught by the explorer")
        require(len(mu["counterexample"]) > 0,
                f"{path}: mutation {mu['mutation']!r} caught without a "
                "replayable counterexample")
    print(f"model-report OK: {path} (matcher configs={mt['configs']}, "
          f"{len(rep['explorations'])} exploration(s), "
          f"{len(rep['mutations'])} mutation(s) caught)")


KINDS = {
    "local_sort": check_local_sort,
    "exchange": check_exchange,
    "recovery": check_recovery,
    "histogram": check_histogram,
    "ledger": check_ledger,
    "model-report": check_model_report,
}


def main(argv: list[str]) -> int:
    if len(argv) < 3 or argv[1] not in KINDS:
        print(__doc__, file=sys.stderr)
        return 2
    for path in argv[2:]:
        KINDS[argv[1]](path)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
