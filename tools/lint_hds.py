#!/usr/bin/env python3
"""Repo-specific lint rules for hds (run by ci.sh; no dependencies).

Rules (see DESIGN.md sec. 10):
  comm-note-op       Every collective / point-to-point method body in
                     src/runtime/comm.h must route through collective() or
                     note_op() — the hook point the tracer, the watchdog's
                     mismatch detector, the fault injector, and the
                     hds::check race checker all piggyback on. An op that
                     skips it is invisible to all four.
  thread-primitives  std::thread / std::mutex / std::condition_variable
                     only inside src/runtime/, src/obs/ and src/check/
                     (the checker is inherently cross-thread). Algorithm
                     code must express concurrency through Comm, or the
                     simulated clocks stop meaning anything.
  seeded-rng         No std::random_device, rand() or srand() outside
                     src/common/rng.h. Every run must be reproducible from
                     config seeds (the determinism contract behind the
                     fault injector and the bit-identical-trace tests).
  no-naked-new       No naked new/delete in src/ — ownership goes through
                     containers and smart pointers ("= delete" declarations
                     are fine).
  comm-op-class      Every Comm op body must tag itself with an
                     obs::OpClass (or delegate to a helper that does) —
                     the class is what the run ledger's per-op-class
                     attribution and the differential profiler key on; an
                     untagged op would silently land in OpClass::None and
                     corrupt the calibration fit.
  opid-coverage      Every detail::OpId (= obs::OpKind) enum value must
                     appear as an explicit `case` in BOTH the race
                     checker's HB-edge table (shape_of in
                     src/check/race_detector.cpp) and the model checker's
                     transition table (transition_of in
                     src/model/transitions.h). A new op that reaches only
                     one of them would get happens-before semantics without
                     scheduling/matching semantics (or vice versa) and the
                     two verifiers would silently disagree.

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

# Directories whose code is allowed to use raw thread primitives: the
# simulator's rank harness itself, the tracer (locked merge of per-rank
# buffers), the race checker (a cross-thread observer by design), and the
# model checker (the controlled scheduler is the thread harness's harness).
THREAD_ALLOWLIST = ("src/runtime/", "src/obs/", "src/check/", "src/model/")

THREAD_PRIMITIVES = re.compile(
    r"\bstd::(thread|jthread|mutex|recursive_mutex|shared_mutex|"
    r"condition_variable|condition_variable_any)\b"
)
UNSEEDED_RNG = re.compile(r"\bstd::random_device\b|(?<![\w:])s?rand\s*\(")
NAKED_NEW = re.compile(r"\bnew\b(?!\s*[;,)\]])")
NAKED_DELETE = re.compile(r"(?<![=\w])\s*\b(delete)\b(?!\s*[;,)])")
DELETED_FN = re.compile(r"=\s*delete\b")

# Comm methods that perform a simulated operation and therefore must hit
# the note_op() hook (directly or via the collective() helper).
COMM_OP_METHODS = [
    "barrier",
    "broadcast",
    "allreduce",
    "allgather",
    "allgatherv",
    "sample_gatherv",
    "gatherv",
    "alltoall",
    "alltoallv",
    "alltoallv_into",
    "send",
    "send_borrowed",
    "send_uncharged",
    "recv",
    "recv_into",
    "recv_append",
    # Failure-recovery entry points (PR 6): the agreement rendezvous and
    # both checkpoint transfers are simulated operations too.
    "recover_survivors",
    "checkpoint_to_buddy",
    "fetch_checkpoint",
]

# A method body satisfies comm-note-op if it hits the hook directly or
# delegates to one of the internal helpers that do (the single-copy pull
# protocol and the shared P2P receive path).
NOTE_OP_HOOKS = (
    "collective(",
    "note_op(",
    "collective_pull(",
    "alltoallv_pull(",
    "alltoallv_pull<",
    "recv_bytes_into(",
)

# A body satisfies comm-op-class if it names the obs::OpClass it charges
# under, or delegates to an internal helper that does (those helpers'
# bodies name it themselves and are checked transitively).
OP_CLASS_HOOKS = (
    "OpClass::",
    "alltoallv_pull(",
    "alltoallv_pull<",
    "recv_bytes_into(",
    "scan_impl(",
)


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving line
    structure so finding line numbers stay correct."""
    out: list[str] = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if text.startswith("//", i):
            j = text.find("\n", i)
            j = n if j < 0 else j
            i = j
        elif text.startswith("/*", i):
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            out.extend(ch if ch == "\n" else " " for ch in text[i : j + 2])
            i = j + 2
        elif c in "\"'":
            quote = c
            out.append(" ")
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out.append("  ")
                    i += 2
                else:
                    out.append(" " if text[i] != "\n" else "\n")
                    i += 1
            out.append(" ")
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


def extract_method_body(text: str, name: str, start: int) -> tuple[int, str]:
    """Given `start` at a method name occurrence, return (open_brace_pos,
    body) of its definition, or (-1, '') if it is only a declaration."""
    # Find the parameter list's closing paren, then expect '{' before ';'.
    open_paren = text.find("(", start)
    if open_paren < 0:
        return -1, ""
    depth, i = 1, open_paren + 1
    while i < len(text) and depth:
        depth += {"(": 1, ")": -1}.get(text[i], 0)
        i += 1
    # Skip trailer (const, noexcept, template args) up to '{' or ';'.
    while i < len(text) and text[i] not in "{;":
        i += 1
    if i >= len(text) or text[i] == ";":
        return -1, ""
    brace, depth, j = i, 1, i + 1
    while j < len(text) and depth:
        depth += {"{": 1, "}": -1}.get(text[j], 0)
        j += 1
    return brace, text[brace + 1 : j - 1]


def check_comm_note_op(findings: list[str]) -> None:
    path = SRC / "runtime" / "comm.h"
    raw = path.read_text()
    text = strip_comments_and_strings(raw)
    for method in COMM_OP_METHODS:
        pattern = re.compile(
            r"(?:^|[ \t])(?:void|T|usize|std::vector<T>|Comm|BorrowToken"
            r"|std::optional<CheckpointBlob>)"
            r"\s+(%s)\s*\(" % re.escape(method),
            re.M,
        )
        found_def = False
        for m in pattern.finditer(text):
            brace, body = extract_method_body(text, method, m.start(1))
            if brace < 0:
                continue
            found_def = True
            if not any(hook in body for hook in NOTE_OP_HOOKS):
                findings.append(
                    f"{path.relative_to(REPO)}:{line_of(text, m.start(1))}: "
                    f"[comm-note-op] Comm::{method} does not call "
                    "collective()/note_op() (or a delegating helper) — "
                    "invisible to the tracer, watchdog, fault injector and "
                    "race checker"
                )
            if not any(hook in body for hook in OP_CLASS_HOOKS):
                findings.append(
                    f"{path.relative_to(REPO)}:{line_of(text, m.start(1))}: "
                    f"[comm-op-class] Comm::{method} carries no "
                    "obs::OpClass tag (directly or via a delegating "
                    "helper) — the op would land in OpClass::None and "
                    "corrupt the ledger's attribution and calibration fit"
                )
        if not found_def:
            findings.append(
                f"{path.relative_to(REPO)}: [comm-note-op] could not locate "
                f"a definition of Comm::{method} (lint parser out of date?)"
            )


def enum_values(header: str, enum_name: str) -> list[str]:
    """Names declared in `enum class <enum_name>` of a stripped header."""
    m = re.search(
        r"enum\s+class\s+%s\b[^{]*\{(.*?)\}\s*;" % re.escape(enum_name),
        header,
        re.S,
    )
    if not m:
        return []
    names = []
    for entry in m.group(1).split(","):
        entry = entry.split("=")[0].strip()
        if re.fullmatch(r"[A-Za-z_]\w*", entry):
            names.append(entry)
    return names


def check_opid_coverage(findings: list[str]) -> None:
    events = SRC / "obs" / "events.h"
    kinds = enum_values(strip_comments_and_strings(events.read_text()),
                        "OpKind")
    if not kinds:
        findings.append(
            f"{events.relative_to(REPO)}: [opid-coverage] could not parse "
            "enum class OpKind (lint parser out of date?)"
        )
        return
    tables = [
        (SRC / "check" / "race_detector.cpp", "shape_of"),
        (SRC / "model" / "transitions.h", "transition_of"),
    ]
    for path, fn in tables:
        if not path.is_file():
            findings.append(
                f"{path.relative_to(REPO)}: [opid-coverage] missing table "
                f"file (expected {fn})"
            )
            continue
        text = strip_comments_and_strings(path.read_text())
        fn_pos = text.find(fn)
        if fn_pos < 0:
            findings.append(
                f"{path.relative_to(REPO)}: [opid-coverage] could not "
                f"locate {fn}()"
            )
            continue
        _, body = extract_method_body(text, fn, fn_pos)
        for kind in kinds:
            if not re.search(
                r"case\s+(?:obs::)?OpKind::%s\b" % re.escape(kind), body
            ):
                findings.append(
                    f"{path.relative_to(REPO)}: [opid-coverage] "
                    f"OpKind::{kind} has no explicit case in {fn}() — every "
                    "op needs both an HB-edge shape and a model-checker "
                    "transition"
                )


def check_file_rules(findings: list[str]) -> None:
    for path in sorted(SRC.rglob("*.h")) + sorted(SRC.rglob("*.cpp")):
        rel = path.relative_to(REPO).as_posix()
        text = strip_comments_and_strings(path.read_text())

        if not rel.startswith(THREAD_ALLOWLIST):
            for m in THREAD_PRIMITIVES.finditer(text):
                findings.append(
                    f"{rel}:{line_of(text, m.start())}: [thread-primitives] "
                    f"{m.group(0)} outside {', '.join(THREAD_ALLOWLIST)} — "
                    "express concurrency through Comm"
                )

        if rel != "src/common/rng.h":
            for m in UNSEEDED_RNG.finditer(text):
                findings.append(
                    f"{rel}:{line_of(text, m.start())}: [seeded-rng] "
                    f"'{m.group(0).strip()}' outside src/common/rng.h — "
                    "all randomness must flow from config seeds"
                )

        for m in NAKED_NEW.finditer(text):
            findings.append(
                f"{rel}:{line_of(text, m.start())}: [no-naked-new] naked "
                "'new' — use containers or std::make_unique"
            )
        for m in NAKED_DELETE.finditer(text):
            if DELETED_FN.search(text, max(0, m.start() - 8), m.end()):
                continue  # deleted special member, not the operator
            findings.append(
                f"{rel}:{line_of(text, m.start(1))}: [no-naked-new] naked "
                "'delete' — ownership must not require manual delete"
            )


def main() -> int:
    if not SRC.is_dir():
        print(f"lint_hds: missing {SRC}", file=sys.stderr)
        return 2
    findings: list[str] = []
    check_comm_note_op(findings)
    check_opid_coverage(findings)
    check_file_rules(findings)
    for f in findings:
        print(f)
    n_files = len(list(SRC.rglob("*.h")) + list(SRC.rglob("*.cpp")))
    if findings:
        print(f"lint_hds: {len(findings)} finding(s) over {n_files} files")
        return 1
    print(f"lint_hds: OK ({n_files} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
