#!/usr/bin/env python3
"""Perf-history regression harness over run-ledger scalar cells.

The benches emit run ledgers (--ledger=FILE, schema hds-run-ledger); this
tool distills each ledger's scalar cells into one compact append-only
JSONL record and compares fresh runs against the committed baseline:

    perf_history.py distill --history BENCH_history.jsonl \\
        [--commit SHA] ledger.json [...]        # append baseline records
    perf_history.py check   --history BENCH_history.jsonl \\
        [--strict] [--tolerance 0.10] ledger.json [...]
    perf_history.py show    --history BENCH_history.jsonl  # dump table

Cell naming contract (see DESIGN.md sec. 14): scalars prefixed `sim_` are
deterministic simulated-time quantities — identical on every machine for a
given commit — and GATE the build when they regress by more than the
tolerance (default 10%) against the newest baseline record for the same
bench. Scalars prefixed `wall_` are wall-clock measurements; they vary
with host load, so they only WARN unless --strict is given.

Direction is inferred from the name: cells containing `speedup` or `vs_`
are higher-is-better; everything else (seconds, fractions, overheads) is
lower-is-better. Cells present only on one side are reported, never fatal
— adding a new cell must not require rewriting history.

Record schema (one JSON object per line):
    {"schema":"hds-perf-history","version":1,"commit":...,
     "bench":...,"nranks":...,"cells":{name:value,...}}

Exit status: 0 OK, 1 regression (or malformed input), 2 usage error.
No dependencies beyond the standard library.
"""

from __future__ import annotations

import argparse
import json
import sys

SCHEMA = "hds-perf-history"
VERSION = 1


def fail(msg: str) -> None:
    print(f"perf_history: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load_ledger(path: str) -> dict:
    try:
        with open(path) as f:
            led = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")
    if led.get("schema") != "hds-run-ledger":
        fail(f"{path}: not a run ledger (schema {led.get('schema')!r})")
    return led


def distill(led: dict, commit: str) -> dict:
    cells = {k: v for k, v in sorted(led["scalars"].items())
             if k.startswith(("sim_", "wall_"))}
    return {
        "schema": SCHEMA,
        "version": VERSION,
        "commit": commit,
        "bench": led["bench"],
        "nranks": led["nranks"],
        "cells": cells,
    }


def read_history(path: str) -> list[dict]:
    records = []
    try:
        with open(path) as f:
            for lineno, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError as e:
                    fail(f"{path}:{lineno}: {e}")
                if rec.get("schema") != SCHEMA or rec.get("version") != VERSION:
                    fail(f"{path}:{lineno}: not a {SCHEMA} v{VERSION} record")
                records.append(rec)
    except OSError as e:
        fail(f"{path}: {e}")
    return records


def baseline_for(records: list[dict], bench: str) -> dict | None:
    """Newest committed record for this bench (appends win)."""
    hit = None
    for rec in records:
        if rec["bench"] == bench:
            hit = rec
    return hit


def higher_is_better(name: str) -> bool:
    return "speedup" in name or "vs_" in name


def cmd_distill(args: argparse.Namespace) -> int:
    with open(args.history, "a") as out:
        for path in args.ledgers:
            rec = distill(load_ledger(path), args.commit)
            if not rec["cells"]:
                print(f"perf_history: note: {path} has no sim_/wall_ cells; "
                      "skipped")
                continue
            out.write(json.dumps(rec, sort_keys=True) + "\n")
            print(f"perf_history: appended {rec['bench']} "
                  f"({len(rec['cells'])} cells, commit {rec['commit']}) "
                  f"-> {args.history}")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    records = read_history(args.history)
    if not records:
        fail(f"{args.history}: no baseline records")
    regressions: list[str] = []
    warnings: list[str] = []
    for path in args.ledgers:
        rec = distill(load_ledger(path), commit="current")
        base = baseline_for(records, rec["bench"])
        if base is None:
            warnings.append(f"{rec['bench']}: no baseline record "
                            "(new bench? distill one)")
            continue
        for name, cur in rec["cells"].items():
            ref = base["cells"].get(name)
            if ref is None:
                warnings.append(f"{rec['bench']}.{name}: not in baseline")
                continue
            if not isinstance(ref, (int, float)) or abs(ref) < 1e-300:
                continue
            if higher_is_better(name):
                change = ref / cur - 1.0 if cur > 0 else float("inf")
            else:
                change = cur / ref - 1.0
            verdict = "ok"
            line = (f"{rec['bench']:<16} {name:<36} base {ref:<12.6g} "
                    f"now {cur:<12.6g} {change:+8.1%}")
            if change > args.tolerance:
                if name.startswith("sim_") or args.strict:
                    verdict = "REGRESSION"
                    regressions.append(line)
                else:
                    verdict = "warn (wall-clock)"
                    warnings.append(line)
            print(f"  {line}  {verdict}")
        missing = sorted(set(base["cells"]) - set(rec["cells"]))
        for name in missing:
            warnings.append(f"{rec['bench']}.{name}: in baseline but not "
                            "in this run")
    for w in warnings:
        print(f"perf_history: warn: {w}")
    if regressions:
        print(f"perf_history: {len(regressions)} regression(s) beyond "
              f"{args.tolerance:.0%} vs {args.history}:", file=sys.stderr)
        for r in regressions:
            print(f"  {r}", file=sys.stderr)
        return 1
    print(f"perf_history: OK ({len(args.ledgers)} ledger(s) vs "
          f"{args.history}, tolerance {args.tolerance:.0%})")
    return 0


def cmd_show(args: argparse.Namespace) -> int:
    for rec in read_history(args.history):
        print(f"{rec['bench']} @ {rec['commit']} (P={rec['nranks']})")
        for name, v in rec["cells"].items():
            print(f"  {name:<36} {v:.6g}")
    return 0


def main(argv: list[str]) -> int:
    top = argparse.ArgumentParser(description=__doc__)
    sub = top.add_subparsers(dest="cmd", required=True)

    p = sub.add_parser("distill", help="append baseline records")
    p.add_argument("--history", required=True)
    p.add_argument("--commit", default="unknown")
    p.add_argument("ledgers", nargs="+")
    p.set_defaults(fn=cmd_distill)

    p = sub.add_parser("check", help="compare ledgers vs baseline")
    p.add_argument("--history", required=True)
    p.add_argument("--strict", action="store_true",
                   help="gate wall_ cells too, not just sim_")
    p.add_argument("--tolerance", type=float, default=0.10)
    p.add_argument("ledgers", nargs="+")
    p.set_defaults(fn=cmd_check)

    p = sub.add_parser("show", help="dump the history table")
    p.add_argument("--history", required=True)
    p.set_defaults(fn=cmd_show)

    args = top.parse_args(argv[1:])
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
