#!/usr/bin/env bash
# CI entry point: lint + build + test across the configurations that matter
# for this repo:
#   - repo-specific lint (tools/lint_hds.py) and clang-tidy (when installed)
#   - the optimized config the benchmarks use
#   - ThreadSanitizer, because the runtime is std::thread-based (one OS
#     thread per simulated rank plus a watchdog) and data races would
#     otherwise only surface as flaky collectives
#   - AddressSanitizer + UndefinedBehaviorSanitizer, because the exchange
#     and kernel paths do manual buffer arithmetic TSan does not check
#   - the hds::check happens-before wall: histogram sort and all five
#     baselines must run violation-free at P in {4, 8, 16} (the ctest
#     suite covers this; the smoke below exercises the CLI path too)
#
# Usage: ./ci.sh [jobs]
set -euo pipefail
cd "$(dirname "$0")"

JOBS="${1:-$(nproc)}"

# --- lint wall (cheap; fail before any compile) ------------------------------
echo "=== lint: tools/lint_hds.py ==="
python3 tools/lint_hds.py

run_config() {
  local name="$1"; shift
  local dir="build-ci-${name}"
  echo "=== ${name}: configure ==="
  cmake -B "${dir}" -S . "$@" >/dev/null
  echo "=== ${name}: build ==="
  cmake --build "${dir}" -j "${JOBS}"
  echo "=== ${name}: ctest ==="
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}"
}

run_config relwithdebinfo \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -DHDS_WERROR=ON

# clang-tidy needs the compile database from the configure above. The CI
# image is gcc-only; when clang-tidy is absent the stage degrades to a
# notice rather than silently passing (the .clang-tidy profile is still
# exercised on any machine that has the tool).
echo "=== lint: clang-tidy ==="
if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -p build-ci-relwithdebinfo -quiet "$(pwd)/src/.*"
elif command -v clang-tidy >/dev/null 2>&1; then
  find src \( -name '*.cpp' -o -name '*.h' \) -print0 |
    xargs -0 -n 8 -P "${JOBS}" clang-tidy -p build-ci-relwithdebinfo --quiet
else
  echo "clang-tidy not installed; skipping (profile: .clang-tidy)"
fi

# Perf smoke: the radix kernel must beat std::sort on uniform u64 at
# n = 2^20 on whatever hardware CI runs on — this is the wall-clock claim
# the Auto crossover is built on. tools/validate_bench.py checks the JSON
# shape and applies the gate; the ledger feeds the perf-history stage below.
echo "=== perf smoke: bench_local_sort ==="
(cd build-ci-relwithdebinfo &&
  ./bench/bench_local_sort --max_exp=20 --reps=3 \
    --out=BENCH_local_sort.json --ledger=LEDGER_local_sort.json)
python3 tools/validate_bench.py local_sort \
  build-ci-relwithdebinfo/BENCH_local_sort.json

# Perf gate: the single-copy pull path must beat the packed path by >= 1.3x
# on the u64 P=16 exchange superstep (DESIGN.md sec. 11 — the copy-count
# argument this PR's data path is built on), and the best k-ary interleaved
# exchange must beat packed-alltoallv-plus-merge by >= 1.3x on the combined
# u64 P=16 exchange+merge supersteps (DESIGN.md sec. 13 — fewer copies and
# a single merge pass). The plain exchange+merge path cells are validated
# for shape but not gated: the merge does identical work on both paths, so
# its wall-clock only dilutes the copy delta.
echo "=== perf gate: bench_exchange ==="
(cd build-ci-relwithdebinfo &&
  ./bench/bench_exchange --reps=7 \
    --out=BENCH_exchange.json --ledger=LEDGER_exchange.json)
python3 tools/validate_bench.py exchange \
  build-ci-relwithdebinfo/BENCH_exchange.json

# Perf gate: hybrid sampled histogramming (DESIGN.md sec. 16) must cut the
# histogram-phase simulated time by >= 1.2x AND the probe volume vs the
# dense baseline on the canonical uniform u64 P=16 eps=0.01 cell, and may
# never regress the end-to-end makespan by more than 5% in any sweep cell
# (all distributions x epsilons x P). The sweep's headline numbers feed the
# perf-history stage through LEDGER_histogram.json.
echo "=== perf gate: bench_table_iterations histogram sweep ==="
(cd build-ci-relwithdebinfo &&
  ./bench/bench_table_iterations --skip-table \
    --out=BENCH_histogram.json --ledger=LEDGER_histogram.json)
python3 tools/validate_bench.py histogram \
  build-ci-relwithdebinfo/BENCH_histogram.json

# Trace smoke: a traced quickstart run must produce Chrome trace JSON whose
# per-rank slice durations reconcile exactly (<= 1e-9 relative) with the
# SimClock phase sums the runtime reports — the invariant the obs layer is
# built on (DESIGN.md sec. 9).
echo "=== trace smoke: quickstart --trace ==="
(cd build-ci-relwithdebinfo &&
  ./examples/quickstart --ranks=8 --keys-per-rank=20000 \
    --trace=trace_smoke.json >/dev/null)
python3 - build-ci-relwithdebinfo/trace_smoke.json <<'PYEOF'
import json, sys
from collections import defaultdict
d = json.load(open(sys.argv[1]))
hds = d["hds"]
P = hds["ranks"]
phases = hds["phases"]
assert P == 8, f"expected 8 ranks, got {P}"
slices = [e for e in d["traceEvents"] if e.get("ph") == "X"]
assert slices, "no complete events in trace"
assert {e["tid"] for e in slices} == set(range(P)), "missing rank tracks"
assert {e["cat"] for e in slices} <= set(phases), "unknown phase category"
sums = [defaultdict(float) for _ in range(P)]
for e in slices:
    sums[e["tid"]][e["cat"]] += e["dur"] / 1e6
worst = 0.0
for r in range(P):
    for p, name in enumerate(phases):
        clock = hds["clock_phase_seconds"][r][p]
        err = abs(sums[r][name] - clock) / max(1.0, abs(clock))
        worst = max(worst, err)
assert worst <= 1e-9, f"trace/clock mismatch: rel err {worst}"
print(f"trace smoke OK: {len(slices)} slices over {P} ranks, "
      f"worst reconciliation error {worst:.2e}")
PYEOF

# Check smoke: the quickstart under the happens-before checker must report
# zero PGAS consistency violations at every CI rank count (the ctest suite
# additionally covers all five baselines and the mutation tests that prove
# the checker notices elided barriers/fences).
echo "=== check smoke: quickstart --check ==="
for p in 4 8 16; do
  (cd build-ci-relwithdebinfo &&
    ./examples/quickstart --ranks="${p}" --keys-per-rank=5000 --check |
      tail -1)
done

# Model check (DESIGN.md sec. 15): the static schedule matcher over the
# full algorithm x exchange x data-path grid (plus the seeded
# collective-order swap that must FAIL the lint), then bounded
# schedule-space exploration of the histogram sort at P in {2, 3} and the
# mailbox/borrow/recovery micro-protocols at P = 4 — deadlock-freedom,
# quiescence, and byte-identical output + exact sim-time determinism over
# every explored interleaving — and the three seeded protocol mutations,
# each of which must be caught with a replayable counterexample. The
# report artifact is schema-gated by validate_bench.py. HDS_MODEL_DEEP=1
# switches exploration to exhaustive (no independence pruning) with a
# larger budget — hours, not minutes; the default budget is the CI gate.
echo "=== model check: static matcher + bounded exploration ==="
if [ "${HDS_MODEL_DEEP:-0}" = "1" ]; then
  (cd build-ci-relwithdebinfo &&
    ./examples/model_check --deep --max-runs=4096 \
      --json=model_report.json --schedule-out=model_counterexample.schedule)
else
  (cd build-ci-relwithdebinfo &&
    ./examples/model_check --max-runs=256 \
      --json=model_report.json --schedule-out=model_counterexample.schedule)
fi
python3 tools/validate_bench.py model-report \
  build-ci-relwithdebinfo/model_report.json
# The counterexample written for a seeded mutation must replay: quickstart
# re-runs the recorded schedule and exits 1 when the issue reproduces.
if (cd build-ci-relwithdebinfo &&
  ./examples/quickstart \
    --replay-schedule=model_counterexample.schedule); then
  echo "model check FAIL: counterexample schedule replayed clean" >&2
  exit 1
else
  echo "model check OK: counterexample reproduces under replay"
fi

# Fault matrix: every RecoveryMode must complete a correct sort through a
# crash, a straggler and a lossy network at P in {4, 8, 16} (quickstart's
# resilient path drives core::sort_resilient end-to-end; the crash schedule
# lands in the splitter/exchange supersteps, drops exercise the
# watchdog-driven retry path). quickstart exits non-zero if the output is
# not globally sorted or the fault budget is exhausted.
echo "=== fault matrix: quickstart --fault x --recovery ==="
for p in 4 8 16; do
  for mode in restart resume shrink; do
    echo "--- P=${p} mode=${mode}: crash / straggler / drop ---"
    (cd build-ci-relwithdebinfo &&
      ./examples/quickstart --ranks="${p}" --keys-per-rank=4000 \
        --fault=crash --fault-rank=1 --fault-op=12 \
        --recovery="${mode}" | head -1)
    (cd build-ci-relwithdebinfo &&
      ./examples/quickstart --ranks="${p}" --keys-per-rank=4000 \
        --straggle=0.25 --fault-rank=2 --fault-op=6 \
        --recovery="${mode}" | head -1)
    (cd build-ci-relwithdebinfo &&
      ./examples/quickstart --ranks="${p}" --keys-per-rank=4000 \
        --drop=0.01 --fault-seed=11 --recovery="${mode}" | head -1)
  done
done

# Recovery gate: BENCH_recovery.json must validate, fault-free checkpoint
# overhead must stay under 10%, and ResumeCheckpoint must beat RestartFull
# in total simulated time-to-solution for crashes at or after the exchange
# superstep (DESIGN.md sec. 12 — the point of checkpointing at all).
echo "=== recovery gate: bench_recovery ==="
(cd build-ci-relwithdebinfo &&
  ./bench/bench_recovery --out=BENCH_recovery.json \
    --ledger=LEDGER_recovery.json)
python3 tools/validate_bench.py recovery \
  build-ci-relwithdebinfo/BENCH_recovery.json

# Perf history: validate the run ledgers the benches above emitted, then
# compare their scalar cells against the committed BENCH_history.jsonl
# baseline. Deterministic simulated-time cells (sim_*) gate at 10%;
# wall-clock cells (wall_*) warn only — they vary with host load. To
# accept an intentional change, re-baseline with
#   python3 tools/perf_history.py distill --history BENCH_history.jsonl \
#     --commit "$(git rev-parse --short HEAD)" <ledgers...>
# and commit the appended records (append-only: history is never rewritten).
echo "=== perf history: ledgers vs BENCH_history.jsonl ==="
python3 tools/validate_bench.py ledger \
  build-ci-relwithdebinfo/LEDGER_local_sort.json \
  build-ci-relwithdebinfo/LEDGER_exchange.json \
  build-ci-relwithdebinfo/LEDGER_histogram.json \
  build-ci-relwithdebinfo/LEDGER_recovery.json
python3 tools/perf_history.py check --history BENCH_history.jsonl \
  build-ci-relwithdebinfo/LEDGER_local_sort.json \
  build-ci-relwithdebinfo/LEDGER_exchange.json \
  build-ci-relwithdebinfo/LEDGER_histogram.json \
  build-ci-relwithdebinfo/LEDGER_recovery.json

# TSan wants debug info and no aggressive inlining to produce usable
# reports; RelWithDebInfo (-O2 -g) is the supported sweet spot. Benchmarks
# are excluded — they only add build time and measure nothing under TSan.
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" run_config tsan \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -DHDS_SANITIZE=thread \
  -DHDS_BUILD_BENCH=OFF -DHDS_BUILD_EXAMPLES=OFF

# ASan catches the heap errors TSan does not look for (the exchange paths
# splice spans out of reusable buffers); UBSan catches signed overflow and
# bad shifts in the radix/bits code. Same RelWithDebInfo reasoning as TSan.
ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=1}" \
  run_config asan \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -DHDS_SANITIZE=address \
  -DHDS_BUILD_BENCH=OFF -DHDS_BUILD_EXAMPLES=OFF

UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}" \
  run_config ubsan \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -DHDS_SANITIZE=undefined \
  -DHDS_BUILD_BENCH=OFF -DHDS_BUILD_EXAMPLES=OFF

echo "=== CI: all configurations passed ==="
