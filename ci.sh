#!/usr/bin/env bash
# CI entry point: build + test in the two configurations that matter for
# this repo — the optimized config the benchmarks use, and ThreadSanitizer,
# because the runtime is std::thread-based (one OS thread per simulated
# rank plus a watchdog) and data races would otherwise only surface as
# flaky collectives.
#
# Usage: ./ci.sh [jobs]
set -euo pipefail
cd "$(dirname "$0")"

JOBS="${1:-$(nproc)}"

run_config() {
  local name="$1"; shift
  local dir="build-ci-${name}"
  echo "=== ${name}: configure ==="
  cmake -B "${dir}" -S . "$@" >/dev/null
  echo "=== ${name}: build ==="
  cmake --build "${dir}" -j "${JOBS}"
  echo "=== ${name}: ctest ==="
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}"
}

run_config relwithdebinfo \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -DHDS_WERROR=ON

# TSan wants debug info and no aggressive inlining to produce usable
# reports; RelWithDebInfo (-O2 -g) is the supported sweet spot. Benchmarks
# are excluded — they only add build time and measure nothing under TSan.
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" run_config tsan \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -DHDS_SANITIZE=thread \
  -DHDS_BUILD_BENCH=OFF -DHDS_BUILD_EXAMPLES=OFF

echo "=== CI: all configurations passed ==="
