// Tests for the thread-backed message-passing runtime: collectives against
// sequential oracles, split semantics, point-to-point, error propagation,
// and simulated-clock behaviour.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>

#include "common/rng.h"
#include "runtime/comm.h"
#include "runtime/global_vector.h"
#include "runtime/team.h"

namespace hds::runtime {
namespace {

using net::Phase;

TeamConfig small_cfg(int p) {
  TeamConfig cfg;
  cfg.nranks = p;
  return cfg;
}

TEST(Team, RunsEveryRankExactlyOnce) {
  Team team(small_cfg(8));
  std::atomic<int> count{0};
  std::array<std::atomic<int>, 8> per_rank{};
  team.run([&](Comm& c) {
    count.fetch_add(1);
    per_rank[c.rank()].fetch_add(1);
  });
  EXPECT_EQ(count.load(), 8);
  for (auto& pr : per_rank) EXPECT_EQ(pr.load(), 1);
}

TEST(Team, SizeAndRankConsistent) {
  Team team(small_cfg(5));
  team.run([&](Comm& c) {
    EXPECT_EQ(c.size(), 5);
    EXPECT_GE(c.rank(), 0);
    EXPECT_LT(c.rank(), 5);
    EXPECT_EQ(c.world_rank(), c.rank());
  });
}

TEST(Team, SingleRankWorks) {
  Team team(small_cfg(1));
  team.run([&](Comm& c) {
    EXPECT_EQ(c.allreduce_value<int>(41, std::plus<>{}), 41);
    c.barrier();
    EXPECT_EQ(c.broadcast_value(7, 0), 7);
  });
}

TEST(Team, ExceptionPropagatesAndUnblocksPeers) {
  Team team(small_cfg(6));
  EXPECT_THROW(team.run([&](Comm& c) {
                 if (c.rank() == 3) throw std::runtime_error("rank 3 died");
                 // Other ranks park in a collective and must be released.
                 c.barrier();
                 c.barrier();
               }),
               std::runtime_error);
  // The team must be reusable after an aborted run.
  team.run([&](Comm& c) { c.barrier(); });
}

TEST(Team, CheckFailureSurfacesAsInvariantError) {
  Team team(small_cfg(4));
  EXPECT_THROW(team.run([&](Comm& c) {
                 if (c.rank() == 0) HDS_CHECK(1 == 2);
                 c.barrier();
               }),
               invariant_error);
}

TEST(Collectives, BroadcastFromEveryRoot) {
  Team team(small_cfg(7));
  team.run([&](Comm& c) {
    for (int root = 0; root < c.size(); ++root) {
      std::vector<u64> data(5, c.rank() == root ? 100 + root : 0);
      c.broadcast(data.data(), data.size(), root);
      for (u64 v : data) EXPECT_EQ(v, 100u + root);
    }
  });
}

TEST(Collectives, AllreduceSumMinMax) {
  Team team(small_cfg(9));
  team.run([&](Comm& c) {
    const int r = c.rank();
    EXPECT_EQ(c.allreduce_value<i64>(r + 1, std::plus<>{}), 45);
    EXPECT_EQ(c.allreduce_value<i64>(r, [](i64 a, i64 b) {
      return std::min(a, b);
    }), 0);
    EXPECT_EQ(c.allreduce_value<i64>(r, [](i64 a, i64 b) {
      return std::max(a, b);
    }), 8);
  });
}

TEST(Collectives, AllreduceVector) {
  Team team(small_cfg(6));
  team.run([&](Comm& c) {
    std::vector<u64> in(16), out(16);
    for (usize i = 0; i < in.size(); ++i) in[i] = i * (c.rank() + 1);
    c.allreduce(in.data(), out.data(), in.size(), std::plus<>{});
    for (usize i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * 21);
  });
}

TEST(Collectives, AllgatherOrderedByRank) {
  Team team(small_cfg(8));
  team.run([&](Comm& c) {
    const std::array<int, 2> mine{c.rank(), c.rank() * 10};
    std::vector<int> all(2 * c.size());
    c.allgather(mine.data(), 2, all.data());
    for (int r = 0; r < c.size(); ++r) {
      EXPECT_EQ(all[2 * r], r);
      EXPECT_EQ(all[2 * r + 1], r * 10);
    }
  });
}

TEST(Collectives, AllgathervVariableSizes) {
  Team team(small_cfg(5));
  team.run([&](Comm& c) {
    std::vector<u32> mine(c.rank());  // rank r contributes r elements
    std::iota(mine.begin(), mine.end(), 100u * c.rank());
    std::vector<usize> counts;
    const auto all = c.allgatherv(std::span<const u32>(mine), &counts);
    ASSERT_EQ(counts.size(), 5u);
    usize off = 0;
    for (int r = 0; r < 5; ++r) {
      EXPECT_EQ(counts[r], static_cast<usize>(r));
      for (usize i = 0; i < counts[r]; ++i)
        EXPECT_EQ(all[off + i], 100u * r + i);
      off += counts[r];
    }
    EXPECT_EQ(all.size(), 10u);
  });
}

TEST(Collectives, GathervOnlyRootReceives) {
  Team team(small_cfg(4));
  team.run([&](Comm& c) {
    std::vector<u64> mine{static_cast<u64>(c.rank())};
    const auto got = c.gatherv(std::span<const u64>(mine), 2);
    if (c.rank() == 2) {
      ASSERT_EQ(got.size(), 4u);
      for (usize r = 0; r < 4; ++r) EXPECT_EQ(got[r], r);
    } else {
      EXPECT_TRUE(got.empty());
    }
  });
}

TEST(Collectives, AlltoallTransposes) {
  Team team(small_cfg(6));
  team.run([&](Comm& c) {
    const int P = c.size();
    std::vector<int> in(P), out(P);
    for (int d = 0; d < P; ++d) in[d] = c.rank() * 100 + d;
    c.alltoall(in.data(), 1, out.data());
    for (int s = 0; s < P; ++s) EXPECT_EQ(out[s], s * 100 + c.rank());
  });
}

TEST(Collectives, AlltoallvMovesExactSlices) {
  Team team(small_cfg(4));
  team.run([&](Comm& c) {
    const int P = c.size();
    // Rank r sends d+1 copies of value r*10+d to destination d.
    std::vector<u64> data;
    std::vector<usize> counts(P);
    for (int d = 0; d < P; ++d) {
      counts[d] = d + 1;
      for (usize i = 0; i < counts[d]; ++i)
        data.push_back(static_cast<u64>(c.rank() * 10 + d));
    }
    std::vector<usize> rcounts;
    const auto recv = c.alltoallv(std::span<const u64>(data), counts, &rcounts);
    ASSERT_EQ(rcounts.size(), static_cast<usize>(P));
    usize off = 0;
    for (int s = 0; s < P; ++s) {
      EXPECT_EQ(rcounts[s], static_cast<usize>(c.rank() + 1));
      for (usize i = 0; i < rcounts[s]; ++i)
        EXPECT_EQ(recv[off + i], static_cast<u64>(s * 10 + c.rank()));
      off += rcounts[s];
    }
  });
}

TEST(Collectives, AlltoallvEmptyContributions) {
  Team team(small_cfg(3));
  team.run([&](Comm& c) {
    std::vector<usize> counts(3, 0);
    std::vector<u64> data;
    if (c.rank() == 1) {
      counts = {2, 0, 1};
      data = {7, 7, 9};
    }
    std::vector<usize> rcounts;
    const auto recv = c.alltoallv(std::span<const u64>(data), counts, &rcounts);
    if (c.rank() == 0) {
      EXPECT_EQ(recv, (std::vector<u64>{7, 7}));
    } else if (c.rank() == 2) {
      EXPECT_EQ(recv, (std::vector<u64>{9}));
    } else {
      EXPECT_TRUE(recv.empty());
    }
  });
}

TEST(Collectives, ExscanAndScan) {
  Team team(small_cfg(8));
  team.run([&](Comm& c) {
    const u64 ex = c.exscan_value<u64>(c.rank() + 1, std::plus<>{}, 0);
    // exclusive prefix of 1..8: rank r gets sum of 1..r
    EXPECT_EQ(ex, static_cast<u64>(c.rank()) * (c.rank() + 1) / 2);
    const u64 in = c.scan_value<u64>(c.rank() + 1, std::plus<>{});
    EXPECT_EQ(in, static_cast<u64>(c.rank() + 1) * (c.rank() + 2) / 2);
  });
}

TEST(Collectives, MixedSequenceStress) {
  // Interleave many collective types to exercise the epoch double-buffering.
  Team team(small_cfg(7));
  team.run([&](Comm& c) {
    Xoshiro256 rng(99);  // same seed on all ranks: same op sequence
    u64 acc = 0;
    for (int round = 0; round < 50; ++round) {
      switch (rng() % 5) {
        case 0:
          acc += c.allreduce_value<u64>(c.rank(), std::plus<>{});
          break;
        case 1:
          acc += c.broadcast_value<u64>(round * 3, round % c.size());
          break;
        case 2: {
          std::vector<u64> all(c.size());
          const u64 mine = round + c.rank();
          c.allgather(&mine, 1, all.data());
          acc += all[round % c.size()];
          break;
        }
        case 3:
          c.barrier();
          break;
        case 4:
          acc += c.exscan_value<u64>(1, std::plus<>{}, 0);
          break;
      }
    }
    // Every rank must have seen identical collective results where the
    // result is rank-independent; sanity: reduce the accumulators.
    (void)c.allreduce_value<u64>(acc, std::plus<>{});
  });
}

TEST(Split, GroupsByColorOrderedByKey) {
  Team team(small_cfg(8));
  team.run([&](Comm& c) {
    // Even ranks -> color 0, odd -> color 1; key reverses order.
    Comm sub = c.split(c.rank() % 2, -c.rank());
    EXPECT_EQ(sub.size(), 4);
    // Reversed key: world rank 6 is member 0 of color 0.
    const int expected_idx = (7 - c.rank()) / 2;
    EXPECT_EQ(sub.rank(), expected_idx);
    // Collectives on the subcomm see only the subgroup.
    const int sum = sub.allreduce_value<int>(c.rank(), std::plus<>{});
    if (c.rank() % 2 == 0)
      EXPECT_EQ(sum, 0 + 2 + 4 + 6);
    else
      EXPECT_EQ(sum, 1 + 3 + 5 + 7);
  });
}

TEST(Split, RecursiveSplits) {
  Team team(small_cfg(8));
  team.run([&](Comm& c) {
    Comm half = c.split(c.rank() / 4, c.rank());
    Comm quarter = half.split(half.rank() / 2, half.rank());
    EXPECT_EQ(quarter.size(), 2);
    const int partner_sum =
        quarter.allreduce_value<int>(c.world_rank(), std::plus<>{});
    // Partners are adjacent world ranks {0,1},{2,3},...
    EXPECT_EQ(partner_sum, (c.world_rank() / 2) * 4 + 1);
  });
}

TEST(Split, SingletonColors) {
  Team team(small_cfg(4));
  team.run([&](Comm& c) {
    Comm solo = c.split(c.rank(), 0);
    EXPECT_EQ(solo.size(), 1);
    EXPECT_EQ(solo.allreduce_value<int>(c.rank() * 5, std::plus<>{}),
              c.rank() * 5);
  });
}

TEST(P2P, SendRecvRoundTrip) {
  Team team(small_cfg(4));
  team.run([&](Comm& c) {
    if (c.rank() == 0) {
      std::vector<u64> payload{1, 2, 3, 4, 5};
      c.send(3, /*tag=*/7, std::span<const u64>(payload));
    } else if (c.rank() == 3) {
      const auto got = c.recv<u64>(0, 7);
      EXPECT_EQ(got, (std::vector<u64>{1, 2, 3, 4, 5}));
    }
  });
}

TEST(P2P, TagAndSourceMatching) {
  Team team(small_cfg(3));
  team.run([&](Comm& c) {
    if (c.rank() == 0) {
      const std::vector<u32> a{10};
      const std::vector<u32> b{20};
      c.send(2, 1, std::span<const u32>(a));
      c.send(2, 2, std::span<const u32>(b));
    } else if (c.rank() == 1) {
      const std::vector<u32> x{30};
      c.send(2, 1, std::span<const u32>(x));
    } else {
      // Receive out of arrival order: tag 2 from 0, then tag 1 from 1,
      // then tag 1 from 0.
      EXPECT_EQ(c.recv<u32>(0, 2), (std::vector<u32>{20}));
      EXPECT_EQ(c.recv<u32>(1, 1), (std::vector<u32>{30}));
      EXPECT_EQ(c.recv<u32>(0, 1), (std::vector<u32>{10}));
    }
  });
}

TEST(SimClock, CollectivesSynchronizeClocks) {
  Team team(small_cfg(4));
  std::array<double, 4> after{};
  team.run([&](Comm& c) {
    // Rank 2 does extra local work; the barrier must drag everyone to it.
    if (c.rank() == 2) c.charge_seconds(1.0);
    c.barrier();
    after[c.rank()] = c.clock().now();
  });
  for (double t : after) EXPECT_GE(t, 1.0);
  // All ranks leave the collective at the same simulated instant.
  for (double t : after) EXPECT_DOUBLE_EQ(t, after[0]);
}

TEST(SimClock, ChargesAccumulatePhases) {
  Team team(small_cfg(2));
  team.run([&](Comm& c) {
    {
      net::PhaseScope p(c.clock(), Phase::LocalSort);
      c.charge_seconds(0.5);
    }
    {
      net::PhaseScope p(c.clock(), Phase::Exchange);
      c.charge_seconds(0.25);
    }
  });
  EXPECT_DOUBLE_EQ(team.stats().phase_seconds(Phase::LocalSort), 0.5);
  EXPECT_DOUBLE_EQ(team.stats().phase_seconds(Phase::Exchange), 0.25);
  EXPECT_GE(team.stats().makespan_s, 0.75);
}

TEST(SimClock, MakespanIsMaxOverRanks) {
  Team team(small_cfg(3));
  team.run([&](Comm& c) {
    c.charge_seconds(0.1 * (c.rank() + 1));
  });
  EXPECT_NEAR(team.stats().makespan_s, 0.3, 1e-12);
  EXPECT_NEAR(team.rank_time(0), 0.1, 1e-12);
  EXPECT_NEAR(team.rank_time(2), 0.3, 1e-12);
}

TEST(SimClock, LargerMessagesCostMore) {
  Team team(small_cfg(4));
  double t_small = 0.0, t_big = 0.0;
  team.run([&](Comm& c) {
    std::vector<u64> small_buf(8), big_buf(1 << 16);
    c.broadcast(small_buf.data(), small_buf.size(), 0);
    if (c.rank() == 0) t_small = c.clock().now();
    c.broadcast(big_buf.data(), big_buf.size(), 0);
    if (c.rank() == 0) t_big = c.clock().now() - t_small;
  });
  EXPECT_GT(t_big, t_small);
}

TEST(SimClock, DataScaleMultipliesDataTraffic) {
  auto run_alltoallv = [&](double scale) {
    TeamConfig cfg = small_cfg(4);
    cfg.data_scale = scale;
    Team team(cfg);
    double t = 0.0;
    team.run([&](Comm& c) {
      std::vector<u64> data(4096);
      std::vector<usize> counts(4, 1024);
      (void)c.alltoallv(std::span<const u64>(data), counts);
      if (c.rank() == 0) t = c.clock().now();
    });
    return t;
  };
  const double t1 = run_alltoallv(1.0);
  const double t100 = run_alltoallv(100.0);
  EXPECT_GT(t100, t1 * 20);  // beta term dominates and scales
}

TEST(GlobalVectorTest, LocalAccessAndIndex) {
  Team team(small_cfg(4));
  GlobalVector<u64> gv(4);
  team.run([&](Comm& c) {
    auto& mine = gv.local(c);
    mine.assign(c.rank() + 1, static_cast<u64>(c.rank()));
    gv.rebuild_index(c);
    EXPECT_EQ(gv.global_size(), 1u + 2 + 3 + 4);
    // locate: global index 0 is on rank 0; last index on rank 3.
    EXPECT_EQ(gv.locate(0).first, 0);
    EXPECT_EQ(gv.locate(9).first, 3);
    EXPECT_EQ(gv.locate(1).first, 1);
    c.barrier();
    // One-sided reads see every rank's data.
    EXPECT_EQ(gv.get(c, 0), 0u);
    EXPECT_EQ(gv.get(c, 6), 3u);
  });
}

TEST(GlobalVectorTest, PutWritesRemote) {
  Team team(small_cfg(2));
  GlobalVector<int> gv(2);
  team.run([&](Comm& c) {
    gv.local(c).assign(3, 0);
    gv.rebuild_index(c);
    c.barrier();
    if (c.rank() == 0) gv.put(c, 5, 42);  // last element of rank 1
    c.barrier();
    if (c.rank() == 1) {
      EXPECT_EQ(gv.local(c)[2], 42);
    }
  });
}

TEST(Machine, PlacementMapping) {
  const auto m = net::MachineModel::supermuc_phase2(4, 16);
  EXPECT_EQ(m.total_ranks(), 64);
  EXPECT_EQ(m.node_of(0), 0);
  EXPECT_EQ(m.node_of(15), 0);
  EXPECT_EQ(m.node_of(16), 1);
  EXPECT_EQ(m.node_of(63), 3);
  EXPECT_TRUE(m.same_node(0, 15));
  EXPECT_FALSE(m.same_node(15, 16));
  EXPECT_EQ(m.ranks_per_numa(), 4);
  EXPECT_TRUE(m.same_numa(0, 3));
  EXPECT_FALSE(m.same_numa(3, 4));
}

TEST(Machine, BandwidthHierarchy) {
  const auto m = net::MachineModel::supermuc_phase2(2, 8);
  EXPECT_GT(m.p2p_bandwidth(0, 1), m.p2p_bandwidth(0, 7));   // numa < memcpy
  EXPECT_GT(m.p2p_bandwidth(0, 7), m.p2p_bandwidth(0, 8));   // net < numa
  EXPECT_LT(m.p2p_latency(0, 7), m.p2p_latency(0, 8));
}

TEST(CostModel, CollectiveCostsGrowWithP) {
  const auto m = net::MachineModel::supermuc_phase2(64, 16);
  net::CostModel cm(m);
  EXPECT_LT(cm.allreduce(16, 1, 64, net::Traffic::Control),
            cm.allreduce(1024, 64, 64, net::Traffic::Control));
  EXPECT_LT(cm.barrier(4, 1), cm.barrier(1024, 64));
  EXPECT_LT(cm.allgather(16, 1, 8, net::Traffic::Control),
            cm.allgather(512, 32, 8, net::Traffic::Control));
}

TEST(CostModel, IntraNodeCheaperThanInterNode) {
  auto m = net::MachineModel::supermuc_phase2(16, 16);
  net::CostModel cm(m);
  // 16 ranks on one node vs 16 ranks spread over 16 nodes.
  EXPECT_LT(cm.allreduce(16, 1, 1024, net::Traffic::Control),
            cm.allreduce(16, 16, 1024, net::Traffic::Control));
}

TEST(CostModel, ShortcutAblationMakesIntraNodeMoreExpensive) {
  auto m = net::MachineModel::supermuc_phase2(1, 16);
  net::CostModel with(m);
  m.intra_node_shortcut = false;
  net::CostModel without(m);
  EXPECT_LT(with.allreduce(16, 1, 4096, net::Traffic::Control),
            without.allreduce(16, 1, 4096, net::Traffic::Control));
}

TEST(CostModel, ComputeCostsScale) {
  net::CostModel cm{net::MachineModel{}, 1.0};
  EXPECT_LT(cm.sort(1000), cm.sort(100000));
  EXPECT_LT(cm.merge_pass(1000), cm.merge_pass(10000));
  EXPECT_GT(cm.sort(100000), cm.linear_scan(100000));
  // data_scale multiplies computation.
  net::CostModel scaled{net::MachineModel{}, 64.0};
  EXPECT_GT(scaled.sort(1000), cm.sort(1000) * 32);
}

}  // namespace
}  // namespace hds::runtime
