// RunLedger and differential-profiler tests: ledger distillation from a
// traced sort (phase / op-class / counter reconciliation, model-charge
// invariants), deterministic JSON serialization, the least-squares fit
// never losing to the probe surrogate (test-enforced round-trip), the
// calibration export's clamping, and the enabled-but-empty trace edge case
// (valid exports, zero-sum Gini guard).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "core/histogram_sort.h"
#include "obs/features.h"
#include "obs/ledger.h"
#include "obs/report.h"
#include "runtime/comm.h"
#include "runtime/team.h"
#include "workload/distributions.h"

namespace hds {
namespace {

using runtime::Comm;
using runtime::Team;
using runtime::TeamConfig;

constexpr usize kKeysPerRank = 3000;

/// One traced histogram sort; the (Team, RunLedger) pair under test.
struct LedgeredRun {
  std::unique_ptr<Team> team;
  obs::RunLedger ledger;
  Team& tm() { return *team; }
};

LedgeredRun make_ledgered_sort(int P, u64 seed, core::SortConfig scfg = {}) {
  TeamConfig cfg;
  cfg.nranks = P;
  cfg.trace = true;
  LedgeredRun run{std::make_unique<Team>(cfg), {}};
  run.tm().run([&](Comm& c) {
    workload::GenConfig gen;
    gen.seed = seed;
    auto local =
        workload::generate_u64(gen, c.rank(), c.size(), kKeysPerRank);
    core::sort(c, local, scfg);
  });
  const obs::TraceReport* trace = run.tm().trace();
  EXPECT_NE(trace, nullptr);
  run.ledger = obs::RunLedger::from_trace(*trace, run.tm().cost());
  run.ledger.bench = "test";
  run.ledger.total_elements = static_cast<u64>(P) * kKeysPerRank;
  return run;
}

TEST(RunLedgerTest, DistillsTraceTotalsFaithfully) {
  const int P = 16;
  LedgeredRun run = make_ledgered_sort(P, 3);
  const obs::TraceReport& trace = *run.tm().trace();
  const obs::RunLedger& led = run.ledger;

  EXPECT_EQ(led.nranks, P);
  EXPECT_EQ(led.makespan_s, trace.makespan_s);
  ASSERT_EQ(led.phase_s.size(), static_cast<usize>(P));
  for (int r = 0; r < P; ++r)
    EXPECT_EQ(led.phase_s[static_cast<usize>(r)],
              trace.clock_phase_s[static_cast<usize>(r)]);

  // Op-class totals re-derived independently from the raw slices.
  std::array<u64, obs::kOpClassCount> count{}, bytes{};
  std::array<double, obs::kOpClassCount> slice_s{}, model_s{};
  usize samples = 0;
  for (const auto& evs : trace.events) {
    for (const obs::TraceEvent& e : evs) {
      const auto c = static_cast<usize>(e.cls);
      count[c] += 1;
      bytes[c] += e.bytes;
      slice_s[c] += e.t1 - e.t0;
      model_s[c] += e.model_s;
      if (e.cls != obs::OpClass::None && e.cls != obs::OpClass::Compute)
        ++samples;
    }
  }
  EXPECT_EQ(led.samples.size(), samples);
  ASSERT_GT(samples, 0u);
  for (usize c = 0; c < obs::kOpClassCount; ++c) {
    EXPECT_EQ(led.op_class[c].count, count[c]) << obs::op_class_name(
        static_cast<obs::OpClass>(c));
    EXPECT_EQ(led.op_class[c].bytes, bytes[c]);
    EXPECT_NEAR(led.op_class[c].slice_s, slice_s[c], 1e-12);
    EXPECT_NEAR(led.op_class[c].model_s, model_s[c], 1e-12);
  }
  // A real sort exercises the histogram allreduces and the data exchange.
  EXPECT_GT(led.op_class[static_cast<usize>(obs::OpClass::Tree)].count, 0u);
  EXPECT_GT(
      led.op_class[static_cast<usize>(obs::OpClass::Alltoall)].bytes, 0u);

  // Counters are summed over ranks.
  u64 iters = 0;
  for (int r = 0; r < P; ++r)
    iters += run.tm().metrics(r).value(obs::Counter::HistogramIterations);
  EXPECT_EQ(
      led.counters[static_cast<usize>(obs::Counter::HistogramIterations)],
      iters);

  // Timeline spans are phase-disjoint entries in start order, inside the
  // run's [0, makespan] window.
  ASSERT_FALSE(led.timeline.empty());
  double prev_t0 = -1.0;
  for (const obs::SuperstepSpan& s : led.timeline) {
    EXPECT_LE(s.t0, s.t1);
    EXPECT_GE(s.t0, prev_t0);
    EXPECT_LE(s.t1, led.makespan_s + 1e-12);
    prev_t0 = s.t0;
  }
}

TEST(RunLedgerTest, ModelChargeNeverExceedsSliceSpan) {
  LedgeredRun run = make_ledgered_sort(8, 5);
  ASSERT_FALSE(run.ledger.samples.empty());
  for (const obs::OpSample& s : run.ledger.samples) {
    EXPECT_LE(s.model_s, s.slice_s + 1e-12)
        << obs::op_class_name(s.cls) << " bytes=" << s.bytes;
    EXPECT_GE(s.model_s, 0.0);
  }
  // Receives are never charged by the model: their cost is all wait.
  for (const obs::OpSample& s : run.ledger.samples) {
    if (s.cls == obs::OpClass::Recv) {
      EXPECT_EQ(s.model_s, 0.0);
    }
  }
}

TEST(RunLedgerTest, JsonIsDeterministicAndVersioned) {
  auto serialize = [] {
    LedgeredRun run = make_ledgered_sort(8, 11);
    run.ledger.config = {{"key_type", "u64"}};
    run.ledger.scalars = {{"sim_makespan_s", run.ledger.makespan_s}};
    obs::attach_features(run.ledger, run.tm().cost());
    std::ostringstream os;
    run.ledger.write_json(os);
    return os.str();
  };
  const std::string a = serialize();
  EXPECT_EQ(a, serialize());
  EXPECT_NE(a.find("\"schema\":\"hds-run-ledger\""), std::string::npos);
  EXPECT_NE(a.find("\"version\":1"), std::string::npos);
  EXPECT_NE(a.find("\"machine\""), std::string::npos);
  EXPECT_NE(a.find("\"net_alpha_s\""), std::string::npos);
  EXPECT_NE(a.find("\"op_classes\""), std::string::npos);
  EXPECT_NE(a.find("\"samples\""), std::string::npos);
  EXPECT_NE(a.find("\"timeline\""), std::string::npos);
  EXPECT_NE(a.find("\"features\""), std::string::npos);
  EXPECT_NE(a.find("\"sim_makespan_s\""), std::string::npos);
}

// The acceptance round-trip: on a traced P=16 sort, the least-squares fit
// must not lose to the probe surrogate — per class and in total. The probe
// surrogate is itself a feasible linear predictor, so a correct fit can
// only tie or win; a regression here means the fit or the sampling broke.
TEST(DifferentialProfiler, FitReducesAttributionErrorVsDefaults) {
  LedgeredRun run = make_ledgered_sort(16, 17);
  obs::attach_features(run.ledger, run.tm().cost());
  const obs::CostFeatures& ft = run.ledger.features;
  ASSERT_GE(ft.fits.size(), 2u);  // tree + alltoall at minimum
  for (const obs::ClassFit& f : ft.fits) {
    EXPECT_LE(f.err2_fit, f.err2_default + 1e-18)
        << obs::op_class_name(f.cls);
    EXPECT_EQ(f.count,
              run.ledger.op_class[static_cast<usize>(f.cls)].count);
    EXPECT_EQ(f.bytes,
              run.ledger.op_class[static_cast<usize>(f.cls)].bytes);
    EXPECT_TRUE(std::isfinite(f.alpha_s));
    EXPECT_TRUE(std::isfinite(f.per_byte_s));
  }
  EXPECT_LE(ft.total_err2_fit, ft.total_err2_default + 1e-18);
  EXPECT_GT(ft.total_err2_default, 0.0);  // the default model is not exact

  // The attribution table reports every fitted class.
  const std::string table = obs::attribution_table(run.ledger);
  EXPECT_NE(table.find("P=16"), std::string::npos);
  for (const obs::ClassFit& f : ft.fits)
    EXPECT_NE(table.find(obs::op_class_name(f.cls)), std::string::npos);
}

TEST(DifferentialProfiler, ComputeFeaturesMatchPhaseComputeSeconds) {
  LedgeredRun run = make_ledgered_sort(8, 23);
  obs::attach_features(run.ledger, run.tm().cost());
  const obs::RunLedger& led = run.ledger;
  const double elems =
      static_cast<double>(led.total_elements) * led.data_scale;
  EXPECT_NEAR(
      led.features.radix_s_per_elem,
      led.compute_phase_s[static_cast<usize>(net::Phase::LocalSort)] / elems,
      1e-18);
  EXPECT_GT(led.features.radix_s_per_elem, 0.0);
  EXPECT_EQ(led.features.overlap_residue_charged,
            run.tm().cost().machine().merge_overlap_residue);
}

TEST(DifferentialProfiler, CalibrationJsonClampsToNonNegative) {
  LedgeredRun run = make_ledgered_sort(16, 29);
  obs::attach_features(run.ledger, run.tm().cost());
  std::ostringstream os;
  obs::write_calibration_json(os, run.ledger);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema\":\"hds-calibration\""), std::string::npos);
  EXPECT_NE(json.find("\"version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"radix_s_per_elem\":"), std::string::npos);
  // Clamping: no value may serialize as negative (exponents like "e-06"
  // are fine; a negative value would read ":-").
  EXPECT_EQ(json.find(":-"), std::string::npos)
      << "calibration must clamp fitted constants at zero:\n"
      << json;
}

// ---------------------------------------------------------------------------
// Enabled-but-empty traces: every export must stay well-formed.

TEST(EmptyTrace, ExportsAreValidAndGiniGuarded) {
  TeamConfig cfg;
  cfg.nranks = 4;
  cfg.trace = true;
  Team team(cfg);
  team.run([](Comm&) {});  // no ops, no clock advance

  const obs::TraceReport* trace = team.trace();
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(trace->total_events(), 0u);

  // Chrome JSON: rank metadata present, zero slices, structurally closed.
  std::ostringstream os;
  trace->write_chrome_json(os);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"rank 3\""), std::string::npos);
  EXPECT_EQ(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"hds\":{\"ranks\":4"), std::string::npos);
  const auto opens = std::count(json.begin(), json.end(), '{');
  const auto closes = std::count(json.begin(), json.end(), '}');
  EXPECT_EQ(opens, closes);

  // All-zero matrix: the Gini closed form must not divide by the zero sum.
  const obs::CommMatrix m = trace->comm_matrix();
  EXPECT_EQ(m.total(true), 0u);
  EXPECT_EQ(m.gini(), 0.0);
  EXPECT_FALSE(m.summary().empty());

  // The ledger of an empty run: no samples, zero tables, writable JSON,
  // and a fit pass that produces no class rows.
  obs::RunLedger led = obs::RunLedger::from_trace(*trace, team.cost());
  EXPECT_TRUE(led.samples.empty());
  EXPECT_TRUE(led.timeline.empty());
  obs::attach_features(led, team.cost());
  EXPECT_TRUE(led.features.fits.empty());
  EXPECT_EQ(led.features.total_err2_fit, 0.0);
  std::ostringstream ledger_os;
  led.write_json(ledger_os);
  EXPECT_NE(ledger_os.str().find("\"schema\":\"hds-run-ledger\""),
            std::string::npos);
  EXPECT_FALSE(obs::attribution_table(led).empty());
}

TEST(EmptyTrace, PartiallyShorterPerRankVectorsDoNotCrashExports) {
  // Defensive-export regression: a report whose per-rank vectors are
  // shorter than nranks (e.g. hand-assembled by tooling) must truncate
  // gracefully instead of reading out of bounds.
  obs::TraceReport trace;
  trace.nranks = 4;
  trace.makespan_s = 0.0;
  trace.events.resize(2);   // 2 of 4 ranks
  trace.details.resize(1);  // 1 of 4
  // clock_phase_s and metrics left empty entirely.
  std::ostringstream os;
  trace.write_chrome_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"name\":\"rank 3\""), std::string::npos);
  EXPECT_NE(json.find("\"clock_phase_seconds\":["), std::string::npos);
  const obs::CommMatrix m = trace.comm_matrix();
  EXPECT_EQ(m.nranks, 4);
  EXPECT_EQ(m.total(true), 0u);
  EXPECT_EQ(m.gini(), 0.0);
}

}  // namespace
}  // namespace hds
