// Fault-tolerance tests: deterministic fault injection (crash, straggler,
// message drop/delay), the release-mode collective-mismatch guard, the
// no-progress watchdog, retryable team runs, and the resilient end-to-end
// sort. These exercise every abort path in barrier.h / mailbox.h / team.cpp
// that the seed runtime had but never reached from tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <numeric>
#include <string>

#include "common/rng.h"
#include "core/histogram_sort.h"
#include "runtime/comm.h"
#include "runtime/fault.h"
#include "runtime/team.h"

namespace hds::runtime {
namespace {

TeamConfig cfg_with(int p, std::shared_ptr<FaultPlan> plan = nullptr,
                    double watchdog_s = 60.0) {
  TeamConfig cfg;
  cfg.nranks = p;
  cfg.fault = std::move(plan);
  cfg.watchdog_timeout_s = watchdog_s;
  return cfg;
}

// --- deterministic fault injection -----------------------------------------

TEST(FaultInjection, CrashAtOpKillsExactRankAndOp) {
  auto plan = std::make_shared<FaultPlan>();
  plan->crash_rank_at_op(2, 3);
  Team team(cfg_with(4, plan));
  try {
    team.run([&](Comm& c) {
      for (int i = 0; i < 10; ++i)
        (void)c.allreduce_value<int>(c.rank(), std::plus<>{});
    });
    FAIL() << "expected rank_failed";
  } catch (const rank_failed& e) {
    EXPECT_EQ(e.rank(), 2);
    EXPECT_EQ(e.op_index(), 3u);
    EXPECT_NE(std::string(e.what()).find("rank 2"), std::string::npos);
  }
  // The plan is one-shot: the same team runs clean afterwards.
  team.run([&](Comm& c) {
    EXPECT_EQ(c.allreduce_value<int>(1, std::plus<>{}), 4);
  });
}

TEST(FaultInjection, CrashUnblocksPeersParkedInCollective) {
  auto plan = std::make_shared<FaultPlan>();
  plan->crash_rank_at_op(0, 5);
  Team team(cfg_with(6, plan));
  std::atomic<int> aborted{0};
  EXPECT_THROW(team.run([&](Comm& c) {
                 try {
                   for (int i = 0; i < 10; ++i) c.barrier();
                 } catch (const team_aborted&) {
                   aborted.fetch_add(1);
                   throw;
                 }
               }),
               rank_failed);
  // Every surviving rank unwound via team_aborted rather than hanging.
  EXPECT_EQ(aborted.load(), 5);
}

TEST(FaultInjection, StragglerDelayShowsUpInSimClock) {
  auto plan = std::make_shared<FaultPlan>();
  plan->delay_rank_at_op(1, 0, 5.0);
  Team team(cfg_with(4, plan));
  team.run([&](Comm& c) { c.barrier(); });
  // The barrier drags every rank to the straggler's exit time.
  EXPECT_GE(team.stats().makespan_s, 5.0);
  for (int r = 0; r < 4; ++r) EXPECT_GE(team.rank_time(r), 5.0);
}

TEST(FaultInjection, DelayedMessageArrivesLate) {
  constexpr u64 kTag = 77;
  auto plan = std::make_shared<FaultPlan>();
  plan->delay_message(0, 1, kTag, 2.5);
  Team team(cfg_with(2, plan));
  double recv_clock = 0.0;
  team.run([&](Comm& c) {
    if (c.rank() == 0) {
      const std::vector<u64> payload{42};
      c.send(1, kTag, std::span<const u64>(payload));
    } else {
      EXPECT_EQ(c.recv<u64>(0, kTag), (std::vector<u64>{42}));
      recv_clock = c.clock().now();
    }
  });
  EXPECT_GE(recv_clock, 2.5);
}

TEST(FaultInjection, SeededRandomDropIsDeterministic) {
  // Identical seeds must make identical drop decisions; different seeds
  // must (with overwhelming probability over 64 draws) diverge. rearm()
  // resets the RNG stream so a re-armed plan replays the same schedule.
  auto decisions = [](u64 seed) {
    FaultPlan plan(seed);
    plan.drop_messages_with_probability(0.3);
    plan.begin_run(2);
    std::vector<bool> out;
    double d = 0.0;
    for (u64 i = 0; i < 64; ++i) out.push_back(plan.on_send(0, 1, i, &d));
    return out;
  };
  EXPECT_EQ(decisions(7), decisions(7));
  EXPECT_NE(decisions(7), decisions(8));

  FaultPlan plan(7);
  plan.drop_messages_with_probability(0.3);
  plan.begin_run(2);
  std::vector<bool> first;
  double d = 0.0;
  for (u64 i = 0; i < 64; ++i) first.push_back(plan.on_send(0, 1, i, &d));
  plan.rearm();
  for (u64 i = 0; i < 64; ++i)
    EXPECT_EQ(plan.on_send(0, 1, i, &d), first[i]);
}

TEST(FaultInjection, OpsObservedCountsCollectivesAndP2P) {
  auto plan = std::make_shared<FaultPlan>();
  Team team(cfg_with(2, plan));
  team.run([&](Comm& c) {
    c.barrier();                                            // op 0
    (void)c.allreduce_value<int>(1, std::plus<>{});         // op 1
    if (c.rank() == 0) {
      const std::vector<u32> v{9};
      c.send(1, 5, std::span<const u32>(v));                // op 2
    } else {
      (void)c.recv<u32>(0, 5);                              // op 2
    }
  });
  EXPECT_EQ(plan->ops_observed(0), 3u);
  EXPECT_EQ(plan->ops_observed(1), 3u);
}

// --- collective mismatch guard ---------------------------------------------

TEST(CollectiveGuard, MismatchedOpsProduceStructuredError) {
  Team team(cfg_with(4));
  try {
    team.run([&](Comm& c) {
      if (c.rank() == 3) {
        c.barrier();
      } else {
        (void)c.allreduce_value<int>(c.rank(), std::plus<>{});
      }
    });
    FAIL() << "expected collective_mismatch";
  } catch (const collective_mismatch& e) {
    const std::string what = e.what();
    // The report names both attempted ops and the offending rank.
    EXPECT_NE(what.find("Allreduce"), std::string::npos) << what;
    EXPECT_NE(what.find("Barrier"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 3"), std::string::npos) << what;
  }
  // The team stays usable after the abort.
  team.run([&](Comm& c) { c.barrier(); });
}

TEST(CollectiveGuard, MismatchDetectedOnSubcommunicator) {
  Team team(cfg_with(4));
  EXPECT_THROW(team.run([&](Comm& c) {
                 Comm half = c.split(c.rank() / 2, c.rank());
                 if (c.rank() == 0)
                   half.barrier();
                 else if (c.rank() == 1)
                   (void)half.allreduce_value<int>(1, std::plus<>{});
                 else
                   half.barrier();
               }),
               collective_mismatch);
}

// --- watchdog ----------------------------------------------------------------

TEST(Watchdog, RecvOnNeverSentTagAbortsWithDiagnostic) {
  Team team(cfg_with(3, nullptr, /*watchdog_s=*/0.3));
  try {
    team.run([&](Comm& c) {
      if (c.rank() == 1) (void)c.recv<u64>(0, /*tag=*/424242);
    });
    FAIL() << "expected watchdog_timeout";
  } catch (const watchdog_timeout& e) {
    const std::string what = e.what();
    // Diagnostic names the stuck rank and its waiting site.
    EXPECT_NE(what.find("rank 1"), std::string::npos) << what;
    EXPECT_NE(what.find("mailbox(src=0, tag=424242)"), std::string::npos)
        << what;
    EXPECT_NE(what.find("last_op=Recv"), std::string::npos) << what;
  }
  // Reusable afterwards.
  team.run([&](Comm& c) { c.barrier(); });
}

TEST(Watchdog, DroppedMessageBecomesTimeoutNotHang) {
  constexpr u64 kTag = 99;
  auto plan = std::make_shared<FaultPlan>();
  plan->drop_message(0, 1, kTag);
  Team team(cfg_with(2, plan, /*watchdog_s=*/0.3));
  try {
    team.run([&](Comm& c) {
      if (c.rank() == 0) {
        const std::vector<u64> payload{7};
        c.send(1, kTag, std::span<const u64>(payload));
      } else {
        (void)c.recv<u64>(0, kTag);
      }
    });
    FAIL() << "expected watchdog_timeout";
  } catch (const watchdog_timeout& e) {
    EXPECT_NE(std::string(e.what()).find("tag=99"), std::string::npos)
        << e.what();
  }
}

TEST(Watchdog, BarrierCountMismatchAborts) {
  // One rank skips the collective entirely: the barrier never fills, which
  // under MPI is an infinite hang. The watchdog converts it into an abort
  // that shows who is parked.
  Team team(cfg_with(3, nullptr, /*watchdog_s=*/0.3));
  try {
    team.run([&](Comm& c) {
      if (c.rank() != 2) c.barrier();
    });
    FAIL() << "expected watchdog_timeout";
  } catch (const watchdog_timeout& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("site=barrier"), std::string::npos) << what;
    EXPECT_NE(what.find("2/3 ranks parked"), std::string::npos) << what;
  }
}

TEST(Watchdog, DoesNotFireOnHealthyRuns) {
  Team team(cfg_with(4, nullptr, /*watchdog_s=*/0.5));
  team.run([&](Comm& c) {
    for (int i = 0; i < 100; ++i)
      (void)c.allreduce_value<int>(i, std::plus<>{});
  });
  // A second healthy run with the watchdog enabled also passes.
  team.run([&](Comm& c) { c.barrier(); });
}

// --- existing abort machinery (satellite coverage) ---------------------------

TEST(Abort, PeerParkedInMailboxPopIsPoisoned) {
  Team team(cfg_with(3, nullptr, /*watchdog_s=*/60.0));
  std::atomic<int> aborted{0};
  try {
    team.run([&](Comm& c) {
      if (c.rank() == 0) throw std::runtime_error("rank 0 died");
      try {
        (void)c.recv<u64>(0, 1);  // never sent: parks in Mailbox::pop
      } catch (const team_aborted&) {
        aborted.fetch_add(1);
        throw;
      }
    });
    FAIL() << "expected the original error";
  } catch (const std::runtime_error& e) {
    // The original exception is rethrown, not team_aborted.
    EXPECT_STREQ(e.what(), "rank 0 died");
  }
  EXPECT_EQ(aborted.load(), 2);
}

TEST(Abort, RerunAfterAbortHasFreshMailboxes) {
  constexpr u64 kTag = 31;
  Team team(cfg_with(2, nullptr, /*watchdog_s=*/0.3));
  // Run 1 leaves an undelivered message in rank 1's mailbox, then aborts.
  EXPECT_THROW(team.run([&](Comm& c) {
                 if (c.rank() == 0) {
                   const std::vector<u64> payload{1};
                   c.send(1, kTag, std::span<const u64>(payload));
                   throw std::runtime_error("boom");
                 }
                 c.barrier();
               }),
               std::runtime_error);
  // Run 2: the stale message must be gone — a recv on the same channel
  // times out instead of consuming leftovers from the aborted run.
  EXPECT_THROW(team.run([&](Comm& c) {
                 if (c.rank() == 1) (void)c.recv<u64>(0, kTag);
               }),
               watchdog_timeout);
  // And a clean run still works (barrier counts are back to zero).
  team.run([&](Comm& c) { c.barrier(); });
}

// --- retryable runs ----------------------------------------------------------

TEST(Retry, OneShotFaultSucceedsOnSecondAttempt) {
  auto plan = std::make_shared<FaultPlan>();
  plan->crash_rank_at_op(1, 2);
  Team team(cfg_with(4, plan));
  std::atomic<int> runs{0};
  RetryPolicy policy;
  policy.max_attempts = 3;
  const int attempts = team.run_with_retry(
      [&](Comm& c) {
        for (int i = 0; i < 5; ++i) c.barrier();
        if (c.rank() == 0) runs.fetch_add(1);
      },
      policy);
  EXPECT_EQ(attempts, 2);
  EXPECT_EQ(runs.load(), 1);  // only the successful attempt completed rank 0
}

TEST(Retry, ExhaustedAttemptsRethrowLastError) {
  auto plan = std::make_shared<FaultPlan>();
  // Three armed crashes at the same spot: every attempt dies.
  for (int i = 0; i < 3; ++i) plan->crash_rank_at_op(0, 1);
  Team team(cfg_with(2, plan));
  RetryPolicy policy;
  policy.max_attempts = 3;
  EXPECT_THROW(team.run_with_retry(
                   [&](Comm& c) {
                     c.barrier();
                     c.barrier();
                   },
                   policy),
               rank_failed);
}

TEST(Retry, BeforeAttemptRestoresState) {
  auto plan = std::make_shared<FaultPlan>();
  plan->crash_rank_at_op(0, 0);
  Team team(cfg_with(2, plan));
  std::vector<int> state;
  std::vector<int> attempts_seen;
  (void)team.run_with_retry(
      [&](Comm& c) {
        if (c.rank() == 0) state.push_back(1);
        c.barrier();
      },
      RetryPolicy{},
      [&](int attempt) {
        state.clear();
        attempts_seen.push_back(attempt);
      });
  EXPECT_EQ(state.size(), 1u);
  EXPECT_EQ(attempts_seen, (std::vector<int>{1, 2}));
}

// --- resilient end-to-end sort ----------------------------------------------

std::vector<std::vector<u64>> random_partitions(int p, usize per_rank,
                                                u64 seed) {
  std::vector<std::vector<u64>> parts(p);
  for (int r = 0; r < p; ++r) {
    Xoshiro256 rng(hash_mix(seed, r));
    parts[r].resize(per_rank);
    for (auto& v : parts[r]) v = rng();
  }
  return parts;
}

std::vector<u64> flatten_sorted(const std::vector<std::vector<u64>>& parts) {
  std::vector<u64> all;
  for (const auto& p : parts) all.insert(all.end(), p.begin(), p.end());
  std::sort(all.begin(), all.end());
  return all;
}

TEST(SortResilient, CleanRunSortsAndPreservesElements) {
  constexpr int P = 4;
  Team team(cfg_with(P));
  auto parts = random_partitions(P, 512, 11);
  const std::vector<u64> expected = flatten_sorted(parts);
  int attempts = 0;
  const core::SortStats stats = core::sort_resilient(
      team, parts, core::SortConfig{}, RetryPolicy{}, &attempts);
  EXPECT_EQ(attempts, 1);
  EXPECT_EQ(stats.elements_before, expected.size());
  EXPECT_EQ(stats.elements_after, expected.size());
  std::vector<u64> got;
  for (const auto& p : parts) {
    EXPECT_TRUE(std::is_sorted(p.begin(), p.end()));
    EXPECT_EQ(p.size(), 512u);  // perfect partitioning preserved
    got.insert(got.end(), p.begin(), p.end());
  }
  EXPECT_EQ(got, expected);
}

TEST(SortResilient, RecoversFromCrashAtEverySuperstepOp) {
  constexpr int P = 4;
  constexpr usize kPerRank = 96;
  const u64 seed = 23;

  // Probe run: count how many ops one full sort issues per rank, so the
  // crash sweep below covers every superstep (local sort, splitting,
  // exchange, merge) of core::sort.
  auto probe_plan = std::make_shared<FaultPlan>();
  u64 total_ops = 0;
  {
    Team team(cfg_with(P, probe_plan));
    auto parts = random_partitions(P, kPerRank, seed);
    (void)core::sort_resilient(team, parts);
    total_ops = probe_plan->ops_observed(1);
    ASSERT_GT(total_ops, 4u);
  }

  const auto original = random_partitions(P, kPerRank, seed);
  const std::vector<u64> expected = flatten_sorted(original);
  // Sweep the crash across every op index (capped stride keeps the test
  // fast if the op count grows); log nothing silently: every k is exact.
  const u64 stride = std::max<u64>(1, total_ops / 24);
  for (u64 k = 0; k < total_ops; k += stride) {
    auto plan = std::make_shared<FaultPlan>();
    plan->crash_rank_at_op(1, k);
    Team team(cfg_with(P, plan, /*watchdog_s=*/10.0));
    auto parts = original;
    int attempts = 0;
    (void)core::sort_resilient(team, parts, core::SortConfig{},
                               RetryPolicy{}, &attempts);
    EXPECT_EQ(attempts, 2) << "crash at op " << k;
    std::vector<u64> got;
    for (const auto& p : parts) got.insert(got.end(), p.begin(), p.end());
    EXPECT_EQ(got, expected) << "crash at op " << k;
  }
}

TEST(SortResilient, InputPreservedWhenAllAttemptsFail) {
  constexpr int P = 2;
  auto plan = std::make_shared<FaultPlan>();
  for (int i = 0; i < 4; ++i) plan->crash_rank_at_op(0, 2);
  Team team(cfg_with(P, plan));
  auto parts = random_partitions(P, 64, 3);
  const auto original = parts;
  RetryPolicy policy;
  policy.max_attempts = 2;
  EXPECT_THROW(core::sort_resilient(team, parts, core::SortConfig{}, policy),
               rank_failed);
  // The caller's partitions were never clobbered by a failed attempt.
  EXPECT_EQ(parts, original);
}

}  // namespace
}  // namespace hds::runtime
