// Tests for the histogramming multiselect (Alg. 2+3) and the data exchange
// (Alg. 4): splitter conditions of Def. 4, iteration bounds of Sec. V-A,
// permutation-matrix invariants, and tie refinement.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/rng.h"
#include "core/exchange.h"
#include "core/multiselect.h"
#include "runtime/team.h"
#include "workload/distributions.h"

namespace hds::core {
namespace {

using runtime::Comm;
using runtime::Team;

[[maybe_unused]] auto identity = [](const auto& v) { return v; };

/// Sorted shards for P ranks drawn from a workload distribution.
std::vector<std::vector<u64>> make_shards(int P, usize n_per_rank,
                                          workload::GenConfig cfg) {
  std::vector<std::vector<u64>> shards(P);
  for (int r = 0; r < P; ++r) {
    shards[r] = workload::generate_u64(cfg, r, P, n_per_rank);
    std::sort(shards[r].begin(), shards[r].end());
  }
  return shards;
}

/// Oracle check: for every boundary b, the resolved global boundary count
/// equals the target (eps == 0) and the splitter brackets it: the number of
/// keys strictly below the splitter is <= boundary <= number of keys <= it.
void check_splitters(int P, const std::vector<std::vector<u64>>& shards,
                     std::vector<usize> targets, MultiselectConfig cfg = {},
                     usize* iterations_out = nullptr) {
  std::vector<u64> all;
  for (const auto& s : shards) all.insert(all.end(), s.begin(), s.end());
  std::sort(all.begin(), all.end());
  const usize N = all.size();
  const double w = cfg.epsilon * static_cast<double>(N) / (2.0 * P);

  Team team({.nranks = P});
  SplitterResult<u64> result;
  team.run([&](Comm& c) {
    const auto& local = shards[c.rank()];
    auto res = find_splitters(c, std::span<const u64>(local), identity,
                              std::span<const usize>(targets), cfg);
    if (c.rank() == 0) result = res;
    // Per-rank postconditions: local bounds consistent with the local shard.
    for (usize b = 0; b < targets.size(); ++b) {
      EXPECT_LE(res.local_lb[b], res.local_ub[b]);
      EXPECT_LE(res.local_ub[b], local.size());
    }
  });

  if (iterations_out) *iterations_out = result.iterations;
  ASSERT_EQ(result.boundary.size(), targets.size());
  for (usize b = 0; b < targets.size(); ++b) {
    const usize B = result.boundary[b];
    if (cfg.epsilon == 0.0) {
      EXPECT_EQ(B, targets[b]) << "boundary " << b;
    } else {
      EXPECT_LE(std::abs(static_cast<double>(B) -
                         static_cast<double>(targets[b])),
                w + 1e-9)
          << "boundary " << b;
    }
    if (targets[b] == 0 || targets[b] == N) continue;
    // Splitter key brackets the boundary in the sorted oracle.
    const u64 s = result.splitter[b];
    const usize below =
        std::lower_bound(all.begin(), all.end(), s) - all.begin();
    const usize below_eq =
        std::upper_bound(all.begin(), all.end(), s) - all.begin();
    EXPECT_LE(below, B);
    EXPECT_LE(B, below_eq);
    EXPECT_EQ(result.global_lb[b], below);
    EXPECT_EQ(result.global_ub[b], below_eq);
  }
}

std::vector<usize> even_targets(int P, usize n_per_rank) {
  std::vector<usize> t(P - 1);
  for (int b = 0; b < P - 1; ++b) t[b] = (b + 1) * n_per_rank;
  return t;
}

TEST(Multiselect, UniformKeysPerfectPartition) {
  workload::GenConfig cfg;
  cfg.dist = workload::Dist::Uniform;
  const auto shards = make_shards(8, 1000, cfg);
  check_splitters(8, shards, even_targets(8, 1000));
}

TEST(Multiselect, NormalKeys) {
  workload::GenConfig cfg;
  cfg.dist = workload::Dist::Normal;
  const auto shards = make_shards(6, 800, cfg);
  check_splitters(6, shards, even_targets(6, 800));
}

TEST(Multiselect, StaircaseAdversarial) {
  workload::GenConfig cfg;
  cfg.dist = workload::Dist::Staircase;
  const auto shards = make_shards(7, 500, cfg);
  check_splitters(7, shards, even_targets(7, 500));
}

TEST(Multiselect, AllEqualKeysResolveViaTies) {
  workload::GenConfig cfg;
  cfg.dist = workload::Dist::AllEqual;
  const auto shards = make_shards(5, 400, cfg);
  usize iters = 0;
  check_splitters(5, shards, even_targets(5, 400), {}, &iters);
  // Equal keys cannot be separated by key bisection; ties resolve through
  // counts in very few rounds.
  EXPECT_LE(iters, 3u);
}

TEST(Multiselect, FewDistinctKeys) {
  workload::GenConfig cfg;
  cfg.dist = workload::Dist::FewDistinct;
  cfg.alphabet = 4;
  const auto shards = make_shards(9, 300, cfg);
  check_splitters(9, shards, even_targets(9, 300));
}

TEST(Multiselect, SparseEmptyRanks) {
  workload::GenConfig cfg;
  cfg.dist = workload::Dist::Uniform;
  std::vector<std::vector<u64>> shards = make_shards(6, 500, cfg);
  shards[1].clear();
  shards[4].clear();
  // Targets follow the capacities (prefix sums of shard sizes).
  std::vector<usize> targets;
  usize acc = 0;
  for (int r = 0; r + 1 < 6; ++r) {
    acc += shards[r].size();
    targets.push_back(acc);
  }
  check_splitters(6, shards, targets);
}

TEST(Multiselect, ArbitraryTargetsQuantiles) {
  workload::GenConfig cfg;
  cfg.dist = workload::Dist::Exponential;
  const auto shards = make_shards(4, 1000, cfg);
  check_splitters(4, shards, {1, 100, 2000, 3999});
}

TEST(Multiselect, TargetsAtZeroAndN) {
  workload::GenConfig cfg;
  const auto shards = make_shards(4, 250, cfg);
  check_splitters(4, shards, {0, 500, 1000});
  check_splitters(4, shards, {250, 500, 750});
}

TEST(Multiselect, EpsilonRelaxationWithinWindow) {
  workload::GenConfig cfg;
  const auto shards = make_shards(8, 2000, cfg);
  MultiselectConfig mcfg;
  mcfg.epsilon = 0.1;
  usize it_eps = 0, it_exact = 0;
  check_splitters(8, shards, even_targets(8, 2000), mcfg, &it_eps);
  check_splitters(8, shards, even_targets(8, 2000), {}, &it_exact);
  EXPECT_LE(it_eps, it_exact);
}

TEST(Multiselect, IterationCountBoundedByKeyWidth) {
  // Sec. V-A: iterations are bounded by the key width and independent of P.
  workload::GenConfig cfg;
  cfg.dist = workload::Dist::Uniform;
  cfg.hi = 1'000'000'000;  // ~2^30 distinct values -> ~30 iterations
  for (int P : {4, 16}) {
    const auto shards = make_shards(P, 512, cfg);
    usize iters = 0;
    check_splitters(P, shards, even_targets(P, 512), {}, &iters);
    EXPECT_GE(iters, 15u) << "P=" << P;
    EXPECT_LE(iters, 34u) << "P=" << P;
  }
}

TEST(Multiselect, NarrowKeyRangeConvergesFaster) {
  workload::GenConfig narrow, wide;
  narrow.hi = 255;  // 8-bit effective keys
  wide.hi = ~u64{0} >> 1;
  usize it_narrow = 0, it_wide = 0;
  check_splitters(4, make_shards(4, 800, narrow), even_targets(4, 800), {},
                  &it_narrow);
  check_splitters(4, make_shards(4, 800, wide), even_targets(4, 800), {},
                  &it_wide);
  EXPECT_LT(it_narrow, it_wide);
  EXPECT_LE(it_narrow, 10u);
}

TEST(Multiselect, SampledInitConvergesAndIsNoWorse) {
  workload::GenConfig cfg;
  const auto shards = make_shards(8, 1500, cfg);
  MultiselectConfig sampled;
  sampled.init = SplitterInit::Sampled;
  sampled.sample_per_rank = 32;
  usize it_sampled = 0, it_minmax = 0;
  check_splitters(8, shards, even_targets(8, 1500), sampled, &it_sampled);
  check_splitters(8, shards, even_targets(8, 1500), {}, &it_minmax);
  EXPECT_LT(it_sampled, it_minmax);
}

TEST(Multiselect, SampledInitSurvivesAdversarialSample) {
  // Staircase input: per-rank samples are clustered, so quantile brackets
  // are wrong for most boundaries; the fallback must still converge.
  workload::GenConfig cfg;
  cfg.dist = workload::Dist::Staircase;
  const auto shards = make_shards(6, 700, cfg);
  MultiselectConfig sampled;
  sampled.init = SplitterInit::Sampled;
  sampled.sample_per_rank = 4;
  check_splitters(6, shards, even_targets(6, 700), sampled);
}

TEST(Multiselect, SignedAndFloatKeys) {
  // Direct call with doubles including negatives.
  const int P = 4;
  std::vector<std::vector<double>> shards(P);
  Xoshiro256 rng(5);
  std::vector<double> all;
  for (auto& s : shards) {
    for (int i = 0; i < 500; ++i) s.push_back(rng.normal() * 1e6);
    std::sort(s.begin(), s.end());
    all.insert(all.end(), s.begin(), s.end());
  }
  std::sort(all.begin(), all.end());
  std::vector<usize> targets = {500, 1000, 1500};
  Team team({.nranks = P});
  team.run([&](Comm& c) {
    const auto& local = shards[c.rank()];
    auto res = find_splitters(c, std::span<const double>(local), identity,
                              std::span<const usize>(targets));
    for (usize b = 0; b < 3; ++b) EXPECT_EQ(res.boundary[b], targets[b]);
  });
}

// ---------------------------------------------------------------------------
// Hybrid sampled histogramming (HSS-style rounds folded into the search).
// ---------------------------------------------------------------------------

/// find_splitters under `cfg`; the (replicated) result taken from rank 0.
SplitterResult<u64> run_mode(int P, const std::vector<std::vector<u64>>& shards,
                             const std::vector<usize>& targets,
                             MultiselectConfig cfg) {
  Team team({.nranks = P});
  SplitterResult<u64> result;
  team.run([&](Comm& c) {
    auto res = find_splitters(c, std::span<const u64>(shards[c.rank()]),
                              identity, std::span<const usize>(targets), cfg);
    if (c.rank() == 0) result = res;
  });
  return result;
}

TEST(HistogramModes, IdenticalSplittersAtEpsilonZero) {
  // Def. 4 with eps = 0 admits exactly one splitter key per boundary — the
  // key whose tie class contains the target rank — so all three modes must
  // land on the same key, boundary, and global bracket on every
  // distribution, no matter how the sampled rounds narrowed the search.
  constexpr int P = 16;
  constexpr usize n = 256;
  struct DistCase {
    const char* name;
    workload::Dist dist;
  };
  const DistCase dists[] = {
      {"uniform", workload::Dist::Uniform},
      {"zipf", workload::Dist::Zipf},
      {"fewdistinct", workload::Dist::FewDistinct},
      {"allequal", workload::Dist::AllEqual},
  };
  for (const DistCase& d : dists) {
    SCOPED_TRACE(d.name);
    workload::GenConfig gen;
    gen.dist = d.dist;
    const auto shards = make_shards(P, n, gen);
    const auto targets = even_targets(P, n);
    MultiselectConfig cfg;
    cfg.histogram = HistogramMode::Dense;
    const auto dense = run_mode(P, shards, targets, cfg);
    EXPECT_EQ(dense.sampled_rounds, 0u);
    EXPECT_EQ(dense.hist_bytes_sampled, 0u);
    for (HistogramMode m : {HistogramMode::Sampled, HistogramMode::Hybrid}) {
      SCOPED_TRACE(m == HistogramMode::Sampled ? "sampled" : "hybrid");
      cfg.histogram = m;
      check_splitters(P, shards, targets, cfg);  // Def. 4 oracle validity
      const auto res = run_mode(P, shards, targets, cfg);
      EXPECT_EQ(res.splitter, dense.splitter);
      EXPECT_EQ(res.boundary, dense.boundary);
      EXPECT_EQ(res.global_lb, dense.global_lb);
      EXPECT_EQ(res.global_ub, dense.global_ub);
    }
  }
}

TEST(HistogramModes, EpsilonWindowHoldsAcrossModes) {
  constexpr int P = 16;
  constexpr usize n = 256;
  for (workload::Dist d : {workload::Dist::Uniform, workload::Dist::Zipf,
                           workload::Dist::FewDistinct}) {
    workload::GenConfig gen;
    gen.dist = d;
    const auto shards = make_shards(P, n, gen);
    for (HistogramMode m : {HistogramMode::Dense, HistogramMode::Sampled,
                            HistogramMode::Hybrid}) {
      MultiselectConfig cfg;
      cfg.histogram = m;
      cfg.epsilon = 0.1;
      check_splitters(P, shards, even_targets(P, n), cfg);
    }
  }
}

TEST(HistogramModes, HybridConvergesFasterOnUniform) {
  // The point of the sampled rounds: on a uniform key space the sampled CDF
  // shrinks every bracket multiplicatively per round, so the hybrid resolves
  // in a handful of rounds where dense bisection needs ~log2(key range), and
  // moves strictly fewer probe counts through the allreduce.
  constexpr int P = 16;
  constexpr usize n = 1024;
  workload::GenConfig gen;
  gen.dist = workload::Dist::Uniform;
  const auto shards = make_shards(P, n, gen);
  const auto targets = even_targets(P, n);
  const auto dense = run_mode(P, shards, targets, {});
  MultiselectConfig hcfg;
  hcfg.histogram = HistogramMode::Hybrid;
  const auto hybrid = run_mode(P, shards, targets, hcfg);
  EXPECT_GT(hybrid.sampled_rounds, 0u);
  EXPECT_GT(hybrid.sample_keys_total, 0u);
  EXPECT_GT(hybrid.hist_bytes_sampled, 0u);
  EXPECT_LT(hybrid.iterations, dense.iterations);
  EXPECT_LT(hybrid.probes_total, dense.probes_total);
  EXPECT_LT(hybrid.hist_bytes_dense, dense.hist_bytes_dense);
  // One per-round entry per executed round, sampled rounds included.
  EXPECT_EQ(hybrid.round_probes.size(), hybrid.iterations);
  EXPECT_EQ(dense.round_probes.size(), dense.iterations);
}

TEST(HistogramModes, SampledStallsFallBackToDenseOnAllEqual) {
  // An all-equal key space gives the sampler nothing to narrow: every
  // sampled key is the same, the per-round mass cannot shrink, and the
  // stall detector must hand over to dense count refinement, which resolves
  // ties through counts in very few rounds (cf. AllEqualKeysResolveViaTies).
  constexpr int P = 8;
  workload::GenConfig gen;
  gen.dist = workload::Dist::AllEqual;
  const auto shards = make_shards(P, 400, gen);
  MultiselectConfig cfg;
  cfg.histogram = HistogramMode::Hybrid;
  usize iters = 0;
  check_splitters(P, shards, even_targets(P, 400), cfg, &iters);
  EXPECT_LE(iters, 5u);
}

TEST(HistogramModes, OversampleKnobIsHonoured) {
  // A larger oversampling factor gathers more keys per sampled round.
  constexpr int P = 8;
  workload::GenConfig gen;
  const auto shards = make_shards(P, 512, gen);
  const auto targets = even_targets(P, 512);
  MultiselectConfig lo, hi;
  lo.histogram = hi.histogram = HistogramMode::Hybrid;
  lo.oversample = 4;
  hi.oversample = 32;
  const auto small = run_mode(P, shards, targets, lo);
  const auto big = run_mode(P, shards, targets, hi);
  ASSERT_GT(small.sampled_rounds, 0u);
  ASSERT_GT(big.sampled_rounds, 0u);
  EXPECT_GT(big.sample_keys_total / big.sampled_rounds,
            small.sample_keys_total / small.sampled_rounds);
}

// ---------------------------------------------------------------------------
// Exchange (Alg. 4).
// ---------------------------------------------------------------------------

/// Full splitting + exchange; verifies the permutation invariants.
void check_exchange(int P, std::vector<std::vector<u64>> shards,
                    double epsilon = 0.0) {
  for (auto& s : shards) std::sort(s.begin(), s.end());
  std::vector<usize> capacities;
  std::vector<usize> targets;
  usize acc = 0;
  for (int r = 0; r < P; ++r) capacities.push_back(shards[r].size());
  for (int r = 0; r + 1 < P; ++r) {
    acc += capacities[r];
    targets.push_back(acc);
  }
  std::vector<u64> all;
  for (const auto& s : shards) all.insert(all.end(), s.begin(), s.end());
  std::sort(all.begin(), all.end());
  const usize N = all.size();

  std::vector<std::vector<u64>> out(P);
  Team team({.nranks = P});
  team.run([&](Comm& c) {
    const auto& local = shards[c.rank()];
    MultiselectConfig mcfg;
    mcfg.epsilon = epsilon;
    const auto sp = find_splitters(c, std::span<const u64>(local), identity,
                                   std::span<const usize>(targets), mcfg);
    auto ex = exchange(c, std::span<const u64>(local), sp);
    // Received chunk structure is consistent.
    usize sum = 0;
    for (usize cnt : ex.recv_counts) sum += cnt;
    EXPECT_EQ(sum, ex.data.size());
    std::sort(ex.data.begin(), ex.data.end());
    out[c.rank()] = std::move(ex.data);
  });

  // Global content is a permutation of the input.
  std::vector<u64> merged;
  for (const auto& o : out) merged.insert(merged.end(), o.begin(), o.end());
  std::sort(merged.begin(), merged.end());
  EXPECT_EQ(merged, all);

  // Partition boundaries respect global order.
  for (int r = 0; r + 1 < P; ++r) {
    if (out[r].empty() || out[r + 1].empty()) continue;
    EXPECT_LE(out[r].back(), out[r + 1].front());
  }

  if (epsilon == 0.0) {
    // Perfect partitioning: output sizes equal input capacities.
    for (int r = 0; r < P; ++r)
      EXPECT_EQ(out[r].size(), capacities[r]) << "rank " << r;
  } else {
    const double cap = static_cast<double>(N) / P * (1.0 + epsilon);
    for (int r = 0; r < P; ++r)
      EXPECT_LE(static_cast<double>(out[r].size()), cap + 1e-9);
  }
}

TEST(Exchange, UniformPerfectPartition) {
  workload::GenConfig cfg;
  check_exchange(6, make_shards(6, 700, cfg));
}

TEST(Exchange, AllEqualTiesSplitByCounts) {
  workload::GenConfig cfg;
  cfg.dist = workload::Dist::AllEqual;
  check_exchange(5, make_shards(5, 300, cfg));
}

TEST(Exchange, ZipfHeavyDuplicates) {
  workload::GenConfig cfg;
  cfg.dist = workload::Dist::Zipf;
  check_exchange(8, make_shards(8, 600, cfg));
}

TEST(Exchange, UnevenCapacities) {
  Xoshiro256 rng(17);
  std::vector<std::vector<u64>> shards(5);
  for (int r = 0; r < 5; ++r)
    for (int i = 0; i < 100 * (r + 1); ++i) shards[r].push_back(rng());
  check_exchange(5, shards);
}

TEST(Exchange, SparseEmptyShards) {
  Xoshiro256 rng(19);
  std::vector<std::vector<u64>> shards(6);
  for (int r : {0, 3, 5})
    for (int i = 0; i < 400; ++i) shards[r].push_back(rng() % 1000);
  check_exchange(6, shards);
}

TEST(Exchange, EpsilonBalanced) {
  workload::GenConfig cfg;
  check_exchange(8, make_shards(8, 1000, cfg), 0.05);
}

TEST(Exchange, SendCountsSumToLocalSize) {
  workload::GenConfig cfg;
  const int P = 4;
  auto shards = make_shards(P, 512, cfg);
  std::vector<usize> targets = even_targets(P, 512);
  Team team({.nranks = P});
  team.run([&](Comm& c) {
    const auto& local = shards[c.rank()];
    const auto sp = find_splitters(c, std::span<const u64>(local), identity,
                                   std::span<const usize>(targets));
    const auto send = compute_send_counts(c, local.size(), sp);
    usize total = 0;
    for (usize s : send) total += s;
    EXPECT_EQ(total, local.size());
  });
}

TEST(Exchange, NLessThanP) {
  // Fewer elements than ranks: most partitions end up empty.
  std::vector<std::vector<u64>> shards(8);
  shards[2] = {42, 7};
  shards[6] = {99};
  check_exchange(8, shards);
}

TEST(Exchange, EmptyGlobalInput) {
  std::vector<std::vector<u64>> shards(4);
  check_exchange(4, shards);
}

}  // namespace
}  // namespace hds::core
