// Observability attribution of the k-ary interleaved exchange (PR 7):
// the traced per-round payload matrices must reconcile send-vs-receive and
// with the trace's communication matrix, KAryRoundTrace::comm_s must cover
// the round's charged send costs, the overlapped tail merge must land in
// the Merge phase (not hide inside Exchange), and the traced slices must
// reconcile with the SimClock phase sums across the k x P grid.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <span>
#include <vector>

#include "common/rng.h"
#include "core/exchange.h"
#include "core/multiselect.h"
#include "obs/report.h"
#include "runtime/comm.h"
#include "runtime/team.h"

namespace hds {
namespace {

using runtime::Comm;
using runtime::Team;
using runtime::TeamConfig;

/// exchange_kary's wire tags: header = base + 2r (Control), payload =
/// base + 2r + 1 (Data) for round r.
constexpr u64 kKAryTagBase = u64{0x4a59} << 24;

struct TracedKAry {
  std::unique_ptr<Team> team;
  std::vector<std::vector<core::KAryRoundTrace>> rounds;  ///< per rank
};

/// One traced run of the k-ary exchange pipeline: per-rank local sort
/// (LocalSort), splitter determination (Histogram), then exchange_kary with
/// overlap merging (Exchange + Merge), capturing each rank's round trace.
TracedKAry run_traced_kary(int P, int k, usize n, u64 seed) {
  TracedKAry out;
  TeamConfig cfg;
  cfg.nranks = P;
  cfg.trace = true;
  out.team = std::make_unique<Team>(cfg);
  out.rounds.assign(static_cast<usize>(P), {});
  out.team->run([&](Comm& c) {
    const auto key = [](u64 v) { return v; };
    Xoshiro256 rng(hash_mix(seed, static_cast<u64>(c.rank())));
    std::vector<u64> local(n);
    for (auto& v : local) v = rng();
    {
      net::PhaseScope ps(c.clock(), net::Phase::LocalSort);
      std::sort(local.begin(), local.end());
      c.charge_sort(local.size());
    }
    const std::span<const u64> sorted_view(local.data(), local.size());
    std::vector<usize> targets(static_cast<usize>(P) - 1);
    for (usize b = 0; b < targets.size(); ++b) targets[b] = (b + 1) * n;
    const auto sp = [&] {
      net::PhaseScope ps(c.clock(), net::Phase::Histogram);
      return core::find_splitters(c, sorted_view, key,
                                  std::span<const usize>(targets));
    }();
    auto ex = core::exchange_kary(c, sorted_view, sp, key, k,
                                  /*overlap_merge=*/true,
                                  core::DataPath::Pull,
                                  &out.rounds[static_cast<usize>(c.rank())]);
    EXPECT_TRUE(std::is_sorted(ex.data.begin(), ex.data.end()));
  });
  return out;
}

TEST(KAryObs, PhaseSumsReconcileAcrossKAndP) {
  for (int P : {4, 8, 16}) {
    for (int k : {2, 4, P}) {
      const TracedKAry run = run_traced_kary(P, k, 1500, 31);
      const obs::TraceReport* trace = run.team->trace();
      ASSERT_NE(trace, nullptr);
      for (int r = 0; r < P; ++r) {
        const auto traced = trace->traced_phase_seconds(r);
        const auto& clock = trace->clock_phase_s[static_cast<usize>(r)];
        for (usize p = 0; p < net::kPhaseCount; ++p) {
          EXPECT_NEAR(traced[p], clock[p], 1e-9 * std::max(1.0, clock[p]))
              << "P=" << P << " k=" << k << " rank " << r << " phase "
              << net::phase_name(static_cast<net::Phase>(p));
        }
      }
    }
  }
}

TEST(KAryObs, PerRoundMatricesReconcileSendRecvAndCommMatrix) {
  for (int k : {2, 4, 16}) {
    const int P = 16;
    const TracedKAry run = run_traced_kary(P, k, 2000, 7);
    const obs::TraceReport* trace = run.team->trace();
    ASSERT_NE(trace, nullptr);
    const usize nrounds = run.rounds[0].size();
    ASSERT_GT(nrounds, 0u);
    for (const auto& rt : run.rounds) ASSERT_EQ(rt.size(), nrounds);

    // Per-round P x P payload matrices from the traced slices: one built
    // from the senders' events, one from the receivers'.
    const auto idx = [P](int src, int dst) {
      return static_cast<usize>(src) * static_cast<usize>(P) +
             static_cast<usize>(dst);
    };
    std::vector<std::vector<u64>> sent(nrounds),
        recvd(nrounds);  // [round][src * P + dst]
    for (usize r = 0; r < nrounds; ++r) {
      sent[r].assign(static_cast<usize>(P) * P, 0);
      recvd[r].assign(static_cast<usize>(P) * P, 0);
    }
    std::vector<std::vector<double>> send_model(
        static_cast<usize>(P), std::vector<double>(nrounds, 0.0));
    for (int rank = 0; rank < P; ++rank) {
      for (const obs::TraceEvent& e :
           trace->events[static_cast<usize>(rank)]) {
        if (e.tag < kKAryTagBase || e.tag >= kKAryTagBase + 2 * nrounds)
          continue;
        const usize round = static_cast<usize>(e.tag - kKAryTagBase) / 2;
        const bool payload = (e.tag - kKAryTagBase) % 2 == 1;
        if (e.cls == obs::OpClass::Send) {
          send_model[static_cast<usize>(rank)][round] += e.model_s;
          if (payload) sent[round][idx(rank, e.peer)] += e.bytes;
        } else if (e.cls == obs::OpClass::Recv && payload) {
          recvd[round][idx(e.peer, rank)] += e.bytes;
        }
      }
    }

    u64 total_payload = 0;
    for (usize r = 0; r < nrounds; ++r) {
      // Send-side and receive-side views of the same round must agree
      // cell-for-cell, and something must move in every round.
      EXPECT_EQ(sent[r], recvd[r]) << "k=" << k << " round " << r;
      u64 round_bytes = 0;
      for (u64 b : sent[r]) round_bytes += b;
      EXPECT_GT(round_bytes, 0u) << "k=" << k << " round " << r;
      total_payload += round_bytes;
    }

    // The rounds' payloads are the run's only Data-plane traffic, so the
    // summed per-round matrices must equal the trace's comm matrix exactly
    // (store-and-forward bytes included on the forwarding rank's row).
    const obs::CommMatrix m = trace->comm_matrix(/*data_only=*/true);
    ASSERT_EQ(m.nranks, P);
    u64 matrix_total = 0;
    for (int src = 0; src < P; ++src) {
      for (int dst = 0; dst < P; ++dst) {
        u64 from_rounds = 0;
        for (usize r = 0; r < nrounds; ++r)
          from_rounds += sent[r][idx(src, dst)];
        EXPECT_EQ(m.at(src, dst), from_rounds)
            << "k=" << k << " " << src << "->" << dst;
        matrix_total += from_rounds;
      }
    }
    EXPECT_EQ(m.total(/*include_self=*/true), matrix_total);

    // comm_s is the round's clock span minus the overlapped merge: it must
    // cover at least the send-side model charges of that round's header
    // and payload ops (receive waits only add to it).
    for (int rank = 0; rank < P; ++rank) {
      for (usize r = 0; r < nrounds; ++r) {
        const double comm_s =
            run.rounds[static_cast<usize>(rank)][r].comm_s;
        EXPECT_GE(comm_s + 1e-12,
                  send_model[static_cast<usize>(rank)][r])
            << "k=" << k << " rank " << rank << " round " << r;
      }
    }
  }
}

TEST(KAryObs, OverlappedMergeResidueLandsInMergePhase) {
  const int P = 16;
  const TracedKAry run = run_traced_kary(P, /*k=*/4, 4096, 13);
  const obs::TraceReport* trace = run.team->trace();
  ASSERT_NE(trace, nullptr);
  ASSERT_EQ(run.rounds[0].size(), 2u);  // kary_round_factors(16, 4) = {4,4}

  double total_round_merge = 0.0;
  for (int rank = 0; rank < P; ++rank) {
    const auto& clock = trace->clock_phase_s[static_cast<usize>(rank)];
    double rank_merge = 0.0;
    for (const core::KAryRoundTrace& rt :
         run.rounds[static_cast<usize>(rank)]) {
      EXPECT_GE(rt.merge_s, 0.0);
      EXPECT_GT(rt.comm_s, 0.0);
      rank_merge += rt.merge_s;
    }
    total_round_merge += rank_merge;
    // Every overlapped merge is charged under PhaseScope(Merge); the final
    // un-overlapped drain (outside the round loop) only adds to it.
    const double merge_clock = clock[static_cast<usize>(net::Phase::Merge)];
    EXPECT_GE(merge_clock + 1e-12, rank_merge) << "rank " << rank;
    EXPECT_GT(merge_clock, 0.0) << "rank " << rank;

    // The overlap series records (full, charged) pairs; the charged cost
    // is what reached the clock, strictly below the un-overlapped cost
    // whenever a communication window hid part of the merge.
    const obs::Metrics& met = run.team->metrics(rank);
    const auto full = met.series(obs::Series::OverlapMergeFull);
    const auto charged = met.series(obs::Series::OverlapMergeCharged);
    ASSERT_EQ(full.size(), charged.size());
    ASSERT_FALSE(full.empty()) << "rank " << rank;
    double full_sum = 0.0, charged_sum = 0.0;
    for (usize i = 0; i < full.size(); ++i) {
      EXPECT_LE(charged[i], full[i] + 1e-15);
      full_sum += full[i];
      charged_sum += charged[i];
    }
    EXPECT_GT(full_sum, 0.0);
    EXPECT_LT(charged_sum, full_sum) << "rank " << rank;
    // The charged residue is real time on the clock: it cannot exceed the
    // rank's total Merge-phase seconds.
    EXPECT_LE(charged_sum, merge_clock + 1e-12) << "rank " << rank;
  }
  // With 2 rounds and overlap on, round 1's in-flight window must have
  // hidden merges somewhere: the attribution is not allowed to vanish.
  EXPECT_GT(total_round_merge, 0.0);
}

}  // namespace
}  // namespace hds
