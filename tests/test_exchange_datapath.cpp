// Single-copy data path (DESIGN.md sec. 11): the pull-based alltoallv_into
// and borrowed-payload P2P must produce byte-identical results and
// bit-identical simulated time versus the packed reference path — across
// exchange algorithms, local-sort kernels, rank counts, and degenerate
// layouts — and the channel-indexed mailbox must preserve FIFO-per-channel
// semantics the runtime's P2P ordering rests on.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <functional>
#include <vector>

#include "core/exchange.h"
#include "core/histogram_sort.h"
#include "runtime/comm.h"
#include "runtime/fault.h"
#include "runtime/mailbox.h"
#include "runtime/team.h"
#include "workload/distributions.h"

namespace hds::core {
namespace {

using runtime::Comm;
using runtime::Mailbox;
using runtime::Message;
using runtime::Team;

// ---------------------------------------------------------------------------
// Comm-level: alltoallv_into vs packed alltoallv

/// Per-destination send counts as a pure function of (P, rank), so the test
/// can derive every rank's incoming total without communication.
using CountsFn = std::function<std::vector<usize>(int P, int rank)>;

struct PathResult {
  std::vector<std::vector<u64>> data;    // per rank, received elements
  std::vector<std::vector<usize>> counts;  // per rank, per-source counts
  std::vector<double> times;             // per rank, final simulated clock
};

enum class IntoMode { Packed, PullVector, PullSpan };

PathResult run_alltoallv(int P, const CountsFn& counts_fn, IntoMode mode) {
  Team team({.nranks = P});
  PathResult res;
  res.data.resize(P);
  res.counts.resize(P);
  res.times.resize(P);
  team.run([&](Comm& c) {
    const std::vector<usize> send = counts_fn(P, c.rank());
    usize total = 0;
    for (usize s : send) total += s;
    std::vector<u64> data(total);
    for (usize i = 0; i < total; ++i)
      data[i] = (static_cast<u64>(c.rank()) << 32) | i;

    std::vector<u64> out;
    std::vector<usize> rc;
    switch (mode) {
      case IntoMode::Packed:
        out = c.alltoallv(std::span<const u64>(data),
                          std::span<const usize>(send), &rc);
        break;
      case IntoMode::PullVector:
        c.alltoallv_into(std::span<const u64>(data),
                         std::span<const usize>(send), out, rc);
        break;
      case IntoMode::PullSpan: {
        // The span overload needs a pre-sized destination; incoming totals
        // are derivable locally because counts_fn is a pure function.
        usize incoming = 0;
        for (int src = 0; src < P; ++src)
          incoming += counts_fn(P, src)[static_cast<usize>(c.rank())];
        out.resize(incoming);
        c.alltoallv_into(std::span<const u64>(data),
                         std::span<const usize>(send), std::span<u64>(out),
                         rc);
        break;
      }
    }
    res.data[c.rank()] = std::move(out);
    res.counts[c.rank()] = std::move(rc);
  });
  for (int r = 0; r < P; ++r) res.times[r] = team.rank_time(r);
  return res;
}

void expect_paths_identical(int P, const CountsFn& counts_fn) {
  const PathResult packed = run_alltoallv(P, counts_fn, IntoMode::Packed);
  const PathResult pull_v = run_alltoallv(P, counts_fn, IntoMode::PullVector);
  const PathResult pull_s = run_alltoallv(P, counts_fn, IntoMode::PullSpan);
  for (int r = 0; r < P; ++r) {
    EXPECT_EQ(packed.data[r], pull_v.data[r]) << "P=" << P << " rank " << r;
    EXPECT_EQ(packed.data[r], pull_s.data[r]) << "P=" << P << " rank " << r;
    EXPECT_EQ(packed.counts[r], pull_v.counts[r]) << "P=" << P << " rank "
                                                  << r;
    EXPECT_EQ(packed.counts[r], pull_s.counts[r]) << "P=" << P << " rank "
                                                  << r;
    // Bit-identical simulated time: the cost model charges volume, not copy
    // count, and both paths charge from the same byte matrix.
    EXPECT_EQ(packed.times[r], pull_v.times[r]) << "P=" << P << " rank " << r;
    EXPECT_EQ(packed.times[r], pull_s.times[r]) << "P=" << P << " rank " << r;
  }
}

std::vector<usize> random_counts(int P, int rank) {
  // Deterministic, asymmetric, with some zero blocks.
  std::vector<usize> send(static_cast<usize>(P));
  for (int d = 0; d < P; ++d) {
    const u64 h = static_cast<u64>(rank) * 2654435761u + static_cast<u64>(d);
    send[static_cast<usize>(d)] = (h % 7 == 0) ? 0 : (h % 53);
  }
  return send;
}

TEST(AlltoallvInto, MatchesPackedOnRandomLayouts) {
  for (int P : {4, 8, 16}) expect_paths_identical(P, random_counts);
}

TEST(AlltoallvInto, MatchesPackedOnEmptyExchange) {
  for (int P : {4, 8, 16})
    expect_paths_identical(
        P, [](int p, int) { return std::vector<usize>(p, 0); });
}

TEST(AlltoallvInto, MatchesPackedOnAllToSelf) {
  for (int P : {4, 8, 16})
    expect_paths_identical(P, [](int p, int rank) {
      std::vector<usize> send(static_cast<usize>(p), 0);
      send[static_cast<usize>(rank)] = 37;
      return send;
    });
}

TEST(AlltoallvInto, MatchesPackedOnSkewedAllToOne) {
  // One rank receives everything — the serial-executor worst case the pull
  // path exists to fix.
  for (int P : {4, 8, 16})
    expect_paths_identical(P, [](int p, int rank) {
      std::vector<usize> send(static_cast<usize>(p), 0);
      send[0] = 29 + static_cast<usize>(rank);
      return send;
    });
}

TEST(AlltoallvInto, SpanOverloadRejectsWrongSize) {
  Team team({.nranks = 4});
  EXPECT_THROW(team.run([&](Comm& c) {
                 std::vector<u64> data(4, 7);
                 std::vector<usize> send(4, 1);
                 std::vector<u64> dst(1);  // needs 4
                 std::vector<usize> rc;
                 c.alltoallv_into(std::span<const u64>(data),
                                  std::span<const usize>(send),
                                  std::span<u64>(dst), rc);
               }),
               invariant_error);
}

// ---------------------------------------------------------------------------
// Sort-level grid: exchange algorithm x kernel x path

struct SortRun {
  std::vector<std::vector<u64>> out;
  std::vector<double> times;
};

SortRun run_sort(int P, const runtime::TeamConfig& tcfg, SortConfig cfg,
                 usize n_rank, const workload::GenConfig& gen = {}) {
  std::vector<std::vector<u64>> shards(P);
  for (int r = 0; r < P; ++r)
    shards[r] = workload::generate_u64(gen, r, P, n_rank);
  SortRun res;
  res.out.resize(P);
  res.times.resize(P);
  Team team(tcfg);
  team.run([&](Comm& c) {
    auto local = shards[c.rank()];
    sort(c, local, cfg);
    EXPECT_TRUE(is_globally_sorted(
        c, std::span<const u64>(local.data(), local.size()),
        [](u64 v) { return v; }));
    res.out[c.rank()] = std::move(local);
  });
  for (int r = 0; r < P; ++r) res.times[r] = team.rank_time(r);
  return res;
}

void expect_sort_paths_identical(int P, SortConfig cfg, usize n_rank,
                                 runtime::TeamConfig tcfg = {}) {
  tcfg.nranks = P;
  cfg.path = DataPath::Pull;
  const SortRun pull = run_sort(P, tcfg, cfg, n_rank);
  cfg.path = DataPath::Packed;
  const SortRun packed = run_sort(P, tcfg, cfg, n_rank);
  for (int r = 0; r < P; ++r) {
    EXPECT_EQ(pull.out[r], packed.out[r])
        << "P=" << P << " rank " << r << " algo "
        << static_cast<int>(cfg.exchange);
    EXPECT_EQ(pull.times[r], packed.times[r])
        << "P=" << P << " rank " << r << " algo "
        << static_cast<int>(cfg.exchange);
  }
}

TEST(DataPathGrid, AlgorithmsTimesKernelsAtP8) {
  for (ExchangeAlgorithm algo :
       {ExchangeAlgorithm::Alltoallv, ExchangeAlgorithm::OneFactor,
        ExchangeAlgorithm::Hypercube, ExchangeAlgorithm::Hierarchical}) {
    for (LocalSortKernel kernel :
         {LocalSortKernel::Comparison, LocalSortKernel::Radix}) {
      SortConfig cfg;
      cfg.exchange = algo;
      cfg.kernel = kernel;
      expect_sort_paths_identical(8, cfg, 500);
    }
  }
}

TEST(DataPathGrid, AlltoallvAtP4AndP16) {
  SortConfig cfg;
  expect_sort_paths_identical(4, cfg, 800);
  expect_sort_paths_identical(16, cfg, 250);
}

TEST(DataPathGrid, OneFactorOverlapMerge) {
  SortConfig cfg;
  cfg.exchange = ExchangeAlgorithm::OneFactor;
  cfg.overlap_merge = true;
  expect_sort_paths_identical(8, cfg, 600);
  expect_sort_paths_identical(5, cfg, 400);  // odd P: idle rounds
}

TEST(DataPathGrid, MergeStrategiesSeeIdenticalChunks) {
  for (MergeStrategy m : {MergeStrategy::Sort, MergeStrategy::BinaryTree,
                          MergeStrategy::Tournament}) {
    SortConfig cfg;
    cfg.merge = m;
    expect_sort_paths_identical(8, cfg, 400);
  }
}

TEST(DataPathGrid, HierarchicalOnMultiNodeMachine) {
  runtime::TeamConfig tcfg;
  tcfg.machine = net::MachineModel::supermuc_phase2(4, 4);
  SortConfig cfg;
  cfg.exchange = ExchangeAlgorithm::Hierarchical;
  expect_sort_paths_identical(16, cfg, 300, tcfg);
}

TEST(DataPathGrid, SkewedInputWithDuplicates) {
  workload::GenConfig gen;
  gen.dist = workload::Dist::Zipf;
  for (DataPath path : {DataPath::Pull, DataPath::Packed}) {
    SortConfig cfg;
    cfg.path = path;
    runtime::TeamConfig tcfg;
    tcfg.nranks = 8;
    const SortRun run = run_sort(8, tcfg, cfg, 700, gen);
    usize total = 0;
    for (const auto& o : run.out) total += o.size();
    EXPECT_EQ(total, 8u * 700u);
  }
}

// ---------------------------------------------------------------------------
// hds::check coverage of the pull path

TEST(DataPathCheck, PullPathRunsViolationFree) {
  for (int P : {4, 8, 16}) {
    runtime::TeamConfig tcfg;
    tcfg.nranks = P;
    tcfg.check.enabled = true;
    workload::GenConfig gen;
    std::vector<std::vector<u64>> shards(P);
    for (int r = 0; r < P; ++r)
      shards[r] = workload::generate_u64(gen, r, P, 400);
    Team team(tcfg);
    team.run([&](Comm& c) {
      auto local = shards[c.rank()];
      SortConfig cfg;
      cfg.path = DataPath::Pull;
      sort(c, local, cfg);
    });
    ASSERT_NE(team.check_report(), nullptr);
    EXPECT_TRUE(team.check_report()->clean())
        << team.check_report()->summary();
    EXPECT_GT(team.check_report()->collectives_checked, 0u);
  }
}

TEST(DataPathCheck, ElidedAlltoallvJoinIsNoticedOnPullPath) {
  // Mutation test: logically delete the exchange's happens-before joins.
  // The physical pull still happens (ranks synchronize through the real
  // barriers), but the checker must flag the now-unordered consumption of
  // the published spans — proving the pull reads are modeled.
  runtime::TeamConfig tcfg;
  tcfg.nranks = 8;
  tcfg.check.enabled = true;
  tcfg.check.elide_op = obs::OpKind::Alltoallv;
  tcfg.check.elide_index = 0;
  workload::GenConfig gen;
  std::vector<std::vector<u64>> shards(8);
  for (int r = 0; r < 8; ++r)
    shards[r] = workload::generate_u64(gen, r, 8, 500);
  Team team(tcfg);
  team.run([&](Comm& c) {
    auto local = shards[c.rank()];
    SortConfig cfg;
    cfg.path = DataPath::Pull;
    sort(c, local, cfg);
  });
  ASSERT_NE(team.check_report(), nullptr);
  EXPECT_GT(team.check_report()->joins_elided, 0u);
  EXPECT_FALSE(team.check_report()->clean());
}

// ---------------------------------------------------------------------------
// Borrowed-payload P2P

TEST(BorrowedSend, PairwiseSwapThroughRecvInto) {
  const int P = 4;
  Team team({.nranks = P});
  std::vector<std::vector<u64>> got(P);
  team.run([&](Comm& c) {
    const int partner = c.rank() ^ 1;
    std::vector<u64> mine(64);
    for (usize i = 0; i < mine.size(); ++i)
      mine[i] = (static_cast<u64>(c.rank()) << 16) | i;
    auto loan =
        c.send_borrowed(partner, /*tag=*/42, std::span<const u64>(mine));
    std::vector<u64> theirs(64);
    const usize n = c.recv_into(partner, 42, std::span<u64>(theirs));
    loan.wait();
    EXPECT_FALSE(loan.pending());
    ASSERT_EQ(n, 64u);
    for (usize i = 0; i < n; ++i)
      EXPECT_EQ(theirs[i], (static_cast<u64>(partner) << 16) | i);
    got[c.rank()] = std::move(theirs);
  });
}

TEST(BorrowedSend, PlainRecvAndRecvAppendConsumeLoans) {
  Team team({.nranks = 2});
  team.run([&](Comm& c) {
    if (c.rank() == 0) {
      std::vector<u32> a{1, 2, 3}, b{4, 5};
      auto la = c.send_borrowed(1, 7, std::span<const u32>(a));
      auto lb = c.send_borrowed(1, 8, std::span<const u32>(b));
      la.wait();
      lb.wait();
    } else {
      const std::vector<u32> a = c.recv<u32>(0, 7);
      EXPECT_EQ(a, (std::vector<u32>{1, 2, 3}));
      std::vector<u32> acc{9};
      EXPECT_EQ(c.recv_append(0, 8, acc), 2u);
      EXPECT_EQ(acc, (std::vector<u32>{9, 4, 5}));
    }
  });
}

TEST(BorrowedSend, EmptyPayloadRoundTrips) {
  Team team({.nranks = 2});
  team.run([&](Comm& c) {
    if (c.rank() == 0) {
      std::vector<u64> empty;
      auto loan = c.send_borrowed(1, 3, std::span<const u64>(empty));
      loan.wait();
    } else {
      std::vector<u64> dst;
      EXPECT_EQ(c.recv_append(0, 3, dst), 0u);
      EXPECT_TRUE(dst.empty());
    }
  });
}

TEST(BorrowedSend, DroppedMessageReturnsLoanImmediately) {
  // A fault-dropped borrowed send must pre-signal the token: the receiver
  // never sees the message, so nobody else would return the loan.
  runtime::TeamConfig tcfg;
  tcfg.nranks = 2;
  auto plan = std::make_shared<runtime::FaultPlan>();
  plan->drop_message(0, 1, /*tag=*/11);
  tcfg.fault = plan;
  Team team(tcfg);
  team.run([&](Comm& c) {
    if (c.rank() == 0) {
      std::vector<u64> data(16, 5);
      auto loan = c.send_borrowed(1, 11, std::span<const u64>(data));
      loan.wait();  // must not hang: the drop signals the token
      EXPECT_FALSE(loan.pending());
    }
    // Rank 1 deliberately does not receive (the message was dropped).
  });
}

TEST(BorrowedSend, RecvIntoRejectsTooSmallSpan) {
  Team team({.nranks = 2});
  EXPECT_THROW(team.run([&](Comm& c) {
                 if (c.rank() == 0) {
                   std::vector<u64> data(8, 1);
                   c.send(1, 5, std::span<const u64>(data));
                 } else {
                   std::vector<u64> dst(4);  // too small for 8
                   c.recv_into(0, 5, std::span<u64>(dst));
                 }
               }),
               invariant_error);
}

// ---------------------------------------------------------------------------
// Channel-indexed mailbox

Message make_msg(rank_t src, u64 tag, u8 payload) {
  Message m;
  m.src = src;
  m.tag = tag;
  m.data.assign(1, static_cast<std::byte>(payload));
  return m;
}

u8 payload_of(const Message& m) { return static_cast<u8>(m.data.at(0)); }

TEST(MailboxChannels, FifoPerChannelAcrossInterleavedChannels) {
  std::atomic<bool> abort{false};
  Mailbox mb(&abort);
  mb.push(make_msg(1, 7, 10));
  mb.push(make_msg(2, 7, 20));
  mb.push(make_msg(1, 7, 11));
  mb.push(make_msg(1, 9, 30));
  mb.push(make_msg(2, 7, 21));
  EXPECT_EQ(mb.pending(), 5u);

  EXPECT_EQ(payload_of(mb.pop(1, 7)), 10);  // FIFO within (1,7)
  EXPECT_EQ(payload_of(mb.pop(1, 7)), 11);
  EXPECT_EQ(payload_of(mb.pop(2, 7)), 20);  // (2,7) unaffected
  EXPECT_EQ(payload_of(mb.pop(1, 9)), 30);
  EXPECT_EQ(payload_of(mb.pop(2, 7)), 21);
  EXPECT_EQ(mb.pending(), 0u);
}

TEST(MailboxChannels, PendingChannelsListsDistinctChannels) {
  std::atomic<bool> abort{false};
  Mailbox mb(&abort);
  mb.push(make_msg(3, 1, 1));
  mb.push(make_msg(3, 1, 2));
  mb.push(make_msg(4, 2, 3));
  const auto chans = mb.pending_channels();
  ASSERT_EQ(chans.size(), 2u);  // two distinct channels, not three messages
  EXPECT_TRUE(std::count(chans.begin(), chans.end(),
                         std::make_pair(rank_t{3}, u64{1})) == 1);
  EXPECT_TRUE(std::count(chans.begin(), chans.end(),
                         std::make_pair(rank_t{4}, u64{2})) == 1);
}

TEST(MailboxChannels, AbortUnblocksPop) {
  std::atomic<bool> abort{true};
  Mailbox mb(&abort);
  EXPECT_THROW(mb.pop(0, 0), runtime::team_aborted);
}

}  // namespace
}  // namespace hds::core
