// Tests for the baseline sorters: sample sort, HSS, HykSort, bitonic, and
// the shared-memory merge sort — correctness against oracles plus the
// behavioural contrasts the paper draws (imbalance, constraints, timeouts).
#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/bitonic_sort.h"
#include "baselines/hss_sort.h"
#include "baselines/hyksort.h"
#include "baselines/parallel_merge_sort.h"
#include "baselines/sample_sort.h"
#include "core/histogram_sort.h"
#include "runtime/team.h"
#include "workload/distributions.h"

namespace hds::baselines {
namespace {

using runtime::Comm;
using runtime::Team;

[[maybe_unused]] auto identity = [](const auto& v) { return v; };

std::vector<std::vector<u64>> make_shards(int P, usize n,
                                          workload::GenConfig cfg = {}) {
  std::vector<std::vector<u64>> shards(P);
  for (int r = 0; r < P; ++r)
    shards[r] = workload::generate_u64(cfg, r, P, n);
  return shards;
}

/// Verify: globally sorted permutation of the input; returns output sizes.
template <class Sorter>
std::vector<usize> run_baseline(int P, std::vector<std::vector<u64>> shards,
                                Sorter sorter) {
  std::vector<u64> all;
  for (const auto& s : shards) all.insert(all.end(), s.begin(), s.end());
  std::sort(all.begin(), all.end());

  std::vector<std::vector<u64>> out(P);
  Team team({.nranks = P});
  team.run([&](Comm& c) {
    auto local = shards[c.rank()];
    sorter(c, local);
    EXPECT_TRUE(core::is_globally_sorted(
        c, std::span<const u64>(local.data(), local.size()), identity));
    out[c.rank()] = std::move(local);
  });

  std::vector<u64> merged;
  std::vector<usize> sizes;
  for (const auto& o : out) {
    merged.insert(merged.end(), o.begin(), o.end());
    sizes.push_back(o.size());
  }
  std::sort(merged.begin(), merged.end());
  EXPECT_EQ(merged, all);
  return sizes;
}

// --- sample sort -----------------------------------------------------------

TEST(SampleSort, RegularSamplingSortsUniform) {
  run_baseline(8, make_shards(8, 800), [](Comm& c, std::vector<u64>& v) {
    sample_sort(c, v);
  });
}

TEST(SampleSort, RandomSamplingSortsUniform) {
  run_baseline(8, make_shards(8, 800), [](Comm& c, std::vector<u64>& v) {
    SampleSortConfig cfg;
    cfg.sampling = Sampling::Random;
    sample_sort(c, v, cfg);
  });
}

TEST(SampleSort, NonPowerOfTwoRanks) {
  run_baseline(7, make_shards(7, 500), [](Comm& c, std::vector<u64>& v) {
    sample_sort(c, v);
  });
}

TEST(SampleSort, SkewedInputStillSorts) {
  workload::GenConfig cfg;
  cfg.dist = workload::Dist::Staircase;
  run_baseline(8, make_shards(8, 600, cfg), [](Comm& c, std::vector<u64>& v) {
    sample_sort(c, v);
  });
}

TEST(SampleSort, RegularBeatsRandomOnBalance) {
  // The literature result the paper cites (Sec. III-A): regular sampling
  // achieves better practical balance than random sampling.
  workload::GenConfig gen;
  gen.seed = 5;
  const int P = 8;
  double imb_regular = 0.0, imb_random = 0.0;
  for (auto [sampling, out] :
       {std::pair{Sampling::Regular, &imb_regular},
        std::pair{Sampling::Random, &imb_random}}) {
    auto shards = make_shards(P, 2000, gen);
    Team team({.nranks = P});
    team.run([&, sampling = sampling, out = out](Comm& c) {
      auto local = shards[c.rank()];
      SampleSortConfig cfg;
      cfg.sampling = sampling;
      cfg.oversampling = 16;
      const auto st = sample_sort(c, local, cfg);
      if (c.rank() == 0) *out = st.imbalance;
    });
  }
  EXPECT_LE(imb_regular, imb_random + 0.05);
  EXPECT_GT(imb_random, 1.0);  // random sampling does not balance perfectly
}

TEST(SampleSort, ImbalanceWorseThanHistogramSort) {
  // The paper's core claim: one-shot sampling cannot guarantee the balance
  // histogramming enforces.
  workload::GenConfig gen;
  gen.seed = 31;
  const int P = 8;
  const auto sizes = run_baseline(P, make_shards(P, 1000, gen),
                                  [](Comm& c, std::vector<u64>& v) {
                                    SampleSortConfig cfg;
                                    cfg.oversampling = 4;  // sparse sample
                                    sample_sort(c, v, cfg);
                                  });
  const usize max_sz = *std::max_element(sizes.begin(), sizes.end());
  const usize min_sz = *std::min_element(sizes.begin(), sizes.end());
  EXPECT_NE(max_sz, min_sz);  // not perfectly partitioned
}

// --- HSS --------------------------------------------------------------------

TEST(HssSort, SortsUniformPerfectPartition) {
  const auto sizes = run_baseline(8, make_shards(8, 700),
                                  [](Comm& c, std::vector<u64>& v) {
                                    hss_sort(c, v);
                                  });
  for (usize s : sizes) EXPECT_EQ(s, 700u);
}

TEST(HssSort, RejectsNonPowerOfTwoRanks) {
  Team team({.nranks = 6});
  EXPECT_THROW(team.run([&](Comm& c) {
                 std::vector<u64> v{1, 2, 3};
                 hss_sort(c, v);
               }),
               argument_error);
}

TEST(HssSort, EpsilonRelaxedConvergesFaster) {
  workload::GenConfig gen;
  const int P = 8;
  usize rounds_exact = 0, rounds_eps = 0;
  for (auto [eps, out] : {std::pair{0.0, &rounds_exact},
                          std::pair{0.2, &rounds_eps}}) {
    auto shards = make_shards(P, 1500, gen);
    Team team({.nranks = P});
    team.run([&, eps = eps, out = out](Comm& c) {
      auto local = shards[c.rank()];
      HssConfig cfg;
      cfg.epsilon = eps;
      const auto st = hss_sort(c, local, cfg);
      if (c.rank() == 0) *out = st.rounds;
    });
  }
  EXPECT_LE(rounds_eps, rounds_exact);
}

TEST(HssSort, RoundCountVariesAcrossSeeds) {
  // Sampling-driven volatility: different seeds, different convergence —
  // the wide confidence intervals of the paper's Charm++ measurements.
  workload::GenConfig gen;
  const int P = 8;
  std::vector<usize> rounds;
  for (u64 seed : {1, 2, 3, 4, 5, 6}) {
    auto shards = make_shards(P, 900, gen);
    Team team({.nranks = P});
    usize r0 = 0;
    team.run([&](Comm& c) {
      auto local = shards[c.rank()];
      HssConfig cfg;
      cfg.seed = seed;
      const auto st = hss_sort(c, local, cfg);
      if (c.rank() == 0) r0 = st.rounds;
    });
    rounds.push_back(r0);
  }
  EXPECT_NE(*std::max_element(rounds.begin(), rounds.end()),
            *std::min_element(rounds.begin(), rounds.end()));
}

TEST(HssSort, TimesOutWhenCapped) {
  workload::GenConfig gen;
  gen.dist = workload::Dist::Normal;  // the distribution Charm++ failed on
  const int P = 4;
  auto shards = make_shards(P, 800, gen);
  Team team({.nranks = P});
  EXPECT_THROW(team.run([&](Comm& c) {
                 auto local = shards[c.rank()];
                 HssConfig cfg;
                 cfg.max_rounds = 1;  // absurd cap forces the timeout path
                 hss_sort(c, local, cfg);
               }),
               hss_timeout);
}

// --- HykSort ----------------------------------------------------------------

TEST(Hyksort, SortsUniformPowerOfTwo) {
  run_baseline(8, make_shards(8, 700), [](Comm& c, std::vector<u64>& v) {
    hyksort(c, v);
  });
}

TEST(Hyksort, KSmallerThanP) {
  run_baseline(16, make_shards(16, 300), [](Comm& c, std::vector<u64>& v) {
    HyksortConfig cfg;
    cfg.k = 4;
    hyksort(c, v);
  });
}

TEST(Hyksort, KEqualsP) {
  run_baseline(8, make_shards(8, 400), [](Comm& c, std::vector<u64>& v) {
    HyksortConfig cfg;
    cfg.k = 8;
    hyksort(c, v, cfg);
  });
}

TEST(Hyksort, RecursionDepthMatchesLogKP) {
  const int P = 16;
  auto shards = make_shards(P, 256);
  Team team({.nranks = P});
  usize levels = 0;
  team.run([&](Comm& c) {
    auto local = shards[c.rank()];
    HyksortConfig cfg;
    cfg.k = 4;
    const auto st = hyksort(c, local, cfg);
    if (c.rank() == 0) levels = st.levels;
  });
  EXPECT_EQ(levels, 2u);  // log_4(16)
}

TEST(Hyksort, DuplicateHeavyInput) {
  workload::GenConfig gen;
  gen.dist = workload::Dist::FewDistinct;
  gen.alphabet = 3;
  run_baseline(8, make_shards(8, 500, gen), [](Comm& c, std::vector<u64>& v) {
    hyksort(c, v);
  });
}

// --- bitonic ----------------------------------------------------------------

TEST(Bitonic, SortsUniform) {
  run_baseline(8, make_shards(8, 512), [](Comm& c, std::vector<u64>& v) {
    bitonic_sort(c, v);
  });
}

TEST(Bitonic, RoundCountIsLogSquared) {
  const int P = 16;
  auto shards = make_shards(P, 128);
  Team team({.nranks = P});
  usize rounds = 0;
  team.run([&](Comm& c) {
    auto local = shards[c.rank()];
    const auto st = bitonic_sort(c, local);
    if (c.rank() == 0) rounds = st.rounds;
  });
  EXPECT_EQ(rounds, 10u);  // log2(16) * (log2(16)+1) / 2
}

TEST(Bitonic, RejectsUnevenPartitions) {
  Team team({.nranks = 4});
  EXPECT_THROW(team.run([&](Comm& c) {
                 std::vector<u64> v(c.rank() + 1, 0);
                 bitonic_sort(c, v);
               }),
               argument_error);
}

TEST(Bitonic, RejectsNonPowerOfTwo) {
  Team team({.nranks = 3});
  EXPECT_THROW(team.run([&](Comm& c) {
                 std::vector<u64> v(16, 0);
                 bitonic_sort(c, v);
               }),
               argument_error);
}

TEST(Bitonic, ReverseSortedWorstCase) {
  workload::GenConfig gen;
  gen.dist = workload::Dist::ReverseSorted;
  run_baseline(8, make_shards(8, 256, gen), [](Comm& c, std::vector<u64>& v) {
    bitonic_sort(c, v);
  });
}

// --- shared-memory merge sort -----------------------------------------------

TEST(PMergeSort, SortsAndRedistributes) {
  const auto sizes = run_baseline(8, make_shards(8, 600),
                                  [](Comm& c, std::vector<u64>& v) {
                                    parallel_merge_sort(c, v);
                                  });
  for (usize s : sizes) EXPECT_EQ(s, 600u);
}

TEST(PMergeSort, NonPowerOfTwoThreads) {
  run_baseline(7, make_shards(7, 400), [](Comm& c, std::vector<u64>& v) {
    parallel_merge_sort(c, v);
  });
}

TEST(PMergeSort, CrossNumaChargesMore) {
  // Same data, 1 NUMA domain vs 4: the modelled merge tree pays cross-NUMA
  // bandwidth in the latter.
  auto run_with = [&](int numa_domains) {
    runtime::TeamConfig cfg;
    cfg.nranks = 8;
    cfg.machine = net::MachineModel::supermuc_node(8, numa_domains);
    Team team(cfg);
    auto shards = make_shards(8, 2000);
    team.run([&](Comm& c) {
      auto local = shards[c.rank()];
      parallel_merge_sort(c, local);
    });
    return team.stats().makespan_s;
  };
  EXPECT_GT(run_with(4), run_with(1));
}

TEST(PMergeSort, HistogramSortWinsAcrossNuma) {
  // Fig. 4's crossover, in miniature: across 4 NUMA domains the one-shot
  // exchange beats the log(p)-pass merge tree.
  runtime::TeamConfig cfg;
  cfg.nranks = 16;
  cfg.machine = net::MachineModel::supermuc_node(16, 4);
  cfg.data_scale = 4096.0;  // model a multi-GB sort on a small sample
  auto shards = make_shards(16, 4096);

  Team t1(cfg);
  t1.run([&](Comm& c) {
    auto local = shards[c.rank()];
    parallel_merge_sort(c, local);
  });
  Team t2(cfg);
  t2.run([&](Comm& c) {
    auto local = shards[c.rank()];
    core::SortConfig scfg;
    scfg.merge = core::MergeStrategy::Tournament;  // move data once
    core::sort(c, local, scfg);
  });
  EXPECT_LT(t2.stats().makespan_s, t1.stats().makespan_s);
}

}  // namespace
}  // namespace hds::baselines
