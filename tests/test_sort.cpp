// Integration tests for the full distributed histogram sort: output
// invariants over a parameterized grid of (ranks, distribution, size,
// epsilon, merge strategy, key type), sparse inputs, payload sorting, and
// stats sanity.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/rng.h"
#include "core/histogram_sort.h"
#include "runtime/team.h"
#include "workload/distributions.h"

namespace hds::core {
namespace {

using runtime::Comm;
using runtime::Team;

[[maybe_unused]] auto identity = [](const auto& v) { return v; };

/// Run the sort on generated shards and verify all output invariants.
/// Returns the per-rank output sizes.
template <class T>
std::vector<usize> run_and_verify(int P, std::vector<std::vector<T>> shards,
                                  const SortConfig& cfg = {},
                                  SortStats* stats_out = nullptr) {
  std::vector<T> all;
  std::vector<usize> capacities;
  for (const auto& s : shards) {
    capacities.push_back(s.size());
    all.insert(all.end(), s.begin(), s.end());
  }
  std::sort(all.begin(), all.end());
  const usize N = all.size();

  std::vector<std::vector<T>> out(P);
  Team team({.nranks = P});
  SortStats stats;
  team.run([&](Comm& c) {
    auto local = shards[c.rank()];
    const SortStats st = sort(c, local, cfg);
    EXPECT_TRUE(is_globally_sorted(
        c, std::span<const T>(local.data(), local.size()), identity));
    if (c.rank() == 0) stats = st;
    out[c.rank()] = std::move(local);
  });
  if (stats_out) *stats_out = stats;

  // Output is a sorted permutation of the input.
  std::vector<T> merged;
  for (const auto& o : out) {
    EXPECT_TRUE(std::is_sorted(o.begin(), o.end()));
    merged.insert(merged.end(), o.begin(), o.end());
  }
  EXPECT_EQ(merged, all) << "output is not the sorted input permutation";

  std::vector<usize> sizes;
  for (const auto& o : out) sizes.push_back(o.size());
  if (cfg.epsilon == 0.0) {
    EXPECT_EQ(sizes, capacities) << "perfect partitioning violated";
  } else if (N > 0) {
    const double cap = static_cast<double>(N) / P * (1.0 + cfg.epsilon);
    for (usize s : sizes) EXPECT_LE(static_cast<double>(s), cap + 1e-9);
  }
  return sizes;
}

// ---------------------------------------------------------------------------
// Parameterized sweep: (P, distribution) with u64 keys.
// ---------------------------------------------------------------------------

using SweepParam = std::tuple<int, workload::Dist>;

class SortSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SortSweep, SortsCorrectly) {
  const auto [P, dist] = GetParam();
  workload::GenConfig cfg;
  cfg.dist = dist;
  cfg.seed = 1234;
  std::vector<std::vector<u64>> shards(P);
  for (int r = 0; r < P; ++r)
    shards[r] = workload::generate_u64(cfg, r, P, 600);
  run_and_verify<u64>(P, std::move(shards));
}

std::string sweep_name(const ::testing::TestParamInfo<SweepParam>& info) {
  std::string d(workload::dist_name(std::get<1>(info.param)));
  std::replace(d.begin(), d.end(), '-', '_');
  return "P" + std::to_string(std::get<0>(info.param)) + "_" + d;
}

INSTANTIATE_TEST_SUITE_P(
    RanksByDistribution, SortSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 7, 8, 16),
                       ::testing::ValuesIn(workload::all_dists())),
    sweep_name);

// ---------------------------------------------------------------------------
// Epsilon sweep.
// ---------------------------------------------------------------------------

class EpsilonSweep : public ::testing::TestWithParam<double> {};

TEST_P(EpsilonSweep, BalanceWithinThreshold) {
  const double eps = GetParam();
  workload::GenConfig gen;
  gen.seed = 99;
  const int P = 8;
  std::vector<std::vector<u64>> shards(P);
  for (int r = 0; r < P; ++r)
    shards[r] = workload::generate_u64(gen, r, P, 2000);
  SortConfig cfg;
  cfg.epsilon = eps;
  SortStats stats;
  run_and_verify<u64>(P, std::move(shards), cfg, &stats);
  EXPECT_GT(stats.histogram_iterations, 0u);
}

INSTANTIATE_TEST_SUITE_P(Epsilons, EpsilonSweep,
                         ::testing::Values(0.0, 0.01, 0.05, 0.1, 0.5));

// ---------------------------------------------------------------------------
// Merge strategies on the full sort.
// ---------------------------------------------------------------------------

class SortMergeStrategy : public ::testing::TestWithParam<MergeStrategy> {};

TEST_P(SortMergeStrategy, AllStrategiesProduceSameResult) {
  workload::GenConfig gen;
  gen.dist = workload::Dist::Normal;
  const int P = 6;
  std::vector<std::vector<u64>> shards(P);
  for (int r = 0; r < P; ++r)
    shards[r] = workload::generate_u64(gen, r, P, 900);
  SortConfig cfg;
  cfg.merge = GetParam();
  run_and_verify<u64>(P, std::move(shards), cfg);
}

INSTANTIATE_TEST_SUITE_P(Strategies, SortMergeStrategy,
                         ::testing::Values(MergeStrategy::Sort,
                                           MergeStrategy::BinaryTree,
                                           MergeStrategy::Tournament));

// ---------------------------------------------------------------------------
// Key types.
// ---------------------------------------------------------------------------

TEST(SortTypes, SignedIntegers) {
  Xoshiro256 rng(7);
  const int P = 5;
  std::vector<std::vector<i64>> shards(P);
  for (auto& s : shards)
    for (int i = 0; i < 700; ++i)
      s.push_back(static_cast<i64>(rng() % 2000) - 1000);
  run_and_verify<i64>(P, std::move(shards));
}

TEST(SortTypes, Doubles) {
  Xoshiro256 rng(8);
  const int P = 4;
  std::vector<std::vector<double>> shards(P);
  for (auto& s : shards)
    for (int i = 0; i < 800; ++i) s.push_back(rng.normal() * 1e6);
  run_and_verify<double>(P, std::move(shards));
}

TEST(SortTypes, Floats) {
  Xoshiro256 rng(9);
  const int P = 3;
  std::vector<std::vector<float>> shards(P);
  for (auto& s : shards)
    for (int i = 0; i < 500; ++i)
      s.push_back(static_cast<float>(rng.normal()));
  run_and_verify<float>(P, std::move(shards));
}

TEST(SortTypes, U32) {
  Xoshiro256 rng(10);
  const int P = 6;
  std::vector<std::vector<u32>> shards(P);
  for (auto& s : shards)
    for (int i = 0; i < 600; ++i) s.push_back(static_cast<u32>(rng()));
  run_and_verify<u32>(P, std::move(shards));
}

// ---------------------------------------------------------------------------
// Records with payload via sort_by_key.
// ---------------------------------------------------------------------------

struct Particle {
  u64 morton;
  double mass;
  int id;
};

TEST(SortByKey, RecordsTravelWithTheirKeys) {
  Xoshiro256 rng(11);
  const int P = 4;
  std::vector<std::vector<Particle>> shards(P);
  std::map<u64, double> mass_of;  // key -> mass oracle (keys made unique)
  u64 next_key = 0;
  for (auto& s : shards)
    for (int i = 0; i < 300; ++i) {
      const u64 k = (rng() % 100000) * 1000 + next_key++;
      const double m = rng.uniform01();
      s.push_back({k, m, static_cast<int>(next_key)});
      mass_of[k] = m;
    }

  std::vector<std::vector<Particle>> out(P);
  Team team({.nranks = P});
  team.run([&](Comm& c) {
    auto local = shards[c.rank()];
    sort_by_key(c, local, [](const Particle& p) { return p.morton; });
    out[c.rank()] = std::move(local);
  });

  u64 prev = 0;
  bool first = true;
  usize count = 0;
  for (const auto& o : out)
    for (const auto& p : o) {
      EXPECT_TRUE(first || p.morton >= prev);
      EXPECT_DOUBLE_EQ(mass_of.at(p.morton), p.mass)
          << "payload separated from key";
      prev = p.morton;
      first = false;
      ++count;
    }
  EXPECT_EQ(count, mass_of.size());
}

// ---------------------------------------------------------------------------
// Edge cases.
// ---------------------------------------------------------------------------

TEST(SortEdge, SingleRank) {
  Xoshiro256 rng(12);
  std::vector<std::vector<u64>> shards(1);
  for (int i = 0; i < 1000; ++i) shards[0].push_back(rng());
  run_and_verify<u64>(1, std::move(shards));
}

TEST(SortEdge, EmptyInput) {
  run_and_verify<u64>(4, std::vector<std::vector<u64>>(4));
}

TEST(SortEdge, OneElementTotal) {
  std::vector<std::vector<u64>> shards(4);
  shards[2] = {42};
  run_and_verify<u64>(4, std::move(shards));
}

TEST(SortEdge, FewerElementsThanRanks) {
  std::vector<std::vector<u64>> shards(8);
  shards[1] = {5};
  shards[6] = {3, 9};
  run_and_verify<u64>(8, std::move(shards));
}

TEST(SortEdge, SparseManyEmptyRanks) {
  workload::GenConfig gen;
  gen.sparsity = 0.5;
  gen.seed = 13;
  const int P = 12;
  std::vector<std::vector<u64>> shards(P);
  usize total = 0;
  for (int r = 0; r < P; ++r) {
    shards[r] = workload::generate_u64(gen, r, P, 400);
    total += shards[r].size();
  }
  ASSERT_LT(total, usize(P) * 400);  // sparsity actually removed some ranks
  ASSERT_GT(total, usize{0});
  run_and_verify<u64>(P, std::move(shards));
}

TEST(SortEdge, AlreadySortedInputFastPath) {
  const int P = 4;
  std::vector<std::vector<u64>> shards(P);
  u64 v = 0;
  for (auto& s : shards)
    for (int i = 0; i < 500; ++i) s.push_back(v += 3);
  SortConfig cfg;
  cfg.input_is_sorted = true;
  SortStats stats;
  run_and_verify<u64>(P, std::move(shards), cfg, &stats);
  // Globally sorted input with equal capacities: nothing moves off-rank.
  EXPECT_EQ(stats.elements_sent_off_rank, 0u);
}

TEST(SortEdge, ReverseSortedMovesEverything) {
  workload::GenConfig gen;
  gen.dist = workload::Dist::ReverseSorted;
  const int P = 4;
  std::vector<std::vector<u64>> shards(P);
  for (int r = 0; r < P; ++r)
    shards[r] = workload::generate_u64(gen, r, P, 500);
  SortStats stats;
  run_and_verify<u64>(P, std::move(shards), {}, &stats);
  // Rank 0 held the largest keys; almost all of its data must leave.
  EXPECT_GT(stats.elements_sent_off_rank, 350u);
}

TEST(SortStatsTest, IterationCountsMatchKeyWidth) {
  workload::GenConfig gen;
  gen.dist = workload::Dist::Uniform;
  gen.hi = 1'000'000'000;  // ~2^30
  const int P = 8;
  std::vector<std::vector<u64>> shards(P);
  for (int r = 0; r < P; ++r)
    shards[r] = workload::generate_u64(gen, r, P, 1000);
  SortStats stats;
  run_and_verify<u64>(P, std::move(shards), {}, &stats);
  EXPECT_GE(stats.histogram_iterations, 15u);
  EXPECT_LE(stats.histogram_iterations, 34u);
  EXPECT_GT(stats.splitter_probes, stats.histogram_iterations);
}

TEST(SortStatsTest, PhaseBreakdownCoversRuntime) {
  workload::GenConfig gen;
  const int P = 4;
  std::vector<std::vector<u64>> shards(P);
  for (int r = 0; r < P; ++r)
    shards[r] = workload::generate_u64(gen, r, P, 3000);
  Team team({.nranks = P});
  team.run([&](Comm& c) {
    auto local = shards[c.rank()];
    sort(c, local);
  });
  const auto& st = team.stats();
  EXPECT_GT(st.makespan_s, 0.0);
  EXPECT_GT(st.phase_seconds(net::Phase::LocalSort), 0.0);
  EXPECT_GT(st.phase_seconds(net::Phase::Histogram), 0.0);
  EXPECT_GT(st.phase_seconds(net::Phase::Exchange), 0.0);
  double frac = 0.0;
  for (usize p = 0; p < net::kPhaseCount; ++p)
    frac += st.phase_fraction(static_cast<net::Phase>(p));
  EXPECT_NEAR(frac, 1.0, 1e-9);
}

TEST(SortDeterminism, SameSeedSameResultAcrossRuns) {
  workload::GenConfig gen;
  gen.seed = 77;
  const int P = 5;
  auto run_once = [&] {
    std::vector<std::vector<u64>> shards(P);
    for (int r = 0; r < P; ++r)
      shards[r] = workload::generate_u64(gen, r, P, 800);
    Team team({.nranks = P});
    team.run([&](Comm& c) {
      auto local = shards[c.rank()];
      sort(c, local);
    });
    return team.stats().makespan_s;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());  // simulated time is deterministic
}

}  // namespace
}  // namespace hds::core
