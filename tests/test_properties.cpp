// Randomized property tests: many deterministic-seed trials with randomly
// drawn (P, sizes, distribution, epsilon, merge, exchange) configurations,
// checking the full output contract each time; plus cost-model invariants
// the simulated-time experiments depend on.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "core/histogram_sort.h"
#include "net/cost_model.h"
#include "runtime/team.h"
#include "workload/distributions.h"

namespace hds {
namespace {

using core::SortConfig;
using runtime::Comm;
using runtime::Team;

/// One fully randomized sort trial; all randomness derives from `seed`.
void random_trial(u64 seed) {
  Xoshiro256 rng(seed);
  const int P = 1 + static_cast<int>(rng() % 12);
  const auto& dists = workload::all_dists();
  workload::GenConfig gen;
  gen.dist = dists[rng() % dists.size()];
  gen.seed = rng();
  gen.sparsity = (rng() % 4 == 0) ? 0.3 : 0.0;

  SortConfig cfg;
  const double eps_choices[] = {0.0, 0.0, 0.05, 0.2};
  cfg.epsilon = eps_choices[rng() % 4];
  const core::MergeStrategy merges[] = {core::MergeStrategy::Sort,
                                        core::MergeStrategy::BinaryTree,
                                        core::MergeStrategy::Tournament};
  cfg.merge = merges[rng() % 3];
  cfg.init = (rng() % 3 == 0) ? core::SplitterInit::Sampled
                              : core::SplitterInit::MinMax;
  cfg.exchange = (rng() % 3 == 0) ? core::ExchangeAlgorithm::OneFactor
                                  : core::ExchangeAlgorithm::Alltoallv;
  cfg.overlap_merge =
      cfg.exchange == core::ExchangeAlgorithm::OneFactor && (rng() % 2 == 0);

  std::vector<std::vector<u64>> shards(P);
  std::vector<u64> all;
  std::vector<usize> caps;
  for (int r = 0; r < P; ++r) {
    const usize n = rng() % 800;
    shards[r] = workload::generate_u64(gen, r, P, n);
    caps.push_back(shards[r].size());
    all.insert(all.end(), shards[r].begin(), shards[r].end());
  }
  std::sort(all.begin(), all.end());

  std::vector<std::vector<u64>> out(P);
  Team team({.nranks = P});
  team.run([&](Comm& c) {
    auto local = shards[c.rank()];
    core::sort(c, local, cfg);
    out[c.rank()] = std::move(local);
  });

  std::vector<u64> merged;
  for (int r = 0; r < P; ++r) {
    ASSERT_TRUE(std::is_sorted(out[r].begin(), out[r].end()))
        << "seed=" << seed << " rank=" << r;
    if (r > 0 && !out[r].empty() && !out[r - 1].empty()) {
      ASSERT_LE(out[r - 1].back(), out[r].front()) << "seed=" << seed;
    }
    if (cfg.epsilon == 0.0) {
      ASSERT_EQ(out[r].size(), caps[r]) << "seed=" << seed << " rank=" << r;
    }
    merged.insert(merged.end(), out[r].begin(), out[r].end());
  }
  std::sort(merged.begin(), merged.end());
  ASSERT_EQ(merged, all) << "seed=" << seed;
}

class RandomSortTrial : public ::testing::TestWithParam<u64> {};

TEST_P(RandomSortTrial, FullContractHolds) { random_trial(GetParam()); }

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSortTrial,
                         ::testing::Range<u64>(1000, 1030));

// ---------------------------------------------------------------------------
// Cost model invariants the scaling experiments rest on.
// ---------------------------------------------------------------------------

TEST(CostModelProperties, AllCostsNonNegativeAndFinite) {
  const auto m = net::MachineModel::supermuc_phase2(8, 16);
  net::CostModel cm(m, 64.0);
  for (int P : {1, 2, 16, 128}) {
    for (usize bytes : {usize{0}, usize{8}, usize{1} << 20}) {
      for (auto t : {net::Traffic::Control, net::Traffic::Data}) {
        for (double c :
             {cm.barrier(P, std::max(1, P / 16)),
              cm.broadcast(P, std::max(1, P / 16), bytes, t),
              cm.allreduce(P, std::max(1, P / 16), bytes, t),
              cm.allgather(P, std::max(1, P / 16), bytes, t),
              cm.alltoall(P, std::max(1, P / 16), bytes, t),
              cm.scan(P, std::max(1, P / 16), bytes, t)}) {
          EXPECT_GE(c, 0.0);
          EXPECT_TRUE(std::isfinite(c));
        }
      }
    }
  }
}

TEST(CostModelProperties, AlltoallvMonotoneInVolume) {
  const auto m = net::MachineModel::supermuc_phase2(4, 4);
  net::CostModel cm(m);
  std::vector<rank_t> members(16);
  for (int i = 0; i < 16; ++i) members[i] = i;
  auto cost_for = [&](usize per_pair) {
    std::vector<usize> matrix(16 * 16, per_pair);
    return cm.alltoallv(members, matrix, net::Traffic::Data);
  };
  EXPECT_LT(cost_for(100), cost_for(10000));
  EXPECT_LT(cost_for(10000), cost_for(1000000));
}

TEST(CostModelProperties, AlltoallvIntraNodeCheaperThanInter) {
  // Same byte matrix, one node vs four nodes.
  auto cost_with_nodes = [&](int nodes) {
    const auto m = net::MachineModel::supermuc_phase2(nodes, 16 / nodes);
    net::CostModel cm(m);
    std::vector<rank_t> members(16);
    for (int i = 0; i < 16; ++i) members[i] = i;
    std::vector<usize> matrix(16 * 16, 1 << 16);
    return cm.alltoallv(members, matrix, net::Traffic::Data);
  };
  EXPECT_LT(cost_with_nodes(1), cost_with_nodes(4));
}

TEST(CostModelProperties, KwayMergeCachePenaltyKicksIn) {
  net::CostModel cm{net::MachineModel{}, 1.0};
  const usize n = 1 << 20;
  const double few = cm.kway_heap_merge(n, 16);
  const double many = cm.kway_heap_merge(n, 1024);
  // log2(1024)/log2(16) = 2.5x without penalty; the cache term adds more.
  EXPECT_GT(many, few * 2.6);
}

TEST(CostModelProperties, ScaledBytesOnlyAffectsData) {
  net::CostModel cm{net::MachineModel{}, 32.0};
  EXPECT_DOUBLE_EQ(cm.scaled_bytes(100, net::Traffic::Control), 100.0);
  EXPECT_DOUBLE_EQ(cm.scaled_bytes(100, net::Traffic::Data), 3200.0);
}

TEST(CostModelProperties, ControlChargesIgnoreDataScale) {
  // Two teams differing only in data_scale must charge control-plane
  // computations identically.
  auto control_time = [&](double scale) {
    runtime::TeamConfig cfg;
    cfg.nranks = 2;
    cfg.data_scale = scale;
    Team team(cfg);
    team.run([&](Comm& c) { c.charge_control_sort(10000); });
    return team.stats().makespan_s;
  };
  EXPECT_DOUBLE_EQ(control_time(1.0), control_time(512.0));
}

TEST(CostModelProperties, DataChargesScale) {
  auto data_time = [&](double scale) {
    runtime::TeamConfig cfg;
    cfg.nranks = 2;
    cfg.data_scale = scale;
    Team team(cfg);
    team.run([&](Comm& c) { c.charge_sort(10000); });
    return team.stats().makespan_s;
  };
  EXPECT_GT(data_time(512.0), data_time(1.0) * 256.0);
}

TEST(CostModelProperties, CollectiveOverheadGrowsWithNodesNotRanks) {
  // The histogram bottleneck mechanism: allreduce latency grows with the
  // number of nodes spanned, not merely the rank count.
  const auto m16 = net::MachineModel::supermuc_phase2(1, 16);
  const auto m4x4 = net::MachineModel::supermuc_phase2(4, 4);
  net::CostModel a(m16), b(m4x4);
  EXPECT_LT(a.allreduce(16, 1, 1024, net::Traffic::Control),
            b.allreduce(16, 4, 1024, net::Traffic::Control));
}

}  // namespace
}  // namespace hds
