// Tests for the capacity-targeted sort entry points (sort_to_capacity /
// sort_balanced), the validation module, and host calibration.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "core/histogram_sort.h"
#include "core/verify.h"
#include "net/calibrate.h"
#include "runtime/team.h"
#include "workload/distributions.h"

namespace hds::core {
namespace {

using runtime::Comm;
using runtime::Team;

[[maybe_unused]] auto identity = [](const auto& v) { return v; };

TEST(SortToCapacity, ArbitraryCapacities) {
  const int P = 4;
  workload::GenConfig gen;
  std::vector<std::vector<u64>> shards(P);
  std::vector<u64> all;
  for (int r = 0; r < P; ++r) {
    shards[r] = workload::generate_u64(gen, r, P, 250);
    all.insert(all.end(), shards[r].begin(), shards[r].end());
  }
  std::sort(all.begin(), all.end());
  const std::vector<usize> caps = {100, 400, 0, 500};  // sums to 1000

  std::vector<std::vector<u64>> out(P);
  Team team({.nranks = P});
  team.run([&](Comm& c) {
    auto local = shards[c.rank()];
    sort_to_capacity(c, local, identity, caps[c.rank()]);
    out[c.rank()] = std::move(local);
  });
  std::vector<u64> merged;
  for (int r = 0; r < P; ++r) {
    EXPECT_EQ(out[r].size(), caps[r]) << "rank " << r;
    merged.insert(merged.end(), out[r].begin(), out[r].end());
  }
  std::sort(merged.begin(), merged.end());
  EXPECT_EQ(merged, all);
}

TEST(SortToCapacity, MismatchedCapacitiesThrow) {
  Team team({.nranks = 2});
  EXPECT_THROW(team.run([&](Comm& c) {
                 std::vector<u64> local{1, 2, 3};
                 sort_to_capacity(c, local, identity, 100);
               }),
               invariant_error);
}

TEST(SortBalanced, EvensOutSparseInput) {
  const int P = 6;
  std::vector<std::vector<u64>> shards(P);
  Xoshiro256 rng(3);
  for (int i = 0; i < 599; ++i) shards[2].push_back(rng());
  shards[5].push_back(42);  // total 600 over 6 ranks -> 100 each

  std::vector<std::vector<u64>> out(P);
  Team team({.nranks = P});
  team.run([&](Comm& c) {
    auto local = shards[c.rank()];
    sort_balanced(c, local, identity);
    out[c.rank()] = std::move(local);
  });
  for (int r = 0; r < P; ++r) EXPECT_EQ(out[r].size(), 100u);
  for (int r = 0; r + 1 < P; ++r)
    EXPECT_LE(out[r].back(), out[r + 1].front());
}

TEST(SortBalanced, RemainderGoesToLowRanks) {
  const int P = 4;
  std::vector<std::vector<u64>> shards(P);
  Xoshiro256 rng(5);
  for (int i = 0; i < 10; ++i) shards[0].push_back(rng());  // N=10, P=4
  std::vector<usize> sizes(P);
  Team team({.nranks = P});
  team.run([&](Comm& c) {
    auto local = shards[c.rank()];
    sort_balanced(c, local, identity);
    sizes[c.rank()] = local.size();
  });
  EXPECT_EQ(sizes, (std::vector<usize>{3, 3, 2, 2}));
}

TEST(Validate, DetectsContentAndOrder) {
  const int P = 4;
  workload::GenConfig gen;
  std::vector<std::vector<u64>> shards(P);
  for (int r = 0; r < P; ++r)
    shards[r] = workload::generate_u64(gen, r, P, 300);

  Team team({.nranks = P});
  team.run([&](Comm& c) {
    auto local = shards[c.rank()];
    const auto before =
        validate(c, std::span<const u64>(local.data(), local.size()),
                 identity);
    EXPECT_FALSE(before.globally_sorted);  // random input
    EXPECT_EQ(before.count, 1200u);

    sort(c, local);
    const auto after =
        validate(c, std::span<const u64>(local.data(), local.size()),
                 identity);
    EXPECT_TRUE(after.globally_sorted);
    EXPECT_TRUE(SortValidation::consistent(before, after));
    EXPECT_DOUBLE_EQ(after.imbalance, 1.0);  // equal capacities

    // Corrupt one element: checksum must change.
    local[0] ^= 1;
    const auto corrupted =
        validate(c, std::span<const u64>(local.data(), local.size()),
                 identity);
    EXPECT_FALSE(SortValidation::consistent(before, corrupted));
  });
}

TEST(Validate, ImbalanceReflectsSkew) {
  Team team({.nranks = 4});
  std::vector<std::vector<u64>> shards = {{1, 2, 3, 4, 5, 6}, {7}, {8}, {9}};
  team.run([&](Comm& c) {
    const auto& local = shards[c.rank()];
    const auto v = validate(
        c, std::span<const u64>(local.data(), local.size()), identity);
    EXPECT_NEAR(v.imbalance, 6.0 * 4 / 9.0, 1e-12);
  });
}

TEST(Calibrate, ProducesSaneConstants) {
  const auto cal = net::measure_host_constants(1u << 18);
  EXPECT_GT(cal.sort_s_per_elem_log, 0.0);
  EXPECT_LT(cal.sort_s_per_elem_log, 1e-6);  // < 1 us/elem/log is sane
  EXPECT_GT(cal.merge_s_per_elem, 0.0);
  EXPECT_GT(cal.partition_s_per_elem, 0.0);
  EXPECT_GT(cal.scan_s_per_elem, 0.0);
  EXPECT_GT(cal.binsearch_s_per_step, 0.0);
  // Sorting costs more per element than a linear scan.
  EXPECT_GT(cal.sort_s_per_elem_log * 18, cal.scan_s_per_elem);
}

TEST(Calibrate, AppliesToMachineModel) {
  net::MachineModel m;
  net::CalibrationResult cal;
  cal.sort_s_per_elem_log = 1e-9;
  cal.merge_s_per_elem = 2e-9;
  cal.partition_s_per_elem = 3e-10;
  cal.scan_s_per_elem = 4e-10;
  cal.binsearch_s_per_step = 5e-9;
  net::apply_calibration(m, cal);
  EXPECT_DOUBLE_EQ(m.sort_s_per_elem_log, 1e-9);
  EXPECT_DOUBLE_EQ(m.merge_s_per_elem, 2e-9);
  EXPECT_DOUBLE_EQ(m.binsearch_s_per_step, 5e-9);
}

TEST(Calibrate, RejectsEmptyCalibration) {
  net::MachineModel m;
  EXPECT_THROW(net::apply_calibration(m, {}), invariant_error);
}

}  // namespace
}  // namespace hds::core
