// Tests for the distributed STL-like algorithms layer (algorithms.h)
// against sequential oracles, including empty and sparse inputs.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/rng.h"
#include "core/algorithms.h"
#include "runtime/team.h"

namespace hds::core {
namespace {

using runtime::Comm;
using runtime::Team;

std::vector<std::vector<i64>> random_shards(int P, u64 seed,
                                            usize max_per_rank = 500) {
  Xoshiro256 rng(seed);
  std::vector<std::vector<i64>> shards(P);
  for (auto& s : shards) {
    const usize n = rng() % max_per_rank;
    for (usize i = 0; i < n; ++i)
      s.push_back(static_cast<i64>(rng() % 1000) - 500);
  }
  return shards;
}

std::vector<i64> flatten(const std::vector<std::vector<i64>>& shards) {
  std::vector<i64> all;
  for (const auto& s : shards) all.insert(all.end(), s.begin(), s.end());
  return all;
}

TEST(Algorithms, GlobalSize) {
  const auto shards = random_shards(5, 1);
  const auto all = flatten(shards);
  Team team({.nranks = 5});
  team.run([&](Comm& c) {
    const auto& local = shards[c.rank()];
    EXPECT_EQ(global_size(c, std::span<const i64>(local)), all.size());
  });
}

TEST(Algorithms, MinMaxMatchOracle) {
  const auto shards = random_shards(6, 2);
  const auto all = flatten(shards);
  ASSERT_FALSE(all.empty());
  Team team({.nranks = 6});
  team.run([&](Comm& c) {
    const auto& local = shards[c.rank()];
    EXPECT_EQ(*min_value(c, std::span<const i64>(local)),
              *std::min_element(all.begin(), all.end()));
    EXPECT_EQ(*max_value(c, std::span<const i64>(local)),
              *std::max_element(all.begin(), all.end()));
  });
}

TEST(Algorithms, MinMaxEmptyGivesNullopt) {
  Team team({.nranks = 3});
  team.run([&](Comm& c) {
    std::vector<i64> empty;
    EXPECT_FALSE(min_value(c, std::span<const i64>(empty)).has_value());
    EXPECT_FALSE(max_value(c, std::span<const i64>(empty)).has_value());
  });
}

TEST(Algorithms, MinMaxWithSomeEmptyRanks) {
  std::vector<std::vector<i64>> shards = {{}, {5, -3}, {}, {10}};
  Team team({.nranks = 4});
  team.run([&](Comm& c) {
    const auto& local = shards[c.rank()];
    EXPECT_EQ(*min_value(c, std::span<const i64>(local)), -3);
    EXPECT_EQ(*max_value(c, std::span<const i64>(local)), 10);
  });
}

TEST(Algorithms, ReduceSum) {
  const auto shards = random_shards(4, 3);
  const auto all = flatten(shards);
  const i64 expected = std::accumulate(all.begin(), all.end(), i64{0});
  Team team({.nranks = 4});
  team.run([&](Comm& c) {
    const auto& local = shards[c.rank()];
    EXPECT_EQ(reduce(c, std::span<const i64>(local), i64{0}, std::plus<>{}),
              expected);
  });
}

TEST(Algorithms, CountAndCountIf) {
  const auto shards = random_shards(7, 4);
  const auto all = flatten(shards);
  const u64 negatives = std::count_if(all.begin(), all.end(),
                                      [](i64 v) { return v < 0; });
  const u64 zeros = std::count(all.begin(), all.end(), i64{0});
  Team team({.nranks = 7});
  team.run([&](Comm& c) {
    const auto& local = shards[c.rank()];
    EXPECT_EQ(count_if(c, std::span<const i64>(local),
                       [](i64 v) { return v < 0; }),
              negatives);
    EXPECT_EQ(count(c, std::span<const i64>(local), i64{0}), zeros);
  });
}

TEST(Algorithms, InclusiveScanMatchesOracle) {
  auto shards = random_shards(5, 5, 100);
  const auto all = flatten(shards);
  std::vector<i64> expected(all.size());
  std::partial_sum(all.begin(), all.end(), expected.begin());

  std::vector<std::vector<i64>> out(5);
  Team team({.nranks = 5});
  team.run([&](Comm& c) {
    auto local = shards[c.rank()];
    inclusive_scan(c, std::span<i64>(local));
    out[c.rank()] = std::move(local);
  });
  std::vector<i64> got;
  for (const auto& o : out) got.insert(got.end(), o.begin(), o.end());
  EXPECT_EQ(got, expected);
}

TEST(Algorithms, MedianAndQuantiles) {
  auto shards = random_shards(6, 6);
  auto all = flatten(shards);
  ASSERT_GT(all.size(), 10u);
  std::sort(all.begin(), all.end());
  Team team({.nranks = 6});
  team.run([&](Comm& c) {
    auto local = shards[c.rank()];
    EXPECT_EQ(median_value(c, std::span<i64>(local)),
              all[(all.size() - 1) / 2]);
  });
  team.run([&](Comm& c) {
    auto local = shards[c.rank()];
    EXPECT_EQ(quantile(c, std::span<i64>(local), 0.25),
              all[std::min(all.size() - 1,
                           static_cast<usize>(0.25 * all.size()))]);
  });
  team.run([&](Comm& c) {
    auto local = shards[c.rank()];
    EXPECT_EQ(quantile(c, std::span<i64>(local), 1.0), all.back());
    EXPECT_EQ(quantile(c, std::span<i64>(local), 0.0), all.front());
  });
}

TEST(Algorithms, MedianOfEmptyThrows) {
  Team team({.nranks = 2});
  EXPECT_THROW(team.run([&](Comm& c) {
                 std::vector<i64> empty;
                 median_value(c, std::span<i64>(empty));
               }),
               invariant_error);
}

TEST(Algorithms, HistogramSumsToNAndMatchesOracle) {
  const auto shards = random_shards(4, 7);
  const auto all = flatten(shards);
  const usize bins = 8;
  std::vector<u64> expected(bins, 0);
  for (i64 v : all) {
    const double pos = (static_cast<double>(v) + 500.0) / (1000.0 / bins);
    const usize b =
        pos < 0 ? 0 : pos >= bins ? bins - 1 : static_cast<usize>(pos);
    ++expected[b];
  }
  Team team({.nranks = 4});
  team.run([&](Comm& c) {
    const auto& local = shards[c.rank()];
    const auto h = histogram(c, std::span<const i64>(local), i64{-500},
                             i64{500}, bins);
    EXPECT_EQ(h, expected);
    u64 total = 0;
    for (u64 x : h) total += x;
    EXPECT_EQ(total, all.size());
  });
}

TEST(Algorithms, IsSortedDetectsBoundaryViolations) {
  Team team({.nranks = 3});
  std::vector<std::vector<i64>> good = {{1, 2}, {3, 4}, {5}};
  std::vector<std::vector<i64>> bad = {{1, 5}, {3, 4}, {6}};
  team.run([&](Comm& c) {
    EXPECT_TRUE(is_sorted(c, std::span<const i64>(good[c.rank()])));
    EXPECT_FALSE(is_sorted(c, std::span<const i64>(bad[c.rank()])));
  });
}

TEST(Algorithms, IsSortedIgnoresEmptyRanks) {
  Team team({.nranks = 4});
  std::vector<std::vector<i64>> shards = {{1, 2}, {}, {2, 9}, {}};
  team.run([&](Comm& c) {
    EXPECT_TRUE(is_sorted(c, std::span<const i64>(shards[c.rank()])));
  });
}

}  // namespace
}  // namespace hds::core
