// Observability tests: the per-rank event tracer (ordering, reconciliation
// against SimClock phase sums, zero overhead when disabled), the Chrome
// trace JSON export, the communication matrix, the counter/series registry,
// and the watchdog's recent-ops ring dump.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/bitonic_sort.h"
#include "baselines/hss_sort.h"
#include "baselines/hyksort.h"
#include "baselines/parallel_merge_sort.h"
#include "baselines/sample_sort.h"
#include "core/histogram_sort.h"
#include "obs/report.h"
#include "obs/tracer.h"
#include "runtime/comm.h"
#include "runtime/fault.h"
#include "runtime/team.h"
#include "workload/distributions.h"

namespace hds {
namespace {

using runtime::Comm;
using runtime::Team;
using runtime::TeamConfig;

/// One traced histogram-sort run; per-rank SortStats land in `stats_out`.
void run_traced_sort(Team& team, usize keys_per_rank, u64 seed,
                     std::vector<core::SortStats>* stats_out = nullptr) {
  team.run([&](Comm& c) {
    workload::GenConfig gen;
    gen.seed = seed;
    auto local = workload::generate_u64(gen, c.rank(), c.size(),
                                        keys_per_rank);
    const core::SortStats st = core::sort(c, local);
    if (stats_out != nullptr)
      (*stats_out)[static_cast<usize>(c.rank())] = st;
  });
}

TEST(TraceEvents, MonotoneNonOverlappingPerRank) {
  TeamConfig cfg;
  cfg.nranks = 8;
  cfg.trace = true;
  Team team(cfg);
  run_traced_sort(team, 5000, 1);

  const obs::TraceReport* trace = team.trace();
  ASSERT_NE(trace, nullptr);
  ASSERT_EQ(trace->nranks, 8);
  EXPECT_GT(trace->total_events(), 0u);
  for (int r = 0; r < trace->nranks; ++r) {
    const auto& evs = trace->events[static_cast<usize>(r)];
    ASSERT_FALSE(evs.empty());
    double prev_end = 0.0;
    for (const obs::TraceEvent& e : evs) {
      EXPECT_LE(e.t0, e.t1);
      // Slices are chronological and non-overlapping: ops span
      // [entry, exit] and compute slices fill the gaps between them.
      EXPECT_GE(e.t0, prev_end);
      prev_end = e.t1;
    }
    EXPECT_LE(prev_end, trace->makespan_s + 1e-12);
  }
}

TEST(TraceEvents, SlicesReconcileWithClockPhaseSeconds) {
  TeamConfig cfg;
  cfg.nranks = 8;
  cfg.trace = true;
  Team team(cfg);
  run_traced_sort(team, 5000, 2);

  const obs::TraceReport* trace = team.trace();
  ASSERT_NE(trace, nullptr);
  for (int r = 0; r < trace->nranks; ++r) {
    const auto traced = trace->traced_phase_seconds(r);
    const auto& clock = trace->clock_phase_s[static_cast<usize>(r)];
    for (usize p = 0; p < net::kPhaseCount; ++p) {
      EXPECT_NEAR(traced[p], clock[p], 1e-9 * std::max(1.0, clock[p]))
          << "rank " << r << " phase "
          << net::phase_name(static_cast<net::Phase>(p));
    }
  }
}

TEST(TraceEvents, ReportDeterministicForSameSeed) {
  auto serialize = [] {
    TeamConfig cfg;
    cfg.nranks = 8;
    cfg.trace = true;
    Team team(cfg);
    run_traced_sort(team, 4000, 7);
    std::ostringstream os;
    team.trace()->write_chrome_json(os);
    return os.str();
  };
  const std::string a = serialize();
  const std::string b = serialize();
  EXPECT_EQ(a, b);
}

TEST(TraceEvents, DisabledTracerNeverAllocatesEventStorage) {
  obs::RankTracer tracer(/*ring_capacity=*/16);
  tracer.set_enabled(false);
  for (int i = 0; i < 100; ++i) {
    tracer.op_begin(obs::OpKind::Barrier, obs::OpClass::Sync,
                    net::Phase::Other, i * 1.0,
                    /*bytes=*/64, /*peer=*/-1, /*tag=*/0,
                    net::Traffic::Control);
    tracer.op_end(i * 1.0 + 0.5);
    tracer.on_advance(net::Phase::Other, i * 1.0 + 0.5, i * 1.0 + 1.0);
  }
  tracer.finalize();
  EXPECT_EQ(tracer.events_capacity(), 0u);
  EXPECT_EQ(tracer.details_capacity(), 0u);
  // The always-on watchdog ring still holds the most recent ops.
  EXPECT_EQ(tracer.ring_snapshot().size(), 16u);
}

TEST(TraceEvents, TracingDoesNotPerturbSimulatedTime) {
  auto run = [](bool trace) {
    TeamConfig cfg;
    cfg.nranks = 8;
    cfg.trace = trace;
    Team team(cfg);
    run_traced_sort(team, 5000, 3);
    std::array<double, net::kPhaseCount + 1> sums{};
    sums[net::kPhaseCount] = team.stats().makespan_s;
    for (usize p = 0; p < net::kPhaseCount; ++p)
      sums[p] = team.stats().phase_seconds(static_cast<net::Phase>(p));
    return sums;
  };
  const auto off = run(false);
  const auto on = run(true);
  for (usize i = 0; i < off.size(); ++i) EXPECT_EQ(off[i], on[i]);

  TeamConfig cfg;
  cfg.nranks = 4;
  Team untraced(cfg);
  run_traced_sort(untraced, 1000, 3);
  EXPECT_EQ(untraced.trace(), nullptr);
}

TEST(ChromeJson, MinimalSchema) {
  TeamConfig cfg;
  cfg.nranks = 4;
  cfg.trace = true;
  Team team(cfg);
  run_traced_sort(team, 2000, 5);

  std::ostringstream os;
  team.trace()->write_chrome_json(os);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // Metadata names every rank's track.
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"rank 3\""), std::string::npos);
  // Complete ("X") events with timestamp, duration and phase category.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"Histogram\""), std::string::npos);
  // The validation side-channel for scripts.
  EXPECT_NE(json.find("\"hds\":{\"ranks\":4"), std::string::npos);
  EXPECT_NE(json.find("\"clock_phase_seconds\":["), std::string::npos);
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"comm_matrix_bytes\":["), std::string::npos);
}

TEST(CommMatrixTest, RowSumsMatchOffRankSendVolume) {
  TeamConfig cfg;
  cfg.nranks = 8;
  cfg.machine = net::MachineModel::supermuc_phase2(/*nodes=*/2,
                                                   /*ranks_per_node=*/4);
  cfg.trace = true;
  Team team(cfg);
  std::vector<core::SortStats> stats(8);
  run_traced_sort(team, 5000, 11, &stats);

  const obs::CommMatrix m = team.trace()->comm_matrix(/*data_only=*/true);
  ASSERT_EQ(m.nranks, 8);
  for (int r = 0; r < 8; ++r) {
    EXPECT_EQ(m.row_sum(r),
              stats[static_cast<usize>(r)].elements_sent_off_rank *
                  sizeof(u64))
        << "rank " << r;
  }
  EXPECT_GE(m.gini(), 0.0);
  EXPECT_LE(m.gini(), 1.0);
  EXPECT_GE(m.max_over_mean(), 1.0);
  EXPECT_NE(m.summary().find("P=8"), std::string::npos);
}

TEST(CounterRegistry, MatchesSortStats) {
  TeamConfig cfg;
  cfg.nranks = 8;
  cfg.machine = net::MachineModel::supermuc_phase2(/*nodes=*/2,
                                                   /*ranks_per_node=*/4);
  Team team(cfg);
  std::vector<core::SortStats> stats(8);
  run_traced_sort(team, 5000, 13, &stats);

  for (int r = 0; r < 8; ++r) {
    const obs::Metrics& m = team.metrics(r);
    const core::SortStats& st = stats[static_cast<usize>(r)];
    EXPECT_EQ(m.value(obs::Counter::HistogramIterations),
              st.histogram_iterations);
    EXPECT_EQ(m.value(obs::Counter::SplitterProbes), st.splitter_probes);
    EXPECT_EQ(m.value(obs::Counter::ExchangeBytesOnNode) +
                  m.value(obs::Counter::ExchangeBytesOffNode),
              st.elements_sent_off_rank * sizeof(u64));
    EXPECT_EQ(m.value(obs::Counter::ExchangeElementsKept),
              st.elements_before - st.elements_sent_off_rank);
    // 2 nodes: some traffic must actually leave the node.
    EXPECT_GT(m.value(obs::Counter::ExchangeBytesOffNode), 0u);
  }
}

TEST(CounterRegistry, ConvergenceSeriesEndsResolved) {
  TeamConfig cfg;
  cfg.nranks = 8;
  Team team(cfg);
  std::vector<core::SortStats> stats(8);
  run_traced_sort(team, 5000, 17, &stats);

  const core::SortStats& st = stats[0];
  ASSERT_EQ(st.histogram_convergence.size(), st.histogram_iterations);
  ASSERT_FALSE(st.histogram_convergence.empty());
  // The final round resolves every boundary: max residual error is 0.
  EXPECT_EQ(st.histogram_convergence.back(), 0.0);
  for (double e : st.histogram_convergence) {
    EXPECT_GE(e, 0.0);
    EXPECT_LE(e, 1.0);
  }
  // The per-rank registry carries the same curve (identical on all ranks).
  for (int r = 0; r < 8; ++r) {
    const auto series =
        team.metrics(r).series(obs::Series::HistogramConvergence);
    ASSERT_EQ(series.size(), st.histogram_convergence.size());
    for (usize i = 0; i < series.size(); ++i)
      EXPECT_EQ(series[i], st.histogram_convergence[i]);
  }
}

TEST(CounterRegistry, BaselinesAttributePhasesAwayFromOther) {
  struct Case {
    const char* name;
    void (*run)(Comm&, std::vector<u64>&);
  };
  const Case cases[] = {
      {"sample_sort",
       [](Comm& c, std::vector<u64>& v) { baselines::sample_sort(c, v); }},
      {"hss_sort",
       [](Comm& c, std::vector<u64>& v) { baselines::hss_sort(c, v); }},
      {"hyksort",
       [](Comm& c, std::vector<u64>& v) { baselines::hyksort(c, v); }},
      {"bitonic_sort",
       [](Comm& c, std::vector<u64>& v) { baselines::bitonic_sort(c, v); }},
      {"parallel_merge_sort",
       [](Comm& c, std::vector<u64>& v) {
         baselines::parallel_merge_sort(c, v);
       }},
  };
  for (const Case& cs : cases) {
    TeamConfig cfg;
    cfg.nranks = 8;
    Team team(cfg);
    team.run([&](Comm& c) {
      workload::GenConfig gen;
      gen.seed = 23;
      auto local = workload::generate_u64(gen, c.rank(), c.size(), 4000);
      cs.run(c, local);
    });
    EXPECT_LT(team.stats().phase_fraction(net::Phase::Other), 0.05)
        << cs.name;
  }
}

TEST(WatchdogDump, AbortDiagnosticIncludesRecentOpsRing) {
  constexpr u64 kTag = 77;
  auto plan = std::make_shared<runtime::FaultPlan>();
  plan->drop_message(0, 1, kTag);
  TeamConfig cfg;
  cfg.nranks = 2;
  cfg.fault = plan;
  cfg.watchdog_timeout_s = 0.3;
  Team team(cfg);
  try {
    team.run([&](Comm& c) {
      c.barrier();  // guarantees the ring has prior completed ops
      if (c.rank() == 0) {
        const std::vector<u64> payload{42};
        c.send(1, kTag, std::span<const u64>(payload));
      } else {
        (void)c.recv<u64>(0, kTag);
      }
      c.barrier();
    });
    FAIL() << "expected watchdog_timeout";
  } catch (const runtime::watchdog_timeout& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("recent ops (oldest first):"), std::string::npos)
        << what;
    EXPECT_NE(what.find("Barrier"), std::string::npos) << what;
    EXPECT_NE(what.find("tag=" + std::to_string(kTag)), std::string::npos)
        << what;
  }
}

}  // namespace
}  // namespace hds
