// Tests for the 1-factor pairwise exchange (Sec. VI-E1 future work): the
// matching structure of the schedule, correctness of the sort through both
// exchange paths, overlap-merge equivalence, and edge cases.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "core/exchange.h"
#include "core/histogram_sort.h"
#include "runtime/team.h"
#include "workload/distributions.h"

namespace hds::core {
namespace {

using runtime::Comm;
using runtime::Team;

TEST(OneFactorSchedule, EvenPIsPerfectMatchingEveryRound) {
  for (int P : {2, 4, 6, 8, 16}) {
    std::set<std::pair<int, int>> seen;
    for (int r = 0; r < P - 1; ++r) {
      std::vector<int> partner(P);
      for (int i = 0; i < P; ++i) {
        partner[i] = one_factor_partner(P, r, i);
        ASSERT_NE(partner[i], i) << "P=" << P << " r=" << r << " i=" << i;
        ASSERT_GE(partner[i], 0);
        ASSERT_LT(partner[i], P);
      }
      for (int i = 0; i < P; ++i) {
        EXPECT_EQ(partner[partner[i]], i)
            << "not symmetric at P=" << P << " r=" << r << " i=" << i;
        if (i < partner[i]) seen.insert({i, partner[i]});
      }
    }
    // All P*(P-1)/2 pairs covered exactly once over P-1 rounds.
    EXPECT_EQ(seen.size(), static_cast<usize>(P) * (P - 1) / 2);
  }
}

TEST(OneFactorSchedule, OddPEveryRankIdlesOncePerCycle) {
  for (int P : {3, 5, 7, 9}) {
    std::set<std::pair<int, int>> seen;
    std::vector<int> idle_count(P, 0);
    for (int r = 0; r < P; ++r) {
      for (int i = 0; i < P; ++i) {
        const int j = one_factor_partner(P, r, i);
        if (j == i) {
          ++idle_count[i];
          continue;
        }
        EXPECT_EQ(one_factor_partner(P, r, j), i);
        if (i < j) seen.insert({i, j});
      }
    }
    for (int i = 0; i < P; ++i) EXPECT_EQ(idle_count[i], 1) << "i=" << i;
    EXPECT_EQ(seen.size(), static_cast<usize>(P) * (P - 1) / 2);
  }
}

/// Full sort through a given config; verifies invariants and returns sizes.
void check_sort(int P, const SortConfig& cfg, workload::GenConfig gen,
                usize n_rank) {
  std::vector<std::vector<u64>> shards(P);
  std::vector<u64> all;
  for (int r = 0; r < P; ++r) {
    shards[r] = workload::generate_u64(gen, r, P, n_rank);
    all.insert(all.end(), shards[r].begin(), shards[r].end());
  }
  std::sort(all.begin(), all.end());

  std::vector<std::vector<u64>> out(P);
  Team team({.nranks = P});
  team.run([&](Comm& c) {
    auto local = shards[c.rank()];
    sort(c, local, cfg);
    EXPECT_TRUE(is_globally_sorted(
        c, std::span<const u64>(local.data(), local.size()),
        [](u64 v) { return v; }));
    out[c.rank()] = std::move(local);
  });
  std::vector<u64> merged;
  for (int r = 0; r < P; ++r) {
    merged.insert(merged.end(), out[r].begin(), out[r].end());
    if (cfg.epsilon == 0.0) {
      EXPECT_EQ(out[r].size(), shards[r].size());
    }
  }
  std::sort(merged.begin(), merged.end());
  EXPECT_EQ(merged, all);
}

TEST(OneFactorExchange, SortsEvenP) {
  SortConfig cfg;
  cfg.exchange = ExchangeAlgorithm::OneFactor;
  check_sort(8, cfg, {}, 700);
}

TEST(OneFactorExchange, SortsOddP) {
  SortConfig cfg;
  cfg.exchange = ExchangeAlgorithm::OneFactor;
  check_sort(7, cfg, {}, 500);
}

TEST(OneFactorExchange, OverlapMergeProducesSameResult) {
  SortConfig cfg;
  cfg.exchange = ExchangeAlgorithm::OneFactor;
  cfg.overlap_merge = true;
  check_sort(8, cfg, {}, 900);
  check_sort(5, cfg, {}, 400);
}

TEST(OneFactorExchange, OverlapWithDuplicatesAndSkew) {
  workload::GenConfig gen;
  gen.dist = workload::Dist::Zipf;
  SortConfig cfg;
  cfg.exchange = ExchangeAlgorithm::OneFactor;
  cfg.overlap_merge = true;
  check_sort(6, cfg, gen, 800);
}

TEST(OneFactorExchange, SparseInput) {
  workload::GenConfig gen;
  gen.sparsity = 0.4;
  gen.seed = 9;
  SortConfig cfg;
  cfg.exchange = ExchangeAlgorithm::OneFactor;
  check_sort(10, cfg, gen, 300);
}

TEST(OneFactorExchange, TwoRanks) {
  SortConfig cfg;
  cfg.exchange = ExchangeAlgorithm::OneFactor;
  cfg.overlap_merge = true;
  check_sort(2, cfg, {}, 1000);
}

TEST(HypercubeExchange, SortsPowerOfTwo) {
  SortConfig cfg;
  cfg.exchange = ExchangeAlgorithm::Hypercube;
  check_sort(8, cfg, {}, 700);
  check_sort(16, cfg, {}, 300);
  check_sort(2, cfg, {}, 500);
}

TEST(HypercubeExchange, RejectsNonPowerOfTwo) {
  Team team({.nranks = 6});
  EXPECT_THROW(team.run([&](Comm& c) {
                 std::vector<u64> v{3, 1, 2};
                 SortConfig cfg;
                 cfg.exchange = ExchangeAlgorithm::Hypercube;
                 sort(c, v, cfg);
               }),
               argument_error);
}

TEST(HypercubeExchange, DuplicatesAndSkew) {
  workload::GenConfig gen;
  gen.dist = workload::Dist::Staircase;
  SortConfig cfg;
  cfg.exchange = ExchangeAlgorithm::Hypercube;
  check_sort(8, cfg, gen, 600);
  gen.dist = workload::Dist::AllEqual;
  check_sort(4, cfg, gen, 400);
}

TEST(HypercubeExchange, SparseInput) {
  workload::GenConfig gen;
  gen.sparsity = 0.5;
  gen.seed = 77;
  SortConfig cfg;
  cfg.exchange = ExchangeAlgorithm::Hypercube;
  check_sort(8, cfg, gen, 250);
}

TEST(HypercubeExchange, CheaperLatencyForTinyPartitions) {
  // The Sec. VI-E1 trade: for very small N/P the log2(P)-round
  // store-and-forward beats the (P-1)-message direct exchange.
  auto time_with = [&](ExchangeAlgorithm algo) {
    runtime::TeamConfig tcfg;
    tcfg.nranks = 32;
    tcfg.machine = net::MachineModel::supermuc_phase2(8, 4);
    Team team(tcfg);
    workload::GenConfig gen;
    std::vector<std::vector<u64>> shards(32);
    for (int r = 0; r < 32; ++r)
      shards[r] = workload::generate_u64(gen, r, 32, 64);  // tiny N/P
    team.run([&](Comm& c) {
      auto local = shards[c.rank()];
      SortConfig cfg;
      cfg.exchange = algo;
      sort(c, local, cfg);
    });
    return team.stats().phase_seconds(net::Phase::Exchange);
  };
  EXPECT_LT(time_with(ExchangeAlgorithm::Hypercube),
            time_with(ExchangeAlgorithm::OneFactor));
}

TEST(HierarchicalExchange, SortsOnMultiNodeMachine) {
  // 4 nodes x 4 ranks: intra-node slices go direct, the rest through the
  // node leaders.
  runtime::TeamConfig tcfg;
  tcfg.nranks = 16;
  tcfg.machine = net::MachineModel::supermuc_phase2(4, 4);
  Team team(tcfg);
  workload::GenConfig gen;
  std::vector<std::vector<u64>> shards(16);
  std::vector<u64> all;
  for (int r = 0; r < 16; ++r) {
    shards[r] = workload::generate_u64(gen, r, 16, 400);
    all.insert(all.end(), shards[r].begin(), shards[r].end());
  }
  std::sort(all.begin(), all.end());
  std::vector<std::vector<u64>> out(16);
  team.run([&](Comm& c) {
    auto local = shards[c.rank()];
    SortConfig cfg;
    cfg.exchange = ExchangeAlgorithm::Hierarchical;
    sort(c, local, cfg);
    out[c.rank()] = std::move(local);
  });
  std::vector<u64> merged;
  for (const auto& o : out) {
    EXPECT_EQ(o.size(), 400u);
    merged.insert(merged.end(), o.begin(), o.end());
  }
  std::sort(merged.begin(), merged.end());
  EXPECT_EQ(merged, all);
}

TEST(HierarchicalExchange, SingleNodeDegeneratesToDirect) {
  SortConfig cfg;
  cfg.exchange = ExchangeAlgorithm::Hierarchical;
  check_sort(6, cfg, {}, 500);  // default machine: one node
}

TEST(HierarchicalExchange, UnevenNodesAndDuplicates) {
  runtime::TeamConfig tcfg;
  tcfg.nranks = 12;
  tcfg.machine = net::MachineModel::supermuc_phase2(3, 4);
  Team team(tcfg);
  workload::GenConfig gen;
  gen.dist = workload::Dist::FewDistinct;
  gen.alphabet = 3;
  std::vector<std::vector<u64>> shards(12);
  std::vector<u64> all;
  for (int r = 0; r < 12; ++r) {
    shards[r] = workload::generate_u64(gen, r, 12, 100 * (r % 3 + 1));
    all.insert(all.end(), shards[r].begin(), shards[r].end());
  }
  std::sort(all.begin(), all.end());
  std::vector<std::vector<u64>> out(12);
  team.run([&](Comm& c) {
    auto local = shards[c.rank()];
    SortConfig cfg;
    cfg.exchange = ExchangeAlgorithm::Hierarchical;
    sort(c, local, cfg);
    out[c.rank()] = std::move(local);
  });
  std::vector<u64> merged;
  for (const auto& o : out)
    merged.insert(merged.end(), o.begin(), o.end());
  std::sort(merged.begin(), merged.end());
  EXPECT_EQ(merged, all);
}

TEST(HierarchicalExchange, SparseInputAcrossNodes) {
  runtime::TeamConfig tcfg;
  tcfg.nranks = 8;
  tcfg.machine = net::MachineModel::supermuc_phase2(2, 4);
  Team team(tcfg);
  workload::GenConfig gen;
  gen.sparsity = 0.5;
  gen.seed = 21;
  std::vector<std::vector<u64>> shards(8);
  std::vector<u64> all;
  for (int r = 0; r < 8; ++r) {
    shards[r] = workload::generate_u64(gen, r, 8, 300);
    all.insert(all.end(), shards[r].begin(), shards[r].end());
  }
  std::sort(all.begin(), all.end());
  std::vector<std::vector<u64>> out(8);
  team.run([&](Comm& c) {
    auto local = shards[c.rank()];
    SortConfig cfg;
    cfg.exchange = ExchangeAlgorithm::Hierarchical;
    sort(c, local, cfg);
    out[c.rank()] = std::move(local);
  });
  std::vector<u64> merged;
  for (const auto& o : out)
    merged.insert(merged.end(), o.begin(), o.end());
  std::sort(merged.begin(), merged.end());
  EXPECT_EQ(merged, all);
}

TEST(OneFactorExchange, EpsilonBalanced) {
  SortConfig cfg;
  cfg.exchange = ExchangeAlgorithm::OneFactor;
  cfg.epsilon = 0.1;
  check_sort(8, cfg, {}, 1500);
}

TEST(OneFactorExchange, OverlapSkipsSeparateMergePhase) {
  // With overlap the final data is one sorted run, so merge_chunks is a
  // no-op; the Merge phase time comes from the per-round merges instead.
  const int P = 4;
  workload::GenConfig gen;
  std::vector<std::vector<u64>> shards(P);
  for (int r = 0; r < P; ++r)
    shards[r] = workload::generate_u64(gen, r, P, 2000);
  Team team({.nranks = P});
  team.run([&](Comm& c) {
    auto local = shards[c.rank()];
    SortConfig cfg;
    cfg.exchange = ExchangeAlgorithm::OneFactor;
    cfg.overlap_merge = true;
    sort(c, local, cfg);
  });
  EXPECT_GT(team.stats().phase_seconds(net::Phase::Merge), 0.0);
  EXPECT_GT(team.stats().phase_seconds(net::Phase::Exchange), 0.0);
}

}  // namespace
}  // namespace hds::core
