// hds::model end-to-end tests (DESIGN.md sec. 15): the controlled
// scheduler is transparent (same outputs and simulated times as a free
// run), the explorer proves schedule determinism for the histogram sort
// and the runtime micro-protocols, each seeded protocol mutation is caught
// with a counterexample that replays from its serialized schedule file,
// the static matcher passes on correct programs and fails on a seeded
// collective-order swap, and a BorrowToken abandoned by an exception
// poisons the team instead of deadlocking the drain.
#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "model/explorer.h"
#include "model/recorder.h"
#include "model/scenarios.h"
#include "model/schedule_file.h"
#include "runtime/comm.h"
#include "runtime/team.h"

namespace hds::model {
namespace {

using runtime::Comm;
using runtime::Team;
using runtime::TeamConfig;

/// Terminal-state classification mirroring explorer::check_run for the
/// single-run oracles (divergence needs a reference run and is handled
/// separately where tested).
std::string classify(const RunOutcome& out) {
  if (out.deadlock) return "deadlock";
  if (!out.completed) return "error";
  if (out.dtor_drains > 0) return "unwaited-borrow";
  if (out.undelivered > 0) return "undelivered";
  if (!out.quiescence.empty()) return "quiescence";
  return "";
}

void expect_clean(const ExploreReport& rep) {
  EXPECT_TRUE(rep.issues.empty())
      << rep.scenario << ": " << rep.issues.front();
  EXPECT_TRUE(rep.deterministic) << rep.scenario;
  EXPECT_TRUE(rep.counterexample_kind.empty())
      << rep.scenario << ": " << rep.counterexample_kind;
  EXPECT_GE(rep.runs, 1u);
}

// --- controlled-run transparency --------------------------------------------

TEST(ControlledScheduler, TransparentForHistogramSort) {
  const Scenario s = find_scenario("sort2");
  ASSERT_FALSE(s.name.empty());

  // Free run: same body, no scheduling hook.
  std::vector<u64> free_digests(2);
  std::vector<double> free_times(2);
  {
    Team team(TeamConfig{.nranks = 2});
    team.run([&](Comm& c) {
      free_digests[static_cast<usize>(c.rank())] = s.body(c);
    });
    for (int r = 0; r < 2; ++r)
      free_times[static_cast<usize>(r)] = team.rank_time(r);
  }

  const RunOutcome out = run_scenario(s, /*prefix=*/{}, Mutation{}, 100000);
  ASSERT_TRUE(out.completed) << out.error;
  EXPECT_EQ(out.digests, free_digests);
  // Exact equality: the hook must not perturb the simulated clocks at all.
  EXPECT_EQ(out.final_times, free_times);
}

// --- determinism exploration -------------------------------------------------

TEST(ModelExplorer, HistogramSortP2Deterministic) {
  ExploreConfig cfg;
  cfg.max_runs = 48;
  expect_clean(explore(find_scenario("sort2"), cfg));
}

TEST(ModelExplorer, HistogramSortP3Deterministic) {
  ExploreConfig cfg;
  cfg.max_runs = 32;
  expect_clean(explore(find_scenario("sort3"), cfg));
}

TEST(ModelExplorer, HypercubeExchangeDeterministic) {
  ExploreConfig cfg;
  cfg.max_runs = 32;
  expect_clean(explore(find_scenario("sort2-hypercube"), cfg));
}

TEST(ModelExplorer, MailboxProtocolDeterministicWithRealBranching) {
  ExploreConfig cfg;
  cfg.max_runs = 96;
  const ExploreReport rep = explore(find_scenario("mailbox"), cfg);
  expect_clean(rep);
  // The ack-window protocol must actually expose schedule freedom —
  // otherwise the determinism claim is vacuous.
  EXPECT_GE(rep.branch_points, 1u);
  EXPECT_GE(rep.runs, 2u);
}

TEST(ModelExplorer, BorrowProtocolClean) {
  ExploreConfig cfg;
  cfg.max_runs = 64;
  expect_clean(explore(find_scenario("borrow"), cfg));
}

TEST(ModelExplorer, RecoveryRendezvousClean) {
  ExploreConfig cfg;
  cfg.max_runs = 64;
  expect_clean(explore(find_scenario("recovery"), cfg));
}

// --- seeded mutations: caught, serialized, replayed --------------------------

/// Explore with the mutation active, require a counterexample, round-trip
/// it through an hds-schedule file, and replay it: the replayed run must
/// reproduce the same terminal-state classification.
void check_mutation_caught(const std::string& scenario_name,
                           Mutation mutation,
                           const std::string& file_tag) {
  const Scenario s = find_scenario(scenario_name);
  ASSERT_FALSE(s.name.empty());
  ExploreConfig cfg;
  cfg.max_runs = 128;
  cfg.mutation = mutation;
  const ExploreReport rep = explore(s, cfg);
  ASSERT_FALSE(rep.counterexample_kind.empty())
      << mutation_kind_name(mutation.kind) << " on " << scenario_name
      << " survived " << rep.runs << " schedules";

  const std::string path = "model_ce_" + file_tag + ".schedule";
  ScheduleFile sf;
  sf.scenario = s.name;
  sf.mutation = mutation;
  sf.choices = rep.counterexample;
  ASSERT_TRUE(write_schedule(path, sf));
  const auto back = read_schedule(path);
  std::remove(path.c_str());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->scenario, s.name);
  EXPECT_EQ(back->choices, rep.counterexample);
  ASSERT_EQ(static_cast<int>(back->mutation.kind),
            static_cast<int>(mutation.kind));

  const RunOutcome replay =
      run_scenario(s, back->choices, back->mutation, cfg.max_steps);
  EXPECT_FALSE(replay.replay_diverged);
  if (rep.counterexample_kind == "output-divergence" ||
      rep.counterexample_kind == "time-divergence") {
    // Divergence is relative to the reference schedule: replaying the
    // counterexample must complete but differ from the reference run.
    ASSERT_TRUE(replay.completed) << replay.error;
    const RunOutcome ref =
        run_scenario(s, /*prefix=*/{}, back->mutation, cfg.max_steps);
    ASSERT_TRUE(ref.completed) << ref.error;
    EXPECT_TRUE(replay.digests != ref.digests ||
                replay.final_times != ref.final_times);
  } else {
    EXPECT_EQ(classify(replay), rep.counterexample_kind);
  }
}

TEST(ModelMutations, DropBarrierCaughtWithReplayableCounterexample) {
  check_mutation_caught("mailbox",
                        Mutation{Mutation::Kind::DropBarrier, 0, 0},
                        "drop_barrier");
}

TEST(ModelMutations, ReorderPushCaughtWithReplayableCounterexample) {
  check_mutation_caught("mailbox",
                        Mutation{Mutation::Kind::ReorderPush, 0, 0},
                        "reorder_push");
}

TEST(ModelMutations, SkipBorrowWaitCaughtWithReplayableCounterexample) {
  check_mutation_caught("borrow",
                        Mutation{Mutation::Kind::SkipBorrowWait, 0, 0},
                        "skip_borrow_wait");
}

// --- schedule file round-trip ------------------------------------------------

TEST(ScheduleFile, RoundTripsAndRejectsMalformed) {
  const std::string path = "model_roundtrip.schedule";
  ScheduleFile sf;
  sf.scenario = "mailbox";
  sf.mutation = Mutation{Mutation::Kind::ReorderPush, 2, 5};
  sf.choices = {0, 1, 1, 3, 0};
  ASSERT_TRUE(write_schedule(path, sf));
  const auto back = read_schedule(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->scenario, sf.scenario);
  EXPECT_EQ(static_cast<int>(back->mutation.kind),
            static_cast<int>(sf.mutation.kind));
  EXPECT_EQ(back->mutation.rank, sf.mutation.rank);
  EXPECT_EQ(back->mutation.nth, sf.mutation.nth);
  EXPECT_EQ(back->choices, sf.choices);
  std::remove(path.c_str());

  EXPECT_FALSE(read_schedule("no_such_schedule_file").has_value());
}

// --- static schedule matcher -------------------------------------------------

TEST(ScheduleMatcher, CleanProtocolPasses) {
  ScheduleRecorder rec;
  TeamConfig cfg{.nranks = 4};
  cfg.recorder = &rec;
  Team team(cfg);
  team.run([](Comm& c) {
    auto add = [](u64 a, u64 b) { return a + b; };
    (void)c.allreduce_value<u64>(static_cast<u64>(c.rank()), add);
    if (c.rank() == 0) {
      const u64 v = 42;
      c.send<u64>(1, 9, std::span<const u64>(&v, 1));
    }
    if (c.rank() == 1) (void)c.recv<u64>(0, 9);
    c.barrier();
  });
  const auto issues = rec.verify();
  EXPECT_TRUE(issues.empty()) << issues.front();
  EXPECT_GT(rec.ops(), 0u);
}

TEST(ScheduleMatcher, CollectiveOrderSwapFails) {
  ScheduleRecorder rec;
  TeamConfig cfg{.nranks = 4};
  cfg.recorder = &rec;
  Team team(cfg);
  EXPECT_THROW(team.run([](Comm& c) {
    auto add = [](u64 a, u64 b) { return a + b; };
    if (c.rank() == 0) {
      c.barrier();
      (void)c.allreduce_value<u64>(1, add);
    } else {
      (void)c.allreduce_value<u64>(1, add);
      c.barrier();
    }
  }),
               std::exception);
  // The ghost capture is written before execution, so the matcher reports
  // the divergence even though the run aborted.
  const auto issues = rec.verify();
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues.front().find("collective sequence mismatch"),
            std::string::npos)
      << issues.front();
}

TEST(ScheduleMatcher, UnreceivedSendFails) {
  ScheduleRecorder rec;
  TeamConfig cfg{.nranks = 2};
  cfg.recorder = &rec;
  Team team(cfg);
  team.run([](Comm& c) {
    if (c.rank() == 0) {
      const u64 v = 7;
      // send_uncharged delivers without a matching recv ever being posted:
      // the payload sits in rank 1's mailbox when the run ends.
      c.send_uncharged<u64>(1, 3, std::span<const u64>(&v, 1));
    }
    c.barrier();
  });
  const auto issues = rec.verify();
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues.front().find("unreceived send"), std::string::npos)
      << issues.front();
}

TEST(ScheduleMatcher, UnwaitedLoanReported) {
  // A loan the caller never waits: the recorder must flag it even though
  // the destructor drains it cleanly at scope exit.
  ScheduleRecorder rec;
  TeamConfig cfg{.nranks = 2};
  cfg.recorder = &rec;
  Team team(cfg);
  team.run([](Comm& c) {
    if (c.rank() == 0) {
      std::vector<u64> buf(4, 5);
      {
        auto token = c.send_borrowed<u64>(
            1, 11, std::span<const u64>(buf.data(), buf.size()));
        // no token.wait(): dropped at scope exit
      }
      c.barrier();
    } else {
      (void)c.recv<u64>(0, 11);
      c.barrier();
    }
  });
  EXPECT_EQ(rec.loans_opened(), 1u);
  EXPECT_EQ(rec.loans_waited(), 0u);
  const auto issues = rec.verify();
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues.front().find("never explicitly waited"),
            std::string::npos)
      << issues.front();
}

// --- BorrowToken error-path regression (satellite 6) -------------------------

// A rank that throws while holding an unwaited BorrowToken must poison the
// team in the token's destructor: the receiver never posts its recv (it is
// parked in the barrier), so without the poison the drain would block until
// the watchdog timeout. The run must fail promptly with the *original*
// exception, not a watchdog report.
TEST(BorrowTokenErrorPath, PendingLoanOnUnwindPoisonsTeam) {
  TeamConfig cfg{.nranks = 2};
  cfg.watchdog_timeout_s = 120.0;  // a hang would trip the 600 s test timeout
  Team team(cfg);
  try {
    team.run([](Comm& c) {
      if (c.rank() == 0) {
        std::vector<u64> buf(64, 1);
        auto token = c.send_borrowed<u64>(
            1, 17, std::span<const u64>(buf.data(), buf.size()));
        throw std::runtime_error("sender failed mid-loan");
        // token's destructor runs during unwind with the loan pending
      }
      c.barrier();  // rank 1 parks here; must be released by the poison
    });
    FAIL() << "run completed despite the thrown error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "sender failed mid-loan");
  }
}

}  // namespace
}  // namespace hds::model
