// Tests for the local k-way merge strategies (Sec. V-C): loser tree,
// binary merge tree, and re-sort, against std::merge / std::sort oracles.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "core/merge.h"
#include "runtime/team.h"

namespace hds::core {
namespace {

using runtime::Comm;
using runtime::Team;

[[maybe_unused]] auto identity = [](const auto& v) { return v; };

/// Build `k` sorted chunks with the given sizes; returns (data, counts).
std::pair<std::vector<u32>, std::vector<usize>> make_chunks(
    std::vector<usize> sizes, u64 seed) {
  Xoshiro256 rng(seed);
  std::vector<u32> data;
  for (usize sz : sizes) {
    std::vector<u32> chunk(sz);
    for (auto& v : chunk) v = static_cast<u32>(rng() % 100000);
    std::sort(chunk.begin(), chunk.end());
    data.insert(data.end(), chunk.begin(), chunk.end());
  }
  return {std::move(data), std::move(sizes)};
}

void check_strategy(MergeStrategy strategy, std::vector<usize> sizes,
                    u64 seed) {
  auto [data, counts] = make_chunks(std::move(sizes), seed);
  std::vector<u32> expected = data;
  std::sort(expected.begin(), expected.end());

  Team team({.nranks = 1});
  team.run([&](Comm& c) {
    merge_chunks(c, data, std::span<const usize>(counts), strategy, identity);
  });
  EXPECT_EQ(data, expected);
}

class MergeStrategyTest : public ::testing::TestWithParam<MergeStrategy> {};

TEST_P(MergeStrategyTest, TwoEqualChunks) {
  check_strategy(GetParam(), {100, 100}, 1);
}

TEST_P(MergeStrategyTest, ManySmallChunks) {
  check_strategy(GetParam(), std::vector<usize>(33, 17), 2);
}

TEST_P(MergeStrategyTest, SkewedChunkSizes) {
  check_strategy(GetParam(), {1, 1000, 3, 500, 1}, 3);
}

TEST_P(MergeStrategyTest, WithEmptyChunks) {
  check_strategy(GetParam(), {0, 50, 0, 0, 75, 0}, 4);
}

TEST_P(MergeStrategyTest, SingleChunkNoop) {
  check_strategy(GetParam(), {250}, 5);
}

TEST_P(MergeStrategyTest, AllChunksEmpty) {
  check_strategy(GetParam(), {0, 0, 0}, 6);
}

TEST_P(MergeStrategyTest, PowerOfTwoAndOddCounts) {
  check_strategy(GetParam(), {64, 64, 64, 64, 64, 64, 64}, 7);
  check_strategy(GetParam(), {10, 20, 30}, 8);
}

TEST_P(MergeStrategyTest, DuplicateHeavy) {
  Xoshiro256 rng(9);
  std::vector<u32> data;
  std::vector<usize> counts;
  for (int c = 0; c < 6; ++c) {
    std::vector<u32> chunk(200);
    for (auto& v : chunk) v = static_cast<u32>(rng() % 5);
    std::sort(chunk.begin(), chunk.end());
    data.insert(data.end(), chunk.begin(), chunk.end());
    counts.push_back(chunk.size());
  }
  std::vector<u32> expected = data;
  std::sort(expected.begin(), expected.end());
  Team team({.nranks = 1});
  team.run([&](Comm& c) {
    merge_chunks(c, data, std::span<const usize>(counts), GetParam(),
                 identity);
  });
  EXPECT_EQ(data, expected);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, MergeStrategyTest,
                         ::testing::Values(MergeStrategy::Sort,
                                           MergeStrategy::BinaryTree,
                                           MergeStrategy::Tournament),
                         [](const auto& pinfo) {
                           return std::string(merge_name(pinfo.param)) ==
                                          "sort"
                                      ? "Sort"
                                  : merge_name(pinfo.param) == "binary-tree"
                                      ? "BinaryTree"
                                      : "Tournament";
                         });

TEST(LoserTreeTest, PopsInGlobalOrder) {
  std::vector<u32> a{1, 4, 9}, b{2, 3, 10}, c{0, 5};
  std::vector<std::span<const u32>> runs = {a, b, c};
  auto less = [](u32 x, u32 y) { return x < y; };
  LoserTree<u32, decltype(less)> tree(runs, less);
  std::vector<u32> out;
  while (!tree.empty()) out.push_back(tree.pop());
  EXPECT_EQ(out, (std::vector<u32>{0, 1, 2, 3, 4, 5, 9, 10}));
}

TEST(LoserTreeTest, SingleRun) {
  std::vector<u32> a{3, 7, 11};
  std::vector<std::span<const u32>> runs = {a};
  auto less = [](u32 x, u32 y) { return x < y; };
  LoserTree<u32, decltype(less)> tree(runs, less);
  std::vector<u32> out;
  while (!tree.empty()) out.push_back(tree.pop());
  EXPECT_EQ(out, a);
}

TEST(LoserTreeTest, StressAgainstSort) {
  Xoshiro256 rng(10);
  for (int trial = 0; trial < 20; ++trial) {
    const usize k = 1 + rng() % 12;
    std::vector<std::vector<u64>> chunks(k);
    std::vector<u64> expected;
    for (auto& ch : chunks) {
      const usize n = rng() % 40;
      for (usize i = 0; i < n; ++i) ch.push_back(rng() % 1000);
      std::sort(ch.begin(), ch.end());
      expected.insert(expected.end(), ch.begin(), ch.end());
    }
    std::sort(expected.begin(), expected.end());
    std::vector<std::span<const u64>> runs(chunks.begin(), chunks.end());
    auto less = [](u64 x, u64 y) { return x < y; };
    LoserTree<u64, decltype(less)> tree(runs, less);
    std::vector<u64> out;
    while (!tree.empty()) out.push_back(tree.pop());
    EXPECT_EQ(out, expected) << "trial " << trial;
  }
}

TEST(MergeCosts, TournamentChargedByLogK) {
  // The simulated charge for a tournament merge grows with the chunk count,
  // while a re-sort is charged by n log n regardless of k.
  Team team({.nranks = 1});
  double t_few = 0.0, t_many = 0.0;
  team.run([&](Comm& c) {
    auto [d1, c1] = make_chunks(std::vector<usize>(2, 4096), 1);
    const double t0 = c.clock().now();
    merge_chunks(c, d1, std::span<const usize>(c1),
                 MergeStrategy::Tournament, identity);
    t_few = c.clock().now() - t0;
    auto [d2, c2] = make_chunks(std::vector<usize>(64, 128), 2);
    const double t1 = c.clock().now();
    merge_chunks(c, d2, std::span<const usize>(c2),
                 MergeStrategy::Tournament, identity);
    t_many = c.clock().now() - t1;
  });
  EXPECT_GT(t_many, t_few);  // same n, more chunks -> deeper tournament
}

}  // namespace
}  // namespace hds::core
