// Recovery tests (PR 6): buddy-replicated superstep checkpointing, the
// resumable superstep state machine, and the three RecoveryModes of
// core::sort_resilient — RestartFull, ResumeCheckpoint (replay only the
// interrupted superstep on the same rank count) and ShrinkSurvivors
// (in-flight ULFM-style shrink to P-1 ranks with shard redistribution).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "check/race_detector.h"
#include "common/rng.h"
#include "core/histogram_sort.h"
#include "runtime/checkpoint.h"
#include "runtime/comm.h"
#include "runtime/fault.h"
#include "runtime/team.h"
#include "workload/distributions.h"

namespace hds::runtime {
namespace {

TeamConfig cfg_with(int p, std::shared_ptr<FaultPlan> plan = nullptr,
                    double watchdog_s = 60.0) {
  TeamConfig cfg;
  cfg.nranks = p;
  cfg.fault = std::move(plan);
  cfg.watchdog_timeout_s = watchdog_s;
  return cfg;
}

std::vector<std::vector<u64>> random_partitions(int p, usize per_rank,
                                                u64 seed) {
  std::vector<std::vector<u64>> parts(p);
  for (int r = 0; r < p; ++r) {
    Xoshiro256 rng(hash_mix(seed, r));
    parts[r].resize(per_rank);
    for (auto& v : parts[r]) v = rng();
  }
  return parts;
}

std::vector<u64> flatten(const std::vector<std::vector<u64>>& parts) {
  std::vector<u64> all;
  for (const auto& p : parts) all.insert(all.end(), p.begin(), p.end());
  return all;
}

std::vector<u64> flatten_sorted(const std::vector<std::vector<u64>>& parts) {
  std::vector<u64> all = flatten(parts);
  std::sort(all.begin(), all.end());
  return all;
}

// --- CheckpointStore unit ----------------------------------------------------

TEST(CheckpointStore, SaveLoadAndBuddyPlacement) {
  CheckpointStore store(4);
  EXPECT_EQ(CheckpointStore::buddy_of(0, 4), 1);
  EXPECT_EQ(CheckpointStore::buddy_of(3, 4), 0);
  EXPECT_EQ(store.latest_step(2), -1);

  std::vector<std::byte> blob{std::byte{7}, std::byte{8}};
  store.save(2, CheckpointStore::buddy_of(2, 4), 0, blob);
  store.save(2, CheckpointStore::buddy_of(2, 4), 1, blob);
  EXPECT_EQ(store.latest_step(2), 1);
  EXPECT_TRUE(store.available(2, 0));
  EXPECT_TRUE(store.available(2, 1));
  EXPECT_FALSE(store.available(2, 2));

  auto got = store.load(2, 1);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->holder, 2);       // primary preferred
  EXPECT_FALSE(got->from_replica);
  EXPECT_EQ(got->bytes, blob);
}

TEST(CheckpointStore, MarkLostFallsBackToReplicaThenNothing) {
  CheckpointStore store(4);
  std::vector<std::byte> blob{std::byte{1}};
  store.save(2, /*buddy=*/3, 0, blob);
  store.save(3, /*buddy=*/0, 0, blob);

  // Rank 2 dies: its primary is gone but the replica at rank 3 survives.
  store.mark_lost(2);
  auto got = store.load(2, 0);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->holder, 3);
  EXPECT_TRUE(got->from_replica);

  // Rank 3 dies too: rank 2's replica lived at rank 3 — now fully lost —
  // while rank 3's own state still has its replica at rank 0.
  store.mark_lost(3);
  EXPECT_FALSE(store.load(2, 0).has_value());
  EXPECT_EQ(store.latest_step(2), -1);
  auto r3 = store.load(3, 0);
  ASSERT_TRUE(r3.has_value());
  EXPECT_EQ(r3->holder, 0);
}

// --- SortState serialization -------------------------------------------------

TEST(SortState, SerializeDeserializeRoundTrip) {
  core::SortState<u64, u64> st;
  st.completed = core::SuperstepId::SplittersReady;
  st.out_capacity = 123;
  st.data = {5, 1, 9};
  st.splitters.splitter = {10, 20, 30};
  st.splitters.boundary = {1, 2, 2};
  st.splitters.iterations = 4;
  st.stats.elements_before = 3;
  st.stats.histogram_convergence = {0.5, 0.25};
  st.recv_counts = {1, 1, 1, 0};

  const auto blob = core::detail::serialize_state(st);
  const auto rt = core::detail::deserialize_state<u64, u64>(blob);
  EXPECT_EQ(rt.completed, st.completed);
  EXPECT_EQ(rt.out_capacity, st.out_capacity);
  EXPECT_EQ(rt.data, st.data);
  EXPECT_EQ(rt.splitters.splitter, st.splitters.splitter);
  EXPECT_EQ(rt.splitters.boundary, st.splitters.boundary);
  EXPECT_EQ(rt.splitters.iterations, st.splitters.iterations);
  EXPECT_EQ(rt.stats.elements_before, st.stats.elements_before);
  EXPECT_EQ(rt.stats.histogram_convergence, st.stats.histogram_convergence);
  EXPECT_EQ(rt.recv_counts, st.recv_counts);
}

// --- checkpointing-off invariants --------------------------------------------

TEST(Checkpointing, DisabledIsBitIdenticalAndCostsNothing) {
  constexpr int P = 4;
  auto run_once = [&] {
    Team team(cfg_with(P));
    auto parts = random_partitions(P, 256, 5);
    team.run([&](Comm& c) {
      auto local = parts[c.rank()];
      (void)core::sort(c, local);
    });
    u64 ck_bytes = 0, ck_count = 0, steps = 0;
    for (int r = 0; r < P; ++r) {
      ck_bytes += team.metrics(r).value(obs::Counter::CheckpointBytes);
      ck_count += team.metrics(r).value(obs::Counter::CheckpointCount);
      steps += team.metrics(r).value(obs::Counter::SuperstepsExecuted);
    }
    EXPECT_EQ(ck_bytes, 0u);
    EXPECT_EQ(ck_count, 0u);
    EXPECT_EQ(steps, core::kSupersteps * P);
    return team.stats().makespan_s;
  };
  // Two identical runs with checkpointing off: bit-identical simulated time.
  EXPECT_EQ(run_once(), run_once());
}

TEST(Checkpointing, FaultFreeCheckpointedRunChargesOverhead) {
  constexpr int P = 4;
  auto parts0 = random_partitions(P, 256, 6);
  const auto expected = flatten_sorted(parts0);

  Team plain_team(cfg_with(P));
  auto plain_parts = parts0;
  core::ResilienceConfig none;  // RestartFull: no checkpoints
  (void)core::sort_resilient(plain_team, plain_parts, core::SortConfig{},
                             none);
  const double plain = plain_team.stats().makespan_s;

  Team ck_team(cfg_with(P));
  auto ck_parts = parts0;
  core::ResilienceConfig resume;
  resume.mode = core::RecoveryMode::ResumeCheckpoint;
  core::ResilienceReport rep;
  (void)core::sort_resilient(ck_team, ck_parts, core::SortConfig{}, resume,
                             &rep);
  const double ck = ck_team.stats().makespan_s;

  EXPECT_EQ(flatten(ck_parts), expected);
  EXPECT_EQ(rep.attempts, 1);
  EXPECT_EQ(rep.failures, 0u);
  EXPECT_DOUBLE_EQ(rep.recomputed_fraction, 0.0);
  EXPECT_GT(rep.checkpoint_bytes, 0u);
  // Checkpointing is overlapped: charged, but only the residue fraction.
  EXPECT_GT(ck, plain);
  EXPECT_LT(ck, plain * 1.10);
}

// --- ResumeCheckpoint --------------------------------------------------------

// Crash one rank at every point of the sort (stride-swept over the full op
// schedule, which crosses every superstep boundary) and require: recovery
// completes in exactly two attempts, output matches the fault-free run, and
// the recomputed-work fraction stays below a full re-execution.
TEST(ResumeCheckpoint, CrashSweepReplaysOnlyTheInterruptedSuperstep) {
  constexpr int P = 4;
  constexpr usize kPerRank = 96;
  const u64 seed = 23;

  auto probe_plan = std::make_shared<FaultPlan>();
  u64 total_ops = 0;
  {
    Team team(cfg_with(P, probe_plan));
    auto parts = random_partitions(P, kPerRank, seed);
    core::ResilienceConfig rcfg;
    rcfg.mode = core::RecoveryMode::ResumeCheckpoint;
    (void)core::sort_resilient(team, parts, core::SortConfig{}, rcfg);
    total_ops = probe_plan->ops_observed(1);
    ASSERT_GT(total_ops, core::kSupersteps);
  }

  const auto original = random_partitions(P, kPerRank, seed);
  const auto expected = flatten_sorted(original);
  const u64 stride = std::max<u64>(1, total_ops / 24);
  for (u64 k = 0; k < total_ops; k += stride) {
    auto plan = std::make_shared<FaultPlan>();
    plan->crash_rank_at_op(1, k);
    Team team(cfg_with(P, plan, /*watchdog_s=*/10.0));
    auto parts = original;
    core::ResilienceConfig rcfg;
    rcfg.mode = core::RecoveryMode::ResumeCheckpoint;
    core::ResilienceReport rep;
    (void)core::sort_resilient(team, parts, core::SortConfig{}, rcfg, &rep);
    EXPECT_EQ(rep.attempts, 2) << "crash at op " << k;
    EXPECT_EQ(rep.failures, 1u) << "crash at op " << k;
    // Replaying from the last boundary must beat re-running everything.
    EXPECT_LT(rep.recomputed_fraction, 1.0) << "crash at op " << k;
    EXPECT_EQ(flatten(parts), expected) << "crash at op " << k;
    for (const auto& p : parts)
      EXPECT_EQ(p.size(), kPerRank) << "crash at op " << k;
  }
}

TEST(ResumeCheckpoint, ExecutesFewerSuperstepsThanRestartForLateCrash) {
  constexpr int P = 4;
  const auto original = random_partitions(P, 128, 31);
  const auto expected = flatten_sorted(original);

  auto run_mode = [&](core::RecoveryMode mode) {
    auto plan = std::make_shared<FaultPlan>();
    // Crash in the exchange: local sort and splitters are checkpointed.
    // (Merge has no communication ops, so Exchange is the latest phase a
    // comm-op-keyed fault can target.)
    plan->crash_rank_at_phase_op(1, net::Phase::Exchange, 0);
    Team team(cfg_with(P, plan, /*watchdog_s=*/10.0));
    auto parts = original;
    core::ResilienceConfig rcfg;
    rcfg.mode = mode;
    core::ResilienceReport rep;
    (void)core::sort_resilient(team, parts, core::SortConfig{}, rcfg, &rep);
    EXPECT_EQ(flatten(parts), expected);
    return rep;
  };

  const auto restart = run_mode(core::RecoveryMode::RestartFull);
  const auto resume = run_mode(core::RecoveryMode::ResumeCheckpoint);
  EXPECT_EQ(restart.attempts, 2);
  EXPECT_EQ(resume.attempts, 2);
  EXPECT_LT(resume.supersteps_executed, restart.supersteps_executed);
  EXPECT_LT(resume.recomputed_fraction, restart.recomputed_fraction);
}

TEST(ResumeCheckpoint, VictimRestoresFromBuddyReplica) {
  // The dead rank's primary checkpoints die with it; the next attempt must
  // restore its state from the buddy replica (a charged remote fetch), not
  // silently restart from scratch — visible as a resumed (not fresh) run.
  constexpr int P = 4;
  const auto original = random_partitions(P, 128, 37);
  auto plan = std::make_shared<FaultPlan>();
  plan->crash_rank_at_phase_op(2, net::Phase::Exchange, 1);
  Team team(cfg_with(P, plan, /*watchdog_s=*/10.0));
  auto parts = original;
  core::ResilienceConfig rcfg;
  rcfg.mode = core::RecoveryMode::ResumeCheckpoint;
  core::ResilienceReport rep;
  (void)core::sort_resilient(team, parts, core::SortConfig{}, rcfg, &rep);
  EXPECT_EQ(rep.attempts, 2);
  EXPECT_EQ(flatten(parts), flatten_sorted(original));
  // Attempt 2 resumed from the LocalSorted (or later) boundary: strictly
  // fewer supersteps than two full executions.
  EXPECT_LT(rep.supersteps_executed, 2 * rep.supersteps_minimum);
}

TEST(ResumeCheckpoint, FaultBudgetExhaustionRethrows) {
  constexpr int P = 2;
  auto plan = std::make_shared<FaultPlan>();
  for (int i = 0; i < 4; ++i) plan->crash_rank_at_op(0, 2);
  Team team(cfg_with(P, plan));
  auto parts = random_partitions(P, 64, 3);
  const auto original = parts;
  core::ResilienceConfig rcfg;
  rcfg.mode = core::RecoveryMode::ResumeCheckpoint;
  rcfg.fault_budget = 1;
  EXPECT_THROW(
      core::sort_resilient(team, parts, core::SortConfig{}, rcfg),
      rank_failed);
  EXPECT_EQ(parts, original);  // input preserved across failed attempts
}

// Multi-fault schedule (satellite: fault matrices): two distinct ranks are
// armed to crash; recovery pays both from the fault budget and completes.
TEST(ResumeCheckpoint, MultiFaultScheduleWithinBudget) {
  constexpr int P = 4;
  const auto original = random_partitions(P, 96, 41);
  auto plan = std::make_shared<FaultPlan>();
  const std::vector<u64> ks{9, 33};
  plan->crash_rank_at_ops(1, std::span<const u64>(ks));
  plan->crash_rank_at_phase_op(3, net::Phase::Histogram, 2);
  Team team(cfg_with(P, plan, /*watchdog_s=*/10.0));
  auto parts = original;
  core::ResilienceConfig rcfg;
  rcfg.mode = core::RecoveryMode::ResumeCheckpoint;
  rcfg.fault_budget = 4;
  core::ResilienceReport rep;
  (void)core::sort_resilient(team, parts, core::SortConfig{}, rcfg, &rep);
  EXPECT_GE(rep.failures, 2u);
  EXPECT_EQ(flatten(parts), flatten_sorted(original));
}

// --- ShrinkSurvivors ---------------------------------------------------------

void expect_shrink_output(const std::vector<std::vector<u64>>& parts,
                          const std::vector<u64>& expected,
                          const core::ResilienceReport& rep, int P) {
  // Survivor partitions concatenate (in rank order) to the sorted whole;
  // dead ranks hold nothing.
  EXPECT_EQ(flatten(parts), expected);
  for (const auto& p : parts) EXPECT_TRUE(std::is_sorted(p.begin(), p.end()));
  ASSERT_FALSE(rep.final_ranks.empty());
  EXPECT_LT(rep.final_ranks.size(), static_cast<usize>(P));
  usize mn = expected.size(), mx = 0;
  for (rank_t r = 0; r < static_cast<rank_t>(P); ++r) {
    const bool survivor =
        std::find(rep.final_ranks.begin(), rep.final_ranks.end(), r) !=
        rep.final_ranks.end();
    if (!survivor) {
      EXPECT_TRUE(parts[static_cast<usize>(r)].empty())
          << "dead rank " << r << " still holds data";
    } else {
      mn = std::min(mn, parts[static_cast<usize>(r)].size());
      mx = std::max(mx, parts[static_cast<usize>(r)].size());
    }
  }
  // Rebalanced even shares over the survivors.
  EXPECT_LE(mx - mn, 1u);
}

TEST(ShrinkSurvivors, InFlightRecoveryAcrossTeamSizes) {
  for (int P : {4, 8, 16}) {
    const auto original = random_partitions(P, 128, 100 + P);
    const auto expected = flatten_sorted(original);
    // Crash mid-exchange: local sort and splitters are checkpointed, the
    // survivors absorb the dead shard and redo splitters on P-1 ranks.
    auto plan = std::make_shared<FaultPlan>();
    plan->crash_rank_at_phase_op(P / 2, net::Phase::Exchange, 1);
    Team team(cfg_with(P, plan, /*watchdog_s=*/20.0));
    auto parts = original;
    core::ResilienceConfig rcfg;
    rcfg.mode = core::RecoveryMode::ShrinkSurvivors;
    core::ResilienceReport rep;
    (void)core::sort_resilient(team, parts, core::SortConfig{}, rcfg, &rep);
    EXPECT_EQ(rep.attempts, 1) << "P=" << P;  // no re-run: shrank in-flight
    EXPECT_GE(rep.recoveries, 1u) << "P=" << P;
    EXPECT_EQ(rep.final_ranks.size(), static_cast<usize>(P - 1)) << "P=" << P;
    EXPECT_LT(rep.recomputed_fraction, 1.0) << "P=" << P;
    EXPECT_FALSE(rep.recovery_seconds.empty()) << "P=" << P;
    expect_shrink_output(parts, expected, rep, P);
  }
}

TEST(ShrinkSurvivors, CrashSweepAcrossTheWholeSchedule) {
  constexpr int P = 4;
  constexpr usize kPerRank = 96;
  const u64 seed = 51;

  auto probe_plan = std::make_shared<FaultPlan>();
  u64 total_ops = 0;
  {
    Team team(cfg_with(P, probe_plan));
    auto parts = random_partitions(P, kPerRank, seed);
    core::ResilienceConfig rcfg;
    rcfg.mode = core::RecoveryMode::ShrinkSurvivors;
    (void)core::sort_resilient(team, parts, core::SortConfig{}, rcfg);
    total_ops = probe_plan->ops_observed(1);
    ASSERT_GT(total_ops, core::kSupersteps);
  }

  const auto original = random_partitions(P, kPerRank, seed);
  const auto expected = flatten_sorted(original);
  const u64 stride = std::max<u64>(1, total_ops / 16);
  for (u64 k = 0; k < total_ops; k += stride) {
    auto plan = std::make_shared<FaultPlan>();
    plan->crash_rank_at_op(1, k);
    Team team(cfg_with(P, plan, /*watchdog_s=*/20.0));
    auto parts = original;
    core::ResilienceConfig rcfg;
    rcfg.mode = core::RecoveryMode::ShrinkSurvivors;
    core::ResilienceReport rep;
    (void)core::sort_resilient(team, parts, core::SortConfig{}, rcfg, &rep);
    // A crash before the victim's first checkpoint legitimately escalates
    // to a full-team restart (attempt 2); anything later shrinks in-flight.
    EXPECT_LE(rep.attempts, 2) << "crash at op " << k;
    EXPECT_EQ(flatten(parts), expected) << "crash at op " << k;
    if (rep.attempts == 1) {
      EXPECT_GE(rep.recoveries, 1u) << "crash at op " << k;
      expect_shrink_output(parts, expected, rep, P);
    }
  }
}

TEST(ShrinkSurvivors, BuddyDoubleFaultEscalatesToRestartAndStillSorts) {
  // Ranks 2 and 3 both die; 3 is 2's buddy, so 2's checkpoints are fully
  // lost. In-flight shrink is impossible — the sort must fall back to a
  // full-team restart attempt and still produce the right output.
  constexpr int P = 4;
  const auto original = random_partitions(P, 96, 61);
  auto plan = std::make_shared<FaultPlan>();
  const std::vector<rank_t> victims{2, 3};
  plan->crash_ranks_at_op(std::span<const rank_t>(victims), 12);
  Team team(cfg_with(P, plan, /*watchdog_s=*/20.0));
  auto parts = original;
  core::ResilienceConfig rcfg;
  rcfg.mode = core::RecoveryMode::ShrinkSurvivors;
  rcfg.fault_budget = 3;
  core::ResilienceReport rep;
  (void)core::sort_resilient(team, parts, core::SortConfig{}, rcfg, &rep);
  EXPECT_EQ(rep.attempts, 2);
  EXPECT_GE(rep.failures, 2u);
  EXPECT_EQ(flatten(parts), flatten_sorted(original));
}

TEST(ShrinkSurvivors, RecoveryMetricsAndHappensBeforeClean) {
  // Run a shrink recovery with the happens-before checker on: the Agree
  // edge published at the survivor rendezvous must keep the HB graph
  // violation-free, and the recovery metrics must be populated.
  constexpr int P = 4;
  const auto original = random_partitions(P, 128, 71);
  auto plan = std::make_shared<FaultPlan>();
  plan->crash_rank_at_phase_op(1, net::Phase::Exchange, 1);
  TeamConfig cfg = cfg_with(P, plan, /*watchdog_s=*/20.0);
  cfg.check.enabled = true;
  Team team(cfg);
  auto parts = original;
  core::ResilienceConfig rcfg;
  rcfg.mode = core::RecoveryMode::ShrinkSurvivors;
  core::ResilienceReport rep;
  (void)core::sort_resilient(team, parts, core::SortConfig{}, rcfg, &rep);
  EXPECT_EQ(flatten(parts), flatten_sorted(original));
  ASSERT_NE(team.check_report(), nullptr);
  EXPECT_TRUE(team.check_report()->violations.empty());

  u64 recoveries = 0;
  for (int r = 0; r < P; ++r)
    recoveries += team.metrics(r).value(obs::Counter::RecoveryCount);
  EXPECT_EQ(recoveries, static_cast<u64>(P - 1));  // every survivor agreed
  EXPECT_EQ(rep.recovery_seconds.size(), static_cast<usize>(P - 1));
  for (double s : rep.recovery_seconds) EXPECT_GT(s, 0.0);
}

// --- BorrowToken abort-path regression (satellite) ---------------------------

// A crash between a send_borrowed and the receiver's matching recv must not
// leave the loan stuck: the sender's BorrowToken destructor would otherwise
// spin against a receiver that will never copy. Both orientations.
TEST(BorrowAbort, CrashBeforeReceiverWaitsDoesNotHang) {
  constexpr u64 kTag = 17;
  for (int victim : {0, 1}) {
    auto plan = std::make_shared<FaultPlan>();
    // Op 1 is the collective after the loan is posted but before it is
    // consumed — the victim dies holding (or owing) the loan.
    plan->crash_rank_at_op(victim, 1);
    Team team(cfg_with(2, plan, /*watchdog_s=*/5.0));
    EXPECT_THROW(team.run([&](Comm& c) {
                   std::vector<u64> payload{1, 2, 3};
                   BorrowToken tok;
                   if (c.rank() == 0)
                     tok = c.send_borrowed(
                         1, kTag, std::span<const u64>(payload));  // op 0
                   (void)c.allreduce_value<int>(1, std::plus<>{});  // op 1
                   if (c.rank() == 1) (void)c.recv<u64>(0, kTag);
                   tok.wait();
                 }),
                 rank_failed)
        << "victim " << victim;
    // The team is reusable: no leaked loan blocks the next run.
    team.run([&](Comm& c) { c.barrier(); });
  }
}

TEST(BorrowAbort, ShrinkRecoveryDrainsOutstandingLoans) {
  // Under ShrinkSurvivors the survivors re-enter collectives after the
  // rendezvous; any loan outstanding at the crash must have been released
  // by the mailbox reset or the whole recovery deadlocks the watchdog.
  constexpr int P = 4;
  const auto original = random_partitions(P, 128, 81);
  auto plan = std::make_shared<FaultPlan>();
  plan->crash_rank_at_phase_op(2, net::Phase::Exchange, 3);
  Team team(cfg_with(P, plan, /*watchdog_s=*/20.0));
  auto parts = original;
  core::ResilienceConfig rcfg;
  rcfg.mode = core::RecoveryMode::ShrinkSurvivors;
  core::SortConfig scfg;
  scfg.path = core::DataPath::Pull;  // the borrowed single-copy path
  core::ResilienceReport rep;
  (void)core::sort_resilient(team, parts, scfg, rcfg, &rep);
  EXPECT_EQ(flatten(parts), flatten_sorted(original));
}

// --- skewed inputs under faults (satellite) ----------------------------------

TEST(SkewedInputs, DuplicateHeavyAndZipfSurviveFaults) {
  constexpr int P = 4;
  constexpr usize kPerRank = 256;
  using workload::Dist;
  for (Dist dist : {Dist::Zipf, Dist::FewDistinct, Dist::AllEqual}) {
    workload::GenConfig gen;
    gen.dist = dist;
    gen.seed = 97;
    std::vector<std::vector<u64>> original(P);
    for (int r = 0; r < P; ++r)
      original[r] = workload::generate_u64(gen, r, P, kPerRank);
    const auto expected = flatten_sorted(original);

    for (core::RecoveryMode mode : {core::RecoveryMode::ResumeCheckpoint,
                                    core::RecoveryMode::ShrinkSurvivors}) {
      auto plan = std::make_shared<FaultPlan>();
      plan->crash_rank_at_phase_op(1, net::Phase::Histogram, 4);
      Team team(cfg_with(P, plan, /*watchdog_s=*/20.0));
      auto parts = original;
      core::ResilienceConfig rcfg;
      rcfg.mode = mode;
      core::SortConfig scfg;  // epsilon 0: duplicates resolve via tie splits
      core::ResilienceReport rep;
      (void)core::sort_resilient(team, parts, scfg, rcfg, &rep);
      EXPECT_EQ(flatten(parts), expected)
          << workload::dist_name(dist) << " under "
          << core::recovery_mode_name(mode);
      for (const auto& p : parts)
        EXPECT_TRUE(std::is_sorted(p.begin(), p.end()));
    }
  }
}

// --- hybrid histogramming under faults (PR 10) -------------------------------

TEST(HybridHistogram, RecoveryModesSurviveCrashInSampledRounds) {
  // Crash inside the histogram phase while the hybrid's sampled rounds are
  // running: the SplitterResult checkpointed at the superstep boundary
  // carries the sampled-round telemetry, and both recovery modes must
  // replay the search deterministically (same sample_seed) to the same
  // sorted output as a fault-free run.
  constexpr int P = 8;
  constexpr usize kPerRank = 128;
  const auto original = random_partitions(P, kPerRank, 41);
  const auto expected = flatten_sorted(original);
  core::SortConfig scfg;
  scfg.histogram = core::HistogramMode::Hybrid;

  for (core::RecoveryMode mode : {core::RecoveryMode::ResumeCheckpoint,
                                  core::RecoveryMode::ShrinkSurvivors}) {
    SCOPED_TRACE(core::recovery_mode_name(mode));
    // Op 1 of the histogram phase is a sampled-round SampleGather.
    auto plan = std::make_shared<FaultPlan>();
    plan->crash_rank_at_phase_op(1, net::Phase::Histogram, 1);
    Team team(cfg_with(P, plan, /*watchdog_s=*/20.0));
    auto parts = original;
    core::ResilienceConfig rcfg;
    rcfg.mode = mode;
    core::ResilienceReport rep;
    (void)core::sort_resilient(team, parts, scfg, rcfg, &rep);
    EXPECT_GE(rep.failures + rep.recoveries, 1u);  // the crash was seen
    EXPECT_EQ(flatten(parts), expected);
    for (const auto& p : parts)
      EXPECT_TRUE(std::is_sorted(p.begin(), p.end()));
  }
}

}  // namespace
}  // namespace hds::runtime
