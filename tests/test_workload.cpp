// Tests for the workload generators: determinism, range/statistical sanity,
// sparsity behaviour, and the adversarial structure of the special
// distributions.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/error.h"
#include "workload/distributions.h"

namespace hds::workload {
namespace {

TEST(Workload, DeterministicPerRankAndSeed) {
  GenConfig cfg;
  cfg.seed = 123;
  const auto a = generate_u64(cfg, 3, 8, 1000);
  const auto b = generate_u64(cfg, 3, 8, 1000);
  EXPECT_EQ(a, b);
  cfg.seed = 124;
  EXPECT_NE(generate_u64(cfg, 3, 8, 1000), a);
}

TEST(Workload, RanksProduceDifferentStreams) {
  GenConfig cfg;
  EXPECT_NE(generate_u64(cfg, 0, 4, 500), generate_u64(cfg, 1, 4, 500));
}

TEST(Workload, UniformStaysInRange) {
  GenConfig cfg;
  cfg.lo = 100;
  cfg.hi = 200;
  for (u64 v : generate_u64(cfg, 0, 2, 5000)) {
    EXPECT_GE(v, 100u);
    EXPECT_LE(v, 200u);
  }
}

TEST(Workload, UniformCoversRange) {
  GenConfig cfg;
  cfg.lo = 0;
  cfg.hi = 9;
  std::set<u64> seen;
  for (u64 v : generate_u64(cfg, 0, 1, 2000)) seen.insert(v);
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Workload, NormalDoublesHaveConfiguredMoments) {
  GenConfig cfg;
  cfg.dist = Dist::Normal;
  cfg.mean = 5.0;
  cfg.stddev = 2.0;
  const auto v = generate_f64(cfg, 0, 1, 100000);
  double sum = 0;
  for (double x : v) sum += x;
  const double mean = sum / v.size();
  EXPECT_NEAR(mean, 5.0, 0.05);
  double var = 0;
  for (double x : v) var += (x - mean) * (x - mean);
  EXPECT_NEAR(std::sqrt(var / v.size()), 2.0, 0.05);
}

TEST(Workload, AllEqualIsAllEqual) {
  GenConfig cfg;
  cfg.dist = Dist::AllEqual;
  const auto v = generate_u64(cfg, 2, 4, 1000);
  for (u64 x : v) EXPECT_EQ(x, v.front());
}

TEST(Workload, FewDistinctRespectsAlphabet) {
  GenConfig cfg;
  cfg.dist = Dist::FewDistinct;
  cfg.alphabet = 5;
  std::set<u64> seen;
  for (u64 v : generate_u64(cfg, 0, 1, 10000)) seen.insert(v);
  EXPECT_LE(seen.size(), 5u);
  EXPECT_GE(seen.size(), 4u);
}

TEST(Workload, ZipfIsHeavilySkewed) {
  GenConfig cfg;
  cfg.dist = Dist::Zipf;
  const auto v = generate_u64(cfg, 0, 1, 20000);
  usize ones = 0;
  for (u64 x : v)
    if (x == 1) ++ones;
  // Rank-1 element carries a large share under zipf_s = 1.2.
  EXPECT_GT(ones, v.size() / 20);
}

TEST(Workload, NearlySortedIsMostlyOrderedAcrossRanks) {
  GenConfig cfg;
  cfg.dist = Dist::NearlySorted;
  const auto lo = generate_u64(cfg, 0, 4, 2000);
  const auto hi = generate_u64(cfg, 3, 4, 2000);
  // Rank 0's median is far below rank 3's median.
  auto med = [](std::vector<u64> v) {
    std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
    return v[v.size() / 2];
  };
  EXPECT_LT(med(lo), med(hi));
}

TEST(Workload, ReverseSortedDescendsAcrossRanks) {
  GenConfig cfg;
  cfg.dist = Dist::ReverseSorted;
  const auto first = generate_u64(cfg, 0, 4, 1000);
  const auto last = generate_u64(cfg, 3, 4, 1000);
  EXPECT_GT(first.front(), last.back());
}

TEST(Workload, StaircaseIsRankReversedSlices) {
  GenConfig cfg;
  cfg.dist = Dist::Staircase;
  cfg.lo = 0;
  cfg.hi = 1000;
  const auto r0 = generate_u64(cfg, 0, 4, 1000);
  const auto r3 = generate_u64(cfg, 3, 4, 1000);
  // Rank 0 holds the TOP slice, rank 3 the BOTTOM slice.
  EXPECT_GT(*std::min_element(r0.begin(), r0.end()), 700u);
  EXPECT_LT(*std::max_element(r3.begin(), r3.end()), 300u);
}

TEST(Workload, SparsityEmptiesSomeRanksDeterministically) {
  GenConfig cfg;
  cfg.sparsity = 0.5;
  cfg.seed = 31;
  usize empty = 0;
  for (int r = 0; r < 64; ++r) {
    const usize n = rank_count(cfg, r, 100);
    EXPECT_TRUE(n == 0 || n == 100);
    if (n == 0) ++empty;
    EXPECT_EQ(rank_count(cfg, r, 100), n);  // deterministic
  }
  EXPECT_GT(empty, 16u);
  EXPECT_LT(empty, 48u);
}

TEST(Workload, SparsityZeroKeepsEveryone) {
  GenConfig cfg;
  for (int r = 0; r < 16; ++r) EXPECT_EQ(rank_count(cfg, r, 42), 42u);
}

TEST(Workload, DistNamesRoundTrip) {
  for (Dist d : all_dists()) EXPECT_EQ(dist_from_name(dist_name(d)), d);
  EXPECT_THROW(dist_from_name("nope"), argument_error);
}

TEST(Workload, U32RangeClamped) {
  GenConfig cfg;
  cfg.hi = ~u64{0};
  for (u32 v : generate_u32(cfg, 0, 1, 1000))
    EXPECT_LE(v, 0xffffffffu);  // trivially true, but exercises the clamp
}

}  // namespace
}  // namespace hds::workload
