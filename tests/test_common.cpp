// Unit tests for src/common: bits, rng, morton, stats, table.
#include <gtest/gtest.h>

#include <set>

#include "common/bits.h"
#include "common/error.h"
#include "common/morton.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"

namespace hds {
namespace {

TEST(Bits, Log2Ceil) {
  EXPECT_EQ(log2_ceil(1), 0u);
  EXPECT_EQ(log2_ceil(2), 1u);
  EXPECT_EQ(log2_ceil(3), 2u);
  EXPECT_EQ(log2_ceil(4), 2u);
  EXPECT_EQ(log2_ceil(5), 3u);
  EXPECT_EQ(log2_ceil(1024), 10u);
  EXPECT_EQ(log2_ceil(1025), 11u);
}

TEST(Bits, Log2Floor) {
  EXPECT_EQ(log2_floor(1), 0u);
  EXPECT_EQ(log2_floor(2), 1u);
  EXPECT_EQ(log2_floor(3), 1u);
  EXPECT_EQ(log2_floor(4), 2u);
  EXPECT_EQ(log2_floor(1023), 9u);
}

TEST(Bits, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ULL << 40));
  EXPECT_FALSE(is_pow2((1ULL << 40) + 1));
}

TEST(Bits, NextPow2) {
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(4), 4u);
  EXPECT_EQ(next_pow2(5), 8u);
}

TEST(Bits, DivCeil) {
  EXPECT_EQ(div_ceil(10, 3), 4);
  EXPECT_EQ(div_ceil(9, 3), 3);
  EXPECT_EQ(div_ceil(1, 7), 1);
  EXPECT_EQ(div_ceil(0, 7), 0);
}

TEST(Bits, MidpointNoOverflow) {
  const u64 hi = ~u64{0};
  EXPECT_EQ(midpoint_u64(hi - 1, hi), hi - 1);
  EXPECT_EQ(midpoint_u64(0, hi), hi / 2);
  EXPECT_EQ(midpoint_u64(5, 5), 5u);
}

TEST(Rng, SplitMix64Deterministic) {
  SplitMix64 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, HashMixSpreads) {
  std::set<u64> seen;
  for (u64 i = 0; i < 1000; ++i) seen.insert(hash_mix(42, i));
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(Rng, Uniform01InRange) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformU64Bounds) {
  Xoshiro256 rng(2);
  for (int i = 0; i < 10000; ++i) {
    const u64 v = rng.uniform_u64(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, UniformU64FullRangeDoesNotHang) {
  Xoshiro256 rng(3);
  (void)rng.uniform_u64(0, ~u64{0});
}

TEST(Rng, NormalMoments) {
  Xoshiro256 rng(4);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, ExponentialMean) {
  Xoshiro256 rng(5);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Morton, RoundTrip3D) {
  Xoshiro256 rng(6);
  for (int i = 0; i < 1000; ++i) {
    const u32 x = static_cast<u32>(rng.uniform_u64(0, (1u << 21) - 1));
    const u32 y = static_cast<u32>(rng.uniform_u64(0, (1u << 21) - 1));
    const u32 z = static_cast<u32>(rng.uniform_u64(0, (1u << 21) - 1));
    const u64 code = morton3(x, y, z);
    EXPECT_EQ(morton3_axis(code, 0), x);
    EXPECT_EQ(morton3_axis(code, 1), y);
    EXPECT_EQ(morton3_axis(code, 2), z);
  }
}

TEST(Morton, OrderIsHierarchical) {
  // All codes within one octant are below all codes of the next octant at
  // the top level.
  const u64 low = morton3((1u << 20) - 1, (1u << 20) - 1, (1u << 20) - 1);
  const u64 high = morton3(1u << 20, 1u << 20, 1u << 20);
  EXPECT_LT(low, high);
}

TEST(Morton, Quantize) {
  EXPECT_EQ(morton_quantize(-1.0, 0.0, 1.0), 0u);
  EXPECT_EQ(morton_quantize(2.0, 0.0, 1.0), (1u << 21) - 1);
  const u32 mid = morton_quantize(0.5, 0.0, 1.0);
  EXPECT_NEAR(static_cast<double>(mid), 1048575.5, 2.0);
}

TEST(Morton, RoundTrip2D) {
  const u64 c = morton2(0xDEADBEEF, 0x12345678);
  // Interleave then de-interleave by brute force.
  u32 x = 0, y = 0;
  for (int b = 0; b < 32; ++b) {
    x |= static_cast<u32>((c >> (2 * b)) & 1) << b;
    y |= static_cast<u32>((c >> (2 * b + 1)) & 1) << b;
  }
  EXPECT_EQ(x, 0xDEADBEEFu);
  EXPECT_EQ(y, 0x12345678u);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median({4, 1, 2, 3}), 2.5);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
  EXPECT_DOUBLE_EQ(median({7}), 7.0);
}

TEST(Stats, Mean) {
  EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Stats, Percentile) {
  std::vector<double> xs{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 50.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 30.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 20.0);
}

TEST(Stats, SummaryCIBracketsMedian) {
  std::vector<double> xs;
  for (int i = 1; i <= 99; ++i) xs.push_back(i);
  const Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.median, 50.0);
  EXPECT_LE(s.ci_lo, s.median);
  EXPECT_GE(s.ci_hi, s.median);
  EXPECT_GT(s.ci_lo, s.min - 1);
  EXPECT_EQ(s.n, 99u);
}

TEST(Table, RendersAligned) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1.5"});
  t.add_row({"longer-name", "200"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("value"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RowSizeMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), invariant_error);
}

TEST(Table, FmtBytes) {
  EXPECT_EQ(fmt_bytes(512), "512.0 B");
  EXPECT_EQ(fmt_bytes(2048), "2.00 KiB");
  EXPECT_NE(fmt_bytes(3.5 * 1024 * 1024 * 1024).find("GiB"), std::string::npos);
}

}  // namespace
}  // namespace hds
