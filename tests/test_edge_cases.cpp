// Edge-case and regression tests across modules: team reuse, clock reset,
// nested phase scopes, subteam poisoning, self-messaging, empty-span
// searches, loser trees over empty runs, and split ordering stability.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "core/histogram_sort.h"
#include "core/local_sort.h"
#include "core/merge.h"
#include "runtime/comm.h"
#include "runtime/team.h"

namespace hds {
namespace {

using runtime::Comm;
using runtime::Team;

[[maybe_unused]] auto identity = [](const auto& v) { return v; };

TEST(TeamEdge, ClocksResetBetweenRuns) {
  Team team({.nranks = 2});
  team.run([&](Comm& c) { c.charge_seconds(1.0); });
  EXPECT_NEAR(team.stats().makespan_s, 1.0, 1e-12);
  team.run([&](Comm& c) { c.charge_seconds(0.25); });
  EXPECT_NEAR(team.stats().makespan_s, 0.25, 1e-12);
}

TEST(TeamEdge, MailboxesClearedBetweenRuns) {
  Team team({.nranks = 2});
  // First run leaves an unconsumed message behind.
  team.run([&](Comm& c) {
    if (c.rank() == 0) {
      const std::vector<u32> v{1};
      c.send(1, 9, std::span<const u32>(v));
    }
  });
  // Second run must not see it.
  EXPECT_THROW(team.run([&](Comm& c) {
                 if (c.rank() == 1) {
                   // Nothing was sent this run; a failing peer poisons us.
                   (void)c.recv<u32>(0, 9);
                 } else {
                   throw std::runtime_error("force abort");
                 }
               }),
               std::runtime_error);
}

TEST(TeamEdge, ExceptionInsideSubteamCollectiveUnblocks) {
  Team team({.nranks = 4});
  EXPECT_THROW(team.run([&](Comm& c) {
                 Comm half = c.split(c.rank() / 2, c.rank());
                 if (c.rank() == 0) throw std::runtime_error("boom");
                 half.barrier();  // peers parked on subteam barriers
                 half.barrier();
               }),
               std::runtime_error);
  team.run([&](Comm& c) { c.barrier(); });  // team reusable
}

TEST(TeamEdge, SelfSendReceives) {
  Team team({.nranks = 2});
  team.run([&](Comm& c) {
    const std::vector<u64> v{7, 8};
    c.send(c.rank(), 5, std::span<const u64>(v));
    EXPECT_EQ(c.recv<u64>(c.rank(), 5), v);
  });
}

TEST(TeamEdge, PhaseScopesNest) {
  Team team({.nranks = 1});
  team.run([&](Comm& c) {
    net::PhaseScope outer(c.clock(), net::Phase::LocalSort);
    c.charge_seconds(0.1);
    {
      net::PhaseScope inner(c.clock(), net::Phase::Merge);
      c.charge_seconds(0.2);
    }
    c.charge_seconds(0.3);  // back to LocalSort
  });
  EXPECT_NEAR(team.stats().phase_seconds(net::Phase::LocalSort), 0.4, 1e-12);
  EXPECT_NEAR(team.stats().phase_seconds(net::Phase::Merge), 0.2, 1e-12);
}

TEST(TeamEdge, SplitColorsNeedNotBeContiguous) {
  Team team({.nranks = 6});
  team.run([&](Comm& c) {
    // Colors 10, 20, 42 instead of 0..2.
    const int colors[] = {42, 10, 42, 20, 10, 42};
    Comm sub = c.split(colors[c.rank()], c.rank());
    const int expected_size = colors[c.rank()] == 42 ? 3
                              : colors[c.rank()] == 10 ? 2
                                                       : 1;
    EXPECT_EQ(sub.size(), expected_size);
  });
}

TEST(TeamEdge, ExscanWithNonZeroInit) {
  Team team({.nranks = 4});
  team.run([&](Comm& c) {
    const i64 r = c.exscan_value<i64>(1, std::plus<>{}, 100);
    EXPECT_EQ(r, 100 + c.rank());
  });
}

TEST(TeamEdge, AllreduceStructMin) {
  struct MinLoc {
    double value;
    int rank;
  };
  Team team({.nranks = 5});
  team.run([&](Comm& c) {
    const MinLoc mine{10.0 - c.rank(), c.rank()};
    MinLoc out{};
    c.allreduce(&mine, &out, 1, [](MinLoc a, MinLoc b) {
      return a.value < b.value ? a : b;
    });
    EXPECT_EQ(out.rank, 4);  // rank 4 holds the minimum value 6.0
    EXPECT_DOUBLE_EQ(out.value, 6.0);
  });
}

TEST(SearchEdge, EmptySpanCounts) {
  const std::vector<u64> empty;
  EXPECT_EQ(core::count_below(std::span<const u64>(empty), u64{5}, identity),
            0u);
  EXPECT_EQ(core::count_below_equal(std::span<const u64>(empty), u64{5},
                                    identity),
            0u);
}

TEST(SearchEdge, BoundsAtExtremes) {
  const std::vector<u64> v{2, 4, 4, 6};
  const std::span<const u64> s(v);
  EXPECT_EQ(core::count_below(s, u64{1}, identity), 0u);
  EXPECT_EQ(core::count_below(s, u64{4}, identity), 1u);
  EXPECT_EQ(core::count_below_equal(s, u64{4}, identity), 3u);
  EXPECT_EQ(core::count_below(s, u64{7}, identity), 4u);
  EXPECT_EQ(core::count_below_equal(s, u64{7}, identity), 4u);
}

TEST(LoserTreeEdge, AllRunsEmpty) {
  std::vector<u64> a, b;
  std::vector<std::span<const u64>> runs = {a, b};
  auto less = [](u64 x, u64 y) { return x < y; };
  core::LoserTree<u64, decltype(less)> tree(runs, less);
  EXPECT_TRUE(tree.empty());
}

TEST(LoserTreeEdge, DuplicateHeadsStable) {
  std::vector<u64> a{5, 5}, b{5}, c{5, 5, 5};
  std::vector<std::span<const u64>> runs = {a, b, c};
  auto less = [](u64 x, u64 y) { return x < y; };
  core::LoserTree<u64, decltype(less)> tree(runs, less);
  usize n = 0;
  while (!tree.empty()) {
    EXPECT_EQ(tree.pop(), 5u);
    ++n;
  }
  EXPECT_EQ(n, 6u);
}

TEST(SortEdgeMore, RepeatSortIsIdempotent) {
  const int P = 4;
  Xoshiro256 rng(9);
  std::vector<std::vector<u64>> shards(P);
  for (auto& s : shards)
    for (int i = 0; i < 300; ++i) s.push_back(rng());
  std::vector<std::vector<u64>> first(P), second(P);
  Team team({.nranks = P});
  team.run([&](Comm& c) {
    auto local = shards[c.rank()];
    core::sort(c, local);
    first[c.rank()] = local;
    core::sort(c, local);  // sorting sorted data
    second[c.rank()] = std::move(local);
  });
  EXPECT_EQ(first, second);
}

TEST(SortEdgeMore, SortedInputMovesNothingWithSortedFlag) {
  const int P = 4;
  std::vector<std::vector<u64>> shards(P);
  u64 v = 0;
  for (auto& s : shards)
    for (int i = 0; i < 200; ++i) s.push_back(v += 2);
  Team t1({.nranks = P}), t2({.nranks = P});
  t1.run([&](Comm& c) {
    auto local = shards[c.rank()];
    core::SortConfig cfg;
    cfg.input_is_sorted = true;
    core::sort(c, local, cfg);
  });
  t2.run([&](Comm& c) {
    auto local = shards[c.rank()];
    core::sort(c, local);
  });
  // Skipping superstep 1 on sorted input is strictly cheaper.
  EXPECT_LT(t1.stats().makespan_s, t2.stats().makespan_s);
}

TEST(SortEdgeMore, MaxAndMinKeysAtRangeEdges) {
  const int P = 3;
  std::vector<std::vector<u64>> shards(P);
  shards[0] = {0, ~u64{0}};
  shards[1] = {~u64{0}, 0, 5};
  shards[2] = {1};
  std::vector<std::vector<u64>> out(P);
  Team team({.nranks = P});
  team.run([&](Comm& c) {
    auto local = shards[c.rank()];
    core::sort(c, local);
    out[c.rank()] = std::move(local);
  });
  EXPECT_EQ(out[0], (std::vector<u64>{0, 0}));
  EXPECT_EQ(out[1], (std::vector<u64>{1, 5, ~u64{0}}));
  EXPECT_EQ(out[2], (std::vector<u64>{~u64{0}}));
}

TEST(SortEdgeMore, NegativeZeroAndInfinityDoubles) {
  const int P = 2;
  std::vector<std::vector<double>> shards(P);
  const double inf = std::numeric_limits<double>::infinity();
  shards[0] = {0.0, -inf, 1.0};
  shards[1] = {-0.0, inf, -1.0};
  std::vector<std::vector<double>> out(P);
  Team team({.nranks = P});
  team.run([&](Comm& c) {
    auto local = shards[c.rank()];
    core::sort(c, local);
    out[c.rank()] = std::move(local);
  });
  EXPECT_EQ(out[0][0], -inf);
  EXPECT_EQ(out[1][2], inf);
  // -0.0 and 0.0 order as equal keys; all finite values in between sorted.
  EXPECT_LE(out[0][1], out[0][2]);
  EXPECT_LE(out[0][2], out[1][0]);
}

}  // namespace
}  // namespace hds
