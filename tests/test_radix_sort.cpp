// The local-sort kernel layer: LSD radix sort property tests against
// std::sort over every KeyTraits type (including IEEE specials), stability,
// pass-skipping stats, batched binary searches, the Auto crossover, and the
// kernel x exchange-algorithm grid through the full distributed sort.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "core/histogram_sort.h"
#include "core/local_sort.h"
#include "core/radix_sort.h"
#include "runtime/team.h"
#include "workload/distributions.h"

namespace hds::core {
namespace {

using runtime::Comm;
using runtime::Team;

// ---------------------------------------------------------------------------
// Typed property tests: radix_sort_keys must agree with std::sort.
// ---------------------------------------------------------------------------

template <class T>
T random_key(Xoshiro256& rng) {
  if constexpr (std::is_same_v<T, float>) {
    return static_cast<float>((rng.uniform01() - 0.5) * 1e6);
  } else if constexpr (std::is_same_v<T, double>) {
    return (rng.uniform01() - 0.5) * 1e12;
  } else if constexpr (std::is_signed_v<T>) {
    return static_cast<T>(rng());  // wraps over the full signed range
  } else {
    return static_cast<T>(rng());
  }
}

template <class T>
class RadixTyped : public ::testing::Test {};

using KeyTypes = ::testing::Types<u32, u64, i32, i64, float, double>;
TYPED_TEST_SUITE(RadixTyped, KeyTypes);

template <class T>
void expect_matches_std_sort(std::vector<T> data) {
  std::vector<T> expected = data;
  std::sort(expected.begin(), expected.end());
  const RadixSortStats st = radix_sort_keys(data);
  EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));
  ASSERT_EQ(data.size(), expected.size());
  for (usize i = 0; i < data.size(); ++i)
    EXPECT_EQ(data[i], expected[i]) << "mismatch at index " << i;
  EXPECT_EQ(st.passes_planned,
            sizeof(typename KeyTraits<T>::uint_type));
  EXPECT_LE(st.passes_executed, st.passes_planned);
}

TYPED_TEST(RadixTyped, RandomFullRange) {
  Xoshiro256 rng(2024);
  std::vector<TypeParam> data(5000);
  for (auto& v : data) v = random_key<TypeParam>(rng);
  expect_matches_std_sort(std::move(data));
}

TYPED_TEST(RadixTyped, DuplicatesHeavy) {
  Xoshiro256 rng(7);
  std::vector<TypeParam> data(4000);
  for (auto& v : data)
    v = static_cast<TypeParam>(static_cast<i64>(rng() % 17) - 8);
  expect_matches_std_sort(std::move(data));
}

TYPED_TEST(RadixTyped, PreSorted) {
  std::vector<TypeParam> data(3000);
  for (usize i = 0; i < data.size(); ++i)
    data[i] = static_cast<TypeParam>(static_cast<i64>(i) - 1500);
  expect_matches_std_sort(std::move(data));
}

TYPED_TEST(RadixTyped, ReverseSorted) {
  std::vector<TypeParam> data(3000);
  for (usize i = 0; i < data.size(); ++i)
    data[i] =
        static_cast<TypeParam>(1500 - static_cast<i64>(i));
  expect_matches_std_sort(std::move(data));
}

TYPED_TEST(RadixTyped, EmptyAndSingle) {
  expect_matches_std_sort(std::vector<TypeParam>{});
  expect_matches_std_sort(std::vector<TypeParam>{TypeParam{1}});
}

TYPED_TEST(RadixTyped, AllEqual) {
  expect_matches_std_sort(
      std::vector<TypeParam>(2000, static_cast<TypeParam>(42)));
}

// ---------------------------------------------------------------------------
// IEEE-754 specials: +-0.0, +-inf, denormals, negatives.
// ---------------------------------------------------------------------------

template <class F>
void float_specials_case() {
  using Lim = std::numeric_limits<F>;
  Xoshiro256 rng(33);
  std::vector<F> data = {F{0.0},       -F{0.0},     Lim::infinity(),
                         -Lim::infinity(), Lim::denorm_min(),
                         -Lim::denorm_min(), Lim::max(), Lim::lowest(),
                         F{-1.5},      F{1.5}};
  for (int i = 0; i < 500; ++i)
    data.push_back(static_cast<F>((rng.uniform01() - 0.5) * 1e3));
  std::vector<F> expected = data;
  // Compare in KeyTraits uint space so -0.0 vs +0.0 placement is exact (the
  // radix kernel orders -0.0 before +0.0; operator< calls them equal).
  auto uk = [](F v) { return KeyTraits<F>::to_uint(v); };
  std::sort(expected.begin(), expected.end(),
            [&](F a, F b) { return uk(a) < uk(b); });
  radix_sort_keys(data);
  ASSERT_EQ(data.size(), expected.size());
  for (usize i = 0; i < data.size(); ++i)
    EXPECT_EQ(uk(data[i]), uk(expected[i])) << "bit mismatch at " << i;
  EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));
}

TEST(RadixFloatSpecials, Float) { float_specials_case<float>(); }
TEST(RadixFloatSpecials, Double) { float_specials_case<double>(); }

// ---------------------------------------------------------------------------
// Stats: trivial passes are skipped without touching the data.
// ---------------------------------------------------------------------------

TEST(RadixStats, NarrowRangeSkipsHighPasses) {
  Xoshiro256 rng(5);
  std::vector<u64> data(4096);
  for (auto& v : data) v = rng() & 0xffULL;  // one non-trivial byte
  const RadixSortStats st = radix_sort_keys(data);
  EXPECT_EQ(st.passes_planned, 8u);
  EXPECT_LE(st.passes_executed, 1u);
  EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));
}

TEST(RadixStats, FullRangeRunsAllPasses) {
  Xoshiro256 rng(6);
  std::vector<u64> data(4096);
  for (auto& v : data) v = rng();
  const RadixSortStats st = radix_sort_keys(data);
  EXPECT_EQ(st.passes_executed, 8u);
  EXPECT_FALSE(st.used_pairs);
}

// ---------------------------------------------------------------------------
// Stability of radix_sort_by_key (both the pairs and the index path).
// ---------------------------------------------------------------------------

TEST(RadixByKey, PairsPathIsStable) {
  struct Rec {  // sizeof == 8 <= 3 * sizeof(u32): pairs path
    u32 key;
    u32 seq;
  };
  Xoshiro256 rng(21);
  std::vector<Rec> data(3000);
  for (u32 i = 0; i < data.size(); ++i)
    data[i] = Rec{static_cast<u32>(rng() % 50), i};
  std::vector<Rec> expected = data;
  std::stable_sort(expected.begin(), expected.end(),
                   [](const Rec& a, const Rec& b) { return a.key < b.key; });
  const RadixSortStats st =
      radix_sort_by_key(data, [](const Rec& r) { return r.key; });
  EXPECT_TRUE(st.used_pairs);
  ASSERT_EQ(data.size(), expected.size());
  for (usize i = 0; i < data.size(); ++i) {
    EXPECT_EQ(data[i].key, expected[i].key);
    EXPECT_EQ(data[i].seq, expected[i].seq) << "instability at " << i;
  }
}

TEST(RadixByKey, IndexPathIsStableForLargeRecords) {
  struct Big {  // sizeof > 3 * sizeof(u32): (key, index) + gather path
    u32 key;
    u64 a, b, c;
    u32 seq;
  };
  Xoshiro256 rng(22);
  std::vector<Big> data(2000);
  for (u32 i = 0; i < data.size(); ++i)
    data[i] = Big{static_cast<u32>(rng() % 40), rng(), rng(), rng(), i};
  std::vector<Big> expected = data;
  std::stable_sort(expected.begin(), expected.end(),
                   [](const Big& a, const Big& b) { return a.key < b.key; });
  radix_sort_by_key(data, [](const Big& r) { return r.key; });
  for (usize i = 0; i < data.size(); ++i) {
    EXPECT_EQ(data[i].key, expected[i].key);
    EXPECT_EQ(data[i].seq, expected[i].seq) << "instability at " << i;
  }
}

TEST(RadixByKey, NegativeDoubleKeys) {
  struct Rec {
    double key;
    u32 seq;
  };
  Xoshiro256 rng(23);
  std::vector<Rec> data(1500);
  for (u32 i = 0; i < data.size(); ++i)
    data[i] = Rec{(rng.uniform01() - 0.5) * 100.0, i};
  radix_sort_by_key(data, [](const Rec& r) { return r.key; });
  EXPECT_TRUE(std::is_sorted(
      data.begin(), data.end(),
      [](const Rec& a, const Rec& b) { return a.key < b.key; }));
}

// ---------------------------------------------------------------------------
// Batched binary search agrees with the per-probe searches.
// ---------------------------------------------------------------------------

TEST(BatchedCounts, MatchesIndividualSearches) {
  Xoshiro256 rng(44);
  std::vector<u64> data(5000);
  for (auto& v : data) v = rng() % 1000;
  std::sort(data.begin(), data.end());
  const std::span<const u64> sorted(data.data(), data.size());

  std::vector<u64> probes;
  for (int i = 0; i < 200; ++i) probes.push_back(rng() % 1100);
  probes.push_back(probes.back());  // duplicate probes must be handled
  probes.push_back(0);
  probes.push_back(2000);  // out of range both sides
  std::sort(probes.begin(), probes.end());

  IdentityKey id;
  std::vector<usize> lb(probes.size()), ub(probes.size());
  batched_counts(sorted, std::span<const u64>(probes), id, lb.data(),
                 ub.data());
  for (usize i = 0; i < probes.size(); ++i) {
    EXPECT_EQ(lb[i], count_below(sorted, probes[i], id)) << "probe " << i;
    EXPECT_EQ(ub[i], count_below_equal(sorted, probes[i], id))
        << "probe " << i;
  }
}

TEST(BatchedCounts, EmptyHaystackAndProbes) {
  IdentityKey id;
  std::vector<u64> none;
  std::vector<u64> probes = {1, 2, 3};
  std::vector<usize> lb(3, 99), ub(3, 99);
  batched_counts(std::span<const u64>(none.data(), 0),
                 std::span<const u64>(probes), id, lb.data(), ub.data());
  for (usize i = 0; i < 3; ++i) {
    EXPECT_EQ(lb[i], 0u);
    EXPECT_EQ(ub[i], 0u);
  }
  batched_counts(std::span<const u64>(none.data(), 0),
                 std::span<const u64>(none.data(), 0), id, nullptr, nullptr);
}

// ---------------------------------------------------------------------------
// Auto crossover and kernel resolution.
// ---------------------------------------------------------------------------

TEST(KernelDispatch, ExplicitRequestsAreHonoured) {
  const net::MachineModel m;
  EXPECT_EQ(resolve_local_sort_kernel<u64>(m, 10, LocalSortKernel::Radix),
            LocalSortKernel::Radix);
  EXPECT_EQ(resolve_local_sort_kernel<u64>(m, usize{1} << 24,
                                           LocalSortKernel::Comparison),
            LocalSortKernel::Comparison);
}

TEST(KernelDispatch, AutoUsesComparisonBelowFloor) {
  const net::MachineModel m;
  EXPECT_EQ(
      resolve_local_sort_kernel<u64>(m, kRadixMinN - 1, LocalSortKernel::Auto),
      LocalSortKernel::Comparison);
  EXPECT_EQ(resolve_local_sort_kernel<u64>(m, usize{1} << 20,
                                           LocalSortKernel::Auto),
            LocalSortKernel::Radix);
}

TEST(KernelDispatch, SlowRadixConstantDisablesAuto) {
  net::MachineModel m;
  m.radix_s_per_elem_pass = 1e-3;  // pathological calibration
  EXPECT_EQ(resolve_local_sort_kernel<u64>(m, usize{1} << 20,
                                           LocalSortKernel::Auto),
            LocalSortKernel::Comparison);
  EXPECT_EQ(radix_crossover_n(m, 64), std::numeric_limits<usize>::max());
}

TEST(KernelDispatch, NonBisectableKeyAlwaysComparison) {
  struct Opaque {
    int x;
    bool operator<(const Opaque& o) const { return x < o.x; }
  };
  static_assert(!Bisectable<Opaque>);
  const net::MachineModel m;
  EXPECT_EQ(resolve_local_sort_kernel<Opaque>(m, usize{1} << 20,
                                              LocalSortKernel::Radix),
            LocalSortKernel::Comparison);
}

TEST(KernelDispatch, CrossoverRespectsFloor) {
  const net::MachineModel m;
  EXPECT_GE(radix_crossover_n(m, 64), kRadixMinN);
  EXPECT_GE(radix_crossover_n(m, 32), kRadixMinN);
}

// ---------------------------------------------------------------------------
// local_sort through a Comm: charges differ by kernel, output identical.
// ---------------------------------------------------------------------------

TEST(LocalSortKernels, SameOutputDifferentCharge) {
  const usize n = 20000;
  Xoshiro256 rng(55);
  std::vector<u64> base(n);
  for (auto& v : base) v = rng();

  auto run = [&](LocalSortKernel k) {
    std::vector<u64> data = base;
    double elapsed = 0.0;
    Team team({.nranks = 1});
    team.run([&](Comm& c) {
      local_sort(c, data, IdentityKey{}, k);
    });
    elapsed = team.stats().makespan_s;
    EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));
    return std::make_pair(data, elapsed);
  };
  const auto [cmp_data, cmp_t] = run(LocalSortKernel::Comparison);
  const auto [rad_data, rad_t] = run(LocalSortKernel::Radix);
  EXPECT_EQ(cmp_data, rad_data);
  EXPECT_GT(cmp_t, 0.0);
  EXPECT_GT(rad_t, 0.0);
  // Full-range u64 at this n: the charged radix time (8 passes) must be
  // cheaper than n log2(n) comparisons under the default model.
  EXPECT_LT(rad_t, cmp_t);
}

// ---------------------------------------------------------------------------
// Kernel x ExchangeAlgorithm grid: the full sort's output must not depend
// on either choice.
// ---------------------------------------------------------------------------

using GridParam = std::tuple<LocalSortKernel, ExchangeAlgorithm>;

class KernelExchangeGrid : public ::testing::TestWithParam<GridParam> {};

TEST_P(KernelExchangeGrid, InvariantsAndIdenticalOutput) {
  const auto [kernel, exchange] = GetParam();
  const int P = 8;
  workload::GenConfig gen;
  gen.dist = workload::Dist::Normal;
  gen.seed = 321;
  std::vector<std::vector<u64>> shards(P);
  std::vector<u64> all;
  for (int r = 0; r < P; ++r) {
    shards[r] = workload::generate_u64(gen, r, P, 900);
    all.insert(all.end(), shards[r].begin(), shards[r].end());
  }
  std::sort(all.begin(), all.end());

  SortConfig cfg;
  cfg.kernel = kernel;
  cfg.exchange = exchange;
  std::vector<std::vector<u64>> out(P);
  Team team({.nranks = P});
  team.run([&](Comm& c) {
    auto local = shards[c.rank()];
    sort(c, local, cfg);
    EXPECT_TRUE(is_globally_sorted(
        c, std::span<const u64>(local.data(), local.size()), IdentityKey{}));
    out[c.rank()] = std::move(local);
  });

  std::vector<u64> merged;
  for (const auto& o : out) {
    EXPECT_TRUE(std::is_sorted(o.begin(), o.end()));
    merged.insert(merged.end(), o.begin(), o.end());
  }
  // Identical output across every (kernel, exchange) cell: with epsilon == 0
  // the sorted permutation and the per-rank capacities pin the result
  // exactly, so comparing against the one reference covers all cells.
  EXPECT_EQ(merged, all);
}

std::string grid_name(const ::testing::TestParamInfo<GridParam>& info) {
  const auto [kernel, exchange] = info.param;
  std::string e;
  switch (exchange) {
    case ExchangeAlgorithm::Alltoallv: e = "Alltoallv"; break;
    case ExchangeAlgorithm::OneFactor: e = "OneFactor"; break;
    case ExchangeAlgorithm::Hypercube: e = "Hypercube"; break;
    case ExchangeAlgorithm::Hierarchical: e = "Hierarchical"; break;
    case ExchangeAlgorithm::KAry: e = "KAry"; break;
  }
  return std::string(kernel_name(kernel)) + "_" + e;
}

INSTANTIATE_TEST_SUITE_P(
    AllCells, KernelExchangeGrid,
    ::testing::Combine(::testing::Values(LocalSortKernel::Comparison,
                                         LocalSortKernel::Radix,
                                         LocalSortKernel::Auto),
                       ::testing::Values(ExchangeAlgorithm::Alltoallv,
                                         ExchangeAlgorithm::OneFactor,
                                         ExchangeAlgorithm::Hypercube,
                                         ExchangeAlgorithm::Hierarchical)),
    grid_name);

// ---------------------------------------------------------------------------
// sort_by_key exercises the pairs path end to end when Radix is forced.
// ---------------------------------------------------------------------------

TEST(KernelDispatch, SortByKeyRadixEndToEnd) {
  struct Rec {
    u64 key;
    u32 payload;
  };
  const int P = 4;
  Xoshiro256 rng(66);
  std::vector<std::vector<Rec>> shards(P);
  usize total = 0;
  for (auto& s : shards)
    for (int i = 0; i < 800; ++i, ++total)
      s.push_back(Rec{rng(), static_cast<u32>(total)});

  SortConfig cfg;
  cfg.kernel = LocalSortKernel::Radix;
  std::vector<std::vector<Rec>> out(P);
  Team team({.nranks = P});
  team.run([&](Comm& c) {
    auto local = shards[c.rank()];
    sort_by_key(c, local, [](const Rec& r) { return r.key; }, cfg);
    out[c.rank()] = std::move(local);
  });
  u64 prev = 0;
  usize count = 0;
  for (const auto& o : out)
    for (const auto& r : o) {
      EXPECT_GE(r.key, prev);
      prev = r.key;
      ++count;
    }
  EXPECT_EQ(count, total);
}

}  // namespace
}  // namespace hds::core
