// Tests for the k-ary interleaved exchange (PR 7, DESIGN.md sec. 13): the
// factorized swap schedule, the k-way in-place tournament tail merge, sort
// correctness across the k x P x path x kernel grid (byte-identical to the
// alltoallv exchange), degenerate layouts, pull/packed simulated-time
// identity, hds::check coverage (clean run + elide mutation), and crash
// recovery through a k-ary exchange.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "check/race_detector.h"
#include "common/rng.h"
#include "core/exchange.h"
#include "core/histogram_sort.h"
#include "core/merge_inplace.h"
#include "runtime/fault.h"
#include "runtime/team.h"
#include "workload/distributions.h"

namespace hds::core {
namespace {

using runtime::Comm;
using runtime::Team;

// ---------------------------------------------------------------------------
// Schedule: kary_round_factors

TEST(KArySchedule, FactorsMultiplyToPWithEachFactorAtMostK) {
  for (int P = 1; P <= 40; ++P) {
    for (int k : {2, 3, 4, 5, 8, 16}) {
      const std::vector<int> f = kary_round_factors(P, k);
      long prod = 1;
      for (int x : f) {
        EXPECT_GE(x, 2) << "P=" << P << " k=" << k;
        prod *= x;
      }
      EXPECT_EQ(prod, P) << "P=" << P << " k=" << k;
      // Every factor is <= k unless the remaining cofactor had no divisor
      // in [2, k]; then it is a prime (the smallest prime factor).
      for (int x : f) {
        if (x > k) {
          bool prime = x >= 2;
          for (int d = 2; d * d <= x; ++d)
            if (x % d == 0) prime = false;
          EXPECT_TRUE(prime) << "P=" << P << " k=" << k << " factor " << x;
        }
      }
    }
  }
}

TEST(KArySchedule, KnownShapes) {
  EXPECT_EQ(kary_round_factors(16, 2), (std::vector<int>{2, 2, 2, 2}));
  EXPECT_EQ(kary_round_factors(16, 4), (std::vector<int>{4, 4}));
  EXPECT_EQ(kary_round_factors(16, 8), (std::vector<int>{8, 2}));
  EXPECT_EQ(kary_round_factors(16, 16), (std::vector<int>{16}));
  EXPECT_EQ(kary_round_factors(6, 4), (std::vector<int>{3, 2}));
  EXPECT_EQ(kary_round_factors(7, 4), (std::vector<int>{7}));  // prime > k
  EXPECT_EQ(kary_round_factors(12, 4), (std::vector<int>{4, 3}));
  EXPECT_TRUE(kary_round_factors(1, 4).empty());
}

// ---------------------------------------------------------------------------
// merge_tail_inplace_kway unit

TEST(KWayTailMerge, MergesAndKeepsRunOrderOnTies) {
  struct Rec {
    u64 key;
    u64 origin;  // which run the element came from
  };
  auto less = [](const Rec& a, const Rec& b) { return a.key < b.key; };
  // acc run and three chunks with overlapping and equal keys.
  std::vector<Rec> acc{{1, 0}, {4, 0}, {4, 0}, {9, 0}};
  const std::vector<Rec> c1{{2, 1}, {4, 1}, {10, 1}};
  const std::vector<Rec> c2{{4, 2}, {4, 2}};
  const std::vector<Rec> c3{{0, 3}, {11, 3}};
  const usize n1 = acc.size();
  std::vector<std::span<const Rec>> chunks{
      std::span<const Rec>(c1), std::span<const Rec>(c2),
      std::span<const Rec>(c3)};
  acc.resize(n1 + c1.size() + c2.size() + c3.size());
  merge_tail_inplace_kway(std::span<Rec>(acc), n1,
                          std::span<const std::span<const Rec>>(chunks),
                          less);
  ASSERT_EQ(acc.size(), 11u);
  for (usize i = 1; i < acc.size(); ++i)
    EXPECT_LE(acc[i - 1].key, acc[i].key) << "i=" << i;
  // Stability: among equal keys, earlier runs come first (acc, c1, c2, c3).
  for (usize i = 1; i < acc.size(); ++i) {
    if (acc[i - 1].key == acc[i].key) {
      EXPECT_LE(acc[i - 1].origin, acc[i].origin) << "i=" << i;
    }
  }
}

TEST(KWayTailMerge, MatchesStdSortOnRandomRuns) {
  Xoshiro256 rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    const usize nruns = 1 + rng() % 6;
    std::vector<u64> acc;
    const usize n1 = rng() % 40;
    for (usize i = 0; i < n1; ++i) acc.push_back(rng() % 1000);
    std::sort(acc.begin(), acc.end());
    std::vector<std::vector<u64>> chunk_store(nruns);
    std::vector<u64> expected = acc;
    for (auto& c : chunk_store) {
      const usize len = rng() % 30;  // empty chunks included
      for (usize i = 0; i < len; ++i) c.push_back(rng() % 1000);
      std::sort(c.begin(), c.end());
      expected.insert(expected.end(), c.begin(), c.end());
    }
    std::sort(expected.begin(), expected.end());
    std::vector<std::span<const u64>> chunks;
    for (const auto& c : chunk_store)
      chunks.emplace_back(std::span<const u64>(c));
    acc.resize(expected.size());
    merge_tail_inplace_kway(
        std::span<u64>(acc), n1,
        std::span<const std::span<const u64>>(chunks),
        [](u64 a, u64 b) { return a < b; });
    EXPECT_EQ(acc, expected) << "trial " << trial;
  }
}

// ---------------------------------------------------------------------------
// Sort-level grid: k x P x path x kernel, vs the alltoallv reference

/// Sort the same shards through cfg and through the alltoallv reference;
/// expects byte-identical per-rank outputs and invariant compliance.
void check_kary_sort(int P, SortConfig cfg, workload::GenConfig gen,
                     usize n_rank) {
  std::vector<std::vector<u64>> shards(P);
  for (int r = 0; r < P; ++r)
    shards[r] = workload::generate_u64(gen, r, P, n_rank);

  auto run_with = [&](const SortConfig& c_cfg) {
    std::vector<std::vector<u64>> out(P);
    Team team({.nranks = P});
    team.run([&](Comm& c) {
      auto local = shards[c.rank()];
      sort(c, local, c_cfg);
      EXPECT_TRUE(is_globally_sorted(
          c, std::span<const u64>(local.data(), local.size()),
          [](u64 v) { return v; }));
      out[c.rank()] = std::move(local);
    });
    return out;
  };

  SortConfig ref = cfg;
  ref.exchange = ExchangeAlgorithm::Alltoallv;
  ref.overlap_merge = false;
  const auto expected = run_with(ref);
  const auto got = run_with(cfg);
  for (int r = 0; r < P; ++r) {
    if (cfg.epsilon == 0.0) {
      EXPECT_EQ(got[r].size(), shards[r].size());
    }
    EXPECT_EQ(got[r], expected[r])
        << "P=" << P << " k=" << cfg.exchange_k << " rank " << r;
  }
}

TEST(KAryExchange, GridOverKPathKernel) {
  for (int P : {4, 8, 16}) {
    for (int k : {2, 3, 4, 8, P}) {
      for (DataPath path : {DataPath::Pull, DataPath::Packed}) {
        SortConfig cfg;
        cfg.exchange = ExchangeAlgorithm::KAry;
        cfg.exchange_k = k;
        cfg.path = path;
        cfg.overlap_merge = true;
        cfg.kernel = (k % 2 == 0) ? LocalSortKernel::Radix
                                  : LocalSortKernel::Comparison;
        check_kary_sort(P, cfg, {}, 300);
      }
    }
  }
}

TEST(KAryExchange, NonPowerOfTwoP) {
  for (int P : {6, 12}) {
    for (int k : {2, 3, 4, P}) {
      SortConfig cfg;
      cfg.exchange = ExchangeAlgorithm::KAry;
      cfg.exchange_k = k;
      cfg.overlap_merge = true;
      check_kary_sort(P, cfg, {}, 350);
    }
  }
}

TEST(KAryExchange, PrimePUsesOneWideRound) {
  SortConfig cfg;
  cfg.exchange = ExchangeAlgorithm::KAry;
  cfg.exchange_k = 4;  // 7 has no divisor <= 4: single 7-wide round
  cfg.overlap_merge = true;
  check_kary_sort(7, cfg, {}, 400);
}

TEST(KAryExchange, WithoutOverlapFeedsSuperstepFourMerge) {
  for (MergeStrategy m : {MergeStrategy::Sort, MergeStrategy::BinaryTree,
                          MergeStrategy::Tournament}) {
    SortConfig cfg;
    cfg.exchange = ExchangeAlgorithm::KAry;
    cfg.exchange_k = 4;
    cfg.overlap_merge = false;
    cfg.merge = m;
    check_kary_sort(8, cfg, {}, 400);
  }
}

TEST(KAryExchange, EmptyInput) {
  SortConfig cfg;
  cfg.exchange = ExchangeAlgorithm::KAry;
  cfg.exchange_k = 4;
  cfg.overlap_merge = true;
  check_kary_sort(8, cfg, {}, 0);
}

TEST(KAryExchange, AllToSelfLayout) {
  // Each rank's keys already fall inside its own output range: no element
  // moves, every round's payloads are empty.
  const int P = 8;
  std::vector<std::vector<u64>> shards(P);
  for (int r = 0; r < P; ++r) {
    Xoshiro256 rng(hash_mix(77, r));
    shards[r].resize(500);
    for (auto& v : shards[r])
      v = (static_cast<u64>(r) << 32) | (rng() & 0xffffffffu);
  }
  for (int k : {2, 4, P}) {
    std::vector<std::vector<u64>> out(P);
    Team team({.nranks = P});
    team.run([&](Comm& c) {
      auto local = shards[c.rank()];
      SortConfig cfg;
      cfg.exchange = ExchangeAlgorithm::KAry;
      cfg.exchange_k = k;
      cfg.overlap_merge = true;
      const SortStats st = sort(c, local, cfg);
      EXPECT_EQ(st.elements_sent_off_rank, 0u);
      out[c.rank()] = std::move(local);
    });
    for (int r = 0; r < P; ++r) {
      auto expected = shards[r];
      std::sort(expected.begin(), expected.end());
      EXPECT_EQ(out[r], expected) << "k=" << k << " rank " << r;
    }
  }
}

TEST(KAryExchange, SkewedDuplicatesAndSparse) {
  workload::GenConfig zipf;
  zipf.dist = workload::Dist::Zipf;
  workload::GenConfig sparse;
  sparse.sparsity = 0.4;
  sparse.seed = 9;
  for (int k : {3, 8}) {
    SortConfig cfg;
    cfg.exchange = ExchangeAlgorithm::KAry;
    cfg.exchange_k = k;
    cfg.overlap_merge = true;
    check_kary_sort(8, cfg, zipf, 600);
    check_kary_sort(6, cfg, sparse, 300);
  }
}

// ---------------------------------------------------------------------------
// Pull vs Packed: identical bytes AND identical simulated time

TEST(KAryDataPath, PullAndPackedBitIdentical) {
  for (int P : {4, 8, 16}) {
    for (int k : {2, 4, P}) {
      for (bool overlap : {false, true}) {
        std::vector<std::vector<u64>> shards(P);
        for (int r = 0; r < P; ++r)
          shards[r] = workload::generate_u64({}, r, P, 400);
        auto run_path = [&](DataPath path) {
          std::vector<std::vector<u64>> out(P);
          std::vector<double> times(P);
          Team team({.nranks = P});
          team.run([&](Comm& c) {
            auto local = shards[c.rank()];
            SortConfig cfg;
            cfg.exchange = ExchangeAlgorithm::KAry;
            cfg.exchange_k = k;
            cfg.overlap_merge = overlap;
            cfg.path = path;
            sort(c, local, cfg);
            out[c.rank()] = std::move(local);
          });
          for (int r = 0; r < P; ++r) times[r] = team.rank_time(r);
          return std::make_pair(out, times);
        };
        const auto pull = run_path(DataPath::Pull);
        const auto packed = run_path(DataPath::Packed);
        for (int r = 0; r < P; ++r) {
          EXPECT_EQ(pull.first[r], packed.first[r])
              << "P=" << P << " k=" << k << " overlap=" << overlap;
          EXPECT_EQ(pull.second[r], packed.second[r])
              << "P=" << P << " k=" << k << " overlap=" << overlap;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// hds::check: clean k-ary run + elide mutation

TEST(KAryCheck, RunsViolationFreeAcrossK) {
  for (int P : {6, 8, 16}) {
    for (int k : {2, 4, P}) {
      runtime::TeamConfig tcfg;
      tcfg.nranks = P;
      tcfg.check.enabled = true;
      std::vector<std::vector<u64>> shards(P);
      for (int r = 0; r < P; ++r)
        shards[r] = workload::generate_u64({}, r, P, 300);
      Team team(tcfg);
      team.run([&](Comm& c) {
        auto local = shards[c.rank()];
        SortConfig cfg;
        cfg.exchange = ExchangeAlgorithm::KAry;
        cfg.exchange_k = k;
        cfg.overlap_merge = true;
        sort(c, local, cfg);
      });
      ASSERT_NE(team.check_report(), nullptr);
      EXPECT_TRUE(team.check_report()->clean())
          << "P=" << P << " k=" << k << "\n"
          << team.check_report()->summary();
      EXPECT_GT(team.check_report()->collectives_checked, 0u);
    }
  }
}

TEST(KAryCheck, ElidedAlltoallJoinIsNoticed) {
  // Mutation test: the k-ary exchange itself is pure P2P, but its send
  // counts come from compute_send_counts' alltoall of the boundary cuts.
  // Logically deleting that collective's happens-before joins must be
  // flagged — proving the checker covers the k-ary schedule's inputs.
  runtime::TeamConfig tcfg;
  tcfg.nranks = 8;
  tcfg.check.enabled = true;
  tcfg.check.elide_op = obs::OpKind::Alltoall;
  tcfg.check.elide_index = 0;
  std::vector<std::vector<u64>> shards(8);
  for (int r = 0; r < 8; ++r)
    shards[r] = workload::generate_u64({}, r, 8, 400);
  Team team(tcfg);
  team.run([&](Comm& c) {
    auto local = shards[c.rank()];
    SortConfig cfg;
    cfg.exchange = ExchangeAlgorithm::KAry;
    cfg.exchange_k = 4;
    cfg.overlap_merge = true;
    sort(c, local, cfg);
  });
  ASSERT_NE(team.check_report(), nullptr);
  EXPECT_GT(team.check_report()->joins_elided, 0u);
  EXPECT_FALSE(team.check_report()->clean());
}

// ---------------------------------------------------------------------------
// Crash during a k-ary exchange: both checkpoint recovery modes

TEST(KAryRecovery, CrashDuringKAryExchangeRecovers) {
  constexpr int P = 8;
  constexpr usize kPerRank = 256;
  std::vector<std::vector<u64>> original(P);
  for (int r = 0; r < P; ++r) {
    Xoshiro256 rng(hash_mix(123, r));
    original[r].resize(kPerRank);
    for (auto& v : original[r]) v = rng();
  }
  std::vector<u64> expected;
  for (const auto& p : original)
    expected.insert(expected.end(), p.begin(), p.end());
  std::sort(expected.begin(), expected.end());

  for (RecoveryMode mode :
       {RecoveryMode::ResumeCheckpoint, RecoveryMode::ShrinkSurvivors}) {
    auto plan = std::make_shared<runtime::FaultPlan>();
    // A few ops into the Exchange phase: mid k-ary rounds, after local
    // sort and splitters are checkpointed.
    plan->crash_rank_at_phase_op(1, net::Phase::Exchange, 2);
    runtime::TeamConfig tcfg;
    tcfg.nranks = P;
    tcfg.fault = plan;
    tcfg.watchdog_timeout_s = 10.0;
    Team team(tcfg);
    auto parts = original;
    SortConfig cfg;
    cfg.exchange = ExchangeAlgorithm::KAry;
    cfg.exchange_k = 4;
    cfg.overlap_merge = true;
    ResilienceConfig rcfg;
    rcfg.mode = mode;
    ResilienceReport rep;
    (void)sort_resilient(team, parts, cfg, rcfg, &rep);

    EXPECT_GE(rep.failures, 1u) << recovery_mode_name(mode);
    std::vector<u64> flat;
    for (const auto& p : parts) flat.insert(flat.end(), p.begin(), p.end());
    EXPECT_EQ(flat, expected) << recovery_mode_name(mode);
    if (mode == RecoveryMode::ShrinkSurvivors) {
      EXPECT_GE(rep.recoveries, 1u);
      EXPECT_TRUE(parts[1].empty());  // the dead rank holds no output
    }
  }
}

// ---------------------------------------------------------------------------
// Overlap attribution: merge work is charged, phases reconcile

TEST(KAryOverlap, ChargesBothPhasesAndBeatsFullMergeCharge) {
  const int P = 16;
  std::vector<std::vector<u64>> shards(P);
  for (int r = 0; r < P; ++r)
    shards[r] = workload::generate_u64({}, r, P, 4096);
  auto run_with = [&](bool overlap) {
    Team team({.nranks = P});
    team.run([&](Comm& c) {
      auto local = shards[c.rank()];
      SortConfig cfg;
      cfg.exchange = ExchangeAlgorithm::KAry;
      cfg.exchange_k = 4;
      cfg.overlap_merge = overlap;
      cfg.merge = MergeStrategy::Tournament;
      sort(c, local, cfg);
    });
    return std::make_pair(team.stats().phase_seconds(net::Phase::Exchange) +
                              team.stats().phase_seconds(net::Phase::Merge),
                          team.stats().phase_seconds(net::Phase::Merge));
  };
  const auto with = run_with(true);
  const auto without = run_with(false);
  EXPECT_GT(with.second, 0.0);  // overlapped merges still attributed
  // Hiding the early rounds' merges under the communication window must
  // shrink combined exchange+merge time vs merging after the exchange.
  EXPECT_LT(with.first, without.first);
}

}  // namespace
}  // namespace hds::core
