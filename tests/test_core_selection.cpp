// Tests for key traits, weighted median, and distributed selection (Alg. 1).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "core/histogram_sort.h"
#include "core/key_traits.h"
#include "core/selection.h"
#include "runtime/team.h"
#include "workload/distributions.h"

namespace hds::core {
namespace {

using runtime::Comm;
using runtime::Team;
using runtime::TeamConfig;

// ---------------------------------------------------------------------------
// KeyTraits: the bijection must be monotone and invertible for every type.
// ---------------------------------------------------------------------------

template <class T>
void check_roundtrip_and_order(const std::vector<T>& values) {
  using Tr = KeyTraits<T>;
  for (const T v : values) {
    EXPECT_EQ(Tr::from_uint(Tr::to_uint(v)), v);
  }
  for (usize i = 0; i < values.size(); ++i)
    for (usize j = 0; j < values.size(); ++j) {
      EXPECT_EQ(values[i] < values[j],
                Tr::to_uint(values[i]) < Tr::to_uint(values[j]))
          << "order broken between " << values[i] << " and " << values[j];
    }
}

TEST(KeyTraitsTest, UnsignedIsIdentity) {
  EXPECT_EQ(KeyTraits<u64>::to_uint(42u), 42u);
  EXPECT_EQ(KeyTraits<u32>::to_uint(7u), 7u);
  check_roundtrip_and_order<u64>({0, 1, 5, ~u64{0}, 1ULL << 63});
}

TEST(KeyTraitsTest, SignedOrderPreserved) {
  check_roundtrip_and_order<i64>({std::numeric_limits<i64>::min(), -5, -1, 0,
                                  1, 5, std::numeric_limits<i64>::max()});
  check_roundtrip_and_order<i32>({-100, -1, 0, 1, 100});
}

TEST(KeyTraitsTest, FloatOrderPreserved) {
  check_roundtrip_and_order<double>(
      {-std::numeric_limits<double>::infinity(), -1e300, -2.5, -1e-300, -0.0,
       1e-300, 1.0, 2.5, 1e300, std::numeric_limits<double>::infinity()});
  check_roundtrip_and_order<float>({-1e30f, -1.0f, 0.0f, 1.0f, 1e30f});
}

TEST(KeyTraitsTest, FloatMidpointStaysFinite) {
  using Tr = KeyTraits<double>;
  const auto lo = Tr::to_uint(-1e6);
  const auto hi = Tr::to_uint(1e6);
  const double mid = Tr::from_uint(key_midpoint(lo, hi));
  EXPECT_FALSE(std::isnan(mid));
  EXPECT_GE(mid, -1e6);
  EXPECT_LE(mid, 1e6);
}

TEST(KeyTraitsTest, MidpointNeverReturnsHi) {
  for (u64 lo = 0; lo < 5; ++lo)
    for (u64 hi = lo + 1; hi < 8; ++hi) EXPECT_LT(key_midpoint(lo, hi), hi);
  EXPECT_EQ(key_midpoint<u64>(3, 3), 3u);
}

// ---------------------------------------------------------------------------
// Weighted median (Def. 2).
// ---------------------------------------------------------------------------

TEST(WeightedMedian, UniformWeightsGiveMedian) {
  std::vector<std::pair<double, double>> s = {
      {5, 0.2}, {1, 0.2}, {3, 0.2}, {2, 0.2}, {4, 0.2}};
  EXPECT_DOUBLE_EQ(weighted_median(std::move(s)), 3.0);
}

TEST(WeightedMedian, HeavyElementWins) {
  std::vector<std::pair<double, double>> s = {
      {1, 0.1}, {2, 0.1}, {9, 0.8}};
  EXPECT_DOUBLE_EQ(weighted_median(std::move(s)), 9.0);
}

TEST(WeightedMedian, IgnoresZeroWeights) {
  std::vector<std::pair<double, double>> s = {
      {100, 0.0}, {1, 0.5}, {200, 0.0}, {2, 0.5}};
  const double m = weighted_median(std::move(s));
  EXPECT_TRUE(m == 1.0 || m == 2.0);
}

TEST(WeightedMedian, SatisfiesDefinitionOnRandomInputs) {
  Xoshiro256 rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    const usize n = 1 + rng() % 20;
    std::vector<std::pair<double, double>> s;
    double total = 0.0;
    for (usize i = 0; i < n; ++i) {
      const double w = rng.uniform01() + 0.01;
      s.emplace_back(std::floor(rng.uniform01() * 10), w);
      total += w;
    }
    auto copy = s;
    const double m = weighted_median(std::move(copy));
    double below = 0.0, above = 0.0;
    for (const auto& [x, w] : s) {
      if (x < m) below += w;
      if (x > m) above += w;
    }
    EXPECT_LT(below, total / 2.0 + 1e-12);
    EXPECT_LE(above, total / 2.0 + 1e-12);
  }
}

TEST(WeightedMedian, ThrowsOnAllZeroWeights) {
  std::vector<std::pair<double, double>> s = {{1, 0.0}, {2, 0.0}};
  EXPECT_THROW(weighted_median(std::move(s)), invariant_error);
}

// ---------------------------------------------------------------------------
// Distributed selection (dselect / nth_element).
// ---------------------------------------------------------------------------

/// Run dselect on a distributed copy of `shards` and compare against the
/// sequential oracle for rank k.
template <class T>
void check_dselect(int P, std::vector<std::vector<T>> shards, usize k,
                   usize gather_threshold = 64) {
  std::vector<T> all;
  for (const auto& s : shards)
    all.insert(all.end(), s.begin(), s.end());
  ASSERT_LT(k, all.size());
  std::vector<T> sorted = all;
  std::sort(sorted.begin(), sorted.end());
  const T expected = sorted[k];

  Team team({.nranks = P});
  T got{};
  team.run([&](Comm& c) {
    auto local = shards[c.rank()];
    const T v = dselect(c, std::span<T>(local), k, nullptr, gather_threshold);
    if (c.rank() == 0) got = v;
  });
  EXPECT_EQ(got, expected) << "k=" << k << " P=" << P;
}

TEST(DSelect, SmallExactValues) {
  check_dselect<u64>(2, {{5, 1, 9}, {3, 7}}, 0);
  check_dselect<u64>(2, {{5, 1, 9}, {3, 7}}, 2);
  check_dselect<u64>(2, {{5, 1, 9}, {3, 7}}, 4);
}

TEST(DSelect, MedianAcrossManyRanks) {
  Xoshiro256 rng(21);
  std::vector<std::vector<u64>> shards(8);
  for (auto& s : shards)
    for (int i = 0; i < 500; ++i) s.push_back(rng() % 10000);
  check_dselect<u64>(8, shards, 2000, /*gather_threshold=*/128);
}

TEST(DSelect, AllRanksOfTinySet) {
  std::vector<std::vector<int>> shards = {{4, 2}, {8}, {1, 6, 3}};
  for (usize k = 0; k < 6; ++k) check_dselect<int>(3, shards, k, 2);
}

TEST(DSelect, WithEmptyPartitions) {
  std::vector<std::vector<u64>> shards = {{}, {10, 20, 30}, {}, {5, 25}};
  for (usize k = 0; k < 5; ++k) check_dselect<u64>(4, shards, k, 2);
}

TEST(DSelect, ManyDuplicates) {
  std::vector<std::vector<u64>> shards(4);
  for (auto& s : shards) s.assign(100, 7);
  shards[0][0] = 1;
  shards[3][99] = 9;
  check_dselect<u64>(4, shards, 0, 16);
  check_dselect<u64>(4, shards, 200, 16);
  check_dselect<u64>(4, shards, 399, 16);
}

TEST(DSelect, NegativeAndFloatKeys) {
  std::vector<std::vector<double>> shards = {
      {-5.5, 2.25, 0.0}, {-100.0, 3.5}, {1.5, -0.25}};
  for (usize k = 0; k < 7; ++k) check_dselect<double>(3, shards, k, 2);
}

TEST(DSelect, OutOfRangeKThrows) {
  Team team({.nranks = 2});
  EXPECT_THROW(team.run([&](Comm& c) {
                 std::vector<u64> local{1, 2};
                 dselect(c, std::span<u64>(local), 100);
               }),
               invariant_error);
}

TEST(DSelect, StatsReportIterations) {
  Xoshiro256 rng(31);
  std::vector<std::vector<u64>> shards(4);
  for (auto& s : shards)
    for (int i = 0; i < 4000; ++i) s.push_back(rng());
  Team team({.nranks = 4});
  SelectStats st;
  team.run([&](Comm& c) {
    auto local = shards[c.rank()];
    SelectStats mine;
    (void)dselect(c, std::span<u64>(local), 8000, &mine, 256);
    if (c.rank() == 0) st = mine;
  });
  EXPECT_GT(st.iterations, 0u);
  // Weighted median discards >= 1/4 per round: bounded by log_{4/3}(N).
  EXPECT_LE(st.iterations, 40u);
}

TEST(NthElement, MatchesOracleViaPublicApi) {
  Xoshiro256 rng(41);
  std::vector<std::vector<i64>> shards(5);
  std::vector<i64> all;
  for (auto& s : shards)
    for (int i = 0; i < 200; ++i) {
      s.push_back(static_cast<i64>(rng() % 1000) - 500);
      all.push_back(s.back());
    }
  std::sort(all.begin(), all.end());
  Team team({.nranks = 5});
  for (usize k : {usize{0}, usize{499}, usize{999}}) {
    i64 got = 0;
    team.run([&](Comm& c) {
      auto local = shards[c.rank()];
      const i64 v = nth_element(c, std::span<i64>(local), k);
      if (c.rank() == 0) got = v;
    });
    EXPECT_EQ(got, all[k]) << "k=" << k;
  }
}

}  // namespace
}  // namespace hds::core
