// Equal-key stress coverage (satellite of the model-checker PR): the
// splitter bisection's worst case is a key space with no resolution at all
// — every key identical, or a two-symbol alphabet whose histogram cannot
// separate ranks. The sort must still terminate with the epsilon = 0
// perfect-partitioning contract (every rank keeps its element count) on
// every exchange algorithm, because duplicate handling rides the exchange
// schedule's tie-breaking (world-rank order), not the key values.
#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <vector>

#include "core/histogram_sort.h"
#include "runtime/team.h"
#include "workload/distributions.h"

namespace hds::core {
namespace {

using runtime::Comm;
using runtime::Team;

/// Sort `gen`-distributed keys at P = 16 under `cfg` and verify the full
/// output contract: globally sorted, multiset-preserving, perfectly
/// partitioned (epsilon = 0).
void check_equal_key_sort(const SortConfig& cfg, workload::GenConfig gen) {
  constexpr int P = 16;
  constexpr usize kPerRank = 256;
  std::vector<std::vector<u64>> shards(P);
  std::vector<u64> all;
  for (int r = 0; r < P; ++r) {
    shards[r] = workload::generate_u64(gen, r, P, kPerRank);
    all.insert(all.end(), shards[r].begin(), shards[r].end());
  }
  std::sort(all.begin(), all.end());

  std::vector<std::vector<u64>> out(P);
  Team team({.nranks = P});
  team.run([&](Comm& c) {
    auto local = shards[c.rank()];
    sort(c, local, cfg);
    EXPECT_TRUE(is_globally_sorted(
        c, std::span<const u64>(local.data(), local.size()),
        [](u64 v) { return v; }));
    out[c.rank()] = std::move(local);
  });

  std::vector<u64> merged;
  for (int r = 0; r < P; ++r) {
    EXPECT_EQ(out[r].size(), kPerRank) << "rank " << r;
    merged.insert(merged.end(), out[r].begin(), out[r].end());
  }
  std::sort(merged.begin(), merged.end());
  EXPECT_EQ(merged, all);
}

struct ExchangeCase {
  const char* name;
  ExchangeAlgorithm algo;
  int k;
};

const ExchangeCase kExchanges[] = {
    {"alltoallv", ExchangeAlgorithm::Alltoallv, 0},
    {"hypercube", ExchangeAlgorithm::Hypercube, 0},
    {"onefactor", ExchangeAlgorithm::OneFactor, 0},
    {"kary-k2", ExchangeAlgorithm::KAry, 2},
    {"kary-k4", ExchangeAlgorithm::KAry, 4},
    {"kary-k16", ExchangeAlgorithm::KAry, 16},
};

TEST(EqualKeys, AllEqualAcrossExchangeAlgorithms) {
  workload::GenConfig gen;
  gen.dist = workload::Dist::AllEqual;
  for (const ExchangeCase& ex : kExchanges) {
    SCOPED_TRACE(ex.name);
    SortConfig cfg;
    cfg.exchange = ex.algo;
    if (ex.k > 0) cfg.exchange_k = ex.k;
    check_equal_key_sort(cfg, gen);
  }
}

TEST(EqualKeys, TwoDistinctValuesAcrossExchangeAlgorithms) {
  workload::GenConfig gen;
  gen.dist = workload::Dist::FewDistinct;
  gen.alphabet = 2;
  for (const ExchangeCase& ex : kExchanges) {
    SCOPED_TRACE(ex.name);
    SortConfig cfg;
    cfg.exchange = ex.algo;
    if (ex.k > 0) cfg.exchange_k = ex.k;
    check_equal_key_sort(cfg, gen);
  }
}

/// Per-rank sorted output of core::sort under `cfg` — for cross-config
/// identity checks.
std::vector<std::vector<u64>> sorted_output(const SortConfig& cfg,
                                            workload::GenConfig gen) {
  constexpr int P = 16;
  constexpr usize kPerRank = 256;
  std::vector<std::vector<u64>> shards(P);
  for (int r = 0; r < P; ++r)
    shards[r] = workload::generate_u64(gen, r, P, kPerRank);
  std::vector<std::vector<u64>> out(P);
  Team team({.nranks = P});
  team.run([&](Comm& c) {
    auto local = shards[c.rank()];
    sort(c, local, cfg);
    out[c.rank()] = std::move(local);
  });
  return out;
}

TEST(EqualKeys, HistogramModesProduceByteIdenticalOutput) {
  // At eps = 0 the splitter per boundary is unique (the key whose tie class
  // contains the target rank), so the sampled and hybrid histogram modes
  // must produce exactly the per-rank output of the dense mode — including
  // on tie-heavy inputs where the sampled rounds stall and fall back.
  struct DistCase {
    const char* name;
    workload::Dist dist;
    u64 alphabet;
  };
  const DistCase dists[] = {
      {"allequal", workload::Dist::AllEqual, 16},
      {"fewdistinct-2", workload::Dist::FewDistinct, 2},
      {"fewdistinct-16", workload::Dist::FewDistinct, 16},
      {"zipf", workload::Dist::Zipf, 16},
  };
  for (const DistCase& d : dists) {
    SCOPED_TRACE(d.name);
    workload::GenConfig gen;
    gen.dist = d.dist;
    gen.alphabet = d.alphabet;
    SortConfig dense;  // HistogramMode::Dense is the default
    const auto base = sorted_output(dense, gen);
    for (HistogramMode m : {HistogramMode::Sampled, HistogramMode::Hybrid}) {
      SCOPED_TRACE(m == HistogramMode::Sampled ? "sampled" : "hybrid");
      SortConfig cfg;
      cfg.histogram = m;
      check_equal_key_sort(cfg, gen);  // full output contract
      EXPECT_EQ(sorted_output(cfg, gen), base);
    }
  }
}

TEST(EqualKeys, AllEqualWithOverlapMergeAndPackedPath) {
  workload::GenConfig gen;
  gen.dist = workload::Dist::AllEqual;
  SortConfig cfg;
  cfg.exchange = ExchangeAlgorithm::KAry;
  cfg.exchange_k = 4;
  cfg.overlap_merge = true;
  check_equal_key_sort(cfg, gen);
  cfg.path = DataPath::Packed;
  cfg.overlap_merge = false;
  cfg.exchange = ExchangeAlgorithm::Alltoallv;
  check_equal_key_sort(cfg, gen);
}

}  // namespace
}  // namespace hds::core
