// Tests for hds::check — the PGAS happens-before race checker: vector-clock
// algebra, the logical synchronization shapes (full-join / star / prefix /
// pairwise), shadow-memory conflict detection on GlobalVector, clean-run
// assertions over the histogram sort and all five baselines, the
// barrier/fence-elision mutation hooks (detector teeth), and the
// bit-identical-time invariant of disabled checking.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <vector>

#include "baselines/bitonic_sort.h"
#include "baselines/hss_sort.h"
#include "baselines/hyksort.h"
#include "baselines/parallel_merge_sort.h"
#include "baselines/sample_sort.h"
#include "check/race_detector.h"
#include "check/vector_clock.h"
#include "core/histogram_sort.h"
#include "runtime/global_vector.h"
#include "runtime/team.h"
#include "workload/distributions.h"

namespace hds::check {
namespace {

using runtime::Comm;
using runtime::GlobalVector;
using runtime::Team;
using runtime::TeamConfig;

[[maybe_unused]] auto identity = [](const auto& v) { return v; };

// --- vector-clock algebra ---------------------------------------------------

TEST(VectorClockTest, TickAdvancesOwnComponentOnly) {
  VectorClock vc(3);
  EXPECT_EQ(vc[0], 0u);
  EXPECT_EQ(vc.tick(1), 1u);
  EXPECT_EQ(vc.tick(1), 2u);
  EXPECT_EQ(vc[0], 0u);
  EXPECT_EQ(vc[1], 2u);
  EXPECT_EQ(vc[2], 0u);
}

TEST(VectorClockTest, JoinIsComponentwiseMax) {
  VectorClock a(3), b(3);
  a.tick(0);
  a.tick(0);
  b.tick(1);
  b.tick(2);
  b.tick(2);
  a.join(b);
  EXPECT_EQ(a[0], 2u);
  EXPECT_EQ(a[1], 1u);
  EXPECT_EQ(a[2], 2u);
  // Join is idempotent and monotone.
  VectorClock before = a;
  a.join(b);
  EXPECT_TRUE(before.leq(a) && a.leq(before));
}

TEST(VectorClockTest, OrderedAfterFollowsStamps) {
  VectorClock writer(2), reader(2);
  const u64 stamp = writer.tick(0);
  EXPECT_FALSE(reader.ordered_after(0, stamp));
  reader.join(writer);  // synchronization edge
  EXPECT_TRUE(reader.ordered_after(0, stamp));
  // A later event of the writer is again unordered.
  const u64 stamp2 = writer.tick(0);
  EXPECT_FALSE(reader.ordered_after(0, stamp2));
}

TEST(VectorClockTest, LeqAndConcurrency) {
  VectorClock a(2), b(2);
  EXPECT_TRUE(a.leq(b) && b.leq(a));  // equal clocks
  a.tick(0);
  b.tick(1);
  EXPECT_TRUE(a.concurrent_with(b));
  a.join(b);
  EXPECT_TRUE(b.leq(a));
  EXPECT_FALSE(a.leq(b));
  EXPECT_FALSE(a.concurrent_with(b));
}

// --- shape semantics, driven directly against the detector ------------------

struct Harness {
  explicit Harness(int P) : members(P) {
    for (int r = 0; r < P; ++r) {
      members[r] = r;
      tracers.push_back(std::make_unique<obs::RankTracer>(16));
    }
    rd = std::make_unique<RaceDetector>(CheckConfig{.enabled = true});
    rd->begin_run(P, tracers);
  }
  void collective(obs::OpKind op, int root = -1) {
    rd->on_collective(this, op, members, root);
  }
  std::vector<rank_t> members;
  std::vector<std::unique_ptr<obs::RankTracer>> tracers;
  std::unique_ptr<RaceDetector> rd;
  int obj = 0;  // shadow object identity
};

TEST(ShapeTest, FullJoinOrdersEveryPair) {
  Harness h(4);
  h.rd->on_access(1, &h.obj, 0, 0, 10, /*is_write=*/true, "w");
  h.collective(obs::OpKind::Allgather);
  h.rd->on_access(3, &h.obj, 0, 5, 6, /*is_write=*/false, "r");
  EXPECT_TRUE(h.rd->report().clean()) << h.rd->report().summary();
}

TEST(ShapeTest, BroadcastLeavesNonRootPairsUnordered) {
  Harness h(4);
  h.rd->on_access(1, &h.obj, 0, 0, 10, /*is_write=*/true, "w");
  h.collective(obs::OpKind::Broadcast, /*root=*/0);
  h.rd->on_access(3, &h.obj, 0, 5, 6, /*is_write=*/false, "r");
  ASSERT_EQ(h.rd->report().violations_total, 1u);
  const Violation& v = h.rd->report().violations[0];
  EXPECT_EQ(v.kind, Violation::Kind::Shadow);
  EXPECT_EQ(v.prior.rank, 1);
  EXPECT_EQ(v.current.rank, 3);
}

TEST(ShapeTest, BroadcastOrdersRootAgainstReceivers) {
  Harness h(4);
  h.rd->on_access(0, &h.obj, 0, 0, 10, /*is_write=*/true, "w");
  h.collective(obs::OpKind::Broadcast, /*root=*/0);
  h.rd->on_access(2, &h.obj, 0, 5, 6, /*is_write=*/false, "r");
  EXPECT_TRUE(h.rd->report().clean()) << h.rd->report().summary();
}

TEST(ShapeTest, GathervLeavesNonRootPairsUnordered) {
  Harness h(4);
  h.rd->on_access(2, &h.obj, 0, 0, 10, /*is_write=*/true, "w");
  h.collective(obs::OpKind::Gatherv, /*root=*/0);
  h.rd->on_access(1, &h.obj, 0, 0, 1, /*is_write=*/false, "r");
  EXPECT_EQ(h.rd->report().violations_total, 1u);
}

TEST(ShapeTest, ScanOrdersPrefixOnly) {
  Harness h(4);
  // Lower rank's write is visible to higher ranks after a scan ...
  h.rd->on_access(1, &h.obj, 0, 0, 10, /*is_write=*/true, "w");
  h.collective(obs::OpKind::Scan);
  h.rd->on_access(3, &h.obj, 0, 0, 1, /*is_write=*/false, "r");
  EXPECT_TRUE(h.rd->report().clean()) << h.rd->report().summary();
  // ... but a higher rank's write is not ordered for a lower rank.
  h.rd->on_access(3, &h.obj, 1, 0, 10, /*is_write=*/true, "w");
  h.collective(obs::OpKind::Scan);
  h.rd->on_access(1, &h.obj, 1, 0, 1, /*is_write=*/false, "r");
  EXPECT_EQ(h.rd->report().violations_total, 1u);
}

TEST(ShapeTest, DisjointRangesNeverConflict) {
  Harness h(2);
  h.rd->on_access(0, &h.obj, 0, 0, 5, /*is_write=*/true, "w");
  h.rd->on_access(1, &h.obj, 0, 5, 10, /*is_write=*/true, "w");
  h.rd->on_access(1, &h.obj, 1, 0, 5, /*is_write=*/true, "other shard");
  EXPECT_TRUE(h.rd->report().clean()) << h.rd->report().summary();
}

TEST(ShapeTest, ReadReadPairsNeverConflict) {
  Harness h(2);
  h.rd->on_access(0, &h.obj, 0, 0, 5, /*is_write=*/false, "r");
  h.rd->on_access(1, &h.obj, 0, 0, 5, /*is_write=*/false, "r");
  EXPECT_TRUE(h.rd->report().clean()) << h.rd->report().summary();
}

TEST(ShapeTest, ElisionSuppressesJoinsDeterministically) {
  CheckConfig cfg{.enabled = true};
  cfg.elide_op = obs::OpKind::Allgather;
  cfg.elide_index = 1;  // second allgather
  Harness h(4);
  h.rd = std::make_unique<RaceDetector>(cfg);
  h.rd->begin_run(4, h.tracers);
  h.collective(obs::OpKind::Allgather);  // #0: joins applied
  EXPECT_TRUE(h.rd->report().clean());
  h.collective(obs::OpKind::Allgather);  // #1: elided -> consumption races
  EXPECT_FALSE(h.rd->report().clean());
  EXPECT_GT(h.rd->report().joins_elided, 0u);
  EXPECT_EQ(h.rd->report().violations[0].kind,
            Violation::Kind::CollectiveData);
}

// --- checked runs over the real runtime -------------------------------------

std::vector<std::vector<u64>> make_shards(int P, usize n) {
  std::vector<std::vector<u64>> shards(P);
  for (int r = 0; r < P; ++r)
    shards[r] = workload::generate_u64({}, r, P, n);
  return shards;
}

/// Run `body` on a checked team and return the violation report.
CheckReport run_checked(int P, const std::function<void(Comm&)>& body,
                        CheckConfig cc = {.enabled = true}) {
  TeamConfig tc{.nranks = P};
  tc.check = cc;
  tc.check.enabled = true;
  Team team(tc);
  team.run(body);
  const CheckReport* rep = team.check_report();
  EXPECT_NE(rep, nullptr);
  return *rep;
}

TEST(CheckedRunTest, HistogramSortAndAllBaselinesAreViolationFree) {
  for (int P : {4, 8, 16}) {
    auto shards = make_shards(P, 400);
    struct Algo {
      const char* name;
      std::function<void(Comm&, std::vector<u64>&)> run;
    };
    const std::vector<Algo> algos = {
        {"histogram_sort",
         [](Comm& c, std::vector<u64>& v) { core::sort(c, v); }},
        {"sample_sort",
         [](Comm& c, std::vector<u64>& v) { baselines::sample_sort(c, v); }},
        {"hss_sort",
         [](Comm& c, std::vector<u64>& v) { baselines::hss_sort(c, v); }},
        {"hyksort",
         [](Comm& c, std::vector<u64>& v) { baselines::hyksort(c, v); }},
        {"bitonic_sort",
         [](Comm& c, std::vector<u64>& v) { baselines::bitonic_sort(c, v); }},
        {"parallel_merge_sort",
         [](Comm& c, std::vector<u64>& v) {
           baselines::parallel_merge_sort(c, v);
         }},
    };
    for (const Algo& algo : algos) {
      const CheckReport rep = run_checked(P, [&](Comm& c) {
        auto local = shards[c.rank()];
        algo.run(c, local);
        EXPECT_TRUE(core::is_globally_sorted(
            c, std::span<const u64>(local.data(), local.size()), identity));
      });
      EXPECT_TRUE(rep.clean())
          << algo.name << " at P=" << P << ": " << rep.summary();
      EXPECT_GT(rep.collectives_checked, 0u) << algo.name << " P=" << P;
      EXPECT_GT(rep.joins_applied, 0u) << algo.name << " P=" << P;
    }
  }
}

TEST(CheckedRunTest, ExchangeKernelGridIsViolationFree) {
  const int P = 8;
  auto shards = make_shards(P, 300);
  for (auto ex : {core::ExchangeAlgorithm::Alltoallv,
                  core::ExchangeAlgorithm::OneFactor,
                  core::ExchangeAlgorithm::Hypercube,
                  core::ExchangeAlgorithm::Hierarchical}) {
    for (auto kern :
         {core::LocalSortKernel::Comparison, core::LocalSortKernel::Radix}) {
      core::SortConfig scfg;
      scfg.exchange = ex;
      scfg.kernel = kern;
      const CheckReport rep = run_checked(P, [&](Comm& c) {
        auto local = shards[c.rank()];
        core::sort(c, local, scfg);
      });
      EXPECT_TRUE(rep.clean()) << rep.summary();
      EXPECT_GT(rep.collectives_checked, 0u);
    }
  }
}

TEST(CheckedRunTest, GlobalVectorPutBarrierGetIsClean) {
  const int P = 4;
  GlobalVector<u64> gv(P);
  for (int r = 0; r < P; ++r) gv.shard(r).assign(8, 0);
  const CheckReport rep = run_checked(P, [&](Comm& c) {
    gv.rebuild_index(c);
    // Everyone writes one element of the next rank's shard ...
    const usize next = (static_cast<usize>(c.rank()) + 1) % P;
    gv.put(c, next * 8, static_cast<u64>(c.rank()));
    c.barrier();  // the fence separating the put and get epochs
    // ... then reads the element its neighbour wrote into its own shard.
    const u64 got = gv.get(c, static_cast<usize>(c.rank()) * 8);
    EXPECT_EQ(got, static_cast<u64>((c.rank() + P - 1) % P));
  });
  EXPECT_TRUE(rep.clean()) << rep.summary();
  EXPECT_GT(rep.shadow_accesses, 0u);
}

TEST(CheckedRunTest, PairwiseMessageEdgeOrdersOneSidedRead) {
  const int P = 2;
  GlobalVector<u64> gv(P);
  for (int r = 0; r < P; ++r) gv.shard(r).assign(4, 7);
  const CheckReport rep = run_checked(P, [&](Comm& c) {
    gv.rebuild_index(c);
    if (c.rank() == 0) {
      gv.put(c, 1, 42);  // writes into own shard
      const u64 token = 1;
      c.send(1, /*tag=*/9, std::span<const u64>(&token, 1));
    } else {
      (void)c.recv<u64>(0, 9);  // pairwise edge orders the read below
      EXPECT_EQ(gv.get(c, 1), 42u);
    }
  });
  EXPECT_TRUE(rep.clean()) << rep.summary();
  EXPECT_GT(rep.p2p_edges, 0u);
}

TEST(CheckedRunTest, UnorderedRemoteReadIsFlagged) {
  // The quintessential PGAS bug TSan cannot see: rank 0 puts, rank 2 gets,
  // and the only intervening synchronization is a broadcast rooted at rank
  // 1 — which physically orders the two (so the run is TSan-clean and
  // deterministic) but leaves non-root pairs logically concurrent. Over
  // real one-sided communication the get could observe either value.
  const int P = 4;
  GlobalVector<u64> gv(P);
  for (int r = 0; r < P; ++r) gv.shard(r).assign(4, 0);
  const CheckReport rep = run_checked(P, [&](Comm& c) {
    gv.rebuild_index(c);
    if (c.rank() == 0) gv.put(c, 3 * 4 + 1, 42);  // element 1 of shard 3
    u64 token = 7;
    c.broadcast(&token, 1, /*root=*/1);  // not a fence between ranks 0 and 2
    if (c.rank() == 2) (void)gv.get(c, 3 * 4 + 1);
  });
  ASSERT_FALSE(rep.clean());
  const Violation& v = rep.violations[0];
  EXPECT_EQ(v.kind, Violation::Kind::Shadow);
  std::vector<rank_t> ranks{v.prior.rank, v.current.rank};
  std::sort(ranks.begin(), ranks.end());
  EXPECT_EQ(ranks, (std::vector<rank_t>{0, 2}));
  EXPECT_TRUE(v.prior.is_write || v.current.is_write);
  EXPECT_NE(v.location.find("shard 3"), std::string::npos);
}

// --- mutation tests: the detector must have teeth ---------------------------

TEST(MutationTest, ElidedFenceBarrierBetweenPutAndGetIsFlagged) {
  const int P = 4;
  GlobalVector<u64> gv(P);
  for (int r = 0; r < P; ++r) gv.shard(r).assign(8, 0);
  CheckConfig cc{.enabled = true};
  cc.elide_op = obs::OpKind::Barrier;
  cc.elide_index = 1;  // #0 is rebuild_index's trailing barrier
  const CheckReport rep = run_checked(
      P,
      [&](Comm& c) {
        gv.rebuild_index(c);
        const usize next = (static_cast<usize>(c.rank()) + 1) % P;
        gv.put(c, next * 8, static_cast<u64>(c.rank()));
        c.barrier();  // the elided fence
        (void)gv.get(c, static_cast<usize>(c.rank()) * 8);
      },
      cc);
  ASSERT_FALSE(rep.clean());
  EXPECT_GT(rep.joins_elided, 0u);
  // The report names both ranks with their op context from the crash ring.
  const Violation& v = rep.violations[0];
  EXPECT_EQ(v.kind, Violation::Kind::Shadow);
  EXPECT_NE(v.prior.rank, v.current.rank);
  EXPECT_FALSE(v.prior.recent.empty());
  EXPECT_FALSE(v.current.recent.empty());
  EXPECT_NE(v.to_string().find("PGAS consistency violation"),
            std::string::npos);
}

TEST(MutationTest, ElidedRebuildIndexFenceIsFlagged) {
  const int P = 4;
  GlobalVector<u64> gv(P);
  for (int r = 0; r < P; ++r) gv.shard(r).assign(8, 0);
  CheckConfig cc{.enabled = true};
  cc.elide_op = obs::OpKind::Barrier;
  cc.elide_index = 0;  // the barrier inside rebuild_index publishing offsets
  const CheckReport rep = run_checked(
      P,
      [&](Comm& c) {
        gv.rebuild_index(c);
        (void)gv.get(c, static_cast<usize>(c.rank()));
      },
      cc);
  ASSERT_FALSE(rep.clean());
  // Non-root locate() index reads race rank 0's offsets write.
  bool index_violation = false;
  for (const Violation& v : rep.violations)
    if (v.location.find("offsets index") != std::string::npos)
      index_violation = true;
  EXPECT_TRUE(index_violation) << rep.summary();
}

TEST(MutationTest, ElidedAllgatherInsideHistogramSortIsFlagged) {
  const int P = 8;
  auto shards = make_shards(P, 300);
  CheckConfig cc{.enabled = true};
  cc.elide_op = obs::OpKind::Allgather;
  cc.elide_index = 0;  // the capacity allgather opening the sort
  const CheckReport rep = run_checked(
      P,
      [&](Comm& c) {
        auto local = shards[c.rank()];
        core::sort(c, local);
      },
      cc);
  ASSERT_FALSE(rep.clean());
  EXPECT_GT(rep.joins_elided, 0u);
  const Violation& v = rep.violations[0];
  EXPECT_EQ(v.kind, Violation::Kind::CollectiveData);
  EXPECT_NE(v.prior.rank, v.current.rank);
  EXPECT_FALSE(v.prior.recent.empty());
  EXPECT_FALSE(v.current.recent.empty());
  EXPECT_NE(v.location.find("Allgather"), std::string::npos);
}

TEST(CheckedRunTest, HybridHistogramSortIsViolationFree) {
  // The sampled rounds add a SampleGather collective per round; its
  // full-join happens-before shape must leave the hybrid sort as clean as
  // the dense one.
  for (int P : {4, 8}) {
    auto shards = make_shards(P, 400);
    const CheckReport rep = run_checked(P, [&](Comm& c) {
      auto local = shards[c.rank()];
      core::SortConfig scfg;
      scfg.histogram = core::HistogramMode::Hybrid;
      core::sort(c, local, scfg);
      EXPECT_TRUE(core::is_globally_sorted(
          c, std::span<const u64>(local.data(), local.size()), identity));
    });
    EXPECT_TRUE(rep.clean()) << "P=" << P << "\n" << rep.summary();
    EXPECT_GT(rep.collectives_checked, 0u);
  }
}

TEST(MutationTest, ElidedSampleGatherInsideHybridSortIsFlagged) {
  // Detector teeth for the new collective: dropping the first sampled
  // round's gather join leaves every rank consuming the other ranks'
  // sample blocks unordered, which the checker must flag and attribute to
  // the SampleGather op.
  const int P = 8;
  auto shards = make_shards(P, 300);
  CheckConfig cc{.enabled = true};
  cc.elide_op = obs::OpKind::SampleGather;
  cc.elide_index = 0;  // the first sampled-round gather
  const CheckReport rep = run_checked(
      P,
      [&](Comm& c) {
        auto local = shards[c.rank()];
        core::SortConfig scfg;
        scfg.histogram = core::HistogramMode::Hybrid;
        core::sort(c, local, scfg);
      },
      cc);
  ASSERT_FALSE(rep.clean());
  EXPECT_GT(rep.joins_elided, 0u);
  const Violation& v = rep.violations[0];
  EXPECT_EQ(v.kind, Violation::Kind::CollectiveData);
  EXPECT_NE(v.prior.rank, v.current.rank);
  EXPECT_NE(v.location.find("SampleGather"), std::string::npos)
      << v.location;
}

TEST(MutationTest, EveryBaselineElisionIsFlagged) {
  // One representative synchronizing op per baseline; eliding it must be
  // noticed (the elided op's own data consumption becomes unordered).
  const int P = 4;
  auto shards = make_shards(P, 200);
  struct Case {
    const char* name;
    obs::OpKind op;
    std::function<void(Comm&, std::vector<u64>&)> run;
  };
  const std::vector<Case> cases = {
      {"sample_sort/broadcast", obs::OpKind::Broadcast,
       [](Comm& c, std::vector<u64>& v) { baselines::sample_sort(c, v); }},
      {"hss_sort/allreduce", obs::OpKind::Allreduce,
       [](Comm& c, std::vector<u64>& v) { baselines::hss_sort(c, v); }},
      {"histogram/alltoallv", obs::OpKind::Alltoallv,
       [](Comm& c, std::vector<u64>& v) { core::sort(c, v); }},
  };
  for (const Case& cs : cases) {
    CheckConfig cc{.enabled = true};
    cc.elide_op = cs.op;
    cc.elide_index = 0;
    const CheckReport rep = run_checked(
        P,
        [&](Comm& c) {
          auto local = shards[c.rank()];
          cs.run(c, local);
        },
        cc);
    EXPECT_FALSE(rep.clean()) << cs.name << " elision went undetected";
    EXPECT_GT(rep.joins_elided, 0u) << cs.name;
  }
}

// --- invariants -------------------------------------------------------------

TEST(CheckInvariantTest, DisabledCheckingLeavesSimulatedTimeBitIdentical) {
  const int P = 8;
  auto shards = make_shards(P, 500);
  auto run_once = [&](bool check) {
    TeamConfig tc{.nranks = P};
    tc.check.enabled = check;
    Team team(tc);
    team.run([&](Comm& c) {
      auto local = shards[c.rank()];
      core::sort(c, local);
    });
    std::vector<double> times;
    for (int r = 0; r < P; ++r) times.push_back(team.rank_time(r));
    return times;
  };
  const auto base = run_once(false);
  const auto checked = run_once(true);
  ASSERT_EQ(base.size(), checked.size());
  for (usize r = 0; r < base.size(); ++r)
    EXPECT_EQ(base[r], checked[r]) << "rank " << r;  // bitwise, not approx
}

TEST(CheckInvariantTest, UncheckedRunHasNoReport) {
  Team team(TeamConfig{.nranks = 2});
  team.run([](Comm&) {});
  EXPECT_EQ(team.check_report(), nullptr);
}

TEST(CheckInvariantTest, FailOnViolationThrows) {
  const int P = 4;
  GlobalVector<u64> gv(P);
  for (int r = 0; r < P; ++r) gv.shard(r).assign(4, 0);
  TeamConfig tc{.nranks = P};
  tc.check.enabled = true;
  tc.check.fail_on_violation = true;
  Team team(tc);
  EXPECT_THROW(team.run([&](Comm& c) {
                 gv.rebuild_index(c);
                 if (c.rank() == 0) gv.put(c, 1, 1);
                 u64 token = 0;
                 c.broadcast(&token, 1, /*root=*/1);
                 if (c.rank() == 2) (void)gv.get(c, 1);
               }),
               pgas_violation);
}

TEST(CheckInvariantTest, MaxViolationsCapsRecordingNotCounting) {
  const int P = 4;
  auto shards = make_shards(P, 200);
  CheckConfig cc{.enabled = true};
  cc.max_violations = 2;
  cc.elide_op = obs::OpKind::Allgather;
  cc.elide_index = 0;
  const CheckReport rep = run_checked(
      P,
      [&](Comm& c) {
        auto local = shards[c.rank()];
        core::sort(c, local);
      },
      cc);
  EXPECT_LE(rep.violations.size(), 2u);
  EXPECT_GE(rep.violations_total, rep.violations.size());
  EXPECT_NE(rep.summary().find("further violations"), std::string::npos);
}

TEST(CheckInvariantTest, ReportCountersArePopulated) {
  const int P = 4;
  auto shards = make_shards(P, 300);
  const CheckReport rep = run_checked(P, [&](Comm& c) {
    auto local = shards[c.rank()];
    core::SortConfig scfg;
    scfg.exchange = core::ExchangeAlgorithm::OneFactor;  // uses send/recv
    core::sort(c, local, scfg);
  });
  EXPECT_TRUE(rep.clean()) << rep.summary();
  EXPECT_EQ(rep.nranks, P);
  EXPECT_GT(rep.collectives_checked, 0u);
  EXPECT_GT(rep.p2p_edges, 0u);
  EXPECT_GT(rep.joins_applied, 0u);
  EXPECT_EQ(rep.joins_elided, 0u);
  EXPECT_NE(rep.summary().find("0 violations"), std::string::npos);
}

}  // namespace
}  // namespace hds::check
