// Typed property sweep for KeyTraits: the bijection and ordering laws must
// hold for every supported key type, including extreme values and random
// samples — these laws are what the whole histogramming approach rests on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "core/key_traits.h"

namespace hds::core {
namespace {

template <class T>
T random_value(Xoshiro256& rng) {
  if constexpr (std::is_floating_point_v<T>) {
    // Mix magnitudes and signs, avoid NaN.
    const double mag = std::pow(10.0, rng.uniform01() * 60.0 - 30.0);
    return static_cast<T>((rng.uniform01() - 0.5) * 2.0 * mag);
  } else {
    return static_cast<T>(rng());
  }
}

template <class T>
std::vector<T> extreme_values() {
  std::vector<T> v = {T{0}, std::numeric_limits<T>::max(),
                      std::numeric_limits<T>::lowest(), T{1}};
  if constexpr (std::is_signed_v<T>) v.push_back(T{-1});
  if constexpr (std::is_floating_point_v<T>) {
    v.push_back(std::numeric_limits<T>::infinity());
    v.push_back(-std::numeric_limits<T>::infinity());
    v.push_back(std::numeric_limits<T>::denorm_min());
    v.push_back(-std::numeric_limits<T>::denorm_min());
    v.push_back(static_cast<T>(-0.0));
  }
  return v;
}

template <class T>
class KeyTraitsTyped : public ::testing::Test {};

using KeyTypes = ::testing::Types<u8, u16, u32, u64, i8, i16, i32, i64,
                                  float, double>;
TYPED_TEST_SUITE(KeyTraitsTyped, KeyTypes);

TYPED_TEST(KeyTraitsTyped, RoundTripExtremes) {
  using T = TypeParam;
  using Tr = KeyTraits<T>;
  for (T v : extreme_values<T>()) {
    const T back = Tr::from_uint(Tr::to_uint(v));
    if constexpr (std::is_floating_point_v<T>) {
      // -0.0 round-trips bit-exactly.
      EXPECT_EQ(std::bit_cast<typename Tr::uint_type>(back),
                std::bit_cast<typename Tr::uint_type>(v));
    } else {
      EXPECT_EQ(back, v);
    }
  }
}

TYPED_TEST(KeyTraitsTyped, RoundTripRandom) {
  using T = TypeParam;
  using Tr = KeyTraits<T>;
  Xoshiro256 rng(31);
  for (int i = 0; i < 2000; ++i) {
    const T v = random_value<T>(rng);
    EXPECT_EQ(Tr::from_uint(Tr::to_uint(v)), v);
  }
}

TYPED_TEST(KeyTraitsTyped, OrderPreservedRandomPairs) {
  using T = TypeParam;
  using Tr = KeyTraits<T>;
  Xoshiro256 rng(37);
  for (int i = 0; i < 2000; ++i) {
    const T a = random_value<T>(rng);
    const T b = random_value<T>(rng);
    EXPECT_EQ(a < b, Tr::to_uint(a) < Tr::to_uint(b))
        << "a=" << +a << " b=" << +b;
  }
}

TYPED_TEST(KeyTraitsTyped, SortingUintsSortsValues) {
  using T = TypeParam;
  using Tr = KeyTraits<T>;
  Xoshiro256 rng(41);
  std::vector<T> values;
  for (int i = 0; i < 500; ++i) values.push_back(random_value<T>(rng));
  std::vector<typename Tr::uint_type> uints;
  for (T v : values) uints.push_back(Tr::to_uint(v));
  std::sort(values.begin(), values.end());
  std::sort(uints.begin(), uints.end());
  for (usize i = 0; i < values.size(); ++i)
    EXPECT_EQ(Tr::from_uint(uints[i]), values[i]) << "index " << i;
}

TYPED_TEST(KeyTraitsTyped, MidpointLiesWithinAndBisects) {
  using T = TypeParam;
  using Tr = KeyTraits<T>;
  Xoshiro256 rng(43);
  for (int i = 0; i < 500; ++i) {
    T a = random_value<T>(rng);
    T b = random_value<T>(rng);
    if (b < a) std::swap(a, b);
    const auto ua = Tr::to_uint(a);
    const auto ub = Tr::to_uint(b);
    const auto mid = key_midpoint(ua, ub);
    EXPECT_GE(mid, ua);
    EXPECT_LE(mid, ub);
    if (ua != ub) {
      EXPECT_LT(mid, ub);  // bisection always makes progress
    }
    const T mv = Tr::from_uint(mid);
    EXPECT_FALSE(mv < a);
    EXPECT_FALSE(b < mv);
    if constexpr (std::is_floating_point_v<T>) {
      EXPECT_FALSE(std::isnan(static_cast<double>(mv)));
    }
  }
}

TYPED_TEST(KeyTraitsTyped, KeyBitsMatchTypeWidth) {
  using T = TypeParam;
  using Tr = KeyTraits<T>;
  EXPECT_EQ(static_cast<usize>(Tr::key_bits), sizeof(T) * 8);
}

}  // namespace
}  // namespace hds::core
