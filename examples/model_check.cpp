// model_check: the hds::model CI driver (DESIGN.md sec. 15).
//
// Two verifiers over the runtime's communication protocols:
//
//  1. Static schedule matcher — every sort algorithm runs once with a
//     ScheduleRecorder installed (a ghost capture: symbolic per-rank op
//     schedules, no extra payload movement), and the recorder lints the
//     capture: identical collective sequences across every communicator's
//     members, every send paired with a recv, every borrowed-payload loan
//     explicitly waited. The grid is histogram sort x {alltoallv,
//     hypercube, 1-factor, k-ary k in {2, 3, P}} x {pull, packed} plus the
//     five baseline sorts, all at P = 8. A seeded collective-order swap
//     (--matcher-negative, also run by default) must FAIL the lint — it
//     guards the matcher itself.
//
//  2. Bounded schedule-space explorer — DFS over rank interleavings of the
//     canonical scenarios (model/scenarios.h) under the controlled
//     scheduler, checking deadlock-freedom, message/loan/arena quiescence,
//     and schedule determinism (byte-identical output digests and exact
//     final SimClock equality on every explored interleaving). Three
//     seeded protocol mutations (drop-barrier, reorder-push,
//     skip-borrow-wait) must each be caught with a replayable
//     counterexample.
//
//   ./model_check                      run everything with the CI budget
//   ./model_check --explore=sort2      one scenario only
//   ./model_check --mutation=drop-barrier --explore=mailbox
//                                      one seeded mutation on one scenario
//   ./model_check --matcher            static matcher grid only
//   ./model_check --matcher-negative   the seeded swap only
//   ./model_check --deep               exhaustive (no independence pruning;
//                                      also enabled by HDS_MODEL_DEEP=1)
//   ./model_check --max-runs=N --max-steps=N
//                                      exploration budget (per scenario)
//   ./model_check --json=FILE          write the hds-model-report artifact
//                                      (tools/validate_bench.py model-report)
//   ./model_check --schedule-out=FILE  write the first counterexample as a
//                                      replayable hds-schedule file
//                                      (quickstart --replay-schedule=FILE)
//
// Exit status: 0 all verifiers passed, 1 any failure.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "baselines/bitonic_sort.h"
#include "baselines/hss_sort.h"
#include "baselines/hyksort.h"
#include "baselines/parallel_merge_sort.h"
#include "baselines/sample_sort.h"
#include "core/histogram_sort.h"
#include "model/recorder.h"
#include "model/scenarios.h"
#include "model/schedule_file.h"
#include "runtime/team.h"
#include "workload/distributions.h"

namespace {

using namespace hds;

struct GridCase {
  std::string name;
  int nranks;
  std::function<void(runtime::Comm&)> body;
};

std::vector<u64> grid_data(int rank, int nranks, usize n) {
  workload::GenConfig gen;
  return workload::generate_u64(gen, rank, nranks, n);
}

/// The full matcher grid: histogram sort across every exchange algorithm
/// and data path, plus the five baselines. P = 8 covers the power-of-two
/// algorithms (hypercube, bitonic, hss) and k-ary forwarding alike.
std::vector<GridCase> matcher_grid() {
  constexpr int P = 8;
  constexpr usize kPerRank = 64;
  std::vector<GridCase> cases;

  struct Ex {
    const char* name;
    core::ExchangeAlgorithm algo;
    int k;
  };
  const Ex exchanges[] = {
      {"alltoallv", core::ExchangeAlgorithm::Alltoallv, 0},
      {"hypercube", core::ExchangeAlgorithm::Hypercube, 0},
      {"onefactor", core::ExchangeAlgorithm::OneFactor, 0},
      {"kary-k2", core::ExchangeAlgorithm::KAry, 2},
      {"kary-k3", core::ExchangeAlgorithm::KAry, 3},
      {"kary-kP", core::ExchangeAlgorithm::KAry, P},
  };
  const std::pair<const char*, core::DataPath> paths[] = {
      {"pull", core::DataPath::Pull},
      {"packed", core::DataPath::Packed},
  };
  for (const auto& [path_name, path] : paths)
    for (const Ex& ex : exchanges) {
      core::SortConfig cfg;
      cfg.exchange = ex.algo;
      if (ex.k > 0) cfg.exchange_k = ex.k;
      cfg.path = path;
      cases.push_back(
          {std::string("histogram-") + ex.name + "-" + path_name, P,
           [cfg](runtime::Comm& c) {
             auto local = grid_data(c.rank(), c.size(), kPerRank);
             core::sort(c, local, cfg);
           }});
    }

  cases.push_back({"baseline-bitonic", P, [](runtime::Comm& c) {
                     auto local = grid_data(c.rank(), c.size(), kPerRank);
                     baselines::bitonic_sort(c, local);
                   }});
  cases.push_back({"baseline-hss", P, [](runtime::Comm& c) {
                     auto local = grid_data(c.rank(), c.size(), kPerRank);
                     baselines::hss_sort(c, local);
                   }});
  cases.push_back({"baseline-hyksort", P, [](runtime::Comm& c) {
                     auto local = grid_data(c.rank(), c.size(), kPerRank);
                     baselines::hyksort(c, local);
                   }});
  cases.push_back({"baseline-pmergesort", P, [](runtime::Comm& c) {
                     auto local = grid_data(c.rank(), c.size(), kPerRank);
                     baselines::parallel_merge_sort(c, local);
                   }});
  cases.push_back({"baseline-samplesort", P, [](runtime::Comm& c) {
                     auto local = grid_data(c.rank(), c.size(), kPerRank);
                     baselines::sample_sort(c, local);
                   }});
  return cases;
}

/// The seeded negative: rank 0 swaps its first two collectives. The run
/// aborts with the runtime's collective_mismatch, but the ghost capture
/// happens before execution, so the matcher must still report the
/// divergence — if it passes, the matcher is broken.
GridCase negative_case() {
  return {"negative-collective-swap", 4, [](runtime::Comm& c) {
            auto add = [](u64 a, u64 b) { return a + b; };
            if (c.rank() == 0) {
              c.barrier();
              (void)c.allreduce_value<u64>(1, add);
            } else {
              (void)c.allreduce_value<u64>(1, add);
              c.barrier();
            }
          }};
}

struct MatcherResult {
  std::string name;
  std::vector<std::string> issues;
  usize ops = 0;
  usize loans_opened = 0;
  usize loans_waited = 0;
};

MatcherResult run_matcher_case(const GridCase& gc) {
  model::ScheduleRecorder rec;
  runtime::TeamConfig tcfg;
  tcfg.nranks = gc.nranks;
  tcfg.recorder = &rec;
  runtime::Team team(tcfg);
  try {
    team.run(gc.body);
  } catch (const std::exception&) {
    // Expected for negative cases: the runtime aborts, the capture stays.
  }
  MatcherResult r;
  r.name = gc.name;
  r.issues = rec.verify();
  r.ops = rec.ops();
  r.loans_opened = rec.loans_opened();
  r.loans_waited = rec.loans_waited();
  return r;
}

struct MutationSpec {
  const char* scenario;
  model::Mutation mutation;
};

/// The three seeded protocol faults and the micro-scenario that exposes
/// each: a dropped barrier deadlocks the peers, a reordered contended push
/// breaks per-channel FIFO (output divergence across schedules), a skipped
/// borrow wait leaves the loan to the destructor.
std::vector<MutationSpec> mutation_specs() {
  using K = model::Mutation::Kind;
  return {
      {"mailbox", {K::DropBarrier, /*rank=*/0, /*nth=*/0}},
      {"mailbox", {K::ReorderPush, /*rank=*/0, /*nth=*/0}},
      {"borrow", {K::SkipBorrowWait, /*rank=*/0, /*nth=*/0}},
  };
}

void json_escape(std::ostream& os, const std::string& s) {
  os << '"';
  for (char ch : s) {
    if (ch == '"' || ch == '\\')
      os << '\\' << ch;
    else if (ch == '\n')
      os << "\\n";
    else
      os << ch;
  }
  os << '"';
}

void json_string_list(std::ostream& os, const std::vector<std::string>& v) {
  os << '[';
  for (usize i = 0; i < v.size(); ++i) {
    if (i) os << ',';
    json_escape(os, v[i]);
  }
  os << ']';
}

void json_int_list(std::ostream& os, const std::vector<int>& v) {
  os << '[';
  for (usize i = 0; i < v.size(); ++i) {
    if (i) os << ',';
    os << v[i];
  }
  os << ']';
}

struct MutationOutcome {
  std::string scenario;
  std::string mutation;
  bool caught = false;
  std::string kind;
  usize runs = 0;
  std::vector<int> counterexample;
};

}  // namespace

int main(int argc, char** argv) {
  bool run_matcher = true;
  bool run_negative = true;
  bool run_explore = true;
  bool run_mutations = true;
  std::string only_scenario;
  std::string only_mutation;
  int mutation_rank = 0;
  int mutation_nth = 0;
  std::string json_path;
  std::string schedule_out;
  model::ExploreConfig ecfg;
  // NOLINTNEXTLINE(concurrency-mt-unsafe): single-threaded startup, no
  // concurrent setenv in this process.
  const char* deep_env = std::getenv("HDS_MODEL_DEEP");
  ecfg.exhaustive = deep_env != nullptr && std::string(deep_env) == "1";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto val = [&](const char* prefix) {
      return arg.substr(std::string(prefix).size());
    };
    if (arg == "--matcher") {
      run_explore = run_mutations = false;
    } else if (arg == "--matcher-negative") {
      run_matcher = run_explore = run_mutations = false;
    } else if (arg.rfind("--explore=", 0) == 0) {
      only_scenario = val("--explore=");
      run_matcher = run_negative = false;
      if (only_mutation.empty()) run_mutations = false;
    } else if (arg.rfind("--mutation=", 0) == 0) {
      only_mutation = val("--mutation=");
      run_matcher = run_negative = run_explore = false;
      run_mutations = true;
    } else if (arg.rfind("--mutation-rank=", 0) == 0) {
      mutation_rank = std::stoi(val("--mutation-rank="));
    } else if (arg.rfind("--mutation-nth=", 0) == 0) {
      mutation_nth = std::stoi(val("--mutation-nth="));
    } else if (arg == "--deep") {
      ecfg.exhaustive = true;
    } else if (arg.rfind("--max-runs=", 0) == 0) {
      ecfg.max_runs = std::stoull(val("--max-runs="));
    } else if (arg.rfind("--max-steps=", 0) == 0) {
      ecfg.max_steps = std::stoull(val("--max-steps="));
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = val("--json=");
    } else if (arg.rfind("--schedule-out=", 0) == 0) {
      schedule_out = val("--schedule-out=");
    } else {
      std::cerr << "model_check: unknown argument " << arg << "\n";
      return 1;
    }
  }

  bool failed = false;

  // --- 1. static schedule matcher -----------------------------------------
  std::vector<MatcherResult> matcher_results;
  if (run_matcher) {
    for (const GridCase& gc : matcher_grid()) {
      MatcherResult r = run_matcher_case(gc);
      if (r.issues.empty()) {
        std::cout << "matcher OK: " << r.name << " (" << r.ops
                  << " symbolic ops)\n";
      } else {
        failed = true;
        std::cout << "matcher FAIL: " << r.name << "\n";
        for (const auto& is : r.issues) std::cout << "  " << is << "\n";
      }
      matcher_results.push_back(std::move(r));
    }
  }
  if (run_negative) {
    MatcherResult r = run_matcher_case(negative_case());
    if (r.issues.empty()) {
      failed = true;
      std::cout << "matcher-negative FAIL: seeded collective-order swap "
                   "passed the lint (matcher is blind)\n";
    } else {
      std::cout << "matcher-negative OK: swap caught: " << r.issues.front()
                << "\n";
    }
  }

  // --- 2. bounded exploration ---------------------------------------------
  std::vector<model::ExploreReport> explorations;
  if (run_explore) {
    for (const model::Scenario& s : model::all_scenarios()) {
      if (!only_scenario.empty() && s.name != only_scenario) continue;
      model::ExploreReport rep = model::explore(s, ecfg);
      explorations.push_back(rep);
      if (rep.issues.empty() && rep.deterministic) {
        std::cout << "explore OK: " << s.name << " (" << rep.runs
                  << " schedules, " << rep.branch_points
                  << " branch points, " << rep.pruned << " pruned"
                  << (rep.budget_hit ? ", budget hit" : "") << ")\n";
      } else {
        failed = true;
        std::cout << "explore FAIL: " << s.name << " ["
                  << rep.counterexample_kind << "]\n";
        for (const auto& is : rep.issues) std::cout << "  " << is << "\n";
      }
    }
    if (!only_scenario.empty() && explorations.empty()) {
      std::cerr << "model_check: unknown scenario " << only_scenario << "\n";
      return 1;
    }
  }

  // --- 3. seeded protocol mutations ---------------------------------------
  std::vector<MutationOutcome> mutations;
  if (run_mutations) {
    std::vector<MutationSpec> specs;
    if (!only_mutation.empty()) {
      model::Mutation m;
      using K = model::Mutation::Kind;
      if (only_mutation == "drop-barrier")
        m.kind = K::DropBarrier;
      else if (only_mutation == "reorder-push")
        m.kind = K::ReorderPush;
      else if (only_mutation == "skip-borrow-wait")
        m.kind = K::SkipBorrowWait;
      else {
        std::cerr << "model_check: unknown mutation " << only_mutation
                  << "\n";
        return 1;
      }
      m.rank = mutation_rank;
      m.nth = mutation_nth;
      specs.push_back(
          {only_scenario.empty() ? "mailbox" : only_scenario.c_str(), m});
    } else {
      specs = mutation_specs();
    }
    for (const MutationSpec& spec : specs) {
      model::Scenario s = model::find_scenario(spec.scenario);
      if (s.name.empty()) {
        std::cerr << "model_check: unknown scenario " << spec.scenario
                  << "\n";
        return 1;
      }
      model::ExploreConfig mcfg = ecfg;
      mcfg.mutation = spec.mutation;
      model::ExploreReport rep = model::explore(s, mcfg);
      MutationOutcome out;
      out.scenario = s.name;
      out.mutation = model::mutation_kind_name(spec.mutation.kind);
      out.caught = !rep.counterexample_kind.empty();
      out.kind = rep.counterexample_kind;
      out.runs = rep.runs;
      out.counterexample = rep.counterexample;
      if (out.caught) {
        std::cout << "mutation OK: " << out.mutation << " on " << s.name
                  << " caught as " << out.kind << " (run " << rep.runs
                  << ", " << out.counterexample.size() << " steps)\n";
        if (!schedule_out.empty()) {
          model::ScheduleFile sf;
          sf.scenario = s.name;
          sf.mutation = spec.mutation;
          sf.choices = out.counterexample;
          if (model::write_schedule(schedule_out, sf))
            std::cout << "  counterexample written to " << schedule_out
                      << "\n";
          schedule_out.clear();  // keep the first (one file, one schedule)
        }
      } else {
        failed = true;
        std::cout << "mutation FAIL: " << out.mutation << " on " << s.name
                  << " survived " << rep.runs << " schedules undetected\n";
      }
      mutations.push_back(std::move(out));
    }
  }

  // --- report ---------------------------------------------------------------
  if (!json_path.empty()) {
    std::ofstream os(json_path);
    os << "{\"schema\":\"hds-model-report\",\"version\":1,\"deep\":"
       << (ecfg.exhaustive ? "true" : "false") << ",";
    usize ops = 0, opened = 0, waited = 0, failures = 0;
    for (const auto& r : matcher_results) {
      ops += r.ops;
      opened += r.loans_opened;
      waited += r.loans_waited;
      if (!r.issues.empty()) ++failures;
    }
    os << "\"matcher\":{\"configs\":" << matcher_results.size()
       << ",\"failures\":" << failures << ",\"ops\":" << ops
       << ",\"loans_opened\":" << opened << ",\"loans_waited\":" << waited
       << ",\"cases\":[";
    for (usize i = 0; i < matcher_results.size(); ++i) {
      if (i) os << ',';
      os << "{\"name\":";
      json_escape(os, matcher_results[i].name);
      os << ",\"issues\":";
      json_string_list(os, matcher_results[i].issues);
      os << '}';
    }
    os << "]},\"explorations\":[";
    for (usize i = 0; i < explorations.size(); ++i) {
      const auto& e = explorations[i];
      if (i) os << ',';
      os << "{\"scenario\":";
      json_escape(os, e.scenario);
      os << ",\"nranks\":" << e.nranks << ",\"runs\":" << e.runs
         << ",\"decisions\":" << e.decisions
         << ",\"branch_points\":" << e.branch_points
         << ",\"pruned\":" << e.pruned
         << ",\"budget_hit\":" << (e.budget_hit ? "true" : "false")
         << ",\"deterministic\":" << (e.deterministic ? "true" : "false")
         << ",\"issues\":";
      json_string_list(os, e.issues);
      os << ",\"counterexample\":";
      json_int_list(os, e.counterexample);
      os << '}';
    }
    os << "],\"mutations\":[";
    for (usize i = 0; i < mutations.size(); ++i) {
      const auto& m = mutations[i];
      if (i) os << ',';
      os << "{\"scenario\":";
      json_escape(os, m.scenario);
      os << ",\"mutation\":";
      json_escape(os, m.mutation);
      os << ",\"caught\":" << (m.caught ? "true" : "false") << ",\"kind\":";
      json_escape(os, m.kind);
      os << ",\"runs\":" << m.runs << ",\"counterexample\":";
      json_int_list(os, m.counterexample);
      os << '}';
    }
    os << "]}\n";
    std::cout << "model report written to " << json_path << "\n";
  }

  return failed ? 1 : 0;
}
