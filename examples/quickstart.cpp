// Quickstart: sort a distributed vector with hds.
//
// The Team models an MPI job inside one process (each rank is a thread);
// the code inside team.run() is exactly what each rank of a real PGAS/MPI
// job would execute: generate local data, call hds::core::sort, done. The
// output contract matches std::sort generalized to P partitions: every
// partition sorted, partitions ordered, and with epsilon == 0 each rank
// keeps its original element count (perfect partitioning).
//
//   ./quickstart [--ranks=8] [--keys-per-rank=100000] [--epsilon=0.0]
//               [--trace=trace.json] [--ledger=ledger.json] [--check]
//               [--path=pull|packed] [--exchange-k=4]
//               [--histogram=dense|sampled|hybrid] [--oversample=K]
//               [--fault=crash] [--fault-rank=1] [--fault-op=20]
//               [--fault-seed=7] [--straggle=0.5] [--drop=0.05]
//               [--recovery=restart|resume|shrink]
//               [--replay-schedule=FILE]
//
// --check runs under the hds::check happens-before race checker and exits
// non-zero if the sort produced any PGAS consistency violation.
// --ledger writes the versioned run ledger (DESIGN.md sec. 14): machine and
// sort config, per-phase and per-op-class time, and the fitted cost-model
// constants — and prints the differential-profiler attribution table
// showing where the cost model disagrees with the traced run.
// --path selects the exchange data path (DESIGN.md sec. 11): "pull" is the
// default single-copy alltoallv_into path, "packed" the legacy arena-staged
// collective; results and simulated time are identical either way.
// --exchange-k=K switches superstep 3 to the k-ary swap schedule with
// merge/communication overlap (DESIGN.md sec. 13): ceil(log_K P) rounds of
// K-1 partners each, merging previous arrivals while the current round's
// copies are in flight. K=2 is the hypercube schedule, K>=P one direct
// round. Without the flag the paper's single-alltoallv exchange is used.
// --histogram selects the splitter-search strategy (DESIGN.md sec. 16):
// "dense" is the paper's probe-and-allreduce baseline, "sampled" runs
// HSS-style sampled bracket rounds first, "hybrid" adds interpolated dense
// probes seeded from the sampled CDF. All modes sort identically; they
// differ in histogram rounds and bytes. --oversample=K sets the sample keys
// drawn per rank per sampled round (beyond the two forced extremes).
// --fault=crash kills --fault-rank at its --fault-op'th communication op;
// --straggle=S delays it by S simulated seconds instead; --drop=P drops
// each message with probability P (seeded by --fault-seed). Any of these
// switches the example to core::sort_resilient with the --recovery mode
// (DESIGN.md sec. 12): "restart" re-runs from scratch, "resume" replays
// from the last checkpointed superstep boundary, "shrink" finishes
// in-flight on the survivors.
// --replay-schedule=FILE replays a model-checker counterexample (an
// hds-schedule file written by model_check --schedule-out): the named
// scenario re-runs under the controlled scheduler with the recorded rank
// choices and seeded mutation, reproducing the reported deadlock /
// protocol violation deterministically. Exits 1 if the issue reproduces,
// 0 if the schedule runs clean.
#include <fstream>
#include <iostream>

#include "check/race_detector.h"
#include "core/histogram_sort.h"
#include "model/scenarios.h"
#include "model/schedule_file.h"
#include "obs/features.h"
#include "obs/ledger.h"
#include "obs/report.h"
#include "runtime/fault.h"
#include "runtime/team.h"
#include "workload/distributions.h"

namespace {
const char* histogram_mode_name(hds::core::HistogramMode m) {
  switch (m) {
    case hds::core::HistogramMode::Dense: return "dense";
    case hds::core::HistogramMode::Sampled: return "sampled";
    case hds::core::HistogramMode::Hybrid: return "hybrid";
  }
  return "?";
}
}  // namespace

int main(int argc, char** argv) {
  using namespace hds;
  int ranks = 8;
  usize keys_per_rank = 100000;
  double epsilon = 0.0;
  std::string trace_path;
  std::string ledger_path;
  bool check = false;
  core::DataPath path = core::DataPath::Pull;
  int exchange_k = 0;  // 0 = alltoallv (the default exchange)
  core::HistogramMode histogram = core::HistogramMode::Dense;
  usize oversample = 8;
  std::string fault;
  int fault_rank = 1;
  u64 fault_op = 20;
  u64 fault_seed = 7;
  double straggle_s = 0.0;
  double drop_p = 0.0;
  core::RecoveryMode recovery = core::RecoveryMode::ResumeCheckpoint;
  std::string replay_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--replay-schedule=", 0) == 0) replay_path = arg.substr(18);
    if (arg.rfind("--ranks=", 0) == 0) ranks = std::stoi(arg.substr(8));
    if (arg.rfind("--keys-per-rank=", 0) == 0)
      keys_per_rank = std::stoul(arg.substr(16));
    if (arg.rfind("--epsilon=", 0) == 0) epsilon = std::stod(arg.substr(10));
    if (arg.rfind("--trace=", 0) == 0) trace_path = arg.substr(8);
    if (arg.rfind("--ledger=", 0) == 0) ledger_path = arg.substr(9);
    if (arg == "--check") check = true;
    if (arg.rfind("--path=", 0) == 0) {
      const std::string v = arg.substr(7);
      if (v == "packed") {
        path = core::DataPath::Packed;
      } else if (v == "pull") {
        path = core::DataPath::Pull;
      } else {
        std::cerr << "unknown --path value: " << v << " (pull|packed)\n";
        return 2;
      }
    }
    if (arg.rfind("--exchange-k=", 0) == 0) {
      exchange_k = std::stoi(arg.substr(13));
      if (exchange_k < 2) {
        std::cerr << "--exchange-k must be >= 2\n";
        return 2;
      }
    }
    if (arg.rfind("--histogram=", 0) == 0) {
      const std::string v = arg.substr(12);
      if (v == "dense") {
        histogram = core::HistogramMode::Dense;
      } else if (v == "sampled") {
        histogram = core::HistogramMode::Sampled;
      } else if (v == "hybrid") {
        histogram = core::HistogramMode::Hybrid;
      } else {
        std::cerr << "unknown --histogram value: " << v
                  << " (dense|sampled|hybrid)\n";
        return 2;
      }
    }
    if (arg.rfind("--oversample=", 0) == 0)
      oversample = std::stoul(arg.substr(13));
    if (arg.rfind("--fault=", 0) == 0) fault = arg.substr(8);
    if (arg.rfind("--fault-rank=", 0) == 0)
      fault_rank = std::stoi(arg.substr(13));
    if (arg.rfind("--fault-op=", 0) == 0) fault_op = std::stoul(arg.substr(11));
    if (arg.rfind("--fault-seed=", 0) == 0)
      fault_seed = std::stoul(arg.substr(13));
    if (arg.rfind("--straggle=", 0) == 0)
      straggle_s = std::stod(arg.substr(11));
    if (arg.rfind("--drop=", 0) == 0) drop_p = std::stod(arg.substr(7));
    if (arg.rfind("--recovery=", 0) == 0) {
      const std::string v = arg.substr(11);
      if (v == "restart") {
        recovery = core::RecoveryMode::RestartFull;
      } else if (v == "resume") {
        recovery = core::RecoveryMode::ResumeCheckpoint;
      } else if (v == "shrink") {
        recovery = core::RecoveryMode::ShrinkSurvivors;
      } else {
        std::cerr << "unknown --recovery value: " << v
                  << " (restart|resume|shrink)\n";
        return 2;
      }
    }
  }
  if (!fault.empty() && fault != "crash") {
    std::cerr << "unknown --fault value: " << fault << " (crash)\n";
    return 2;
  }

  if (!replay_path.empty()) {
    const auto sched = model::read_schedule(replay_path);
    if (!sched) {
      std::cerr << "could not parse schedule file: " << replay_path << "\n";
      return 2;
    }
    const model::Scenario scenario = model::find_scenario(sched->scenario);
    if (scenario.name.empty()) {
      std::cerr << "unknown scenario in schedule file: " << sched->scenario
                << "\n";
      return 2;
    }
    std::cout << "replaying " << sched->choices.size()
              << " recorded choices of scenario " << scenario.name;
    if (sched->mutation.active())
      std::cout << " with mutation "
                << model::mutation_kind_name(sched->mutation.kind)
                << " rank=" << sched->mutation.rank
                << " nth=" << sched->mutation.nth;
    std::cout << "\n";
    const model::RunOutcome out = model::run_scenario(
        scenario, sched->choices, sched->mutation, /*max_steps=*/200000);
    bool issue = false;
    if (out.deadlock) {
      issue = true;
      std::cout << out.deadlock_report << "\n";
    }
    if (!out.completed && !out.deadlock) {
      issue = true;
      std::cout << "run failed: " << out.error << "\n";
    }
    if (out.dtor_drains > 0) {
      issue = true;
      std::cout << out.dtor_drains
                << " BorrowToken(s) drained by destructor instead of wait()\n";
    }
    if (out.undelivered > 0) {
      issue = true;
      std::cout << out.undelivered
                << " undelivered message(s) at termination\n";
    }
    for (const auto& q : out.quiescence) {
      issue = true;
      std::cout << q << "\n";
    }
    if (out.replay_diverged)
      std::cout << "note: recorded choices diverged from the enabled set "
                   "(schedule from another build?)\n";
    if (out.completed) {
      // Divergence counterexamples reproduce as a digest difference against
      // a reference run of the same scenario — print them for comparison.
      std::cout << "per-rank output digests:";
      for (u64 d : out.digests) std::cout << " " << std::hex << d << std::dec;
      std::cout << "\n";
    }
    std::cout << (issue ? "counterexample reproduced"
                        : "schedule ran clean")
              << " (" << out.choices.size() << " decisions)\n";
    return issue ? 1 : 0;
  }

  const bool faulty = fault == "crash" || straggle_s > 0.0 || drop_p > 0.0;
  std::shared_ptr<runtime::FaultPlan> plan;
  if (faulty) {
    plan = std::make_shared<runtime::FaultPlan>(fault_seed);
    if (fault == "crash") plan->crash_rank_at_op(fault_rank, fault_op);
    if (straggle_s > 0.0)
      plan->delay_rank_at_op(fault_rank, fault_op, straggle_s);
    if (drop_p > 0.0) plan->drop_messages_with_probability(drop_p);
  }

  runtime::TeamConfig tcfg{
      .nranks = ranks,
      .trace = !trace_path.empty() || !ledger_path.empty()};
  tcfg.check.enabled = check;
  tcfg.fault = plan;
  if (faulty) tcfg.watchdog_timeout_s = 10.0;
  runtime::Team team(tcfg);

  if (faulty) {
    // Resilient path: the whole input lives in per-rank partitions so a
    // failed attempt can restart (or the survivors can absorb a dead
    // rank's shard) from pristine state.
    std::vector<std::vector<u64>> parts(static_cast<usize>(ranks));
    workload::GenConfig gen;
    gen.seed = 2026;
    for (int r = 0; r < ranks; ++r)
      parts[static_cast<usize>(r)] =
          workload::generate_u64(gen, r, ranks, keys_per_rank);

    core::SortConfig cfg;
    cfg.epsilon = epsilon;
    cfg.path = path;
    cfg.histogram = histogram;
    cfg.oversample = oversample;
    if (exchange_k > 0) {
      cfg.exchange = core::ExchangeAlgorithm::KAry;
      cfg.exchange_k = exchange_k;
      cfg.overlap_merge = true;
    }
    core::ResilienceConfig rcfg;
    rcfg.mode = recovery;
    core::ResilienceReport rep;
    try {
      (void)core::sort_resilient(team, parts, cfg, rcfg, &rep);
    } catch (const std::exception& e) {
      std::cerr << "sort_resilient gave up: " << e.what() << "\n";
      return 1;
    }

    bool sorted = true;
    u64 prev = 0;
    usize total = 0;
    for (const auto& p : parts)
      for (const u64 v : p) {
        if (total > 0 && v < prev) sorted = false;
        prev = v;
        ++total;
      }
    std::cout << "resilient sort (" << core::recovery_mode_name(recovery)
              << "): " << (sorted ? "globally sorted" : "FAILED") << ", "
              << total << " keys\n"
              << "  attempts             : " << rep.attempts << "\n"
              << "  rank failures        : " << rep.failures << "\n"
              << "  in-flight recoveries : " << rep.recoveries << "\n"
              << "  recomputed fraction  : " << rep.recomputed_fraction
              << "\n"
              << "  checkpoint bytes     : " << rep.checkpoint_bytes << "\n"
              << "  output ranks         : " << rep.final_ranks.size()
              << " of " << ranks << "\n"
              << "simulated time-to-solution: " << rep.sim_seconds_total
              << " s\n";
    return sorted ? 0 : 1;
  }

  team.run([&](runtime::Comm& comm) {
    // 1. Each rank owns a local partition — here: random 64-bit keys.
    workload::GenConfig gen;
    gen.seed = 2026;
    std::vector<u64> local =
        workload::generate_u64(gen, comm.rank(), comm.size(), keys_per_rank);

    // 2. One call sorts the distributed sequence.
    core::SortConfig cfg;
    cfg.epsilon = epsilon;
    cfg.path = path;
    cfg.histogram = histogram;
    cfg.oversample = oversample;
    if (exchange_k > 0) {
      cfg.exchange = core::ExchangeAlgorithm::KAry;
      cfg.exchange_k = exchange_k;
      cfg.overlap_merge = true;
    }
    const core::SortStats stats = core::sort(comm, local, cfg);

    // 3. The local partition now holds this rank's slice of the globally
    //    sorted sequence.
    const bool ok = core::is_globally_sorted(
        comm, std::span<const u64>(local.data(), local.size()),
        [](u64 v) { return v; });

    if (comm.rank() == 0) {
      std::cout << "sorted " << comm.size() << " x " << keys_per_rank
                << " keys: " << (ok ? "globally sorted" : "FAILED") << "\n"
                << "  histogram mode       : " << histogram_mode_name(histogram)
                << " (oversample " << oversample << ")\n"
                << "  histogram iterations : "
                << stats.histogram_iterations << " (" << stats.sampled_rounds
                << " sampled)\n"
                << "  splitter probes      : " << stats.splitter_probes
                << "\n"
                << "  histogram bytes      : " << stats.hist_bytes_sampled
                << " sampled + " << stats.hist_bytes_dense << " dense\n"
                << "  sent off-rank (r0)   : "
                << stats.elements_sent_off_rank << " of "
                << stats.elements_before << "\n";
    }
    comm.barrier();
    if (local.empty())
      std::cout << "  rank " << comm.rank() << ": [empty], n=0\n";
    else
      std::cout << "  rank " << comm.rank() << ": [" << local.front()
                << " .. " << local.back() << "], n=" << local.size() << "\n";
  });

  std::cout << "simulated makespan: " << team.stats().makespan_s << " s\n";

  if (const obs::TraceReport* trace = team.trace()) {
    if (!trace_path.empty()) {
      std::ofstream out(trace_path);
      trace->write_chrome_json(out);
      std::cout << "wrote Chrome trace (" << trace->total_events()
                << " events) to " << trace_path << "\n"
                << trace->comm_matrix().summary() << "\n";
    }
    if (!ledger_path.empty()) {
      obs::RunLedger led = obs::RunLedger::from_trace(*trace, team.cost());
      led.bench = "quickstart";
      led.total_elements =
          static_cast<u64>(ranks) * static_cast<u64>(keys_per_rank);
      led.config = {{"epsilon", std::to_string(epsilon)},
                    {"path", path == core::DataPath::Pull ? "pull" : "packed"},
                    {"exchange_k", std::to_string(exchange_k)},
                    {"histogram", histogram_mode_name(histogram)},
                    {"oversample", std::to_string(oversample)}};
      led.scalars = {{"sim_makespan_s", team.stats().makespan_s}};
      obs::attach_features(led, team.cost());
      std::ofstream out(ledger_path);
      led.write_json(out);
      std::cout << "wrote run ledger (" << led.samples.size()
                << " op samples) to " << ledger_path << "\n"
                << obs::attribution_table(led);
    }
  }

  if (const check::CheckReport* rep = team.check_report()) {
    std::cout << rep->summary() << "\n";
    if (!rep->clean()) return 1;
  }
  return 0;
}
