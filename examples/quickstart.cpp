// Quickstart: sort a distributed vector with hds.
//
// The Team models an MPI job inside one process (each rank is a thread);
// the code inside team.run() is exactly what each rank of a real PGAS/MPI
// job would execute: generate local data, call hds::core::sort, done. The
// output contract matches std::sort generalized to P partitions: every
// partition sorted, partitions ordered, and with epsilon == 0 each rank
// keeps its original element count (perfect partitioning).
//
//   ./quickstart [--ranks=8] [--keys-per-rank=100000] [--epsilon=0.0]
//               [--trace=trace.json] [--check] [--path=pull|packed]
//
// --check runs under the hds::check happens-before race checker and exits
// non-zero if the sort produced any PGAS consistency violation.
// --path selects the exchange data path (DESIGN.md sec. 11): "pull" is the
// default single-copy alltoallv_into path, "packed" the legacy arena-staged
// collective; results and simulated time are identical either way.
#include <fstream>
#include <iostream>

#include "check/race_detector.h"
#include "core/histogram_sort.h"
#include "obs/report.h"
#include "runtime/team.h"
#include "workload/distributions.h"

int main(int argc, char** argv) {
  using namespace hds;
  int ranks = 8;
  usize keys_per_rank = 100000;
  double epsilon = 0.0;
  std::string trace_path;
  bool check = false;
  core::DataPath path = core::DataPath::Pull;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--ranks=", 0) == 0) ranks = std::stoi(arg.substr(8));
    if (arg.rfind("--keys-per-rank=", 0) == 0)
      keys_per_rank = std::stoul(arg.substr(16));
    if (arg.rfind("--epsilon=", 0) == 0) epsilon = std::stod(arg.substr(10));
    if (arg.rfind("--trace=", 0) == 0) trace_path = arg.substr(8);
    if (arg == "--check") check = true;
    if (arg.rfind("--path=", 0) == 0) {
      const std::string v = arg.substr(7);
      if (v == "packed") {
        path = core::DataPath::Packed;
      } else if (v == "pull") {
        path = core::DataPath::Pull;
      } else {
        std::cerr << "unknown --path value: " << v << " (pull|packed)\n";
        return 2;
      }
    }
  }

  runtime::TeamConfig tcfg{.nranks = ranks, .trace = !trace_path.empty()};
  tcfg.check.enabled = check;
  runtime::Team team(tcfg);

  team.run([&](runtime::Comm& comm) {
    // 1. Each rank owns a local partition — here: random 64-bit keys.
    workload::GenConfig gen;
    gen.seed = 2026;
    std::vector<u64> local =
        workload::generate_u64(gen, comm.rank(), comm.size(), keys_per_rank);

    // 2. One call sorts the distributed sequence.
    core::SortConfig cfg;
    cfg.epsilon = epsilon;
    cfg.path = path;
    const core::SortStats stats = core::sort(comm, local, cfg);

    // 3. The local partition now holds this rank's slice of the globally
    //    sorted sequence.
    const bool ok = core::is_globally_sorted(
        comm, std::span<const u64>(local.data(), local.size()),
        [](u64 v) { return v; });

    if (comm.rank() == 0) {
      std::cout << "sorted " << comm.size() << " x " << keys_per_rank
                << " keys: " << (ok ? "globally sorted" : "FAILED") << "\n"
                << "  histogram iterations : "
                << stats.histogram_iterations << "\n"
                << "  splitter probes      : " << stats.splitter_probes
                << "\n"
                << "  sent off-rank (r0)   : "
                << stats.elements_sent_off_rank << " of "
                << stats.elements_before << "\n";
    }
    comm.barrier();
    if (local.empty())
      std::cout << "  rank " << comm.rank() << ": [empty], n=0\n";
    else
      std::cout << "  rank " << comm.rank() << ": [" << local.front()
                << " .. " << local.back() << "], n=" << local.size() << "\n";
  });

  std::cout << "simulated makespan: " << team.stats().makespan_s << " s\n";

  if (const obs::TraceReport* trace = team.trace()) {
    std::ofstream out(trace_path);
    trace->write_chrome_json(out);
    std::cout << "wrote Chrome trace (" << trace->total_events()
              << " events) to " << trace_path << "\n"
              << trace->comm_matrix().summary() << "\n";
  }

  if (const check::CheckReport* rep = team.check_report()) {
    std::cout << rep->summary() << "\n";
    if (!rep->clean()) return 1;
  }
  return 0;
}
