// Distributed order statistics without a full sort — the dash::nth_element
// building block the paper's discussion section highlights: "we can reuse
// our distributed selection implementation as a building block in other
// DASH algorithms, e.g. dash::nth_element."
//
// A stream of latency samples is distributed over the ranks; the example
// computes the median, p99 and p99.9 latencies and the global top-k
// threshold with hds::core::nth_element (Alg. 1, weighted-median
// selection) — touching each element O(log P) times instead of sorting.
//
//   ./distributed_topk [--ranks=16] [--samples-per-rank=200000]
#include <algorithm>
#include <iostream>

#include "common/rng.h"
#include "core/histogram_sort.h"
#include "runtime/team.h"

int main(int argc, char** argv) {
  using namespace hds;
  int ranks = 16;
  usize per_rank = 200000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--ranks=", 0) == 0) ranks = std::stoi(arg.substr(8));
    if (arg.rfind("--samples-per-rank=", 0) == 0)
      per_rank = std::stoul(arg.substr(19));
  }

  runtime::Team team({.nranks = ranks});

  team.run([&](runtime::Comm& comm) {
    // Log-normal-ish latency distribution in microseconds with a heavy
    // tail — the classic "find the p99" problem.
    Xoshiro256 rng(hash_mix(99, comm.rank()));
    std::vector<double> latency(per_rank);
    for (auto& v : latency) {
      const double base = std::exp(rng.normal() * 0.8 + 3.0);
      v = base + (rng.uniform01() < 0.001 ? rng.exponential(0.01) : 0.0);
    }

    const u64 n = comm.allreduce_value<u64>(latency.size(),
                                            [](u64 a, u64 b) { return a + b; });
    auto quantile = [&](double q) {
      const usize k = std::min<usize>(static_cast<usize>(q * n), n - 1);
      return core::nth_element(comm, std::span<double>(latency), k);
    };

    const double p50 = quantile(0.50);
    const double p99 = quantile(0.99);
    const double p999 = quantile(0.999);
    // Top-k threshold: the k-th largest value.
    const usize k = 100;
    const double topk = core::nth_element(comm, std::span<double>(latency),
                                          n - k);

    if (comm.rank() == 0) {
      std::cout << "distributed order statistics over " << n
                << " samples on " << comm.size() << " ranks:\n"
                << "  p50   = " << p50 << " us\n"
                << "  p99   = " << p99 << " us\n"
                << "  p99.9 = " << p999 << " us\n"
                << "  top-" << k << " threshold = " << topk << " us\n";
      HDS_CHECK(p50 <= p99 && p99 <= p999 && p999 <= topk + 1e9);
    }
  });

  std::cout << "simulated makespan: " << team.stats().makespan_s << " s\n";
  return 0;
}
