// Sparse matrix load balancing — the conclusion's use case: "we can handle
// sparse data structures where a fraction of all processors do not
// contribute local elements. This is useful for example in numerical
// algorithms to load balance sparse matrices."
//
// A block-diagonal-ish sparse matrix is distributed so that only a few
// ranks hold nonzeros (e.g. after reading a file on a subset of I/O ranks).
// Sorting the nonzeros by (row, col) key with epsilon-balanced partitioning
// redistributes them evenly — the preprocessing step a distributed SpMV
// needs. Empty input partitions exercise the sparse-input path of the
// splitter determination.
//
//   ./sparse_matrix_balance [--ranks=12] [--nnz-per-io-rank=80000]
#include <iostream>

#include "common/rng.h"
#include "core/histogram_sort.h"
#include "runtime/team.h"

namespace {

struct Nonzero {
  hds::u32 row, col;
  double value;
};

/// Pack (row, col) into the sort key: row-major nonzero order.
hds::u64 coord_key(const Nonzero& nz) {
  return (static_cast<hds::u64>(nz.row) << 32) | nz.col;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hds;
  int ranks = 12;
  usize nnz_io = 80000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--ranks=", 0) == 0) ranks = std::stoi(arg.substr(8));
    if (arg.rfind("--nnz-per-io-rank=", 0) == 0)
      nnz_io = std::stoul(arg.substr(18));
  }

  runtime::Team team({.nranks = ranks});
  const u32 n_rows = 1 << 20;

  team.run([&](runtime::Comm& comm) {
    // Only every fourth rank acts as an I/O rank and holds nonzeros.
    std::vector<Nonzero> nnz;
    const bool io_rank = comm.rank() % 4 == 0;
    if (io_rank) {
      Xoshiro256 rng(hash_mix(13, comm.rank()));
      nnz.reserve(nnz_io);
      for (usize i = 0; i < nnz_io; ++i) {
        // Banded structure: entries cluster around the diagonal.
        const u32 row = static_cast<u32>(rng.uniform_u64(0, n_rows - 1));
        const i64 off = static_cast<i64>(rng.uniform_u64(0, 64)) - 32;
        const u32 col = static_cast<u32>(
            std::clamp<i64>(static_cast<i64>(row) + off, 0, n_rows - 1));
        nnz.push_back({row, col, rng.normal()});
      }
    }
    const usize before = nnz.size();

    // One call sorts by (row, col) AND rebalances: sort_balanced targets an
    // even N/P share per rank, so the wildly uneven input (only I/O ranks
    // hold data) ends up evenly spread, sorted, after a single data
    // movement. Empty input partitions exercise the sparse path of the
    // splitter determination.
    const u64 total = comm.allreduce_value<u64>(
        nnz.size(), [](u64 a, u64 b) { return a + b; });
    auto stats = core::sort_balanced(comm, nnz, coord_key);
    auto& balanced = nnz;

    const bool ok = core::is_globally_sorted(
        comm, std::span<const Nonzero>(balanced.data(), balanced.size()),
        coord_key);
    HDS_CHECK(ok);

    comm.barrier();
    if (comm.rank() == 0)
      std::cout << "sparse nonzero redistribution (" << comm.size()
                << " ranks, " << total << " nnz, "
                << stats.histogram_iterations
                << " histogram iterations on sparse input):\n";
    comm.barrier();
    std::cout << "  rank " << comm.rank() << ": " << before << " nnz in -> "
              << balanced.size() << " nnz out"
              << (io_rank ? "  (I/O rank)" : "") << "\n";
  });

  std::cout << "simulated makespan: " << team.stats().makespan_s << " s\n";
  return 0;
}
