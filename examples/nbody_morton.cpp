// N-body load balancing through space-filling curves — the use case the
// paper's introduction motivates: "Irregular applications, like N-Body
// particle simulations, can achieve load balancing through space filling
// curves (e.g., Morton Order) by sorting n-dimensional coordinates
// according to a projection into the 1-dimensional space."
//
// A Plummer-like clustered particle distribution is generated per rank
// (heavily skewed in space, so naive spatial bisection would be badly
// unbalanced), each particle is projected onto its 64-bit Morton code, and
// hds::core::sort_by_key redistributes whole particles so every rank owns a
// contiguous segment of the Z-order curve with exactly its original
// particle count — a perfectly balanced domain decomposition.
//
//   ./nbody_morton [--ranks=8] [--particles-per-rank=50000]
#include <cmath>
#include <iostream>

#include "common/morton.h"
#include "common/rng.h"
#include "core/histogram_sort.h"
#include "runtime/team.h"

namespace {

struct Particle {
  double x, y, z;
  double mass;
  hds::u64 morton;
};

/// Plummer-sphere-ish radial distribution around a cluster center: most
/// mass concentrated near the center — maximal skew for the sorter.
Particle sample_particle(hds::Xoshiro256& rng, double cx, double cy,
                         double cz) {
  const double r = 0.1 / std::sqrt(std::pow(rng.uniform01() + 1e-9, -2.0 / 3.0) - 1.0 + 1e-9);
  const double theta = std::acos(2.0 * rng.uniform01() - 1.0);
  const double phi = 2.0 * 3.14159265358979 * rng.uniform01();
  Particle p;
  p.x = cx + r * std::sin(theta) * std::cos(phi);
  p.y = cy + r * std::sin(theta) * std::sin(phi);
  p.z = cz + r * std::cos(theta);
  p.mass = 1.0 / (1.0 + rng.uniform01());
  p.morton = 0;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hds;
  int ranks = 8;
  usize per_rank = 50000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--ranks=", 0) == 0) ranks = std::stoi(arg.substr(8));
    if (arg.rfind("--particles-per-rank=", 0) == 0)
      per_rank = std::stoul(arg.substr(21));
  }

  runtime::Team team({.nranks = ranks});

  team.run([&](runtime::Comm& comm) {
    Xoshiro256 rng(hash_mix(7, comm.rank()));
    // Every rank samples from a few shared cluster centers: spatially the
    // particles are wildly interleaved across ranks.
    const double centers[3][3] = {
        {0.2, 0.2, 0.7}, {0.8, 0.5, 0.3}, {0.5, 0.9, 0.5}};
    std::vector<Particle> particles;
    particles.reserve(per_rank);
    for (usize i = 0; i < per_rank; ++i) {
      const auto& c = centers[rng() % 3];
      particles.push_back(sample_particle(rng, c[0], c[1], c[2]));
    }

    // Project each particle onto the Z-order curve over the unit cube.
    for (auto& p : particles) {
      p.morton = morton3(morton_quantize(p.x, 0.0, 1.0),
                         morton_quantize(p.y, 0.0, 1.0),
                         morton_quantize(p.z, 0.0, 1.0));
    }

    // One distributed sort by Morton key = a balanced SFC decomposition.
    const auto stats = core::sort_by_key(
        comm, particles, [](const Particle& p) { return p.morton; });

    // Every rank now owns a contiguous curve segment with its original
    // count (perfect partitioning): report segment extents and locality.
    const bool ok = core::is_globally_sorted(
        comm, std::span<const Particle>(particles.data(), particles.size()),
        [](const Particle& p) { return p.morton; });
    HDS_CHECK(ok);
    HDS_CHECK(particles.size() == per_rank);

    double cx = 0, cy = 0, cz = 0;
    for (const auto& p : particles) {
      cx += p.x;
      cy += p.y;
      cz += p.z;
    }
    cx /= particles.size();
    cy /= particles.size();
    cz /= particles.size();
    double spread = 0;
    for (const auto& p : particles)
      spread += (p.x - cx) * (p.x - cx) + (p.y - cy) * (p.y - cy) +
                (p.z - cz) * (p.z - cz);
    spread = std::sqrt(spread / particles.size());

    comm.barrier();
    if (comm.rank() == 0)
      std::cout << "Morton-order domain decomposition (" << comm.size()
                << " ranks x " << per_rank << " particles, "
                << stats.histogram_iterations << " histogram iterations):\n";
    comm.barrier();
    if (particles.empty())
      std::cout << "  rank " << comm.rank() << ": curve [empty]\n";
    else
      std::cout << "  rank " << comm.rank() << ": curve ["
                << particles.front().morton << " .. "
                << particles.back().morton << "], centroid (" << cx << ", "
                << cy << ", " << cz << "), rms spread " << spread << "\n";
  });

  std::cout << "simulated makespan: " << team.stats().makespan_s << " s\n";
  return 0;
}
