#include "runtime/team.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>

#include "check/race_detector.h"
#include "common/error.h"
#include "obs/report.h"
#include "obs/tracer.h"
#include "runtime/comm.h"
#include "runtime/fault.h"

namespace hds::runtime {

namespace detail {

CommState::CommState(std::vector<rank_t> member_ranks,
                     const net::MachineModel& m,
                     const std::atomic<bool>* abort_flag,
                     model::ScheduleHook* hook)
    : members(std::move(member_ranks)),
      barrier(static_cast<int>(members.size()), abort_flag, hook) {
  HDS_CHECK(!members.empty());
  std::vector<int> nodes;
  nodes.reserve(members.size());
  for (rank_t r : members) nodes.push_back(m.node_of(r));
  std::sort(nodes.begin(), nodes.end());
  nodes_spanned =
      static_cast<int>(std::unique(nodes.begin(), nodes.end()) - nodes.begin());
  for (auto& ep : epochs) {
    ep.slots.resize(members.size());
    ep.out_off.resize(members.size());
    ep.out_len.resize(members.size());
  }
}

}  // namespace detail

Team::Team(TeamConfig cfg) : cfg_(cfg) {
  HDS_CHECK(cfg_.nranks >= 1);
  HDS_CHECK(cfg_.data_scale > 0.0);
  if (cfg_.machine.total_ranks() != cfg_.nranks) {
    // No explicit placement given: host all ranks on one node.
    cfg_.machine.nodes = 1;
    cfg_.machine.ranks_per_node = cfg_.nranks;
  }
  cost_ = net::CostModel(cfg_.machine, cfg_.data_scale);
  std::vector<rank_t> all(cfg_.nranks);
  for (int r = 0; r < cfg_.nranks; ++r) all[r] = r;
  world_ = std::make_unique<detail::CommState>(std::move(all), cfg_.machine,
                                               &abort_, cfg_.model);
  clocks_.resize(cfg_.nranks);
  final_times_.resize(cfg_.nranks, 0.0);
  progress_ = std::make_unique<detail::ProgressState[]>(
      static_cast<usize>(cfg_.nranks));
  tracers_.reserve(static_cast<usize>(cfg_.nranks));
  for (int r = 0; r < cfg_.nranks; ++r)
    tracers_.push_back(std::make_unique<obs::RankTracer>(cfg_.trace_ring));
  metrics_.resize(static_cast<usize>(cfg_.nranks));
  scratch_.resize(static_cast<usize>(cfg_.nranks));
  if (cfg_.check.enabled)
    detector_ = std::make_unique<check::RaceDetector>(cfg_.check);
}

const check::CheckReport* Team::check_report() const {
  return detector_ ? &detector_->report() : nullptr;
}

Team::~Team() = default;

void Team::run(const std::function<void(Comm&)>& fn) {
  abort_.store(false, std::memory_order_relaxed);
  first_error_ = nullptr;
  first_error_is_abort_ = false;
  {
    std::lock_guard lock(rec_mu_);
    failed_.clear();
    rec_waiting_.clear();
    rec_pending_ = false;
    rec_fatal_ = false;
    rec_rounds_ = 0;
    rec_last_ = RecoveryOutcome{};
  }
  for (auto& c : clocks_) c.reset();
  {
    std::lock_guard lock(subteam_mu_);
    subteams_.clear();
  }
  mailboxes_.clear();
  mailboxes_.reserve(cfg_.nranks);
  for (int r = 0; r < cfg_.nranks; ++r)
    mailboxes_.push_back(std::make_unique<Mailbox>(&abort_, r, cfg_.model));
  for (int r = 0; r < cfg_.nranks; ++r) progress_[r].reset();
  trace_report_.reset();
  for (auto& m : metrics_) m.reset();
  for (int r = 0; r < cfg_.nranks; ++r) {
    tracers_[r]->reset();
    tracers_[r]->set_enabled(cfg_.trace);
    clocks_[r].set_sink(cfg_.trace ? tracers_[r].get() : nullptr);
  }
  if (cfg_.fault) cfg_.fault->begin_run(cfg_.nranks);
  if (detector_) detector_->begin_run(cfg_.nranks, tracers_);

  std::atomic<int> done{0};
  std::thread watchdog;
  // A controlled run is wall-clock unbounded by design (parked ranks are
  // a scheduler decision, not a hang); the scheduler's own deadlock/budget
  // detection replaces the watchdog.
  if (cfg_.watchdog_timeout_s > 0.0 && cfg_.model == nullptr) {
    {
      std::lock_guard lock(watchdog_mu_);
      watchdog_stop_ = false;
    }
    watchdog = std::thread([this, &done] { watchdog_loop(done); });
  }

  std::vector<std::thread> threads;
  threads.reserve(cfg_.nranks);
  for (int r = 0; r < cfg_.nranks; ++r) {
    threads.emplace_back([this, &fn, r, &done] {
      if (cfg_.model) cfg_.model->rank_started(r);
      Comm comm(this, world_.get(), r);
      try {
        fn(comm);
      } catch (...) {
        record_error(std::current_exception());
      }
      progress_[r].done.store(1, std::memory_order_relaxed);
      done.fetch_add(1, std::memory_order_relaxed);
      // The agreement rendezvous waits on thread exits (failed ranks must
      // be gone, live ranks must not be silently abandoned); the empty
      // critical section orders the done-store before the wakeup.
      { std::lock_guard lock(rec_mu_); }
      rec_cv_.notify_all();
      // Release the scheduling baton last: by now every observable effect
      // of this rank (done flag included) is published.
      if (cfg_.model) cfg_.model->rank_finished();
    });
  }
  for (auto& t : threads) t.join();
  if (watchdog.joinable()) {
    {
      std::lock_guard lock(watchdog_mu_);
      watchdog_stop_ = true;
    }
    watchdog_cv_.notify_all();
    watchdog.join();
  }

  for (int r = 0; r < cfg_.nranks; ++r) {
    clocks_[r].set_sink(nullptr);
    tracers_[r]->finalize();
  }

  // Stats are published before the error check so a failed run still
  // reports how far the simulated clocks got (recovery studies charge the
  // aborted attempt's time against the recovery strategy).
  stats_ = net::TeamStats{};
  for (int r = 0; r < cfg_.nranks; ++r) {
    final_times_[r] = clocks_[r].now();
    stats_.makespan_s = std::max(stats_.makespan_s, clocks_[r].now());
    for (usize p = 0; p < net::kPhaseCount; ++p)
      stats_.phase_s[p] +=
          clocks_[r].phase_seconds(static_cast<net::Phase>(p));
  }
  for (auto& v : stats_.phase_s) v /= cfg_.nranks;

  if (first_error_) {
    bool swallow = false;
    if (cfg_.recoverable) {
      // A recovered run ends with the victims' rank_failed (abort-class in
      // recoverable mode) still recorded. If agreement completed, nothing
      // worse was recorded, and every survivor returned normally, the run
      // succeeded on the shrunken team — swallow the failure record.
      std::lock_guard lock(rec_mu_);
      swallow = first_error_is_abort_ && !failed_.empty() &&
                rec_rounds_ > 0 && !rec_pending_ && !rec_fatal_;
    }
    if (!swallow) std::rethrow_exception(first_error_);
    first_error_ = nullptr;
    first_error_is_abort_ = false;
  }

  if (cfg_.trace) {
    auto rep = std::make_unique<obs::TraceReport>();
    rep->nranks = cfg_.nranks;
    rep->makespan_s = stats_.makespan_s;
    rep->events.reserve(static_cast<usize>(cfg_.nranks));
    rep->details.reserve(static_cast<usize>(cfg_.nranks));
    rep->clock_phase_s.reserve(static_cast<usize>(cfg_.nranks));
    for (int r = 0; r < cfg_.nranks; ++r) {
      rep->events.push_back(tracers_[r]->take_events());
      rep->details.push_back(tracers_[r]->take_details());
      std::array<double, net::kPhaseCount> ph{};
      for (usize p = 0; p < net::kPhaseCount; ++p)
        ph[p] = clocks_[r].phase_seconds(static_cast<net::Phase>(p));
      rep->clock_phase_s.push_back(ph);
    }
    rep->metrics = metrics_;
    trace_report_ = std::move(rep);
  }

  if (detector_ && cfg_.check.fail_on_violation &&
      !detector_->report().clean())
    throw check::pgas_violation(detector_->report().summary());
}

int Team::run_with_retry(const std::function<void(Comm&)>& fn,
                         const RetryPolicy& policy,
                         const std::function<void(int)>& before_attempt) {
  HDS_CHECK(policy.max_attempts >= 1);
  double backoff = policy.backoff_s;
  for (int attempt = 1;; ++attempt) {
    if (before_attempt) before_attempt(attempt);
    try {
      run(fn);
      return attempt;
    } catch (...) {
      if (attempt >= policy.max_attempts) throw;
    }
    if (backoff > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      backoff *= policy.backoff_multiplier;
    }
  }
}

void Team::watchdog_loop(const std::atomic<int>& done) {
  using clock = std::chrono::steady_clock;
  const double timeout = cfg_.watchdog_timeout_s;
  const auto poll = std::chrono::duration<double>(
      std::clamp(timeout / 8.0, 0.001, 0.1));

  auto snapshot = [&] {
    // ops and done only ever increase within a run, so an unchanged sum
    // means no rank completed an op or exited since the last sample.
    u64 s = static_cast<u64>(done.load(std::memory_order_relaxed));
    for (int r = 0; r < cfg_.nranks; ++r)
      s += progress_[r].ops.load(std::memory_order_relaxed);
    return s;
  };

  u64 last = snapshot();
  auto last_change = clock::now();
  for (;;) {
    {
      std::unique_lock lock(watchdog_mu_);
      if (watchdog_cv_.wait_for(lock, poll, [&] { return watchdog_stop_; }))
        return;
    }
    if (done.load(std::memory_order_relaxed) >= cfg_.nranks) return;
    const u64 s = snapshot();
    if (s != last) {
      last = s;
      last_change = clock::now();
      continue;
    }
    const double stalled =
        std::chrono::duration<double>(clock::now() - last_change).count();
    if (stalled < timeout) continue;
    record_error(
        std::make_exception_ptr(watchdog_timeout(progress_dump(stalled))));
    return;
  }
}

std::string Team::progress_dump(double stalled_s) const {
  std::ostringstream os;
  os << "watchdog: no progress on any rank for " << stalled_s
     << "s (timeout " << cfg_.watchdog_timeout_s << "s); per-rank state:";
  for (int r = 0; r < cfg_.nranks; ++r) {
    const auto& ps = progress_[r];
    os << "\n  rank " << r << ": ";
    if (ps.done.load(std::memory_order_relaxed)) {
      os << "done";
      continue;
    }
    os << "ops=" << ps.ops.load(std::memory_order_relaxed);
    const u32 op = ps.last_op.load(std::memory_order_relaxed);
    os << ", last_op="
       << (op == 0 ? std::string_view("none")
                   : detail::op_name(static_cast<detail::OpId>(op)));
    switch (static_cast<detail::WaitSite>(
        ps.site.load(std::memory_order_relaxed))) {
      case detail::WaitSite::None:
        os << ", site=running";
        break;
      case detail::WaitSite::Barrier:
        os << ", site=barrier";
        break;
      case detail::WaitSite::MailboxRecv:
        os << ", site=mailbox(src="
           << ps.wait_src.load(std::memory_order_relaxed)
           << ", tag=" << ps.wait_tag.load(std::memory_order_relaxed) << ")";
        break;
      case detail::WaitSite::Recovery:
        os << ", site=recovery-rendezvous";
        break;
    }
    os << ", sim_clock=" << ps.sim_clock.load(std::memory_order_relaxed)
       << "s";
    if (r < static_cast<int>(mailboxes_.size()) && mailboxes_[r]) {
      const usize pending = mailboxes_[r]->pending();
      if (pending > 0) {
        os << ", inbox=" << pending << " undelivered [";
        bool first = true;
        for (const auto& [src, tag] : mailboxes_[r]->pending_channels()) {
          if (!first) os << ", ";
          first = false;
          os << "(src=" << src << ", tag=" << tag << ")";
        }
        if (pending > 4) os << ", ...";
        os << "]";
      }
    }
    // Ring of recent ops (obs::RankTracer): the dump shows the last few
    // ops of every rank, not just the most recent one, so the divergence
    // point of a hang (e.g. one rank short a barrier) is visible.
    const auto recent = tracers_[r]->ring_snapshot();
    if (!recent.empty()) {
      os << "\n    recent ops (oldest first):";
      for (const auto& e : recent) {
        os << "\n      #" << e.seq << " " << obs::op_kind_name(e.op)
           << " phase=" << net::phase_name(e.phase) << " t=" << e.t << "s";
        if (e.bytes > 0) os << " bytes=" << e.bytes;
        if (e.peer >= 0) os << " peer=" << e.peer;
        if (e.op == obs::OpKind::Send || e.op == obs::OpKind::Recv)
          os << " tag=" << e.tag;
      }
    }
  }
  os << "\n  world barrier: " << world_->barrier.waiting() << "/"
     << world_->barrier.participants() << " ranks parked";
  return os.str();
}

detail::CommState* Team::register_subteam(
    std::unique_ptr<detail::CommState> state) {
  std::lock_guard lock(subteam_mu_);
  subteams_.push_back(std::move(state));
  return subteams_.back().get();
}

void Team::record_error(std::exception_ptr ep) {
  bool is_abort = false;
  try {
    std::rethrow_exception(ep);
  } catch (const rank_failed&) {
    // In recoverable mode a rank failure is abort-class: survivors may
    // complete the run without it, and Team::run swallows it afterwards.
    is_abort = cfg_.recoverable;
  } catch (const team_aborted&) {
    is_abort = true;
  } catch (...) {
  }
  {
    std::lock_guard lock(err_mu_);
    if (!first_error_ || (first_error_is_abort_ && !is_abort)) {
      first_error_ = ep;
      first_error_is_abort_ = is_abort;
    }
  }
  abort_.store(true, std::memory_order_relaxed);
  poison_all();
  if (cfg_.recoverable && !is_abort) {
    // A non-failure error (check failure, watchdog, user exception) makes
    // the run unrecoverable: wake any parked survivors so they abort
    // instead of waiting for an agreement that can never complete.
    {
      std::lock_guard lock(rec_mu_);
      rec_fatal_ = true;
    }
    rec_cv_.notify_all();
  }
}

void Team::poison_all() {
  world_->barrier.poison();
  {
    std::lock_guard lock(subteam_mu_);
    for (auto& st : subteams_) st->barrier.poison();
  }
  for (auto& mb : mailboxes_) mb->poison();
}

void Team::note_rank_failure(rank_t world) {
  {
    std::lock_guard lock(rec_mu_);
    if (std::find(failed_.begin(), failed_.end(), world) == failed_.end())
      failed_.push_back(world);
    rec_pending_ = true;
  }
  abort_.store(true, std::memory_order_relaxed);
  poison_all();
  rec_cv_.notify_all();
}

std::vector<rank_t> Team::failures() const {
  std::lock_guard lock(rec_mu_);
  return failed_;
}

u64 Team::recovery_rounds() const {
  std::lock_guard lock(rec_mu_);
  return rec_rounds_;
}

Team::RecoveryOutcome Team::recover(rank_t world) {
  std::unique_lock lock(rec_mu_);
  const u64 round = rec_rounds_;
  rec_waiting_.push_back(world);
  rec_cv_.notify_all();
  auto unpark = [&] {
    auto it = std::find(rec_waiting_.begin(), rec_waiting_.end(), world);
    if (it != rec_waiting_.end()) rec_waiting_.erase(it);
  };
  auto is_failed = [&](rank_t r) {
    return std::find(failed_.begin(), failed_.end(), r) != failed_.end();
  };
  for (;;) {
    if (rec_fatal_) {
      unpark();
      throw team_aborted();
    }
    if (rec_rounds_ > round) return rec_last_;  // another survivor rebuilt

    bool all_failed_done = true;
    for (rank_t f : failed_)
      if (!progress_[f].done.load(std::memory_order_relaxed))
        all_failed_done = false;
    bool all_live_parked = true;
    for (int r = 0; r < cfg_.nranks; ++r) {
      if (is_failed(r)) continue;
      if (std::find(rec_waiting_.begin(), rec_waiting_.end(), r) !=
          rec_waiting_.end())
        continue;
      all_live_parked = false;
      if (progress_[r].done.load(std::memory_order_relaxed)) {
        // A live rank already returned from fn: it can never join this
        // rendezvous, so the survivor set cannot reach agreement.
        rec_fatal_ = true;
        rec_cv_.notify_all();
        unpark();
        throw team_aborted();
      }
    }

    if (all_live_parked && all_failed_done && rec_pending_) {
      // This thread performs the round's rebuild: every survivor is parked
      // right here and every failed thread has exited, so nobody else can
      // touch clocks, tracers, or mailboxes concurrently — and no stale
      // BorrowToken can still be draining once the abort flag is lifted.
      std::vector<rank_t> survivors;
      for (int r = 0; r < cfg_.nranks; ++r)
        if (!is_failed(r)) survivors.push_back(r);
      HDS_CHECK(!survivors.empty());
      for (rank_t s : survivors) mailboxes_[s]->reset();
      auto st = std::make_unique<detail::CommState>(survivors, cfg_.machine,
                                                    &abort_, cfg_.model);
      detail::CommState* ptr = register_subteam(std::move(st));
      if (auto* rd = race_detector())
        // The agreement is a full join over the survivors: everything any
        // survivor did before the failure happens-before everything any
        // survivor does after recovery.
        rd->on_collective(ptr, obs::OpKind::Agree, ptr->members,
                          /*root_member=*/-1);
      double latest = 0.0;
      for (rank_t s : survivors)
        latest = std::max(latest, clocks_[s].now());
      rec_last_ = RecoveryOutcome{
          ptr, latest + cost_.detect_and_agree(
                            static_cast<int>(survivors.size()))};
      abort_.store(false, std::memory_order_relaxed);
      rec_pending_ = false;
      ++rec_rounds_;
      rec_waiting_.clear();
      rec_cv_.notify_all();
      return rec_last_;
    }
    if (cfg_.model != nullptr) {
      // Controlled schedule: park through the scheduler instead of the
      // condition variable. The predicate recomputes exactly the loop's
      // actionable conditions, so a resumed rank always makes progress.
      lock.unlock();
      cfg_.model->park(model::Site::Recovery, this, static_cast<u64>(world),
                       round,
                       [this, world, round] {
                         return recovery_actionable(world, round);
                       });
      lock.lock();
      if (cfg_.model->run_abandoned()) {
        // Scheduler abandoned the run (deadlock elsewhere / budget): unwind.
        unpark();
        throw team_aborted();
      }
    } else {
      rec_cv_.wait(lock);
    }
  }
}

bool Team::recovery_actionable(rank_t world, u64 round) const {
  std::lock_guard lock(rec_mu_);
  if (rec_fatal_ || rec_rounds_ > round) return true;
  auto is_failed = [&](rank_t r) {
    return std::find(failed_.begin(), failed_.end(), r) != failed_.end();
  };
  bool all_failed_done = true;
  for (rank_t f : failed_)
    if (!progress_[f].done.load(std::memory_order_relaxed))
      all_failed_done = false;
  bool all_live_parked = true;
  for (int r = 0; r < cfg_.nranks; ++r) {
    if (is_failed(r)) continue;
    if (std::find(rec_waiting_.begin(), rec_waiting_.end(), r) !=
        rec_waiting_.end())
      continue;
    all_live_parked = false;
    // A live rank finished without joining: the fatal path is actionable.
    if (progress_[r].done.load(std::memory_order_relaxed)) return true;
  }
  (void)world;
  return all_live_parked && all_failed_done && rec_pending_;
}

usize Team::undelivered_messages() const {
  usize total = 0;
  for (const auto& mb : mailboxes_) total += mb->pending();
  return total;
}

std::vector<std::string> Team::model_quiescence_issues() const {
  std::vector<std::string> issues;
  for (int r = 0; r < cfg_.nranks; ++r) {
    const usize pending = mailboxes_[r]->pending();
    if (pending == 0) continue;
    std::ostringstream os;
    os << "rank " << r << ": " << pending << " undelivered message(s)";
    for (auto [src, tag] : mailboxes_[r]->pending_channels())
      os << " (src=" << src << ", tag=" << tag << ")";
    issues.push_back(os.str());
  }
  // The epoch arena's gate *is* the barrier: a nonzero waiter count after
  // every rank returned means some collective epoch never closed (a rank
  // withdrew or skipped), i.e. the arena was left un-reset.
  auto check_barrier = [&](const detail::CommState& st, const std::string& what) {
    if (st.barrier.waiting() != 0) {
      std::ostringstream os;
      os << what << ": barrier/epoch arena not reset ("
         << st.barrier.waiting() << " arrival(s) recorded)";
      issues.push_back(os.str());
    }
  };
  check_barrier(*world_, "world");
  {
    std::lock_guard lock(subteam_mu_);
    for (usize i = 0; i < subteams_.size(); ++i)
      check_barrier(*subteams_[i], "subteam " + std::to_string(i));
  }
  return issues;
}

Comm Comm::split(int color, int key) {
  struct CK {
    int color;
    int key;
  };
  struct Assignment {
    detail::CommState* state;
    int idx;
  };
  const CK my{color, key};
  auto& ep = collective(
      detail::OpId::Split, obs::OpClass::Tree, &my, sizeof(CK), nullptr,
      [&](detail::EpochArena& a) {
        const int P = size();
        struct Ent {
          int color;
          int key;
          int member;
        };
        std::vector<Ent> ents(P);
        for (int r = 0; r < P; ++r) {
          const CK* ck = static_cast<const CK*>(a.slots[r].in);
          ents[r] = Ent{ck->color, ck->key, r};
        }
        std::sort(ents.begin(), ents.end(), [](const Ent& x, const Ent& y) {
          return std::tie(x.color, x.key, x.member) <
                 std::tie(y.color, y.key, y.member);
        });
        a.result.resize(sizeof(Assignment) * P);
        auto* out = reinterpret_cast<Assignment*>(a.result.data());
        usize i = 0;
        while (i < ents.size()) {
          usize j = i;
          while (j < ents.size() && ents[j].color == ents[i].color) ++j;
          std::vector<rank_t> group;
          group.reserve(j - i);
          for (usize k = i; k < j; ++k)
            group.push_back(state_->members[ents[k].member]);
          auto st = std::make_unique<detail::CommState>(
              std::move(group), cost().machine(), &team_->abort_,
              team_->cfg_.model);
          detail::CommState* ptr = team_->register_subteam(std::move(st));
          for (usize k = i; k < j; ++k)
            out[ents[k].member] = Assignment{ptr, static_cast<int>(k - i)};
          i = j;
        }
        for (int r = 0; r < P; ++r) {
          a.out_off[r] = sizeof(Assignment) * static_cast<usize>(r);
          a.out_len[r] = sizeof(Assignment);
        }
        // MPI_Comm_split: an allgather of (color, key) plus linear local
        // processing — the blocking O(P) cost Sec. III-C warns about.
        return cost().allgather(P, nodes(), sizeof(CK),
                                net::Traffic::Control) +
               5.0e-8 * static_cast<double>(P);
      });
  Assignment assign;
  std::memcpy(&assign, ep.result.data() + ep.out_off[idx_],
              sizeof(Assignment));
  finish(ep);
  return Comm(team_, assign.state, assign.idx);
}

}  // namespace hds::runtime
