// In-memory buddy-replicated checkpoint store (PR 6).
//
// Models the checkpointing substrate of a shrink-to-survivors recovery
// scheme (ULFM-style, PAPERS.md arxiv 1610.01482): at every superstep
// boundary each rank serializes its compact sort state and replicates it to
// a buddy rank, so a single rank failure never loses state — the primary
// copy dies with the owner, the replica survives on the buddy. The store is
// process memory standing in for the ranks' address spaces; which copies a
// failure destroys is tracked explicitly (mark_lost), and the runtime
// charges the simulated transfer costs through Comm::checkpoint_to_buddy /
// Comm::fetch_checkpoint so the machine model sees every byte that would
// cross the wire.
//
// Thread-safe: rank threads save concurrently; loads and mark_lost are
// called from recovery paths. One store instance spans the attempts of a
// resilient sort, so it deliberately lives OUTSIDE Team::run state.
#pragma once

#include <mutex>
#include <optional>
#include <vector>

#include "common/error.h"
#include "common/types.h"

namespace hds::runtime {

/// One loaded checkpoint: the serialized state plus where it was served
/// from, so the caller can charge the transfer if it crossed ranks.
struct CheckpointBlob {
  u64 step = 0;
  std::vector<std::byte> bytes;
  rank_t holder = -1;         ///< world rank whose memory served the copy
  bool from_replica = false;  ///< true if the primary was lost
};

class CheckpointStore {
 public:
  explicit CheckpointStore(int nranks) : entries_(static_cast<usize>(nranks)) {
    HDS_CHECK(nranks >= 1);
  }

  CheckpointStore(const CheckpointStore&) = delete;
  CheckpointStore& operator=(const CheckpointStore&) = delete;

  int nranks() const { return static_cast<int>(entries_.size()); }

  /// Default replication placement: the next rank, cyclically — adjacent
  /// ranks share a node under blockwise layout, which keeps the replication
  /// traffic on the cheap intra-node path for all but one rank per node.
  static rank_t buddy_of(rank_t r, int nranks) {
    return (r + 1) % static_cast<rank_t>(nranks);
  }

  /// Store `owner`'s checkpoint for superstep boundary `step`: primary in
  /// the owner's memory, replica in `buddy`'s. Overwrites any previous
  /// checkpoint at the same step (retries re-execute boundaries).
  void save(rank_t owner, rank_t buddy, u64 step,
            std::vector<std::byte> bytes) {
    std::lock_guard lock(mu_);
    auto& slots = entries_.at(static_cast<usize>(owner));
    for (auto& e : slots) {
      if (e.step == step) {
        e = Entry{step, buddy, true, true, std::move(bytes)};
        return;
      }
    }
    slots.push_back(Entry{step, buddy, true, true, std::move(bytes)});
  }

  /// Highest step for which a copy of `owner`'s checkpoint survives, or -1.
  i64 latest_step(rank_t owner) const {
    std::lock_guard lock(mu_);
    i64 best = -1;
    for (const auto& e : entries_.at(static_cast<usize>(owner)))
      if ((e.primary || e.replica) && static_cast<i64>(e.step) > best)
        best = static_cast<i64>(e.step);
    return best;
  }

  bool available(rank_t owner, u64 step) const {
    std::lock_guard lock(mu_);
    for (const auto& e : entries_.at(static_cast<usize>(owner)))
      if (e.step == step) return e.primary || e.replica;
    return false;
  }

  /// Fetch `owner`'s checkpoint at `step`: the primary if the owner's
  /// memory is intact, else the buddy replica, else nullopt (both copies
  /// lost — a correlated owner+buddy failure).
  std::optional<CheckpointBlob> load(rank_t owner, u64 step) const {
    std::lock_guard lock(mu_);
    for (const auto& e : entries_.at(static_cast<usize>(owner))) {
      if (e.step != step) continue;
      if (!e.primary && !e.replica) return std::nullopt;
      CheckpointBlob out;
      out.step = step;
      out.bytes = e.bytes;
      out.holder = e.primary ? owner : e.buddy;
      out.from_replica = !e.primary;
      return out;
    }
    return std::nullopt;
  }

  /// A rank died: its memory is gone. Drops every primary it owned and
  /// every replica it was holding for others; checkpoints with no surviving
  /// copy release their bytes.
  void mark_lost(rank_t dead) {
    std::lock_guard lock(mu_);
    for (auto& slots : entries_)
      for (auto& e : slots) {
        if (e.buddy == dead) e.replica = false;
        if (!e.primary && !e.replica) e.bytes.clear();
      }
    for (auto& e : entries_.at(static_cast<usize>(dead))) {
      e.primary = false;
      if (!e.replica) e.bytes.clear();
    }
  }

  void clear() {
    std::lock_guard lock(mu_);
    for (auto& slots : entries_) slots.clear();
  }

 private:
  struct Entry {
    u64 step = 0;
    rank_t buddy = -1;
    bool primary = false;  ///< owner's copy intact
    bool replica = false;  ///< buddy's copy intact
    std::vector<std::byte> bytes;
  };

  mutable std::mutex mu_;
  /// entries_[owner]: one Entry per checkpointed superstep boundary.
  std::vector<std::vector<Entry>> entries_;
};

}  // namespace hds::runtime
