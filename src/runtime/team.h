// Team: the process-local stand-in for an MPI job. Each rank runs as a
// std::thread; collectives operate through shared memory with the same
// blocking bulk-synchronous semantics MPI provides. A per-rank SimClock is
// advanced by analytic computation charges and synchronized at collectives
// using the net::CostModel, which is what makes single-box runs reproduce
// cluster-scale timing shapes.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "check/config.h"
#include "common/types.h"
#include "net/cost_model.h"
#include "net/machine.h"
#include "net/sim.h"
#include "obs/metrics.h"
#include "runtime/barrier.h"
#include "runtime/mailbox.h"

namespace hds::obs {
class RankTracer;
struct TraceReport;
}  // namespace hds::obs

namespace hds::check {
class RaceDetector;
struct CheckReport;
}  // namespace hds::check

namespace hds::model {
class ControlledScheduler;
class ScheduleRecorder;
}  // namespace hds::model

namespace hds::runtime {

class BorrowToken;
class Comm;
class FaultPlan;

struct TeamConfig {
  int nranks = 4;
  /// Machine the cost model charges against. If its rank layout does not
  /// cover `nranks`, it is replaced by a single node hosting all ranks.
  net::MachineModel machine{};
  /// Virtual workload multiplier: data-volume cost terms and computation
  /// charges are scaled by this factor (see net::CostModel).
  double data_scale = 1.0;
  /// Wall-clock no-progress bound: if no rank completes an op (or exits)
  /// for this long while a run is in flight, the watchdog aborts the run
  /// with a watchdog_timeout carrying a per-rank diagnostic dump instead of
  /// letting a lost message or mismatched op sequence hang forever.
  /// 0 disables the watchdog.
  double watchdog_timeout_s = 60.0;
  /// Optional deterministic fault schedule (see runtime/fault.h). The
  /// explicit initializer keeps designated-initializer construction
  /// (`TeamConfig{.nranks = p}`) free of -Wmissing-field-initializers.
  std::shared_ptr<FaultPlan> fault = nullptr;
  /// Record a full per-rank event trace during run(), merged afterwards
  /// into the TraceReport returned by Team::trace(). Tracing observes the
  /// simulation without charging it: simulated times are bit-identical
  /// with the toggle on or off, and with it off the trace buffers are
  /// never allocated.
  bool trace = false;
  /// Capacity of the always-on per-rank ring of recent ops that the
  /// watchdog's abort dump prints (independent of `trace`); 0 disables it.
  usize trace_ring = 16;
  /// PGAS happens-before race checking (see check/race_detector.h). Like
  /// tracing, checking observes the simulation without charging it:
  /// simulated times are bit-identical with the checker on or off, and
  /// with it off no checker state is ever allocated.
  check::CheckConfig check{};
  /// Recoverable failure semantics (ULFM-style shrink-to-survivors): an
  /// injected rank_failed no longer dooms the run. Survivors that catch
  /// team_aborted may call Comm::recover_survivors() to rendezvous, agree
  /// on the survivor set, and continue on a fresh sub-communicator; if
  /// every survivor then returns normally, Team::run succeeds. Off by
  /// default — the default abort semantics (and simulated times) are
  /// unchanged.
  bool recoverable = false;
  /// Controlled-scheduling hook (hds::model, DESIGN.md sec. 15): when set,
  /// every blocking site parks through it and a single enabled rank runs at
  /// a time under the hook's chosen interleaving. Non-owning; null (the
  /// default) means production behavior, bit-identical to pre-model builds.
  model::ScheduleHook* model = nullptr;
  /// Symbolic schedule recorder (hds::model static matcher): when set,
  /// every Comm::note_op appends (rank, op, communicator signature, peer,
  /// tag) to the recorder without changing payload movement or simulated
  /// time. Non-owning; null by default.
  model::ScheduleRecorder* recorder = nullptr;
};

/// Bounded-retry policy for Team::run_with_retry. Backoff is wall-clock:
/// attempt i (0-based) sleeps backoff_s * backoff_multiplier^(i-1) before
/// re-running.
struct RetryPolicy {
  int max_attempts = 3;
  double backoff_s = 0.0;
  double backoff_multiplier = 2.0;
};

namespace detail {

/// One rank's contribution to the collective in flight.
struct PubSlot {
  const void* in = nullptr;
  usize bytes = 0;
  const usize* counts = nullptr;  ///< optional per-destination element counts
  double clock = 0.0;
  u32 op_id = 0;   ///< collective type, checked in debug builds
  u32 flags = 0;   ///< op-specific bits (kSlotWantsCounts)
};

/// PubSlot flag: this member passed a recv_counts out-parameter, so the
/// packed alltoallv must persist the counts matrix in the arena.
inline constexpr u32 kSlotWantsCounts = 1u;

/// Pooled, grow-only byte buffer for collective results. Unlike
/// std::vector, resize() never zero-initializes — the executor overwrites
/// every byte it later hands out — and the allocation is reused across
/// epochs, so steady-state collectives allocate nothing. Contents are
/// undefined after a growing resize (the previous bytes are not carried
/// over, which no collective relies on: each op fills its result from
/// scratch).
class ArenaBuffer {
 public:
  std::byte* data() { return buf_.get(); }
  const std::byte* data() const { return buf_.get(); }
  usize size() const { return len_; }
  bool empty() const { return len_ == 0; }
  void clear() { len_ = 0; }

  void resize(usize n) {
    if (n > cap_) {
      const usize grown = std::max(n, cap_ * 2);
      buf_ = std::make_unique_for_overwrite<std::byte[]>(grown);
      cap_ = grown;
    }
    len_ = n;
  }

 private:
  std::unique_ptr<std::byte[]> buf_;
  usize cap_ = 0;
  usize len_ = 0;
};

/// Double-buffered collective arena (one per parity) — two barriers per
/// collective suffice because slots of parity e are not republished before
/// every rank has finished reading epoch e's result (see Comm::collective).
/// `scratch_a/b` are executor-only scratch vectors (cost matrices, count
/// staging) pooled across epochs so per-collective allocation churn stays
/// off the data path.
struct EpochArena {
  std::vector<PubSlot> slots;
  ArenaBuffer result;
  std::vector<usize> out_off;
  std::vector<usize> out_len;
  std::vector<usize> scratch_a;
  std::vector<usize> scratch_b;
  double sync_time = 0.0;
  /// Model cost the executor computed for this collective (sync_time =
  /// latest entry + model_cost). Read by every member in Comm::finish under
  /// the same barrier-2 ordering that makes sync_time safe to read.
  double model_cost = 0.0;
};

/// Where a rank is blocked, for the watchdog's diagnostic dump.
enum class WaitSite : u32 {
  None = 0,
  Barrier = 1,
  MailboxRecv = 2,
  Recovery = 3,  ///< parked in the survivor-agreement rendezvous
};

/// Per-rank progress ledger, written only by the owning rank's thread and
/// read by the watchdog. `ops` increases monotonically within a run, so the
/// watchdog's progress signal is simply "sum over ranks changed".
struct ProgressState {
  std::atomic<u64> ops{0};        ///< communication ops started this run
  std::atomic<u32> last_op{0};    ///< OpId of the most recent op (0 = none)
  std::atomic<u32> site{0};       ///< WaitSite the rank is blocked at
  std::atomic<u64> wait_src{0};   ///< world rank awaited (MailboxRecv)
  std::atomic<u64> wait_tag{0};   ///< tag awaited (MailboxRecv)
  std::atomic<double> sim_clock{0.0};  ///< rank's SimClock at last op
  std::atomic<u32> done{0};       ///< rank's thread has exited

  void reset() {
    ops.store(0, std::memory_order_relaxed);
    last_op.store(0, std::memory_order_relaxed);
    site.store(0, std::memory_order_relaxed);
    wait_src.store(0, std::memory_order_relaxed);
    wait_tag.store(0, std::memory_order_relaxed);
    sim_clock.store(0.0, std::memory_order_relaxed);
    done.store(0, std::memory_order_relaxed);
  }
};

/// RAII marker for a blocking wait: sets the rank's waiting site on entry
/// and clears it on exit (including unwind via team_aborted).
class SiteScope {
 public:
  SiteScope(ProgressState& ps, WaitSite site, u64 src = 0, u64 tag = 0)
      : ps_(ps) {
    ps_.wait_src.store(src, std::memory_order_relaxed);
    ps_.wait_tag.store(tag, std::memory_order_relaxed);
    ps_.site.store(static_cast<u32>(site), std::memory_order_relaxed);
  }
  ~SiteScope() {
    ps_.site.store(static_cast<u32>(WaitSite::None),
                   std::memory_order_relaxed);
  }
  SiteScope(const SiteScope&) = delete;
  SiteScope& operator=(const SiteScope&) = delete;

 private:
  ProgressState& ps_;
};

/// Shared state of one communicator (the world or a split subgroup).
struct CommState {
  CommState(std::vector<rank_t> member_ranks, const net::MachineModel& m,
            const std::atomic<bool>* abort_flag,
            model::ScheduleHook* hook = nullptr);

  std::vector<rank_t> members;  ///< world ranks, ordered by split key
  int nodes_spanned = 1;
  Barrier barrier;
  std::array<EpochArena, 2> epochs;
};

}  // namespace detail

class Team {
 public:
  explicit Team(TeamConfig cfg);
  ~Team();

  Team(const Team&) = delete;
  Team& operator=(const Team&) = delete;

  /// Run `fn` on every rank; blocks until all ranks return. Clocks are
  /// reset first. If a rank throws, the team is poisoned, remaining ranks
  /// unwind via team_aborted, and the original exception is rethrown here.
  /// With a watchdog timeout configured, a wall-clock hang (lost message,
  /// mismatched op sequence) is converted into a watchdog_timeout abort.
  void run(const std::function<void(Comm&)>& fn);

  /// Run `fn` with bounded retries: on failure the run is repeated (after
  /// the policy's backoff) up to max_attempts times; the last error is
  /// rethrown if every attempt fails. `before_attempt`, if set, runs before
  /// each attempt (1-based) so the caller can restore per-attempt state.
  /// Returns the number of attempts used.
  int run_with_retry(const std::function<void(Comm&)>& fn,
                     const RetryPolicy& policy = {},
                     const std::function<void(int)>& before_attempt = {});

  int size() const { return cfg_.nranks; }
  const TeamConfig& config() const { return cfg_; }
  const net::CostModel& cost() const { return cost_; }

  /// Timing aggregates of the most recent run().
  const net::TeamStats& stats() const { return stats_; }
  /// Final simulated clock of one rank from the most recent run().
  double rank_time(rank_t r) const { return final_times_.at(r); }

  /// Merged event trace of the most recent successful run(); nullptr unless
  /// TeamConfig::trace was set.
  const obs::TraceReport* trace() const { return trace_report_.get(); }
  /// Counter/series registry of one rank from the most recent run().
  const obs::Metrics& metrics(rank_t r) const {
    return metrics_.at(static_cast<usize>(r));
  }

  /// Violation report of the most recent run(); nullptr unless
  /// TeamConfig::check.enabled was set.
  const check::CheckReport* check_report() const;

  /// World ranks that failed during the most recent (or current) run, in
  /// failure order. Populated in both recoverable and default modes.
  std::vector<rank_t> failures() const;
  /// Survivor-agreement rounds completed during the most recent run.
  u64 recovery_rounds() const;
  /// Toggle recoverable failure semantics between runs (drivers flip this
  /// for a recovery-mode attempt and restore it afterwards).
  void set_recoverable(bool v) { cfg_.recoverable = v; }

  /// Undelivered messages across every rank's mailbox (model-checker
  /// terminal-state oracle; also useful in watchdog-style diagnostics).
  usize undelivered_messages() const;
  /// Terminal-state quiescence issues for the model checker: undelivered
  /// mailbox channels and barriers left with a nonzero arrival count
  /// (un-reset epoch state). Empty after any clean run.
  std::vector<std::string> model_quiescence_issues() const;

 private:
  friend class Comm;
  friend class BorrowToken;  ///< error-path poison (see comm.h)
  /// Run-abandon poison (deadlock / budget; see model/controlled_scheduler.h).
  friend class model::ControlledScheduler;

  /// What a survivor gets back from the agreement rendezvous: the rebuilt
  /// survivor communicator and the simulated time every survivor resumes
  /// at (max survivor clock + detection/agreement charge).
  struct RecoveryOutcome {
    detail::CommState* state = nullptr;
    double sync_time = 0.0;
  };

  /// Called by the victim's Comm::note_op before rank_failed propagates:
  /// records the failure and poisons the team so peers unwind promptly.
  void note_rank_failure(rank_t world);
  /// Survivor-side rendezvous (Comm::recover_survivors). Blocks until every
  /// live rank has parked here and every failed rank's thread has exited,
  /// then one survivor rebuilds the survivor communicator, resets the
  /// survivors' mailboxes, and lifts the abort flag. Throws team_aborted if
  /// recovery is impossible (non-failure error recorded, or a live rank
  /// already returned and can never join the rendezvous).
  RecoveryOutcome recover(rank_t world);
  /// Controlled-schedule ready predicate for the recovery rendezvous:
  /// recomputes recover()'s actionable conditions under rec_mu_ (the
  /// scheduler evaluates it while no rank runs).
  bool recovery_actionable(rank_t world, u64 round) const;

  detail::CommState* register_subteam(
      std::unique_ptr<detail::CommState> state);
  void record_error(std::exception_ptr ep);
  void poison_all();

  FaultPlan* fault_plan() const { return cfg_.fault.get(); }
  /// PGAS happens-before checker; nullptr unless checking is enabled.
  check::RaceDetector* race_detector() const { return detector_.get(); }
  /// Per-rank diagnostic snapshot for the watchdog abort message.
  std::string progress_dump(double stalled_s) const;
  /// Watchdog body: aborts the run if the progress snapshot stalls.
  void watchdog_loop(const std::atomic<int>& done);

  TeamConfig cfg_;
  net::CostModel cost_;
  std::atomic<bool> abort_{false};
  std::unique_ptr<detail::CommState> world_;
  std::vector<net::SimClock> clocks_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::unique_ptr<detail::ProgressState[]> progress_;

  std::mutex watchdog_mu_;  ///< guards watchdog_stop_, paired with its cv
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;

  mutable std::mutex subteam_mu_;  ///< const readers: model_quiescence_issues
  std::vector<std::unique_ptr<detail::CommState>> subteams_;

  std::mutex err_mu_;
  std::exception_ptr first_error_;
  bool first_error_is_abort_ = false;

  /// Survivor-agreement state (all guarded by rec_mu_). rec_cv_ is
  /// notified on every event the rendezvous waits for: a new failure, a
  /// survivor parking, a thread exiting, a fatal error, and the rebuild.
  mutable std::mutex rec_mu_;
  std::condition_variable rec_cv_;
  std::vector<rank_t> failed_;       ///< world ranks failed this run
  std::vector<rank_t> rec_waiting_;  ///< survivors parked in recover()
  bool rec_pending_ = false;  ///< failure seen, agreement not yet complete
  bool rec_fatal_ = false;    ///< recovery impossible; waiters must abort
  u64 rec_rounds_ = 0;        ///< completed agreement rounds this run
  RecoveryOutcome rec_last_{};  ///< outcome of the most recent round

  net::TeamStats stats_{};
  std::vector<double> final_times_;

  std::vector<std::unique_ptr<obs::RankTracer>> tracers_;  ///< one per rank
  std::vector<obs::Metrics> metrics_;                      ///< one per rank
  /// Per-rank pooled scratch arenas (Comm::scratch_arena): raw bytes reused
  /// across merge passes, exchange rounds and sort calls instead of
  /// per-call staging allocations. Each arena is touched only by its own
  /// rank's thread, so no locking is involved.
  std::vector<std::vector<std::byte>> scratch_;
  std::unique_ptr<obs::TraceReport> trace_report_;
  std::unique_ptr<check::RaceDetector> detector_;  ///< null unless checking

};

}  // namespace hds::runtime
