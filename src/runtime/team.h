// Team: the process-local stand-in for an MPI job. Each rank runs as a
// std::thread; collectives operate through shared memory with the same
// blocking bulk-synchronous semantics MPI provides. A per-rank SimClock is
// advanced by analytic computation charges and synchronized at collectives
// using the net::CostModel, which is what makes single-box runs reproduce
// cluster-scale timing shapes.
#pragma once

#include <array>
#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/types.h"
#include "net/cost_model.h"
#include "net/machine.h"
#include "net/sim.h"
#include "runtime/barrier.h"
#include "runtime/mailbox.h"

namespace hds::runtime {

class Comm;

struct TeamConfig {
  int nranks = 4;
  /// Machine the cost model charges against. If its rank layout does not
  /// cover `nranks`, it is replaced by a single node hosting all ranks.
  net::MachineModel machine{};
  /// Virtual workload multiplier: data-volume cost terms and computation
  /// charges are scaled by this factor (see net::CostModel).
  double data_scale = 1.0;
};

namespace detail {

/// One rank's contribution to the collective in flight.
struct PubSlot {
  const void* in = nullptr;
  usize bytes = 0;
  const usize* counts = nullptr;  ///< optional per-destination element counts
  double clock = 0.0;
  u32 op_id = 0;  ///< collective type, checked in debug builds
};

/// Double-buffered collective arena (one per parity) — two barriers per
/// collective suffice because slots of parity e are not republished before
/// every rank has finished reading epoch e's result (see Comm::collective).
struct EpochArena {
  std::vector<PubSlot> slots;
  std::vector<std::byte> result;
  std::vector<usize> out_off;
  std::vector<usize> out_len;
  double sync_time = 0.0;
};

/// Shared state of one communicator (the world or a split subgroup).
struct CommState {
  CommState(std::vector<rank_t> member_ranks, const net::MachineModel& m,
            const std::atomic<bool>* abort_flag);

  std::vector<rank_t> members;  ///< world ranks, ordered by split key
  int nodes_spanned = 1;
  Barrier barrier;
  std::array<EpochArena, 2> epochs;
};

}  // namespace detail

class Team {
 public:
  explicit Team(TeamConfig cfg);
  ~Team();

  Team(const Team&) = delete;
  Team& operator=(const Team&) = delete;

  /// Run `fn` on every rank; blocks until all ranks return. Clocks are
  /// reset first. If a rank throws, the team is poisoned, remaining ranks
  /// unwind via team_aborted, and the original exception is rethrown here.
  void run(const std::function<void(Comm&)>& fn);

  int size() const { return cfg_.nranks; }
  const TeamConfig& config() const { return cfg_; }
  const net::CostModel& cost() const { return cost_; }

  /// Timing aggregates of the most recent run().
  const net::TeamStats& stats() const { return stats_; }
  /// Final simulated clock of one rank from the most recent run().
  double rank_time(rank_t r) const { return final_times_.at(r); }

 private:
  friend class Comm;

  detail::CommState* register_subteam(
      std::unique_ptr<detail::CommState> state);
  void record_error(std::exception_ptr ep);
  void poison_all();

  TeamConfig cfg_;
  net::CostModel cost_;
  std::atomic<bool> abort_{false};
  std::unique_ptr<detail::CommState> world_;
  std::vector<net::SimClock> clocks_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;

  std::mutex subteam_mu_;
  std::vector<std::unique_ptr<detail::CommState>> subteams_;

  std::mutex err_mu_;
  std::exception_ptr first_error_;
  bool first_error_is_abort_ = false;

  net::TeamStats stats_{};
  std::vector<double> final_times_;
};

}  // namespace hds::runtime
