#include "runtime/fault.h"

#include <algorithm>

#include "common/error.h"

namespace hds::runtime {

FaultPlan& FaultPlan::crash_rank_at_op(rank_t rank, u64 k) {
  std::lock_guard lock(mu_);
  op_actions_.push_back(OpAction{rank, k, /*crash=*/true, 0.0});
  return *this;
}

FaultPlan& FaultPlan::delay_rank_at_op(rank_t rank, u64 k,
                                       double sim_seconds) {
  HDS_CHECK(sim_seconds >= 0.0);
  std::lock_guard lock(mu_);
  op_actions_.push_back(OpAction{rank, k, /*crash=*/false, sim_seconds});
  return *this;
}

FaultPlan& FaultPlan::crash_rank_at_phase_op(rank_t rank, net::Phase phase,
                                             u64 k) {
  std::lock_guard lock(mu_);
  op_actions_.push_back(OpAction{rank, k, /*crash=*/true, 0.0,
                                 static_cast<i32>(phase)});
  return *this;
}

FaultPlan& FaultPlan::delay_rank_at_phase_op(rank_t rank, net::Phase phase,
                                             u64 k, double sim_seconds) {
  HDS_CHECK(sim_seconds >= 0.0);
  std::lock_guard lock(mu_);
  op_actions_.push_back(OpAction{rank, k, /*crash=*/false, sim_seconds,
                                 static_cast<i32>(phase)});
  return *this;
}

FaultPlan& FaultPlan::crash_ranks_at_op(std::span<const rank_t> ranks,
                                        u64 k) {
  std::lock_guard lock(mu_);
  for (rank_t r : ranks)
    op_actions_.push_back(OpAction{r, k, /*crash=*/true, 0.0});
  return *this;
}

FaultPlan& FaultPlan::crash_rank_at_ops(rank_t rank, std::span<const u64> ks) {
  std::lock_guard lock(mu_);
  for (u64 k : ks)
    op_actions_.push_back(OpAction{rank, k, /*crash=*/true, 0.0});
  return *this;
}

FaultPlan& FaultPlan::drop_message(rank_t src, rank_t dst, u64 tag) {
  std::lock_guard lock(mu_);
  msg_actions_.push_back(MsgAction{src, dst, tag, /*drop=*/true, 0.0});
  return *this;
}

FaultPlan& FaultPlan::delay_message(rank_t src, rank_t dst, u64 tag,
                                    double sim_seconds) {
  HDS_CHECK(sim_seconds >= 0.0);
  std::lock_guard lock(mu_);
  msg_actions_.push_back(MsgAction{src, dst, tag, /*drop=*/false, sim_seconds});
  return *this;
}

FaultPlan& FaultPlan::drop_messages_with_probability(double p) {
  HDS_CHECK(p >= 0.0 && p <= 1.0);
  std::lock_guard lock(mu_);
  drop_prob_ = p;
  return *this;
}

void FaultPlan::rearm() {
  std::lock_guard lock(mu_);
  for (auto& a : op_actions_) a.armed = true;
  for (auto& a : msg_actions_) a.armed = true;
  rng_ = Xoshiro256(seed_);
}

void FaultPlan::begin_run(int nranks) {
  std::lock_guard lock(mu_);
  const usize n = static_cast<usize>(
      std::max(nranks, static_cast<int>(op_count_.size())));
  op_count_.assign(n, 0);
  op_phase_count_.assign(n * net::kPhaseCount, 0);
}

u64 FaultPlan::on_op(rank_t rank, u32 /*op_id*/, net::SimClock& clock) {
  // Copy the triggered action out so the trigger itself runs outside the
  // lock; a pointer into op_actions_ would dangle if a builder reallocated
  // the vector concurrently.
  OpAction hit{};
  bool triggered = false;
  u64 k = 0;
  const i32 phase = static_cast<i32>(clock.phase());
  {
    std::lock_guard lock(mu_);
    if (static_cast<usize>(rank) >= op_count_.size()) {
      op_count_.resize(static_cast<usize>(rank) + 1, 0);
      op_phase_count_.resize((static_cast<usize>(rank) + 1) *
                                 net::kPhaseCount,
                             0);
    }
    k = op_count_[rank]++;
    const u64 pk = op_phase_count_[static_cast<usize>(rank) *
                                       net::kPhaseCount +
                                   static_cast<usize>(phase)]++;
    for (auto& a : op_actions_) {
      if (!a.armed || a.rank != rank) continue;
      const bool match = a.phase < 0 ? a.k == k
                                     : (a.phase == phase && a.k == pk);
      if (match) {
        a.armed = false;
        hit = a;
        triggered = true;
        break;
      }
    }
  }
  if (triggered) {
    if (hit.crash) throw rank_failed(rank, k);
    clock.advance(hit.delay_s);
  }
  return k;
}

bool FaultPlan::on_send(rank_t src, rank_t dst, u64 tag,
                        double* extra_delay_s) {
  *extra_delay_s = 0.0;
  std::lock_guard lock(mu_);
  for (auto& a : msg_actions_) {
    if (a.armed && a.src == src && a.dst == dst && a.tag == tag) {
      a.armed = false;
      if (a.drop) return false;
      *extra_delay_s = a.delay_s;
      return true;
    }
  }
  if (drop_prob_ > 0.0 && rng_.uniform01() < drop_prob_) return false;
  return true;
}

u64 FaultPlan::ops_observed(rank_t rank) const {
  std::lock_guard lock(mu_);
  return static_cast<usize>(rank) < op_count_.size() ? op_count_[rank] : 0;
}

u64 FaultPlan::ops_observed_in_phase(rank_t rank, net::Phase phase) const {
  std::lock_guard lock(mu_);
  const usize i = static_cast<usize>(rank) * net::kPhaseCount +
                  static_cast<usize>(phase);
  return i < op_phase_count_.size() ? op_phase_count_[i] : 0;
}

}  // namespace hds::runtime
