// Comm: per-rank communicator handle, the interface every algorithm in this
// repository is written against (the moral equivalent of an MPI
// communicator).
//
// Collective protocol (two barriers, double-buffered arenas):
//   1. each rank publishes (pointer, size, clock) into the arena of the
//      current parity and waits at barrier #1;
//   2. the lowest member rank ("root executor") builds the result bytes in
//      the shared arena, computes the modelled collective cost and the
//      common exit time max(entry clocks) + cost;
//   3. barrier #2, then every rank copies its slice out and fast-forwards
//      its SimClock to the exit time.
// Caller-owned input buffers are only dereferenced between the two barriers,
// so callers may reuse them immediately after the collective returns. Arena
// parity alternates; a slot of parity e cannot be republished before every
// rank finished reading epoch e's result (publication at round k+2 is gated
// by barrier #2 of round k+1).
#pragma once

#include <cmath>
#include <cstring>
#include <exception>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "check/race_detector.h"
#include "model/recorder.h"
#include "common/error.h"
#include "net/cost_model.h"
#include "net/sim.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "runtime/checkpoint.h"
#include "runtime/fault.h"
#include "runtime/team.h"

namespace hds::runtime {

namespace detail {
// The op vocabulary lives in obs/events.h so the tracer, fault plans, and
// the watchdog dump share one id space; these aliases keep the runtime's
// historical spelling working.
using OpId = obs::OpKind;

constexpr std::string_view op_name(OpId op) { return obs::op_kind_name(op); }
}  // namespace detail

/// Loan handle from Comm::send_borrowed: the sender's buffer stays live
/// until the receiver has copied it out. wait() blocks until the loan is
/// returned (throws team_aborted if the team fails first). The destructor
/// drains the loan non-throwing as a last resort, but relying on it is a
/// bug — wait() explicitly after posting your own receives, or a pairwise
/// exchange can deadlock until the watchdog fires.
///
/// Error paths are the exception to "the destructor is a bug": when an
/// exception unwinds past a pending token, the destructor poisons the team
/// before draining. Without that, the drain blocks on a receiver that may
/// itself be parked waiting for this failing rank — a deadlock the watchdog
/// converts into a timeout only a minute later (the bug the model checker's
/// borrow micro-protocol regression pins down).
class [[nodiscard]] BorrowToken {
 public:
  BorrowToken() = default;
  BorrowToken(BorrowToken&&) noexcept = default;
  BorrowToken& operator=(BorrowToken&&) noexcept = default;
  BorrowToken(const BorrowToken&) = delete;
  BorrowToken& operator=(const BorrowToken&) = delete;

  ~BorrowToken() {
    if (!state_) return;
    model::ScheduleHook* hook = team_ != nullptr ? team_->cfg_.model : nullptr;
    if (std::uncaught_exceptions() > 0) {
      // Unwinding past a pending loan: the protocol around this token is
      // already broken, so poison the team. Peers unwind promptly and the
      // drain below returns instead of spinning until the watchdog.
      if (team_ != nullptr &&
          !team_->abort_.load(std::memory_order_relaxed)) {
        team_->abort_.store(true, std::memory_order_relaxed);
        team_->poison_all();
      }
    } else if (hook != nullptr) {
      // Clean-path dtor drain: the token was never waited — a loan
      // discipline violation the model checker reports at the terminal
      // state.
      hook->note_borrow_dtor_drain();
    }
    state_->wait_nothrow(team_ != nullptr ? &team_->abort_ : nullptr, hook);
  }

  /// Block until the receiver released the buffer (or the team aborted).
  void wait() {
    if (!state_) return;
    model::ScheduleHook* hook = team_ != nullptr ? team_->cfg_.model : nullptr;
    // Seeded mutation (model checker self-test): abandon the loan to the
    // destructor as if the call site forgot to wait.
    if (hook != nullptr && hook->mutate_skip_borrow_wait()) return;
    state_->wait(team_ != nullptr ? &team_->abort_ : nullptr, hook);
    if (team_ != nullptr)
      if (auto* rec = team_->cfg_.recorder) rec->note_loan_closed(state_.get());
    state_.reset();
  }

  /// True while the receiver still holds the loan.
  bool pending() const { return state_ && !state_->done(); }

 private:
  friend class Comm;
  BorrowToken(std::shared_ptr<BorrowState> state, Team* team)
      : state_(std::move(state)), team_(team) {}

  std::shared_ptr<BorrowState> state_;
  Team* team_ = nullptr;
};

class Comm {
 public:
  Comm(Team* team, detail::CommState* state, int idx)
      : team_(team), state_(state), idx_(idx) {}

  int rank() const { return idx_; }
  int size() const { return static_cast<int>(state_->members.size()); }
  bool is_root() const { return idx_ == 0; }
  rank_t world_rank() const { return state_->members[idx_]; }
  rank_t world_rank_of(int r) const { return state_->members.at(r); }

  net::SimClock& clock() { return team_->clocks_[world_rank()]; }
  const net::CostModel& cost() const { return team_->cost_; }
  const net::MachineModel& machine() const { return cost().machine(); }
  Team& team() { return *team_; }
  /// This rank's counter/series registry (see obs/metrics.h). Written only
  /// by the owning rank's thread; read after Team::run via Team::metrics.
  obs::Metrics& metrics() {
    return team_->metrics_[static_cast<usize>(world_rank())];
  }
  /// The PGAS happens-before checker of a checked run (TeamConfig::check);
  /// nullptr otherwise. Distributed containers report their one-sided
  /// accesses through this (see runtime/global_vector.h).
  check::RaceDetector* checker() const { return team_->race_detector(); }
  /// This rank's pooled scratch arena: raw bytes reused across merge passes
  /// and exchange rounds instead of per-call staging allocations. Touched
  /// only by the owning rank's thread; contents are unspecified between
  /// uses (callers size and overwrite it). Never holds live data across a
  /// communication op the caller does not control.
  std::vector<std::byte>& scratch_arena() {
    return team_->scratch_[static_cast<usize>(world_rank())];
  }

  // --- computation charges --------------------------------------------------
  void charge_seconds(double s) { clock().advance(s); }
  void charge_sort(usize n) { clock().advance(cost().sort(n)); }
  /// Radix kernel: `passes` executed scatter passes; `pairs` adds one
  /// merge-pass-equivalent for materializing/permuting (key, value) pairs
  /// on the record path.
  void charge_radix_sort(usize n, usize passes, bool pairs = false) {
    clock().advance(cost().radix_sort(n, passes) +
                    (pairs ? cost().merge_pass(n) : 0.0));
  }
  void charge_merge_pass(usize n) { clock().advance(cost().merge_pass(n)); }
  void charge_kway_merge(usize n, usize k) {
    clock().advance(cost().kway_heap_merge(n, k));
  }
  /// K-way merge overlapped with `window_s` seconds of in-flight exchange
  /// copies (the k-ary schedule's round pipeline): only the non-hidden
  /// residue of the merge lands on this rank's clock. Both the full
  /// (un-overlapped) cost and the charged residue are surfaced as series so
  /// the run ledger can report realized vs charged overlap.
  void charge_overlapped_merge(usize n, usize k, double window_s) {
    const double full = cost().kway_heap_merge(n, k);
    const double charged = cost().overlapped_merge(n, k, window_s);
    metrics().append(obs::Series::OverlapMergeFull, full);
    metrics().append(obs::Series::OverlapMergeCharged, charged);
    clock().advance(charged);
  }
  void charge_partition(usize n) { clock().advance(cost().partition(n)); }
  void charge_scan(usize n) { clock().advance(cost().linear_scan(n)); }
  void charge_binary_search(usize n, usize probes) {
    clock().advance(cost().binary_search(n, probes));
  }
  /// Ascending probes answered by one narrowing forward sweep
  /// (core::batched_counts).
  void charge_batched_search(usize n, usize probes) {
    clock().advance(cost().batched_search(n, probes));
  }
  /// Control-plane computation charges: sizes that do NOT grow with the
  /// modelled data volume (splitter vectors, sample pools, permutation
  /// rows) must not be multiplied by data_scale.
  void charge_control_sort(usize n) {
    const double m = std::max<double>(static_cast<double>(n), 2.0);
    clock().advance(machine().sort_s_per_elem_log * m * std::log2(m));
  }
  void charge_control_scan(usize n) {
    clock().advance(machine().scan_s_per_elem * static_cast<double>(n));
  }

  // --- collectives ------------------------------------------------------------

  void barrier() {
    auto& ep = collective(detail::OpId::Barrier, obs::OpClass::Sync, nullptr,
                          0, nullptr, [&](detail::EpochArena& a) {
                            zero_out(a);
                            return cost().barrier(size(), nodes());
                          });
    finish(ep);
  }

  /// Broadcast n elements from `root` into every rank's `data`.
  template <class T>
  void broadcast(T* data, usize n, int root) {
    check_trivial<T>();
    const usize bytes = n * sizeof(T);
    auto& ep = collective(
        detail::OpId::Broadcast, obs::OpClass::Tree,
        idx_ == root ? data : nullptr, bytes, nullptr,
        [&](detail::EpochArena& a) {
          a.result.resize(bytes);
          const auto& src = a.slots[root];
          HDS_CHECK_MSG(src.bytes == bytes, "broadcast size mismatch");
          if (bytes > 0) std::memcpy(a.result.data(), src.in, bytes);
          fill_out(a, 0, bytes);
          return cost().broadcast(size(), nodes(), bytes,
                                  net::Traffic::Control);
        },
        world_rank_of(root), net::Traffic::Control, /*hb_root=*/root);
    if (bytes > 0) std::memcpy(data, ep.result.data(), bytes);
    finish(ep);
  }

  template <class T>
  T broadcast_value(T v, int root) {
    broadcast(&v, 1, root);
    return v;
  }

  /// Element-wise all-reduce of n elements with a binary op.
  template <class T, class Op>
  void allreduce(const T* in, T* out, usize n, Op op,
                 net::Traffic traffic = net::Traffic::Control) {
    check_trivial<T>();
    const usize bytes = n * sizeof(T);
    auto& ep = collective(
        detail::OpId::Allreduce, obs::OpClass::Tree, in, bytes, nullptr,
        [&](detail::EpochArena& a) {
          a.result.resize(bytes);
          T* acc = reinterpret_cast<T*>(a.result.data());
          if (bytes > 0) std::memcpy(acc, a.slots[0].in, bytes);
          for (int r = 1; r < size(); ++r) {
            HDS_CHECK_MSG(a.slots[r].bytes == bytes,
                          "allreduce size mismatch");
            const T* src = static_cast<const T*>(a.slots[r].in);
            for (usize i = 0; i < n; ++i) acc[i] = op(acc[i], src[i]);
          }
          fill_out(a, 0, bytes);
          return cost().allreduce(size(), nodes(), bytes, traffic);
        });
    if (bytes > 0) std::memcpy(out, ep.result.data(), bytes);
    finish(ep);
  }

  template <class T, class Op>
  T allreduce_value(T v, Op op) {
    T out{};
    allreduce(&v, &out, 1, op);
    return out;
  }

  /// Gather n elements from each rank; out must hold n * size() elements,
  /// ordered by member rank.
  template <class T>
  void allgather(const T* in, usize n, T* out) {
    check_trivial<T>();
    const usize bytes = n * sizeof(T);
    auto& ep = collective(
        detail::OpId::Allgather, obs::OpClass::Gather, in, bytes, nullptr,
        [&](detail::EpochArena& a) {
          a.result.resize(bytes * size());
          for (int r = 0; r < size(); ++r) {
            HDS_CHECK_MSG(a.slots[r].bytes == bytes,
                          "allgather size mismatch");
            if (bytes > 0)
              std::memcpy(a.result.data() + bytes * r, a.slots[r].in, bytes);
          }
          fill_out(a, 0, bytes * size());
          return cost().allgather(size(), nodes(), bytes,
                                  net::Traffic::Control);
        });
    if (!ep.result.empty())
      std::memcpy(out, ep.result.data(), ep.result.size());
    finish(ep);
  }

  /// Variable-size allgather. Returns the concatenation in member order;
  /// if `counts` is non-null it receives each member's element count.
  template <class T>
  std::vector<T> allgatherv(std::span<const T> in,
                            std::vector<usize>* counts = nullptr) {
    check_trivial<T>();
    auto& ep = collective(
        detail::OpId::Allgatherv, obs::OpClass::Gather, in.data(),
        in.size() * sizeof(T), nullptr,
        [&](detail::EpochArena& a) {
          usize total = 0;
          usize max_bytes = 0;
          for (int r = 0; r < size(); ++r) {
            total += a.slots[r].bytes;
            max_bytes = std::max(max_bytes, a.slots[r].bytes);
          }
          a.result.resize(total);
          usize off = 0;
          for (int r = 0; r < size(); ++r) {
            if (a.slots[r].bytes > 0)
              std::memcpy(a.result.data() + off, a.slots[r].in,
                          a.slots[r].bytes);
            off += a.slots[r].bytes;
          }
          fill_out(a, 0, total);
          // A ring/dissemination allgatherv is gated by the largest single
          // contribution per round, not the mean: charge max_bytes.
          return cost().allgather(size(), nodes(), max_bytes,
                                  net::Traffic::Control);
        });
    std::vector<T> out(ep.result.size() / sizeof(T));
    if (!ep.result.empty())
      std::memcpy(out.data(), ep.result.data(), ep.result.size());
    if (counts) {
      counts->resize(size());
      for (int r = 0; r < size(); ++r)
        (*counts)[r] = ep.slots[r].bytes / sizeof(T);
    }
    finish(ep);
    return out;
  }

  /// Sparse sampled-histogram gather (hybrid splitter search, PR 10):
  /// semantically an allgatherv of each rank's sample block, but charged as
  /// CostModel::sample_gather — the allgatherv wire cost plus the machine's
  /// fixed per-sampled-round overhead — and published under its own
  /// OpKind::SampleGather so the ledger, fault plans and the checkers can
  /// tell sampled rounds from the dense refinement's collectives.
  template <class T>
  std::vector<T> sample_gatherv(std::span<const T> in,
                                std::vector<usize>* counts = nullptr) {
    check_trivial<T>();
    auto& ep = collective(
        detail::OpId::SampleGather, obs::OpClass::Gather, in.data(),
        in.size() * sizeof(T), nullptr,
        [&](detail::EpochArena& a) {
          usize total = 0;
          usize max_bytes = 0;
          for (int r = 0; r < size(); ++r) {
            total += a.slots[r].bytes;
            max_bytes = std::max(max_bytes, a.slots[r].bytes);
          }
          a.result.resize(total);
          usize off = 0;
          for (int r = 0; r < size(); ++r) {
            if (a.slots[r].bytes > 0)
              std::memcpy(a.result.data() + off, a.slots[r].in,
                          a.slots[r].bytes);
            off += a.slots[r].bytes;
          }
          fill_out(a, 0, total);
          return cost().sample_gather(size(), nodes(), max_bytes);
        });
    std::vector<T> out(ep.result.size() / sizeof(T));
    if (!ep.result.empty())
      std::memcpy(out.data(), ep.result.data(), ep.result.size());
    if (counts) {
      counts->resize(size());
      for (int r = 0; r < size(); ++r)
        (*counts)[r] = ep.slots[r].bytes / sizeof(T);
    }
    finish(ep);
    return out;
  }

  /// Gather variable-size contributions at `root` (member index). Non-root
  /// ranks get an empty vector.
  template <class T>
  std::vector<T> gatherv(std::span<const T> in, int root,
                         std::vector<usize>* counts = nullptr) {
    check_trivial<T>();
    auto& ep = collective(
        detail::OpId::Gatherv, obs::OpClass::Gather, in.data(),
        in.size() * sizeof(T), nullptr,
        [&](detail::EpochArena& a) {
          usize total = 0;
          for (int r = 0; r < size(); ++r) total += a.slots[r].bytes;
          a.result.resize(total);
          usize off = 0;
          for (int r = 0; r < size(); ++r) {
            if (a.slots[r].bytes > 0)
              std::memcpy(a.result.data() + off, a.slots[r].in,
                          a.slots[r].bytes);
            off += a.slots[r].bytes;
          }
          for (int r = 0; r < size(); ++r) {
            a.out_off[r] = 0;
            a.out_len[r] = (r == root) ? total : 0;
          }
          return cost().allgather(size(), nodes(),
                                  total / std::max(1, size()),
                                  net::Traffic::Control) /
                 2.0;  // gather is one tree direction of an allgather
        },
        /*peer=*/-1, net::Traffic::Control, /*hb_root=*/root);
    std::vector<T> out(ep.out_len[idx_] / sizeof(T));
    if (!out.empty())
      std::memcpy(out.data(), ep.result.data() + ep.out_off[idx_],
                  ep.out_len[idx_]);
    if (counts && idx_ == root) {
      counts->resize(size());
      for (int r = 0; r < size(); ++r)
        (*counts)[r] = ep.slots[r].bytes / sizeof(T);
    }
    finish(ep);
    return out;
  }

  /// Regular all-to-all: rank r's in[d*n .. d*n+n) goes to rank d; out is
  /// laid out symmetrically by source rank.
  template <class T>
  void alltoall(const T* in, usize n, T* out,
                net::Traffic traffic = net::Traffic::Control) {
    check_trivial<T>();
    const usize block = n * sizeof(T);
    const usize bytes = block * size();
    auto& ep = collective(
        detail::OpId::Alltoall, obs::OpClass::Alltoall, in, bytes, nullptr,
        [&](detail::EpochArena& a) {
          a.result.resize(bytes * size());
          for (int src = 0; src < size(); ++src) {
            HDS_CHECK_MSG(a.slots[src].bytes == bytes,
                          "alltoall size mismatch");
            const auto* base = static_cast<const std::byte*>(a.slots[src].in);
            for (int dst = 0; dst < size(); ++dst) {
              if (block > 0)
                std::memcpy(a.result.data() + (usize(dst) * size() + src) * block,
                            base + usize(dst) * block, block);
            }
          }
          for (int r = 0; r < size(); ++r) {
            a.out_off[r] = usize(r) * bytes;
            a.out_len[r] = bytes;
          }
          return cost().alltoall(size(), nodes(), block, traffic);
        },
        /*peer=*/-1, traffic);
    if (bytes > 0)
      std::memcpy(out, ep.result.data() + ep.out_off[idx_], bytes);
    if (tracer().enabled() && block > 0)
      for (int d = 0; d < size(); ++d)
        tracer().op_detail(world_rank_of(d), block);
    finish(ep);
  }

  /// Irregular personalized exchange. `send_counts[d]` elements of `data`
  /// (contiguous, in destination order) go to member d. Returns the
  /// received elements ordered by source rank; `recv_counts` (optional)
  /// receives the per-source counts.
  template <class T>
  std::vector<T> alltoallv(std::span<const T> data,
                           std::span<const usize> send_counts,
                           std::vector<usize>* recv_counts = nullptr,
                           net::Traffic traffic = net::Traffic::Data) {
    check_trivial<T>();
    HDS_CHECK(send_counts.size() == static_cast<usize>(size()));
    usize total_send = 0;
    for (usize c : send_counts) total_send += c;
    HDS_CHECK_MSG(total_send == data.size(),
                  "alltoallv: send counts (" << total_send
                      << ") != data size (" << data.size() << ")");

    auto& ep = collective(
        detail::OpId::Alltoallv, obs::OpClass::Alltoall, data.data(),
        data.size() * sizeof(T), send_counts.data(),
        [&](detail::EpochArena& a) {
          const int P = size();
          // Receive layout: out[dst] = concat over src of block(src -> dst).
          // scratch_a doubles as recv_bytes here and as the pack cursor
          // below (pooled across epochs; see EpochArena).
          auto& cursor = a.scratch_a;
          cursor.assign(static_cast<usize>(P), 0);
          for (int src = 0; src < P; ++src)
            for (int dst = 0; dst < P; ++dst)
              cursor[dst] += a.slots[src].counts[dst] * sizeof(T);
          usize total = 0;
          for (int dst = 0; dst < P; ++dst) {
            a.out_off[dst] = total;
            a.out_len[dst] = cursor[dst];
            total += cursor[dst];
          }
          // Arena layout: [data][P x P count matrix, row = destination].
          // Counts live in the arena because the publishing rank's own
          // count array may go out of scope as soon as it leaves the
          // collective — but the matrix is only materialized when some
          // member actually asked for recv_counts (kSlotWantsCounts).
          bool wants_counts = false;
          for (const auto& s : a.slots)
            if (s.flags & detail::kSlotWantsCounts) wants_counts = true;
          a.result.resize(total +
                          (wants_counts ? usize(P) * P * sizeof(usize) : 0));
          if (wants_counts) {
            auto& by_dst = a.scratch_b;
            by_dst.resize(usize(P) * P);
            for (int dst = 0; dst < P; ++dst)
              for (int src = 0; src < P; ++src)
                by_dst[usize(dst) * P + src] = a.slots[src].counts[dst];
            std::memcpy(a.result.data() + total, by_dst.data(),
                        by_dst.size() * sizeof(usize));
          }
          for (int dst = 0; dst < P; ++dst) cursor[dst] = a.out_off[dst];
          for (int src = 0; src < P; ++src) {
            const auto* base = static_cast<const std::byte*>(a.slots[src].in);
            usize src_off = 0;
            for (int dst = 0; dst < P; ++dst) {
              const usize b = a.slots[src].counts[dst] * sizeof(T);
              if (b > 0) {
                std::memcpy(a.result.data() + cursor[dst], base + src_off, b);
                cursor[dst] += b;
                src_off += b;
              }
            }
          }
          // Cost from the full byte matrix.
          auto& matrix = a.scratch_b;
          matrix.resize(usize(P) * P);
          for (int src = 0; src < P; ++src)
            for (int dst = 0; dst < P; ++dst)
              matrix[usize(src) * P + dst] =
                  a.slots[src].counts[dst] * sizeof(T);
          return cost().alltoallv(state_->members, matrix, traffic);
        },
        /*peer=*/-1, traffic, /*hb_root=*/-1,
        recv_counts != nullptr ? detail::kSlotWantsCounts : 0);
    if (tracer().enabled())
      for (int d = 0; d < size(); ++d)
        if (send_counts[static_cast<usize>(d)] > 0)
          tracer().op_detail(world_rank_of(d),
                             send_counts[static_cast<usize>(d)] * sizeof(T));
    std::vector<T> out(ep.out_len[idx_] / sizeof(T));
    if (!out.empty())
      std::memcpy(out.data(), ep.result.data() + ep.out_off[idx_],
                  ep.out_len[idx_]);
    if (recv_counts) {
      const usize P = static_cast<usize>(size());
      recv_counts->resize(P);
      const usize counts_off = ep.result.size() - P * P * sizeof(usize);
      std::memcpy(recv_counts->data(),
                  ep.result.data() + counts_off +
                      static_cast<usize>(idx_) * P * sizeof(usize),
                  P * sizeof(usize));
    }
    finish(ep);
    return out;
  }

  /// Pull-path irregular exchange into a caller-provided destination: the
  /// received elements (ordered by source rank) are copied exactly once,
  /// from each sender's published span straight into `dst`. `recv_counts`
  /// receives the per-source element counts; `dst` must already hold
  /// exactly the incoming total (size it from a prior counts exchange).
  /// `dst` must not alias `data`. Modelled cost and simulated time are
  /// bit-identical with the packed alltoallv for the same inputs.
  template <class T>
  void alltoallv_into(std::span<const T> data,
                      std::span<const usize> send_counts, std::span<T> dst,
                      std::vector<usize>& recv_counts,
                      net::Traffic traffic = net::Traffic::Data) {
    alltoallv_pull<T>(
        data, send_counts,
        [&](usize total, const std::vector<usize>&) {
          HDS_CHECK_MSG(total == dst.size(),
                        "alltoallv_into: dst holds " << dst.size()
                            << " elements but " << total << " are incoming");
          return dst.data();
        },
        recv_counts, traffic);
  }

  /// Pull-path overload that sizes `dst` itself: resized exactly once to
  /// the incoming total (from the published counts), then filled in place.
  /// `dst` must not alias `data`.
  template <class T>
  void alltoallv_into(std::span<const T> data,
                      std::span<const usize> send_counts, std::vector<T>& dst,
                      std::vector<usize>& recv_counts,
                      net::Traffic traffic = net::Traffic::Data) {
    alltoallv_pull<T>(
        data, send_counts,
        [&](usize total, const std::vector<usize>&) {
          dst.resize(total);
          return dst.data();
        },
        recv_counts, traffic);
  }

  /// Exclusive prefix scan: rank r receives op(init, v_0, ..., v_{r-1}).
  template <class T, class Op>
  T exscan_value(T v, Op op, T init) {
    return scan_impl(v, op, init, /*inclusive=*/false);
  }

  /// Inclusive prefix scan: rank r receives op(v_0, ..., v_r).
  template <class T, class Op>
  T scan_value(T v, Op op) {
    return scan_impl(v, op, T{}, /*inclusive=*/true);
  }

  /// Split this communicator into subgroups by color; ranks with the same
  /// color form a new communicator ordered by (key, current rank). Mirrors
  /// MPI_Comm_split, including its linear-in-P cost (Sec. III-C).
  Comm split(int color, int key);

  // --- point-to-point --------------------------------------------------------

  template <class T>
  void send(int dst, u64 tag, std::span<const T> data,
            net::Traffic traffic = net::Traffic::Data) {
    check_trivial<T>();
    const rank_t dw = world_rank_of(dst);
    note_op(detail::OpId::Send, obs::OpClass::Send, data.size() * sizeof(T),
            dw, tag, traffic);
    const double dt =
        cost().p2p(world_rank(), dw, data.size() * sizeof(T), traffic);
    tracer().op_model(dt);
    clock().advance(dt);  // synchronous send: sender busy for the transfer
    deliver(dw, tag, data);
    tracer().op_end(clock().now());
  }

  /// Transfer without any simulated-time charge. For modelled baselines
  /// whose cost is accounted analytically (e.g. the TBB merge-sort stand-in)
  /// — never use this for algorithms whose cost the experiments measure.
  /// Traced as Traffic::Control so it stays out of the data comm matrix.
  template <class T>
  void send_uncharged(int dst, u64 tag, std::span<const T> data) {
    check_trivial<T>();
    const rank_t dw = world_rank_of(dst);
    note_op(detail::OpId::Send, obs::OpClass::Send, data.size() * sizeof(T),
            dw, tag, net::Traffic::Control);
    deliver(dw, tag, data);
    tracer().op_end(clock().now());
  }

  template <class T>
  std::vector<T> recv(int src, u64 tag) {
    check_trivial<T>();
    std::vector<T> out;
    recv_bytes_into(src, tag, [&](usize nbytes) {
      out.resize(nbytes / sizeof(T));
      return reinterpret_cast<std::byte*>(out.data());
    });
    return out;
  }

  /// Loaned-payload send: the payload never round-trips through
  /// Message::data — the receiver's recv/recv_into/recv_append copies it
  /// straight from the caller's buffer into its destination (one copy
  /// total). Charges and traces exactly like send(). The returned token
  /// MUST be waited on before the buffer is mutated or freed; the send
  /// itself never blocks on the receiver (a blocking send would deadlock
  /// pairwise exchanges), so post your own receives first, then wait().
  template <class T>
  [[nodiscard]] BorrowToken send_borrowed(
      int dst, u64 tag, std::span<const T> data,
      net::Traffic traffic = net::Traffic::Data) {
    check_trivial<T>();
    const rank_t dw = world_rank_of(dst);
    note_op(detail::OpId::Send, obs::OpClass::Send, data.size() * sizeof(T),
            dw, tag, traffic);
    const double dt =
        cost().p2p(world_rank(), dw, data.size() * sizeof(T), traffic);
    tracer().op_model(dt);
    clock().advance(dt);  // synchronous send: sender busy for the transfer
    auto state = std::make_shared<BorrowState>();
    if (auto* rec = team_->cfg_.recorder)
      rec->note_loan_open(world_rank(), state.get());
    deliver_borrowed(dw, tag, std::as_bytes(data), state);
    tracer().op_end(clock().now());
    return BorrowToken(std::move(state), team_);
  }

  /// Receive directly into a caller-provided span (capacity must cover the
  /// payload). Returns the element count received. Pairs with either
  /// send() or send_borrowed(); for the latter this is the single copy.
  template <class T>
  usize recv_into(int src, u64 tag, std::span<T> dst) {
    check_trivial<T>();
    const usize nbytes = recv_bytes_into(src, tag, [&](usize nb) {
      HDS_CHECK_MSG(nb % sizeof(T) == 0,
                    "recv_into: payload is not a whole element count");
      HDS_CHECK_MSG(nb / sizeof(T) <= dst.size(),
                    "recv_into: destination span too small (" << dst.size()
                        << " elements for " << nb << " bytes)");
      return reinterpret_cast<std::byte*>(dst.data());
    });
    return nbytes / sizeof(T);
  }

  /// Receive and append to `dst` (grown exactly once). Returns the element
  /// count received.
  template <class T>
  usize recv_append(int src, u64 tag, std::vector<T>& dst) {
    check_trivial<T>();
    const usize nbytes = recv_bytes_into(src, tag, [&](usize nb) {
      HDS_CHECK_MSG(nb % sizeof(T) == 0,
                    "recv_append: payload is not a whole element count");
      const usize old = dst.size();
      dst.resize(old + nb / sizeof(T));
      return reinterpret_cast<std::byte*>(dst.data() + old);
    });
    return nbytes / sizeof(T);
  }

  // --- failure recovery ------------------------------------------------------

  /// Survivor-side recovery entry point (requires TeamConfig::recoverable).
  /// Call after catching team_aborted: blocks in the agreement rendezvous
  /// until every surviving rank arrives and every failed rank's thread has
  /// exited, then returns a fresh communicator over the survivor set (this
  /// communicator — and every other pre-failure Comm — must not be used
  /// again). The SimClock is fast-forwarded to the common recovery time:
  /// max survivor clock + the modelled detection/agreement cost. Throws
  /// team_aborted if the run is beyond recovery (a non-failure error was
  /// recorded, or a rank returned without joining the rendezvous).
  Comm recover_survivors() {
    note_op(detail::OpId::Agree, obs::OpClass::Recovery);
    const double t0 = clock().now();
    Team::RecoveryOutcome out;
    {
      detail::SiteScope site(progress(), detail::WaitSite::Recovery);
      out = team_->recover(world_rank());
    }
    tracer().op_model(
        cost().detect_and_agree(static_cast<int>(out.state->members.size())));
    clock().sync_to(std::max(clock().now(), out.sync_time));
    metrics().add(obs::Counter::RecoveryCount, 1);
    // Time-to-recover, per survivor: from this rank noticing the failure
    // (unwinding into the rendezvous) to agreement completion.
    metrics().append(obs::Series::RecoverySeconds, clock().now() - t0);
    tracer().op_end(clock().now());
    int idx = 0;
    for (usize i = 0; i < out.state->members.size(); ++i)
      if (out.state->members[i] == world_rank()) idx = static_cast<int>(i);
    return Comm(team_, out.state, idx);
  }

  /// Superstep-boundary checkpoint: replicate this rank's serialized sort
  /// state to its buddy (the next member, cyclically). The transfer is
  /// charged at the machine's checkpoint_overlap_residue of the raw p2p
  /// cost — checkpointing overlaps the next superstep's compute except for
  /// that residue — and the bytes are surfaced in obs::Metrics.
  void checkpoint_to_buddy(CheckpointStore& store, u64 superstep,
                           std::vector<std::byte> bytes) {
    const rank_t bw = world_rank_of((idx_ + 1) % size());
    const u64 n = bytes.size();
    note_op(detail::OpId::Checkpoint, obs::OpClass::Checkpoint, n, bw,
            /*tag=*/superstep, net::Traffic::Data);
    const double dt = cost().checkpoint(world_rank(), bw, n, net::Traffic::Data);
    tracer().op_model(dt);
    clock().advance(dt);
    metrics().add(obs::Counter::CheckpointBytes, n);
    metrics().add(obs::Counter::CheckpointCount, 1);
    store.save(world_rank(), bw, superstep, std::move(bytes));
    tracer().op_end(clock().now());
  }

  /// Fetch a checkpoint during recovery. Charges the full p2p transfer when
  /// the surviving copy lives on another rank (restores sit on the critical
  /// path — no overlap discount); a locally-served primary is free. Returns
  /// nullopt if no copy survived (owner and buddy both failed).
  std::optional<CheckpointBlob> fetch_checkpoint(CheckpointStore& store,
                                                 rank_t owner_world,
                                                 u64 step) {
    auto blob = store.load(owner_world, step);
    if (!blob) return blob;
    const u64 n = blob->bytes.size();
    note_op(detail::OpId::Checkpoint, obs::OpClass::Checkpoint, n,
            blob->holder, /*tag=*/step, net::Traffic::Data);
    if (blob->holder != world_rank()) {
      const double dt =
          cost().p2p(blob->holder, world_rank(), n, net::Traffic::Data);
      tracer().op_model(dt);
      clock().advance(dt);
    }
    tracer().op_end(clock().now());
    return blob;
  }

 private:
  template <class T>
  static void check_trivial() {
    static_assert(std::is_trivially_copyable_v<T>,
                  "hds collectives transport trivially copyable types only");
  }

  int nodes() const { return state_->nodes_spanned; }

  /// Enqueue a message at the destination's mailbox, honoring the fault
  /// plan: the message may be dropped (lost on the wire) or arrive late.
  template <class T>
  void deliver(rank_t dst_world, u64 tag, std::span<const T> data) {
    double extra_delay_s = 0.0;
    if (FaultPlan* fp = team_->fault_plan()) {
      if (!fp->on_send(world_rank(), dst_world, tag, &extra_delay_s))
        return;  // dropped: sender proceeds, receiver never sees it
    }
    Message msg;
    msg.src = world_rank();
    msg.tag = tag;
    msg.arrival_s = clock().now() + extra_delay_s;
    msg.data.resize(data.size() * sizeof(T));
    if (!msg.data.empty())
      std::memcpy(msg.data.data(), data.data(), msg.data.size());
    // Pairwise happens-before edge: the message carries the sender's
    // vector clock; the receiver joins it on delivery. (A dropped message
    // never reaches this point and publishes no edge.)
    if (auto* rd = team_->race_detector()) rd->on_send(world_rank(), msg.hb_vc);
    team_->mailboxes_[dst_world]->push(std::move(msg));
  }

  /// Borrowed-payload delivery: the message carries a pointer into the
  /// sender's buffer plus the BorrowState the receiver signals after
  /// copying. A fault-dropped send returns the loan immediately — the
  /// receiver never sees the message, so nobody else would.
  void deliver_borrowed(rank_t dst_world, u64 tag,
                        std::span<const std::byte> payload,
                        const std::shared_ptr<BorrowState>& state) {
    double extra_delay_s = 0.0;
    if (FaultPlan* fp = team_->fault_plan()) {
      if (!fp->on_send(world_rank(), dst_world, tag, &extra_delay_s)) {
        state->signal();  // dropped on the wire: loan returns to the sender
        return;
      }
    }
    Message msg;
    msg.src = world_rank();
    msg.tag = tag;
    msg.arrival_s = clock().now() + extra_delay_s;
    msg.borrowed = payload.data();
    msg.borrowed_bytes = payload.size();
    msg.borrow = state;
    if (auto* rd = team_->race_detector()) rd->on_send(world_rank(), msg.hb_vc);
    team_->mailboxes_[dst_world]->push(std::move(msg));
  }

  /// Shared receive body: pop the matching message, join its HB edge, sync
  /// the clock, then copy the payload (inline or borrowed) to wherever
  /// `place(nbytes)` points and return the loan if there is one. Returns
  /// the payload size in bytes.
  template <class PlaceFn>
  usize recv_bytes_into(int src, u64 tag, PlaceFn&& place) {
    const rank_t sw = world_rank_of(src);
    note_op(detail::OpId::Recv, obs::OpClass::Recv, 0, sw, tag);
    Message msg;
    {
      detail::SiteScope site(progress(), detail::WaitSite::MailboxRecv,
                             static_cast<u64>(sw), tag);
      msg = team_->mailboxes_[world_rank()]->pop(sw, tag);
    }
    if (auto* rd = team_->race_detector()) rd->on_recv(world_rank(), msg.hb_vc);
    clock().sync_to(std::max(clock().now(), msg.arrival_s));
    const bool borrowed = msg.borrow != nullptr;
    const std::byte* payload = borrowed ? msg.borrowed : msg.data.data();
    const usize nbytes = borrowed ? msg.borrowed_bytes : msg.data.size();
    std::byte* out = place(nbytes);
    if (nbytes > 0) std::memcpy(out, payload, nbytes);
    // Signal strictly after the copy: the sender's wait() + this mutex
    // round-trip give the copy a happens-before edge to buffer reuse.
    if (borrowed) {
      msg.borrow->signal();
      if (model::ScheduleHook* hook = team_->cfg_.model)
        hook->note_effect(model::Site::Borrow, msg.borrow.get(), 0, 0);
    }
    tracer().op_bytes(nbytes);
    tracer().op_end(clock().now());
    return nbytes;
  }

  void zero_out(detail::EpochArena& a) {
    a.result.clear();
    fill_out(a, 0, 0);
  }

  void fill_out(detail::EpochArena& a, usize off, usize len) {
    for (int r = 0; r < size(); ++r) {
      a.out_off[r] = off;
      a.out_len[r] = len;
    }
  }

  /// Progress ledger of this rank (owned by the enclosing Team, read by the
  /// watchdog).
  detail::ProgressState& progress() {
    return team_->progress_[world_rank()];
  }

  /// This rank's tracer (owned by the enclosing Team; always present, the
  /// full event buffers are only populated when TeamConfig::trace is set).
  obs::RankTracer& tracer() {
    return *team_->tracers_[static_cast<usize>(world_rank())];
  }

  /// Book-keeping common to every communication op: update the progress
  /// ledger (watchdog), open a trace event, and consult the fault plan,
  /// which may crash this rank (rank_failed) or straggle its SimClock.
  /// The tracer opens before the fault hook so an injected straggler delay
  /// is attributed to the op it stalls.
  void note_op(detail::OpId op, obs::OpClass cls, u64 bytes = 0, i32 peer = -1,
               u64 tag = 0, net::Traffic traffic = net::Traffic::Control) {
    auto& ps = progress();
    ps.last_op.store(static_cast<u32>(op), std::memory_order_relaxed);
    ps.sim_clock.store(clock().now(), std::memory_order_relaxed);
    ps.ops.fetch_add(1, std::memory_order_relaxed);
    // Static-matcher tap (hds::model): record the symbolic op before any
    // payload moves, so the per-rank schedules survive a
    // collective_mismatch abort and the matcher can lint them afterwards.
    if (auto* rec = team_->cfg_.recorder)
      rec->note_op(world_rank(), state_->members, op, cls, peer, tag);
    tracer().op_begin(op, cls, clock().phase(), clock().now(), bytes, peer,
                      tag, traffic);
    if (FaultPlan* fp = team_->fault_plan()) {
      try {
        fp->on_op(world_rank(), static_cast<u32>(op), clock());
      } catch (const rank_failed&) {
        // Poison the team before the victim unwinds: any BorrowToken the
        // victim still holds drains instantly in its destructor (the abort
        // flag is already set) instead of spinning until the watchdog, and
        // peers see the failure at their next blocking op.
        team_->note_rank_failure(world_rank());
        throw;
      }
    }
  }

  /// Release-mode guard, run by the root executor between the barriers:
  /// every member must have entered the same collective this round. A
  /// mismatch (one rank in allreduce while another is in barrier) is a
  /// programming error that would silently corrupt data or deadlock under
  /// MPI; here it aborts the team with a structured report naming the
  /// participating ranks and their attempted ops.
  void check_matching_ops(const detail::EpochArena& ep, detail::OpId op) {
    bool mismatch = false;
    for (const auto& s : ep.slots)
      if (s.op_id != static_cast<u32>(op)) mismatch = true;
    if (!mismatch) return;
    std::ostringstream os;
    os << "collective mismatch on communicator of size " << size()
       << ": members entered different collectives in the same round —";
    for (int r = 0; r < size(); ++r)
      os << "\n  rank " << r << " (world " << world_rank_of(r) << "): "
         << detail::op_name(static_cast<detail::OpId>(ep.slots[r].op_id));
    throw collective_mismatch(os.str());
  }

  /// The generic two-barrier collective. `root_fn` runs on member 0 between
  /// the barriers and must populate result/out_off/out_len and return the
  /// modelled cost in seconds.
  /// `hb_root` is the member index whose contribution rooted collectives
  /// (Broadcast/Gatherv) pivot on; the race checker derives the op's
  /// logical happens-before shape from it (-1 for symmetric ops).
  /// `pub_flags` is published in this member's slot for op-specific
  /// executor decisions (kSlotWantsCounts).
  template <class RootFn>
  detail::EpochArena& collective(detail::OpId op, obs::OpClass cls,
                                 const void* in, usize bytes,
                                 const usize* counts, RootFn&& root_fn,
                                 i32 peer = -1,
                                 net::Traffic traffic = net::Traffic::Control,
                                 int hb_root = -1, u32 pub_flags = 0) {
    note_op(op, cls, bytes, peer, /*tag=*/0, traffic);
    auto& ep = state_->epochs[round_++ & 1u];
    auto& slot = ep.slots[idx_];
    slot.in = in;
    slot.bytes = bytes;
    slot.counts = counts;
    slot.clock = clock().now();
    slot.op_id = static_cast<u32>(op);
    slot.flags = pub_flags;
    {
      detail::SiteScope site(progress(), detail::WaitSite::Barrier);
      state_->barrier.wait();
    }
    if (idx_ == 0) {
      check_matching_ops(ep, op);
      // Happens-before publication: the executor drives the whole logical
      // transaction while every member is parked between the two barriers.
      if (auto* rd = team_->race_detector())
        rd->on_collective(state_, op, state_->members, hb_root);
      double entry = 0.0;
      for (const auto& s : ep.slots) entry = std::max(entry, s.clock);
      ep.model_cost = root_fn(ep);
      ep.sync_time = entry + ep.model_cost;
    }
    {
      detail::SiteScope site(progress(), detail::WaitSite::Barrier);
      state_->barrier.wait();
    }
    return ep;
  }

  /// Pull-mode two-barrier collective: same protocol as collective(), but
  /// every member additionally runs `member_fn` between the barriers —
  /// copying its incoming blocks directly out of the other members'
  /// published spans, so the payload is touched exactly once and the copy
  /// work is spread over all ranks instead of serialized on the executor.
  /// `root_fn` only computes the modelled cost here (it must not touch the
  /// arena result). `member_fn` runs concurrently with the root's
  /// mismatch check, so it must verify each slot's op_id before
  /// dereferencing op-specific fields and bail out on a mismatch (the root
  /// aborts the team right after). ep.sync_time is only read after barrier
  /// #2 (in finish()), so the root's write does not race with member pulls.
  template <class RootFn, class MemberFn>
  detail::EpochArena& collective_pull(detail::OpId op, obs::OpClass cls,
                                      const void* in, usize bytes,
                                      const usize* counts, RootFn&& root_fn,
                                      MemberFn&& member_fn,
                                      net::Traffic traffic) {
    note_op(op, cls, bytes, /*peer=*/-1, /*tag=*/0, traffic);
    auto& ep = state_->epochs[round_++ & 1u];
    auto& slot = ep.slots[idx_];
    slot.in = in;
    slot.bytes = bytes;
    slot.counts = counts;
    slot.clock = clock().now();
    slot.op_id = static_cast<u32>(op);
    slot.flags = 0;
    {
      detail::SiteScope site(progress(), detail::WaitSite::Barrier);
      state_->barrier.wait();
    }
    if (idx_ == 0) {
      check_matching_ops(ep, op);
      if (auto* rd = team_->race_detector())
        rd->on_collective(state_, op, state_->members, /*hb_root=*/-1);
      double entry = 0.0;
      for (const auto& s : ep.slots) entry = std::max(entry, s.clock);
      ep.model_cost = root_fn(ep);
      ep.sync_time = entry + ep.model_cost;
    }
    try {
      member_fn(ep);
    } catch (...) {
      // Peers may still be pulling from this rank's published span, which
      // unwinding would free under them: arrive at barrier #2 first so
      // every member is done with the buffers, then propagate. A failure
      // of the barrier itself (team abort) must not mask the original
      // error.
      try {
        detail::SiteScope site(progress(), detail::WaitSite::Barrier);
        state_->barrier.wait();
      } catch (...) {  // NOLINT(bugprone-empty-catch)
      }
      throw;
    }
    {
      detail::SiteScope site(progress(), detail::WaitSite::Barrier);
      state_->barrier.wait();
    }
    return ep;
  }

  /// Pull-mode alltoallv body shared by the alltoallv_into overloads.
  /// `dst_fn(total, recv_counts)` must return a T* with room for `total`
  /// elements; it runs on this rank between the barriers. The cost matrix
  /// is byte-for-byte the one the packed path charges, so simulated time
  /// is bit-identical between the two paths.
  template <class T, class DstFn>
  void alltoallv_pull(std::span<const T> data,
                      std::span<const usize> send_counts, DstFn&& dst_fn,
                      std::vector<usize>& recv_counts, net::Traffic traffic) {
    check_trivial<T>();
    HDS_CHECK(send_counts.size() == static_cast<usize>(size()));
    usize total_send = 0;
    for (usize c : send_counts) total_send += c;
    HDS_CHECK_MSG(total_send == data.size(),
                  "alltoallv_into: send counts (" << total_send
                      << ") != data size (" << data.size() << ")");

    auto& ep = collective_pull(
        detail::OpId::Alltoallv, obs::OpClass::Alltoall, data.data(),
        data.size() * sizeof(T), send_counts.data(),
        [&](detail::EpochArena& a) {
          // Executor: cost only — the payload moves via member pulls.
          const int P = size();
          auto& matrix = a.scratch_b;
          matrix.resize(usize(P) * P);
          for (int src = 0; src < P; ++src)
            for (int dst = 0; dst < P; ++dst)
              matrix[usize(src) * P + dst] =
                  a.slots[src].counts[dst] * sizeof(T);
          return cost().alltoallv(state_->members, matrix, traffic);
        },
        [&](detail::EpochArena& a) {
          const int P = size();
          const auto op = static_cast<u32>(detail::OpId::Alltoallv);
          recv_counts.resize(static_cast<usize>(P));
          usize total = 0;
          for (int src = 0; src < P; ++src) {
            // Mismatched collective: this slot's counts pointer is not
            // ours to read; bail and let the root abort the team.
            if (a.slots[src].op_id != op) return;
            recv_counts[src] = a.slots[src].counts[idx_];
            total += recv_counts[src];
          }
          T* out = dst_fn(total, recv_counts);
          usize off = 0;
          for (int src = 0; src < P; ++src) {
            const usize c = recv_counts[src];
            if (c > 0) {
              usize skip = 0;  // sender's elements bound for members < us
              for (int d = 0; d < idx_; ++d) skip += a.slots[src].counts[d];
              std::memcpy(out + off,
                          static_cast<const T*>(a.slots[src].in) + skip,
                          c * sizeof(T));
            }
            off += c;
          }
        },
        traffic);
    if (tracer().enabled())
      for (int d = 0; d < size(); ++d)
        if (send_counts[static_cast<usize>(d)] > 0)
          tracer().op_detail(world_rank_of(d),
                             send_counts[static_cast<usize>(d)] * sizeof(T));
    finish(ep);
  }

  /// Common epilogue: fast-forward the clock to the collective exit time
  /// and close the op's trace event at it. ep.model_cost is safe to read
  /// here for the same reason sync_time is: barrier #2 ordered the root's
  /// write before every member's finish.
  void finish(detail::EpochArena& ep) {
    tracer().op_model(ep.model_cost);
    clock().sync_to(ep.sync_time);
    tracer().op_end(clock().now());
  }

  template <class T, class Op>
  T scan_impl(T v, Op op, T init, bool inclusive) {
    check_trivial<T>();
    auto& ep = collective(
        inclusive ? detail::OpId::Scan : detail::OpId::Exscan,
        obs::OpClass::Tree, &v, sizeof(T), nullptr,
        [&](detail::EpochArena& a) {
          a.result.resize(sizeof(T) * size());
          T* out = reinterpret_cast<T*>(a.result.data());
          T acc = init;
          for (int r = 0; r < size(); ++r) {
            const T x = *static_cast<const T*>(a.slots[r].in);
            if (inclusive) {
              acc = (r == 0) ? x : op(acc, x);
              out[r] = acc;
            } else {
              out[r] = acc;
              acc = (r == 0) ? op(init, x) : op(acc, x);
            }
          }
          for (int r = 0; r < size(); ++r) {
            a.out_off[r] = sizeof(T) * static_cast<usize>(r);
            a.out_len[r] = sizeof(T);
          }
          return cost().scan(size(), nodes(), sizeof(T),
                             net::Traffic::Control);
        });
    T out;
    std::memcpy(&out, ep.result.data() + ep.out_off[idx_], sizeof(T));
    finish(ep);
    return out;
  }

  Team* team_;
  detail::CommState* state_;
  int idx_;
  u64 round_ = 0;
};

}  // namespace hds::runtime
