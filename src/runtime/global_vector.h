// GlobalVector: a PGAS-style distributed container in the spirit of
// dash::Array. Storage is partitioned into per-rank shards; each rank
// operates on its local shard ("owner computes") and may perform one-sided
// get/put on remote shards, which are charged with p2p costs like MPI-3 RMA.
//
// One-sided accesses require the same quiescence discipline as RMA epochs:
// do not get() from a shard another rank is concurrently resizing; separate
// such phases with a barrier.
//
// Under a checked run (TeamConfig::check) every access is reported to the
// hds::check::RaceDetector as a shadow-memory event: get/put as
// element-range reads/writes on the owner's shard, local() as a
// whole-shard access (write for the mutable overload — the reference can
// be used to mutate anything, including the size), rebuild_index as a
// write of the shared offsets index by rank 0, and locate-backed calls as
// reads of it. Unordered conflicting cross-rank pairs are reported as
// PGAS consistency violations.
#pragma once

#include <numeric>
#include <vector>

#include "check/race_detector.h"
#include "common/error.h"
#include "runtime/comm.h"

namespace hds::runtime {

template <class T>
class GlobalVector {
 public:
  /// Create with one (initially empty) shard per rank. Construct before
  /// Team::run and share by reference with all ranks.
  explicit GlobalVector(int nranks) : shards_(nranks) {
    HDS_CHECK(nranks >= 1);
  }

  int nshards() const { return static_cast<int>(shards_.size()); }

  /// This rank's shard (by world rank).
  std::vector<T>& local(Comm& comm) {
    if (auto* rd = comm.checker())
      rd->on_access(comm.world_rank(), this, comm.world_rank(), 0,
                    check::kWholeRange, /*is_write=*/true,
                    "GlobalVector::local (mutable)");
    return shards_[comm.world_rank()];
  }
  const std::vector<T>& local(Comm& comm) const {
    if (auto* rd = comm.checker())
      rd->on_access(comm.world_rank(), this, comm.world_rank(), 0,
                    check::kWholeRange, /*is_write=*/false,
                    "GlobalVector::local (const)");
    return shards_[comm.world_rank()];
  }

  /// Direct shard access for setup/verification outside Team::run.
  std::vector<T>& shard(rank_t r) { return shards_.at(r); }
  const std::vector<T>& shard(rank_t r) const { return shards_.at(r); }

  /// Collective: recompute the global index (shard offsets). Must be called
  /// after shard sizes change and before global_size/locate/get/put.
  void rebuild_index(Comm& comm) {
    const usize n = shards_[comm.world_rank()].size();
    std::vector<usize> sizes(comm.size());
    comm.allgather(&n, 1, sizes.data());
    // offsets_ is shared by every rank, so only one may write it. The
    // allgather above orders the write after any prior-phase readers; the
    // barrier below publishes the new index before anyone reads it.
    if (comm.rank() == 0) {
      if (auto* rd = comm.checker())
        rd->on_access(comm.world_rank(), this, check::kIndexShard, 0,
                      check::kWholeRange, /*is_write=*/true,
                      "GlobalVector::rebuild_index");
      offsets_.assign(comm.size() + 1, 0);
      std::partial_sum(sizes.begin(), sizes.end(), offsets_.begin() + 1);
    }
    comm.barrier();
  }

  usize global_size() const {
    HDS_CHECK_MSG(!offsets_.empty(), "rebuild_index() before global_size()");
    return offsets_.back();
  }

  /// Map a global index to (owner shard, local index).
  std::pair<rank_t, usize> locate(usize gidx) const {
    HDS_CHECK_MSG(!offsets_.empty(), "rebuild_index() before locate()");
    HDS_CHECK(gidx < offsets_.back());
    // binary search over offsets
    usize lo = 0, hi = offsets_.size() - 2;
    while (lo < hi) {
      const usize mid = (lo + hi + 1) / 2;
      if (offsets_[mid] <= gidx)
        lo = mid;
      else
        hi = mid - 1;
    }
    return {static_cast<rank_t>(lo), gidx - offsets_[lo]};
  }

  /// One-sided read of a single element (charged as a small RMA get).
  T get(Comm& comm, usize gidx) const {
    const auto [owner, li] = locate(gidx);
    if (auto* rd = comm.checker()) {
      rd->on_access(comm.world_rank(), this, check::kIndexShard, 0,
                    check::kWholeRange, /*is_write=*/false,
                    "GlobalVector::locate (index read)");
      rd->on_access(comm.world_rank(), this, owner, li, li + 1,
                    /*is_write=*/false, "GlobalVector::get");
    }
    comm.charge_seconds(comm.cost().p2p(comm.world_rank(), owner, sizeof(T),
                                        net::Traffic::Control));
    return shards_[owner][li];
  }

  /// One-sided write of a single element (charged as a small RMA put).
  void put(Comm& comm, usize gidx, T value) {
    const auto [owner, li] = locate(gidx);
    if (auto* rd = comm.checker()) {
      rd->on_access(comm.world_rank(), this, check::kIndexShard, 0,
                    check::kWholeRange, /*is_write=*/false,
                    "GlobalVector::locate (index read)");
      rd->on_access(comm.world_rank(), this, owner, li, li + 1,
                    /*is_write=*/true, "GlobalVector::put");
    }
    comm.charge_seconds(comm.cost().p2p(comm.world_rank(), owner, sizeof(T),
                                        net::Traffic::Control));
    shards_[owner][li] = value;
  }

 private:
  std::vector<std::vector<T>> shards_;
  std::vector<usize> offsets_;  ///< shard start offsets; size nshards + 1
};

}  // namespace hds::runtime
