// Point-to-point messaging between ranks: one MPSC mailbox per rank with
// (source, tag) matching, FIFO per channel, and simulated arrival times so
// the receiver's clock advances consistently with the cost model.
#pragma once

#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "common/types.h"
#include "runtime/barrier.h"

namespace hds::runtime {

struct Message {
  rank_t src = 0;
  u64 tag = 0;
  std::vector<std::byte> data;
  double arrival_s = 0.0;  ///< simulated time the message is fully received
  /// Sender's vector clock (hds::check pairwise happens-before edge);
  /// empty — never allocated — unless the run is checked.
  std::vector<u64> hb_vc;
};

class Mailbox {
 public:
  explicit Mailbox(const std::atomic<bool>* abort_flag) : abort_(abort_flag) {}

  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  void push(Message msg) {
    {
      std::lock_guard lock(mu_);
      msgs_.push_back(std::move(msg));
    }
    cv_.notify_all();
  }

  /// Pop the oldest message matching (src, tag). Blocks; throws team_aborted
  /// if the team is poisoned while waiting.
  Message pop(rank_t src, u64 tag) {
    std::unique_lock lock(mu_);
    for (;;) {
      if (abort_->load(std::memory_order_relaxed)) throw team_aborted();
      for (auto it = msgs_.begin(); it != msgs_.end(); ++it) {
        if (it->src == src && it->tag == tag) {
          Message out = std::move(*it);
          msgs_.erase(it);
          return out;
        }
      }
      cv_.wait(lock);
    }
  }

  void poison() {
    std::lock_guard lock(mu_);
    cv_.notify_all();
  }

  /// Undelivered messages sitting in this mailbox (watchdog diagnostic).
  usize pending() const {
    std::lock_guard lock(mu_);
    return msgs_.size();
  }

  /// (src, tag) of up to `max` undelivered messages, for the watchdog dump:
  /// a receiver stuck on one channel often has the "wrong" message queued.
  std::vector<std::pair<rank_t, u64>> pending_channels(usize max = 4) const {
    std::lock_guard lock(mu_);
    std::vector<std::pair<rank_t, u64>> out;
    for (const auto& m : msgs_) {
      if (out.size() >= max) break;
      out.emplace_back(m.src, m.tag);
    }
    return out;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> msgs_;
  const std::atomic<bool>* abort_;
};

}  // namespace hds::runtime
