// Point-to-point messaging between ranks: one MPSC mailbox per rank with
// (source, tag) matching, FIFO per channel, and simulated arrival times so
// the receiver's clock advances consistently with the cost model.
#pragma once

#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <vector>

#include "common/types.h"
#include "runtime/barrier.h"

namespace hds::runtime {

struct Message {
  rank_t src = 0;
  u64 tag = 0;
  std::vector<std::byte> data;
  double arrival_s = 0.0;  ///< simulated time the message is fully received
};

class Mailbox {
 public:
  explicit Mailbox(const std::atomic<bool>* abort_flag) : abort_(abort_flag) {}

  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  void push(Message msg) {
    {
      std::lock_guard lock(mu_);
      msgs_.push_back(std::move(msg));
    }
    cv_.notify_all();
  }

  /// Pop the oldest message matching (src, tag). Blocks; throws team_aborted
  /// if the team is poisoned while waiting.
  Message pop(rank_t src, u64 tag) {
    std::unique_lock lock(mu_);
    for (;;) {
      if (abort_->load(std::memory_order_relaxed)) throw team_aborted();
      for (auto it = msgs_.begin(); it != msgs_.end(); ++it) {
        if (it->src == src && it->tag == tag) {
          Message out = std::move(*it);
          msgs_.erase(it);
          return out;
        }
      }
      cv_.wait(lock);
    }
  }

  void poison() {
    std::lock_guard lock(mu_);
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> msgs_;
  const std::atomic<bool>* abort_;
};

}  // namespace hds::runtime
