// Point-to-point messaging between ranks: one MPSC mailbox per rank with
// (source, tag) matching, FIFO per channel, and simulated arrival times so
// the receiver's clock advances consistently with the cost model.
//
// Messages are indexed by (src, tag) channel so pop() is O(log channels)
// instead of O(pending): a hierarchical exchange parks hundreds of fan-out
// payloads in a leader's mailbox, and the old linear scan re-walked all of
// them on every wakeup. push() pairs with a targeted notify_one — each
// mailbox has exactly one consumer (the owning rank), so waking more than
// one waiter is never useful.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "common/types.h"
#include "runtime/barrier.h"

namespace hds::runtime {

/// Rendezvous handle for a borrowed-payload send (Comm::send_borrowed).
/// The sender's buffer is lent to the receiver by pointer; the receiver
/// copies it out and signals, and the sender must not free or mutate the
/// buffer until wait() returns. Signal/wait pair under the mutex, so the
/// receiver's copy happens-before the sender's reuse in the host-thread
/// (TSan) sense as well as logically.
class BorrowState {
 public:
  void signal() {
    {
      std::lock_guard lock(mu_);
      done_ = true;
    }
    cv_.notify_one();
  }

  /// Block until the receiver released the buffer. Throws team_aborted if
  /// the team is poisoned while waiting (polled: the token is not wired
  /// into the Team's poison fan-out). Under a controlled schedule the poll
  /// is replaced by a scheduler park — spinning would starve every other
  /// rank of the baton.
  void wait(const std::atomic<bool>* abort,
            model::ScheduleHook* hook = nullptr) {
    if (hook != nullptr) {
      park(abort, hook);
      std::lock_guard lock(mu_);
      if (!done_) throw team_aborted();  // released in abort mode
      return;
    }
    std::unique_lock lock(mu_);
    while (!done_) {
      if (abort->load(std::memory_order_relaxed)) throw team_aborted();
      cv_.wait_for(lock, std::chrono::milliseconds(1));
    }
  }

  /// Non-throwing drain for unwind paths (BorrowToken's destructor):
  /// returns once the loan is returned, or once the team is aborting — in
  /// which case the receiver is unwinding too and will not touch the
  /// buffer again.
  void wait_nothrow(const std::atomic<bool>* abort,
                    model::ScheduleHook* hook = nullptr) noexcept {
    if (hook != nullptr) {
      park(abort, hook);  // returns with the loan done or the team aborting
      return;
    }
    std::unique_lock lock(mu_);
    while (!done_) {
      if (abort == nullptr || abort->load(std::memory_order_relaxed)) return;
      cv_.wait_for(lock, std::chrono::milliseconds(1));
    }
  }

  bool done() const {
    std::lock_guard lock(mu_);
    return done_;
  }

 private:
  /// Controlled-schedule wait: ready once the loan returned or the team is
  /// aborting (either way nobody touches the buffer again).
  void park(const std::atomic<bool>* abort,
            model::ScheduleHook* hook) noexcept {
    hook->park(model::Site::Borrow, this, 0, 0, [this, abort] {
      std::lock_guard lock(mu_);
      return done_ || abort == nullptr ||
             abort->load(std::memory_order_relaxed);
    });
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
};

struct Message {
  rank_t src = 0;
  u64 tag = 0;
  std::vector<std::byte> data;
  double arrival_s = 0.0;  ///< simulated time the message is fully received
  /// Sender's vector clock (hds::check pairwise happens-before edge);
  /// empty — never allocated — unless the run is checked.
  std::vector<u64> hb_vc;
  /// Borrowed-payload transport (Comm::send_borrowed): the payload stays in
  /// the sender's buffer and `data` stays empty. The receiver copies
  /// `borrowed_bytes` from `borrowed` and signals `borrow` to return the
  /// loan. A fault-dropped borrowed send signals immediately instead.
  const std::byte* borrowed = nullptr;
  usize borrowed_bytes = 0;
  std::shared_ptr<BorrowState> borrow;
};

class Mailbox {
 public:
  explicit Mailbox(const std::atomic<bool>* abort_flag, rank_t owner = 0,
                   model::ScheduleHook* hook = nullptr)
      : owner_(owner), abort_(abort_flag), hook_(hook) {}

  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  void push(Message msg) {
    const rank_t src = msg.src;
    const u64 tag = msg.tag;
    {
      std::lock_guard lock(mu_);
      auto& q = channels_[{src, tag}];
      // Seeded mutation hook (model checker only): deliver this message
      // ahead of the channel's queued ones — a FIFO violation the explorer
      // must catch as an output divergence.
      if (hook_ != nullptr && !q.empty() &&
          hook_->mutate_reorder_push(static_cast<int>(owner_),
                                     static_cast<int>(src), tag))
        q.push_front(std::move(msg));
      else
        q.push_back(std::move(msg));
      ++pending_;
    }
    if (hook_ != nullptr)
      hook_->note_effect(model::Site::Mailbox, this, static_cast<u64>(src),
                         tag);
    cv_.notify_one();
  }

  /// Pop the oldest message matching (src, tag). Blocks; throws team_aborted
  /// if the team is poisoned while waiting.
  Message pop(rank_t src, u64 tag) {
    const std::pair<rank_t, u64> key{src, tag};
    if (hook_ != nullptr) {
      hook_->park(model::Site::Mailbox, this, static_cast<u64>(src), tag,
                  [this, key] {
                    std::lock_guard lock(mu_);
                    return channels_.find(key) != channels_.end() ||
                           abort_->load(std::memory_order_relaxed);
                  });
      std::lock_guard lock(mu_);
      auto it = channels_.find(key);
      if (it == channels_.end()) throw team_aborted();  // abort-mode release
      Message out = std::move(it->second.front());
      it->second.pop_front();
      if (it->second.empty()) channels_.erase(it);
      --pending_;
      return out;
    }
    std::unique_lock lock(mu_);
    for (;;) {
      if (abort_->load(std::memory_order_relaxed)) throw team_aborted();
      if (auto it = channels_.find(key); it != channels_.end()) {
        Message out = std::move(it->second.front());
        it->second.pop_front();
        if (it->second.empty()) channels_.erase(it);
        --pending_;
        return out;
      }
      cv_.wait(lock);
    }
  }

  void poison() {
    std::lock_guard lock(mu_);
    cv_.notify_all();
  }

  /// Drop every undelivered message (failure recovery: stale messages from
  /// the aborted epoch must not be matched by post-recovery receives).
  /// Pending borrowed payloads are signalled — their senders have unwound
  /// past the abort and nobody will read the buffers again.
  void reset() {
    std::lock_guard lock(mu_);
    for (auto& [key, q] : channels_)
      for (auto& m : q)
        if (m.borrow) m.borrow->signal();
    channels_.clear();
    pending_ = 0;
  }

  /// Undelivered messages sitting in this mailbox (watchdog diagnostic).
  usize pending() const {
    std::lock_guard lock(mu_);
    return pending_;
  }

  /// (src, tag) of up to `max` undelivered channels, for the watchdog dump:
  /// a receiver stuck on one channel often has the "wrong" message queued.
  std::vector<std::pair<rank_t, u64>> pending_channels(usize max = 4) const {
    std::lock_guard lock(mu_);
    std::vector<std::pair<rank_t, u64>> out;
    for (const auto& [key, q] : channels_) {
      if (out.size() >= max) break;
      if (!q.empty()) out.push_back(key);
    }
    return out;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// FIFO per (src, tag); empty deques are erased so the map stays small.
  std::map<std::pair<rank_t, u64>, std::deque<Message>> channels_;
  usize pending_ = 0;
  rank_t owner_;  ///< world rank this mailbox belongs to (model footprints)
  const std::atomic<bool>* abort_;
  model::ScheduleHook* hook_;  ///< controlled scheduling; null in production
};

}  // namespace hds::runtime
