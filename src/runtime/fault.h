// Fault layer: deterministic fault injection plus the structured failure
// types the hardened runtime reports.
//
// A FaultPlan is armed on TeamConfig and consulted by Comm at every
// communication operation (collectives, split, send, recv). Actions are
// keyed on (rank, k-th op on that rank) or on (src, dst, tag) message
// coordinates, so a test can crash an exact superstep of a distributed
// algorithm, straggle one rank's SimClock, or drop/delay a specific
// message — and observe precisely which abort path fires. Actions may also
// be keyed on the k-th op *within a phase* (crash the 2nd op of the
// Exchange superstep, regardless of how many histogram rounds ran first).
// Each action is one-shot — once triggered it is consumed, which is what
// makes Team::run_with_retry converge after an injected failure — but a
// plan may hold many actions, so multi-fault schedules (back-to-back
// crashes during a recovery, or correlated same-op crashes of several
// ranks) are expressed by arming several actions at once.
//
// The failure types (rank_failed, collective_mismatch, watchdog_timeout)
// live here rather than in common/error.h because they are runtime-layer
// contracts: they carry rank/op diagnostics and are produced only by the
// Team/Comm machinery.
#pragma once

#include <mutex>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "net/sim.h"

namespace hds::runtime {

/// Thrown by FaultPlan inside the victim rank: the simulated equivalent of
/// a process dying mid-run. Peers unwind via team_aborted; Team::run
/// rethrows this original error.
class rank_failed : public std::runtime_error {
 public:
  rank_failed(rank_t rank, u64 op_index)
      : std::runtime_error(format(rank, op_index)),
        rank_(rank),
        op_index_(op_index) {}

  rank_t rank() const { return rank_; }
  u64 op_index() const { return op_index_; }

 private:
  static std::string format(rank_t rank, u64 op_index) {
    std::ostringstream os;
    os << "injected fault: rank " << rank << " failed at op #" << op_index;
    return os.str();
  }
  rank_t rank_;
  u64 op_index_;
};

/// Thrown (release builds included) when the members of a communicator
/// enter different collectives in the same round. The message groups the
/// participating ranks by the operation they attempted.
class collective_mismatch : public std::logic_error {
 public:
  explicit collective_mismatch(std::string what)
      : std::logic_error(std::move(what)) {}
};

/// Thrown out of Team::run when the watchdog observed no progress on any
/// rank for longer than TeamConfig::watchdog_timeout_s. what() carries the
/// full per-rank diagnostic dump (last op, waiting site, sim clock).
class watchdog_timeout : public std::runtime_error {
 public:
  explicit watchdog_timeout(std::string what)
      : std::runtime_error(std::move(what)) {}
};

/// Deterministic, seeded fault schedule. Thread-safe: hooks are called
/// concurrently from every rank. Builders are chainable:
///
///   auto plan = std::make_shared<FaultPlan>(42);
///   plan->crash_rank_at_op(3, 17).delay_message(0, 1, kTag, 0.5);
///   cfg.fault = plan;
///
/// Op indices are 0-based and count, per rank, every collective (including
/// split) and every send/recv that rank issues within one Team::run.
/// Counters reset at the start of each run; consumed actions stay consumed
/// until rearm().
class FaultPlan {
 public:
  explicit FaultPlan(u64 seed = 0) : seed_(seed), rng_(seed) {}

  // --- schedule builders ----------------------------------------------------

  /// Rank `rank` throws rank_failed when it reaches its k-th op.
  FaultPlan& crash_rank_at_op(rank_t rank, u64 k);
  /// Rank `rank` becomes a straggler: its SimClock is advanced by
  /// `sim_seconds` when it reaches its k-th op.
  FaultPlan& delay_rank_at_op(rank_t rank, u64 k, double sim_seconds);
  /// Phase-targeted crash: rank `rank` throws rank_failed when it reaches
  /// its k-th op whose SimClock phase is `phase` (k counts per phase, so
  /// "2nd op of Exchange" is stable even when histogram round counts vary).
  FaultPlan& crash_rank_at_phase_op(rank_t rank, net::Phase phase, u64 k);
  /// Phase-targeted straggler, same keying as crash_rank_at_phase_op.
  FaultPlan& delay_rank_at_phase_op(rank_t rank, net::Phase phase, u64 k,
                                    double sim_seconds);
  /// Correlated multi-rank crash: every listed rank fails at its own k-th
  /// op (the simulated analogue of losing a whole node).
  FaultPlan& crash_ranks_at_op(std::span<const rank_t> ranks, u64 k);
  /// Back-to-back schedule: rank `rank` crashes at each op index in `ks`
  /// (useful when recovery keeps the run alive past the first failure).
  FaultPlan& crash_rank_at_ops(rank_t rank, std::span<const u64> ks);
  /// The first message src->dst with `tag` is silently lost (the sender is
  /// still charged for the transfer; the receiver blocks until the
  /// watchdog converts the hang into an abort).
  FaultPlan& drop_message(rank_t src, rank_t dst, u64 tag);
  /// The first message src->dst with `tag` arrives `sim_seconds` late.
  FaultPlan& delay_message(rank_t src, rank_t dst, u64 tag,
                           double sim_seconds);
  /// Drop every message independently with probability p, using the
  /// plan's seeded RNG (reproducible across runs with the same seed and
  /// message order per channel).
  FaultPlan& drop_messages_with_probability(double p);

  /// Re-arm all consumed actions (op counters still reset per run).
  void rearm();

  // --- runtime hooks (called by Team/Comm) ----------------------------------

  /// Called at the start of every Team::run: resets per-rank op counters.
  void begin_run(int nranks);
  /// Called by rank `rank` at the start of its next op. May throw
  /// rank_failed (crash) or advance `clock` (straggler). Returns the op's
  /// 0-based index on this rank.
  u64 on_op(rank_t rank, u32 op_id, net::SimClock& clock);
  /// Called on every send. Returns false if the message must be dropped;
  /// otherwise *extra_delay_s is the additional simulated arrival delay.
  bool on_send(rank_t src, rank_t dst, u64 tag, double* extra_delay_s);

  // --- introspection --------------------------------------------------------

  /// Ops issued by `rank` during the most recent (or current) run. Useful
  /// for sweeping an injected crash across every op of an algorithm.
  u64 ops_observed(rank_t rank) const;
  /// Ops issued by `rank` while its SimClock was in `phase` (same keying
  /// as crash_rank_at_phase_op, for sweeping crashes within a superstep).
  u64 ops_observed_in_phase(rank_t rank, net::Phase phase) const;
  u64 seed() const { return seed_; }

 private:
  struct OpAction {
    rank_t rank;
    u64 k;
    bool crash;       ///< crash vs. straggler delay
    double delay_s;   ///< straggler SimClock advance
    i32 phase = -1;   ///< net::Phase filter; -1 keys k on the global counter
    bool armed = true;
  };
  struct MsgAction {
    rank_t src;
    rank_t dst;
    u64 tag;
    bool drop;       ///< drop vs. delivery delay
    double delay_s;  ///< arrival delay
    bool armed = true;
  };

  mutable std::mutex mu_;
  u64 seed_;
  Xoshiro256 rng_;
  double drop_prob_ = 0.0;
  std::vector<OpAction> op_actions_;
  std::vector<MsgAction> msg_actions_;
  std::vector<u64> op_count_;
  /// Per-rank, per-phase op counters (op_phase_count_[rank * kPhaseCount +
  /// phase]), driving the phase-targeted actions.
  std::vector<u64> op_phase_count_;
};

}  // namespace hds::runtime
