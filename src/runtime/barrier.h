// Abortable sense-reversing barrier.
//
// All bulk-synchronous progress in the runtime funnels through this
// primitive. If any rank fails (throws), the Team poisons every barrier so
// waiting ranks wake up and unwind instead of deadlocking — the moral
// equivalent of MPI_Abort, but recoverable within the host process.
//
// Note for the race checker (src/check/): this is a *physical* barrier.
// It orders host threads, but it publishes no logical happens-before edge
// — those come only from the op-shaped joins RaceDetector::on_collective
// applies. The distinction is the whole point of hds::check: the two
// rendezvous wrapping every collective physically order accesses that real
// one-sided communication would leave unordered, which is why TSan cannot
// see a missing logical fence here (DESIGN.md sec. 10). Keep it that way:
// if some new code path synchronizes through a raw Barrier outside
// Comm::collective, the checker will (correctly) flag accesses it orders.
#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>

#include "common/error.h"
#include "common/types.h"
#include "model/hook.h"

namespace hds::runtime {

/// Thrown out of ranks that were parked in a collective when another rank
/// failed. The Team reports the original error, not this one.
class team_aborted : public std::runtime_error {
 public:
  team_aborted() : std::runtime_error("team aborted: a peer rank failed") {}
};

class Barrier {
 public:
  Barrier(int count, const std::atomic<bool>* abort_flag,
          model::ScheduleHook* hook = nullptr)
      : count_(count), abort_(abort_flag), hook_(hook) {
    HDS_CHECK(count >= 1);
  }

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  /// Block until all `count` ranks arrive. Throws team_aborted if the team
  /// was poisoned while waiting (or on entry).
  void wait() {
    if (hook_ != nullptr) {
      wait_controlled();
      return;
    }
    std::unique_lock lock(mu_);
    if (abort_->load(std::memory_order_relaxed)) throw team_aborted();
    const bool sense = sense_;
    if (++waiting_ == count_) {
      waiting_ = 0;
      sense_ = !sense_;
      cv_.notify_all();
      return;
    }
    cv_.wait(lock, [&] {
      return sense_ != sense || abort_->load(std::memory_order_relaxed);
    });
    if (sense_ == sense) {
      // Woken by poison: withdraw from the barrier so a later run on this
      // team starts from a clean count.
      --waiting_;
      throw team_aborted();
    }
  }

  /// Wake all waiters so they can observe the abort flag.
  void poison() {
    std::lock_guard lock(mu_);
    cv_.notify_all();
  }

  /// Ranks currently parked in wait() (diagnostic; racy by nature — the
  /// watchdog reads it while ranks move, which is fine for a dump).
  int waiting() const {
    std::lock_guard lock(mu_);
    return waiting_;
  }

  int participants() const { return count_; }

 private:
  /// Hooked wait (DESIGN.md sec. 15): the arrival is an effect for the
  /// independence relation, and a non-final arriver parks through the
  /// scheduler instead of the condition variable. The predicate is
  /// evaluated by the scheduler while no rank runs, so taking mu_ inside
  /// it is contention-free. Hook calls happen strictly outside mu_ — the
  /// scheduler lock nests primitive locks (predicates), never the other
  /// way around (lock-order discipline, TSan-checked).
  void wait_controlled() {
    if (hook_->mutate_drop_barrier()) return;  // seeded mutation: skip entry
    bool sense = false;
    bool final_arriver = false;
    {
      std::lock_guard lock(mu_);
      if (abort_->load(std::memory_order_relaxed)) throw team_aborted();
      sense = sense_;
      if (++waiting_ == count_) {
        waiting_ = 0;
        sense_ = !sense_;
        final_arriver = true;
      }
    }
    hook_->note_effect(model::Site::Barrier, this, 0, 0);
    if (final_arriver) return;  // final arriver releases the epoch, runs on
    hook_->park(model::Site::Barrier, this, 0, 0, [this, sense] {
      std::lock_guard lock(mu_);
      return sense_ != sense || abort_->load(std::memory_order_relaxed);
    });
    std::lock_guard lock(mu_);
    if (sense_ == sense) {
      // Released in abort mode: withdraw so a later run starts clean.
      --waiting_;
      throw team_aborted();
    }
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  const int count_;
  int waiting_ = 0;
  bool sense_ = false;
  const std::atomic<bool>* abort_;
  model::ScheduleHook* hook_;  ///< controlled scheduling; null in production
};

}  // namespace hds::runtime
