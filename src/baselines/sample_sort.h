// Sample sort (Sec. III-A): the classic three-superstep algorithm, with both
// random sampling (Frazer & McKellar lineage) and regular sampling
// (Shi & Schaeffer). Splitters are chosen once from a sample — fast, but
// with no load-balance guarantee; the resulting imbalance is exactly what
// the histogramming approach of the paper eliminates.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "common/rng.h"
#include "core/exchange.h"
#include "core/key_traits.h"
#include "core/local_sort.h"
#include "core/merge.h"
#include "runtime/comm.h"

namespace hds::baselines {

enum class Sampling : u8 { Random, Regular };

struct SampleSortConfig {
  Sampling sampling = Sampling::Regular;
  /// Oversampling ratio s: samples contributed per rank.
  usize oversampling = 32;
  u64 seed = 1;
  core::MergeStrategy merge = core::MergeStrategy::Sort;
  core::LocalSortKernel kernel = core::LocalSortKernel::Auto;
};

struct SampleSortStats {
  usize elements_after = 0;
  /// max_i n'_i / (N/P): 1.0 is perfect balance.
  double imbalance = 1.0;
};

/// Sort a distributed vector with sample sort. Output partition sizes are
/// whatever the splitters produce (no balance guarantee).
template <class T>
SampleSortStats sample_sort(runtime::Comm& comm, std::vector<T>& local,
                            const SampleSortConfig& cfg = {}) {
  using Traits = core::KeyTraits<T>;
  core::IdentityKey identity;
  const int P = comm.size();

  // Superstep 0: local sort (needed for regular sampling and for cheap
  // partitioning by binary search).
  {
    net::PhaseScope phase(comm.clock(), net::Phase::LocalSort);
    core::local_sort(comm, local, identity, cfg.kernel);
  }

  // Superstep 1: sampling.
  std::vector<T> my_sample;
  {
    net::PhaseScope phase(comm.clock(), net::Phase::Histogram);
    const usize s = std::min(cfg.oversampling, local.size());
    if (cfg.sampling == Sampling::Regular) {
      // Probe evenly from the locally sorted partition.
      for (usize i = 0; i < s; ++i)
        my_sample.push_back(local[(local.size() - 1) * (2 * i + 1) /
                                  (2 * s)]);
    } else {
      Xoshiro256 rng(hash_mix(cfg.seed, comm.rank()));
      for (usize i = 0; i < s; ++i)
        my_sample.push_back(local[rng.uniform_u64(0, local.size() - 1)]);
    }
    comm.charge_control_scan(s);
  }

  // Superstep 2: the central processor sorts the samples and broadcasts
  // P-1 splitters.
  std::vector<T> splitters(P - 1);
  {
    net::PhaseScope phase(comm.clock(), net::Phase::Histogram);
    std::vector<T> gathered =
        comm.gatherv(std::span<const T>(my_sample), /*root=*/0);
    if (comm.rank() == 0) {
      std::sort(gathered.begin(), gathered.end());
      comm.charge_control_sort(gathered.size());
      for (int i = 1; i < P; ++i) {
        const usize idx = gathered.empty()
                              ? 0
                              : std::min(gathered.size() - 1,
                                         i * gathered.size() / P);
        splitters[i - 1] =
            gathered.empty() ? T{} : gathered[idx];
      }
    }
    if (P > 1) comm.broadcast(splitters.data(), splitters.size(), 0);
  }

  // Superstep 3: partition by splitters and exchange.
  std::vector<T> received;
  std::vector<usize> recv_counts;
  {
    net::PhaseScope phase(comm.clock(), net::Phase::Exchange);
    std::vector<usize> send(P, 0);
    usize prev = 0;
    for (int d = 0; d < P - 1; ++d) {
      const usize cut = core::count_below_equal(
          std::span<const T>(local.data(), local.size()), splitters[d],
          identity);
      send[d] = cut - prev;
      prev = cut;
    }
    send[P - 1] = local.size() - prev;
    comm.charge_binary_search(local.size(), P - 1);
    core::note_exchange_metrics(comm, send, sizeof(T));
    received = comm.alltoallv(std::span<const T>(local.data(), local.size()),
                              send, &recv_counts);
  }

  // Final merge of received runs.
  core::merge_chunks(comm, received, std::span<const usize>(recv_counts),
                     cfg.merge, identity, cfg.kernel);
  local = std::move(received);

  SampleSortStats stats;
  stats.elements_after = local.size();
  // Imbalance verification reductions: part of assessing the sampling
  // quality, so they count as Histogram, not Other.
  net::PhaseScope stats_phase(comm.clock(), net::Phase::Histogram);
  const u64 N =
      comm.allreduce_value<u64>(local.size(), [](u64 a, u64 b) { return a + b; });
  const u64 max_n = comm.allreduce_value<u64>(
      local.size(), [](u64 a, u64 b) { return std::max(a, b); });
  stats.imbalance =
      N == 0 ? 1.0
             : static_cast<double>(max_n) * P / static_cast<double>(N);
  (void)Traits::to_uint(T{});  // T must be a bisectable key type
  return stats;
}

}  // namespace hds::baselines
