// Batcher bitonic sort generalized to N/P > 1 (Sec. III-C): local sort, then
// log2(P) * (log2(P)+1) / 2 compare-exchange rounds; in each round a rank
// swaps its full partition with a hypercube partner and keeps the lower or
// upper half of the pairwise merge. Transfers the data O(log^2 P) times —
// the reason it cannot keep up with sample/histogram sorts when N/P >> 1.
//
// Constraints (inherent to the network): power-of-two rank count and equal
// partition sizes.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "common/bits.h"
#include "common/error.h"
#include "core/local_sort.h"
#include "runtime/comm.h"

namespace hds::baselines {

struct BitonicStats {
  usize rounds = 0;
};

/// Bitonic sort of a distributed vector; every rank must hold the same
/// number of elements and the rank count must be a power of two.
template <class T>
BitonicStats bitonic_sort(
    runtime::Comm& comm, std::vector<T>& local,
    core::LocalSortKernel kernel = core::LocalSortKernel::Auto) {
  core::IdentityKey identity;
  const int P = comm.size();
  if (!is_pow2(static_cast<u64>(P)))
    throw argument_error("bitonic_sort: P must be a power of two");
  const u64 n0 = comm.allreduce_value<u64>(
      local.size(), [](u64 a, u64 b) { return std::max(a, b); });
  const u64 n1 = comm.allreduce_value<u64>(
      local.size(), [](u64 a, u64 b) { return std::min(a, b); });
  if (n0 != n1)
    throw argument_error("bitonic_sort: equal partition sizes required");

  BitonicStats stats;
  {
    net::PhaseScope phase(comm.clock(), net::Phase::LocalSort);
    core::local_sort(comm, local, identity, kernel);
  }
  if (P == 1 || local.empty()) return stats;

  net::PhaseScope phase(comm.clock(), net::Phase::Exchange);
  const int d = static_cast<int>(log2_ceil(static_cast<u64>(P)));
  const usize n = local.size();
  std::vector<T> merged(2 * n);

  for (int stage = 1; stage <= d; ++stage) {
    for (int step = stage; step >= 1; --step) {
      ++stats.rounds;
      const int partner = comm.rank() ^ (1 << (step - 1));
      // Ascending iff the stage-th bit of the rank is 0.
      const bool ascending = ((comm.rank() >> stage) & 1) == 0;
      const bool keep_low = ascending == (comm.rank() < partner);

      comm.send(partner, /*tag=*/stats.rounds,
                std::span<const T>(local.data(), local.size()));
      const std::vector<T> theirs = comm.recv<T>(partner, stats.rounds);
      HDS_CHECK(theirs.size() == n);

      // The pairwise merge is compute, not data movement: attribute it to
      // Merge so the Exchange column shows only the O(log^2 P) transfers.
      net::PhaseScope merge_phase(comm.clock(), net::Phase::Merge);
      std::merge(local.begin(), local.end(), theirs.begin(), theirs.end(),
                 merged.begin());
      comm.charge_merge_pass(2 * n);
      if (keep_low)
        std::copy(merged.begin(), merged.begin() + n, local.begin());
      else
        std::copy(merged.begin() + n, merged.end(), local.begin());
    }
  }
  return stats;
}

}  // namespace hds::baselines
