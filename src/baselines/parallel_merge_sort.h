// Shared-memory task-parallel merge sort — the stand-in for Intel Parallel
// STL / TBB and the OpenMP task merge sort of Fig. 4.
//
// Execution model: every rank (thread) sorts its slice, then a binary merge
// tree combines slices; the *real* merging runs serially along the tree via
// uncharged mailbox handoffs (correctness), while simulated time charges the
// analytic critical path of a fully task-parallel merge sort, which is what
// TBB actually achieves:
//
//   T = sort(n/p) + sum over levels l=1..log2(p) of
//         [ alpha_task * l  +  (n/p) * (c_merge + bytes/bw(l)) ]
//
// where bw(l) is same-NUMA copy bandwidth while 2^l slices fit in one NUMA
// domain and cross-NUMA bandwidth beyond — every level re-touches all data,
// which is exactly why this loses to the one-shot exchange of the histogram
// sort once data spans NUMA domains (Sec. VI-D).
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "common/bits.h"
#include "core/local_sort.h"
#include "runtime/comm.h"

namespace hds::baselines {

struct PMergeSortConfig {
  /// Per-task scheduling overhead (TBB steal/spawn).
  double task_alpha_s = 5.0e-7;
  /// Comparison/merge cost per element per level; tuned libraries beat the
  /// message-passing implementation's constants on one NUMA domain.
  double merge_s_per_elem = 0.8e-9;
  /// Local-sort constant: the tuned TBB/PSTL introsort beats a per-rank
  /// std::sort wrapped in an MPI process (cache-aware partitioning,
  /// hyperthreading benefits the paper observed) — this is what makes PSTL
  /// win inside one NUMA domain in Fig. 4.
  double sort_s_per_elem_log = 1.5e-9;
  /// Kernel for the real (uncharged) local sort; simulated time stays the
  /// analytic TBB critical path above regardless.
  core::LocalSortKernel kernel = core::LocalSortKernel::Auto;
};

struct PMergeSortStats {
  usize levels = 0;
};

/// Task-parallel merge sort across the ranks of `comm` (which model the
/// threads of one node). The globally sorted result is redistributed so
/// every rank ends with its original element count.
template <class T>
PMergeSortStats parallel_merge_sort(runtime::Comm& comm,
                                    std::vector<T>& local,
                                    const PMergeSortConfig& cfg = {}) {

  const int P = comm.size();
  const auto& machine = comm.machine();
  PMergeSortStats stats;

  const u64 N = comm.allreduce_value<u64>(local.size(),
                                          [](u64 a, u64 b) { return a + b; });
  if (N == 0) return stats;

  // --- simulated critical path (charged identically on every rank) --------
  {
    net::PhaseScope phase(comm.clock(), net::Phase::LocalSort);
    const double n_per = comm.cost().scaled(
        static_cast<usize>(div_ceil<u64>(N, static_cast<u64>(P))));
    const double sort_t = cfg.sort_s_per_elem_log * n_per *
                          std::max(1.0, std::log2(std::max(n_per, 2.0)));
    comm.charge_seconds(sort_t);
  }
  {
    net::PhaseScope phase(comm.clock(), net::Phase::Merge);
    const int levels = static_cast<int>(log2_ceil(static_cast<u64>(P)));
    const double n_per = comm.cost().scaled(
        static_cast<usize>(div_ceil<u64>(N, static_cast<u64>(P))));
    const int ranks_per_numa = machine.ranks_per_numa();
    double t = 0.0;
    for (int l = 1; l <= levels; ++l) {
      const int span = 1 << l;  // slices merged together at this level
      const bool crosses_numa = span > ranks_per_numa;
      // All P threads stream concurrently; levels that cross NUMA domains
      // share the inter-socket fabric, so each thread sees fabric/P.
      const double bw = crosses_numa
                            ? machine.numa_fabric_Bps / std::max(1, P)
                            : machine.memcpy_Bps;
      t += cfg.task_alpha_s * span +
           n_per * (cfg.merge_s_per_elem + sizeof(T) / bw);
    }
    comm.charge_seconds(t);
    stats.levels = static_cast<usize>(levels);
  }

  // --- real execution: serial merge tree over uncharged handoffs ----------
  // The handoffs and the final redistribution are part of the modelled
  // merge: their collectives (and any recv-side clock sync) belong to the
  // Merge phase, not Other.
  net::PhaseScope real_phase(comm.clock(), net::Phase::Merge);
  if (core::resolve_local_sort_kernel<T>(machine, local.size(), cfg.kernel) ==
      core::LocalSortKernel::Radix) {
    core::radix_sort_keys(local);
  } else {
    std::sort(local.begin(), local.end());
  }
  const usize my_count = local.size();
  for (int l = 1; static_cast<u64>(1ULL << l) <= next_pow2(static_cast<u64>(P)) && P > 1; ++l) {
    const int step = 1 << l;
    const int half = step / 2;
    if (comm.rank() % step == half) {
      comm.send_uncharged(comm.rank() - half, l,
                          std::span<const T>(local.data(), local.size()));
      local.clear();
    } else if (comm.rank() % step == 0 && comm.rank() + half < P) {
      const std::vector<T> theirs = comm.recv<T>(comm.rank() + half, l);
      std::vector<T> merged(local.size() + theirs.size());
      std::merge(local.begin(), local.end(), theirs.begin(), theirs.end(),
                 merged.begin());
      local = std::move(merged);
    }
  }

  // Redistribute: rank 0 holds everything; hand back original counts.
  std::vector<u64> counts(P);
  const u64 mine = my_count;
  comm.allgather(&mine, 1, counts.data());
  if (comm.rank() == 0) {
    usize off = 0;
    for (int r = 1; r < P; ++r) {
      off += counts[r - 1];
      comm.send_uncharged(
          r, /*tag=*/1000,
          std::span<const T>(local.data() + off, counts[r]));
    }
    local.resize(counts[0]);
  } else {
    local = comm.recv<T>(0, 1000);
  }
  return stats;
}

}  // namespace hds::baselines
