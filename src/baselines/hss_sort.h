// Histogram Sort with Sampling (HSS) — a faithful reimplementation of the
// algorithm behind the paper's Charm++ comparator (Harsh, Kale & Solomonik,
// SPAA'19, the paper's ref [1]).
//
// Differences from the paper's own sort (multiselect.h) that this module
// deliberately reproduces:
//  * splitter probes are drawn from random *samples* of the active key
//    ranges, re-drawn every round, instead of deterministic key-range
//    bisection — convergence is probabilistic and visibly volatile, which is
//    what the paper's Figs. 2/3 show for Charm++;
//  * the implementation carries the Charm++ limitation of power-of-two rank
//    counts (the reason the evaluation schedules 16 of 28 cores per node);
//  * if the probes fail to pin all splitters within `max_rounds`, the sort
//    throws hss_timeout — mirroring the wall-clock timeouts the paper
//    observed on normally distributed keys.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "common/bits.h"
#include "common/error.h"
#include "common/rng.h"
#include "core/exchange.h"
#include "core/local_sort.h"
#include "core/merge.h"
#include "core/multiselect.h"
#include "runtime/comm.h"

namespace hds::baselines {

class hss_timeout : public std::runtime_error {
 public:
  explicit hss_timeout(usize rounds)
      : std::runtime_error("HSS histogramming did not converge within " +
                           std::to_string(rounds) + " rounds") {}
};

struct HssConfig {
  /// Total sample budget per rank per round (HSS keeps the per-round sample
  /// volume O(P), not O(P * boundaries)). Each rank contributes one
  /// candidate to a pseudo-random subset of the active boundaries.
  usize samples_per_round = 64;
  double epsilon = 0.0;
  u64 seed = 1;
  usize max_rounds = 512;
  core::MergeStrategy merge = core::MergeStrategy::Sort;
  core::LocalSortKernel kernel = core::LocalSortKernel::Auto;
};

struct HssStats {
  usize rounds = 0;
  usize probes_total = 0;
  usize elements_after = 0;
};

/// HSS distributed sort. Requires a power-of-two rank count (Charm++
/// implementation constraint); throws argument_error otherwise.
template <class T>
HssStats hss_sort(runtime::Comm& comm, std::vector<T>& local,
                  const HssConfig& cfg = {}) {
  using Traits = core::KeyTraits<T>;
  using UK = typename Traits::uint_type;
  core::IdentityKey identity;
  const int P = comm.size();
  if (!is_pow2(static_cast<u64>(P)))
    throw argument_error(
        "hss_sort: rank count must be a power of two (implementation "
        "constraint of the reference Charm++ code)");

  HssStats stats;
  {
    net::PhaseScope phase(comm.clock(), net::Phase::LocalSort);
    core::local_sort(comm, local, identity, cfg.kernel);
  }
  const std::span<const T> sorted(local.data(), local.size());

  net::PhaseScope hist_phase(comm.clock(), net::Phase::Histogram);
  const u64 N = comm.allreduce_value<u64>(local.size(),
                                          [](u64 a, u64 b) { return a + b; });

  // Targets: prefix sums of capacities (same output contract as hds).
  std::vector<u64> capacities(P);
  const u64 mine = local.size();
  comm.allgather(&mine, 1, capacities.data());
  const usize B = static_cast<usize>(P - 1);
  std::vector<usize> targets(B);
  {
    u64 acc = 0;
    for (usize b = 0; b < B; ++b) {
      acc += capacities[b];
      targets[b] = acc;
    }
  }
  const usize window = static_cast<usize>(
      cfg.epsilon * static_cast<double>(N) / (2.0 * P));

  // Per-boundary active key ranges, in bisection space.
  struct Range {
    UK lo;  // exclusive-below bound: all keys <= lo are left of the target
    UK hi;
    bool resolved;
  };
  core::SplitterResult<UK> result;
  result.splitter.assign(B, UK{0});
  result.boundary.assign(B, 0);
  result.local_lb.assign(B, 0);
  result.local_ub.assign(B, 0);
  result.global_lb.assign(B, 0);
  result.global_ub.assign(B, 0);

  UK my_min = std::numeric_limits<UK>::max();
  UK my_max = std::numeric_limits<UK>::min();
  if (!local.empty()) {
    my_min = Traits::to_uint(identity(local.front()));
    my_max = Traits::to_uint(identity(local.back()));
  }
  UK range_in[2] = {my_min, static_cast<UK>(~my_max)};
  UK range_out[2];
  comm.allreduce(range_in, range_out, 2,
                 [](UK a, UK b) { return std::min(a, b); });
  const UK gmin = range_out[0];
  const UK gmax = static_cast<UK>(~range_out[1]);

  std::vector<Range> ranges(B);
  std::vector<usize> active;
  for (usize b = 0; b < B; ++b) {
    if (targets[b] == 0 || N == 0) {
      ranges[b] = {UK{0}, UK{0}, true};
      result.splitter[b] = gmin;
      result.boundary[b] = 0;
    } else if (targets[b] == N) {
      ranges[b] = {UK{0}, UK{0}, true};
      result.splitter[b] = gmax;
      result.boundary[b] = N;
      result.local_lb[b] = result.local_ub[b] = local.size();
      result.global_lb[b] = result.global_ub[b] = N;
    } else {
      ranges[b] = {gmin, gmax, false};
      active.push_back(b);
    }
  }

  Xoshiro256 rng(hash_mix(cfg.seed, comm.rank()));
  std::vector<UK> probes;
  std::vector<u64> hist, ghist;

  while (!active.empty()) {
    if (stats.rounds >= cfg.max_rounds) throw hss_timeout(cfg.max_rounds);
    ++stats.rounds;

    // Each rank samples one candidate key for a pseudo-random subset of the
    // active boundaries, keeping the per-round pool at O(P * budget) total.
    // Candidates are drawn uniformly from the rank's keys inside the
    // boundary's active range — this is the sampling whose noise produces
    // the volatile convergence of the Charm++ runs.
    struct Cand {
      u64 boundary;
      UK key;
    };
    std::vector<Cand> my_cands;
    const double select_prob = std::min(
        1.0, static_cast<double>(cfg.samples_per_round) /
                 static_cast<double>(active.size()));
    for (usize a = 0; a < active.size(); ++a) {
      const usize b = active[a];
      // Deterministic per-(round, rank, boundary) participation decision;
      // checked before any local work so the per-round cost stays at the
      // sample budget, not O(active).
      const u64 h = hash_mix(cfg.seed ^ (stats.rounds * 0x9e37ULL),
                             (static_cast<u64>(comm.rank()) << 32) ^ b);
      if (static_cast<double>(h % 10000) >= select_prob * 10000.0) continue;
      const Range& r = ranges[b];
      const T lo_key = Traits::from_uint(r.lo);
      const T hi_key = Traits::from_uint(r.hi);
      const usize i0 = core::count_below_equal(sorted, lo_key, identity);
      const usize i1 = core::count_below_equal(sorted, hi_key, identity);
      UK cand;
      if (i1 > i0) {
        const usize idx = i0 + rng.uniform_u64(0, i1 - i0 - 1);
        cand = Traits::to_uint(identity(local[idx]));
      } else {
        cand = core::key_midpoint(r.lo, r.hi);  // no local keys in range
      }
      my_cands.push_back(Cand{b, cand});
    }
    comm.charge_binary_search(local.size(), 2 * my_cands.size());
    // The central processor (HSS's "root") collects the pool, picks one
    // probe per boundary, and broadcasts the probe vector — doing the
    // selection once, not on every rank.
    std::vector<Cand> pool =
        comm.gatherv(std::span<const Cand>(my_cands), /*root=*/0);
    probes.assign(active.size(), UK{0});
    if (comm.rank() == 0) {
      std::sort(pool.begin(), pool.end(), [](const Cand& x, const Cand& y) {
        return std::tie(x.boundary, x.key) < std::tie(y.boundary, y.key);
      });
      comm.charge_control_sort(pool.size());
      // Probe per boundary: the median of its pooled candidates (rank-space
      // bisection on the sample); midpoint fallback when nobody sampled it.
      for (usize a = 0; a < active.size(); ++a) {
        const usize b = active[a];
        const auto lo_it = std::lower_bound(
            pool.begin(), pool.end(), b,
            [](const Cand& c, usize key) { return c.boundary < key; });
        auto hi_it = lo_it;
        while (hi_it != pool.end() && hi_it->boundary == b) ++hi_it;
        if (lo_it == hi_it) {
          probes[a] = core::key_midpoint(ranges[b].lo, ranges[b].hi);
        } else {
          probes[a] = (lo_it + (hi_it - lo_it) / 2)->key;
        }
      }
    }
    if (!probes.empty()) comm.broadcast(probes.data(), probes.size(), 0);
    stats.probes_total += probes.size();

    // Histogram against the probes, reduce, validate — as in Alg. 2/3.
    hist.clear();
    for (usize a = 0; a < active.size(); ++a) {
      const T probe_key = Traits::from_uint(probes[a]);
      hist.push_back(core::count_below(sorted, probe_key, identity));
      hist.push_back(core::count_below_equal(sorted, probe_key, identity));
    }
    comm.charge_binary_search(local.size(), 2 * active.size());
    ghist.assign(hist.size(), 0);
    comm.allreduce(hist.data(), ghist.data(), hist.size(),
                   [](u64 a, u64 b) { return a + b; });

    std::vector<usize> still_active;
    double round_err = 0.0;  // max relative boundary error, as multiselect
    for (usize a = 0; a < active.size(); ++a) {
      const usize b = active[a];
      Range& r = ranges[b];
      const usize L = ghist[2 * a];
      const usize U = ghist[2 * a + 1];
      const usize K = targets[b];
      if (L < K + window && K <= U + window) {
        r.resolved = true;
        result.splitter[b] = probes[a];
        result.local_lb[b] = hist[2 * a];
        result.local_ub[b] = hist[2 * a + 1];
        result.global_lb[b] = L;
        result.global_ub[b] = U;
        result.boundary[b] = std::clamp(K, L, U);
      } else if (L >= K + window) {
        round_err = std::max(round_err, static_cast<double>(L - K) /
                                            static_cast<double>(N));
        r.hi = probes[a];
        still_active.push_back(b);
      } else {
        round_err = std::max(round_err, static_cast<double>(K - U) /
                                            static_cast<double>(N));
        r.lo = probes[a];
        still_active.push_back(b);
      }
    }
    comm.metrics().append(obs::Series::HistogramConvergence, round_err);
    active.swap(still_active);
  }
  comm.metrics().add(obs::Counter::HistogramIterations, stats.rounds);
  comm.metrics().add(obs::Counter::SplitterProbes, stats.probes_total);

  for (usize b = 1; b < B; ++b)
    result.boundary[b] = std::max(result.boundary[b], result.boundary[b - 1]);

  // Exchange and merge exactly as hds does — the comparison isolates the
  // splitter-determination strategies.
  auto ex = core::exchange(comm, sorted, result);
  core::merge_chunks(comm, ex.data, std::span<const usize>(ex.recv_counts),
                     cfg.merge, identity, cfg.kernel);
  local = std::move(ex.data);
  stats.elements_after = local.size();
  return stats;
}

}  // namespace hds::baselines
