// HykSort (Sundar, Malhotra & Biros, ICS'13) — hypercube k-way quicksort:
// recursively split the rank group into k subgroups around k-1 histogrammed
// splitters, exchange buckets within the group, and recurse. Compared with
// the paper's flat histogram sort this moves data O(log_k P) times and pays
// an MPI_Comm_split per recursion level (the blocking O(P) cost Sec. III-C
// argues against); in exchange each all-to-all involves only k peers.
//
// The public HykSort code the authors tried to evaluate failed to run
// (Sec. VI); this reimplementation stands in for it on the same runtime.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "common/bits.h"
#include "common/error.h"
#include "core/exchange.h"
#include "core/local_sort.h"
#include "core/merge.h"
#include "core/multiselect.h"
#include "runtime/comm.h"

namespace hds::baselines {

struct HyksortConfig {
  /// Subgroups per recursion level (k >= 2); the effective k at each level
  /// is the largest divisor of the group size not exceeding this.
  int k = 8;
  double epsilon = 0.0;
  core::MergeStrategy merge = core::MergeStrategy::Tournament;
  core::LocalSortKernel kernel = core::LocalSortKernel::Auto;
};

struct HyksortStats {
  usize levels = 0;
  usize histogram_iterations = 0;
  usize elements_after = 0;
};

namespace detail {
inline int effective_k(int group_size, int k_max) {
  // Largest k <= k_max that divides the group size evenly; group sizes are
  // kept composite by construction when starting from a power of two.
  for (int k = std::min(k_max, group_size); k >= 2; --k)
    if (group_size % k == 0) return k;
  return group_size;  // prime group: split fully
}
}  // namespace detail

/// HykSort over the given communicator. Works for any rank count whose
/// recursive factorizations are nontrivial (powers of two are the intended
/// use, matching the original implementation).
template <class T>
HyksortStats hyksort(runtime::Comm& comm, std::vector<T>& local,
                     const HyksortConfig& cfg = {}) {
  core::IdentityKey identity;
  HyksortStats stats;
  {
    net::PhaseScope phase(comm.clock(), net::Phase::LocalSort);
    core::local_sort(comm, local, identity, cfg.kernel);
  }

  // Recurse by value on Comm handles (they are cheap views).
  runtime::Comm group = comm;
  while (group.size() > 1) {
    ++stats.levels;
    const int P = group.size();
    const int k = detail::effective_k(P, cfg.k);
    const int sub = P / k;  // ranks per subgroup

    // Global targets: split the group's keys into k equal buckets scaled to
    // the subgroup capacities. The size reduction is part of splitter
    // determination, so it counts as Histogram, not Other.
    u64 N = 0;
    {
      net::PhaseScope phase(group.clock(), net::Phase::Histogram);
      N = group.allreduce_value<u64>(local.size(),
                                     [](u64 a, u64 b) { return a + b; });
    }
    std::vector<usize> targets(k - 1);
    for (int b = 0; b + 1 < k; ++b)
      targets[b] = static_cast<usize>(
          static_cast<double>(N) * (b + 1) / k);

    core::MultiselectConfig mcfg;
    mcfg.epsilon = cfg.epsilon;
    const auto sp = core::find_splitters(
        group, std::span<const T>(local.data(), local.size()), identity,
        std::span<const usize>(targets), mcfg);
    stats.histogram_iterations += sp.iterations;

    // Cut local data into k buckets; bucket g goes to subgroup g, spread so
    // rank (g0, j) sends to rank (g, j) — the hypercube-style personalized
    // exchange with k peers. Boundary-cut resolution (two control
    // alltoalls) and bucketing belong to the data movement.
    std::vector<usize> recv_counts;
    std::vector<T> received;
    {
      net::PhaseScope phase(group.clock(), net::Phase::Exchange);
      const std::vector<usize> cuts =
          core::compute_boundary_cuts(group, local.size(), sp);
      std::vector<usize> send(P, 0);
      const int j = group.rank() % sub;  // my index within my subgroup
      usize prev = 0;
      for (int g = 0; g < k; ++g) {
        const usize cut = (g + 1 < k) ? cuts[g] : local.size();
        send[g * sub + j] = cut - prev;
        prev = cut;
      }
      core::note_exchange_metrics(group, send, sizeof(T));
      received = group.alltoallv(
          std::span<const T>(local.data(), local.size()), send, &recv_counts);
    }
    core::merge_chunks(group, received, std::span<const usize>(recv_counts),
                       cfg.merge, identity, cfg.kernel);
    local = std::move(received);

    // Descend into my subgroup (the communicator split the paper's
    // Sec. III-C charges against this algorithm). The blocking O(P) split
    // is part of restructuring the exchange, so it counts as Exchange.
    {
      net::PhaseScope phase(group.clock(), net::Phase::Exchange);
      group = group.split(group.rank() / sub, group.rank() % sub);
    }
  }

  stats.elements_after = local.size();
  return stats;
}

}  // namespace hds::baselines
