#include "check/race_detector.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"
#include "net/sim.h"

namespace hds::check {

namespace {

/// Logical synchronization shape of a collective (see header).
enum class Shape : u8 { FullJoin, Star, Prefix, Pairwise };

/// Exhaustive on purpose — no default. -Wswitch forces a decision here for
/// every new OpKind, and the opid-coverage lint rule (tools/lint_hds.py)
/// cross-checks this table against the model checker's transition table
/// (model/transitions.h) so an op cannot get HB semantics in one and none
/// in the other.
Shape shape_of(obs::OpKind op) {
  switch (op) {
    case obs::OpKind::Barrier:
    case obs::OpKind::Allreduce:
    case obs::OpKind::Allgather:
    case obs::OpKind::Allgatherv:
    case obs::OpKind::Alltoall:
    case obs::OpKind::Alltoallv:
    case obs::OpKind::Split:
    case obs::OpKind::Agree:  // survivor agreement: full join over survivors
    case obs::OpKind::SampleGather:  // every rank consumes every sample block
      return Shape::FullJoin;
    case obs::OpKind::Broadcast:
    case obs::OpKind::Gatherv:
      return Shape::Star;
    case obs::OpKind::Scan:
    case obs::OpKind::Exscan:
      return Shape::Prefix;
    case obs::OpKind::None:
    case obs::OpKind::Send:
    case obs::OpKind::Recv:
    case obs::OpKind::Compute:    // tracer-only; never reaches on_collective
    case obs::OpKind::Checkpoint: // buddy transfer: pairwise by construction
      return Shape::Pairwise;
  }
  return Shape::Pairwise;
}

void append_ring(std::ostringstream& os,
                 const std::vector<obs::RingEntry>& recent) {
  if (recent.empty()) {
    os << "\n      (no recent ops)";
    return;
  }
  for (const auto& e : recent) {
    os << "\n      #" << e.seq << " " << obs::op_kind_name(e.op)
       << " phase=" << net::phase_name(e.phase) << " t=" << e.t << "s";
    if (e.bytes > 0) os << " bytes=" << e.bytes;
    if (e.peer >= 0) os << " peer=" << e.peer;
    if (e.op == obs::OpKind::Send || e.op == obs::OpKind::Recv)
      os << " tag=" << e.tag;
  }
}

void append_side(std::ostringstream& os, const char* label,
                 const ViolationSide& s) {
  os << "\n  " << label << ": rank " << s.rank << " "
     << (s.is_write ? "WRITE" : "READ") << " (" << s.what << ") at epoch "
     << s.epoch << ", event " << s.stamp << ", clock " << s.vc
     << "\n    recent ops (oldest first):";
  append_ring(os, s.recent);
}

}  // namespace

std::string Violation::to_string() const {
  std::ostringstream os;
  os << "PGAS consistency violation ("
     << (kind == Kind::Shadow ? "unordered shadow access"
                              : "unordered collective data consumption")
     << ") at " << location << ":\n  the two accesses below are concurrent "
     << "under the logical happens-before order — over one-sided "
     << "communication their outcome would be undefined.";
  append_side(os, "prior  ", prior);
  append_side(os, "current", current);
  return os.str();
}

std::string CheckReport::summary() const {
  std::ostringstream os;
  os << "hds::check: " << violations_total << " violation"
     << (violations_total == 1 ? "" : "s") << " over " << nranks
     << " ranks (" << collectives_checked << " collectives, " << p2p_edges
     << " p2p edges, " << shadow_accesses << " shadow accesses, "
     << joins_applied << " joins";
  if (joins_elided > 0) os << ", " << joins_elided << " elided";
  os << ")";
  for (const Violation& v : violations) os << "\n" << v.to_string();
  if (violations_total > violations.size())
    os << "\n... " << (violations_total - violations.size())
       << " further violations not recorded (max_violations)";
  return os.str();
}

void RaceDetector::begin_run(
    int nranks, std::span<const std::unique_ptr<obs::RankTracer>> tracers) {
  std::lock_guard lock(mu_);
  HDS_CHECK(nranks >= 1);
  HDS_CHECK(tracers.size() == static_cast<usize>(nranks));
  nranks_ = nranks;
  tracers_ = tracers;
  vc_.assign(static_cast<usize>(nranks), VectorClock(nranks));
  epochs_.assign(static_cast<usize>(nranks), 0);
  shadow_.clear();
  report_ = CheckReport{};
  report_.nranks = nranks;
  elide_seen_ = 0;
}

bool RaceDetector::should_elide(obs::OpKind op, bool is_world) {
  if (!is_world || op != cfg_.elide_op) return false;
  return elide_seen_++ == cfg_.elide_index;
}

ViolationSide RaceDetector::make_side(rank_t rank, bool is_write, u64 stamp,
                                      const char* what) const {
  ViolationSide s;
  s.rank = rank;
  s.is_write = is_write;
  s.epoch = epochs_[static_cast<usize>(rank)];
  s.stamp = stamp;
  s.what = what;
  s.vc = vc_[static_cast<usize>(rank)].to_string();
  s.recent = tracers_[static_cast<usize>(rank)]->ring_snapshot();
  return s;
}

void RaceDetector::record_violation(Violation v) {
  ++report_.violations_total;
  if (report_.violations.size() < cfg_.max_violations)
    report_.violations.push_back(std::move(v));
}

void RaceDetector::on_collective(const void* comm_id, obs::OpKind op,
                                 std::span<const rank_t> members,
                                 int root_member) {
  std::lock_guard lock(mu_);
  const int P = static_cast<int>(members.size());
  const Shape shape = shape_of(op);
  HDS_CHECK(shape != Shape::Pairwise);
  HDS_CHECK(shape != Shape::Star || (root_member >= 0 && root_member < P));

  ++report_.collectives_checked;
  const bool elide = should_elide(op, /*is_world=*/P == nranks_);

  // Entry: every member's participation is one event; contributions are
  // stamped with the member's entry clock.
  std::vector<u64> stamps(static_cast<usize>(P));
  std::vector<VectorClock> snaps;
  snaps.reserve(static_cast<usize>(P));
  for (int m = 0; m < P; ++m) {
    const auto w = static_cast<usize>(members[m]);
    stamps[static_cast<usize>(m)] = vc_[w].tick(w);
    snaps.push_back(vc_[w]);
  }

  // Joins per logical shape, from the entry snapshots.
  auto join = [&](int dst, int src) {
    if (dst == src) return;
    vc_[static_cast<usize>(members[dst])].join(snaps[static_cast<usize>(src)]);
    ++report_.joins_applied;
  };
  if (elide) {
    // Mutation hook: count the joins the shape would have published, apply
    // none of them.
    u64 skipped = 0;
    switch (shape) {
      case Shape::FullJoin: skipped = static_cast<u64>(P) * (P - 1); break;
      case Shape::Star: skipped = 2u * static_cast<u64>(P - 1); break;
      case Shape::Prefix: skipped = static_cast<u64>(P) * (P - 1) / 2; break;
      case Shape::Pairwise: break;
    }
    report_.joins_elided += skipped;
  } else {
    switch (shape) {
      case Shape::FullJoin:
        for (int d = 0; d < P; ++d)
          for (int s = 0; s < P; ++s) join(d, s);
        break;
      case Shape::Star:
        // Data edge root -> receivers (Broadcast) and contribution edges
        // members -> root (Gatherv) share one shape: everyone joins the
        // root, the root joins everyone; non-root pairs stay unordered.
        for (int m = 0; m < P; ++m) {
          join(m, root_member);
          join(root_member, m);
        }
        break;
      case Shape::Prefix:
        for (int d = 0; d < P; ++d)
          for (int s = 0; s < d; ++s) join(d, s);
        break;
      case Shape::Pairwise:
        break;
    }
  }

  // Epoch-arena consumption check: every contribution the op's read set
  // says a member consumes must be ordered after its publication. The read
  // set is covered by the join shape, so this can only fire when joins
  // were elided — which is exactly what the mutation tests assert.
  auto check_read = [&](int reader, int src) {
    if (reader == src) return;
    const auto rw = static_cast<usize>(members[reader]);
    const auto sw = static_cast<usize>(members[src]);
    if (vc_[rw].ordered_after(sw, stamps[static_cast<usize>(src)])) return;
    Violation v;
    v.kind = Violation::Kind::CollectiveData;
    std::ostringstream loc;
    loc << op_kind_name(op) << " arena slot of member " << src << " (world "
        << sw << ") on communicator " << comm_id << ", round "
        << epochs_[sw] + 1;
    v.location = loc.str();
    v.prior = make_side(members[src], /*is_write=*/true,
                        stamps[static_cast<usize>(src)], "contribution");
    v.current = make_side(members[reader], /*is_write=*/false,
                          stamps[static_cast<usize>(reader)], "consumption");
    record_violation(std::move(v));
  };
  switch (op) {
    case obs::OpKind::Barrier:
      break;  // no data
    case obs::OpKind::Broadcast:
      for (int m = 0; m < P; ++m) check_read(m, root_member);
      break;
    case obs::OpKind::Gatherv:
      for (int m = 0; m < P; ++m) check_read(root_member, m);
      break;
    case obs::OpKind::Scan:
      for (int d = 0; d < P; ++d)
        for (int s = 0; s <= d; ++s) check_read(d, s);
      break;
    case obs::OpKind::Exscan:
      for (int d = 0; d < P; ++d)
        for (int s = 0; s < d; ++s) check_read(d, s);
      break;
    default:  // symmetric data collectives: everyone consumes everyone
      for (int d = 0; d < P; ++d)
        for (int s = 0; s < P; ++s) check_read(d, s);
      break;
  }

  for (int m = 0; m < P; ++m) ++epochs_[static_cast<usize>(members[m])];
}

void RaceDetector::on_send(rank_t src_world, std::vector<u64>& vc_out) {
  std::lock_guard lock(mu_);
  const auto w = static_cast<usize>(src_world);
  vc_[w].tick(w);
  const auto comps = vc_[w].components();
  vc_out.assign(comps.begin(), comps.end());
}

void RaceDetector::on_recv(rank_t dst_world, std::span<const u64> msg_vc) {
  std::lock_guard lock(mu_);
  const auto w = static_cast<usize>(dst_world);
  vc_[w].tick(w);
  if (!msg_vc.empty()) {
    vc_[w].join(msg_vc);
    ++report_.p2p_edges;
  }
}

void RaceDetector::on_access(rank_t rank, const void* object, int shard,
                             usize begin, usize end, bool is_write,
                             const char* what) {
  std::lock_guard lock(mu_);
  const auto w = static_cast<usize>(rank);
  ++report_.shadow_accesses;

  AccessRecord rec;
  rec.rank = rank;
  rec.is_write = is_write;
  rec.begin = begin;
  rec.end = end;
  rec.stamp = vc_[w].tick(w);
  rec.epoch = epochs_[w];
  rec.what = what;

  ShadowLocation& loc = shadow_[{object, shard}];
  for (const AccessRecord& prior : loc.records) {
    if (prior.rank == rank) continue;
    if (!prior.is_write && !is_write) continue;
    if (!ranges_overlap(prior.begin, prior.end, begin, end)) continue;
    if (vc_[w].ordered_after(static_cast<usize>(prior.rank), prior.stamp))
      continue;
    Violation v;
    v.kind = Violation::Kind::Shadow;
    std::ostringstream os;
    os << "object " << object << " / "
       << (shard == kIndexShard ? std::string("offsets index")
                                : "shard " + std::to_string(shard));
    if (!(begin == 0 && end == kWholeRange) ||
        !(prior.begin == 0 && prior.end == kWholeRange)) {
      const usize lo = std::max(begin, prior.begin);
      const usize hi = std::min(end, prior.end);
      os << " elements [" << lo << ", ";
      if (hi == kWholeRange)
        os << "end";
      else
        os << hi;
      os << ")";
    }
    v.location = os.str();
    v.prior.rank = prior.rank;
    v.prior.is_write = prior.is_write;
    v.prior.epoch = prior.epoch;
    v.prior.stamp = prior.stamp;
    v.prior.what = prior.what;
    v.prior.vc = prior.vc.to_string();
    v.prior.recent = prior.recent;
    v.current = make_side(rank, is_write, rec.stamp, what);
    record_violation(std::move(v));
  }

  rec.vc = vc_[w];
  rec.recent = tracers_[w]->ring_snapshot();
  loc.add(std::move(rec));
  if (loc.records.size() > 64) loc.prune(vc_);
  report_.shadow_records_peak =
      std::max<u64>(report_.shadow_records_peak, loc.records.size());
}

}  // namespace hds::check
