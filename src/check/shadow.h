// Shadow memory of the PGAS race checker: per-location access histories
// against which new accesses are checked for happens-before ordering.
//
// A "location" is one shard of a distributed object (GlobalVector shard, or
// the shared offsets index as pseudo-shard kIndexShard); within a location,
// accesses carry element ranges so disjoint-range traffic never conflicts.
// Histories are compacted by dominance — a newer access by the same rank
// with the same kind covering an older one's range supersedes it for race
// detection (later stamps order strictly more) — and pruned wholesale once
// a record is ordered before every rank's current clock, so steady-state
// memory is proportional to live concurrency, not run length.
#pragma once

#include <map>
#include <vector>

#include "check/vector_clock.h"
#include "common/types.h"
#include "obs/events.h"

namespace hds::check {

/// Pseudo-shard id for per-object metadata shared by all ranks (the
/// GlobalVector offsets index).
inline constexpr int kIndexShard = -1;

/// Whole-location element range end.
inline constexpr usize kWholeRange = ~usize{0};

/// One recorded access to a shadow location.
struct AccessRecord {
  rank_t rank = 0;
  bool is_write = false;
  usize begin = 0;
  usize end = 0;       ///< half-open element range [begin, end)
  u64 stamp = 0;       ///< accessor's own clock component at the access
  u64 epoch = 0;       ///< collective rounds the accessor had completed
  const char* what = "";  ///< static label, e.g. "GlobalVector::put"
  VectorClock vc;         ///< accessor's full clock (reporting/pruning)
  std::vector<obs::RingEntry> recent;  ///< accessor's op ring at the access
};

inline bool ranges_overlap(usize b0, usize e0, usize b1, usize e1) {
  return b0 < e1 && b1 < e0;
}

/// Access history of one location.
struct ShadowLocation {
  std::vector<AccessRecord> records;

  /// Record an access, superseding dominated older records: same rank, same
  /// kind, range covered by the new one. (The newer record's stamp is
  /// larger, so anything ordered after the old record is ordered after the
  /// new one too — keeping only the newer record loses no races.)
  void add(AccessRecord rec) {
    std::erase_if(records, [&](const AccessRecord& r) {
      return r.rank == rec.rank && r.is_write == rec.is_write &&
             rec.begin <= r.begin && r.end <= rec.end;
    });
    records.push_back(std::move(rec));
  }

  /// Drop records ordered before all of `clocks` (they can never race any
  /// future access: every rank's next event is already ordered after them).
  void prune(const std::vector<VectorClock>& clocks) {
    std::erase_if(records, [&](const AccessRecord& r) {
      for (const VectorClock& c : clocks)
        if (!c.ordered_after(static_cast<usize>(r.rank), r.stamp))
          return false;
      return true;
    });
  }
};

/// Identity of a shadow location: (object address, shard).
using ShadowKey = std::pair<const void*, int>;

using ShadowMap = std::map<ShadowKey, ShadowLocation>;

}  // namespace hds::check
