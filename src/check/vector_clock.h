// hds::check vector clocks — the happens-before algebra of the PGAS race
// checker. One clock per world rank; component r counts the events rank r
// has executed (communication ops, one-sided accesses). Event A on rank a
// happens-before observation B on rank b iff B's clock has caught up with
// A's timestamp: vc_b[a] >= stamp(A). Joins are published by the runtime
// at collectives and message deliveries according to each operation's
// *logical* synchronization shape (see check/race_detector.h), which is
// deliberately weaker than the physical two-barrier implementation.
#pragma once

#include <algorithm>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/types.h"

namespace hds::check {

class VectorClock {
 public:
  VectorClock() = default;
  explicit VectorClock(usize nranks) : c_(nranks, 0) {}

  usize size() const { return c_.size(); }
  u64 operator[](usize r) const { return c_.at(r); }

  /// New local event on rank r: advance r's own component and return the
  /// event's timestamp.
  u64 tick(usize r) { return ++c_.at(r); }

  /// Component-wise max with another clock (happens-before join).
  void join(const VectorClock& other) {
    HDS_CHECK(other.c_.size() == c_.size());
    for (usize i = 0; i < c_.size(); ++i) c_[i] = std::max(c_[i], other.c_[i]);
  }
  void join(std::span<const u64> other) {
    HDS_CHECK(other.size() == c_.size());
    for (usize i = 0; i < c_.size(); ++i) c_[i] = std::max(c_[i], other[i]);
  }

  /// Does an event with timestamp `stamp` on rank `r` happen before the
  /// state this clock describes?
  bool ordered_after(usize r, u64 stamp) const { return c_.at(r) >= stamp; }

  /// Partial order over whole clocks: a <= b iff every component is <=.
  bool leq(const VectorClock& other) const {
    HDS_CHECK(other.c_.size() == c_.size());
    for (usize i = 0; i < c_.size(); ++i)
      if (c_[i] > other.c_[i]) return false;
    return true;
  }

  /// Neither a <= b nor b <= a: the states are concurrent.
  bool concurrent_with(const VectorClock& other) const {
    return !leq(other) && !other.leq(*this);
  }

  std::span<const u64> components() const { return c_; }

  std::string to_string() const {
    std::ostringstream os;
    os << "[";
    for (usize i = 0; i < c_.size(); ++i) os << (i ? " " : "") << c_[i];
    os << "]";
    return os.str();
  }

 private:
  std::vector<u64> c_;
};

}  // namespace hds::check
