// hds::check::RaceDetector — a vector-clock happens-before checker for the
// simulated PGAS runtime.
//
// Why it exists: the runtime executes DASH-style one-sided and collective
// semantics with std::thread ranks whose mutexes *physically* serialize
// accesses that would be genuine data races over DART/MPI one-sided
// communication, so ThreadSanitizer is structurally blind to missing
// logical synchronization (an elided barrier between a put and a get is
// invisible to TSan — the two-barrier collective arena orders everything).
// The detector re-derives ordering from the *logical* shape of each
// operation and flags any cross-rank conflicting access pair the logical
// clocks leave unordered.
//
// Happens-before model (per operation, on a communicator of members M):
//   Barrier, Allreduce, Allgather(v), Alltoall(v), Split
//                  : full join — every member joins every member's entry
//                    clock (symmetric synchronizing collectives; for the
//                    data ops every rank's output depends on every rank).
//   Broadcast(root): receivers join the root's entry clock only. Two
//                    receivers stay mutually unordered — exactly MPI/DART
//                    semantics, and weaker than the physical execution.
//   Gatherv(root)  : the root joins every member's entry clock; non-root
//                    members only tick. Non-root pairs stay unordered.
//   Scan / Exscan  : member r joins entry clocks of members < r (prefix
//                    shape); higher ranks stay unordered with lower ones'
//                    later events.
//   Send -> Recv   : pairwise — the message carries the sender's clock,
//                    the receiver joins it on delivery. Dropped messages
//                    (fault injection) publish no edge.
//
// Checked accesses (shadow memory):
//   * GlobalVector shard reads/writes (get/put/local) and offsets-index
//     accesses (rebuild_index writes, locate reads), tagged with
//     (rank, epoch, vector clock);
//   * collective epoch-arena traffic: each member's published contribution
//     is a write, each consumption implied by the op's read set is a read.
//     Arena slots are versioned per round, so the in-round check is exactly
//     "the op's own synchronization covers its own data movement" — it can
//     only fire when joins were elided (mutation hooks) or a custom path
//     bypasses the model, and costs O(P^2) transient work per collective.
//
// Any conflicting cross-rank pair (>= 1 write, overlapping ranges) that is
// unordered under the clocks is reported as a PGAS consistency violation
// with both ranks' recent-op rings (the same last-16-ops ring the watchdog
// dump uses).
//
// Threading: one mutex guards all detector state. Logical atomicity of a
// collective transaction is free — the executor publishes its members'
// joins while every member is parked between the collective's two physical
// barriers, so a member's clock never moves mid-transaction. Checked runs
// are correctness runs; the lock is not on any measured path (and never
// touches SimClock, so simulated time is bit-identical with checking off).
#pragma once

#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/config.h"
#include "check/shadow.h"
#include "check/vector_clock.h"
#include "common/types.h"
#include "obs/events.h"
#include "obs/tracer.h"

namespace hds::check {

/// Thrown out of Team::run when CheckConfig::fail_on_violation is set and
/// the run produced violations.
class pgas_violation : public std::runtime_error {
 public:
  explicit pgas_violation(const std::string& what)
      : std::runtime_error(what) {}
};

/// One side of a violation: who accessed what, when.
struct ViolationSide {
  rank_t rank = 0;
  bool is_write = false;
  u64 epoch = 0;  ///< collective rounds this rank had completed
  u64 stamp = 0;  ///< the rank's own clock component at the access
  std::string what;
  std::string vc;  ///< rendered vector clock at the access
  std::vector<obs::RingEntry> recent;  ///< rank's recent-op ring
};

struct Violation {
  enum class Kind : u8 {
    Shadow,          ///< unordered conflicting shard/index access pair
    CollectiveData,  ///< collective consumed a contribution it is not
                     ///< ordered after (only reachable via elided joins)
  };
  Kind kind = Kind::Shadow;
  std::string location;  ///< e.g. "GlobalVector@0x.../shard 3 [5, 6)"
  ViolationSide prior;
  ViolationSide current;

  std::string to_string() const;
};

/// Result of a checked run. Counters quantify the shadow-memory cost that
/// DESIGN.md sec. 10 discusses.
struct CheckReport {
  int nranks = 0;
  u64 violations_total = 0;  ///< detected (recording caps at max_violations)
  std::vector<Violation> violations;
  u64 collectives_checked = 0;
  u64 p2p_edges = 0;        ///< messages that delivered a clock
  u64 shadow_accesses = 0;  ///< shard/index accesses checked
  u64 shadow_records_peak = 0;  ///< max live records in any location
  u64 joins_applied = 0;        ///< pairwise clock joins published
  u64 joins_elided = 0;         ///< joins suppressed by the mutation hook

  bool clean() const { return violations_total == 0; }
  std::string summary() const;
};

class RaceDetector {
 public:
  explicit RaceDetector(CheckConfig cfg) : cfg_(cfg) {}

  RaceDetector(const RaceDetector&) = delete;
  RaceDetector& operator=(const RaceDetector&) = delete;

  const CheckConfig& config() const { return cfg_; }

  /// Reset all clocks and shadow state for a run of `nranks` world ranks.
  /// `tracers` (one per world rank, owned by the Team, alive for the whole
  /// run) provide the recent-op rings violations are reported with.
  void begin_run(int nranks,
                 std::span<const std::unique_ptr<obs::RankTracer>> tracers);

  /// Collective transaction on the communicator identified by `comm_id`.
  /// Must be called by the communicator's executor while every member is
  /// parked between the collective's two barriers. `members` maps member
  /// index to world rank; `root_member` is the member index of the root
  /// for rooted shapes (Broadcast/Gatherv), -1 otherwise.
  void on_collective(const void* comm_id, obs::OpKind op,
                     std::span<const rank_t> members, int root_member);

  /// P2P send: ticks the sender's clock and snapshots it into `vc_out`
  /// (embedded in the in-flight message).
  void on_send(rank_t src_world, std::vector<u64>& vc_out);

  /// P2P receive: ticks the receiver's clock and joins the message clock.
  void on_recv(rank_t dst_world, std::span<const u64> msg_vc);

  /// Shard / metadata access (shadow memory). `object` identifies the
  /// distributed object, `shard` the location within it (kIndexShard for
  /// the offsets index), [begin, end) the element range, `what` a static
  /// label for reports.
  void on_access(rank_t rank, const void* object, int shard, usize begin,
                 usize end, bool is_write, const char* what);

  /// Read-only after Team::run has joined all rank threads.
  const CheckReport& report() const { return report_; }

 private:
  bool should_elide(obs::OpKind op, bool is_world);
  void record_violation(Violation v);
  ViolationSide make_side(rank_t rank, bool is_write, u64 stamp,
                          const char* what) const;

  CheckConfig cfg_;
  std::vector<VectorClock> vc_;  ///< one clock per world rank
  std::vector<u64> epochs_;     ///< collective rounds completed, per rank
  std::span<const std::unique_ptr<obs::RankTracer>> tracers_;
  int nranks_ = 0;

  std::mutex mu_;  ///< guards all mutable detector state
  ShadowMap shadow_;
  CheckReport report_;
  u64 elide_seen_ = 0;  ///< world occurrences of cfg_.elide_op so far
};

}  // namespace hds::check
