// Configuration of the PGAS happens-before checker (hds::check). Held by
// value inside runtime::TeamConfig so checked runs are armed with
// `TeamConfig{.check = {.enabled = true}}`; the engine itself lives in
// check/race_detector.h and is only constructed when enabled.
#pragma once

#include "common/types.h"
#include "obs/events.h"

namespace hds::check {

struct CheckConfig {
  /// Master switch. When false (the default) the detector is never
  /// constructed, no shadow state is allocated, and simulated time is
  /// bit-identical to an unchecked run (same invariant as tracing).
  bool enabled = false;

  /// Stop recording after this many violations (detection continues to
  /// count, reports stay bounded).
  usize max_violations = 64;

  /// Throw check::pgas_violation out of Team::run when the run finishes
  /// with a non-empty violation list. Off by default so tests and tools can
  /// inspect the report instead.
  bool fail_on_violation = false;

  /// Mutation hooks for detector self-tests ("does it have teeth"): elide
  /// the happens-before joins of the `elide_index`-th (0-based) occurrence
  /// of `elide_op` on the *world* communicator. The physical run is
  /// untouched — ranks still synchronize — but the logical clocks behave as
  /// if the synchronization were absent, exactly the situation over real
  /// one-sided communication where the matching fence/barrier was deleted.
  /// Only world-communicator ops count occurrences, which keeps the index
  /// deterministic (sub-communicator ops can interleave across subteams).
  obs::OpKind elide_op = obs::OpKind::None;
  u64 elide_index = 0;
};

}  // namespace hds::check
