// Resumable superstep state for the distributed histogram sort (PR 6).
//
// The sort is an explicit state machine over its four supersteps:
//
//   Start ──LocalSort──> LocalSorted ──Splitters──> SplittersReady
//         ──Exchange──> Exchanged ──Merge──> Done
//
// SortState<T, UK> is the complete per-rank state at a superstep BOUNDARY:
// everything a rank needs to replay the remaining supersteps after a
// failure, and nothing more. It serializes to a flat byte blob so it can be
// buddy-replicated through runtime::CheckpointStore; the blob is compact by
// construction — the data vector plus O(P) splitter/manifest metadata, never
// any mid-superstep scratch.
#pragma once

#include <cstring>
#include <span>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/error.h"
#include "common/types.h"
#include "core/multiselect.h"

namespace hds::core {

/// Superstep boundaries of the histogram sort. The value names the work
/// COMPLETED: a state with completed == LocalSorted holds a sorted local
/// partition and is about to run splitter determination.
enum class SuperstepId : u8 {
  Start = 0,           ///< raw input partition, nothing done yet
  LocalSorted = 1,     ///< superstep 1 done: local partition sorted
  SplittersReady = 2,  ///< superstep 2 done: global splitters determined
  Exchanged = 3,       ///< superstep 3 done: chunks received, unmerged
  Done = 4,            ///< superstep 4 done: output partition in place
};

/// Executable supersteps per fault-free sort (Done is not executed).
inline constexpr usize kSupersteps = 4;

constexpr std::string_view superstep_name(SuperstepId s) {
  switch (s) {
    case SuperstepId::Start:
      return "Start";
    case SuperstepId::LocalSorted:
      return "LocalSorted";
    case SuperstepId::SplittersReady:
      return "SplittersReady";
    case SuperstepId::Exchanged:
      return "Exchanged";
    case SuperstepId::Done:
      return "Done";
  }
  return "?";
}

struct SortStats {
  usize histogram_iterations = 0;
  usize splitter_probes = 0;
  usize elements_sent_off_rank = 0;  ///< this rank's off-rank sends
  usize elements_before = 0;
  usize elements_after = 0;
  /// Per-round max relative boundary error of the splitter search (one
  /// entry per histogram round, identical on every rank) — lets the
  /// convergence curve of the paper's Table 3 be plotted, not just the
  /// final iteration count.
  std::vector<double> histogram_convergence;
  // Hybrid histogramming accounting (PR 10), mirrored from SplitterResult:
  // sampled rounds executed, sample keys pooled, and histogram traffic
  // split into sampled-gather vs dense-allreduce bytes.
  usize sampled_rounds = 0;
  usize sample_keys_total = 0;
  usize hist_bytes_sampled = 0;
  usize hist_bytes_dense = 0;
  /// Per-round probe volume (sample keys or dense probes), parallel to
  /// histogram_convergence.
  std::vector<u32> round_probes;
};

/// Per-rank sort state at a superstep boundary. UK is the unsigned key
/// image type of the splitter search (KeyTraits<K>::uint_type).
template <class T, class UK>
struct SortState {
  SuperstepId completed = SuperstepId::Start;
  usize out_capacity = 0;
  /// The partition at this boundary: raw input (Start), sorted run
  /// (LocalSorted / SplittersReady), received chunk concatenation
  /// (Exchanged), merged output (Done).
  std::vector<T> data;
  /// Splitter-search result; meaningful from SplittersReady on.
  SplitterResult<UK> splitters;
  /// Received-chunk manifest (per-source counts); meaningful at Exchanged.
  std::vector<usize> recv_counts;
  SortStats stats;
};

namespace detail {

inline void put_bytes(std::vector<std::byte>& out, const void* p, usize n) {
  const auto* b = static_cast<const std::byte*>(p);
  out.insert(out.end(), b, b + n);
}

template <class V>
void put_pod(std::vector<std::byte>& out, const V& v) {
  static_assert(std::is_trivially_copyable_v<V>);
  put_bytes(out, &v, sizeof(V));
}

template <class V>
void put_vec(std::vector<std::byte>& out, const std::vector<V>& v) {
  static_assert(std::is_trivially_copyable_v<V>);
  put_pod<u64>(out, static_cast<u64>(v.size()));
  if (!v.empty()) put_bytes(out, v.data(), v.size() * sizeof(V));
}

/// Bounds-checked cursor over a checkpoint blob.
struct ByteReader {
  std::span<const std::byte> in;
  usize off = 0;

  void get_bytes(void* p, usize n) {
    HDS_CHECK_MSG(off + n <= in.size(), "checkpoint blob truncated (need "
                                            << n << " bytes at offset " << off
                                            << " of " << in.size() << ")");
    if (n > 0) std::memcpy(p, in.data() + off, n);
    off += n;
  }

  template <class V>
  V get_pod() {
    V v{};
    get_bytes(&v, sizeof(V));
    return v;
  }

  template <class V>
  std::vector<V> get_vec() {
    const u64 n = get_pod<u64>();
    HDS_CHECK_MSG(n * sizeof(V) <= in.size() - off,
                  "checkpoint blob truncated (vector of " << n << ")");
    std::vector<V> v(static_cast<usize>(n));
    if (n > 0) get_bytes(v.data(), static_cast<usize>(n) * sizeof(V));
    return v;
  }
};

template <class T, class UK>
std::vector<std::byte> serialize_state(const SortState<T, UK>& st) {
  static_assert(std::is_trivially_copyable_v<T>,
                "checkpointing transports trivially copyable types only");
  std::vector<std::byte> out;
  out.reserve(64 + st.data.size() * sizeof(T) +
              st.splitters.splitter.size() * sizeof(UK));
  put_pod<u64>(out, static_cast<u64>(st.completed));
  put_pod<u64>(out, static_cast<u64>(st.out_capacity));
  put_vec(out, st.data);
  put_vec(out, st.splitters.splitter);
  put_vec(out, st.splitters.boundary);
  put_vec(out, st.splitters.local_lb);
  put_vec(out, st.splitters.local_ub);
  put_vec(out, st.splitters.global_lb);
  put_vec(out, st.splitters.global_ub);
  put_pod<u64>(out, static_cast<u64>(st.splitters.iterations));
  put_pod<u64>(out, static_cast<u64>(st.splitters.probes_total));
  put_vec(out, st.splitters.convergence);
  put_pod<u64>(out, static_cast<u64>(st.splitters.sampled_rounds));
  put_pod<u64>(out, static_cast<u64>(st.splitters.sample_keys_total));
  put_pod<u64>(out, static_cast<u64>(st.splitters.hist_bytes_sampled));
  put_pod<u64>(out, static_cast<u64>(st.splitters.hist_bytes_dense));
  put_vec(out, st.splitters.round_probes);
  put_vec(out, st.recv_counts);
  put_pod<u64>(out, static_cast<u64>(st.stats.histogram_iterations));
  put_pod<u64>(out, static_cast<u64>(st.stats.splitter_probes));
  put_pod<u64>(out, static_cast<u64>(st.stats.elements_sent_off_rank));
  put_pod<u64>(out, static_cast<u64>(st.stats.elements_before));
  put_pod<u64>(out, static_cast<u64>(st.stats.elements_after));
  put_vec(out, st.stats.histogram_convergence);
  put_pod<u64>(out, static_cast<u64>(st.stats.sampled_rounds));
  put_pod<u64>(out, static_cast<u64>(st.stats.sample_keys_total));
  put_pod<u64>(out, static_cast<u64>(st.stats.hist_bytes_sampled));
  put_pod<u64>(out, static_cast<u64>(st.stats.hist_bytes_dense));
  put_vec(out, st.stats.round_probes);
  return out;
}

template <class T, class UK>
SortState<T, UK> deserialize_state(std::span<const std::byte> blob) {
  ByteReader r{blob};
  SortState<T, UK> st;
  const u64 completed = r.get_pod<u64>();
  HDS_CHECK_MSG(completed <= static_cast<u64>(SuperstepId::Done),
                "checkpoint blob carries invalid superstep " << completed);
  st.completed = static_cast<SuperstepId>(completed);
  st.out_capacity = static_cast<usize>(r.get_pod<u64>());
  st.data = r.get_vec<T>();
  st.splitters.splitter = r.get_vec<UK>();
  st.splitters.boundary = r.get_vec<usize>();
  st.splitters.local_lb = r.get_vec<usize>();
  st.splitters.local_ub = r.get_vec<usize>();
  st.splitters.global_lb = r.get_vec<usize>();
  st.splitters.global_ub = r.get_vec<usize>();
  st.splitters.iterations = static_cast<usize>(r.get_pod<u64>());
  st.splitters.probes_total = static_cast<usize>(r.get_pod<u64>());
  st.splitters.convergence = r.get_vec<double>();
  st.splitters.sampled_rounds = static_cast<usize>(r.get_pod<u64>());
  st.splitters.sample_keys_total = static_cast<usize>(r.get_pod<u64>());
  st.splitters.hist_bytes_sampled = static_cast<usize>(r.get_pod<u64>());
  st.splitters.hist_bytes_dense = static_cast<usize>(r.get_pod<u64>());
  st.splitters.round_probes = r.get_vec<u32>();
  st.recv_counts = r.get_vec<usize>();
  st.stats.histogram_iterations = static_cast<usize>(r.get_pod<u64>());
  st.stats.splitter_probes = static_cast<usize>(r.get_pod<u64>());
  st.stats.elements_sent_off_rank = static_cast<usize>(r.get_pod<u64>());
  st.stats.elements_before = static_cast<usize>(r.get_pod<u64>());
  st.stats.elements_after = static_cast<usize>(r.get_pod<u64>());
  st.stats.histogram_convergence = r.get_vec<double>();
  st.stats.sampled_rounds = static_cast<usize>(r.get_pod<u64>());
  st.stats.sample_keys_total = static_cast<usize>(r.get_pod<u64>());
  st.stats.hist_bytes_sampled = static_cast<usize>(r.get_pod<u64>());
  st.stats.hist_bytes_dense = static_cast<usize>(r.get_pod<u64>());
  st.stats.round_probes = r.get_vec<u32>();
  HDS_CHECK_MSG(r.off == blob.size(),
                "checkpoint blob has " << blob.size() - r.off
                                       << " trailing bytes");
  return st;
}

}  // namespace detail

}  // namespace hds::core
