// Distributed selection (Alg. 1 of the paper): find the k-th order statistic
// of a set partitioned over P ranks, using the weighted-median pivot rule of
// Saukas & Song. Each iteration discards at least one quarter of the active
// elements without any data redistribution, giving O(log P) rounds of one
// small allgather + allreduce each.
//
// This is the dash::nth_element building block the paper's discussion
// section advertises; the sort itself uses the histogramming multiselect
// (see multiselect.h), which the paper derives as a generalization of this
// algorithm.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "common/error.h"
#include "runtime/comm.h"

namespace hds::core {

/// Weighted median (Def. 2): the element x_k of a weighted sequence with
/// sum(w_i | x_i < x_k) < W/2 and sum(w_i | x_i > x_k) <= W/2, where W is the
/// total weight. Entries with zero weight are ignored. Sequential helper —
/// the sample it runs on has one entry per rank.
template <class T>
T weighted_median(std::vector<std::pair<T, double>> sample) {
  std::erase_if(sample, [](const auto& p) { return p.second <= 0.0; });
  HDS_CHECK_MSG(!sample.empty(), "weighted_median of an all-zero-weight set");
  std::sort(sample.begin(), sample.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  double total = 0.0;
  for (const auto& [x, w] : sample) total += w;
  // Group equal values so the Def. 2 conditions are evaluated exactly:
  // mass strictly below < W/2 and mass strictly above <= W/2.
  double below = 0.0;
  usize i = 0;
  while (i < sample.size()) {
    usize j = i;
    double group = 0.0;
    while (j < sample.size() && !(sample[i].first < sample[j].first)) {
      group += sample[j].second;
      ++j;
    }
    const double above = total - below - group;
    if (below < total / 2.0 && above <= total / 2.0) return sample[i].first;
    below += group;
    i = j;
  }
  return sample.back().first;
}

struct SelectStats {
  usize iterations = 0;        ///< weighted-median rounds
  bool used_gather_fallback = false;  ///< finished on a gathered remainder
};

/// Distributed selection: returns the value of 0-based global rank `k` among
/// all local partitions. Reorders `local` (3-way partitions accumulate, as
/// in quickselect). Collective over `comm`; `k` must agree on all ranks and
/// satisfy k < N where N is the global element count.
///
/// `gather_threshold`: once the active set is at most this large, the
/// remainder is gathered and solved sequentially (the paper's "switch to a
/// single processor" optimization for small working sets).
template <class T>
T dselect(runtime::Comm& comm, std::span<T> local, usize k,
          SelectStats* stats = nullptr, usize gather_threshold = 2048) {
  net::PhaseScope phase(comm.clock(), net::Phase::Histogram);
  usize lo = 0, hi = local.size();  // active local range [lo, hi)
  usize want = k;
  SelectStats st;

  for (;;) {
    const usize active = hi - lo;
    const usize global_active =
        comm.allreduce_value<u64>(active, [](u64 a, u64 b) { return a + b; });
    HDS_CHECK_MSG(want < global_active,
                  "dselect: k out of range (k=" << want << ", N="
                                                << global_active << ")");

    if (global_active <= gather_threshold) {
      // Gather the remaining candidates and finish sequentially.
      std::vector<T> all = comm.allgatherv(
          std::span<const T>(local.data() + lo, active));
      comm.charge_sort(all.size());
      std::nth_element(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(want),
                       all.end());
      st.used_gather_fallback = true;
      if (stats) *stats = st;
      return all[want];
    }

    ++st.iterations;

    // Local median of the active range, weighted by the partition size
    // (lines 4-7 of Alg. 1). Empty partitions contribute zero weight.
    T my_median{};
    if (active > 0) {
      const usize mid = lo + active / 2;
      std::nth_element(local.begin() + lo, local.begin() + mid,
                       local.begin() + hi);
      my_median = local[mid];
      comm.charge_partition(active);  // nth_element is a partition-like pass
    }
    struct MedianWeight {
      T median;
      double weight;
    };
    const MedianWeight mine{my_median,
                            static_cast<double>(active) /
                                static_cast<double>(global_active)};
    std::vector<MedianWeight> gathered(comm.size());
    comm.allgather(&mine, 1, gathered.data());
    std::vector<std::pair<T, double>> sample;
    sample.reserve(gathered.size());
    for (const auto& mw : gathered) sample.emplace_back(mw.median, mw.weight);
    const T pivot = weighted_median(std::move(sample));
    comm.charge_scan(comm.size());  // weighted-median over P samples

    // 3-way partition of the active range around the pivot (line 8).
    auto* first = local.data() + lo;
    auto* last = local.data() + hi;
    auto* mid1 = std::partition(first, last,
                                [&](const T& v) { return v < pivot; });
    auto* mid2 = std::partition(mid1, last,
                                [&](const T& v) { return !(pivot < v); });
    comm.charge_partition(active);
    const usize lt = static_cast<usize>(mid1 - first);
    const usize eq = static_cast<usize>(mid2 - mid1);

    // Global partition sizes via one allreduce (line 9).
    u64 counts[2] = {lt, eq};
    u64 global[2] = {0, 0};
    comm.allreduce(counts, global, 2, [](u64 a, u64 b) { return a + b; });
    const usize L = global[0];
    const usize E = global[1];

    if (want < L) {
      hi = lo + lt;  // recurse left
    } else if (want < L + E) {
      if (stats) *stats = st;
      return pivot;  // pivot rank matches (lines 10-11)
    } else {
      lo = lo + lt + eq;  // recurse right
      want -= L + E;
    }
  }
}

}  // namespace hds::core
