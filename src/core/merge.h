// Local k-way merging of the sorted chunks received in the exchange
// (Sec. V-C and the merging study of Sec. VI-E2). Three strategies:
//
//  * Sort        — re-sort the concatenation with a fast shared-memory sort
//                  (what the paper's evaluated implementation does);
//  * BinaryTree  — out-of-place pairwise merge tree, O(n log k), each element
//                  moves log k times;
//  * Tournament  — loser-tree k-way merge, O(n log k) comparisons but each
//                  element moves once (cache-efficient for small k).
#pragma once

#include <algorithm>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "common/error.h"
#include "core/local_sort.h"
#include "core/merge_inplace.h"
#include "runtime/comm.h"

namespace hds::core {

namespace detail {

/// View of the rank's pooled byte arena (Comm::scratch_arena) as `n`
/// elements of T. The arena is grown once and then reused across merge
/// passes, exchange rounds and sort calls, replacing the per-call staging
/// allocations the merge strategies used to make. T must be trivially
/// copyable (the same constraint the wire format imposes) because the bytes
/// are reinterpreted without constructing objects. The returned span is
/// invalidated by the next pooled_scratch call on the same rank.
template <class T>
std::span<T> pooled_scratch(runtime::Comm& comm, usize n) {
  static_assert(std::is_trivially_copyable_v<T>);
  auto& arena = comm.scratch_arena();
  const usize bytes = n * sizeof(T) + alignof(T);
  if (arena.size() < bytes) arena.resize(bytes);
  void* p = arena.data();
  usize space = arena.size();
  p = std::align(alignof(T), n * sizeof(T), p, space);
  HDS_CHECK(p != nullptr);
  return {static_cast<T*>(p), n};
}

}  // namespace detail

enum class MergeStrategy : u8 { Sort, BinaryTree, Tournament };

constexpr std::string_view merge_name(MergeStrategy m) {
  switch (m) {
    case MergeStrategy::Sort: return "sort";
    case MergeStrategy::BinaryTree: return "binary-tree";
    case MergeStrategy::Tournament: return "tournament";
  }
  return "?";
}

/// Loser tree over k sorted runs: pop() yields the globally smallest head in
/// O(log k) comparisons with a single replay path per extraction (Knuth's
/// tournament of losers).
template <class T, class Less>
class LoserTree {
 public:
  LoserTree(std::vector<std::span<const T>> runs, Less less)
      : runs_(std::move(runs)), less_(less) {
    k_ = runs_.size();
    cursor_.assign(k_, 0);
    if (k_ == 0) return;
    m_ = 1;
    while (m_ < k_) m_ <<= 1;  // leaves padded to a power of two
    tree_.assign(2 * m_, kEmpty);
    rebuild();
  }

  bool empty() const { return tree_.empty() || tree_[0] == kEmpty; }

  /// Extract the smallest element across all runs.
  T pop() {
    HDS_CHECK(!empty());
    const usize w = tree_[0];
    const T out = runs_[w][cursor_[w]];
    ++cursor_[w];
    replay(w);
    return out;
  }

 private:
  static constexpr usize kEmpty = static_cast<usize>(-1);

  const T& head(usize run) const { return runs_[run][cursor_[run]]; }
  bool exhausted(usize run) const {
    return run >= k_ || cursor_[run] >= runs_[run].size();
  }

  /// The run with the smaller head; exhausted/empty runs always lose.
  usize winner_of(usize a, usize b) {
    if (a == kEmpty) return b;
    if (b == kEmpty) return a;
    return less_(head(b), head(a)) ? b : a;
  }

  /// Rebuild the whole tree from the current cursors (O(k)); used at init.
  void rebuild() {
    std::vector<usize> level(m_);
    for (usize i = 0; i < m_; ++i)
      level[i] = (i < k_ && !exhausted(i)) ? i : kEmpty;
    // Bottom-up: compute winners per node, store losers.
    std::vector<usize> win(2 * m_, kEmpty);
    for (usize i = 0; i < m_; ++i) win[m_ + i] = level[i];
    for (usize node = m_ - 1; node >= 1; --node) {
      const usize a = win[2 * node];
      const usize b = win[2 * node + 1];
      const usize w = winner_of(a, b);
      win[node] = w;
      tree_[node] = (w == a) ? b : a;  // store the loser
    }
    tree_[0] = win[1];
  }

  /// After consuming from run w, replay w's path to the root.
  void replay(usize w) {
    usize contender = exhausted(w) ? kEmpty : w;
    usize node = (m_ + w) / 2;
    while (node >= 1) {
      const usize other = tree_[node];
      const usize win = winner_of(contender, other);
      tree_[node] = (win == contender) ? other : contender;
      contender = win;
      node /= 2;
    }
    tree_[0] = contender;
  }

  std::vector<std::span<const T>> runs_;
  Less less_;
  usize k_ = 0;
  usize m_ = 0;               ///< leaves (power of two)
  std::vector<usize> cursor_;
  std::vector<usize> tree_;   ///< losers per internal node; winner at [0]
};

/// Merge `k` sorted runs (concatenated in `data`, lengths in `counts`) into
/// a single sorted sequence, charging simulated time per strategy. The Sort
/// strategy re-sorts through the local-sort kernel layer, so `kernel`
/// selects the same comparison/radix dispatch as superstep 1.
template <class T, class KeyFn>
void merge_chunks(runtime::Comm& comm, std::vector<T>& data,
                  std::span<const usize> counts, MergeStrategy strategy,
                  KeyFn key,
                  LocalSortKernel kernel = LocalSortKernel::Auto) {
  net::PhaseScope phase(comm.clock(), net::Phase::Merge);
  const usize n = data.size();
  // Comparator invocations feed the MergeComparisons counter for the
  // comparison-based strategies; the Sort strategy's radix path does no
  // comparisons, so it emits nothing.
  u64 comparisons = 0;
  auto less = [&](const T& a, const T& b) {
    ++comparisons;
    return key(a) < key(b);
  };

  usize nonempty = 0;
  for (usize c : counts)
    if (c > 0) ++nonempty;
  if (nonempty <= 1) return;  // zero or one chunk: already sorted

  switch (strategy) {
    case MergeStrategy::Sort: {
      local_sort(comm, data, key, kernel);
      return;
    }
    case MergeStrategy::BinaryTree: {
      // Out-of-place pairwise merge levels; each level halves the number of
      // runs and touches every element once.
      std::vector<std::pair<usize, usize>> runs;  // (offset, length)
      usize off = 0;
      for (usize c : counts) {
        if (c > 0) runs.emplace_back(off, c);
        off += c;
      }
      if (runs.size() == 2 && runs[0].first == 0 &&
          runs[1].first == runs[0].second &&
          runs[0].second + runs[1].second == n) {
        // Two adjacent runs spanning the buffer — the shape every pull-path
        // exchange produces at P=2 and the one-factor overlap path feeds.
        // Merge in place: only the second run is staged (pooled scratch of
        // l2 elements, not a full-size ping-pong buffer), then a backward
        // merge places everything at its final offset.
        const usize l1 = runs[0].second;
        const usize l2 = runs[1].second;
        std::span<T> scratch = detail::pooled_scratch<T>(comm, l2);
        std::copy(data.begin() + l1, data.end(), scratch.begin());
        merge_tail_inplace(std::span<T>(data), l1,
                           std::span<const T>(scratch), less);
        comm.charge_merge_pass(n);
        comm.metrics().add(obs::Counter::MergeComparisons, comparisons);
        return;
      }
      // Ping-pong between `data` and the pooled arena — no per-call
      // full-size buffer allocation.
      std::span<T> src(data.data(), n);
      std::span<T> dst = detail::pooled_scratch<T>(comm, n);
      while (runs.size() > 1) {
        std::vector<std::pair<usize, usize>> next;
        usize out_off = 0;
        for (usize i = 0; i + 1 < runs.size(); i += 2) {
          const auto [o1, l1] = runs[i];
          const auto [o2, l2] = runs[i + 1];
          std::merge(src.begin() + o1, src.begin() + o1 + l1,
                     src.begin() + o2, src.begin() + o2 + l2,
                     dst.begin() + out_off, less);
          next.emplace_back(out_off, l1 + l2);
          out_off += l1 + l2;
        }
        if (runs.size() % 2 == 1) {
          const auto [o, l] = runs.back();
          std::copy(src.begin() + o, src.begin() + o + l,
                    dst.begin() + out_off);
          next.emplace_back(out_off, l);
        }
        comm.charge_merge_pass(n);
        runs.swap(next);
        std::swap(src, dst);
      }
      if (src.data() != data.data())
        std::copy(src.begin(), src.end(), data.begin());
      comm.metrics().add(obs::Counter::MergeComparisons, comparisons);
      return;
    }
    case MergeStrategy::Tournament: {
      // The loser tree reads the runs in place and extracts into the pooled
      // arena, which is then copied back over `data` — no per-call output
      // allocation.
      std::vector<std::span<const T>> runs;
      usize off = 0;
      for (usize c : counts) {
        if (c > 0)
          runs.emplace_back(std::span<const T>(data.data() + off, c));
        off += c;
      }
      LoserTree<T, decltype(less)> tree(std::move(runs), less);
      std::span<T> out = detail::pooled_scratch<T>(comm, n);
      usize w = 0;
      while (!tree.empty()) out[w++] = tree.pop();
      HDS_CHECK(w == n);
      std::copy(out.begin(), out.end(), data.begin());
      comm.charge_kway_merge(n, nonempty);
      comm.metrics().add(obs::Counter::MergeComparisons, comparisons);
      return;
    }
  }
}

}  // namespace hds::core
