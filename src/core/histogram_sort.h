// hds::core::sort — the distributed histogram sort (Sec. V), end to end:
//
//   1. Local Sort      fast shared-memory sort of the local partition
//   2. Splitting       distributed multiselection by histogramming (Alg. 2+3)
//   3. Data Exchange   permutation matrix + single ALL-TO-ALLV (Alg. 4)
//   4. Local Merge     merge of the received sorted chunks (Sec. V-C)
//
// Output invariant: each rank's partition is sorted, no element on rank i
// exceeds any element on rank i+1, and with epsilon == 0 every rank ends up
// with exactly as many elements as it contributed (perfect partitioning /
// in-place condition). With epsilon > 0 each boundary may deviate by
// N*eps/(2P), so partition sizes stay within N(1+eps)/P.
//
// No assumptions are made about key distribution, duplicate keys, rank
// count, or partition density — empty local partitions (sparse inputs) are
// supported throughout.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "core/exchange.h"
#include "core/key_traits.h"
#include "core/local_sort.h"
#include "core/merge.h"
#include "core/multiselect.h"
#include "core/selection.h"
#include "runtime/comm.h"

namespace hds::core {

/// How superstep 3 moves the data.
enum class ExchangeAlgorithm : u8 {
  Alltoallv,  ///< single collective ALL-TO-ALLV (the paper's evaluated path)
  OneFactor,  ///< pairwise 1-factor rounds (Sec. VI-E1 future work)
  Hypercube,  ///< store-and-forward, log2(P) rounds — for small N/P
              ///< (Sec. VI-E1); requires a power-of-two rank count
  Hierarchical,  ///< node-leader funneling (Sec. VI-E1): only one core per
                 ///< node touches the NIC; world communicator only
};

struct SortConfig {
  /// Load-balance threshold epsilon (Def. 1); 0 = perfect partitioning.
  double epsilon = 0.0;
  MergeStrategy merge = MergeStrategy::Sort;
  /// Local-sort kernel for superstep 1 and the Sort merge strategy.
  LocalSortKernel kernel = LocalSortKernel::Auto;
  SplitterInit init = SplitterInit::MinMax;
  usize sample_per_rank = 16;  ///< only used with SplitterInit::Sampled
  ExchangeAlgorithm exchange = ExchangeAlgorithm::Alltoallv;
  /// How superstep 3 moves payload bytes through the runtime (see
  /// core/exchange.h): Pull is the single-copy path, Packed the legacy
  /// arena-staged reference. Identical results and simulated time.
  DataPath path = DataPath::Pull;
  /// With ExchangeAlgorithm::OneFactor: binary-merge each received chunk on
  /// arrival, overlapping superstep 4 with the remaining rounds.
  bool overlap_merge = false;
  /// Skip superstep 1 when the caller guarantees sorted local input.
  bool input_is_sorted = false;
};

struct SortStats {
  usize histogram_iterations = 0;
  usize splitter_probes = 0;
  usize elements_sent_off_rank = 0;  ///< this rank's off-rank sends
  usize elements_before = 0;
  usize elements_after = 0;
  /// Per-round max relative boundary error of the splitter search (one
  /// entry per histogram round, identical on every rank) — lets the
  /// convergence curve of the paper's Table 3 be plotted, not just the
  /// final iteration count.
  std::vector<double> histogram_convergence;
};

/// Sort a distributed vector by a key projection with an explicit output
/// capacity per rank (`out_capacity` = this rank's share; capacities must
/// globally sum to N). This is the general entry point: the std::sort-like
/// overloads below derive capacities from the input distribution (the
/// paper's perfect-partitioning contract), while passing explicit
/// capacities rebalances arbitrary (e.g. sparse) inputs in the same single
/// data movement — the conclusion's sparse-matrix use case.
template <class T, class KeyFn>
SortStats sort_to_capacity(runtime::Comm& comm, std::vector<T>& local,
                           KeyFn key, usize out_capacity,
                           const SortConfig& cfg = {}) {
  SortStats stats;
  stats.elements_before = local.size();

  // Superstep 1: local sort.
  {
    net::PhaseScope phase(comm.clock(), net::Phase::LocalSort);
    if (!cfg.input_is_sorted) local_sort(comm, local, key, cfg.kernel);
  }

  // Targets: prefix sums of the output capacities (Def. 3).
  std::vector<usize> targets;
  {
    net::PhaseScope phase(comm.clock(), net::Phase::Histogram);
    const u64 mine_in = local.size();
    const u64 mine_out = out_capacity;
    std::vector<u64> in_caps(comm.size()), out_caps(comm.size());
    comm.allgather(&mine_in, 1, in_caps.data());
    comm.allgather(&mine_out, 1, out_caps.data());
    u64 n_in = 0, n_out = 0;
    for (int r = 0; r < comm.size(); ++r) {
      n_in += in_caps[r];
      n_out += out_caps[r];
    }
    HDS_CHECK_MSG(n_in == n_out,
                  "output capacities (" << n_out
                                        << ") must sum to the global size ("
                                        << n_in << ")");
    targets.resize(comm.size() - 1);
    u64 acc = 0;
    for (int r = 0; r + 1 < comm.size(); ++r) {
      acc += out_caps[r];
      targets[r] = acc;
    }
  }

  // Superstep 2: splitter determination.
  MultiselectConfig mcfg;
  mcfg.epsilon = cfg.epsilon;
  mcfg.init = cfg.init;
  mcfg.sample_per_rank = cfg.sample_per_rank;
  const auto splitters = find_splitters(
      comm, std::span<const T>(local.data(), local.size()), key,
      std::span<const usize>(targets), mcfg);
  stats.histogram_iterations = splitters.iterations;
  stats.splitter_probes = splitters.probes_total;
  stats.histogram_convergence = splitters.convergence;

  // Superstep 3: data exchange.
  const std::span<const T> sorted_view(local.data(), local.size());
  ExchangeResult<T> ex;
  switch (cfg.exchange) {
    case ExchangeAlgorithm::OneFactor:
      ex = exchange_one_factor(comm, sorted_view, splitters, key,
                               cfg.overlap_merge, cfg.path);
      break;
    case ExchangeAlgorithm::Hypercube:
      ex = exchange_hypercube(comm, sorted_view, splitters, cfg.path);
      break;
    case ExchangeAlgorithm::Hierarchical:
      ex = exchange_hierarchical(comm, sorted_view, splitters, cfg.path);
      break;
    case ExchangeAlgorithm::Alltoallv:
      ex = exchange(comm, sorted_view, splitters, cfg.path);
      break;
  }
  stats.elements_sent_off_rank = ex.elements_sent_off_rank;

  // Superstep 4: local merge of the received sorted chunks.
  merge_chunks(comm, ex.data, std::span<const usize>(ex.recv_counts),
               cfg.merge, key, cfg.kernel);

  local = std::move(ex.data);
  stats.elements_after = local.size();
  return stats;
}

/// Sort a distributed vector by a key projection; the output distribution
/// equals the input distribution (perfect partitioning when epsilon == 0).
template <class T, class KeyFn>
SortStats sort_by_key(runtime::Comm& comm, std::vector<T>& local, KeyFn key,
                      const SortConfig& cfg = {}) {
  return sort_to_capacity(comm, local, key, local.size(), cfg);
}

/// Sort a distributed vector of keys directly (std::sort-like entry point).
template <class T>
SortStats sort(runtime::Comm& comm, std::vector<T>& local,
               const SortConfig& cfg = {}) {
  return sort_by_key(comm, local, IdentityKey{}, cfg);
}

/// Sort and rebalance in one data movement: every rank ends with an even
/// share N/P (first N mod P ranks get one extra).
template <class T, class KeyFn>
SortStats sort_balanced(runtime::Comm& comm, std::vector<T>& local,
                        KeyFn key, const SortConfig& cfg = {}) {
  const u64 n = comm.allreduce_value<u64>(
      local.size(), [](u64 a, u64 b) { return a + b; });
  const usize base = static_cast<usize>(n) / comm.size();
  const usize extra = static_cast<usize>(n) % comm.size();
  const usize mine = base + (static_cast<usize>(comm.rank()) < extra ? 1 : 0);
  return sort_to_capacity(comm, local, key, mine, cfg);
}

/// Resilient end-to-end sort: runs the full histogram sort on `team` with
/// bounded retries. The caller's input partitions are preserved across
/// attempts — each attempt sorts a fresh copy — so a rank failure (e.g. an
/// injected crash, see runtime/fault.h) mid-superstep simply discards the
/// attempt and re-runs from the original input. After a successful run the
/// global sort invariant is verified collectively before the result is
/// committed back into `partitions`; a violated invariant counts as a
/// failed attempt. Returns rank-aggregated stats (sums over ranks for
/// element counts, max over ranks for iteration/probe counts); `attempts`,
/// if non-null, receives the number of attempts used.
template <class T, class KeyFn>
SortStats sort_resilient(runtime::Team& team,
                         std::vector<std::vector<T>>& partitions, KeyFn key,
                         const SortConfig& cfg = {},
                         const runtime::RetryPolicy& policy = {},
                         int* attempts = nullptr) {
  HDS_CHECK_MSG(partitions.size() == static_cast<usize>(team.size()),
                "sort_resilient: need one input partition per rank ("
                    << partitions.size() << " given, team size "
                    << team.size() << ")");
  std::vector<std::vector<T>> work(partitions.size());
  std::vector<SortStats> per_rank(partitions.size());
  const int used = team.run_with_retry(
      [&](runtime::Comm& c) {
        auto& mine = work[c.rank()];
        per_rank[c.rank()] = sort_by_key(c, mine, key, cfg);
        HDS_CHECK_MSG(
            is_globally_sorted(
                c, std::span<const T>(mine.data(), mine.size()), key),
            "sort_resilient: output violates the global sort invariant");
      },
      policy, [&](int) { work = partitions; });
  partitions = std::move(work);
  if (attempts) *attempts = used;
  SortStats agg;
  for (const SortStats& s : per_rank) {
    agg.histogram_iterations =
        std::max(agg.histogram_iterations, s.histogram_iterations);
    agg.splitter_probes = std::max(agg.splitter_probes, s.splitter_probes);
    agg.elements_sent_off_rank += s.elements_sent_off_rank;
    agg.elements_before += s.elements_before;
    agg.elements_after += s.elements_after;
    // The convergence series is a global quantity, identical on all ranks.
    if (agg.histogram_convergence.empty())
      agg.histogram_convergence = s.histogram_convergence;
  }
  return agg;
}

/// Key-less convenience overload of sort_resilient.
template <class T>
SortStats sort_resilient(runtime::Team& team,
                         std::vector<std::vector<T>>& partitions,
                         const SortConfig& cfg = {},
                         const runtime::RetryPolicy& policy = {},
                         int* attempts = nullptr) {
  return sort_resilient(team, partitions, IdentityKey{}, cfg, policy,
                        attempts);
}

/// Distributed nth_element: the value of 0-based global rank k, via the
/// weighted-median selection of Alg. 1 (dash::nth_element). Reorders
/// `local`.
template <class T>
T nth_element(runtime::Comm& comm, std::span<T> local, usize k) {
  return dselect(comm, local, k);
}

/// Verification helper (collective): does the distributed sequence satisfy
/// the global sort invariant? Each rank checks local sortedness and that its
/// maximum does not exceed the next non-empty rank's minimum.
template <class T, class KeyFn>
bool is_globally_sorted(runtime::Comm& comm, std::span<const T> local,
                        KeyFn key) {
  using K = std::decay_t<decltype(key(std::declval<T>()))>;
  const bool local_ok = is_locally_sorted(local, key);

  struct Edge {
    K min, max;
    u8 has;
  };
  Edge mine{};
  mine.has = local.empty() ? 0 : 1;
  if (mine.has) {
    mine.min = key(local.front());
    mine.max = key(local.back());
  }
  std::vector<Edge> edges(comm.size());
  comm.allgather(&mine, 1, edges.data());

  bool ok = local_ok;
  K prev_max{};
  bool have_prev = false;
  for (const Edge& e : edges) {
    if (!e.has) continue;
    if (have_prev && e.min < prev_max) ok = false;
    prev_max = e.max;
    have_prev = true;
  }
  const u8 all =
      comm.allreduce_value<u8>(ok ? 1 : 0, [](u8 a, u8 b) -> u8 { return a & b; });
  return all != 0;
}

}  // namespace hds::core
