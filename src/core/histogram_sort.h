// hds::core::sort — the distributed histogram sort (Sec. V), end to end:
//
//   1. Local Sort      fast shared-memory sort of the local partition
//   2. Splitting       distributed multiselection by histogramming (Alg. 2+3)
//   3. Data Exchange   permutation matrix + single ALL-TO-ALLV (Alg. 4)
//   4. Local Merge     merge of the received sorted chunks (Sec. V-C)
//
// Output invariant: each rank's partition is sorted, no element on rank i
// exceeds any element on rank i+1, and with epsilon == 0 every rank ends up
// with exactly as many elements as it contributed (perfect partitioning /
// in-place condition). With epsilon > 0 each boundary may deviate by
// N*eps/(2P), so partition sizes stay within N(1+eps)/P.
//
// No assumptions are made about key distribution, duplicate keys, rank
// count, or partition density — empty local partitions (sparse inputs) are
// supported throughout.
#pragma once

#include <algorithm>
#include <chrono>
#include <limits>
#include <span>
#include <stdexcept>
#include <string_view>
#include <thread>
#include <vector>

#include "core/exchange.h"
#include "core/key_traits.h"
#include "core/local_sort.h"
#include "core/merge.h"
#include "core/multiselect.h"
#include "core/selection.h"
#include "core/superstep.h"
#include "runtime/checkpoint.h"
#include "runtime/comm.h"

namespace hds::core {

/// How superstep 3 moves the data.
enum class ExchangeAlgorithm : u8 {
  Alltoallv,  ///< single collective ALL-TO-ALLV (the paper's evaluated path)
  OneFactor,  ///< pairwise 1-factor rounds (Sec. VI-E1 future work)
  Hypercube,  ///< store-and-forward, log2(P) rounds — for small N/P
              ///< (Sec. VI-E1); requires a power-of-two rank count
  Hierarchical,  ///< node-leader funneling (Sec. VI-E1): only one core per
                 ///< node touches the NIC; world communicator only
  KAry,  ///< tunable k-ary swap schedule (DESIGN.md sec. 13): store-and-
         ///< forward in ceil(log_k P) rounds of k-1 group partners each,
         ///< spanning hypercube (k = 2) to direct exchange (k >= P); any
         ///< rank count; with overlap_merge, round r-1's arrivals are
         ///< tail-merged while round r's payload copies are in flight
};

struct SortConfig {
  /// Load-balance threshold epsilon (Def. 1); 0 = perfect partitioning.
  double epsilon = 0.0;
  MergeStrategy merge = MergeStrategy::Sort;
  /// Local-sort kernel for superstep 1 and the Sort merge strategy.
  LocalSortKernel kernel = LocalSortKernel::Auto;
  SplitterInit init = SplitterInit::MinMax;
  usize sample_per_rank = 16;  ///< only used with SplitterInit::Sampled
  /// Histogramming strategy of the splitter search (PR 10): Dense is the
  /// paper's probe-and-allreduce baseline; Sampled/Hybrid run HSS-style
  /// sampled rounds first (replacing the SplitterInit phase, so `init` is
  /// ignored for them) and Hybrid additionally interpolates dense probes
  /// from the sampled CDF. All modes produce identical sorted output.
  HistogramMode histogram = HistogramMode::Dense;
  /// Oversampling factor of the sampled rounds (Sampled/Hybrid only): each
  /// rank contributes ~(oversample + 2) * sqrt(#boundaries in segment)
  /// systematically sampled keys per search segment per round.
  usize oversample = 8;
  ExchangeAlgorithm exchange = ExchangeAlgorithm::Alltoallv;
  /// How superstep 3 moves payload bytes through the runtime (see
  /// core/exchange.h): Pull is the single-copy path, Packed the legacy
  /// arena-staged reference. Identical results and simulated time.
  DataPath path = DataPath::Pull;
  /// With ExchangeAlgorithm::KAry: per-round group size ("radix") of the
  /// swap schedule. 2 reproduces the hypercube's log2(P) rounds of one
  /// partner; >= P collapses to a single direct-exchange round; values in
  /// between trade rounds (latency, forwarding traffic) against partners
  /// per round and merge fan-in. See kary_round_factors for non-k-smooth P.
  int exchange_k = 4;
  /// With ExchangeAlgorithm::OneFactor or KAry: merge received chunks on
  /// arrival instead of in superstep 4, overlapping the merge with the
  /// remaining communication rounds (for KAry the overlap is charged
  /// against the round's p2p window via CostModel::overlapped_merge).
  bool overlap_merge = false;
  /// Skip superstep 1 when the caller guarantees sorted local input.
  bool input_is_sorted = false;
};

/// The unsigned key image type the splitter search runs over, for a given
/// element type and key projection.
template <class T, class KeyFn>
using SortKeyImage = typename KeyTraits<
    std::decay_t<decltype(std::declval<KeyFn>()(std::declval<T>()))>>::
    uint_type;

/// Superstep 1 (Start -> LocalSorted): fast shared-memory sort of the
/// local partition.
template <class T, class UK, class KeyFn>
void superstep_local_sort(runtime::Comm& comm, SortState<T, UK>& st,
                          KeyFn key, const SortConfig& cfg) {
  net::PhaseScope phase(comm.clock(), net::Phase::LocalSort);
  if (!cfg.input_is_sorted) local_sort(comm, st.data, key, cfg.kernel);
}

/// Superstep 2 (LocalSorted -> SplittersReady): exchange capacities, build
/// the target ranks (Def. 3), and run the distributed multiselection.
template <class T, class UK, class KeyFn>
void superstep_splitters(runtime::Comm& comm, SortState<T, UK>& st,
                         KeyFn key, const SortConfig& cfg) {
  // Targets: prefix sums of the output capacities (Def. 3). Recomputed
  // here rather than carried in SortState so a resumed-or-shrunken run
  // derives them from the current communicator and capacities.
  std::vector<usize> targets;
  {
    net::PhaseScope phase(comm.clock(), net::Phase::Histogram);
    const u64 mine_in = st.data.size();
    const u64 mine_out = st.out_capacity;
    std::vector<u64> in_caps(comm.size()), out_caps(comm.size());
    comm.allgather(&mine_in, 1, in_caps.data());
    comm.allgather(&mine_out, 1, out_caps.data());
    u64 n_in = 0, n_out = 0;
    for (int r = 0; r < comm.size(); ++r) {
      n_in += in_caps[r];
      n_out += out_caps[r];
    }
    HDS_CHECK_MSG(n_in == n_out,
                  "output capacities (" << n_out
                                        << ") must sum to the global size ("
                                        << n_in << ")");
    targets.resize(comm.size() - 1);
    u64 acc = 0;
    for (int r = 0; r + 1 < comm.size(); ++r) {
      acc += out_caps[r];
      targets[r] = acc;
    }
  }

  MultiselectConfig mcfg;
  mcfg.epsilon = cfg.epsilon;
  mcfg.init = cfg.init;
  mcfg.sample_per_rank = cfg.sample_per_rank;
  mcfg.histogram = cfg.histogram;
  mcfg.oversample = cfg.oversample;
  st.splitters = find_splitters(
      comm, std::span<const T>(st.data.data(), st.data.size()), key,
      std::span<const usize>(targets), mcfg);
  st.stats.histogram_iterations = st.splitters.iterations;
  st.stats.splitter_probes = st.splitters.probes_total;
  st.stats.histogram_convergence = st.splitters.convergence;
  st.stats.sampled_rounds = st.splitters.sampled_rounds;
  st.stats.sample_keys_total = st.splitters.sample_keys_total;
  st.stats.hist_bytes_sampled = st.splitters.hist_bytes_sampled;
  st.stats.hist_bytes_dense = st.splitters.hist_bytes_dense;
  st.stats.round_probes = st.splitters.round_probes;
}

/// Superstep 3 (SplittersReady -> Exchanged): permutation matrix + data
/// exchange. st.data becomes the received chunk concatenation.
template <class T, class UK, class KeyFn>
void superstep_exchange(runtime::Comm& comm, SortState<T, UK>& st,
                        KeyFn key, const SortConfig& cfg) {
  const std::span<const T> sorted_view(st.data.data(), st.data.size());
  ExchangeResult<T> ex;
  switch (cfg.exchange) {
    case ExchangeAlgorithm::OneFactor:
      ex = exchange_one_factor(comm, sorted_view, st.splitters, key,
                               cfg.overlap_merge, cfg.path);
      break;
    case ExchangeAlgorithm::Hypercube:
      ex = exchange_hypercube(comm, sorted_view, st.splitters, cfg.path);
      break;
    case ExchangeAlgorithm::Hierarchical:
      ex = exchange_hierarchical(comm, sorted_view, st.splitters, cfg.path);
      break;
    case ExchangeAlgorithm::KAry:
      ex = exchange_kary(comm, sorted_view, st.splitters, key,
                         cfg.exchange_k, cfg.overlap_merge, cfg.path);
      break;
    case ExchangeAlgorithm::Alltoallv:
      ex = exchange(comm, sorted_view, st.splitters, cfg.path);
      break;
  }
  st.stats.elements_sent_off_rank = ex.elements_sent_off_rank;
  st.data = std::move(ex.data);
  st.recv_counts = std::move(ex.recv_counts);
}

/// Superstep 4 (Exchanged -> Done): local merge of the received chunks.
template <class T, class UK, class KeyFn>
void superstep_merge(runtime::Comm& comm, SortState<T, UK>& st, KeyFn key,
                     const SortConfig& cfg) {
  merge_chunks(comm, st.data, std::span<const usize>(st.recv_counts),
               cfg.merge, key, cfg.kernel);
  st.recv_counts.clear();
  st.stats.elements_after = st.data.size();
}

/// Run the next superstep of `st` and advance the state machine. With a
/// CheckpointStore, the new boundary state is serialized and replicated to
/// the buddy rank (Done is not checkpointed — the output is committed).
/// With store == nullptr no extra communication op or charge is issued, so
/// simulated times are bit-identical to the pre-state-machine sort.
template <class T, class UK, class KeyFn>
void advance_superstep(runtime::Comm& comm, SortState<T, UK>& st, KeyFn key,
                       const SortConfig& cfg,
                       runtime::CheckpointStore* store = nullptr) {
  switch (st.completed) {
    case SuperstepId::Start:
      superstep_local_sort(comm, st, key, cfg);
      st.completed = SuperstepId::LocalSorted;
      break;
    case SuperstepId::LocalSorted:
      superstep_splitters(comm, st, key, cfg);
      st.completed = SuperstepId::SplittersReady;
      break;
    case SuperstepId::SplittersReady:
      superstep_exchange(comm, st, key, cfg);
      st.completed = SuperstepId::Exchanged;
      break;
    case SuperstepId::Exchanged:
      superstep_merge(comm, st, key, cfg);
      st.completed = SuperstepId::Done;
      break;
    case SuperstepId::Done:
      return;
  }
  comm.metrics().add(obs::Counter::SuperstepsExecuted, 1);
  if (store != nullptr && st.completed != SuperstepId::Done)
    comm.checkpoint_to_buddy(*store, static_cast<u64>(st.completed),
                             detail::serialize_state(st));
}

/// Sort a distributed vector by a key projection with an explicit output
/// capacity per rank (`out_capacity` = this rank's share; capacities must
/// globally sum to N). This is the general entry point: the std::sort-like
/// overloads below derive capacities from the input distribution (the
/// paper's perfect-partitioning contract), while passing explicit
/// capacities rebalances arbitrary (e.g. sparse) inputs in the same single
/// data movement — the conclusion's sparse-matrix use case.
///
/// With a CheckpointStore the state is additionally checkpointed at every
/// superstep boundary (including the raw input at Start), enabling
/// RecoveryMode::ResumeCheckpoint / ShrinkSurvivors in sort_resilient.
template <class T, class KeyFn>
SortStats sort_to_capacity(runtime::Comm& comm, std::vector<T>& local,
                           KeyFn key, usize out_capacity,
                           const SortConfig& cfg = {},
                           runtime::CheckpointStore* store = nullptr) {
  using UK = SortKeyImage<T, KeyFn>;
  SortState<T, UK> st;
  st.out_capacity = out_capacity;
  st.data = std::move(local);
  st.stats.elements_before = st.data.size();
  if (store != nullptr)
    comm.checkpoint_to_buddy(*store, static_cast<u64>(SuperstepId::Start),
                             detail::serialize_state(st));
  while (st.completed != SuperstepId::Done)
    advance_superstep(comm, st, key, cfg, store);
  local = std::move(st.data);
  return st.stats;
}

/// Sort a distributed vector by a key projection; the output distribution
/// equals the input distribution (perfect partitioning when epsilon == 0).
template <class T, class KeyFn>
SortStats sort_by_key(runtime::Comm& comm, std::vector<T>& local, KeyFn key,
                      const SortConfig& cfg = {}) {
  return sort_to_capacity(comm, local, key, local.size(), cfg);
}

/// Sort a distributed vector of keys directly (std::sort-like entry point).
template <class T>
SortStats sort(runtime::Comm& comm, std::vector<T>& local,
               const SortConfig& cfg = {}) {
  return sort_by_key(comm, local, IdentityKey{}, cfg);
}

/// Sort and rebalance in one data movement: every rank ends with an even
/// share N/P (first N mod P ranks get one extra).
template <class T, class KeyFn>
SortStats sort_balanced(runtime::Comm& comm, std::vector<T>& local,
                        KeyFn key, const SortConfig& cfg = {}) {
  const u64 n = comm.allreduce_value<u64>(
      local.size(), [](u64 a, u64 b) { return a + b; });
  const usize base = static_cast<usize>(n) / comm.size();
  const usize extra = static_cast<usize>(n) % comm.size();
  const usize mine = base + (static_cast<usize>(comm.rank()) < extra ? 1 : 0);
  return sort_to_capacity(comm, local, key, mine, cfg);
}

/// Resilient end-to-end sort: runs the full histogram sort on `team` with
/// bounded retries. The caller's input partitions are preserved across
/// attempts — each attempt sorts a fresh copy — so a rank failure (e.g. an
/// injected crash, see runtime/fault.h) mid-superstep simply discards the
/// attempt and re-runs from the original input. After a successful run the
/// global sort invariant is verified collectively before the result is
/// committed back into `partitions`; a violated invariant counts as a
/// failed attempt. Returns rank-aggregated stats (sums over ranks for
/// element counts, max over ranks for iteration/probe counts); `attempts`,
/// if non-null, receives the number of attempts used.
template <class T, class KeyFn>
SortStats sort_resilient(runtime::Team& team,
                         std::vector<std::vector<T>>& partitions, KeyFn key,
                         const SortConfig& cfg = {},
                         const runtime::RetryPolicy& policy = {},
                         int* attempts = nullptr) {
  HDS_CHECK_MSG(partitions.size() == static_cast<usize>(team.size()),
                "sort_resilient: need one input partition per rank ("
                    << partitions.size() << " given, team size "
                    << team.size() << ")");
  std::vector<std::vector<T>> work(partitions.size());
  std::vector<SortStats> per_rank(partitions.size());
  const int used = team.run_with_retry(
      [&](runtime::Comm& c) {
        auto& mine = work[c.rank()];
        per_rank[c.rank()] = sort_by_key(c, mine, key, cfg);
        HDS_CHECK_MSG(
            is_globally_sorted(
                c, std::span<const T>(mine.data(), mine.size()), key),
            "sort_resilient: output violates the global sort invariant");
      },
      policy, [&](int) { work = partitions; });
  partitions = std::move(work);
  if (attempts) *attempts = used;
  SortStats agg;
  for (const SortStats& s : per_rank) {
    agg.histogram_iterations =
        std::max(agg.histogram_iterations, s.histogram_iterations);
    agg.splitter_probes = std::max(agg.splitter_probes, s.splitter_probes);
    agg.elements_sent_off_rank += s.elements_sent_off_rank;
    agg.elements_before += s.elements_before;
    agg.elements_after += s.elements_after;
    // Global quantities, identical on all ranks: convergence/probe series
    // are copied once, scalar counters keep the max.
    if (agg.histogram_convergence.empty())
      agg.histogram_convergence = s.histogram_convergence;
    agg.sampled_rounds = std::max(agg.sampled_rounds, s.sampled_rounds);
    agg.sample_keys_total =
        std::max(agg.sample_keys_total, s.sample_keys_total);
    agg.hist_bytes_sampled =
        std::max(agg.hist_bytes_sampled, s.hist_bytes_sampled);
    agg.hist_bytes_dense = std::max(agg.hist_bytes_dense, s.hist_bytes_dense);
    if (agg.round_probes.empty()) agg.round_probes = s.round_probes;
  }
  return agg;
}

/// Key-less convenience overload of sort_resilient.
template <class T>
SortStats sort_resilient(runtime::Team& team,
                         std::vector<std::vector<T>>& partitions,
                         const SortConfig& cfg = {},
                         const runtime::RetryPolicy& policy = {},
                         int* attempts = nullptr) {
  return sort_resilient(team, partitions, IdentityKey{}, cfg, policy,
                        attempts);
}

/// Distributed nth_element: the value of 0-based global rank k, via the
/// weighted-median selection of Alg. 1 (dash::nth_element). Reorders
/// `local`.
template <class T>
T nth_element(runtime::Comm& comm, std::span<T> local, usize k) {
  return dselect(comm, local, k);
}

/// Verification helper (collective): does the distributed sequence satisfy
/// the global sort invariant? Each rank checks local sortedness and that its
/// maximum does not exceed the next non-empty rank's minimum.
template <class T, class KeyFn>
bool is_globally_sorted(runtime::Comm& comm, std::span<const T> local,
                        KeyFn key) {
  using K = std::decay_t<decltype(key(std::declval<T>()))>;
  const bool local_ok = is_locally_sorted(local, key);

  struct Edge {
    K min, max;
    u8 has;
  };
  Edge mine{};
  mine.has = local.empty() ? 0 : 1;
  if (mine.has) {
    mine.min = key(local.front());
    mine.max = key(local.back());
  }
  std::vector<Edge> edges(comm.size());
  comm.allgather(&mine, 1, edges.data());

  bool ok = local_ok;
  K prev_max{};
  bool have_prev = false;
  for (const Edge& e : edges) {
    if (!e.has) continue;
    if (have_prev && e.min < prev_max) ok = false;
    prev_max = e.max;
    have_prev = true;
  }
  const u8 all =
      comm.allreduce_value<u8>(ok ? 1 : 0, [](u8 a, u8 b) -> u8 { return a & b; });
  return all != 0;
}

// --- failure recovery --------------------------------------------------------

/// How sort_resilient reacts to a rank failure.
enum class RecoveryMode : u8 {
  /// Discard the attempt and re-run from the caller's input on the full
  /// team (the legacy retry semantics; no checkpointing overhead).
  RestartFull,
  /// Checkpoint every superstep boundary; after a failure, re-run on the
  /// same rank count resuming from the last boundary every rank can
  /// restore — only the interrupted superstep is replayed.
  ResumeCheckpoint,
  /// Recover in-flight (requires no re-run): survivors agree on the
  /// shrunken team, absorb the dead ranks' checkpointed shards, and finish
  /// the sort on P-1 ranks with rebalanced output capacities.
  ShrinkSurvivors,
};

constexpr std::string_view recovery_mode_name(RecoveryMode m) {
  switch (m) {
    case RecoveryMode::RestartFull:
      return "RestartFull";
    case RecoveryMode::ResumeCheckpoint:
      return "ResumeCheckpoint";
    case RecoveryMode::ShrinkSurvivors:
      return "ShrinkSurvivors";
  }
  return "?";
}

struct ResilienceConfig {
  RecoveryMode mode = RecoveryMode::RestartFull;
  /// Rank failures tolerated before the sort gives up and rethrows.
  int fault_budget = 3;
  /// Wall-clock backoff before a re-attempt, doubled (by `backoff_multiplier`)
  /// after each failed attempt.
  double backoff_s = 0.0;
  double backoff_multiplier = 2.0;
};

/// What recovery actually cost, aggregated over every attempt of one
/// sort_resilient call (metrics-derived; see obs/metrics.h).
struct ResilienceReport {
  int attempts = 0;       ///< Team::run attempts used
  usize failures = 0;     ///< rank failures absorbed or retried through
  u64 recoveries = 0;     ///< in-flight survivor agreements (ShrinkSurvivors)
  usize supersteps_executed = 0;  ///< summed over ranks and attempts
  usize supersteps_minimum = 0;   ///< fault-free floor: kSupersteps * P
  /// (supersteps_executed - supersteps_minimum) / supersteps_minimum: 0 for
  /// a fault-free run; < 1.0 whenever recovery beat a full re-execution.
  double recomputed_fraction = 0.0;
  u64 checkpoint_bytes = 0;  ///< total bytes replicated to buddies
  /// Simulated time-to-solution: attempt makespans summed, aborted
  /// attempts included (their clocks stop at the failure).
  double sim_seconds_total = 0.0;
  /// Simulated seconds from each survivor noticing a failure to agreement
  /// completion (one entry per survivor per agreement).
  std::vector<double> recovery_seconds;
  /// Ranks holding output partitions (all of them, or the survivors).
  std::vector<rank_t> final_ranks;
};

namespace detail {

/// Restore a survivor's SortState after a shrink agreement: every survivor
/// marks the dead ranks' memory lost, picks the deepest superstep boundary
/// every original rank can still serve (clamped to LocalSorted — splitter
/// and exchange state are bound to the old rank count), reloads its own
/// boundary state, absorbs its slice of each dead rank's checkpointed
/// shard, and rebalances the output capacities over the survivors. Throws
/// (plain runtime_error, unrecoverable for this attempt) when a dead
/// rank's checkpoint is gone because its buddy died too.
template <class T, class UK, class KeyFn>
SortState<T, UK> shrink_restore(runtime::Comm& c,
                                runtime::CheckpointStore& store, KeyFn key) {
  const int Q = c.size();
  const int P = store.nranks();
  std::vector<rank_t> dead;
  for (rank_t r = 0; r < static_cast<rank_t>(P); ++r) {
    bool live = false;
    for (int i = 0; i < Q; ++i)
      if (c.world_rank_of(i) == r) live = true;
    if (!live) dead.push_back(r);
  }
  // Each survivor marks every dead rank itself (idempotent, thread-safe)
  // before reading availability, so its own view is final.
  for (rank_t d : dead) store.mark_lost(d);

  i64 common = std::numeric_limits<i64>::max();
  for (rank_t r = 0; r < static_cast<rank_t>(P); ++r)
    common = std::min(common, store.latest_step(r));
  if (common < 0)
    throw std::runtime_error(
        "hds: shrink recovery impossible — a failed rank has no surviving "
        "checkpoint (owner and buddy both failed, or it died before its "
        "first checkpoint)");
  const u64 resume =
      std::min(static_cast<u64>(common),
               static_cast<u64>(SuperstepId::LocalSorted));

  auto own = c.fetch_checkpoint(store, c.world_rank(), resume);
  HDS_CHECK_MSG(own.has_value(),
                "survivor checkpoint missing at resume boundary " << resume);
  auto st = deserialize_state<T, UK>(own->bytes);
  const bool sorted = st.completed != SuperstepId::Start;

  for (rank_t d : dead) {
    auto blob = c.fetch_checkpoint(store, d, resume);
    if (!blob)
      throw std::runtime_error(
          "hds: shrink recovery impossible — failed rank's checkpoint lost "
          "(its buddy failed too)");
    auto dead_st = deserialize_state<T, UK>(blob->bytes);
    const auto& shard = dead_st.data;
    // Survivor i absorbs the i-th contiguous slice of the dead shard. At a
    // sorted boundary the slices are sorted runs, merged in; at Start the
    // raw slice is appended and the local-sort superstep handles it.
    const usize n = shard.size();
    const usize i = static_cast<usize>(c.rank());
    const usize lo = n * i / static_cast<usize>(Q);
    const usize hi = n * (i + 1) / static_cast<usize>(Q);
    if (hi > lo) {
      const usize old = st.data.size();
      st.data.insert(st.data.end(), shard.begin() + static_cast<std::ptrdiff_t>(lo),
                     shard.begin() + static_cast<std::ptrdiff_t>(hi));
      if (sorted) {
        std::inplace_merge(
            st.data.begin(),
            st.data.begin() + static_cast<std::ptrdiff_t>(old),
            st.data.end(),
            [&](const T& a, const T& b) { return key(a) < key(b); });
        c.charge_merge_pass(st.data.size());
      }
    }
  }

  // Rebalance the output over the survivors: even shares of N (the
  // load-balance-after-shrink move, PAPERS.md arxiv 1611.00463).
  const u64 n = c.allreduce_value<u64>(static_cast<u64>(st.data.size()),
                                       [](u64 a, u64 b) { return a + b; });
  const usize base = static_cast<usize>(n) / static_cast<usize>(Q);
  const usize extra = static_cast<usize>(n) % static_cast<usize>(Q);
  st.out_capacity = base + (static_cast<usize>(c.rank()) < extra ? 1 : 0);
  st.completed = static_cast<SuperstepId>(resume);
  st.splitters = {};
  st.recv_counts.clear();
  return st;
}

}  // namespace detail

/// Resilient end-to-end sort with an explicit recovery mode (the legacy
/// RetryPolicy overloads below keep the restart-only semantics). The
/// caller's input partitions are preserved until success; on success they
/// are replaced by the sorted output — under ShrinkSurvivors the failed
/// ranks' entries come back empty and the survivors hold rebalanced even
/// shares, in rank order, so the concatenation over all P entries is still
/// the globally sorted sequence. Rethrows the last error once more than
/// `rcfg.fault_budget` failures have been spent.
template <class T, class KeyFn>
SortStats sort_resilient(runtime::Team& team,
                         std::vector<std::vector<T>>& partitions, KeyFn key,
                         const SortConfig& cfg, const ResilienceConfig& rcfg,
                         ResilienceReport* report = nullptr) {
  using UK = SortKeyImage<T, KeyFn>;
  const int P = team.size();
  HDS_CHECK_MSG(partitions.size() == static_cast<usize>(P),
                "sort_resilient: need one input partition per rank ("
                    << partitions.size() << " given, team size " << P << ")");
  HDS_CHECK(rcfg.fault_budget >= 0);

  ResilienceReport rep;
  rep.supersteps_minimum = kSupersteps * static_cast<usize>(P);

  runtime::CheckpointStore store(P);
  std::vector<std::vector<T>> work(partitions.size());
  std::vector<SortStats> per_rank(partitions.size());
  const bool use_ckpt = rcfg.mode != RecoveryMode::RestartFull;
  const bool shrink = rcfg.mode == RecoveryMode::ShrinkSurvivors;

  // Restore the team's failure semantics on every exit path.
  struct RecoverableGuard {
    runtime::Team& t;
    bool prev;
    ~RecoverableGuard() { t.set_recoverable(prev); }
  } guard{team, team.config().recoverable};
  team.set_recoverable(shrink);

  auto collect_run_metrics = [&] {
    for (int r = 0; r < P; ++r) {
      const obs::Metrics& m = team.metrics(r);
      rep.supersteps_executed += m.value(obs::Counter::SuperstepsExecuted);
      rep.checkpoint_bytes += m.value(obs::Counter::CheckpointBytes);
      for (double v : m.series(obs::Series::RecoverySeconds))
        rep.recovery_seconds.push_back(v);
    }
    rep.recoveries += team.recovery_rounds();
    rep.failures += team.failures().size();
    rep.sim_seconds_total += team.stats().makespan_s;
  };

  // One attempt body. RestartFull and ResumeCheckpoint run it on the full
  // team; ShrinkSurvivors additionally recovers in-flight inside it.
  auto fn = [&](runtime::Comm& world) {
    const int wr = world.rank();
    runtime::Comm c = world;
    SortConfig ccfg = cfg;
    SortState<T, UK> st;
    bool fresh = true;

    if (use_ckpt && !shrink) {
      // Resume boundary: the deepest superstep every rank can restore
      // (checkpoints are boundary-complete prefixes, so agreement on the
      // minimum suffices). -1 = someone lost everything -> fresh restart.
      const i64 mine = store.latest_step(wr);
      const i64 common = c.allreduce_value<i64>(
          mine, [](i64 a, i64 b) { return std::min(a, b); });
      if (common >= 0) {
        auto blob =
            c.fetch_checkpoint(store, wr, static_cast<u64>(common));
        HDS_CHECK_MSG(blob.has_value(),
                      "resume checkpoint vanished between agreement and "
                      "restore");
        st = detail::deserialize_state<T, UK>(blob->bytes);
        fresh = false;
      }
    }

    for (;;) {
      try {
        if (fresh) {
          st = SortState<T, UK>{};
          st.out_capacity = work[wr].size();
          st.data = std::move(work[wr]);
          st.stats.elements_before = st.data.size();
          if (use_ckpt)
            c.checkpoint_to_buddy(store,
                                  static_cast<u64>(SuperstepId::Start),
                                  detail::serialize_state(st));
          fresh = false;
        }
        while (st.completed != SuperstepId::Done)
          advance_superstep(c, st, key, ccfg,
                            use_ckpt ? &store : nullptr);
        HDS_CHECK_MSG(
            is_globally_sorted(
                c, std::span<const T>(st.data.data(), st.data.size()), key),
            "sort_resilient: output violates the global sort invariant");
        break;
      } catch (const runtime::team_aborted&) {
        if (!shrink) throw;
        if (static_cast<int>(c.team().failures().size()) > rcfg.fault_budget)
          throw;  // budget exhausted: let the run fail
        c = c.recover_survivors();  // throws team_aborted if unrecoverable
        st = detail::shrink_restore<T, UK>(c, store, key);
        // Post-shrink supersteps run on a subteam of arbitrary size:
        // hypercube (power-of-two only) and hierarchical (world-only)
        // exchanges are invalid there, and the restored runs are already
        // sorted or about to be re-sorted.
        ccfg.exchange = ExchangeAlgorithm::Alltoallv;
        ccfg.input_is_sorted = false;
      }
    }
    per_rank[wr] = st.stats;
    work[wr] = std::move(st.data);
  };

  double backoff = rcfg.backoff_s;
  int failures_spent = 0;
  for (;;) {
    ++rep.attempts;
    work = partitions;
    per_rank.assign(partitions.size(), SortStats{});
    if (shrink) store.clear();  // in-flight recovery only; attempts restart
    try {
      team.run(fn);
      collect_run_metrics();
      break;
    } catch (...) {
      collect_run_metrics();
      const int new_failures =
          std::max(1, static_cast<int>(team.failures().size()));
      failures_spent += new_failures;
      if (failures_spent > rcfg.fault_budget) {
        if (report) {
          rep.recomputed_fraction =
              rep.supersteps_minimum == 0
                  ? 0.0
                  : (static_cast<double>(rep.supersteps_executed) -
                     static_cast<double>(rep.supersteps_minimum)) /
                        static_cast<double>(rep.supersteps_minimum);
          *report = rep;
        }
        throw;
      }
      // The failed ranks' memory is gone: drop their primaries (and the
      // replicas they held) so the next attempt restores from buddies.
      for (rank_t f : team.failures()) store.mark_lost(f);
      if (backoff > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
        backoff *= rcfg.backoff_multiplier;
      }
    }
  }

  rep.final_ranks.clear();
  const std::vector<rank_t> failed = team.failures();
  for (rank_t r = 0; r < static_cast<rank_t>(P); ++r)
    if (std::find(failed.begin(), failed.end(), r) == failed.end())
      rep.final_ranks.push_back(r);
  rep.recomputed_fraction =
      rep.supersteps_minimum == 0
          ? 0.0
          : std::max(0.0, (static_cast<double>(rep.supersteps_executed) -
                           static_cast<double>(rep.supersteps_minimum)) /
                              static_cast<double>(rep.supersteps_minimum));

  partitions = std::move(work);
  SortStats agg;
  for (const SortStats& s : per_rank) {
    agg.histogram_iterations =
        std::max(agg.histogram_iterations, s.histogram_iterations);
    agg.splitter_probes = std::max(agg.splitter_probes, s.splitter_probes);
    agg.elements_sent_off_rank += s.elements_sent_off_rank;
    agg.elements_before += s.elements_before;
    agg.elements_after += s.elements_after;
    if (agg.histogram_convergence.empty())
      agg.histogram_convergence = s.histogram_convergence;
    agg.sampled_rounds = std::max(agg.sampled_rounds, s.sampled_rounds);
    agg.sample_keys_total =
        std::max(agg.sample_keys_total, s.sample_keys_total);
    agg.hist_bytes_sampled =
        std::max(agg.hist_bytes_sampled, s.hist_bytes_sampled);
    agg.hist_bytes_dense = std::max(agg.hist_bytes_dense, s.hist_bytes_dense);
    if (agg.round_probes.empty()) agg.round_probes = s.round_probes;
  }
  if (report) *report = rep;
  return agg;
}

/// Key-less convenience overload of the recovery-mode sort_resilient.
template <class T>
SortStats sort_resilient(runtime::Team& team,
                         std::vector<std::vector<T>>& partitions,
                         const SortConfig& cfg, const ResilienceConfig& rcfg,
                         ResilienceReport* report = nullptr) {
  return sort_resilient(team, partitions, IdentityKey{}, cfg, rcfg, report);
}

}  // namespace hds::core
