// Data exchange (Sec. V-B, Alg. 4): turn resolved splitters into a global
// permutation matrix, refine tie boundaries so every output partition meets
// its exact capacity, and perform the ALL-TO-ALLV.
//
// Communication structure mirrors the paper: two O(P)-per-rank ALL-TO-ALL
// collectives to distribute histogram bounds and refined send counts
// (processor j is responsible for "row j" — boundary j — of the matrix),
// followed by the single ALL-TO-ALLV moving the keys. Data is moved exactly
// once, the design property the paper leans on for NUMA friendliness.
#pragma once

#include <memory>
#include <numeric>
#include <span>
#include <vector>

#include "common/bits.h"
#include "common/error.h"
#include "core/merge_inplace.h"
#include "core/multiselect.h"
#include "runtime/comm.h"

namespace hds::core {

/// How payload bytes move through the runtime (DESIGN.md sec. 11). Pull is
/// the single-copy default: receivers copy blocks straight from the
/// senders' published spans (alltoallv_into) and P2P rounds lend the send
/// buffer instead of staging it in Message::data. Packed is the legacy
/// reference path (executor packs the epoch arena, receivers copy out).
/// Both paths produce byte-identical results and bit-identical simulated
/// time — the cost model charges volume, not copy count.
enum class DataPath : u8 { Pull, Packed };

constexpr std::string_view data_path_name(DataPath p) {
  switch (p) {
    case DataPath::Pull: return "pull";
    case DataPath::Packed: return "packed";
  }
  return "?";
}

template <class T>
struct ExchangeResult {
  std::vector<T> data;             ///< received elements, grouped by source
  std::vector<usize> recv_counts;  ///< chunk length per source rank
  usize elements_sent_off_rank = 0;
  usize elements_kept = 0;
};

/// Compute this rank's refined cumulative cut for every boundary: exactly
/// cuts[b] local elements end up left of boundary b, with Sum_r cuts[b][r]
/// == sp.boundary[b]. Boundary b is "owned" by rank b (the paper's "i-th
/// processor is responsible for the i-th row" of the permutation matrix);
/// this requires sp.boundary.size() <= comm.size(), which holds for both the
/// sort (P-1 boundaries) and k-way bucketing (k-1 <= P-1).
template <class UK>
std::vector<usize> compute_boundary_cuts(runtime::Comm& comm, usize n_local,
                                         const SplitterResult<UK>& sp) {
  const int P = comm.size();
  const usize B = sp.boundary.size();
  HDS_CHECK(B <= static_cast<usize>(P));

  struct Bounds {
    u64 lb, ub;
  };
  // ALL-TO-ALL #1: send (lb_b, ub_b) of boundary b to its owner rank b.
  std::vector<Bounds> to_owner(P, Bounds{0, 0});
  for (usize b = 0; b < B; ++b)
    to_owner[b] = Bounds{sp.local_lb[b], sp.local_ub[b]};
  std::vector<Bounds> from_ranks(P);
  comm.alltoall(to_owner.data(), 1, from_ranks.data());

  // Owner b: greedily assign the deficit D = B_b - L_b over the tie counts
  // in rank order (the refinement loop of Alg. 4).
  std::vector<u64> cuts(P, 0);  // c_{b,r} computed by owner b = this rank
  const usize b_mine = static_cast<usize>(comm.rank());
  if (b_mine < B) {
    usize deficit = sp.boundary[b_mine] - sp.global_lb[b_mine];
    for (int r = 0; r < P; ++r) {
      const usize tie = from_ranks[r].ub - from_ranks[r].lb;
      const usize take = std::min(tie, deficit);
      cuts[r] = from_ranks[r].lb + take;
      deficit -= take;
    }
    HDS_CHECK_MSG(deficit == 0, "tie refinement could not place "
                                    << deficit << " elements");
    comm.charge_control_scan(P);
  }

  // ALL-TO-ALL #2: owner b returns c_{b,r} to rank r.
  std::vector<u64> my_cuts(P);
  comm.alltoall(cuts.data(), 1, my_cuts.data());

  std::vector<usize> out(B);
  u64 prev = 0;
  for (usize b = 0; b < B; ++b) {
    HDS_CHECK_MSG(my_cuts[b] >= prev && my_cuts[b] <= n_local,
                  "non-monotone cut at boundary " << b);
    prev = my_cuts[b];
    out[b] = my_cuts[b];
  }
  return out;
}

/// Per-destination send counts for the sort's exchange: destination d
/// receives the local slice [cut_{d-1}, cut_d).
template <class UK>
std::vector<usize> compute_send_counts(runtime::Comm& comm, usize n_local,
                                       const SplitterResult<UK>& sp) {
  const int P = comm.size();
  HDS_CHECK(sp.boundary.size() == static_cast<usize>(P - 1));
  const std::vector<usize> cuts = compute_boundary_cuts(comm, n_local, sp);
  std::vector<usize> send(P, 0);
  usize prev = 0;
  for (int d = 0; d < P; ++d) {
    const usize cut = (d < P - 1) ? cuts[d] : n_local;
    send[d] = cut - prev;
    prev = cut;
  }
  return send;
}

/// Emit this rank's exchange volume into the metrics registry: payload
/// bytes to same-node peers, bytes to off-node peers, and the elements
/// whose destination is the local rank. `elem_bytes` is sizeof(T) of the
/// exchanged records. Called by every exchange variant so the on/off-node
/// split is comparable across them.
inline void note_exchange_metrics(runtime::Comm& comm,
                                  std::span<const usize> send,
                                  usize elem_bytes) {
  auto& m = comm.metrics();
  const auto& machine = comm.machine();
  const rank_t me = comm.world_rank();
  u64 on_node = 0, off_node = 0;
  for (int d = 0; d < comm.size(); ++d) {
    if (d == comm.rank()) continue;
    const u64 b = static_cast<u64>(send[static_cast<usize>(d)]) * elem_bytes;
    if (machine.same_node(me, comm.world_rank_of(d)))
      on_node += b;
    else
      off_node += b;
  }
  m.add(obs::Counter::ExchangeBytesOnNode, on_node);
  m.add(obs::Counter::ExchangeBytesOffNode, off_node);
  m.add(obs::Counter::ExchangeElementsKept,
        send[static_cast<usize>(comm.rank())]);
}

/// Full data exchange: computes send counts and runs the ALL-TO-ALLV.
/// `sorted_local` must be the locally sorted input used by find_splitters.
/// With DataPath::Pull the output is sized once from the published counts
/// and every chunk lands at its final offset in one copy (alltoallv_into);
/// DataPath::Packed is the legacy arena-staged collective. Results and
/// simulated time are identical either way.
template <class T, class UK>
ExchangeResult<T> exchange(runtime::Comm& comm,
                           std::span<const T> sorted_local,
                           const SplitterResult<UK>& sp,
                           DataPath path = DataPath::Pull) {
  net::PhaseScope phase(comm.clock(), net::Phase::Exchange);
  ExchangeResult<T> out;
  const std::vector<usize> send =
      compute_send_counts(comm, sorted_local.size(), sp);
  out.elements_kept = send[comm.rank()];
  for (int d = 0; d < comm.size(); ++d)
    if (d != comm.rank()) out.elements_sent_off_rank += send[d];
  note_exchange_metrics(comm, send, sizeof(T));
  if (path == DataPath::Pull)
    comm.alltoallv_into(sorted_local, std::span<const usize>(send), out.data,
                        out.recv_counts);
  else
    out.data = comm.alltoallv(sorted_local, send, &out.recv_counts);
  return out;
}

/// Store-and-forward hypercube exchange (Sec. VI-E1: "For a relatively
/// small N/P we utilize store-and-forward algorithms which communicate data
/// in intermediate steps in ceil(log p) rounds"). Each round j swaps, with
/// the partner across hypercube dimension j, every bucket whose destination
/// differs in bit j; data is forwarded (and re-transmitted) up to log2(P)
/// times, trading bandwidth for only log2(P) message latencies — the right
/// trade when partitions are small. Requires a power-of-two rank count.
///
/// Sorted-run boundaries are carried alongside the payload so the final
/// merge still sees sorted chunks.
template <class T, class UK>
ExchangeResult<T> exchange_hypercube(runtime::Comm& comm,
                                     std::span<const T> sorted_local,
                                     const SplitterResult<UK>& sp,
                                     DataPath path = DataPath::Pull) {
  net::PhaseScope phase(comm.clock(), net::Phase::Exchange);
  const int P = comm.size();
  if (!is_pow2(static_cast<u64>(P)))
    throw argument_error(
        "exchange_hypercube: rank count must be a power of two");

  ExchangeResult<T> out;
  const std::vector<usize> send =
      compute_send_counts(comm, sorted_local.size(), sp);
  std::vector<usize> offsets(P + 1, 0);
  for (int d = 0; d < P; ++d) offsets[d + 1] = offsets[d] + send[d];
  out.elements_kept = send[comm.rank()];
  for (int d = 0; d < P; ++d)
    if (d != comm.rank()) out.elements_sent_off_rank += send[d];
  note_exchange_metrics(comm, send, sizeof(T));

  // Buckets in flight: per destination, a list of sorted runs.
  std::vector<std::vector<T>> bucket(P);
  std::vector<std::vector<u64>> runs(P);
  for (int d = 0; d < P; ++d) {
    if (send[d] == 0) continue;
    bucket[d].assign(sorted_local.begin() + offsets[d],
                     sorted_local.begin() + offsets[d + 1]);
    runs[d].push_back(send[d]);
  }

  const int dims = static_cast<int>(log2_ceil(static_cast<u64>(P)));
  const u64 tag_base = 0xcafe00ULL << 8;
  std::vector<T> rpayload;  // pooled across rounds (pull path resizes it)
  for (int j = 0; j < dims; ++j) {
    const int partner = comm.rank() ^ (1 << j);
    // Serialize every bucket whose destination's bit j differs from ours:
    // header = [ndests, then per dest: dest, nruns, runlen...], payload =
    // the concatenated elements in the same order.
    std::vector<u64> header{0};
    std::vector<T> payload;
    for (int d = 0; d < P; ++d) {
      if (((d >> j) & 1) == ((comm.rank() >> j) & 1)) continue;
      if (bucket[d].empty()) continue;
      ++header[0];
      header.push_back(static_cast<u64>(d));
      header.push_back(runs[d].size());
      header.insert(header.end(), runs[d].begin(), runs[d].end());
      payload.insert(payload.end(), bucket[d].begin(), bucket[d].end());
      bucket[d].clear();
      bucket[d].shrink_to_fit();
      runs[d].clear();
    }
    comm.send(partner, tag_base + 2 * j, std::span<const u64>(header),
              net::Traffic::Control);
    runtime::BorrowToken loan;
    if (path == DataPath::Pull) {
      // Lend the payload: the partner copies it straight out of `payload`
      // into its recv destination (one copy on the wire instead of three).
      loan = comm.send_borrowed(partner, tag_base + 2 * j + 1,
                                std::span<const T>(payload));
    } else {
      comm.send(partner, tag_base + 2 * j + 1, std::span<const T>(payload),
                net::Traffic::Data);
    }
    const std::vector<u64> rheader = comm.recv<u64>(partner, tag_base + 2 * j);
    if (path == DataPath::Pull) {
      // The header carries every run length, so the payload size is known
      // before the payload is received — receive it into pooled scratch.
      usize incoming = 0;
      {
        usize hoff = 1;
        for (u64 e = 0; e < rheader[0]; ++e) {
          hoff++;  // dest
          const u64 nruns = rheader[hoff++];
          for (u64 k = 0; k < nruns; ++k) incoming += rheader[hoff++];
        }
      }
      rpayload.resize(incoming);
      const usize got = comm.recv_into(partner, tag_base + 2 * j + 1,
                                       std::span<T>(rpayload));
      HDS_CHECK(got == incoming);
    } else {
      rpayload = comm.recv<T>(partner, tag_base + 2 * j + 1);
    }
    usize hoff = 1, poff = 0;
    for (u64 e = 0; e < rheader[0]; ++e) {
      const int d = static_cast<int>(rheader[hoff++]);
      const u64 nruns = rheader[hoff++];
      for (u64 k = 0; k < nruns; ++k) {
        const u64 len = rheader[hoff++];
        runs[d].push_back(len);
        bucket[d].insert(bucket[d].end(), rpayload.begin() + poff,
                         rpayload.begin() + poff + len);
        poff += len;
      }
    }
    HDS_CHECK(poff == rpayload.size());
    // Reclaim the loan only after our own receives: waiting before them
    // would deadlock the pairwise round (the partner is symmetric).
    loan.wait();
  }

  out.data = std::move(bucket[comm.rank()]);
  out.recv_counts.assign(runs[comm.rank()].begin(),
                         runs[comm.rank()].end());
  if (out.recv_counts.empty() && !out.data.empty())
    out.recv_counts.push_back(out.data.size());
  usize total = 0;
  for (usize c : out.recv_counts) total += c;
  HDS_CHECK(total == out.data.size());
  return out;
}

/// Hierarchical node-leader exchange (Sec. VI-E1: "A set of dedicated
/// leader cores on a single node is responsible for communication while the
/// others perform the merging"). Intra-node slices are delivered directly
/// (PGAS memcpy semantics); off-node slices are funneled through one leader
/// per node, exchanged leader-to-leader, and fanned out on the destination
/// node — minimizing the number of processes that touch the NIC.
///
/// Requires `comm` to span whole nodes of the machine model (true for the
/// world communicator, the only place superstep 3 runs).
template <class T, class UK>
ExchangeResult<T> exchange_hierarchical(runtime::Comm& comm,
                                        std::span<const T> sorted_local,
                                        const SplitterResult<UK>& sp,
                                        DataPath path = DataPath::Pull) {
  net::PhaseScope phase(comm.clock(), net::Phase::Exchange);
  const int P = comm.size();
  const auto& machine = comm.machine();

  ExchangeResult<T> out;
  const std::vector<usize> send =
      compute_send_counts(comm, sorted_local.size(), sp);
  std::vector<usize> offsets(P + 1, 0);
  for (int d = 0; d < P; ++d) offsets[d + 1] = offsets[d] + send[d];
  out.elements_kept = send[comm.rank()];
  for (int d = 0; d < P; ++d)
    if (d != comm.rank()) out.elements_sent_off_rank += send[d];
  note_exchange_metrics(comm, send, sizeof(T));

  const int my_node = machine.node_of(comm.world_rank());
  runtime::Comm node = comm.split(my_node, comm.rank());
  const bool leader = node.rank() == 0;
  runtime::Comm leaders = comm.split(leader ? 0 : 1, my_node);

  constexpr u64 kIntraTag = 0x71e4ULL << 32;
  constexpr u64 kFanLenTag = 0x71e5ULL << 32;
  constexpr u64 kFanDataTag = 0x71e6ULL << 32;

  // 1) Direct intra-node deliveries (every same-node pair, even if empty,
  // so the receive count is deterministic). On the pull path the slices
  // are lent straight out of sorted_local — no staging through
  // Message::data — and the loans are reclaimed after our own receives in
  // step 5 (sorted_local outlives the whole exchange).
  std::vector<runtime::BorrowToken> intra_loans;
  for (int d = 0; d < P; ++d) {
    if (d == comm.rank()) continue;
    if (machine.node_of(comm.world_rank_of(d)) != my_node) continue;
    const std::span<const T> slice(sorted_local.data() + offsets[d], send[d]);
    if (path == DataPath::Pull)
      intra_loans.push_back(
          comm.send_borrowed(d, kIntraTag + comm.rank(), slice));
    else
      comm.send(d, kIntraTag + comm.rank(), slice);
  }

  // 2) Funnel off-node slices to the node leader: payload in ascending
  // destination order plus the full per-destination count vector.
  std::vector<T> to_leader;
  std::vector<u64> my_counts(P, 0);
  for (int d = 0; d < P; ++d) {
    if (machine.node_of(comm.world_rank_of(d)) == my_node) continue;
    my_counts[d] = send[d];
    to_leader.insert(to_leader.end(), sorted_local.begin() + offsets[d],
                     sorted_local.begin() + offsets[d + 1]);
  }
  std::vector<T> pooled = node.gatherv(std::span<const T>(to_leader), 0);
  std::vector<u64> pooled_counts =
      node.gatherv(std::span<const u64>(my_counts), 0);

  // 3) Leaders exchange node-to-node bundles. Every leader knows the node
  // id of every other leader (split key = node id, so member order == node
  // order); bundle for node nd = runs for each dest rank on nd, from each
  // member of this node, serialized as [ndests, (dest, nruns, lens...)...].
  if (leader) {
    const int NL = leaders.size();
    const int members = node.size();
    std::vector<u64> node_ids(NL);
    const u64 mine_id = my_node;
    leaders.allgather(&mine_id, 1, node_ids.data());

    // Per-member cursor into its pooled payload (ascending dest order).
    std::vector<usize> member_off(members + 1, 0);
    {
      usize acc = 0;
      for (int m = 0; m < members; ++m) {
        member_off[m] = acc;
        for (int d = 0; d < P; ++d)
          acc += pooled_counts[usize(m) * P + d];
      }
      member_off[members] = acc;
      HDS_CHECK(acc == pooled.size());
    }
    std::vector<usize> cursor(member_off.begin(),
                              member_off.begin() + members);

    std::vector<u64> header;
    std::vector<usize> header_counts(NL, 0);
    std::vector<T> payload;
    std::vector<usize> payload_counts(NL, 0);
    for (int li = 0; li < NL; ++li) {
      const usize h0 = header.size();
      const usize p0 = payload.size();
      if (node_ids[li] != static_cast<u64>(my_node)) {
        for (int d = 0; d < P; ++d) {
          if (machine.node_of(comm.world_rank_of(d)) !=
              static_cast<int>(node_ids[li]))
            continue;
          header.push_back(static_cast<u64>(d));
          header.push_back(members);
          for (int m = 0; m < members; ++m) {
            const u64 len = pooled_counts[usize(m) * P + d];
            header.push_back(len);
            payload.insert(payload.end(), pooled.begin() + cursor[m],
                           pooled.begin() + cursor[m] + len);
            cursor[m] += len;
          }
        }
      }
      header_counts[li] = header.size() - h0;
      payload_counts[li] = payload.size() - p0;
    }
    std::vector<usize> rheader_counts, rpayload_counts;
    std::vector<u64> rheader;
    std::vector<T> rpayload;
    if (path == DataPath::Pull) {
      // Leader-to-leader bundles pulled straight from the peers' publish
      // spans into the local vectors (sized once, filled in place).
      leaders.alltoallv_into(std::span<const u64>(header),
                             std::span<const usize>(header_counts), rheader,
                             rheader_counts, net::Traffic::Control);
      leaders.alltoallv_into(std::span<const T>(payload),
                             std::span<const usize>(payload_counts), rpayload,
                             rpayload_counts);
    } else {
      rheader = leaders.alltoallv(std::span<const u64>(header), header_counts,
                                  &rheader_counts, net::Traffic::Control);
      rpayload = leaders.alltoallv(std::span<const T>(payload), payload_counts,
                                   &rpayload_counts);
    }

    // 4) Fan received runs out to their destination ranks on this node.
    usize hoff = 0, poff = 0;
    for (int src_li = 0; src_li < NL; ++src_li) {
      const usize hend = hoff + rheader_counts[src_li];
      // Collect this source node's runs per destination, then forward.
      std::vector<std::vector<u64>> lens_by_dest;
      std::vector<std::vector<T>> data_by_dest;
      std::vector<int> dests;
      while (hoff < hend) {
        const int d = static_cast<int>(rheader[hoff++]);
        const u64 nruns = rheader[hoff++];
        std::vector<u64> lens;
        std::vector<T> data;
        for (u64 k = 0; k < nruns; ++k) {
          const u64 len = rheader[hoff++];
          lens.push_back(len);
          data.insert(data.end(), rpayload.begin() + poff,
                      rpayload.begin() + poff + len);
          poff += len;
        }
        dests.push_back(d);
        lens_by_dest.push_back(std::move(lens));
        data_by_dest.push_back(std::move(data));
      }
      // Forward (possibly empty) bundles to every rank on this node so the
      // receive count per rank is deterministic: one bundle per src node.
      if (node_ids[src_li] == static_cast<u64>(my_node)) continue;
      for (int nr = 0; nr < node.size(); ++nr) {
        const int d = /* comm rank of node member nr */
            [&] {
              // node comm members are ordered by comm rank (split key).
              return node.world_rank_of(nr);  // world == comm rank at world
            }();
        std::vector<u64> lens;
        std::vector<T> data;
        for (usize i = 0; i < dests.size(); ++i) {
          if (dests[i] == d) {
            lens = std::move(lens_by_dest[i]);
            data = std::move(data_by_dest[i]);
            break;
          }
        }
        node.send(nr, kFanLenTag + node_ids[src_li],
                  std::span<const u64>(lens), net::Traffic::Control);
        node.send(nr, kFanDataTag + node_ids[src_li],
                  std::span<const T>(data));
      }
    }
    HDS_CHECK(poff == rpayload.size());
  }

  // 5) Receive: own slice + intra-node direct slices + leader bundles. On
  // the pull path every incoming payload is appended straight into
  // out.data (recv_append copies once, from the sender's lent buffer or
  // the mailbox, to its final offset).
  out.data.assign(sorted_local.begin() + offsets[comm.rank()],
                  sorted_local.begin() + offsets[comm.rank() + 1]);
  out.recv_counts.assign(1, out.data.size());
  for (int s = 0; s < P; ++s) {
    if (s == comm.rank()) continue;
    if (machine.node_of(comm.world_rank_of(s)) != my_node) continue;
    if (path == DataPath::Pull) {
      out.recv_counts.push_back(comm.recv_append(s, kIntraTag + s, out.data));
    } else {
      const std::vector<T> slice = comm.recv<T>(s, kIntraTag + s);
      out.recv_counts.push_back(slice.size());
      out.data.insert(out.data.end(), slice.begin(), slice.end());
    }
  }
  // Our own intra-node loans are all consumed once every same-node peer
  // has run the receive loop above; reclaim them before touching
  // sorted_local's buffer again. (Waiting earlier — before our own
  // receives — could deadlock the pairwise pattern.)
  for (auto& loan : intra_loans) loan.wait();
  {
    // One bundle per remote node, from my leader. Node ids are dense in
    // [0, machine.nodes), so a seen-flag array discovers them in O(P)
    // instead of an O(P^2) find-scan.
    std::vector<int> remote_nodes;
    std::vector<u8> seen(static_cast<usize>(machine.nodes), 0);
    for (int r = 0; r < P; ++r) {
      const int nd = machine.node_of(comm.world_rank_of(r));
      if (nd == my_node || seen[static_cast<usize>(nd)]) continue;
      seen[static_cast<usize>(nd)] = 1;
      remote_nodes.push_back(nd);
    }
    for (int nd : remote_nodes) {
      const std::vector<u64> lens = node.recv<u64>(0, kFanLenTag + nd);
      if (path == DataPath::Pull) {
        // The bundle is the concatenation of its runs, so appending it
        // whole preserves the per-run chunk layout recv_counts describes.
        usize expect = 0;
        for (u64 len : lens) {
          out.recv_counts.push_back(len);
          expect += len;
        }
        const usize got = node.recv_append(0, kFanDataTag + nd, out.data);
        HDS_CHECK(got == expect);
      } else {
        const std::vector<T> data = node.recv<T>(0, kFanDataTag + nd);
        usize off = 0;
        for (u64 len : lens) {
          out.recv_counts.push_back(len);
          out.data.insert(out.data.end(), data.begin() + off,
                          data.begin() + off + len);
          off += len;
        }
        HDS_CHECK(off == data.size());
      }
    }
  }
  // Drop leading zero-length chunk bookkeeping noise.
  std::erase(out.recv_counts, usize{0});
  if (out.recv_counts.empty() && !out.data.empty())
    out.recv_counts.push_back(out.data.size());
  usize total = 0;
  for (usize c : out.recv_counts) total += c;
  HDS_CHECK(total == out.data.size());
  return out;
}

/// Per-round group sizes of the k-ary swap schedule for P ranks: a greedy
/// factorization of P into the largest factors <= k, so the schedule runs
/// ceil(log_k P) rounds whenever P is k-smooth. When the remaining cofactor
/// has no divisor in [2, k] (e.g. prime P > k) its smallest prime factor is
/// used instead — one wider round rather than a failure, so the schedule
/// exists for every P. k == 2 at a power of two reproduces the hypercube
/// dimensions; k >= P collapses to a single direct-exchange round.
inline std::vector<int> kary_round_factors(int P, int k) {
  HDS_CHECK(P >= 1);
  if (k < 2) k = 2;
  std::vector<int> factors;
  int rem = P;
  while (rem > 1) {
    int f = std::min(rem, k);
    while (f > 1 && rem % f != 0) --f;
    if (f <= 1) {
      f = rem;  // prime cofactor > k
      for (int d = 2; d * d <= rem; ++d)
        if (rem % d == 0) {
          f = d;
          break;
        }
    }
    factors.push_back(f);
    rem /= f;
  }
  return factors;
}

/// Per-round simulated-time attribution of one rank's k-ary exchange
/// (bench_exchange's round breakdown): communication seconds vs the
/// overlapped tail-merge seconds charged during that round.
struct KAryRoundTrace {
  double comm_s = 0.0;   ///< sends + receives of this round
  double merge_s = 0.0;  ///< overlapped tail merge of the previous round
};

/// Tunable k-ary swap schedule with merge/communication overlap (PR 7,
/// generalizing exchange_hypercube's k = 2 and the direct exchange's
/// k = P; cf. diy's SortPartners). View every rank id in the mixed radix
/// given by kary_round_factors(P, k): in round r, ranks sharing all digits
/// except digit r form a group of f_r members, and each rank swaps with its
/// f_r - 1 group partners every bucket whose destination differs in digit
/// r — buckets reach their destination digit by digit, store-and-forward,
/// in ceil(log_k P) rounds for k-smooth P (any P is supported through the
/// factorization fallback).
///
/// With `overlap_merge`, runs that arrive at their final destination in
/// round r-1 are tail-merged in place into the accumulated output *while
/// round r's borrowed-payload copies are in flight*: the merge is charged
/// through CostModel::overlapped_merge against the round's p2p window, so
/// simulated time models the overlap explicitly, and the k-way tournament
/// tail merge (merge_tail_inplace_kway) never allocates a full-size
/// staging buffer. The last batch of arrivals has no later round to hide
/// in and is charged in full. Without `overlap_merge` the chunks are
/// concatenated and recv_counts returned for superstep 4, exactly like
/// exchange_hypercube.
template <class T, class UK, class KeyFn>
ExchangeResult<T> exchange_kary(
    runtime::Comm& comm, std::span<const T> sorted_local,
    const SplitterResult<UK>& sp, KeyFn key, int k, bool overlap_merge,
    DataPath path = DataPath::Pull,
    std::vector<KAryRoundTrace>* round_trace = nullptr) {
  net::PhaseScope phase(comm.clock(), net::Phase::Exchange);
  const int P = comm.size();
  const int me = comm.rank();
  const std::vector<int> factors = kary_round_factors(P, k);
  const usize nrounds = factors.size();
  if (round_trace) round_trace->assign(nrounds, {});

  ExchangeResult<T> out;
  const std::vector<usize> send =
      compute_send_counts(comm, sorted_local.size(), sp);
  std::vector<usize> offsets(P + 1, 0);
  for (int d = 0; d < P; ++d) offsets[d + 1] = offsets[d] + send[d];
  out.elements_kept = send[me];
  for (int d = 0; d < P; ++d)
    if (d != me) out.elements_sent_off_rank += send[d];
  note_exchange_metrics(comm, send, sizeof(T));

  auto less = [&](const T& a, const T& b) { return key(a) < key(b); };

  // Runs in flight, keyed by final destination. A run is a *view*: into the
  // caller's sorted_local (initial slices, valid for the whole call) or
  // into an earlier round's arrival buffer (kept alive in `arrivals` until
  // the exchange returns). Store-and-forward therefore costs exactly one
  // copy per forwarding hop — at serialization — plus the single receive
  // copy, and a package holding a single run is lent straight from its
  // source buffer without any serialization copy at all (for k >= P the
  // whole exchange degenerates to lending sorted_local slices).
  std::vector<std::vector<std::span<const T>>> bucket(P);
  for (int d = 0; d < P; ++d)
    if (send[d] != 0 && (d != me || !overlap_merge))
      bucket[d].push_back(sorted_local.subspan(offsets[d], send[d]));
  std::vector<T> acc;
  std::vector<std::span<const T>> pending;  // final-destination arrivals
  std::vector<std::unique_ptr<T[]>> arrivals;  // keep-alive arrival buffers
  std::vector<std::vector<T>> arrivals_packed;
  // The rank's own kept slice stays in sorted_local until the first drain
  // merges it (as the base run of kway_merge_into) — no upfront copy.
  const std::span<const T> kept = sorted_local.subspan(offsets[me], send[me]);
  bool kept_in_acc = !overlap_merge;

  // Merge the pending runs with acc (first drain: with the kept slice,
  // directly out of sorted_local); charged by `charge`.
  auto drain_pending = [&](auto&& charge) {
    const usize n1 = kept_in_acc ? acc.size() : kept.size();
    usize add = 0;
    for (const auto& run : pending) add += run.size();
    acc.resize(n1 + add);
    if (kept_in_acc) {
      merge_tail_inplace_kway(std::span<T>(acc), n1,
                              std::span<const std::span<const T>>(pending),
                              less);
    } else {
      kway_merge_into(std::span<T>(acc), kept,
                      std::span<const std::span<const T>>(pending), less);
      kept_in_acc = true;
    }
    charge(acc.size(), pending.size() + (n1 > 0 ? 1 : 0));
    pending.clear();
  };

  const u64 tag_base = 0x4a59ULL << 24;
  int stride = 1;
  for (usize r = 0; r < nrounds; ++r) {
    const int f = factors[r];
    const int digit = (me / stride) % f;
    const int base = me - digit * stride;
    const double round_t0 = comm.clock().now();

    // Serialize one package per group partner: every bucket whose
    // destination's round-r digit matches that partner's digit. Header =
    // [ndests, (dest, nruns, runlen...)...], payload the runs concatenated
    // in header order (the hypercube wire format).
    std::vector<std::vector<u64>> header(f);
    std::vector<std::vector<std::span<const T>>> outruns(f);
    std::vector<std::vector<T>> payload(f);  // only built for >1 run
    for (int c = 0; c < f; ++c) header[c].assign(1, 0);
    for (int d = 0; d < P; ++d) {
      const int dd = (d / stride) % f;
      if (dd == digit || bucket[d].empty()) continue;
      auto& h = header[dd];
      ++h[0];
      h.push_back(static_cast<u64>(d));
      h.push_back(bucket[d].size());
      for (const auto& run : bucket[d]) {
        h.push_back(run.size());
        outruns[dd].push_back(run);
      }
      bucket[d].clear();
    }

    // Post every send of the round before any receive, so the
    // borrowed-payload copies are in flight while the previous round's
    // tail merge below runs. `window_s` is the p2p time of this round's
    // outgoing copies — the communication window the merge hides under.
    std::vector<runtime::BorrowToken> loans;
    loans.reserve(static_cast<usize>(f) - 1);
    double window_s = 0.0;
    for (int c = 0; c < f; ++c) {
      if (c == digit) continue;
      const int partner = base + c * stride;
      comm.send(partner, tag_base + 2 * r, std::span<const u64>(header[c]),
                net::Traffic::Control);
      std::span<const T> pkg;
      if (outruns[c].size() == 1) {
        pkg = outruns[c][0];  // lend the source buffer itself
      } else if (!outruns[c].empty()) {
        auto& pl = payload[c];
        usize need = 0;
        for (const auto& run : outruns[c]) need += run.size();
        pl.reserve(need);
        for (const auto& run : outruns[c])
          pl.insert(pl.end(), run.begin(), run.end());
        pkg = std::span<const T>(pl);
      }
      if (path == DataPath::Pull)
        loans.push_back(
            comm.send_borrowed(partner, tag_base + 2 * r + 1, pkg));
      else
        comm.send(partner, tag_base + 2 * r + 1, pkg, net::Traffic::Data);
      window_s += comm.cost().p2p(comm.world_rank(),
                                  comm.world_rank_of(partner),
                                  pkg.size() * sizeof(T), net::Traffic::Data);
    }

    // Overlap: merge the previous round's final-destination runs while
    // this round's copies are in flight. Only the residue of the merge not
    // hidden by the window lands on the clock (Merge phase, so the obs
    // attribution still reconciles).
    if (overlap_merge && !pending.empty()) {
      net::PhaseScope merge_phase(comm.clock(), net::Phase::Merge);
      const double m0 = comm.clock().now();
      drain_pending([&](usize n, usize nruns) {
        comm.charge_overlapped_merge(n, nruns, window_s);
      });
      if (round_trace) (*round_trace)[r].merge_s = comm.clock().now() - m0;
    }

    // Receive from every group partner and dispatch the runs: final
    // destination runs (d == me) feed the overlap pipeline, the rest are
    // forwarded in a later round. In the last round every digit has been
    // resolved, so every incoming run is for this rank.
    for (int c = 0; c < f; ++c) {
      if (c == digit) continue;
      const int partner = base + c * stride;
      const std::vector<u64> rheader =
          comm.recv<u64>(partner, tag_base + 2 * r);
      usize incoming = 0;
      {
        usize hoff = 1;
        for (u64 e = 0; e < rheader[0]; ++e) {
          hoff++;  // dest
          const u64 nruns = rheader[hoff++];
          for (u64 q = 0; q < nruns; ++q) incoming += rheader[hoff++];
        }
      }
      std::span<const T> buf;
      if (path == DataPath::Pull) {
        // The header carries every run length, so the payload lands in an
        // exactly-sized, deliberately uninitialized buffer in one copy
        // from the partner's lent source (a zero-initializing vector here
        // would cost a full extra pass over the arrival data).
        auto raw = std::make_unique_for_overwrite<T[]>(incoming);
        const usize got = comm.recv_into(partner, tag_base + 2 * r + 1,
                                         std::span<T>(raw.get(), incoming));
        HDS_CHECK(got == incoming);
        buf = std::span<const T>(raw.get(), incoming);
        arrivals.push_back(std::move(raw));
      } else {
        arrivals_packed.push_back(comm.recv<T>(partner, tag_base + 2 * r + 1));
        HDS_CHECK(arrivals_packed.back().size() == incoming);
        buf = std::span<const T>(arrivals_packed.back());
      }
      usize hoff = 1, poff = 0;
      for (u64 e = 0; e < rheader[0]; ++e) {
        const int d = static_cast<int>(rheader[hoff++]);
        const u64 nruns = rheader[hoff++];
        for (u64 q = 0; q < nruns; ++q) {
          const u64 len = rheader[hoff++];
          const std::span<const T> run(buf.data() + poff, len);
          if (overlap_merge && d == me)
            pending.push_back(run);
          else
            bucket[d].push_back(run);
          poff += len;
        }
      }
      HDS_CHECK(poff == buf.size());
    }
    // Reclaim the loans only after our own receives: the group round is
    // symmetric, so waiting before them would deadlock it.
    for (auto& loan : loans) loan.wait();
    if (round_trace)
      (*round_trace)[r].comm_s =
          comm.clock().now() - round_t0 - (*round_trace)[r].merge_s;
    stride *= f;
  }

  if (overlap_merge) {
    // The final arrivals have no later round to overlap with: full charge.
    if (!pending.empty()) {
      net::PhaseScope merge_phase(comm.clock(), net::Phase::Merge);
      drain_pending(
          [&](usize n, usize nruns) { comm.charge_kway_merge(n, nruns); });
    }
    if (!kept_in_acc) acc.assign(kept.begin(), kept.end());
    out.data = std::move(acc);
    if (!out.data.empty()) out.recv_counts.push_back(out.data.size());
  } else {
    usize mine = 0;
    for (const auto& run : bucket[me]) mine += run.size();
    out.data.reserve(mine);
    for (const auto& run : bucket[me]) {
      out.data.insert(out.data.end(), run.begin(), run.end());
      out.recv_counts.push_back(run.size());
    }
  }
  usize total = 0;
  for (usize c : out.recv_counts) total += c;
  HDS_CHECK(total == out.data.size());
  return out;
}

/// 1-factor partner of rank i in round r (circle method): P-1 rounds for
/// even P; for odd P every rank idles exactly once (partner == i).
inline int one_factor_partner(int P, int round, int i) {
  if (P % 2 == 0) {
    const int m = P - 1;
    if (i == m) return round % m;
    const int j = ((2 * round - i) % m + m) % m;
    return j == i ? m : j;
  }
  const int j = ((2 * round - i) % P + P) % P;
  return j;  // j == i means idle this round
}

/// Alternative data exchange (Sec. VI-E1, delivered future work): explicit
/// pairwise sendrecv rounds scheduled by a 1-factorization of K_P, so every
/// round is a perfect matching (minimal congestion for large messages).
/// With `overlap_merge` each received chunk is binary-merged into the
/// accumulated output immediately, overlapping superstep 4 with the
/// remaining communication rounds; otherwise chunks are concatenated and
/// recv_counts returned for a separate merge, exactly like exchange().
template <class T, class UK, class KeyFn>
ExchangeResult<T> exchange_one_factor(runtime::Comm& comm,
                                      std::span<const T> sorted_local,
                                      const SplitterResult<UK>& sp,
                                      KeyFn key, bool overlap_merge,
                                      DataPath path = DataPath::Pull) {
  net::PhaseScope phase(comm.clock(), net::Phase::Exchange);
  const int P = comm.size();
  ExchangeResult<T> out;
  const std::vector<usize> send =
      compute_send_counts(comm, sorted_local.size(), sp);
  std::vector<usize> offsets(P + 1, 0);
  for (int d = 0; d < P; ++d) offsets[d + 1] = offsets[d] + send[d];
  out.elements_kept = send[comm.rank()];
  note_exchange_metrics(comm, send, sizeof(T));

  auto less = [&](const T& a, const T& b) { return key(a) < key(b); };
  std::vector<T> acc(sorted_local.begin() + offsets[comm.rank()],
                     sorted_local.begin() + offsets[comm.rank() + 1]);
  std::vector<usize> counts{acc.size()};

  const int rounds = (P % 2 == 0) ? P - 1 : P;
  const u64 tag_base = 0x1fac70f2ULL << 8;
  std::vector<T> chunk;  // pull-path arrival scratch, pooled across rounds
  for (int r = 0; r < rounds; ++r) {
    const int partner = one_factor_partner(P, r, comm.rank());
    if (partner == comm.rank()) continue;  // odd P: idle round
    out.elements_sent_off_rank += send[partner];
    const std::span<const T> slice(sorted_local.data() + offsets[partner],
                                   send[partner]);
    runtime::BorrowToken loan;
    if (path == DataPath::Pull) {
      // The outgoing slice is lent straight out of sorted_local; the loan
      // is reclaimed after our own receive (symmetric partner — waiting
      // before it would deadlock the round).
      loan = comm.send_borrowed(partner, tag_base + r, slice);
    } else {
      comm.send(partner, tag_base + r, slice);
    }
    if (path == DataPath::Pull) {
      if (overlap_merge) {
        // Merge-on-arrival without the staging copy: receive into pooled
        // scratch, then backward-merge into acc's tail in place. (The
        // chunk cannot live in acc's own tail — a backward merge whose
        // second range aliases the destination overwrites unread input.)
        chunk.clear();
        comm.recv_append(partner, tag_base + r, chunk);
        loan.wait();
        net::PhaseScope merge_phase(comm.clock(), net::Phase::Merge);
        const usize n1 = acc.size();
        acc.resize(n1 + chunk.size());
        merge_tail_inplace(std::span<T>(acc), n1,
                           std::span<const T>(chunk), less);
        comm.charge_merge_pass(acc.size());
        counts[0] = acc.size();
      } else {
        // Chunks land at their final offsets in acc, copied exactly once
        // from the partner's lent buffer.
        counts.push_back(comm.recv_append(partner, tag_base + r, acc));
        loan.wait();
      }
    } else if (overlap_merge) {
      // Merge-on-arrival, same in-place shape as the pull path: receive
      // into the pooled scratch and backward-merge into acc's tail — no
      // full-size `merged` staging vector per round.
      chunk.clear();
      comm.recv_append(partner, tag_base + r, chunk);
      net::PhaseScope merge_phase(comm.clock(), net::Phase::Merge);
      const usize n1 = acc.size();
      acc.resize(n1 + chunk.size());
      merge_tail_inplace(std::span<T>(acc), n1, std::span<const T>(chunk),
                         less);
      comm.charge_merge_pass(acc.size());
      counts[0] = acc.size();
    } else {
      counts.push_back(comm.recv_append(partner, tag_base + r, acc));
    }
  }
  out.data = std::move(acc);
  out.recv_counts = std::move(counts);
  return out;
}

}  // namespace hds::core
