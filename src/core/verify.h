// Output validation for distributed sorts: a collective checker that
// verifies the full contract (global order, content preservation via an
// order-independent checksum, balance) in one pass. Used by tests and
// examples; cheap enough to run after production sorts as a guard.
#pragma once

#include <algorithm>
#include <span>

#include "common/rng.h"
#include "core/histogram_sort.h"
#include "runtime/comm.h"

namespace hds::core {

struct SortValidation {
  bool globally_sorted = false;
  u64 checksum = 0;  ///< order-independent content hash, compare pre/post
  u64 count = 0;     ///< global element count
  double imbalance = 0.0;  ///< max rank share / (N/P); 1.0 = perfect

  /// Did `after` preserve content and order relative to `before`?
  static bool consistent(const SortValidation& before,
                         const SortValidation& after) {
    return after.globally_sorted && before.checksum == after.checksum &&
           before.count == after.count;
  }
};

/// Collective: compute the validation summary of a distributed sequence.
/// The checksum is a commutative hash (sum of mixed key hashes), so any
/// permutation of the same multiset matches while any content change
/// virtually never does.
template <class T, class KeyFn>
SortValidation validate(runtime::Comm& comm, std::span<const T> local,
                        KeyFn key) {
  SortValidation v;
  u64 sum = 0;
  for (const T& e : local) {
    using K = std::decay_t<decltype(key(e))>;
    using Traits = KeyTraits<K>;
    sum += hash_mix(0x5eedf00dULL,
                    static_cast<u64>(Traits::to_uint(key(e))));
  }
  comm.charge_scan(local.size());
  v.checksum =
      comm.allreduce_value<u64>(sum, [](u64 a, u64 b) { return a + b; });
  v.count = comm.allreduce_value<u64>(local.size(),
                                      [](u64 a, u64 b) { return a + b; });
  const u64 max_n = comm.allreduce_value<u64>(
      local.size(), [](u64 a, u64 b) { return std::max(a, b); });
  v.imbalance = v.count == 0
                    ? 1.0
                    : static_cast<double>(max_n) * comm.size() /
                          static_cast<double>(v.count);
  v.globally_sorted = is_globally_sorted(comm, local, key);
  return v;
}

}  // namespace hds::core
