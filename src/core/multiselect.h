// Distributed multiselection by histogramming — Algorithms 2 + 3 of the
// paper, the primary contribution.
//
// Given locally sorted partitions and a vector of global target ranks K
// (Def. 3), determine splitter keys S such that the global histogram bounds
// satisfy L_i < K_i <= U_i (Def. 4, with the paper's epsilon relaxation from
// Def. 1). Each iteration bisects every unresolved splitter's candidate key
// range (one bit of the key), computes local histograms by binary search
// (the partitions are sorted), and reduces them with a single ALLREDUCE.
//
// Properties reproduced from Sec. V-A:
//  * iteration count is bounded by the key width, independent of P;
//  * no assumptions on key distribution, rank count, or partition density
//    (empty partitions are fine);
//  * duplicate keys are handled by resolving ties through counts (the
//    boundary refinement of Alg. 4 / exchange.h), not by widening keys.
#pragma once

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "common/error.h"
#include "core/key_traits.h"
#include "core/local_sort.h"
#include "runtime/comm.h"

namespace hds::core {

/// How the initial splitter candidate ranges are chosen.
enum class SplitterInit : u8 {
  /// Global (min, max) of the key range — one reduction, no assumptions
  /// (the paper's choice).
  MinMax,
  /// Quantiles of a small gathered sample bracket each splitter — fewer
  /// iterations on benign inputs, with a verified-bracket fallback when the
  /// sample misleads (the sample-sort idea, kept as an ablation).
  Sampled,
};

struct MultiselectConfig {
  /// Load-balance threshold epsilon of Def. 1; 0 = perfect partitioning.
  double epsilon = 0.0;
  SplitterInit init = SplitterInit::MinMax;
  /// Samples gathered per rank when init == Sampled.
  usize sample_per_rank = 16;
  /// Safety cap on histogram rounds; 0 = automatic (4 * key bits + 16).
  usize max_iterations = 0;
};

/// Result of find_splitters. All vectors are indexed by boundary
/// b in [0, targets.size()): boundary b separates output partition b from
/// b+1 when used by the sort.
template <class UK>
struct SplitterResult {
  std::vector<UK> splitter;     ///< resolved key (bisection space)
  std::vector<usize> boundary;  ///< resolved global boundary B_b: exactly B_b
                                ///< elements end up left of boundary b
  std::vector<usize> local_lb;  ///< this rank's elements with key < splitter
  std::vector<usize> local_ub;  ///< this rank's elements with key <= splitter
  std::vector<usize> global_lb; ///< sum of local_lb over ranks (L_b)
  std::vector<usize> global_ub; ///< sum of local_ub over ranks (U_b)
  usize iterations = 0;         ///< histogram rounds until convergence
  usize probes_total = 0;       ///< total splitter probes over all rounds
  /// Per-round max over unresolved boundaries of the relative rank error
  /// |achieved - target| / N (0.0 in the round that resolves the last
  /// boundary) — the convergence curve behind the paper's Table 3.
  std::vector<double> convergence;
};

namespace detail {

/// Per-boundary search state in uint key space. Invariant (once verified):
/// f(cand_lo - 1) < K <= f(cand_hi) where f(v) = #keys <= v globally.
template <class UK>
struct BoundarySearch {
  UK cand_lo = 0;
  UK cand_hi = 0;
  usize target = 0;
  bool resolved = false;
  bool lo_verified = true;   ///< f(cand_lo - 1) < K known to hold
  bool hi_verified = true;   ///< f(cand_hi) >= K known to hold
  double sample_q = -1.0;    ///< sample-space quantile (Sampled init only)
  u32 expands = 0;           ///< galloping bracket expansions so far
};

}  // namespace detail

/// Find splitters for arbitrary non-decreasing global target ranks.
///
/// `sorted_local` must be sorted by `key`; `targets` must be identical on
/// all ranks, non-decreasing, and each in [0, N]. Collective over `comm`.
template <class T, class KeyFn>
auto find_splitters(runtime::Comm& comm, std::span<const T> sorted_local,
                    KeyFn key, std::span<const usize> targets,
                    MultiselectConfig cfg = {})
    -> SplitterResult<typename KeyTraits<
        std::decay_t<decltype(key(std::declval<T>()))>>::uint_type> {
  using K = std::decay_t<decltype(key(std::declval<T>()))>;
  using Traits = KeyTraits<K>;
  using UK = typename Traits::uint_type;

  net::PhaseScope phase(comm.clock(), net::Phase::Histogram);
  HDS_ASSERT(is_locally_sorted(sorted_local, key));
  HDS_CHECK(std::is_sorted(targets.begin(), targets.end()));
  HDS_CHECK(cfg.epsilon >= 0.0);

  const usize n_local = sorted_local.size();
  const usize B = targets.size();
  const int P = comm.size();
  const usize N =
      comm.allreduce_value<u64>(n_local, [](u64 a, u64 b) { return a + b; });
  for (usize t : targets) HDS_CHECK_MSG(t <= N, "target rank exceeds N");

  SplitterResult<UK> res;
  res.splitter.assign(B, UK{0});
  res.boundary.assign(B, 0);
  res.local_lb.assign(B, 0);
  res.local_ub.assign(B, 0);
  res.global_lb.assign(B, 0);
  res.global_ub.assign(B, 0);
  if (B == 0) return res;

  // Global key range: one (min, max) reduction in bisection space (line 3).
  UK my_min = std::numeric_limits<UK>::max();
  UK my_max = std::numeric_limits<UK>::min();
  if (n_local > 0) {
    my_min = Traits::to_uint(key(sorted_local.front()));
    my_max = Traits::to_uint(key(sorted_local.back()));
  }
  UK range[2] = {my_min, static_cast<UK>(~my_max)};
  UK grange[2];
  comm.allreduce(range, grange, 2,
                 [](UK a, UK b) { return std::min(a, b); });
  const UK gmin = grange[0];
  const UK gmax = static_cast<UK>(~grange[1]);

  // Epsilon window (Def. 1): each boundary may deviate by N*eps/(2P).
  const usize window = static_cast<usize>(
      cfg.epsilon * static_cast<double>(N) / (2.0 * static_cast<double>(P)));

  std::vector<detail::BoundarySearch<UK>> search(B);
  std::vector<usize> active;  // boundaries still being bisected
  for (usize b = 0; b < B; ++b) {
    auto& s = search[b];
    s.target = targets[b];
    if (s.target == 0) {
      // All elements are right of this boundary; no histogramming needed.
      s.resolved = true;
      res.splitter[b] = gmin;
      res.boundary[b] = 0;
      continue;
    }
    if (s.target == N) {
      s.resolved = true;
      res.splitter[b] = gmax;
      res.boundary[b] = N;
      res.local_lb[b] = res.local_ub[b] = n_local;
      res.global_lb[b] = res.global_ub[b] = N;
      continue;
    }
    if (N == 0) {
      s.resolved = true;
      continue;
    }
    s.cand_lo = gmin;
    s.cand_hi = gmax;
    active.push_back(b);
  }

  // Optional sampled initialization: bracket each boundary between adjacent
  // quantiles of a gathered sample. Brackets are unverified; when one turns
  // out wrong the search gallops outward through the sample (quadrupling
  // the window) instead of restarting from the full key range, so a rare
  // bad bracket costs a handful of rounds, not a full re-bisection.
  std::vector<UK> sample_u;
  double spread = 0.0;
  if (cfg.init == SplitterInit::Sampled && !active.empty() && N > 0) {
    std::vector<K> my_sample;
    const usize s_n = std::min(cfg.sample_per_rank, n_local);
    for (usize i = 0; i < s_n; ++i) {
      const usize idx = (n_local - 1) * (2 * i + 1) / (2 * s_n);
      my_sample.push_back(key(sorted_local[idx]));
    }
    std::vector<K> sample =
        comm.allgatherv(std::span<const K>(my_sample));
    std::sort(sample.begin(), sample.end());
    comm.charge_control_sort(sample.size());
    if (sample.size() >= 2) {
      sample_u.reserve(sample.size());
      for (const K& v : sample) sample_u.push_back(Traits::to_uint(v));
      const double S = static_cast<double>(sample_u.size());
      // Order-statistic rank error of a sample quantile is ~N/(2*sqrt(S)),
      // i.e. ~sqrt(S)/2 sample positions; a ~3.5-sigma spread makes the
      // bracket hold for all boundaries with high probability while still
      // cutting several bisection rounds off the full key range.
      spread = 2.0 + 1.8 * std::sqrt(S);
      for (usize b : active) {
        auto& s = search[b];
        const double q = static_cast<double>(s.target) /
                         static_cast<double>(N) * (S - 1.0);
        s.sample_q = q;
        const auto lo_i = static_cast<usize>(std::max(0.0, q - spread));
        const auto hi_i = std::min(sample_u.size() - 1,
                                   static_cast<usize>(q + spread) + 1);
        // A bracket that runs into the sample's ends is not trustworthy:
        // regular per-rank sampling never probes the extreme local
        // positions, so extreme global quantiles lie outside the pooled
        // sample — fall back to the verified global extreme there.
        if (lo_i == 0) {
          s.cand_lo = gmin;
          s.lo_verified = true;
        } else {
          s.cand_lo = sample_u[lo_i];
          s.lo_verified = (s.cand_lo == gmin);
        }
        if (hi_i >= sample_u.size() - 1) {
          s.cand_hi = gmax;
          s.hi_verified = true;
        } else {
          s.cand_hi = sample_u[hi_i];
          s.hi_verified = (s.cand_hi == gmax);
        }
        if (s.cand_lo > s.cand_hi) std::swap(s.cand_lo, s.cand_hi);
      }
    }
  }

  // Galloping bracket repair for Sampled init: widen the failing side by
  // 4x in sample space; after a few failures give up and use the full
  // verified range.
  auto expand_lo = [&](detail::BoundarySearch<UK>& s, UK probe) {
    if (s.expands < 3 && !sample_u.empty() && s.sample_q >= 0.0) {
      ++s.expands;
      const double w = spread * std::pow(4.0, s.expands);
      const usize i = static_cast<usize>(std::max(0.0, s.sample_q - w));
      UK cand = sample_u[i];
      if (cand >= probe) cand = gmin;
      s.cand_lo = cand;
      s.lo_verified = (cand == gmin);
    } else {
      s.cand_lo = gmin;
      s.lo_verified = true;
    }
  };
  auto expand_hi = [&](detail::BoundarySearch<UK>& s, UK probe) {
    if (s.expands < 3 && !sample_u.empty() && s.sample_q >= 0.0) {
      ++s.expands;
      const double w = spread * std::pow(4.0, s.expands);
      const usize i = std::min(sample_u.size() - 1,
                               static_cast<usize>(s.sample_q + w) + 1);
      UK cand = sample_u[i];
      if (cand <= probe) cand = gmax;
      s.cand_hi = cand;
      s.hi_verified = (cand == gmax);
    } else {
      s.cand_hi = gmax;
      s.hi_verified = true;
    }
  };

  const usize max_iter = cfg.max_iterations
                             ? cfg.max_iterations
                             : 4 * static_cast<usize>(Traits::key_bits) + 16;

  std::vector<UK> probes;
  std::vector<u64> hist;     // interleaved (lb, ub) per active boundary
  std::vector<u64> ghist;
  std::vector<u32> order;    // probe indices in ascending probe order
  std::vector<K> probe_keys;
  std::vector<usize> lb_s, ub_s;

  while (!active.empty()) {
    HDS_CHECK_MSG(res.iterations < max_iter,
                  "find_splitters failed to converge after "
                      << res.iterations << " iterations");
    ++res.iterations;

    // Probe the midpoint of every unresolved boundary and build the local
    // histogram (lines 6-7). Boundary targets are non-decreasing, so the
    // probes of one iteration are already (nearly) sorted: ordering them by
    // value lets a single forward sweep answer every probe over a
    // successively narrowed subrange instead of running two independent
    // full-width binary searches per probe.
    probes.clear();
    for (usize b : active)
      probes.push_back(key_midpoint(search[b].cand_lo, search[b].cand_hi));
    const usize A = active.size();
    order.resize(A);
    for (usize i = 0; i < A; ++i) order[i] = static_cast<u32>(i);
    std::sort(order.begin(), order.end(),
              [&](u32 x, u32 y) { return probes[x] < probes[y]; });
    probe_keys.clear();
    for (u32 i : order) probe_keys.push_back(Traits::from_uint(probes[i]));
    lb_s.resize(A);
    ub_s.resize(A);
    batched_counts(sorted_local, std::span<const K>(probe_keys), key,
                   lb_s.data(), ub_s.data());
    hist.assign(2 * A, 0);
    for (usize j = 0; j < A; ++j) {
      hist[2 * order[j]] = lb_s[j];
      hist[2 * order[j] + 1] = ub_s[j];
    }
    res.probes_total += A;
    comm.charge_control_sort(A);
    comm.charge_batched_search(n_local, 2 * A);

    // Global histogram: one allreduce (line 8).
    ghist.assign(hist.size(), 0);
    comm.allreduce(hist.data(), ghist.data(), hist.size(),
                   [](u64 a, u64 b) { return a + b; });

    // Validate each splitter (Alg. 2, with the epsilon window).
    double round_err = 0.0;
    std::vector<usize> still_active;
    for (usize a = 0; a < active.size(); ++a) {
      const usize b = active[a];
      auto& s = search[b];
      const UK probe = probes[a];
      const usize L = ghist[2 * a];
      const usize U = ghist[2 * a + 1];
      const usize KT = s.target;

      const bool accept = (L < KT + window) && (KT <= U + window);
      if (accept) {
        s.resolved = true;
        res.splitter[b] = probe;
        res.local_lb[b] = hist[2 * a];
        res.local_ub[b] = hist[2 * a + 1];
        res.global_lb[b] = L;
        res.global_ub[b] = U;
        // Number of elements ending up left of the boundary: as close to the
        // target as the ties at the splitter allow (always inside the
        // epsilon window when accepted; exactly KT when epsilon == 0).
        res.boundary[b] = std::clamp(KT, L, U);
        continue;
      }
      // Unresolved boundary: distance of the achievable rank interval
      // [L, U] from the target, relative to N (a global quantity — L, U,
      // KT, N are identical on every rank, so the series is too).
      const usize miss = (L >= KT + window) ? L - KT : KT - U;
      round_err = std::max(
          round_err, static_cast<double>(miss) / static_cast<double>(N));
      if (L >= KT + window) {
        // Too many keys below the probe: move the upper bound down.
        s.cand_hi = probe;
        s.hi_verified = true;
        if (!s.lo_verified && probe <= s.cand_lo) {
          // Sampled bracket was wrong on the low side: gallop outward.
          expand_lo(s, probe);
        }
      } else {
        // Too few keys at or below the probe: move the lower bound up.
        if (probe == s.cand_hi && !s.hi_verified) {
          // Sampled bracket was wrong on the high side: gallop outward.
          expand_hi(s, probe);
        }
        s.cand_lo = (probe == std::numeric_limits<UK>::max())
                        ? probe
                        : static_cast<UK>(probe + 1);
        s.lo_verified = true;
        if (s.cand_lo > s.cand_hi && s.hi_verified) s.cand_hi = gmax;
      }
      still_active.push_back(b);
    }
    res.convergence.push_back(round_err);
    comm.metrics().append(obs::Series::HistogramConvergence, round_err);
    active.swap(still_active);
    comm.charge_control_scan(B);  // splitter validation pass
  }
  comm.metrics().add(obs::Counter::HistogramIterations, res.iterations);
  comm.metrics().add(obs::Counter::SplitterProbes, res.probes_total);

  // Boundaries must be non-decreasing for the exchange to produce
  // contiguous send ranges (ties were resolved toward their targets).
  for (usize b = 1; b < B; ++b)
    res.boundary[b] = std::max(res.boundary[b], res.boundary[b - 1]);

  return res;
}

}  // namespace hds::core
