// Distributed multiselection by histogramming — Algorithms 2 + 3 of the
// paper, the primary contribution.
//
// Given locally sorted partitions and a vector of global target ranks K
// (Def. 3), determine splitter keys S such that the global histogram bounds
// satisfy L_i < K_i <= U_i (Def. 4, with the paper's epsilon relaxation from
// Def. 1). Each iteration bisects every unresolved splitter's candidate key
// range (one bit of the key), computes local histograms by binary search
// (the partitions are sorted), and reduces them with a single ALLREDUCE.
//
// Properties reproduced from Sec. V-A:
//  * iteration count is bounded by the key width, independent of P;
//  * no assumptions on key distribution, rank count, or partition density
//    (empty partitions are fine);
//  * duplicate keys are handled by resolving ties through counts (the
//    boundary refinement of Alg. 4 / exchange.h), not by widening keys.
#pragma once

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "core/key_traits.h"
#include "core/local_sort.h"
#include "runtime/comm.h"

namespace hds::core {

/// How the initial splitter candidate ranges are chosen.
enum class SplitterInit : u8 {
  /// Global (min, max) of the key range — one reduction, no assumptions
  /// (the paper's choice).
  MinMax,
  /// Quantiles of a small gathered sample bracket each splitter — fewer
  /// iterations on benign inputs, with a verified-bracket fallback when the
  /// sample misleads (the sample-sort idea, kept as an ablation).
  Sampled,
};

/// Histogramming strategy of the splitter search (PR 10).
enum class HistogramMode : u8 {
  /// Every round probes candidate keys and counts them exactly with one
  /// dense (lb, ub) allreduce — the paper's Alg. 2/3 baseline.
  Dense,
  /// HSS-style sampled rounds first: each round pools a seeded per-rank
  /// sample of the still-unresolved key range via a sparse gather and
  /// shrinks every boundary's bracket from the weighted sample CDF; plain
  /// dense bisection then finishes inside the narrowed brackets.
  Sampled,
  /// Sampled rounds plus interpolation-guided dense refinement that reuses
  /// the sample-CDF anchors — the PR 10 default candidate. Falls back to
  /// strict midpoint bisection per boundary when interpolation stalls, so
  /// worst-case round counts stay within ~2x of Dense.
  Hybrid,
};

struct MultiselectConfig {
  /// Load-balance threshold epsilon of Def. 1; 0 = perfect partitioning.
  double epsilon = 0.0;
  SplitterInit init = SplitterInit::MinMax;
  /// Samples gathered per rank when init == Sampled.
  usize sample_per_rank = 16;
  /// Safety cap on histogram rounds; 0 = automatic (4 * key bits + 16).
  usize max_iterations = 0;
  /// Histogramming strategy. Sampled/Hybrid replace the SplitterInit phase
  /// with full sampled rounds, so `init` is ignored for those modes.
  HistogramMode histogram = HistogramMode::Dense;
  /// Oversampling factor of the sampled rounds (Sampled/Hybrid only): each
  /// rank contributes ~(oversample + 2) * sqrt(#boundaries in segment)
  /// systematically sampled keys per search segment per round.
  usize oversample = 8;
  /// Cap on sampled rounds before dense refinement takes over; rounds also
  /// stop early once the sampled CDF stops concentrating the brackets, so
  /// the cap only bites on smoothly-converging inputs.
  usize max_sampled_rounds = 8;
  /// Seed of the per-(rank, round) sample-position jitter. Must be
  /// identical on all ranks (the pooled sample is decoded redundantly).
  u64 sample_seed = 0x9e3779b9;
};

/// Result of find_splitters. All vectors are indexed by boundary
/// b in [0, targets.size()): boundary b separates output partition b from
/// b+1 when used by the sort.
template <class UK>
struct SplitterResult {
  std::vector<UK> splitter;     ///< resolved key (bisection space)
  std::vector<usize> boundary;  ///< resolved global boundary B_b: exactly B_b
                                ///< elements end up left of boundary b
  std::vector<usize> local_lb;  ///< this rank's elements with key < splitter
  std::vector<usize> local_ub;  ///< this rank's elements with key <= splitter
  std::vector<usize> global_lb; ///< sum of local_lb over ranks (L_b)
  std::vector<usize> global_ub; ///< sum of local_ub over ranks (U_b)
  usize iterations = 0;         ///< histogram rounds until convergence
  usize probes_total = 0;       ///< total splitter probes over all rounds
  /// Per-round max over unresolved boundaries of the relative rank error
  /// |achieved - target| / N (0.0 in the round that resolves the last
  /// boundary) — the convergence curve behind the paper's Table 3.
  std::vector<double> convergence;
  // Hybrid histogramming accounting (PR 10). Sampled rounds count toward
  // `iterations` but not `probes_total` (they probe no candidate keys).
  usize sampled_rounds = 0;      ///< sampled-histogram rounds executed
  usize sample_keys_total = 0;   ///< sample keys pooled over sampled rounds
  usize hist_bytes_sampled = 0;  ///< bytes gathered by sampled rounds
  usize hist_bytes_dense = 0;    ///< bytes allreduced by dense rounds
  /// Per-round probe volume, parallel to `convergence`: pooled sample keys
  /// for a sampled round, probed candidate splitters for a dense round.
  std::vector<u32> round_probes;
};

namespace detail {

/// Per-boundary search state in uint key space. Invariant (once verified):
/// f(cand_lo - 1) < K <= f(cand_hi) where f(v) = #keys <= v globally.
template <class UK>
struct BoundarySearch {
  UK cand_lo = 0;
  UK cand_hi = 0;
  usize target = 0;
  bool resolved = false;
  bool lo_verified = true;   ///< f(cand_lo - 1) < K known to hold
  bool hi_verified = true;   ///< f(cand_hi) >= K known to hold
  double sample_q = -1.0;    ///< sample-space quantile (sampled brackets)
  u32 expands = 0;           ///< galloping bracket expansions so far
  // Hybrid interpolation state (PR 10): a pair of rank anchors straddling
  // the target, seeded from the sampled CDF and tightened to exact counts
  // by every dense probe. Invariant while both exist: ra_lo < K <= ra_hi.
  UK ka_lo = 0;              ///< low anchor key
  UK ka_hi = 0;              ///< high anchor key
  double ra_lo = 0.0;        ///< (estimated) rank at/below ka_lo
  double ra_hi = 0.0;        ///< (estimated) rank just below ka_hi
  bool has_lo = false;       ///< low anchor seeded
  bool has_hi = false;       ///< high anchor seeded
  bool lo_exact = false;     ///< ra_lo came from a dense probe, not the CDF
  bool hi_exact = false;     ///< ra_hi came from a dense probe, not the CDF
  bool force_hi = false;     ///< next probe jumps to cand_hi (empty gap)
  u32 penalty = 0;           ///< interpolation misses; >= 2 locks midpoint
  UK last_probe = 0;         ///< previous probe (repeat guard)
  bool has_last = false;
  bool last_was_interp = false;
  usize last_miss = std::numeric_limits<usize>::max();
};

}  // namespace detail

/// Find splitters for arbitrary non-decreasing global target ranks.
///
/// `sorted_local` must be sorted by `key`; `targets` must be identical on
/// all ranks, non-decreasing, and each in [0, N]. Collective over `comm`.
template <class T, class KeyFn>
auto find_splitters(runtime::Comm& comm, std::span<const T> sorted_local,
                    KeyFn key, std::span<const usize> targets,
                    MultiselectConfig cfg = {})
    -> SplitterResult<typename KeyTraits<
        std::decay_t<decltype(key(std::declval<T>()))>>::uint_type> {
  using K = std::decay_t<decltype(key(std::declval<T>()))>;
  using Traits = KeyTraits<K>;
  using UK = typename Traits::uint_type;

  net::PhaseScope phase(comm.clock(), net::Phase::Histogram);
  HDS_ASSERT(is_locally_sorted(sorted_local, key));
  HDS_CHECK(std::is_sorted(targets.begin(), targets.end()));
  HDS_CHECK(cfg.epsilon >= 0.0);

  const usize n_local = sorted_local.size();
  const usize B = targets.size();
  const int P = comm.size();
  const usize N =
      comm.allreduce_value<u64>(n_local, [](u64 a, u64 b) { return a + b; });
  for (usize t : targets) HDS_CHECK_MSG(t <= N, "target rank exceeds N");

  SplitterResult<UK> res;
  res.splitter.assign(B, UK{0});
  res.boundary.assign(B, 0);
  res.local_lb.assign(B, 0);
  res.local_ub.assign(B, 0);
  res.global_lb.assign(B, 0);
  res.global_ub.assign(B, 0);
  if (B == 0) return res;

  // Global key range: one (min, max) reduction in bisection space (line 3).
  UK my_min = std::numeric_limits<UK>::max();
  UK my_max = std::numeric_limits<UK>::min();
  if (n_local > 0) {
    my_min = Traits::to_uint(key(sorted_local.front()));
    my_max = Traits::to_uint(key(sorted_local.back()));
  }
  UK range[2] = {my_min, static_cast<UK>(~my_max)};
  UK grange[2];
  comm.allreduce(range, grange, 2,
                 [](UK a, UK b) { return std::min(a, b); });
  const UK gmin = grange[0];
  const UK gmax = static_cast<UK>(~grange[1]);

  // Epsilon window (Def. 1): each boundary may deviate by N*eps/(2P).
  const usize window = static_cast<usize>(
      cfg.epsilon * static_cast<double>(N) / (2.0 * static_cast<double>(P)));

  std::vector<detail::BoundarySearch<UK>> search(B);
  std::vector<usize> active;  // boundaries still being bisected
  for (usize b = 0; b < B; ++b) {
    auto& s = search[b];
    s.target = targets[b];
    if (s.target == 0) {
      // All elements are right of this boundary; no histogramming needed.
      s.resolved = true;
      res.splitter[b] = gmin;
      res.boundary[b] = 0;
      continue;
    }
    if (s.target == N) {
      s.resolved = true;
      res.splitter[b] = gmax;
      res.boundary[b] = N;
      res.local_lb[b] = res.local_ub[b] = n_local;
      res.global_lb[b] = res.global_ub[b] = N;
      continue;
    }
    if (N == 0) {
      s.resolved = true;
      continue;
    }
    s.cand_lo = gmin;
    s.cand_hi = gmax;
    active.push_back(b);
  }

  // Optional sampled initialization: bracket each boundary between adjacent
  // quantiles of a gathered sample. Brackets are unverified; when one turns
  // out wrong the search gallops outward through the sample (quadrupling
  // the window) instead of restarting from the full key range, so a rare
  // bad bracket costs a handful of rounds, not a full re-bisection.
  std::vector<UK> sample_u;
  double spread = 0.0;
  if (cfg.histogram == HistogramMode::Dense &&
      cfg.init == SplitterInit::Sampled && !active.empty() && N > 0) {
    std::vector<K> my_sample;
    const usize s_n = std::min(cfg.sample_per_rank, n_local);
    for (usize i = 0; i < s_n; ++i) {
      const usize idx = (n_local - 1) * (2 * i + 1) / (2 * s_n);
      my_sample.push_back(key(sorted_local[idx]));
    }
    std::vector<K> sample =
        comm.allgatherv(std::span<const K>(my_sample));
    std::sort(sample.begin(), sample.end());
    comm.charge_control_sort(sample.size());
    if (sample.size() >= 2) {
      sample_u.reserve(sample.size());
      for (const K& v : sample) sample_u.push_back(Traits::to_uint(v));
      const double S = static_cast<double>(sample_u.size());
      // Order-statistic rank error of a sample quantile is ~N/(2*sqrt(S)),
      // i.e. ~sqrt(S)/2 sample positions; a ~3.5-sigma spread makes the
      // bracket hold for all boundaries with high probability while still
      // cutting several bisection rounds off the full key range.
      spread = 2.0 + 1.8 * std::sqrt(S);
      for (usize b : active) {
        auto& s = search[b];
        const double q = static_cast<double>(s.target) /
                         static_cast<double>(N) * (S - 1.0);
        s.sample_q = q;
        const auto lo_i = static_cast<usize>(std::max(0.0, q - spread));
        const auto hi_i = std::min(sample_u.size() - 1,
                                   static_cast<usize>(q + spread) + 1);
        // A bracket that runs into the sample's ends is not trustworthy:
        // regular per-rank sampling never probes the extreme local
        // positions, so extreme global quantiles lie outside the pooled
        // sample — fall back to the verified global extreme there.
        if (lo_i == 0) {
          s.cand_lo = gmin;
          s.lo_verified = true;
        } else {
          s.cand_lo = sample_u[lo_i];
          s.lo_verified = (s.cand_lo == gmin);
        }
        if (hi_i >= sample_u.size() - 1) {
          s.cand_hi = gmax;
          s.hi_verified = true;
        } else {
          s.cand_hi = sample_u[hi_i];
          s.hi_verified = (s.cand_hi == gmax);
        }
        if (s.cand_lo > s.cand_hi) std::swap(s.cand_lo, s.cand_hi);
      }
    }
  }

  // Galloping bracket repair for Sampled init: widen the failing side by
  // 4x in sample space; after a few failures give up and use the full
  // verified range.
  auto expand_lo = [&](detail::BoundarySearch<UK>& s, UK probe) {
    if (s.expands < 3 && !sample_u.empty() && s.sample_q >= 0.0) {
      ++s.expands;
      const double w = spread * std::pow(4.0, s.expands);
      const usize i = static_cast<usize>(std::max(0.0, s.sample_q - w));
      UK cand = sample_u[i];
      if (cand >= probe) cand = gmin;
      s.cand_lo = cand;
      s.lo_verified = (cand == gmin);
    } else {
      s.cand_lo = gmin;
      s.lo_verified = true;
    }
  };
  auto expand_hi = [&](detail::BoundarySearch<UK>& s, UK probe) {
    if (s.expands < 3 && !sample_u.empty() && s.sample_q >= 0.0) {
      ++s.expands;
      const double w = spread * std::pow(4.0, s.expands);
      const usize i = std::min(sample_u.size() - 1,
                               static_cast<usize>(s.sample_q + w) + 1);
      UK cand = sample_u[i];
      if (cand <= probe) cand = gmax;
      s.cand_hi = cand;
      s.hi_verified = (cand == gmax);
    } else {
      s.cand_hi = gmax;
      s.hi_verified = true;
    }
  };

  // --- sampled rounds (PR 10, Sampled / Hybrid) ----------------------------
  // Each round pools a seeded per-rank sample of the union of the active
  // brackets through one sparse SampleGather. Exact below-range / in-range
  // counts ride along with the keys, so the pooled CDF is exact outside the
  // sampled range and only the in-range interpolation carries sampling
  // error — which the slack term absorbs before a bracket is trusted.
  // Sampled brackets are unverified; the same gallop repair as Sampled init
  // widens them through the pooled sample if a dense round disproves one.
  const bool hybrid = cfg.histogram == HistogramMode::Hybrid;
  if (cfg.histogram != HistogramMode::Dense && !active.empty() &&
      gmin < gmax) {
    struct WeightedKey {
      u64 key;
      double weight;
    };
    // A maximal run of overlapping active brackets, sampled as one unit.
    // Sampling per segment — not the contiguous hull of all brackets — is
    // what makes successive rounds concentrate: round k's samples land only
    // inside key ranges still unresolved after round k-1, so the effective
    // per-boundary resolution multiplies round over round instead of
    // staying pinned at whole-range resolution.
    struct Segment {
      UK lo, hi;       ///< inclusive key range of the merged brackets
      usize nb;        ///< active boundaries inside (drives sample budget)
      double c_below;  ///< exact global #keys < lo (rides the gather)
      double w;        ///< exact global #keys in [lo, hi]
      double wmax;     ///< heaviest pooled sample weight
      double slack;    ///< rank slack before a sample position is trusted
      usize s_off;     ///< this segment's pool offset in samp / est_le
      usize s_n;       ///< pooled sample keys of this segment
    };
    std::vector<Segment> segs;
    std::vector<usize> seg_of;  // position in `active` -> segment index
    std::vector<u32> idx;
    std::vector<u64> contrib;
    std::vector<std::vector<WeightedKey>> pools;
    std::vector<WeightedKey> samp;  // per-segment pools, concatenated
    std::vector<double> est_le;     // weighted CDF, aligned with samp
    double prev_mass = std::numeric_limits<double>::max();
    // Per-rank, per-segment sample budget. Scaling with sqrt(boundaries)
    // rather than linearly keeps the early hull rounds (one segment
    // covering many boundaries, where evenly spread samples serve them all
    // at once) from gathering far more keys than the CDF resolution needs,
    // while a segment holding a single boundary still gets the full
    // oversample.
    const auto seg_budget = [&](usize nb) {
      return (cfg.oversample + 2) *
             static_cast<usize>(
                 std::ceil(std::sqrt(static_cast<double>(nb))));
    };
    for (usize round = 0;
         round < cfg.max_sampled_rounds && !active.empty(); ++round) {
      // Merge the active brackets into disjoint segments — identical on
      // every rank, because the brackets are replicated search state.
      segs.clear();
      seg_of.assign(active.size(), 0);
      idx.resize(active.size());
      for (usize i = 0; i < active.size(); ++i) idx[i] = static_cast<u32>(i);
      std::sort(idx.begin(), idx.end(), [&](u32 x, u32 y) {
        return search[active[x]].cand_lo < search[active[y]].cand_lo;
      });
      for (u32 i : idx) {
        const auto& s = search[active[i]];
        if (!segs.empty() && s.cand_lo <= segs.back().hi) {
          segs.back().hi = std::max(segs.back().hi, s.cand_hi);
          ++segs.back().nb;
        } else {
          segs.push_back({s.cand_lo, s.cand_hi, 1, 0, 0, 0, 0, 0, 0});
        }
        seg_of[i] = segs.size() - 1;
      }

      // Local block, segment-major: [keys below lo, keys in [lo, hi],
      // sampled keys...] per segment. The sample count is min(keys in
      // range, (oversample + 2) * boundaries-in-segment) — derivable by
      // every receiver from the replicated budget, so it does not travel.
      const T* base = sorted_local.data();
      contrib.clear();
      Xoshiro256 rng(hash_mix(
          cfg.sample_seed,
          (static_cast<u64>(comm.rank()) << 8) | static_cast<u64>(round)));
      usize scan = 0;  // segments ascend, so searches narrow monotonically
      for (const Segment& g : segs) {
        const usize i0 = static_cast<usize>(
            std::lower_bound(base + scan, base + n_local, g.lo,
                             [&](const T& e, UK v) {
                               return Traits::to_uint(key(e)) < v;
                             }) -
            base);
        const usize i1 = static_cast<usize>(
            std::upper_bound(base + i0, base + n_local, g.hi,
                             [&](UK v, const T& e) {
                               return v < Traits::to_uint(key(e));
                             }) -
            base);
        scan = i1;
        const usize n_in = i1 - i0;
        const usize s_n = std::min(n_in, seg_budget(g.nb));
        contrib.push_back(static_cast<u64>(i0));
        contrib.push_back(static_cast<u64>(n_in));
        // Systematic sampling: position j lands uniformly inside stratum j
        // (deterministic per-(rank, round) jitter), which makes the
        // mid-weight CDF estimator on the receive side unbiased. Forcing
        // the range extremes in would skew it — and the segment edges
        // already carry exact ranks through i0 / n_in. Positions are kept
        // strictly increasing so full-budget coverage degenerates to the
        // exact per-key histogram of the segment.
        if (s_n >= 1) {
          const double stride =
              static_cast<double>(n_in) / static_cast<double>(s_n);
          usize prev = 0;
          for (usize j = 0; j < s_n; ++j) {
            usize pos = static_cast<usize>(
                (static_cast<double>(j) + rng.uniform01()) * stride);
            pos = std::clamp(pos, prev, n_in - s_n + j);
            prev = pos + 1;
            contrib.push_back(static_cast<u64>(
                Traits::to_uint(key(sorted_local[i0 + pos]))));
          }
        }
      }
      comm.charge_batched_search(n_local, 2 * segs.size());
      comm.charge_control_scan(contrib.size());

      std::vector<usize> counts;
      const std::vector<u64> pooled =
          comm.sample_gatherv(std::span<const u64>(contrib), &counts);
      ++res.iterations;
      ++res.sampled_rounds;
      res.hist_bytes_sampled += pooled.size() * sizeof(u64);

      // Decode (identically on every rank): exact per-segment global
      // counts plus the weighted key pools. Each key from rank r carries
      // weight n_in_r / s_n_r — the rank mass it represents.
      pools.assign(segs.size(), {});
      double w_total = 0.0;
      usize off = 0;
      for (int r = 0; r < P; ++r) {
        const usize block_end = off + counts[static_cast<usize>(r)];
        for (Segment& g : segs) {
          const u64 n_in = pooled[off + 1];
          const usize s_n =
              std::min(static_cast<usize>(n_in), seg_budget(g.nb));
          g.c_below += static_cast<double>(pooled[off]);
          g.w += static_cast<double>(n_in);
          const double w =
              s_n ? static_cast<double>(n_in) / static_cast<double>(s_n)
                  : 0.0;
          auto& pg = pools[&g - segs.data()];
          for (usize j = 0; j < s_n; ++j)
            pg.push_back({pooled[off + 2 + j], w});
          off += 2 + s_n;
        }
        HDS_CHECK_MSG(off == block_end,
                      "sampled-round block of rank " << r << " mis-sized");
      }
      for (const Segment& g : segs) w_total += g.w;

      // Concatenate the per-segment pools (disjoint ascending segments, so
      // the concatenation is globally sorted) and build the weighted CDF
      // anchored at each segment's exact below-count.
      usize total_s = 0;
      for (usize gi = 0; gi < segs.size(); ++gi) {
        std::sort(pools[gi].begin(), pools[gi].end(),
                  [](const WeightedKey& a, const WeightedKey& b) {
                    return a.key < b.key;
                  });
        segs[gi].s_off = total_s;
        segs[gi].s_n = pools[gi].size();
        total_s += pools[gi].size();
      }
      samp.clear();
      samp.reserve(total_s);
      est_le.resize(total_s);
      for (Segment& g : segs) {
        double acc = g.c_below;
        for (const WeightedKey& wk : pools[&g - segs.data()]) {
          samp.push_back(wk);
          acc += wk.weight;
          // Mid-weight estimate of #keys <= sample: the sample sits
          // uniformly inside its stratum, so crediting half its weight is
          // unbiased (full weight would run up to one stratum high per
          // rank — a bias that adds coherently across ranks and would
          // swamp the slack). At full coverage (weight 1) this is the
          // exact rank minus 1/2.
          est_le[samp.size() - 1] = acc - 0.5 * wk.weight;
          g.wmax = std::max(g.wmax, wk.weight);
        }
        // Rank slack before a sample position is trusted as a bracket end:
        // one full per-key weight (position-within-weight uncertainty)
        // plus a ~7-sigma CDF error term. The samples are stratified — each
        // rank contributes evenly spaced positions of its sorted run, so
        // per-rank CDF error is bounded by one stratum (~w/S) and the
        // pooled error scales with sqrt(P) strata, not the sqrt(S) an iid
        // sample would need. The rare tail beyond the slack is what the
        // gallop bracket repair is for.
        g.slack = g.s_n
                      ? g.wmax + 2.0 * std::sqrt(static_cast<double>(P)) *
                                     (g.w / static_cast<double>(g.s_n))
                      : 0.0;
      }
      comm.charge_control_sort(total_s);
      comm.charge_control_scan(total_s + active.size());
      res.sample_keys_total += total_s;
      res.round_probes.push_back(static_cast<u32>(total_s));
      if (total_s < 2 || w_total <= 0.0) {
        // Degenerate pool: (almost) nothing left in range — the dense phase
        // resolves the remaining tie mass.
        const double err = w_total / (2.0 * static_cast<double>(N));
        res.convergence.push_back(err);
        comm.metrics().append(obs::Series::HistogramConvergence, err);
        break;
      }

      // Refresh the gallop repair pool before installing unverified
      // brackets from this sample.
      sample_u.clear();
      sample_u.reserve(total_s);
      for (const WeightedKey& wk : samp)
        sample_u.push_back(static_cast<UK>(wk.key));
      // Gallop step in sample positions ~ the slack expressed in per-key
      // weights. The pool is concentrated around the unresolved brackets,
      // so a repair jump must stay segment-local — a step scaled to the
      // whole pool size would hop across unrelated boundaries' samples.
      spread = 2.0 + 2.0 * std::sqrt(static_cast<double>(P));

      double mass = 0.0;
      double round_err = 0.0;
      for (usize i = 0; i < active.size(); ++i) {
        auto& s = search[active[i]];
        const Segment& g = segs[seg_of[i]];
        const double kt = static_cast<double>(s.target);
        const double le_hi = g.c_below + g.w;  // exact #keys <= g.hi
        if (g.s_n == 0) {
          // Nothing sampled here (empty range): the dense phase sorts it
          // out; count the unshrunk bracket toward the stall detector.
          mass += g.w;
          round_err = std::max(
              round_err, g.w / (2.0 * static_cast<double>(N)));
          continue;
        }
        const double* e0 = est_le.data() + g.s_off;
        const WeightedKey* k0 = samp.data() + g.s_off;
        // The below / in-range counts ride the gather exactly, so a target
        // outside (c_below, c_below + w] disproves the bracket outright —
        // an earlier slack-guarded shrink lost the splitter (the rare tail
        // beyond the slack). Reopen the failing side; the exact edge rank
        // seeds the interpolation anchor for the jump back out.
        if (kt <= g.c_below || kt > le_hi) {
          if (kt <= g.c_below) {
            s.cand_lo = gmin;
            s.lo_verified = true;
            if (hybrid && g.lo > std::numeric_limits<UK>::min()) {
              s.ka_hi = static_cast<UK>(g.lo - 1);
              s.ra_hi = g.c_below;
              s.has_hi = true;
              s.hi_exact = true;
            }
          } else {
            s.cand_hi = gmax;
            s.hi_verified = true;
            if (hybrid) {
              s.ka_lo = g.hi;
              s.ra_lo = le_hi;
              s.has_lo = true;
              s.lo_exact = true;
            }
          }
          mass += g.w;
          round_err = std::max(
              round_err, g.w / (2.0 * static_cast<double>(N)));
          continue;
        }
        // cross = first sample position whose estimated rank reaches the
        // target; the raw crossing seeds the interpolation anchors (no
        // safety margin needed — bad anchors only misdirect probes, and the
        // penalty counter catches that), while bracket shrinks below are
        // slack-guarded because a wrong bracket costs gallop rounds. The
        // half-key shift makes the full-coverage case land on the key
        // whose tie class spans the target rank (est == rank - 1/2 there).
        const usize cross = static_cast<usize>(
            std::lower_bound(e0, e0 + g.s_n, kt - 0.5) - e0);
        // Full coverage: every in-range key of every rank fit the budget,
        // so the pooled CDF is the exact histogram of the segment and the
        // crossing key is the exact splitter — collapse the bracket to it
        // and let the next dense round confirm with exact global counts.
        // (At eps == 0 this is the same unique key value every mode must
        // land on: the one whose tie class spans the target rank.)
        if (static_cast<double>(g.s_n) == g.w && cross < g.s_n) {
          const UK k = static_cast<UK>(k0[cross].key);
          if (k >= s.cand_lo && k <= s.cand_hi) {
            s.cand_lo = s.cand_hi = k;
            s.lo_verified = s.hi_verified = true;
            s.expands = 0;
            s.sample_q = static_cast<double>(g.s_off + cross);
            continue;
          }
        }
        // Heavy tie class straddling the target: the crossing key's tie
        // run alone accounts for the target rank with slack to spare on
        // both sides, so it must be the splitter (Def. 4 places the
        // boundary inside its tie run). Collapse without waiting for full
        // coverage — for few-distinct inputs this is the common case, and
        // the value-space bisection it replaces is the dense phase's worst
        // case.
        if (cross < g.s_n) {
          usize run_lo = cross;
          while (run_lo > 0 && k0[run_lo - 1].key == k0[cross].key)
            --run_lo;
          usize run_hi = cross;
          while (run_hi + 1 < g.s_n && k0[run_hi + 1].key == k0[cross].key)
            ++run_hi;
          // #keys < k: exact when the run opens the segment, estimated
          // with slack otherwise; #keys <= k: always estimated with slack.
          const double below = run_lo ? e0[run_lo - 1] : g.c_below;
          const bool below_ok =
              run_lo ? below + g.slack < kt : below < kt;
          if (below_ok && e0[run_hi] - g.slack >= kt) {
            const UK k = static_cast<UK>(k0[cross].key);
            if (k >= s.cand_lo && k <= s.cand_hi) {
              s.cand_lo = s.cand_hi = k;
              s.lo_verified = s.hi_verified = true;
              s.expands = 0;
              s.sample_q = static_cast<double>(g.s_off + cross);
              continue;
            }
          }
        }
        if (hybrid) {
          if (cross > 0) {
            s.ka_lo = static_cast<UK>(k0[cross - 1].key);
            s.ra_lo = e0[cross - 1];
            s.has_lo = true;
            s.lo_exact = false;
          } else if (g.lo > std::numeric_limits<UK>::min()) {
            // Target at or below the first sample: the segment's lower edge
            // carries an exact rank (#keys < lo rode the gather).
            s.ka_lo = static_cast<UK>(g.lo - 1);
            s.ra_lo = g.c_below;
            s.has_lo = true;
            s.lo_exact = true;
          }
          if (cross < g.s_n) {
            s.ka_hi = static_cast<UK>(k0[cross].key);
            s.ra_hi = e0[cross];
            s.has_hi = true;
            s.hi_exact = false;
          } else {
            s.ka_hi = g.hi;
            s.ra_hi = le_hi;
            s.has_hi = true;
            s.hi_exact = true;
          }
        }
        s.expands = 0;
        s.sample_q = static_cast<double>(g.s_off +
                                         std::min(cross, g.s_n - 1));
        usize lo = cross;
        while (lo > 0 && e0[lo - 1] + g.slack >= kt) --lo;
        const bool lo_safe = lo > 0;  // position lo-1 is safely below
        usize hi = cross;
        while (hi < g.s_n && e0[hi] - g.slack < kt) ++hi;
        const bool hi_safe = hi < g.s_n;
        if (lo_safe) {
          const UK k = static_cast<UK>(k0[lo - 1].key);
          if (k > s.cand_lo && k <= s.cand_hi) {
            s.cand_lo = k;
            s.lo_verified = false;
          }
        }
        if (hi_safe) {
          const UK k = static_cast<UK>(k0[hi].key);
          if (k < s.cand_hi && k >= s.cand_lo) {
            s.cand_hi = k;
            s.hi_verified = false;
          }
        }
        const double lo_est = lo_safe ? e0[lo - 1] : g.c_below;
        const double hi_est = hi_safe ? e0[hi] : le_hi;
        const double width = std::max(0.0, hi_est - lo_est);
        mass += width;
        round_err = std::max(
            round_err, width / (2.0 * static_cast<double>(N)));
      }
      res.convergence.push_back(round_err);
      comm.metrics().append(obs::Series::HistogramConvergence, round_err);
      // Stop sampling once the brackets stop concentrating (heavy tie
      // classes pin the slack at wmax — more samples cannot split a tie)
      // or once they are already down to per-key resolution; the dense
      // phase finishes either way.
      if (mass * 2.0 >= prev_mass ||
          mass <= static_cast<double>(active.size()))
        break;
      prev_mass = mass;
    }
  }

  const usize max_iter = cfg.max_iterations
                             ? cfg.max_iterations
                             : 4 * static_cast<usize>(Traits::key_bits) + 16;

  std::vector<UK> probes;
  std::vector<u64> hist;     // interleaved (lb, ub) per active boundary
  std::vector<u64> ghist;
  std::vector<u32> order;    // probe indices in ascending probe order
  std::vector<K> probe_keys;
  std::vector<usize> lb_s, ub_s;

  while (!active.empty()) {
    HDS_CHECK_MSG(res.iterations < max_iter,
                  "find_splitters failed to converge after "
                      << res.iterations << " iterations");
    ++res.iterations;

    // Probe the midpoint of every unresolved boundary and build the local
    // histogram (lines 6-7). Boundary targets are non-decreasing, so the
    // probes of one iteration are already (nearly) sorted: ordering them by
    // value lets a single forward sweep answer every probe over a
    // successively narrowed subrange instead of running two independent
    // full-width binary searches per probe.
    probes.clear();
    for (usize b : active) {
      auto& s = search[b];
      UK probe = key_midpoint(s.cand_lo, s.cand_hi);
      bool interp = false;
      if (hybrid) {
        if (s.force_hi) {
          // An empty key gap was detected below: interpolation would land
          // in the same plateau again, so jump to the bracket's upper end.
          probe = s.cand_hi;
          s.force_hi = false;
        } else if (s.penalty < 2 && s.has_lo && s.has_hi &&
                   s.ka_lo < s.ka_hi &&
                   s.ra_lo < static_cast<double>(s.target) &&
                   s.ra_hi > s.ra_lo) {
          // Interpolation-search probe between the rank anchors, clamped
          // into the verified bracket; repeat probes degrade to midpoint.
          const double frac =
              std::clamp((static_cast<double>(s.target) - s.ra_lo) /
                             (s.ra_hi - s.ra_lo),
                         0.0, 1.0);
          const double span = static_cast<double>(s.ka_hi - s.ka_lo);
          const UK cand = std::clamp(
              static_cast<UK>(s.ka_lo + static_cast<UK>(span * frac)),
              s.cand_lo, s.cand_hi);
          if (!(s.has_last && cand == s.last_probe)) {
            probe = cand;
            interp = true;
          }
        }
      }
      s.last_was_interp = interp;
      s.last_probe = probe;
      s.has_last = true;
      probes.push_back(probe);
    }
    const usize A = active.size();
    order.resize(A);
    for (usize i = 0; i < A; ++i) order[i] = static_cast<u32>(i);
    std::sort(order.begin(), order.end(),
              [&](u32 x, u32 y) { return probes[x] < probes[y]; });
    probe_keys.clear();
    for (u32 i : order) probe_keys.push_back(Traits::from_uint(probes[i]));
    lb_s.resize(A);
    ub_s.resize(A);
    batched_counts(sorted_local, std::span<const K>(probe_keys), key,
                   lb_s.data(), ub_s.data());
    hist.assign(2 * A, 0);
    for (usize j = 0; j < A; ++j) {
      hist[2 * order[j]] = lb_s[j];
      hist[2 * order[j] + 1] = ub_s[j];
    }
    res.probes_total += A;
    res.round_probes.push_back(static_cast<u32>(A));
    res.hist_bytes_dense += 2 * A * sizeof(u64);
    comm.charge_control_sort(A);
    comm.charge_batched_search(n_local, 2 * A);

    // Global histogram: one allreduce (line 8).
    ghist.assign(hist.size(), 0);
    comm.allreduce(hist.data(), ghist.data(), hist.size(),
                   [](u64 a, u64 b) { return a + b; });

    // Validate each splitter (Alg. 2, with the epsilon window).
    double round_err = 0.0;
    std::vector<usize> still_active;
    for (usize a = 0; a < active.size(); ++a) {
      const usize b = active[a];
      auto& s = search[b];
      const UK probe = probes[a];
      const usize L = ghist[2 * a];
      const usize U = ghist[2 * a + 1];
      const usize KT = s.target;

      const bool accept = (L < KT + window) && (KT <= U + window);
      if (accept) {
        s.resolved = true;
        res.splitter[b] = probe;
        res.local_lb[b] = hist[2 * a];
        res.local_ub[b] = hist[2 * a + 1];
        res.global_lb[b] = L;
        res.global_ub[b] = U;
        // Number of elements ending up left of the boundary: as close to the
        // target as the ties at the splitter allow (always inside the
        // epsilon window when accepted; exactly KT when epsilon == 0).
        res.boundary[b] = std::clamp(KT, L, U);
        continue;
      }
      // Unresolved boundary: distance of the achievable rank interval
      // [L, U] from the target, relative to N (a global quantity — L, U,
      // KT, N are identical on every rank, so the series is too).
      const usize miss = (L >= KT + window) ? L - KT : KT - U;
      round_err = std::max(
          round_err, static_cast<double>(miss) / static_cast<double>(N));
      if (hybrid && s.last_was_interp) {
        // Interpolation must keep (at least) halving the rank miss; two
        // failures permanently lock this boundary to strict midpoint
        // bisection. The penalty is sticky on purpose — letting a key
        // distribution that defeats interpolation (plateaus, heavy ties)
        // earn the probe back after one lucky round costs ~2x the
        // bisection rounds in the worst case.
        if (miss * 2 > s.last_miss) ++s.penalty;
      }
      s.last_miss = miss;
      if (L >= KT + window) {
        // Too many keys below the probe: move the upper bound down.
        s.cand_hi = probe;
        s.hi_verified = true;
        s.ka_hi = probe;
        s.ra_hi = static_cast<double>(L);
        s.hi_exact = true;
        s.has_hi = true;
        if (!s.lo_verified && probe <= s.cand_lo) {
          // Sampled bracket was wrong on the low side: gallop outward.
          expand_lo(s, probe);
        }
      } else {
        // Too few keys at or below the probe: move the lower bound up.
        if (probe == s.cand_hi && !s.hi_verified) {
          // Sampled bracket was wrong on the high side: gallop outward.
          expand_hi(s, probe);
        }
        if (hybrid && s.lo_exact && s.has_lo &&
            static_cast<double>(U) == s.ra_lo && probe > s.ka_lo) {
          // f(<= probe) did not move past the previous exact low anchor:
          // the whole gap (ka_lo, probe] holds no keys, so interpolation
          // would stall inside this plateau — probe the bracket's upper
          // end next round instead.
          s.force_hi = true;
        }
        s.ka_lo = probe;
        s.ra_lo = static_cast<double>(U);
        s.lo_exact = true;
        s.has_lo = true;
        s.cand_lo = (probe == std::numeric_limits<UK>::max())
                        ? probe
                        : static_cast<UK>(probe + 1);
        s.lo_verified = true;
        if (s.cand_lo > s.cand_hi && s.hi_verified) s.cand_hi = gmax;
      }
      still_active.push_back(b);
    }
    res.convergence.push_back(round_err);
    comm.metrics().append(obs::Series::HistogramConvergence, round_err);
    active.swap(still_active);
    comm.charge_control_scan(B);  // splitter validation pass
  }
  comm.metrics().add(obs::Counter::HistogramIterations, res.iterations);
  comm.metrics().add(obs::Counter::SplitterProbes, res.probes_total);
  comm.metrics().add(obs::Counter::SampledRounds, res.sampled_rounds);
  comm.metrics().add(obs::Counter::SampleKeysGathered, res.sample_keys_total);
  comm.metrics().add(obs::Counter::HistogramBytesSampled,
                     res.hist_bytes_sampled);
  comm.metrics().add(obs::Counter::HistogramBytesDense, res.hist_bytes_dense);

  // Boundaries must be non-decreasing for the exchange to produce
  // contiguous send ranges (ties were resolved toward their targets).
  for (usize b = 1; b < B; ++b)
    res.boundary[b] = std::max(res.boundary[b], res.boundary[b - 1]);

  return res;
}

}  // namespace hds::core
