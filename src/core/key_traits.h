// KeyTraits: an order-preserving bijection from a key type onto an unsigned
// integer space, plus midpoint bisection in that space. This is what lets
// FIND_SPLITTERS (Alg. 3) bisect the *key range* — "in each iteration we
// bisect the key range of possible splitter candidates, i.e. a single bit" —
// uniformly for integers and IEEE-754 floats.
//
// Floats use the classic sign-magnitude-to-biased trick: negative values
// have all bits flipped, non-negative values have the sign bit set. The map
// is monotone over all finite values and ±inf; NaNs are not valid sort keys.
//
// Users can specialize KeyTraits for their own arithmetic-like key types;
// non-arithmetic records are sorted via sort_by_key with a projection onto a
// type that has KeyTraits (see examples/nbody_morton.cpp).
#pragma once

#include <bit>
#include <concepts>
#include <limits>
#include <type_traits>

#include "common/types.h"

namespace hds::core {

template <class T, class Enable = void>
struct KeyTraits;  // primary template intentionally undefined

/// Unsigned integers: identity map.
template <class T>
struct KeyTraits<T, std::enable_if_t<std::is_integral_v<T> &&
                                     std::is_unsigned_v<T>>> {
  using uint_type = T;
  static constexpr int key_bits = std::numeric_limits<T>::digits;
  static constexpr uint_type to_uint(T v) { return v; }
  static constexpr T from_uint(uint_type u) { return u; }
};

/// Signed integers: flip the sign bit.
template <class T>
struct KeyTraits<T,
                 std::enable_if_t<std::is_integral_v<T> && std::is_signed_v<T>>> {
  using uint_type = std::make_unsigned_t<T>;
  static constexpr int key_bits = std::numeric_limits<uint_type>::digits;
  static constexpr uint_type kSign = uint_type{1}
                                     << (std::numeric_limits<uint_type>::digits - 1);
  static constexpr uint_type to_uint(T v) {
    return static_cast<uint_type>(v) ^ kSign;
  }
  static constexpr T from_uint(uint_type u) {
    return static_cast<T>(u ^ kSign);
  }
};

namespace detail {
template <class F>
struct FloatBits;
template <>
struct FloatBits<float> {
  using type = u32;
};
template <>
struct FloatBits<double> {
  using type = u64;
};
}  // namespace detail

/// IEEE-754 floats: monotone bijection onto the unsigned bit space.
template <class T>
struct KeyTraits<T, std::enable_if_t<std::is_floating_point_v<T>>> {
  using uint_type = typename detail::FloatBits<T>::type;
  static constexpr int key_bits = std::numeric_limits<uint_type>::digits;
  static constexpr uint_type kSign = uint_type{1} << (key_bits - 1);

  static uint_type to_uint(T v) {
    const auto bits = std::bit_cast<uint_type>(v);
    return (bits & kSign) ? ~bits : (bits | kSign);
  }
  static T from_uint(uint_type u) {
    const uint_type bits = (u & kSign) ? (u & ~kSign) : ~u;
    return std::bit_cast<T>(bits);
  }
};

/// Midpoint in key-bisection space (rounds down; never returns hi when
/// lo < hi).
template <class U>
constexpr U key_midpoint(U lo, U hi) {
  return static_cast<U>(lo + (hi - lo) / 2);
}

/// Convenience: does the type have a KeyTraits specialization?
template <class T>
concept Bisectable = requires(T v) {
  typename KeyTraits<T>::uint_type;
  { KeyTraits<T>::to_uint(v) } -> std::convertible_to<typename KeyTraits<T>::uint_type>;
};

}  // namespace hds::core
