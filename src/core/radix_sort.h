// Non-comparison local-sort kernel: a cache-efficient LSD radix sort over
// the KeyTraits order-preserving bijection onto unsigned integers — the same
// projection FIND_SPLITTERS bisects, reused here to make superstep 1 ("fast
// shared-memory sort") and the Sort merge strategy O(n * key_bytes) instead
// of O(n log n) comparisons.
//
// Design (see DESIGN.md, "Local-sort kernel layer"):
//  * 8-bit digits — key_bytes counting passes over the data;
//  * all per-pass digit histograms are built in ONE read of the input, so a
//    pass whose digit is constant across the whole array (common for keys
//    that occupy only the low bytes of their type) is detected and skipped
//    without ever touching the data for that pass;
//  * ping-pong scatter between the input and one scratch buffer; if an odd
//    number of passes executed, the buffers are swapped back in O(1);
//  * stable throughout (counting sort per digit), so payload order among
//    equal keys is preserved — unlike introsort.
//
// Records are sorted by materializing (uint key, value) pairs — the key
// projection runs exactly once per element, not O(log n) times as under a
// comparison sort — or, for large values, (uint key, index) pairs followed
// by a single gather permutation.
#pragma once

#include <array>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/types.h"
#include "core/key_traits.h"

namespace hds::core {

/// What a radix kernel invocation actually did; the caller charges
/// simulated time from these (see Comm::charge_radix_sort).
struct RadixSortStats {
  usize passes_planned = 0;   ///< key_bytes: upper bound for this key type
  usize passes_executed = 0;  ///< scatter passes run (trivial digits skipped)
  bool used_pairs = false;    ///< by-key path materialized (key, value) pairs
};

namespace radix_detail {

inline constexpr int kDigitBits = 8;
inline constexpr usize kBuckets = usize{1} << kDigitBits;

/// LSD radix sort of `data` by an unsigned key projection `key_of` (called
/// up to key_bytes + 1 times per element; callers that need single key
/// extraction materialize pairs first). Stable.
template <class E, class KeyOf>
RadixSortStats lsd_radix_sort(std::vector<E>& data, KeyOf key_of) {
  using UK = std::decay_t<decltype(key_of(std::declval<const E&>()))>;
  static_assert(std::is_unsigned_v<UK>,
                "radix sort operates on the KeyTraits uint projection");
  constexpr usize kPasses = sizeof(UK);
  RadixSortStats st;
  st.passes_planned = kPasses;
  const usize n = data.size();
  if (n < 2) return st;

  // Histograms for every pass in a single read of the input.
  std::vector<usize> hist(kPasses * kBuckets, 0);
  for (const E& e : data) {
    const UK k = key_of(e);
    for (usize p = 0; p < kPasses; ++p)
      ++hist[p * kBuckets + ((k >> (p * kDigitBits)) & (kBuckets - 1))];
  }

  std::vector<E> scratch(n);
  E* src = data.data();
  E* dst = scratch.data();
  std::array<usize, kBuckets> offs;
  for (usize p = 0; p < kPasses; ++p) {
    const usize* h = &hist[p * kBuckets];
    // Trivial-digit detection: one bucket holding every element means the
    // scatter would be the identity permutation.
    bool trivial = false;
    for (usize b = 0; b < kBuckets; ++b) {
      if (h[b] == n) {
        trivial = true;
        break;
      }
    }
    if (trivial) continue;
    usize acc = 0;
    for (usize b = 0; b < kBuckets; ++b) {
      offs[b] = acc;
      acc += h[b];
    }
    const usize shift = p * kDigitBits;
    for (usize i = 0; i < n; ++i) {
      const usize d =
          static_cast<usize>((key_of(src[i]) >> shift) & (kBuckets - 1));
      dst[offs[d]++] = src[i];
    }
    std::swap(src, dst);
    ++st.passes_executed;
  }
  if (src != data.data()) data.swap(scratch);
  return st;
}

}  // namespace radix_detail

/// Sort a vector of bisectable keys in place. Stable; equal keys (including
/// -0.0 vs +0.0, which KeyTraits distinguishes) keep their input order.
template <Bisectable T>
RadixSortStats radix_sort_keys(std::vector<T>& keys) {
  using Traits = KeyTraits<T>;
  return radix_detail::lsd_radix_sort(
      keys, [](const T& v) { return Traits::to_uint(v); });
}

/// Sort records by a bisectable key projection. The projection is evaluated
/// exactly once per element: small records ride along as (uint key, value)
/// pairs through every pass; large records are sorted as (uint key, index)
/// pairs and gathered once at the end. Stable.
template <class T, class KeyFn>
RadixSortStats radix_sort_by_key(std::vector<T>& data, KeyFn key) {
  using K = std::decay_t<decltype(key(std::declval<T>()))>;
  using Traits = KeyTraits<K>;
  using UK = typename Traits::uint_type;
  RadixSortStats st;
  st.passes_planned = sizeof(UK);
  st.used_pairs = true;
  const usize n = data.size();
  if (n < 2) return st;

  if constexpr (sizeof(T) <= 3 * sizeof(UK)) {
    struct Pair {
      UK k;
      T v;
    };
    std::vector<Pair> pairs;
    pairs.reserve(n);
    for (const T& v : data) pairs.push_back(Pair{Traits::to_uint(key(v)), v});
    st = radix_detail::lsd_radix_sort(pairs,
                                      [](const Pair& p) { return p.k; });
    for (usize i = 0; i < n; ++i) data[i] = std::move(pairs[i].v);
  } else {
    struct Ref {
      UK k;
      usize i;
    };
    std::vector<Ref> refs;
    refs.reserve(n);
    for (usize i = 0; i < n; ++i)
      refs.push_back(Ref{Traits::to_uint(key(data[i])), i});
    st = radix_detail::lsd_radix_sort(refs,
                                      [](const Ref& r) { return r.k; });
    std::vector<T> out;
    out.reserve(n);
    for (const Ref& r : refs) out.push_back(std::move(data[r.i]));
    data = std::move(out);
  }
  st.used_pairs = true;
  return st;
}

}  // namespace hds::core
