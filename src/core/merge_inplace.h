// Backward binary merge into the tail of the destination buffer — the
// in-place building block of the single-copy data path (DESIGN.md sec. 11):
// the accumulated run stays where it is, the arriving chunk is merged in
// from a separate scratch buffer, and no full-size staging allocation is
// made. The chunk must NOT alias the destination: a backward merge whose
// second range is the tail of the same buffer can overwrite unread chunk
// elements (when the write cursor k-1 lands inside the unread chunk region
// while acc elements remain), which is why callers keep the chunk in a
// pooled scratch vector.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "common/error.h"
#include "common/types.h"

namespace hds::core {

/// Merge `acc[0 .. n1)` (sorted, already in place) with the sorted `chunk`
/// into `acc[0 .. n1 + chunk.size())`. `acc` must already be resized to the
/// merged length and must not overlap `chunk`. Equal keys keep range order
/// (acc before chunk), matching std::merge's stability.
template <class T, class Less>
void merge_tail_inplace(std::span<T> acc, usize n1, std::span<const T> chunk,
                        Less less) {
  const usize n2 = chunk.size();
  HDS_CHECK(acc.size() == n1 + n2);
  usize i = n1;
  usize j = n2;
  usize k = n1 + n2;
  // Ternaries instead of an if/else: the comparison is data-dependent, so
  // conditional moves beat a mispredicted branch per element.
  while (i > 0 && j > 0) {
    const bool take_acc = less(chunk[j - 1], acc[i - 1]);
    acc[--k] = take_acc ? acc[i - 1] : chunk[j - 1];
    i -= take_acc ? 1 : 0;
    j -= take_acc ? 0 : 1;
  }
  while (j > 0) acc[--k] = chunk[--j];
  // j == 0: acc[0 .. i) is already in final position.
}

namespace detail {

/// One loser-tree merge over slices of the input runs, writing a fixed
/// region of the destination back to front. Run 0 is the evacuated acc
/// prefix, runs 1..m-1 the chunk slices. `cur[i]` caches run i's tail
/// VALUE so every comparison reads a tiny L1-resident array instead of
/// chasing a pointer into the cold run buffers, and `tree` holds u32
/// indices so stores of T into the destination cannot alias it.
template <class T>
struct KWaySegment {
  std::vector<usize> rem;
  std::vector<const T*> tailp;
  std::vector<T> cur;
  std::vector<u32> tree;  // losers; winner at [0]
  u32 leaves = 1;
  usize k = 0;            // write cursor (one past the last write)
  usize from_chunks = 0;  // chunk elements not yet placed
};

inline constexpr u32 kKWayEmpty = static_cast<u32>(-1);

template <class T, class Less>
void kway_seg_init(KWaySegment<T>& st, std::span<const T> run0,
                   std::span<const std::span<const T>> slices, usize write_end,
                   Less less) {
  const u32 m = static_cast<u32>(slices.size()) + 1;
  st.rem.assign(m, 0);
  st.tailp.assign(m, nullptr);
  st.cur.resize(m);
  st.rem[0] = run0.size();
  if (st.rem[0] > 0) {
    st.tailp[0] = &run0[run0.size() - 1];
    st.cur[0] = run0.back();
  }
  usize total = st.rem[0];
  for (u32 i = 1; i < m; ++i) {
    const auto& c = slices[i - 1];
    st.rem[i] = c.size();
    total += c.size();
    if (st.rem[i] > 0) {
      st.tailp[i] = &c[c.size() - 1];
      st.cur[i] = c.back();
    }
  }
  st.leaves = 1;
  while (st.leaves < m) st.leaves <<= 1;
  st.tree.assign(2 * st.leaves, kKWayEmpty);
  // Build via a winner tree; ties go to the LATER run: its equal elements
  // must land at higher offsets to preserve range order.
  std::vector<u32> win(2 * st.leaves, kKWayEmpty);
  for (u32 i = 0; i < m; ++i)
    if (st.rem[i] > 0) win[st.leaves + i] = i;
  auto winner_of = [&](u32 a, u32 b) {
    if (a == kKWayEmpty) return b;
    if (b == kKWayEmpty) return a;
    const u32 lo = a < b ? a : b;
    const u32 hi = a < b ? b : a;
    return less(st.cur[hi], st.cur[lo]) ? lo : hi;
  };
  for (u32 node = st.leaves - 1; node >= 1; --node) {
    const u32 a = win[2 * node];
    const u32 b = win[2 * node + 1];
    const u32 w = winner_of(a, b);
    win[node] = w;
    st.tree[node] = (w == a) ? b : a;  // store the loser
  }
  st.tree[0] = win[1];
  st.k = write_end;
  st.from_chunks = total - st.rem[0];
}

/// Place one element: pop the tournament winner into dst[--k] and replay
/// its path. The replay selects winner/loser with arithmetic masks — gcc
/// keeps a ternary here as a branch, and the comparison outcome is
/// data-dependent, so a mispredict per level would dominate the merge.
template <class T, class Less>
inline void kway_seg_step(KWaySegment<T>& st, T* dst, Less less) {
  u32* const tree = st.tree.data();
  T* const cur = st.cur.data();
  const T** const tailp = st.tailp.data();
  usize* const rem = st.rem.data();
  const u32 w = tree[0];
  dst[--st.k] = cur[w];
  st.from_chunks -= (w != 0) ? 1 : 0;
  u32 contender;
  if (--rem[w] != 0) {
    cur[w] = *(--tailp[w]);
    contender = w;
  } else {
    contender = kKWayEmpty;
  }
  for (u32 node = (st.leaves + w) >> 1; node >= 1; node >>= 1) {
    const u32 other = tree[node];
    if (other == kKWayEmpty) continue;
    if (contender == kKWayEmpty) {
      contender = other;
      tree[node] = kKWayEmpty;
      continue;
    }
    const u32 lo = contender < other ? contender : other;
    const u32 hi = contender ^ other ^ lo;
    const u32 mask = 0 - static_cast<u32>(less(cur[hi], cur[lo]));
    const u32 l = (hi & mask) | (lo & ~mask);
    tree[node] = l;
    contender = lo ^ hi ^ l;
  }
  tree[0] = contender;
}

}  // namespace detail

/// Merge the sorted `base` run and the sorted `chunks` into `dst`, which
/// must already have size base.size() + sum(chunks) and must not alias any
/// input — O(n log k) comparisons, every element moved exactly once. Equal
/// keys keep range order (base first, then the chunks in the given order),
/// matching std::merge's stability.
///
/// A single tournament is a serial dependency chain — each placed element's
/// replay feeds the next winner selection — which leaves a 1-wide core
/// mostly idle between L1 loads. The merge is therefore value-split at a
/// pivot into two independent halves (every run cut with lower_bound, so
/// equal keys never straddle the cut and stability is preserved) whose
/// loser trees are stepped alternately in one loop: the two chains overlap
/// in the out-of-order window for ~1.7x the throughput of one tree.
template <class T, class Less>
void kway_merge_into(std::span<T> dst, std::span<const T> base,
                     std::span<const std::span<const T>> chunks, Less less) {
  const usize n1 = base.size();
  usize total = n1;
  for (const auto& c : chunks) total += c.size();
  HDS_CHECK(dst.size() == total);
  if (total == n1) {
    std::copy(base.begin(), base.end(), dst.begin());
    return;
  }

  // Pivot = the median of the largest chunk. A skewed pivot only costs
  // overlap (one segment finishes early), never correctness.
  usize big = 0;
  for (usize i = 1; i < chunks.size(); ++i)
    if (chunks[i].size() > chunks[big].size()) big = i;
  const T pivot = chunks[big][chunks[big].size() / 2];

  // Cut every run at lower_bound(pivot): elements < pivot form segment 0,
  // the rest segment 1. All copies of an equal key land in one segment, so
  // the per-segment tie rule (later run wins the max-tournament) yields
  // global stability.
  const usize m = chunks.size();
  std::vector<usize> cut(m + 1);
  cut[0] = static_cast<usize>(
      std::lower_bound(base.begin(), base.end(), pivot, less) - base.begin());
  usize low_total = cut[0];
  for (usize i = 0; i < m; ++i) {
    cut[i + 1] = static_cast<usize>(
        std::lower_bound(chunks[i].begin(), chunks[i].end(), pivot, less) -
        chunks[i].begin());
    low_total += cut[i + 1];
  }

  std::vector<std::span<const T>> lo_slices(m);
  std::vector<std::span<const T>> hi_slices(m);
  for (usize i = 0; i < m; ++i) {
    lo_slices[i] = chunks[i].subspan(0, cut[i + 1]);
    hi_slices[i] = chunks[i].subspan(cut[i + 1]);
  }
  detail::KWaySegment<T> s0;
  detail::KWaySegment<T> s1;
  detail::kway_seg_init(s0, base.subspan(0, cut[0]),
                        std::span<const std::span<const T>>(lo_slices),
                        low_total, less);
  detail::kway_seg_init(s1, base.subspan(cut[0]),
                        std::span<const std::span<const T>>(hi_slices), total,
                        less);

  T* const out = dst.data();
  // Alternate the two segments in batches bounded by the smaller remaining
  // count, so the hot loop carries no per-element exhaustion test.
  while (true) {
    usize batch = s0.from_chunks < s1.from_chunks ? s0.from_chunks
                                                  : s1.from_chunks;
    if (batch == 0) break;
    for (; batch > 0; --batch) {
      detail::kway_seg_step(s0, out, less);
      detail::kway_seg_step(s1, out, less);
    }
  }
  while (s0.from_chunks > 0) detail::kway_seg_step(s0, out, less);
  while (s1.from_chunks > 0) detail::kway_seg_step(s1, out, less);

  // Chunks drained: each segment's leftover base elements are its smallest
  // and slide in just below its write cursor.
  if (s0.rem[0] > 0)
    std::copy(base.begin(), base.begin() + s0.rem[0],
              dst.begin() + (s0.k - s0.rem[0]));
  if (s1.rem[0] > 0)
    std::copy(base.begin() + cut[0], base.begin() + cut[0] + s1.rem[0],
              dst.begin() + (s1.k - s1.rem[0]));
}

/// K-way generalization of merge_tail_inplace for the k-ary exchange's
/// round pipeline: merge `acc[0 .. n1)` (sorted, in place) with the sorted
/// `chunks` into `acc[0 .. n1 + sum(chunks))`. The only staging allocation
/// is a copy of acc's own n1-element prefix (not the full merged size),
/// evacuated so the two value-split segments of kway_merge_into may write
/// anywhere in `acc`. The chunks must NOT alias `acc`; `acc` must already
/// be resized to the merged length. Equal keys keep range order (acc
/// first, then the chunks in the given order).
template <class T, class Less>
void merge_tail_inplace_kway(std::span<T> acc, usize n1,
                             std::span<const std::span<const T>> chunks,
                             Less less) {
  usize total = n1;
  for (const auto& c : chunks) total += c.size();
  HDS_CHECK(acc.size() == total);
  if (total == n1) return;
  if (chunks.size() == 1) {  // binary case: no evacuation needed
    merge_tail_inplace(acc, n1, chunks[0], less);
    return;
  }
  std::vector<T> run0(acc.begin(), acc.begin() + n1);
  kway_merge_into(acc, std::span<const T>(run0), chunks, less);
}

}  // namespace hds::core
