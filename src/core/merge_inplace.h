// Backward binary merge into the tail of the destination buffer — the
// in-place building block of the single-copy data path (DESIGN.md sec. 11):
// the accumulated run stays where it is, the arriving chunk is merged in
// from a separate scratch buffer, and no full-size staging allocation is
// made. The chunk must NOT alias the destination: a backward merge whose
// second range is the tail of the same buffer can overwrite unread chunk
// elements (when the write cursor k-1 lands inside the unread chunk region
// while acc elements remain), which is why callers keep the chunk in a
// pooled scratch vector.
#pragma once

#include <span>

#include "common/error.h"
#include "common/types.h"

namespace hds::core {

/// Merge `acc[0 .. n1)` (sorted, already in place) with the sorted `chunk`
/// into `acc[0 .. n1 + chunk.size())`. `acc` must already be resized to the
/// merged length and must not overlap `chunk`. Equal keys keep range order
/// (acc before chunk), matching std::merge's stability.
template <class T, class Less>
void merge_tail_inplace(std::span<T> acc, usize n1, std::span<const T> chunk,
                        Less less) {
  const usize n2 = chunk.size();
  HDS_CHECK(acc.size() == n1 + n2);
  usize i = n1;
  usize j = n2;
  usize k = n1 + n2;
  while (j > 0) {
    if (i > 0 && less(chunk[j - 1], acc[i - 1]))
      acc[--k] = acc[--i];
    else
      acc[--k] = chunk[--j];
  }
  // j == 0: acc[0 .. i) is already in final position.
}

}  // namespace hds::core
