// Distributed STL-like algorithms on partitioned data — the DASH-style
// library surface the paper's implementation lives in ("Inspired by the C++
// STL concepts we provide containers and algorithms to operate on global
// data"). Every function is collective over its communicator and operates
// on this rank's partition span; results are globally consistent on every
// rank. The selection-based ones reuse dselect (Alg. 1), exactly the reuse
// the paper advertises for dash::nth_element.
#pragma once

#include <algorithm>
#include <optional>
#include <span>
#include <vector>

#include "common/error.h"
#include "core/selection.h"
#include "runtime/comm.h"

namespace hds::core {

/// Global element count.
template <class T>
u64 global_size(runtime::Comm& comm, std::span<const T> local) {
  return comm.allreduce_value<u64>(local.size(),
                                   [](u64 a, u64 b) { return a + b; });
}

/// Global minimum; nullopt when the distributed sequence is empty.
template <class T>
std::optional<T> min_value(runtime::Comm& comm, std::span<const T> local) {
  struct Entry {
    T value;
    u8 has;
  };
  Entry mine{};
  mine.has = local.empty() ? 0 : 1;
  if (mine.has) mine.value = *std::min_element(local.begin(), local.end());
  comm.charge_scan(local.size());
  std::vector<Entry> all(comm.size());
  comm.allgather(&mine, 1, all.data());
  std::optional<T> out;
  for (const Entry& e : all)
    if (e.has && (!out || e.value < *out)) out = e.value;
  return out;
}

/// Global maximum; nullopt when the distributed sequence is empty.
template <class T>
std::optional<T> max_value(runtime::Comm& comm, std::span<const T> local) {
  struct Entry {
    T value;
    u8 has;
  };
  Entry mine{};
  mine.has = local.empty() ? 0 : 1;
  if (mine.has) mine.value = *std::max_element(local.begin(), local.end());
  comm.charge_scan(local.size());
  std::vector<Entry> all(comm.size());
  comm.allgather(&mine, 1, all.data());
  std::optional<T> out;
  for (const Entry& e : all)
    if (e.has && (!out || *out < e.value)) out = e.value;
  return out;
}

/// Global reduction with a commutative, associative op.
template <class T, class Op>
T reduce(runtime::Comm& comm, std::span<const T> local, T init, Op op) {
  T acc = init;
  for (const T& v : local) acc = op(acc, v);
  comm.charge_scan(local.size());
  return comm.allreduce_value<T>(acc, op);
}

/// Number of elements satisfying the predicate, globally.
template <class T, class Pred>
u64 count_if(runtime::Comm& comm, std::span<const T> local, Pred pred) {
  u64 mine = 0;
  for (const T& v : local)
    if (pred(v)) ++mine;
  comm.charge_scan(local.size());
  return comm.allreduce_value<u64>(mine, [](u64 a, u64 b) { return a + b; });
}

/// Number of elements equal to `value`, globally.
template <class T>
u64 count(runtime::Comm& comm, std::span<const T> local, const T& value) {
  return count_if(comm, local, [&](const T& v) { return v == value; });
}

/// In-place global inclusive prefix sum: element i of the concatenated
/// sequence becomes the sum of elements 0..i.
template <class T>
void inclusive_scan(runtime::Comm& comm, std::span<T> local) {
  T acc{};
  for (T& v : local) {
    acc = acc + v;
    v = acc;
  }
  comm.charge_scan(local.size());
  const T offset =
      comm.exscan_value<T>(acc, [](T a, T b) { return a + b; }, T{});
  if (comm.rank() > 0)
    for (T& v : local) v = v + offset;
  comm.charge_scan(local.size());
}

/// Global median (lower median for even N). Reorders `local`. Throws on an
/// empty distributed sequence.
template <class T>
T median_value(runtime::Comm& comm, std::span<T> local) {
  const u64 n = global_size(comm, std::span<const T>(local.data(),
                                                     local.size()));
  HDS_CHECK_MSG(n > 0, "median of an empty distributed sequence");
  return dselect(comm, local, (n - 1) / 2);
}

/// Global q-quantile, q in [0, 1]. Reorders `local`.
template <class T>
T quantile(runtime::Comm& comm, std::span<T> local, double q) {
  HDS_CHECK(q >= 0.0 && q <= 1.0);
  const u64 n = global_size(comm, std::span<const T>(local.data(),
                                                     local.size()));
  HDS_CHECK_MSG(n > 0, "quantile of an empty distributed sequence");
  const u64 k = std::min<u64>(static_cast<u64>(q * n), n - 1);
  return dselect(comm, local, k);
}

/// Fixed-width global histogram over [lo, hi): returns `bins` counts,
/// identical on every rank. Values outside the range are clamped into the
/// first/last bin.
template <class T>
std::vector<u64> histogram(runtime::Comm& comm, std::span<const T> local,
                           T lo, T hi, usize bins) {
  HDS_CHECK(bins >= 1);
  HDS_CHECK(lo < hi);
  std::vector<u64> mine(bins, 0);
  const double width = static_cast<double>(hi - lo) / bins;
  for (const T& v : local) {
    const double pos = (static_cast<double>(v) - static_cast<double>(lo)) /
                       width;
    const usize b = pos < 0.0 ? 0
                    : pos >= static_cast<double>(bins)
                        ? bins - 1
                        : static_cast<usize>(pos);
    ++mine[b];
  }
  comm.charge_scan(local.size());
  std::vector<u64> global(bins, 0);
  comm.allreduce(mine.data(), global.data(), bins,
                 [](u64 a, u64 b) { return a + b; });
  return global;
}

/// Are all partitions globally sorted by `<`? (Convenience overload of
/// is_globally_sorted for plain key sequences lives in histogram_sort.h.)
template <class T>
bool is_sorted(runtime::Comm& comm, std::span<const T> local) {
  struct Edge {
    T min, max;
    u8 has;
  };
  const bool local_ok = std::is_sorted(local.begin(), local.end());
  comm.charge_scan(local.size());
  Edge mine{};
  mine.has = local.empty() ? 0 : 1;
  if (mine.has) {
    mine.min = local.front();
    mine.max = local.back();
  }
  std::vector<Edge> edges(comm.size());
  comm.allgather(&mine, 1, edges.data());
  bool ok = local_ok;
  const Edge* prev = nullptr;
  for (const Edge& e : edges) {
    if (!e.has) continue;
    if (prev && e.min < prev->max) ok = false;
    prev = &e;
  }
  return comm.allreduce_value<u8>(ok ? 1 : 0,
                                  [](u8 a, u8 b) -> u8 { return a & b; }) != 0;
}

}  // namespace hds::core
