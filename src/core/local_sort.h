// Local (per-rank) sorting and searching primitives with simulated-time
// charges. The paper's superstep 1 ("Local Sort") and the binary-search
// local histogramming of Alg. 3 both go through here so every bench and the
// phase breakdown see consistent costs.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "net/sim.h"
#include "runtime/comm.h"

namespace hds::core {

/// Sort the local partition by a key projection; charged as the shared
/// memory sort of superstep 1.
template <class T, class KeyFn>
void local_sort(runtime::Comm& comm, std::vector<T>& data, KeyFn key) {
  std::sort(data.begin(), data.end(),
            [&](const T& a, const T& b) { return key(a) < key(b); });
  comm.charge_sort(data.size());
}

/// Count of elements with key(elem) < probe (the splitter lower bound l_i).
template <class T, class K, class KeyFn>
usize count_below(std::span<const T> sorted, K probe, KeyFn key) {
  const auto it = std::lower_bound(
      sorted.begin(), sorted.end(), probe,
      [&](const T& elem, const K& p) { return key(elem) < p; });
  return static_cast<usize>(it - sorted.begin());
}

/// Count of elements with key(elem) <= probe (the splitter upper bound u_i).
template <class T, class K, class KeyFn>
usize count_below_equal(std::span<const T> sorted, K probe, KeyFn key) {
  const auto it = std::upper_bound(
      sorted.begin(), sorted.end(), probe,
      [&](const K& p, const T& elem) { return p < key(elem); });
  return static_cast<usize>(it - sorted.begin());
}

/// Is the local partition sorted under the key projection?
template <class T, class KeyFn>
bool is_locally_sorted(std::span<const T> data, KeyFn key) {
  return std::is_sorted(data.begin(), data.end(), [&](const T& a, const T& b) {
    return key(a) < key(b);
  });
}

}  // namespace hds::core
