// Local (per-rank) sorting and searching primitives with simulated-time
// charges. The paper's superstep 1 ("Local Sort") and the binary-search
// local histogramming of Alg. 3 both go through here so every bench and the
// phase breakdown see consistent costs.
//
// Sorting dispatches over a kernel layer: the comparison kernel (introsort,
// the seed behaviour) or the LSD radix kernel of radix_sort.h, selected
// explicitly or — under LocalSortKernel::Auto — by a crossover derived from
// the machine model's calibrated per-element constants. Simulated charges
// always reflect the kernel that actually ran, so phase breakdowns stay
// comparable across kernels (see DESIGN.md, "Local-sort kernel layer").
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>
#include <string_view>
#include <vector>

#include "core/key_traits.h"
#include "core/radix_sort.h"
#include "net/machine.h"
#include "net/sim.h"
#include "runtime/comm.h"

namespace hds::core {

/// Identity key projection. A named type (rather than an ad-hoc lambda) so
/// the kernel dispatch can recognize "the record is the key" and radix-sort
/// the array directly without materializing (key, value) pairs.
struct IdentityKey {
  template <class V>
  constexpr const V& operator()(const V& v) const {
    return v;
  }
};

/// Which local-sort kernel to run.
enum class LocalSortKernel : u8 {
  Comparison,  ///< std::sort (introsort) — the seed behaviour
  Radix,       ///< LSD radix over the KeyTraits projection (radix_sort.h)
  Auto,        ///< Radix iff the key is Bisectable and n clears the
               ///< calibrated crossover; Comparison otherwise
};

constexpr std::string_view kernel_name(LocalSortKernel k) {
  switch (k) {
    case LocalSortKernel::Comparison: return "comparison";
    case LocalSortKernel::Radix: return "radix";
    case LocalSortKernel::Auto: return "auto";
  }
  return "?";
}

/// Below this n the radix kernel's histogram setup (key_bytes * 256 counters
/// plus one full read) dominates any pass savings.
inline constexpr usize kRadixMinN = 512;

/// Auto-crossover size for a key of `key_bits` bits, derived from the
/// machine model's calibrated constants: the comparison kernel costs
/// k_cmp * n * log2(n), the radix kernel k_rad * n * passes, so they break
/// even at log2(n) = passes * k_rad / k_cmp. A freshly calibrated model
/// (net/calibrate.cpp measures both constants on the build host) keeps this
/// threshold honest on hardware the defaults were not tuned for.
inline usize radix_crossover_n(const net::MachineModel& m, int key_bits) {
  const int passes = (key_bits + radix_detail::kDigitBits - 1) /
                     radix_detail::kDigitBits;
  const double k_cmp = std::max(m.sort_s_per_elem_log, 1e-15);
  const double breakeven_log2n =
      static_cast<double>(passes) * m.radix_s_per_elem_pass / k_cmp;
  if (breakeven_log2n >= 62.0) return std::numeric_limits<usize>::max();
  const double n = std::exp2(breakeven_log2n);
  return std::max(kRadixMinN, static_cast<usize>(n));
}

/// Resolve Auto to a concrete kernel for key type K and input size n.
/// Non-bisectable keys always resolve to Comparison (there is no uint
/// projection to radix over), even when Radix was requested explicitly.
template <class K>
LocalSortKernel resolve_local_sort_kernel(const net::MachineModel& m, usize n,
                                          LocalSortKernel requested) {
  if constexpr (!Bisectable<K>) {
    (void)m;
    (void)n;
    return LocalSortKernel::Comparison;
  } else {
    if (requested != LocalSortKernel::Auto) return requested;
    return n >= radix_crossover_n(m, KeyTraits<K>::key_bits)
               ? LocalSortKernel::Radix
               : LocalSortKernel::Comparison;
  }
}

/// Sort the local partition by a key projection; charged as the shared
/// memory sort of superstep 1 with the cost of the kernel that ran.
template <class T, class KeyFn>
void local_sort(runtime::Comm& comm, std::vector<T>& data, KeyFn key,
                LocalSortKernel kernel = LocalSortKernel::Auto) {
  using K = std::decay_t<decltype(key(std::declval<T>()))>;
  if constexpr (Bisectable<K>) {
    if (resolve_local_sort_kernel<K>(comm.machine(), data.size(), kernel) ==
        LocalSortKernel::Radix) {
      RadixSortStats st;
      if constexpr (std::is_same_v<KeyFn, IdentityKey> && Bisectable<T>) {
        st = radix_sort_keys(data);
      } else {
        st = radix_sort_by_key(data, key);
      }
      comm.charge_radix_sort(data.size(), st.passes_executed, st.used_pairs);
      return;
    }
  }
  std::sort(data.begin(), data.end(),
            [&](const T& a, const T& b) { return key(a) < key(b); });
  comm.charge_sort(data.size());
}

/// Count of elements with key(elem) < probe (the splitter lower bound l_i).
template <class T, class K, class KeyFn>
usize count_below(std::span<const T> sorted, K probe, KeyFn key) {
  const auto it = std::lower_bound(
      sorted.begin(), sorted.end(), probe,
      [&](const T& elem, const K& p) { return key(elem) < p; });
  return static_cast<usize>(it - sorted.begin());
}

/// Count of elements with key(elem) <= probe (the splitter upper bound u_i).
template <class T, class K, class KeyFn>
usize count_below_equal(std::span<const T> sorted, K probe, KeyFn key) {
  const auto it = std::upper_bound(
      sorted.begin(), sorted.end(), probe,
      [&](const K& p, const T& elem) { return p < key(elem); });
  return static_cast<usize>(it - sorted.begin());
}

/// (count_below, count_below_equal) for a whole batch of ASCENDING probes in
/// one forward sweep: each probe's searches are restricted to the subrange
/// right of the previous probe's upper bound, so A probes over n elements
/// cost ~A * log2(n / A) steps instead of A * log2(n). Equal adjacent
/// probes reuse the previous answer.
template <class T, class K, class KeyFn>
void batched_counts(std::span<const T> sorted, std::span<const K> probes,
                    KeyFn key, usize* lb_out, usize* ub_out) {
  usize pos = 0;
  for (usize i = 0; i < probes.size(); ++i) {
    if (i > 0 && !(probes[i - 1] < probes[i])) {
      lb_out[i] = lb_out[i - 1];
      ub_out[i] = ub_out[i - 1];
      continue;
    }
    const auto lo = std::lower_bound(
        sorted.begin() + pos, sorted.end(), probes[i],
        [&](const T& elem, const K& p) { return key(elem) < p; });
    const auto hi = std::upper_bound(
        lo, sorted.end(), probes[i],
        [&](const K& p, const T& elem) { return p < key(elem); });
    lb_out[i] = static_cast<usize>(lo - sorted.begin());
    ub_out[i] = static_cast<usize>(hi - sorted.begin());
    pos = ub_out[i];
  }
}

/// Is the local partition sorted under the key projection?
template <class T, class KeyFn>
bool is_locally_sorted(std::span<const T> data, KeyFn key) {
  return std::is_sorted(data.begin(), data.end(), [&](const T& a, const T& b) {
    return key(a) < key(b);
  });
}

}  // namespace hds::core
