#include "workload/distributions.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace hds::workload {

std::string_view dist_name(Dist d) {
  switch (d) {
    case Dist::Uniform: return "uniform";
    case Dist::Normal: return "normal";
    case Dist::Exponential: return "exponential";
    case Dist::Zipf: return "zipf";
    case Dist::NearlySorted: return "nearly-sorted";
    case Dist::ReverseSorted: return "reverse-sorted";
    case Dist::AllEqual: return "all-equal";
    case Dist::FewDistinct: return "few-distinct";
    case Dist::Staircase: return "staircase";
  }
  return "?";
}

Dist dist_from_name(std::string_view name) {
  for (Dist d : all_dists())
    if (dist_name(d) == name) return d;
  throw argument_error("unknown distribution: " + std::string(name));
}

const std::vector<Dist>& all_dists() {
  static const std::vector<Dist> kAll = {
      Dist::Uniform,       Dist::Normal,     Dist::Exponential,
      Dist::Zipf,          Dist::NearlySorted, Dist::ReverseSorted,
      Dist::AllEqual,      Dist::FewDistinct,  Dist::Staircase,
  };
  return kAll;
}

usize rank_count(const GenConfig& cfg, int rank, usize n) {
  if (cfg.sparsity > 0.0) {
    const u64 h = hash_mix(cfg.seed ^ 0x5b5e5ca11ab1e5ULL,
                           static_cast<u64>(rank));
    if (static_cast<double>(h % 1000) < cfg.sparsity * 1000.0) return 0;
  }
  return n;
}

namespace {

Xoshiro256 rank_rng(const GenConfig& cfg, int rank) {
  return Xoshiro256(hash_mix(cfg.seed, static_cast<u64>(rank)));
}

/// Bounded Zipf sampler over {1..alphabet} via inverse-CDF on a precomputed
/// table (alphabet is small by construction).
class ZipfSampler {
 public:
  ZipfSampler(u64 alphabet, double s) : cdf_(alphabet) {
    HDS_CHECK(alphabet >= 1);
    double sum = 0.0;
    for (u64 k = 1; k <= alphabet; ++k)
      sum += 1.0 / std::pow(static_cast<double>(k), s);
    double acc = 0.0;
    for (u64 k = 1; k <= alphabet; ++k) {
      acc += 1.0 / std::pow(static_cast<double>(k), s) / sum;
      cdf_[k - 1] = acc;
    }
    cdf_.back() = 1.0;
  }

  u64 operator()(Xoshiro256& rng) const {
    const double u = rng.uniform01();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<u64>(it - cdf_.begin()) + 1;
  }

 private:
  std::vector<double> cdf_;
};

template <class T>
std::vector<T> generate_impl(const GenConfig& cfg, int rank, int nranks,
                             usize n) {
  HDS_CHECK(nranks >= 1);
  HDS_CHECK(rank >= 0 && rank < nranks);
  const usize count = rank_count(cfg, rank, n);
  std::vector<T> out;
  out.reserve(count);
  if (count == 0) return out;
  Xoshiro256 rng = rank_rng(cfg, rank);
  const double span = static_cast<double>(cfg.hi - cfg.lo);

  switch (cfg.dist) {
    case Dist::Uniform:
      if constexpr (std::is_floating_point_v<T>) {
        for (usize i = 0; i < count; ++i)
          out.push_back(static_cast<T>(
              static_cast<double>(cfg.lo) + rng.uniform01() * span));
      } else {
        for (usize i = 0; i < count; ++i)
          out.push_back(static_cast<T>(rng.uniform_u64(cfg.lo, cfg.hi)));
      }
      break;
    case Dist::Normal:
      for (usize i = 0; i < count; ++i) {
        const double v = cfg.mean + cfg.stddev * rng.normal();
        if constexpr (std::is_floating_point_v<T>) {
          out.push_back(static_cast<T>(v));
        } else {
          // Shift into the configured non-negative range, clamped.
          const double centered =
              static_cast<double>(cfg.lo) + span / 2.0 + v * span / 8.0;
          const double clamped = std::clamp(
              centered, static_cast<double>(cfg.lo), static_cast<double>(cfg.hi));
          out.push_back(static_cast<T>(clamped));
        }
      }
      break;
    case Dist::Exponential:
      for (usize i = 0; i < count; ++i) {
        const double v = rng.exponential(4.0 / std::max(span, 1.0));
        if constexpr (std::is_floating_point_v<T>) {
          out.push_back(static_cast<T>(v));
        } else {
          out.push_back(static_cast<T>(
              std::min(static_cast<double>(cfg.hi),
                       static_cast<double>(cfg.lo) + v)));
        }
      }
      break;
    case Dist::Zipf: {
      const ZipfSampler zipf(cfg.alphabet == 0 ? 1024 : cfg.alphabet * 64,
                             cfg.zipf_s);
      for (usize i = 0; i < count; ++i)
        out.push_back(static_cast<T>(zipf(rng)));
      break;
    }
    case Dist::NearlySorted: {
      // Globally ascending ramp with ±1% local jitter.
      const double g0 = static_cast<double>(rank) * static_cast<double>(count);
      const double total =
          static_cast<double>(nranks) * static_cast<double>(count);
      for (usize i = 0; i < count; ++i) {
        const double pos = (g0 + static_cast<double>(i)) / std::max(total, 1.0);
        const double jitter = (rng.uniform01() - 0.5) * 0.02;
        const double t = std::clamp(pos + jitter, 0.0, 1.0);
        out.push_back(static_cast<T>(static_cast<double>(cfg.lo) + t * span));
      }
      break;
    }
    case Dist::ReverseSorted: {
      const double g0 = static_cast<double>(rank) * static_cast<double>(count);
      const double total =
          static_cast<double>(nranks) * static_cast<double>(count);
      for (usize i = 0; i < count; ++i) {
        const double pos =
            1.0 - (g0 + static_cast<double>(i)) / std::max(total, 1.0);
        out.push_back(static_cast<T>(static_cast<double>(cfg.lo) + pos * span));
      }
      break;
    }
    case Dist::AllEqual:
      out.assign(count, static_cast<T>(cfg.lo + (cfg.hi - cfg.lo) / 2));
      break;
    case Dist::FewDistinct: {
      const u64 a = std::max<u64>(cfg.alphabet, 1);
      for (usize i = 0; i < count; ++i) {
        const u64 k = rng.uniform_u64(0, a - 1);
        out.push_back(static_cast<T>(cfg.lo + k * ((cfg.hi - cfg.lo) /
                                                   std::max<u64>(a, 1))));
      }
      break;
    }
    case Dist::Staircase: {
      // Rank r's keys live in the r-th slice of the range: the input is
      // already nearly range-partitioned but in rank-reversed order, which
      // defeats random samplers and produces maximal exchange volume.
      const int slice = nranks - 1 - rank;
      const double w = span / static_cast<double>(nranks);
      const double base = static_cast<double>(cfg.lo) + w * slice;
      for (usize i = 0; i < count; ++i)
        out.push_back(static_cast<T>(base + rng.uniform01() * w));
      break;
    }
  }
  return out;
}

}  // namespace

std::vector<u64> generate_u64(const GenConfig& cfg, int rank, int nranks,
                              usize n) {
  return generate_impl<u64>(cfg, rank, nranks, n);
}

std::vector<double> generate_f64(const GenConfig& cfg, int rank, int nranks,
                                 usize n) {
  return generate_impl<double>(cfg, rank, nranks, n);
}

std::vector<u32> generate_u32(const GenConfig& cfg, int rank, int nranks,
                              usize n) {
  GenConfig c = cfg;
  c.hi = std::min<u64>(c.hi, 0xffffffffULL);
  return generate_impl<u32>(c, rank, nranks, n);
}

}  // namespace hds::workload
