// Input workload generators for the sorting experiments.
//
// Every generator is deterministic in (seed, rank, nranks): each rank fills
// its local partition independently of thread scheduling, so any experiment
// can be reproduced bit-for-bit. The distributions cover the paper's
// benchmark inputs (uniform u64 in [0, 1e9], normal doubles) plus the skewed,
// nearly-sorted, duplicate-heavy and sparse cases Sec. V-A discusses.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace hds::workload {

enum class Dist : u8 {
  Uniform,       ///< uniform over a configurable range (paper: [0, 1e9])
  Normal,        ///< normal, mean/stddev configurable
  Exponential,   ///< exponential tail — mild skew
  Zipf,          ///< heavy skew, many duplicates of small values
  NearlySorted,  ///< globally ascending with local perturbations
  ReverseSorted, ///< globally descending
  AllEqual,      ///< every key identical — worst case for pure bisection
  FewDistinct,   ///< keys drawn from a tiny alphabet
  Staircase,     ///< rank r holds keys clustered around r — adversarial for
                 ///< samplers, easy for histogramming
};

std::string_view dist_name(Dist d);
/// Parse a name as produced by dist_name; throws argument_error on unknown.
Dist dist_from_name(std::string_view name);
/// All generators, for parameterized sweeps.
const std::vector<Dist>& all_dists();

struct GenConfig {
  Dist dist = Dist::Uniform;
  u64 seed = 42;
  // Uniform / integral range:
  u64 lo = 0;
  u64 hi = 1'000'000'000;  ///< the paper's strong/weak scaling range
  // Normal:
  double mean = 0.0;
  double stddev = 1.0;
  // Zipf / FewDistinct:
  double zipf_s = 1.2;
  u64 alphabet = 16;
  /// Fraction of ranks that contribute zero elements (sparse partitioning,
  /// Sec. VII). Rank r is empty iff hash(seed, r) mod 1000 < sparsity*1000.
  double sparsity = 0.0;
};

/// Number of elements rank `rank` generates when the nominal per-rank count
/// is `n` (zero if the rank is sparse-empty).
usize rank_count(const GenConfig& cfg, int rank, usize n);

/// Fill rank `rank`'s local partition with `n` nominal elements of u64 keys.
std::vector<u64> generate_u64(const GenConfig& cfg, int rank, int nranks,
                              usize n);

/// Same for doubles (Normal/Uniform/Exponential use the real-valued law;
/// integral laws are cast).
std::vector<double> generate_f64(const GenConfig& cfg, int rank, int nranks,
                                 usize n);

/// Fill for 32-bit keys (values reduced mod 2^32-aware range).
std::vector<u32> generate_u32(const GenConfig& cfg, int rank, int nranks,
                              usize n);

}  // namespace hds::workload
