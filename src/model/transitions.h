// Model-checker transition table: how the controlled scheduler and the
// static schedule matcher treat each communication op. Every obs::OpKind
// must appear here explicitly (lint rule opid-coverage, mirroring the
// HB-edge table in check/race_detector.cpp) so a future op cannot silently
// get no scheduling/matching semantics.
#pragma once

#include "obs/events.h"

namespace hds::model {

/// Scheduling/matching class of an op.
enum class Transition : u32 {
  Local = 0,    ///< no blocking site, no cross-rank matching obligation
  Collective,   ///< two-barrier arena op: must match across all members
  SendLike,     ///< enqueues into a peer mailbox; pairs with a RecvLike
  RecvLike,     ///< blocks on a mailbox channel; pairs with a SendLike
  Rendezvous,   ///< recovery agreement: full-team blocking rendezvous
  Transfer,     ///< charged transfer outside the mailbox (checkpoint I/O)
};

/// Exhaustive OpKind -> Transition mapping (no default: -Wswitch keeps it
/// in sync with the enum; lint keeps it in sync with the matcher/explorer).
constexpr Transition transition_of(obs::OpKind op) {
  switch (op) {
    case obs::OpKind::None: return Transition::Local;
    case obs::OpKind::Barrier: return Transition::Collective;
    case obs::OpKind::Broadcast: return Transition::Collective;
    case obs::OpKind::Allreduce: return Transition::Collective;
    case obs::OpKind::Allgather: return Transition::Collective;
    case obs::OpKind::Allgatherv: return Transition::Collective;
    case obs::OpKind::Gatherv: return Transition::Collective;
    case obs::OpKind::Alltoall: return Transition::Collective;
    case obs::OpKind::Alltoallv: return Transition::Collective;
    case obs::OpKind::Exscan: return Transition::Collective;
    case obs::OpKind::Scan: return Transition::Collective;
    case obs::OpKind::Split: return Transition::Collective;
    case obs::OpKind::Send: return Transition::SendLike;
    case obs::OpKind::Recv: return Transition::RecvLike;
    case obs::OpKind::Compute: return Transition::Local;
    case obs::OpKind::Agree: return Transition::Rendezvous;
    case obs::OpKind::Checkpoint: return Transition::Transfer;
    case obs::OpKind::SampleGather: return Transition::Collective;
  }
  return Transition::Local;
}

}  // namespace hds::model
