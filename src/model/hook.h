// hds::model — scheduler hook contract (DESIGN.md sec. 15).
//
// The runtime's blocking primitives (Barrier, Mailbox, BorrowState, the
// recovery rendezvous) consult an optional ScheduleHook installed via
// TeamConfig::model. With no hook installed (the default), every primitive
// behaves exactly as before — the hook pointer is the only overhead, and
// simulated times are bit-identical.
//
// With a hook installed, a blocking site parks through ScheduleHook::park
// instead of waiting on its condition variable: the calling rank registers
// its wait predicate and yields, and the controlled scheduler (a baton
// passed between rank threads — see model/controlled_scheduler.h) resumes
// exactly one enabled rank at a time under a chosen interleaving. The
// predicate is evaluated by the scheduler while *no* rank is running, so it
// may take the primitive's own mutex without contention.
//
// Contract for a hooked wait site:
//   1. never park while holding the primitive's mutex;
//   2. the `ready` predicate must be monotone under the actions of other
//      ranks (once true it can only be re-falsified by the parked rank's
//      own resumed step) and must return true when the team is aborting;
//   3. after park() returns, re-check the condition under the mutex — the
//      scheduler may have released the rank in abort mode.
//
// The hook also carries the seeded protocol-mutation switches the explorer
// uses to prove it has teeth (skip a borrow-token wait, reorder one mailbox
// delivery, drop a barrier entry), and effect notes that feed the
// sleep-set/DPOR independence relation.
#pragma once

#include <functional>
#include <string_view>

#include "common/types.h"

namespace hds::model {

/// Where a rank parks (the model checker's transition vocabulary for
/// blocking sites; the communication-op vocabulary is obs::OpKind, mapped
/// by model/transitions.h).
enum class Site : u32 {
  Start = 0,    ///< rank thread registered, not yet scheduled
  Barrier = 1,  ///< runtime::Barrier::wait (epoch barriers)
  Mailbox = 2,  ///< runtime::Mailbox::pop, channel (a=src, b=tag)
  Borrow = 3,   ///< runtime::BorrowState::wait / wait_nothrow
  Recovery = 4, ///< Team::recover survivor rendezvous
};

constexpr std::string_view site_name(Site s) {
  switch (s) {
    case Site::Start: return "start";
    case Site::Barrier: return "barrier";
    case Site::Mailbox: return "mailbox";
    case Site::Borrow: return "borrow";
    case Site::Recovery: return "recovery";
  }
  return "?";
}

class ScheduleHook {
 public:
  virtual ~ScheduleHook() = default;

  /// Called first thing on each rank thread; parks until scheduled (the
  /// initial state of a controlled run is "every rank parked at Start").
  /// Establishes the calling thread's rank identity for every later call.
  virtual void rank_started(int world) = 0;
  /// Called when the rank function returns or unwinds; releases the baton.
  virtual void rank_finished() = 0;

  /// Park the calling rank at a blocking site. `obj` identifies the
  /// primitive instance, (a, b) the channel within it (mailbox src/tag).
  /// Returns once the scheduler selected this rank with `ready()` true, or
  /// immediately in abort mode (caller re-checks its condition).
  virtual void park(Site site, const void* obj, u64 a, u64 b,
                    const std::function<bool()>& ready) = 0;

  /// Record a visible effect of the currently running rank's step (a
  /// mailbox push, a barrier arrival, a borrow signal) for the
  /// independence relation. `obj`/(a, b) as for park().
  virtual void note_effect(Site site, const void* obj, u64 a, u64 b) = 0;

  /// True once the scheduler abandoned the run (deadlock detected or step
  /// budget exhausted) and released every parked rank so it can unwind.
  /// Sites whose wait condition is not tied to the team abort flag (the
  /// recovery rendezvous runs *during* aborts by design) consult this
  /// after park() to distinguish a scheduler abandon from a wakeup.
  virtual bool run_abandoned() const = 0;

  // --- seeded protocol mutations (explorer self-tests) ----------------------
  /// True iff the current rank's Nth Barrier::wait entry should be dropped
  /// (the rank skips the barrier entirely).
  virtual bool mutate_drop_barrier() = 0;
  /// True iff this push into an already-non-empty (src, tag) channel of
  /// `dst_world`'s mailbox should be delivered ahead of the queued messages
  /// (a FIFO-order violation on one channel).
  virtual bool mutate_reorder_push(int dst_world, int src, u64 tag) = 0;
  /// True iff the current rank's Nth explicit BorrowToken::wait should be
  /// skipped (the loan is abandoned to the token's destructor).
  virtual bool mutate_skip_borrow_wait() = 0;

  /// A BorrowToken was destroyed with its loan still pending and no
  /// exception in flight — the "unwaited token" discipline violation the
  /// terminal-state check reports.
  virtual void note_borrow_dtor_drain() = 0;
};

}  // namespace hds::model
