// hds::model static schedule matcher — recording half.
//
// A ScheduleRecorder installed via TeamConfig::recorder turns a run into a
// ghost schedule capture: every Comm::note_op appends one symbolic record
// (world rank, communicator signature, op, class, peer, tag) before any
// payload moves or any barrier is entered. Payload movement and simulated
// time are untouched — the recorder is a pure tap — and because the record
// lands *before* the op executes, the per-rank schedules survive a
// collective_mismatch abort, which is exactly when the matcher is most
// useful: it reports the first cross-rank divergence instead of the
// runtime's "members entered different collectives" postmortem.
//
// verify() lints the captured schedules:
//   1. on every communicator, all member ranks issued the identical
//      sequence of arena collectives (transition_of(op) == Collective —
//      P2P, Agree and Checkpoint are excluded so legal cross-collective
//      loan patterns and recovery rendezvous don't false-positive);
//   2. every (src, dst, tag) send count equals the matching recv count;
//   3. every borrowed-payload loan was explicitly waited (BorrowToken::wait,
//      not the destructor) before the run ended.
//
// Header-only on purpose: runtime/comm.h calls the recording taps inline,
// and hds_model links hds_runtime — an out-of-line recorder would make the
// two libraries mutually dependent.
#pragma once

#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "common/types.h"
#include "model/transitions.h"
#include "obs/events.h"

namespace hds::model {

/// One symbolic schedule record (one Comm::note_op call).
struct OpRecord {
  u64 comm_sig = 0;  ///< signature of the communicator's member list
  obs::OpKind op = obs::OpKind::None;
  obs::OpClass cls = obs::OpClass::None;
  i32 peer = -1;  ///< world rank of root/partner, -1 if none
  u64 tag = 0;
};

class ScheduleRecorder {
 public:
  /// Tap from Comm::note_op. Thread-safe (every rank thread records).
  void note_op(rank_t world, const std::vector<rank_t>& members,
               obs::OpKind op, obs::OpClass cls, i32 peer, u64 tag) {
    const u64 sig = signature(members);
    std::lock_guard lock(mu_);
    comms_.try_emplace(sig, members);
    by_rank_[world].push_back(OpRecord{sig, op, cls, peer, tag});
  }

  /// A borrowed-payload loan opened by `world` (key = BorrowState address).
  void note_loan_open(rank_t world, const void* loan) {
    std::lock_guard lock(mu_);
    open_loans_[loan] = world;
    ++loans_opened_;
  }

  /// The loan was explicitly waited (BorrowToken::wait reached done).
  void note_loan_closed(const void* loan) {
    std::lock_guard lock(mu_);
    if (open_loans_.erase(loan) != 0) ++loans_waited_;
  }

  /// Lint the captured schedules; empty = the communication schedule
  /// matches across ranks. Call after Team::run returned (or threw).
  std::vector<std::string> verify() const {
    std::lock_guard lock(mu_);
    std::vector<std::string> issues;
    verify_collective_sequences(issues);
    verify_send_recv_pairing(issues);
    for (const auto& [loan, rank] : open_loans_) {
      std::ostringstream os;
      os << "borrowed-payload loan from rank " << rank
         << " never explicitly waited (BorrowToken::wait)";
      issues.push_back(os.str());
    }
    return issues;
  }

  /// Total records captured (all ranks).
  usize ops() const {
    std::lock_guard lock(mu_);
    usize n = 0;
    for (const auto& [rank, recs] : by_rank_) n += recs.size();
    return n;
  }

  /// Distinct communicator signatures seen.
  usize communicators() const {
    std::lock_guard lock(mu_);
    return comms_.size();
  }

  /// Loans opened / explicitly waited (matcher report fields).
  usize loans_opened() const {
    std::lock_guard lock(mu_);
    return loans_opened_;
  }
  usize loans_waited() const {
    std::lock_guard lock(mu_);
    return loans_waited_;
  }

  void clear() {
    std::lock_guard lock(mu_);
    by_rank_.clear();
    comms_.clear();
    open_loans_.clear();
    loans_opened_ = 0;
    loans_waited_ = 0;
  }

 private:
  /// FNV-1a over the member list: stable signature for "the same
  /// communicator" across ranks (every member publishes the identical,
  /// split-ordered list).
  static u64 signature(const std::vector<rank_t>& members) {
    u64 h = 1469598103934665603ull;
    for (rank_t r : members) {
      h ^= static_cast<u64>(static_cast<i64>(r));
      h *= 1099511628211ull;
    }
    return h;
  }

  /// Check 1: identical arena-collective sequence per communicator. The op
  /// kind — not just the class — must match position by position; a member
  /// that issued nothing on a communicator it belongs to is a divergence
  /// too (it will park at some other site while its peers wait here).
  void verify_collective_sequences(std::vector<std::string>& issues) const {
    std::map<u64, std::map<rank_t, std::vector<obs::OpKind>>> seq;
    for (const auto& [rank, recs] : by_rank_)
      for (const OpRecord& r : recs)
        if (transition_of(r.op) == Transition::Collective)
          seq[r.comm_sig][rank].push_back(r.op);

    for (const auto& [sig, per_rank] : seq) {
      const auto& members = comms_.at(sig);
      auto seq_of = [&](rank_t m) -> std::vector<obs::OpKind> {
        auto it = per_rank.find(m);
        return it != per_rank.end() ? it->second : std::vector<obs::OpKind>{};
      };
      const rank_t ref_rank = members.front();
      const std::vector<obs::OpKind> ref = seq_of(ref_rank);
      for (rank_t m : members) {
        if (m == ref_rank) continue;
        const std::vector<obs::OpKind> mine = seq_of(m);
        if (mine == ref) continue;
        usize i = 0;  // first divergence index
        while (i < ref.size() && i < mine.size() && ref[i] == mine[i]) ++i;
        std::ostringstream os;
        os << "collective sequence mismatch on communicator {";
        for (usize k = 0; k < members.size(); ++k)
          os << (k ? "," : "") << members[k];
        os << "}: rank " << ref_rank << " op[" << i << "]="
           << (i < ref.size() ? obs::op_kind_name(ref[i]) : "<end>")
           << " but rank " << m << " op[" << i << "]="
           << (i < mine.size() ? obs::op_kind_name(mine[i]) : "<end>");
        issues.push_back(os.str());
        break;  // one report per communicator keeps the lint readable
      }
    }
  }

  /// Check 2: sends key on (me -> peer, tag); recvs key on (peer -> me,
  /// tag). Equal multisets mean every posted message has a matching
  /// receive.
  void verify_send_recv_pairing(std::vector<std::string>& issues) const {
    std::map<std::tuple<rank_t, rank_t, u64>, i64> balance;
    for (const auto& [rank, recs] : by_rank_)
      for (const OpRecord& r : recs) {
        if (transition_of(r.op) == Transition::SendLike &&
            r.cls == obs::OpClass::Send)
          ++balance[{rank, static_cast<rank_t>(r.peer), r.tag}];
        else if (transition_of(r.op) == Transition::RecvLike)
          --balance[{static_cast<rank_t>(r.peer), rank, r.tag}];
      }
    for (const auto& [key, n] : balance) {
      if (n == 0) continue;
      const auto [src, dst, tag] = key;
      std::ostringstream os;
      if (n > 0)
        os << n << " unreceived send(s) " << src << " -> " << dst << " tag "
           << tag;
      else
        os << -n << " unmatched recv(s) at " << dst << " from " << src
           << " tag " << tag;
      issues.push_back(os.str());
    }
  }

  mutable std::mutex mu_;
  /// Per world rank, in issue order.
  std::map<rank_t, std::vector<OpRecord>> by_rank_;
  /// First-seen member list per communicator signature.
  std::map<u64, std::vector<rank_t>> comms_;
  /// Open loans: BorrowState address -> lender world rank.
  std::map<const void*, rank_t> open_loans_;
  usize loans_opened_ = 0;
  usize loans_waited_ = 0;
};

}  // namespace hds::model
