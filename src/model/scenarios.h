// Canonical model-checking scenarios (DESIGN.md sec. 15).
//
// One registry shared by examples/model_check (the CI driver),
// examples/quickstart --replay-schedule (counterexample replay) and
// tests/test_model.cpp, so a schedule file recorded by any of them replays
// against the identical closed system. Each scenario is deterministic by
// construction modulo the schedule: inputs derive from (rank, nranks) via
// seeded generators, so the explorer's determinism oracle is meaningful.
//
//   sort2 / sort3        full histogram sort, alltoallv exchange, P = 2 / 3
//   sort2-hypercube      full histogram sort, hypercube exchange, P = 2
//   mailbox              P = 4 ack-window protocol: three senders each push
//                        two same-channel messages with a blocking ack
//                        between them, so channel-queue contention (and the
//                        reorder-push mutation's trigger point) depends on
//                        the schedule
//   borrow               P = 4 borrowed-payload loans: rank 0 lends its
//                        buffer to every peer and must wait each token
//   recovery             P = 4 recoverable run: rank 2 crashes mid-round,
//                        survivors rendezvous in recover_survivors() and
//                        finish on the shrunk team
#pragma once

#include <string>
#include <vector>

#include "core/histogram_sort.h"
#include "model/explorer.h"
#include "runtime/comm.h"
#include "runtime/fault.h"
#include "runtime/team.h"
#include "workload/distributions.h"

namespace hds::model {

inline u64 digest_values(const std::vector<u64>& v) {
  u64 h = digest_init();
  for (u64 x : v) h = digest_mix(h, x);
  return h;
}

/// Full histogram sort at P ranks with the given config; digest = sorted
/// output bytes, so any schedule-dependent exchange or merge shows up.
inline Scenario sort_scenario(std::string name, int nranks,
                              core::SortConfig cfg, usize keys_per_rank) {
  Scenario s;
  s.name = std::move(name);
  s.nranks = nranks;
  s.body = [nranks, cfg, keys_per_rank](runtime::Comm& c) {
    workload::GenConfig gen;
    auto local =
        workload::generate_u64(gen, c.rank(), nranks, keys_per_rank);
    core::sort(c, local, cfg);
    return digest_values(local);
  };
  return s;
}

/// P = 4 mailbox micro-protocol. Every sender s in {1, 2, 3} pushes two
/// messages on its (s, tag) channel to rank 0, with a blocking ack between
/// them — so whether the second push finds the first still queued depends
/// on the schedule. The digest is the receiver's pop order: per-channel
/// FIFO makes it schedule-independent, which is exactly what the
/// reorder-push mutation breaks.
inline Scenario mailbox_scenario() {
  constexpr u64 kMsg = 11, kAck = 12;
  Scenario s;
  s.name = "mailbox";
  s.nranks = 4;
  s.body = [](runtime::Comm& c) -> u64 {
    if (c.rank() == 0) {
      std::vector<u64> seen;
      for (int src = 1; src < 4; ++src) {
        const u64 ack = 100 + static_cast<u64>(src);
        c.send<u64>(src, kAck, std::span<const u64>(&ack, 1));
      }
      for (int src = 1; src < 4; ++src)
        for (int i = 0; i < 2; ++i)
          for (u64 v : c.recv<u64>(src, kMsg)) seen.push_back(v);
      c.barrier();
      return digest_values(seen);
    }
    const u64 first = static_cast<u64>(c.rank()) * 10 + 1;
    const u64 second = static_cast<u64>(c.rank()) * 10 + 2;
    c.send<u64>(0, kMsg, std::span<const u64>(&first, 1));
    const auto ack = c.recv<u64>(0, kAck);  // blocks: contention point
    c.send<u64>(0, kMsg, std::span<const u64>(&second, 1));
    c.barrier();
    return digest_values(ack);
  };
  return s;
}

/// P = 4 borrowed-payload micro-protocol: rank 0 lends its send buffer to
/// every peer and must explicitly wait each token before the epoch closes
/// (the loan discipline the skip-borrow-wait mutation violates).
inline Scenario borrow_scenario() {
  constexpr u64 kTag = 7;
  Scenario s;
  s.name = "borrow";
  s.nranks = 4;
  s.body = [](runtime::Comm& c) -> u64 {
    if (c.rank() == 0) {
      std::vector<u64> payload(8);
      for (usize i = 0; i < payload.size(); ++i) payload[i] = 1000 + i;
      for (int dst = 1; dst < 4; ++dst) {
        auto token = c.send_borrowed<u64>(
            dst, kTag, std::span<const u64>(payload.data(), payload.size()));
        token.wait();
      }
      c.barrier();
      return digest_values(payload);
    }
    const auto got = c.recv<u64>(0, kTag);
    c.barrier();
    return digest_values(got);
  };
  return s;
}

/// P = 4 recoverable run: rank 2 crashes at its third communication op
/// (mid allreduce round), survivors unwind into the recover_survivors()
/// rendezvous (WaitSite::Recovery under the controlled scheduler) and
/// finish one round on the shrunk communicator.
inline Scenario recovery_scenario() {
  Scenario s;
  s.name = "recovery";
  s.nranks = 4;
  s.configure = [](runtime::TeamConfig& cfg) {
    cfg.recoverable = true;
    auto plan = std::make_shared<runtime::FaultPlan>();
    plan->crash_rank_at_op(/*rank=*/2, /*k=*/3);
    cfg.fault = std::move(plan);
  };
  s.body = [](runtime::Comm& c) -> u64 {
    u64 h = digest_init();
    auto add = [](u64 a, u64 b) { return a + b; };
    try {
      for (int round = 0; round < 3; ++round) {
        h = digest_mix(
            h, c.allreduce_value<u64>(static_cast<u64>(c.rank()) + 1, add));
        c.barrier();
      }
      return h;
    } catch (const runtime::team_aborted&) {
      runtime::Comm shrunk = c.recover_survivors();
      return digest_mix(h, shrunk.allreduce_value<u64>(
                               static_cast<u64>(shrunk.rank()) + 1, add));
    }
  };
  return s;
}

/// The registry quickstart --replay-schedule and model_check --explore
/// resolve names against. Sort scenarios use few keys per rank: the
/// schedule space, not the data volume, is what the explorer probes.
inline std::vector<Scenario> all_scenarios() {
  core::SortConfig plain;
  core::SortConfig hypercube;
  hypercube.exchange = core::ExchangeAlgorithm::Hypercube;
  return {
      sort_scenario("sort2", 2, plain, 48),
      sort_scenario("sort3", 3, plain, 48),
      sort_scenario("sort2-hypercube", 2, hypercube, 48),
      mailbox_scenario(),
      borrow_scenario(),
      recovery_scenario(),
  };
}

/// nullopt-free lookup: returns an empty-name Scenario when unknown.
inline Scenario find_scenario(const std::string& name) {
  for (Scenario& s : all_scenarios())
    if (s.name == name) return s;
  return Scenario{};
}

}  // namespace hds::model
