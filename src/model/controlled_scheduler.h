// ControlledScheduler — the ScheduleHook implementation that serializes a
// Team run into one enabled transition at a time (DESIGN.md sec. 15).
//
// Baton-passing design: there is no separate driver thread. Every rank
// thread parks itself (Site::Start on entry, then each blocking site), and
// the act of parking passes the baton — the parking thread runs the
// scheduling decision itself while no rank is running, evaluating the
// parked ranks' ready predicates contention-free, then wakes exactly one
// enabled rank. A "step" is therefore resume-to-next-park: everything a
// rank does between two blocking sites is one atomic transition, which is
// the right granularity here because the runtime's only cross-rank
// interaction points are the hooked blocking sites and their effects
// (mailbox pushes, barrier arrivals, borrow signals) — per-(src,tag) FIFO
// channels make any finer interleaving invisible to receivers.
//
// Decisions are recorded (enabled set, park footprints, chosen rank,
// observed effects) so the explorer can re-execute alternative prefixes and
// compute its independence relation. Deadlock (no enabled rank while some
// are unfinished) and step-budget exhaustion abandon the run: the team is
// poisoned, every parked rank is released, and the sites' post-park
// re-checks unwind each rank via team_aborted.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "model/hook.h"

namespace hds::runtime {
class Team;
}  // namespace hds::runtime

namespace hds::model {

/// Seeded protocol mutation (explorer self-tests): exactly one structural
/// fault injected at the hook layer, which the explorer must catch.
struct Mutation {
  enum class Kind : u32 {
    None = 0,
    DropBarrier = 1,     ///< `rank` skips its nth Barrier::wait entirely
    ReorderPush = 2,     ///< nth contended mailbox push jumps its channel's queue
    SkipBorrowWait = 3,  ///< `rank`'s nth BorrowToken::wait is skipped
  };
  Kind kind = Kind::None;
  int rank = 0;  ///< target rank (DropBarrier, SkipBorrowWait)
  int nth = 0;   ///< 0-based occurrence to mutate

  bool active() const { return kind != Kind::None; }
};

const char* mutation_kind_name(Mutation::Kind k);

/// Where an enabled rank was parked when a decision was taken, and what a
/// chosen step touched — the explorer's independence relation works on
/// these. Two footprints conflict iff they can affect each other's
/// enabledness or observed values: same primitive object, and for mailboxes
/// the same (src, tag) channel. Start and Recovery conservatively conflict
/// with everything.
struct Footprint {
  Site site = Site::Start;
  const void* obj = nullptr;
  u64 a = 0;
  u64 b = 0;
};

bool footprints_conflict(const Footprint& x, const Footprint& y);

/// One scheduling decision: who was enabled (with park footprints), who ran,
/// and the effects the chosen step produced before its next park.
struct StepRecord {
  std::vector<int> enabled;
  std::vector<Footprint> parked_at;  ///< parallel to `enabled`
  int chosen = -1;
  Footprint resume;                  ///< where the chosen rank was parked
  std::vector<Footprint> effects;    ///< noted during the chosen step
};

class ControlledScheduler final : public ScheduleHook {
 public:
  struct Config {
    int nranks = 2;
    /// Forced choices for the first decisions (replay / DFS prefix). Beyond
    /// the prefix, `pick` chooses; if unset, the lowest enabled rank runs.
    std::vector<int> prefix;
    std::function<int(const std::vector<int>& enabled)> pick;
    /// Abandon the run after this many decisions (runaway guard).
    usize max_steps = 200000;
    Mutation mutation{};
  };

  explicit ControlledScheduler(Config cfg);

  /// Attach the team under test; must be called before Team::run so the
  /// scheduler can poison it when it abandons a run.
  void attach(runtime::Team* team) { team_ = team; }

  // --- ScheduleHook ----------------------------------------------------------
  void rank_started(int world) override;
  void rank_finished() override;
  void park(Site site, const void* obj, u64 a, u64 b,
            const std::function<bool()>& ready) override;
  void note_effect(Site site, const void* obj, u64 a, u64 b) override;
  bool run_abandoned() const override {
    return abandoned_.load(std::memory_order_acquire);
  }
  bool mutate_drop_barrier() override;
  bool mutate_reorder_push(int dst_world, int src, u64 tag) override;
  bool mutate_skip_borrow_wait() override;
  void note_borrow_dtor_drain() override {
    dtor_drains_.fetch_add(1, std::memory_order_relaxed);
  }

  // --- post-run inspection ---------------------------------------------------
  bool deadlocked() const { return deadlock_; }
  bool budget_exhausted() const { return budget_hit_; }
  /// True iff a replayed prefix choice was not enabled when its decision
  /// came up (the schedule does not fit this run).
  bool replay_diverged() const { return replay_diverged_; }
  const std::string& deadlock_report() const { return deadlock_report_; }
  const std::vector<int>& choices() const { return choices_; }
  const std::vector<StepRecord>& steps() const { return steps_; }
  usize dtor_drains() const {
    return dtor_drains_.load(std::memory_order_relaxed);
  }

 private:
  struct RankState {
    bool registered = false;
    bool parked = false;
    bool finished = false;
    Footprint at{};
    const std::function<bool()>* ready = nullptr;  ///< valid while parked
  };

  /// Pass the baton: close the running step, evaluate predicates, pick the
  /// next rank (or detect completion / deadlock / budget). Caller holds mu_.
  void schedule_next_locked();
  void abandon_locked(bool deadlock);
  std::string wait_for_report_locked() const;

  Config cfg_;
  runtime::Team* team_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<RankState> ranks_;
  int started_ = 0;
  int running_ = -1;  ///< rank holding the baton; -1 while deciding
  usize decision_ = 0;
  std::vector<int> choices_;
  std::vector<StepRecord> steps_;
  bool deadlock_ = false;
  bool budget_hit_ = false;
  bool replay_diverged_ = false;
  std::string deadlock_report_;

  std::atomic<bool> abandoned_{false};
  std::atomic<usize> dtor_drains_{0};
  /// Mutation occurrence counters. reorder_seen_ is atomic because
  /// mutate_reorder_push is called under the mailbox mutex and must not
  /// take mu_ (lock-order hygiene); the others run lock-free too for
  /// symmetry.
  std::atomic<int> barrier_seen_{0};
  std::atomic<int> reorder_seen_{0};
  std::atomic<int> skip_seen_{0};
};

}  // namespace hds::model
