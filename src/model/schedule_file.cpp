#include "model/schedule_file.h"

#include <fstream>
#include <sstream>

namespace hds::model {

bool write_schedule(const std::string& path, const ScheduleFile& s) {
  std::ofstream out(path);
  if (!out) return false;
  out << "hds-schedule v1\n";
  out << "scenario " << (s.scenario.empty() ? "unnamed" : s.scenario) << "\n";
  if (s.mutation.active())
    out << "mutation " << mutation_kind_name(s.mutation.kind) << " "
        << s.mutation.rank << " " << s.mutation.nth << "\n";
  out << "steps " << s.choices.size() << "\n";
  for (int c : s.choices) out << c << "\n";
  return static_cast<bool>(out);
}

std::optional<ScheduleFile> read_schedule(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string line;
  if (!std::getline(in, line) || line != "hds-schedule v1")
    return std::nullopt;

  ScheduleFile s;
  usize steps = 0;
  bool saw_steps = false;
  while (!saw_steps && std::getline(in, line)) {
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "scenario") {
      ls >> s.scenario;
    } else if (key == "mutation") {
      std::string kind;
      ls >> kind >> s.mutation.rank >> s.mutation.nth;
      if (kind == "drop-barrier")
        s.mutation.kind = Mutation::Kind::DropBarrier;
      else if (kind == "reorder-push")
        s.mutation.kind = Mutation::Kind::ReorderPush;
      else if (kind == "skip-borrow-wait")
        s.mutation.kind = Mutation::Kind::SkipBorrowWait;
      else
        return std::nullopt;
      if (ls.fail()) return std::nullopt;
    } else if (key == "steps") {
      ls >> steps;
      if (ls.fail()) return std::nullopt;
      saw_steps = true;
    } else if (key.empty() || key[0] == '#') {
      continue;  // blank / comment
    } else {
      return std::nullopt;
    }
  }
  if (!saw_steps) return std::nullopt;
  s.choices.reserve(steps);
  for (usize i = 0; i < steps; ++i) {
    int c = -1;
    if (!(in >> c) || c < 0) return std::nullopt;
    s.choices.push_back(c);
  }
  return s;
}

}  // namespace hds::model
