// Bounded schedule-space explorer (DESIGN.md sec. 15).
//
// Re-execution DFS over the decision tree of a controlled scenario: run the
// scenario once under the default (lowest-enabled-rank) schedule, then for
// every decision where more than one rank was enabled, fork alternative
// prefixes and re-run. Pruning is sleep-set-style: an alternative rank r at
// decision d is explored only if r's park footprint at d conflicts with the
// footprint of the step actually taken (its resume site plus every effect
// it produced before its next park) — independent steps commute, so the
// alternative order reaches the same state. Exhaustive mode
// (ExploreConfig::exhaustive, CI's HDS_MODEL_DEEP=1) disables pruning.
//
// Every terminal state is checked against the oracles:
//   - deadlock (empty enabled set with unfinished ranks), with a wait-for
//     report naming each parked rank's site;
//   - step/run budget exhaustion (reported, not an error);
//   - undelivered messages, unwaited BorrowTokens (destructor drains), and
//     un-reset barriers/arenas at quiescence;
//   - determinism: byte-identical per-rank output digests and exact final
//     SimClock equality against the first completed schedule (the
//     reference) — the repository's "simulated time is a function of the
//     inputs, not the host interleaving" claim, proven over every explored
//     interleaving.
//
// The first failing run's choice sequence is kept as a replayable
// counterexample (model/schedule_file.h).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "model/controlled_scheduler.h"

namespace hds::runtime {
class Comm;
struct TeamConfig;
}  // namespace hds::runtime

namespace hds::model {

/// A closed scenario the explorer can re-execute at will: P ranks running
/// `body`, which returns a digest of this rank's observable output (sorted
/// slice hash, protocol transcript hash, ...). The digest — not the raw
/// output — is what the determinism oracle compares across schedules.
struct Scenario {
  std::string name;
  int nranks = 2;
  std::function<u64(runtime::Comm&)> body;
  /// Optional TeamConfig customization run before each controlled run
  /// (recoverable mode, a fresh FaultPlan, ...). The harness overwrites
  /// nranks and the model hook afterwards, so only set auxiliary fields.
  std::function<void(runtime::TeamConfig&)> configure;
};

/// FNV-1a helper for scenario bodies building output digests.
inline u64 digest_init() { return 1469598103934665603ull; }
inline u64 digest_mix(u64 h, u64 v) {
  h ^= v;
  h *= 1099511628211ull;
  return h;
}

/// Outcome of one controlled run of a scenario.
struct RunOutcome {
  bool completed = false;  ///< every rank returned normally
  bool deadlock = false;
  bool budget_exhausted = false;
  bool replay_diverged = false;
  std::string error;  ///< first error message (empty if completed)
  std::string deadlock_report;
  std::vector<int> choices;
  std::vector<StepRecord> steps;
  std::vector<u64> digests;       ///< per-rank, valid when completed
  std::vector<double> final_times;  ///< per-rank SimClock, valid when completed
  usize undelivered = 0;
  usize dtor_drains = 0;
  std::vector<std::string> quiescence;
};

/// Execute one controlled run: forced `prefix` choices, then
/// lowest-enabled-rank. `max_steps` bounds the decisions per run.
RunOutcome run_scenario(const Scenario& s, const std::vector<int>& prefix,
                        const Mutation& mutation, usize max_steps);

struct ExploreConfig {
  usize max_runs = 256;      ///< schedules explored before giving up
  usize max_steps = 200000;  ///< decisions per run
  bool exhaustive = false;   ///< disable independence pruning (HDS_MODEL_DEEP)
  Mutation mutation{};       ///< seeded fault active on every run
};

struct ExploreReport {
  std::string scenario;
  int nranks = 0;
  usize runs = 0;             ///< schedules executed
  usize decisions = 0;        ///< total decisions across runs
  usize branch_points = 0;    ///< decisions with >1 enabled rank (first run)
  usize pruned = 0;           ///< alternatives skipped as independent
  bool budget_hit = false;    ///< frontier left unexplored at max_runs
  bool deterministic = true;  ///< all completed runs matched the reference
  std::vector<std::string> issues;  ///< oracle violations (empty = clean)
  /// Choice sequence of the first failing run (replay prefix); empty when
  /// no issue was found.
  std::vector<int> counterexample;
  std::string counterexample_kind;  ///< "deadlock", "divergence", ...
};

/// DFS over the scenario's schedule space. Stops early once an issue is
/// found (the counterexample is already in hand) or the run budget is
/// exhausted.
ExploreReport explore(const Scenario& s, const ExploreConfig& cfg);

}  // namespace hds::model
