#include "model/controlled_scheduler.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"
#include "runtime/team.h"

namespace hds::model {

namespace {
/// Rank identity of the current thread (established by rank_started); -1 on
/// non-rank threads.
thread_local int tl_rank = -1;
}  // namespace

const char* mutation_kind_name(Mutation::Kind k) {
  switch (k) {
    case Mutation::Kind::None: return "none";
    case Mutation::Kind::DropBarrier: return "drop-barrier";
    case Mutation::Kind::ReorderPush: return "reorder-push";
    case Mutation::Kind::SkipBorrowWait: return "skip-borrow-wait";
  }
  return "?";
}

bool footprints_conflict(const Footprint& x, const Footprint& y) {
  // Start (about to run anything) and Recovery (touches team-wide failure
  // state) conservatively conflict with every footprint.
  if (x.site == Site::Start || y.site == Site::Start ||
      x.site == Site::Recovery || y.site == Site::Recovery)
    return true;
  if (x.obj != y.obj) return false;
  // Same mailbox, different (src, tag) channel: FIFO per channel makes the
  // operations commute.
  if (x.site == Site::Mailbox && y.site == Site::Mailbox)
    return x.a == y.a && x.b == y.b;
  return true;
}

ControlledScheduler::ControlledScheduler(Config cfg)
    : cfg_(std::move(cfg)), ranks_(static_cast<usize>(cfg_.nranks)) {
  HDS_CHECK(cfg_.nranks >= 1);
}

void ControlledScheduler::rank_started(int world) {
  tl_rank = world;
  std::unique_lock lock(mu_);
  auto& st = ranks_[static_cast<usize>(world)];
  st.registered = true;
  st.parked = true;
  st.at = Footprint{Site::Start, nullptr, 0, 0};
  static const std::function<bool()> kAlways = [] { return true; };
  st.ready = &kAlways;
  ++started_;
  // The last rank to register triggers the first decision: the run's
  // initial state is "every rank parked at Start".
  if (started_ == cfg_.nranks && running_ == -1) schedule_next_locked();
  cv_.wait(lock, [&] {
    return abandoned_.load(std::memory_order_relaxed) || running_ == world;
  });
  st.parked = false;
  st.ready = nullptr;
}

void ControlledScheduler::rank_finished() {
  const int me = tl_rank;
  tl_rank = -1;
  std::lock_guard lock(mu_);
  auto& st = ranks_[static_cast<usize>(me)];
  st.finished = true;
  st.parked = false;
  st.ready = nullptr;
  if (abandoned_.load(std::memory_order_relaxed)) {
    cv_.notify_all();
    return;
  }
  if (running_ == me) {
    running_ = -1;
    schedule_next_locked();
  }
}

void ControlledScheduler::park(Site site, const void* obj, u64 a, u64 b,
                               const std::function<bool()>& ready) {
  if (abandoned_.load(std::memory_order_acquire)) return;  // free-run unwind
  const int me = tl_rank;
  HDS_CHECK_MSG(me >= 0, "model park from a non-rank thread");
  std::unique_lock lock(mu_);
  auto& st = ranks_[static_cast<usize>(me)];
  st.parked = true;
  st.at = Footprint{site, obj, a, b};
  st.ready = &ready;  // valid for the duration of this call
  if (running_ == me) {
    running_ = -1;
    schedule_next_locked();  // baton pass: the parking thread decides
  }
  cv_.wait(lock, [&] {
    return abandoned_.load(std::memory_order_relaxed) || running_ == me;
  });
  st.parked = false;
  st.ready = nullptr;
}

void ControlledScheduler::note_effect(Site site, const void* obj, u64 a,
                                      u64 b) {
  if (abandoned_.load(std::memory_order_acquire)) return;
  std::lock_guard lock(mu_);
  if (!steps_.empty())
    steps_.back().effects.push_back(Footprint{site, obj, a, b});
}

void ControlledScheduler::schedule_next_locked() {
  bool all_finished = true;
  for (const auto& st : ranks_)
    if (!st.finished) all_finished = false;
  if (all_finished) {
    cv_.notify_all();
    return;
  }

  StepRecord rec;
  for (int r = 0; r < cfg_.nranks; ++r) {
    const auto& st = ranks_[static_cast<usize>(r)];
    if (st.finished || !st.parked || st.ready == nullptr) continue;
    // Contention-free by construction: no rank is running while the baton
    // holder evaluates predicates, so the primitive mutexes they take are
    // never held by anyone else.
    if ((*st.ready)()) {
      rec.enabled.push_back(r);
      rec.parked_at.push_back(st.at);
    }
  }

  if (rec.enabled.empty()) {
    abandon_locked(/*deadlock=*/true);
    return;
  }
  if (decision_ >= cfg_.max_steps) {
    abandon_locked(/*deadlock=*/false);
    return;
  }

  int choice;
  auto enabled_has = [&](int r) {
    return std::find(rec.enabled.begin(), rec.enabled.end(), r) !=
           rec.enabled.end();
  };
  if (decision_ < cfg_.prefix.size()) {
    choice = cfg_.prefix[decision_];
    if (!enabled_has(choice)) {
      // The replayed schedule does not fit this run (different build or a
      // nondeterministic scenario): fall back to the default pick and flag.
      replay_diverged_ = true;
      choice = rec.enabled.front();
    }
  } else if (cfg_.pick) {
    choice = cfg_.pick(rec.enabled);
    if (!enabled_has(choice)) choice = rec.enabled.front();
  } else {
    choice = rec.enabled.front();
  }

  rec.chosen = choice;
  rec.resume = ranks_[static_cast<usize>(choice)].at;
  steps_.push_back(std::move(rec));
  choices_.push_back(choice);
  ++decision_;
  running_ = choice;
  cv_.notify_all();
}

void ControlledScheduler::abandon_locked(bool deadlock) {
  if (deadlock) {
    deadlock_ = true;
    deadlock_report_ = wait_for_report_locked();
  } else {
    budget_hit_ = true;
  }
  abandoned_.store(true, std::memory_order_release);
  // Poison the team so released ranks unwind via team_aborted at their
  // post-park re-checks. Safe to take the team's internal locks here: every
  // rank is parked on our cv (holding no primitive mutex, per the hook
  // contract).
  if (team_ != nullptr) {
    team_->abort_.store(true, std::memory_order_relaxed);
    team_->poison_all();
  }
  cv_.notify_all();
}

std::string ControlledScheduler::wait_for_report_locked() const {
  std::ostringstream os;
  os << "deadlock at decision " << decision_
     << ": no enabled transition; wait-for state:";
  for (int r = 0; r < cfg_.nranks; ++r) {
    const auto& st = ranks_[static_cast<usize>(r)];
    if (st.finished) continue;
    os << "\n  rank " << r << " parked at " << site_name(st.at.site);
    if (st.at.site == Site::Mailbox)
      os << " (awaiting src=" << st.at.a << ", tag=" << st.at.b << ")";
    if (!st.parked) os << " [not yet parked]";
  }
  return os.str();
}

bool ControlledScheduler::mutate_drop_barrier() {
  if (cfg_.mutation.kind != Mutation::Kind::DropBarrier ||
      tl_rank != cfg_.mutation.rank)
    return false;
  return barrier_seen_.fetch_add(1, std::memory_order_relaxed) ==
         cfg_.mutation.nth;
}

bool ControlledScheduler::mutate_reorder_push(int dst_world, int src,
                                              u64 tag) {
  (void)dst_world;
  (void)src;
  (void)tag;
  if (cfg_.mutation.kind != Mutation::Kind::ReorderPush) return false;
  // Counts only contended pushes (the mailbox calls this with a non-empty
  // channel queue); atomic because the mailbox mutex is held here.
  return reorder_seen_.fetch_add(1, std::memory_order_relaxed) ==
         cfg_.mutation.nth;
}

bool ControlledScheduler::mutate_skip_borrow_wait() {
  if (cfg_.mutation.kind != Mutation::Kind::SkipBorrowWait ||
      tl_rank != cfg_.mutation.rank)
    return false;
  return skip_seen_.fetch_add(1, std::memory_order_relaxed) ==
         cfg_.mutation.nth;
}

}  // namespace hds::model
