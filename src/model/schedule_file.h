// Replayable schedule files (hds-schedule v1): the serialized form of a
// model-checker counterexample. A schedule is the sequence of rank choices
// the controlled scheduler made at each decision point, plus the seeded
// protocol mutation (if any) that was active. Text, one token per line, so
// a failing schedule can be read, edited, and attached to a bug report:
//
//   hds-schedule v1
//   scenario sort2
//   mutation drop-barrier 0 3      <- optional: kind, rank, nth
//   steps 5
//   0
//   1
//   1
//   0
//   1
//
// Replay: feed `choices` to ControlledScheduler::Config::prefix (the
// explorer does this for counterexample verification; examples/quickstart
// exposes it as --replay-schedule=FILE).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "model/controlled_scheduler.h"

namespace hds::model {

struct ScheduleFile {
  std::string scenario;
  Mutation mutation{};
  std::vector<int> choices;
};

/// Serialize to `path`. Returns false on I/O failure.
bool write_schedule(const std::string& path, const ScheduleFile& s);

/// Parse `path`; nullopt on I/O failure or malformed content.
std::optional<ScheduleFile> read_schedule(const std::string& path);

}  // namespace hds::model
