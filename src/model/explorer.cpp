#include "model/explorer.h"

#include <algorithm>
#include <sstream>

#include "runtime/comm.h"
#include "runtime/team.h"

namespace hds::model {

RunOutcome run_scenario(const Scenario& s, const std::vector<int>& prefix,
                        const Mutation& mutation, usize max_steps) {
  ControlledScheduler::Config scfg;
  scfg.nranks = s.nranks;
  scfg.prefix = prefix;
  scfg.max_steps = max_steps;
  scfg.mutation = mutation;
  ControlledScheduler sched(std::move(scfg));

  runtime::TeamConfig tcfg;
  if (s.configure) s.configure(tcfg);
  tcfg.nranks = s.nranks;
  tcfg.model = &sched;
  runtime::Team team(tcfg);
  sched.attach(&team);

  RunOutcome out;
  std::vector<u64> digests(static_cast<usize>(s.nranks), 0);
  try {
    team.run([&](runtime::Comm& c) {
      digests[static_cast<usize>(c.rank())] = s.body(c);
    });
    out.completed = true;
  } catch (const std::exception& e) {
    out.error = e.what();
  }

  out.deadlock = sched.deadlocked();
  out.budget_exhausted = sched.budget_exhausted();
  out.replay_diverged = sched.replay_diverged();
  out.deadlock_report = sched.deadlock_report();
  out.choices = sched.choices();
  out.steps = sched.steps();
  out.dtor_drains = sched.dtor_drains();
  out.undelivered = team.undelivered_messages();
  out.quiescence = team.model_quiescence_issues();
  if (out.completed) {
    out.digests = std::move(digests);
    out.final_times.resize(static_cast<usize>(s.nranks));
    for (int r = 0; r < s.nranks; ++r)
      out.final_times[static_cast<usize>(r)] = team.rank_time(r);
  }
  return out;
}

namespace {

/// True iff running `alt` (parked at `f_alt`) before the recorded step
/// could change anything: the step's resume site or any of its effects
/// conflicts with alt's park footprint. Independent steps commute — the
/// alternative order reaches the same state, so the branch is pruned.
bool dependent_with_step(const Footprint& f_alt, const StepRecord& st) {
  if (footprints_conflict(f_alt, st.resume)) return true;
  for (const Footprint& e : st.effects)
    if (footprints_conflict(f_alt, e)) return true;
  return false;
}

}  // namespace

ExploreReport explore(const Scenario& s, const ExploreConfig& cfg) {
  ExploreReport rep;
  rep.scenario = s.name;
  rep.nranks = s.nranks;

  bool have_ref = false;
  std::vector<u64> ref_digests;
  std::vector<double> ref_times;

  // Classify one run against the terminal-state oracles. Returns the issue
  // kind ("" = clean) and appends human-readable reports to rep.issues.
  auto check_run = [&](const RunOutcome& run) -> std::string {
    if (run.deadlock) {
      rep.issues.push_back(run.deadlock_report);
      return "deadlock";
    }
    if (run.budget_exhausted) {
      // Not an oracle violation: the run was cut short, nothing to check.
      return "";
    }
    if (run.replay_diverged) {
      rep.issues.push_back(
          "internal: DFS prefix was not enabled on re-execution "
          "(scenario is not schedule-deterministic at the decision level)");
      return "replay-divergence";
    }
    if (!run.completed) {
      rep.issues.push_back("run failed: " + run.error);
      return "error";
    }
    if (run.dtor_drains > 0) {
      std::ostringstream os;
      os << run.dtor_drains
         << " BorrowToken(s) drained by destructor instead of wait()";
      rep.issues.push_back(os.str());
      return "unwaited-borrow";
    }
    if (run.undelivered > 0) {
      std::ostringstream os;
      os << run.undelivered << " undelivered message(s) at termination";
      rep.issues.push_back(os.str());
      return "undelivered";
    }
    if (!run.quiescence.empty()) {
      for (const auto& q : run.quiescence) rep.issues.push_back(q);
      return "quiescence";
    }
    if (!have_ref) {
      ref_digests = run.digests;
      ref_times = run.final_times;
      have_ref = true;
      return "";
    }
    if (run.digests != ref_digests) {
      rep.deterministic = false;
      for (int r = 0; r < s.nranks; ++r)
        if (run.digests[static_cast<usize>(r)] !=
            ref_digests[static_cast<usize>(r)]) {
          std::ostringstream os;
          os << "output divergence on rank " << r
             << " vs reference schedule (digest " << std::hex
             << run.digests[static_cast<usize>(r)] << " != "
             << ref_digests[static_cast<usize>(r)] << ")";
          rep.issues.push_back(os.str());
          break;
        }
      return "output-divergence";
    }
    // Exact equality on purpose: simulated time must be a pure function of
    // the inputs, independent of the schedule — no epsilon.
    if (run.final_times != ref_times) {
      rep.deterministic = false;
      for (int r = 0; r < s.nranks; ++r)
        if (run.final_times[static_cast<usize>(r)] !=
            ref_times[static_cast<usize>(r)]) {
          std::ostringstream os;
          os.precision(17);
          os << "sim-time divergence on rank " << r << ": "
             << run.final_times[static_cast<usize>(r)]
             << " != " << ref_times[static_cast<usize>(r)];
          rep.issues.push_back(os.str());
          break;
        }
      return "time-divergence";
    }
    return "";
  };

  // DFS frontier of forced-choice prefixes. A child run expands only
  // decisions at or beyond its prefix length — every earlier decision's
  // alternatives were pushed when an ancestor first reached it.
  std::vector<std::vector<int>> stack;
  stack.push_back({});

  auto expand = [&](const RunOutcome& run, usize from_decision) {
    for (usize d = run.steps.size(); d-- > from_decision;) {
      const StepRecord& st = run.steps[d];
      if (st.enabled.size() <= 1) continue;
      for (usize i = 0; i < st.enabled.size(); ++i) {
        const int alt = st.enabled[i];
        if (alt == st.chosen) continue;
        if (!cfg.exhaustive && !dependent_with_step(st.parked_at[i], st)) {
          ++rep.pruned;
          continue;
        }
        std::vector<int> prefix(run.choices.begin(),
                                run.choices.begin() +
                                    static_cast<std::ptrdiff_t>(d));
        prefix.push_back(alt);
        stack.push_back(std::move(prefix));
      }
    }
  };

  while (!stack.empty()) {
    if (rep.runs >= cfg.max_runs) {
      rep.budget_hit = true;
      break;
    }
    std::vector<int> prefix = std::move(stack.back());
    stack.pop_back();

    RunOutcome run = run_scenario(s, prefix, cfg.mutation, cfg.max_steps);
    ++rep.runs;
    rep.decisions += run.choices.size();
    if (rep.runs == 1)
      for (const auto& st : run.steps)
        if (st.enabled.size() > 1) ++rep.branch_points;

    const std::string kind = check_run(run);
    if (!kind.empty()) {
      // First failure wins: its choice sequence is the replayable
      // counterexample. Stop — further schedules add nothing.
      rep.counterexample = run.choices;
      rep.counterexample_kind = kind;
      break;
    }
    expand(run, prefix.size());
  }

  return rep;
}

}  // namespace hds::model
