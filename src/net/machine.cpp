#include "net/machine.h"

#include <algorithm>

#include "common/bits.h"
#include "common/error.h"

namespace hds::net {

MachineModel MachineModel::supermuc_phase2(int nodes, int ranks_per_node) {
  HDS_CHECK(nodes >= 1);
  HDS_CHECK(ranks_per_node >= 1);
  MachineModel m;
  m.nodes = nodes;
  m.ranks_per_node = ranks_per_node;
  return m;
}

MachineModel MachineModel::supermuc_node(int ranks, int numa_domains) {
  HDS_CHECK(ranks >= 1);
  HDS_CHECK(numa_domains >= 1 && numa_domains <= 4);
  MachineModel m;
  m.nodes = 1;
  m.ranks_per_node = ranks;
  m.numa_domains_per_node = numa_domains;
  return m;
}

int MachineModel::ranks_per_numa() const {
  return std::max(1, div_ceil(ranks_per_node, numa_domains_per_node));
}

int MachineModel::numa_of(rank_t r) const {
  const int local = r % ranks_per_node;
  return std::min(local / ranks_per_numa(), numa_domains_per_node - 1);
}

bool MachineModel::same_numa(rank_t a, rank_t b) const {
  return same_node(a, b) && numa_of(a) == numa_of(b);
}

double MachineModel::p2p_bandwidth(rank_t a, rank_t b) const {
  if (!same_node(a, b)) return net_bandwidth_Bps;
  return same_numa(a, b) ? memcpy_Bps : numa_Bps;
}

double MachineModel::p2p_latency(rank_t a, rank_t b) const {
  return same_node(a, b) ? mem_alpha_s : net_alpha_s;
}

double MachineModel::allocated_bisection_Bps() const {
  // 5.1 TB/s is the peak for a full 512-node island; a smaller allocation
  // sees a proportional slice of the fat tree, never less than one NIC.
  const double fraction = std::min(1.0, static_cast<double>(nodes) / 512.0);
  return std::max(net_bandwidth_Bps, bisection_Bps * fraction);
}

}  // namespace hds::net
