// Analytic communication / computation cost model.
//
// Collectives are charged with alpha-beta tree costs where the tree stages
// are split into intra-node stages (shared-memory constants — the DASH PGAS
// optimization) and inter-node stages (NIC constants). The all-to-allv cost
// additionally honours per-node NIC serialization and the fat-tree bisection
// bandwidth.
//
// `data_scale` implements the virtual-workload mode: benches execute the
// real algorithm on a proportionally sampled input while the model charges
// for the paper's full problem size. Only *data* byte terms scale; control
// traffic (histograms, splitters, clock sync) and latency terms do not,
// and computation charges use the scaled element count.
#pragma once

#include <span>

#include "common/types.h"
#include "net/machine.h"

namespace hds::net {

/// Whether a transfer carries the (scalable) key payload or fixed-size
/// control data such as histograms and splitters.
enum class Traffic : u8 { Control, Data };

/// Linear surrogate of a cost formula: seconds ≈ alpha_s + per_byte_s * B,
/// where B is the payload-byte measure the tracer records for the op class
/// (this rank's contributed bytes). The differential profiler fits the same
/// two constants from measured slices, so surrogate and fit are directly
/// comparable per class.
struct OpCost {
  double alpha_s = 0.0;
  double per_byte_s = 0.0;
  double at(double bytes) const { return alpha_s + per_byte_s * bytes; }
};

class CostModel {
 public:
  CostModel() = default;
  CostModel(MachineModel machine, double data_scale = 1.0)
      : machine_(machine), data_scale_(data_scale) {}

  const MachineModel& machine() const { return machine_; }
  double data_scale() const { return data_scale_; }

  /// Scaled element count for computation charges.
  double scaled(usize n) const { return static_cast<double>(n) * data_scale_; }
  double scaled_bytes(usize bytes, Traffic t) const {
    return t == Traffic::Data ? static_cast<double>(bytes) * data_scale_
                              : static_cast<double>(bytes);
  }

  // --- collective costs -----------------------------------------------------
  // P: number of participating ranks; nodes_spanned: distinct nodes they
  // occupy; bytes: payload per rank unless stated otherwise.

  double barrier(int P, int nodes_spanned) const;
  double broadcast(int P, int nodes_spanned, usize bytes, Traffic t) const;
  double reduce(int P, int nodes_spanned, usize bytes, Traffic t) const;
  double allreduce(int P, int nodes_spanned, usize bytes, Traffic t) const;
  /// bytes_per_rank contributed by each rank; result is P * bytes_per_rank.
  double allgather(int P, int nodes_spanned, usize bytes_per_rank,
                   Traffic t) const;
  double scan(int P, int nodes_spanned, usize bytes, Traffic t) const;
  /// Regular all-to-all: every rank sends `bytes_per_pair` to every other.
  double alltoall(int P, int nodes_spanned, usize bytes_per_pair,
                  Traffic t) const;

  /// One sampled-histogram gather round of the hybrid splitter search
  /// (PR 10): an allgatherv of the per-rank sample blocks — control
  /// traffic, gated by the largest single contribution like allgatherv —
  /// plus the machine's fixed per-round sampling overhead.
  double sample_gather(int P, int nodes_spanned,
                       usize bytes_per_rank_max) const;

  /// Irregular all-to-allv. `bytes[src * P + dst]` is the matrix of bytes
  /// sent from member src to member dst; `members[i]` is the global rank of
  /// member i (for node/NUMA placement). Models per-rank send/recv
  /// serialization, per-node NIC egress/ingress and fat-tree bisection.
  double alltoallv(std::span<const rank_t> members,
                   std::span<const usize> bytes, Traffic t) const;

  /// Point-to-point message.
  double p2p(rank_t src_world, rank_t dst_world, usize bytes, Traffic t) const;

  // --- introspection (PR 8) -------------------------------------------------
  // Linearized per-op-class cost surrogates: the full formulas above,
  // sampled at B = 0 and B = 64 KiB per rank (secant). These are the model
  // side of the differential profiler — what the run ledger's least-squares
  // fit of measured slices is compared against, class by class.

  /// Sync class (Barrier): latency only, per_byte_s is 0.
  OpCost probe_sync(int P, int nodes_spanned) const;
  /// Tree class (Broadcast / Allreduce / Scan / Split), B = payload bytes.
  OpCost probe_tree(int P, int nodes_spanned, Traffic t) const;
  /// Gather class (Allgather(v) / Gatherv), B = one rank's contribution.
  OpCost probe_gather(int P, int nodes_spanned, Traffic t) const;
  /// Alltoall class, B = one rank's total send volume, spread uniformly
  /// over the other members of `members`.
  OpCost probe_alltoall(std::span<const rank_t> members, Traffic t) const;
  /// Send class, B = message payload bytes.
  OpCost probe_p2p(rank_t src_world, rank_t dst_world, Traffic t) const;

  // --- failure recovery (PR 6) ---------------------------------------------
  /// Critical-path cost of shipping a `bytes` checkpoint to the buddy rank.
  /// The transfer overlaps the next superstep's computation, so only the
  /// machine's overlap residue of the p2p cost is charged.
  double checkpoint(rank_t src_world, rank_t buddy_world, usize bytes,
                    Traffic t) const;
  /// Cost of detecting a failed peer plus the survivor agreement round that
  /// adopts the new communicator (log2(survivors) agreement stages).
  double detect_and_agree(int survivors) const;

  // --- computation costs (seconds), all using scaled element counts --------
  double sort(usize n) const;
  /// LSD radix sort that executed `passes` scatter passes over n elements
  /// (skipped trivial-digit passes are not charged) plus the single
  /// histogram-building read.
  double radix_sort(usize n, usize passes) const;
  double merge_pass(usize n) const;
  double kway_heap_merge(usize n, usize k) const;
  /// Critical-path cost of a k-way merge over n elements that runs while
  /// `window_s` seconds of exchange copies are in flight (the k-ary
  /// schedule's merge/communication overlap, PR 7): the merge hides under
  /// the window except for the machine's merge_overlap_residue floor —
  /// merge and in-flight copies contend for memory bandwidth, so the
  /// residue fraction always lands on the clock.
  double overlapped_merge(usize n, usize k, double window_s) const;
  double partition(usize n) const;
  double linear_scan(usize n) const;
  /// `probes` binary searches over a local array of n elements.
  double binary_search(usize n, usize probes) const;
  /// `probes` ASCENDING probes answered by one narrowing forward sweep
  /// (core::batched_counts): each search spans ~n/probes elements. Never
  /// charged above the independent-searches cost.
  double batched_search(usize n, usize probes) const;

 private:
  /// Tree-stage latency and inverse bandwidth blended over intra/inter-node
  /// stages of a P-rank collective spanning `nodes_spanned` nodes.
  struct Blend {
    double alpha;     ///< total latency over all tree stages
    double inv_bw;    ///< per-byte cost per stage, averaged
    int stages;
  };
  Blend blend(int P, int nodes_spanned) const;

  MachineModel machine_{};
  double data_scale_ = 1.0;
};

}  // namespace hds::net
