// Simulated-time accounting: a per-rank virtual clock plus per-phase
// attribution. The runtime advances clocks for computation via analytic
// charges and synchronizes them at collectives (all participants leave a
// collective at max(entry times) + modelled cost).
//
// Real thread execution provides correctness; the SimClock provides the
// timing the paper measured on 3584 cores. All benches report simulated
// seconds.
#pragma once

#include <array>
#include <string_view>

#include "common/error.h"
#include "common/types.h"

namespace hds::net {

/// Algorithm phases as broken down in Fig. 2(b) / 3(b) of the paper.
enum class Phase : u8 { LocalSort = 0, Histogram, Exchange, Merge, Other };

inline constexpr usize kPhaseCount = 5;

constexpr std::string_view phase_name(Phase p) {
  switch (p) {
    case Phase::LocalSort: return "LocalSort";
    case Phase::Histogram: return "Histogram";
    case Phase::Exchange: return "Exchange";
    case Phase::Merge: return "Merge";
    case Phase::Other: return "Other";
  }
  return "?";
}

/// Observer of clock advances. The observability layer installs one per
/// rank (obs::RankTracer) when tracing is enabled, so every charged or
/// synchronized interval of virtual time is visible as [t0, t1] in the
/// phase it was attributed to. No sink is installed when tracing is off —
/// the hot path then pays one null-pointer test per advance.
class AdvanceSink {
 public:
  virtual ~AdvanceSink() = default;
  virtual void on_advance(Phase p, double t0, double t1) = 0;
};

/// Per-rank virtual clock with phase attribution.
class SimClock {
 public:
  double now() const { return now_s_; }

  Phase phase() const { return phase_; }
  void set_phase(Phase p) { phase_ = p; }

  /// Install (or clear, with nullptr) the advance observer. Owned by the
  /// caller; must outlive every subsequent advance.
  void set_sink(AdvanceSink* sink) { sink_ = sink; }

  /// Advance local time by dt seconds, attributing it to the current phase.
  void advance(double dt) {
    HDS_ASSERT(dt >= 0.0);
    const double t0 = now_s_;
    now_s_ += dt;
    phase_s_[static_cast<usize>(phase_)] += dt;
    if (sink_) sink_->on_advance(phase_, t0, now_s_);
  }

  /// Jump to an absolute time (used when leaving a collective); the wait is
  /// attributed to the current phase. `t` may not go backwards.
  void sync_to(double t) {
    HDS_ASSERT(t + 1e-15 >= now_s_);
    if (t > now_s_) advance(t - now_s_);
  }

  double phase_seconds(Phase p) const {
    return phase_s_[static_cast<usize>(p)];
  }

  void reset() {
    now_s_ = 0.0;
    phase_s_.fill(0.0);
    phase_ = Phase::Other;
  }

 private:
  double now_s_ = 0.0;
  std::array<double, kPhaseCount> phase_s_{};
  Phase phase_ = Phase::Other;
  AdvanceSink* sink_ = nullptr;
};

/// RAII phase scope: attributes all charges inside the scope to `p`.
class PhaseScope {
 public:
  PhaseScope(SimClock& clock, Phase p) : clock_(clock), prev_(clock.phase()) {
    clock_.set_phase(p);
  }
  ~PhaseScope() { clock_.set_phase(prev_); }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  SimClock& clock_;
  Phase prev_;
};

/// Aggregated result of one Team run.
struct TeamStats {
  double makespan_s = 0.0;  ///< max over ranks of final clock
  std::array<double, kPhaseCount> phase_s{};  ///< rank-averaged per phase

  double phase_seconds(Phase p) const {
    return phase_s[static_cast<usize>(p)];
  }
  /// Fraction of total time spent in phase p (rank-averaged).
  double phase_fraction(Phase p) const {
    double total = 0.0;
    for (double v : phase_s) total += v;
    return total > 0.0 ? phase_seconds(p) / total : 0.0;
  }
};

}  // namespace hds::net
