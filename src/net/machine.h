// Machine model: a parametrized description of the cluster the simulated
// time accounting charges against. The default instance models SuperMUC
// Phase 2 (the paper's testbed, Table I): dual E5-2697v3 nodes (28 cores, 4
// NUMA domains), InfiniBand FDR14 in a non-blocking fat tree.
//
// Ranks are laid out blockwise: rank r lives on node r / ranks_per_node and
// inside that node on NUMA domain (r % ranks_per_node) / ranks_per_numa.
#pragma once

#include <string>

#include "common/types.h"

namespace hds::net {

struct MachineModel {
  // --- topology -----------------------------------------------------------
  int nodes = 1;
  int ranks_per_node = 1;
  int cores_per_node = 28;
  int numa_domains_per_node = 4;

  // --- network (inter-node) ------------------------------------------------
  double net_alpha_s = 1.5e-6;       ///< per-message hardware latency
  double net_bandwidth_Bps = 5.6e9;  ///< per-node NIC bandwidth (FDR14)
  double bisection_Bps = 5.1e12;     ///< full-system fat-tree bisection
  /// Software/progression overhead per inter-node tree stage of a blocking
  /// collective (MPI stack, 16-ranks-per-node NIC contention, OS noise
  /// amplified by the implicit max over ranks). This — not the wire — is
  /// what makes a 2048-rank ALLREDUCE cost ~1 ms in practice and lets
  /// histogramming become the strong-scaling bottleneck (Fig. 2(b)).
  double coll_stage_overhead_s = 1.5e-4;
  /// Fraction of nominal NIC bandwidth an MPI_Alltoallv actually sustains
  /// (message-count overheads, rendezvous protocol, fabric congestion);
  /// the paper's weak-scaling discussion measures the same gap.
  double alltoall_efficiency = 0.35;

  // --- memory (intra-node) --------------------------------------------------
  double mem_alpha_s = 2.5e-7;        ///< intra-node message/handshake latency
  double memcpy_Bps = 10.0e9;         ///< same-NUMA-domain copy bandwidth
  double numa_Bps = 7.0e9;            ///< cross-NUMA copy bandwidth (QPI)
  /// Aggregate cross-NUMA fabric bandwidth per node: when many cores stream
  /// across domain boundaries simultaneously they share this, which is what
  /// penalizes algorithms that re-cross NUMA repeatedly (Sec. VI-D).
  double numa_fabric_Bps = 16.0e9;

  // --- computation constants (seconds per element) -------------------------
  // Calibrated to single-threaded icc-era Haswell throughputs (std::sort of
  // 1M random u64 in ~45 ms, ~35 M elements/s merges).
  double sort_s_per_elem_log = 1.8e-9;    ///< introsort: t = k * n * log2 n
  /// One 8-bit-digit radix scatter pass: t = k * n * passes (plus one
  /// histogram read charged as a linear scan). Roughly memory-bound, so it
  /// sits between the scan and merge constants; net/calibrate.cpp measures
  /// it next to the introsort constant, and the Auto kernel crossover
  /// (core/local_sort.h) is derived from the ratio of the two.
  double radix_s_per_elem_pass = 1.2e-9;
  double merge_s_per_elem = 2.0e-9;       ///< one binary-merge pass
  double heap_merge_s_per_elem_log = 0.9e-9;  ///< tournament tree per level
  /// Beyond this many runs a k-way merge's working set of run heads falls
  /// out of cache and every extraction misses (the Sec. VI-E2 observation
  /// that merging many small chunks degrades drastically).
  usize heap_merge_cache_runs = 64;
  double heap_merge_cache_s_per_elem = 2.5e-9;  ///< per elem per log2(k/64)
  double partition_s_per_elem = 0.8e-9;   ///< 3-way partition pass
  double scan_s_per_elem = 0.35e-9;       ///< linear scan / accumulate
  double binsearch_s_per_step = 2.2e-9;   ///< one binary-search bisection step
  /// Fixed software overhead per sampled-histogram round of the hybrid
  /// splitter search (PR 10): assembling the variable-size sample blocks
  /// and registering the sparse gather, beyond the allgatherv wire cost and
  /// the charged draw/sort/scan compute. Keeps a sampled round honestly
  /// more expensive than one dense allreduce round at small P, so the
  /// hybrid's win has to come from doing fewer rounds, not free sampling.
  double sample_round_overhead_s = 2.0e-6;

  /// When true, collectives between ranks of the same node are charged with
  /// shared-memory constants instead of NIC constants (the DASH PGAS
  /// optimization of Sec. VI-A1). Disable for the ablation study.
  bool intra_node_shortcut = true;

  // --- failure recovery (PR 6) ---------------------------------------------
  /// Fraction of a checkpoint's buddy-transfer cost that lands on the
  /// critical path. Checkpoints ship to the buddy asynchronously while the
  /// next superstep's computation runs, so only this overlap residue is
  /// charged to the rank's clock (the rest rides in network slack).
  double checkpoint_overlap_residue = 0.25;
  /// Fraction of an exchange-overlapped merge pass that stays on the
  /// critical path (PR 7). The k-ary exchange (core/exchange.h) runs round
  /// r-1's tail merge while round r's borrowed-payload copies are in
  /// flight; merge and copies contend for the memory system, so at most
  /// (1 - residue) of the merge can hide under the communication window.
  double merge_overlap_residue = 0.3;
  /// Time for survivors to *detect* a failed peer: the failure detector's
  /// timeout plus RDMA read probes (ULFM-style revoke propagation).
  double fault_detect_s = 5.0e-4;
  /// Per-survivor-stage cost of the agreement round that adopts the new
  /// survivor set and rebuilds the communicator (log P stages of an
  /// MPI_Comm_shrink-like agreement, each paying collective overhead).
  double agree_stage_s = 2.5e-4;

  // --- descriptive metadata (Table I) ---------------------------------------
  std::string cpu = "2 x Intel Xeon E5-2697v3 (Haswell, 14c, 2.6 GHz)";
  std::string memory = "64 GB (56 GB usable)";
  std::string network = "InfiniBand FDR14, non-blocking fat tree";
  std::string compiler = "modelled after ICC 18.0.2";
  std::string mpi = "hds::runtime (thread-backed, MPI-3-like semantics)";

  /// SuperMUC Phase 2 with the given allocation.
  static MachineModel supermuc_phase2(int nodes, int ranks_per_node);

  /// One SuperMUC node used as a shared-memory machine (Fig. 4): `ranks`
  /// ranks packed densely over `numa_domains` domains of 7 cores each.
  static MachineModel supermuc_node(int ranks, int numa_domains);

  int total_ranks() const { return nodes * ranks_per_node; }
  int ranks_per_numa() const;
  int node_of(rank_t r) const { return r / ranks_per_node; }
  int numa_of(rank_t r) const;
  bool same_node(rank_t a, rank_t b) const { return node_of(a) == node_of(b); }
  bool same_numa(rank_t a, rank_t b) const;

  /// Point-to-point bandwidth between two ranks given their placement.
  double p2p_bandwidth(rank_t a, rank_t b) const;
  /// Point-to-point latency between two ranks given their placement.
  double p2p_latency(rank_t a, rank_t b) const;

  /// Effective bisection bandwidth scaled to the allocated partition of the
  /// fat tree (the paper could reserve at most one 512-node island).
  double allocated_bisection_Bps() const;
};

}  // namespace hds::net
