// Host calibration: measure this machine's real per-element constants for
// the computation kernels and write them into a MachineModel, so simulated
// times can optionally reflect the build host instead of the default
// SuperMUC-era values. Communication constants are *not* calibrated (there
// is no cluster to measure); only the local-compute knobs change.
#pragma once

#include "net/machine.h"

namespace hds::net {

struct CalibrationResult {
  double sort_s_per_elem_log = 0.0;
  double radix_s_per_elem_pass = 0.0;
  double merge_s_per_elem = 0.0;
  double partition_s_per_elem = 0.0;
  double scan_s_per_elem = 0.0;
  double binsearch_s_per_step = 0.0;
};

/// Measure the kernels on the calling thread (takes ~a second with the
/// default element count) and return the observed constants.
CalibrationResult measure_host_constants(usize elements = 1u << 20);

/// Apply a calibration to a machine model's compute constants.
void apply_calibration(MachineModel& machine, const CalibrationResult& cal);

}  // namespace hds::net
