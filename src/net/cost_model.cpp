#include "net/cost_model.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/bits.h"
#include "common/error.h"

namespace hds::net {

namespace {
double log2d(double x) { return x <= 2.0 ? 1.0 : std::log2(x); }
}  // namespace

CostModel::Blend CostModel::blend(int P, int nodes_spanned) const {
  HDS_CHECK(P >= 1);
  HDS_CHECK(nodes_spanned >= 1);
  Blend b{};
  b.stages = static_cast<int>(log2_ceil(static_cast<u64>(P)));
  if (b.stages == 0) {
    b.alpha = 0.0;
    b.inv_bw = 0.0;
    return b;
  }
  // A binomial tree over P ranks on `nodes_spanned` nodes: the last
  // ceil(log2(nodes)) stages cross the network, the rest stay on-node.
  int inter = static_cast<int>(log2_ceil(static_cast<u64>(nodes_spanned)));
  inter = std::min(inter, b.stages);
  const int intra = b.stages - inter;
  const bool shortcut = machine_.intra_node_shortcut;
  const double a_inter =
      machine_.net_alpha_s + machine_.coll_stage_overhead_s;
  // Without the PGAS shortcut even on-node stages go through the full MPI
  // stack (loopback + software overhead); with it they are plain memcpys.
  const double a_intra = shortcut ? machine_.mem_alpha_s : a_inter;
  const double bw_intra =
      shortcut ? machine_.memcpy_Bps : machine_.net_bandwidth_Bps;
  b.alpha = intra * a_intra + inter * a_inter;
  const double inv_intra = 1.0 / bw_intra;
  const double inv_inter = 1.0 / machine_.net_bandwidth_Bps;
  b.inv_bw = (intra * inv_intra + inter * inv_inter) / b.stages;
  return b;
}

double CostModel::barrier(int P, int nodes_spanned) const {
  // Dissemination barrier: log2(P) rounds of one small message each.
  return blend(P, nodes_spanned).alpha;
}

double CostModel::broadcast(int P, int nodes_spanned, usize bytes,
                            Traffic t) const {
  const Blend b = blend(P, nodes_spanned);
  const double m = scaled_bytes(bytes, t);
  return b.alpha + b.stages * m * b.inv_bw;
}

double CostModel::reduce(int P, int nodes_spanned, usize bytes,
                         Traffic t) const {
  // Same tree shape as broadcast plus the per-stage combine, which is
  // negligible next to transfer for the message sizes we use.
  return broadcast(P, nodes_spanned, bytes, t);
}

double CostModel::allreduce(int P, int nodes_spanned, usize bytes,
                            Traffic t) const {
  const Blend b = blend(P, nodes_spanned);
  const double m = scaled_bytes(bytes, t);
  // Small messages: binomial reduce + broadcast (2 * stages latencies).
  // Large messages: Rabenseifner reduce-scatter + allgather, 2*m transfer.
  const double small = 2.0 * (b.alpha + b.stages * m * b.inv_bw);
  const double large = 2.0 * b.alpha + 2.0 * m * b.inv_bw * 2.0;
  return std::min(small, large);
}

double CostModel::allgather(int P, int nodes_spanned, usize bytes_per_rank,
                            Traffic t) const {
  const Blend b = blend(P, nodes_spanned);
  const double m = scaled_bytes(bytes_per_rank, t);
  // Bruck/ring: log latency, (P-1)*m data per rank.
  return b.alpha + static_cast<double>(P - 1) * m * b.inv_bw;
}

double CostModel::scan(int P, int nodes_spanned, usize bytes,
                       Traffic t) const {
  const Blend b = blend(P, nodes_spanned);
  const double m = scaled_bytes(bytes, t);
  return b.alpha + b.stages * m * b.inv_bw;
}

double CostModel::sample_gather(int P, int nodes_spanned,
                                usize bytes_per_rank_max) const {
  return allgather(P, nodes_spanned, bytes_per_rank_max, Traffic::Control) +
         machine_.sample_round_overhead_s;
}

double CostModel::alltoall(int P, int nodes_spanned, usize bytes_per_pair,
                           Traffic t) const {
  const Blend b = blend(P, nodes_spanned);
  const double m = scaled_bytes(bytes_per_pair, t);
  // Hypercube store-and-forward for small messages: log(P) rounds moving
  // P/2 * m each; direct exchange for large: (P-1) messages of m.
  const double saf =
      b.alpha + b.stages * (static_cast<double>(P) / 2.0) * m * b.inv_bw;
  const double direct = static_cast<double>(P - 1) *
                        (b.alpha / std::max(1, b.stages) + m * b.inv_bw);
  return std::min(saf, direct);
}

double CostModel::alltoallv(std::span<const rank_t> members,
                            std::span<const usize> bytes, Traffic t) const {
  const int P = static_cast<int>(members.size());
  HDS_CHECK(bytes.size() == static_cast<usize>(P) * static_cast<usize>(P));
  if (P <= 1) return 0.0;

  const bool shortcut = machine_.intra_node_shortcut;
  double max_rank_cost = 0.0;
  std::vector<double> node_wire_bytes;  // per distinct node, egress+ingress
  std::vector<double> node_numa_bytes;  // per distinct node, cross-NUMA
  std::vector<int> node_ids;
  double cross_bisection = 0.0;

  auto node_index = [&](int node) -> usize {
    for (usize i = 0; i < node_ids.size(); ++i)
      if (node_ids[i] == node) return i;
    node_ids.push_back(node);
    node_wire_bytes.push_back(0.0);
    node_numa_bytes.push_back(0.0);
    return node_ids.size() - 1;
  };

  for (int src = 0; src < P; ++src) {
    double send_time = 0.0;
    double recv_time = 0.0;
    double alpha = 0.0;
    for (int dst = 0; dst < P; ++dst) {
      if (dst == src) continue;
      const rank_t ws = members[src];
      const rank_t wd = members[dst];
      const double out_b = scaled_bytes(bytes[static_cast<usize>(src) * P + dst], t);
      const double in_b = scaled_bytes(bytes[static_cast<usize>(dst) * P + src], t);
      const bool same_node = machine_.same_node(ws, wd);
      const double bw =
          (same_node && shortcut)
              ? machine_.p2p_bandwidth(ws, wd)
              : machine_.net_bandwidth_Bps * machine_.alltoall_efficiency;
      if (out_b > 0.0 || in_b > 0.0)
        alpha += (same_node && shortcut) ? machine_.mem_alpha_s
                                         : machine_.net_alpha_s;
      send_time += out_b / bw;
      recv_time += in_b / bw;
      if (!same_node) {
        node_wire_bytes[node_index(machine_.node_of(ws))] += out_b;
        node_wire_bytes[node_index(machine_.node_of(wd))] += in_b;
        cross_bisection += out_b;
      } else if (!machine_.same_numa(ws, wd)) {
        // Intra-node traffic crossing NUMA domains contends on the shared
        // inter-socket fabric.
        node_numa_bytes[node_index(machine_.node_of(ws))] += out_b;
      }
    }
    max_rank_cost = std::max(max_rank_cost,
                             alpha + std::max(send_time, recv_time));
  }

  const double node_wire_bw =
      2.0 * machine_.net_bandwidth_Bps * machine_.alltoall_efficiency;
  double max_node_time = 0.0;
  for (usize i = 0; i < node_ids.size(); ++i) {
    max_node_time =
        std::max(max_node_time, node_wire_bytes[i] / node_wire_bw);
    max_node_time = std::max(max_node_time,
                             node_numa_bytes[i] / machine_.numa_fabric_Bps);
  }
  const double bisection_time =
      cross_bisection / machine_.allocated_bisection_Bps();

  return std::max({max_rank_cost, max_node_time, bisection_time});
}

double CostModel::p2p(rank_t src_world, rank_t dst_world, usize bytes,
                      Traffic t) const {
  const double m = scaled_bytes(bytes, t);
  return machine_.p2p_latency(src_world, dst_world) +
         m / machine_.p2p_bandwidth(src_world, dst_world);
}

namespace {
/// Secant linearization of a cost formula f(bytes): alpha from f(0), the
/// per-byte slope from the chord to f(64 KiB). The formulas themselves are
/// piecewise linear in bytes (min over algorithm variants), so the chord is
/// exact within one regime and a fair blend across the small/large switch.
constexpr usize kProbeBytes = 64 * 1024;

template <class F>
OpCost secant(F&& f) {
  OpCost c;
  c.alpha_s = f(usize{0});
  c.per_byte_s =
      (f(kProbeBytes) - c.alpha_s) / static_cast<double>(kProbeBytes);
  return c;
}
}  // namespace

OpCost CostModel::probe_sync(int P, int nodes_spanned) const {
  return OpCost{barrier(P, nodes_spanned), 0.0};
}

OpCost CostModel::probe_tree(int P, int nodes_spanned, Traffic t) const {
  return secant([&](usize b) { return broadcast(P, nodes_spanned, b, t); });
}

OpCost CostModel::probe_gather(int P, int nodes_spanned, Traffic t) const {
  return secant([&](usize b) { return allgather(P, nodes_spanned, b, t); });
}

OpCost CostModel::probe_alltoall(std::span<const rank_t> members,
                                 Traffic t) const {
  const int P = static_cast<int>(members.size());
  if (P <= 1) return OpCost{};
  // Uniform matrix: every rank splits a total of `b` send bytes evenly over
  // the other P-1 members, so the surrogate's byte axis matches the
  // per-rank total-send bytes the tracer records for Alltoall(v) events.
  return secant([&](usize b) {
    const usize per_pair = b / static_cast<usize>(P - 1);
    std::vector<usize> matrix(static_cast<usize>(P) * P, 0);
    for (int src = 0; src < P; ++src)
      for (int dst = 0; dst < P; ++dst)
        if (src != dst)
          matrix[static_cast<usize>(src) * P + dst] = per_pair;
    return alltoallv(members, matrix, t);
  });
}

OpCost CostModel::probe_p2p(rank_t src_world, rank_t dst_world,
                            Traffic t) const {
  return secant([&](usize b) { return p2p(src_world, dst_world, b, t); });
}

double CostModel::checkpoint(rank_t src_world, rank_t buddy_world, usize bytes,
                             Traffic t) const {
  return machine_.checkpoint_overlap_residue *
         p2p(src_world, buddy_world, bytes, t);
}

double CostModel::detect_and_agree(int survivors) const {
  const double stages = log2d(static_cast<double>(std::max(survivors, 2)));
  return machine_.fault_detect_s + machine_.agree_stage_s * stages;
}

double CostModel::sort(usize n) const {
  const double m = scaled(n);
  return m <= 1.0 ? 0.0 : machine_.sort_s_per_elem_log * m * log2d(m);
}

double CostModel::radix_sort(usize n, usize passes) const {
  const double m = scaled(n);
  return machine_.radix_s_per_elem_pass * m * static_cast<double>(passes) +
         machine_.scan_s_per_elem * m;  // the one histogram-building read
}

double CostModel::merge_pass(usize n) const {
  return machine_.merge_s_per_elem * scaled(n);
}

double CostModel::kway_heap_merge(usize n, usize k) const {
  const double base = machine_.heap_merge_s_per_elem_log * scaled(n) *
                      log2d(static_cast<double>(std::max<usize>(k, 2)));
  if (k <= machine_.heap_merge_cache_runs) return base;
  // Cache-miss regime: run heads no longer fit in cache (Sec. VI-E2).
  const double excess = log2d(static_cast<double>(k) /
                              static_cast<double>(machine_.heap_merge_cache_runs));
  return base + machine_.heap_merge_cache_s_per_elem * scaled(n) * excess;
}

double CostModel::overlapped_merge(usize n, usize k, double window_s) const {
  const double full = kway_heap_merge(n, k);
  return std::max(full - window_s, machine_.merge_overlap_residue * full);
}

double CostModel::partition(usize n) const {
  return machine_.partition_s_per_elem * scaled(n);
}

double CostModel::linear_scan(usize n) const {
  return machine_.scan_s_per_elem * scaled(n);
}

double CostModel::binary_search(usize n, usize probes) const {
  const double m = std::max(scaled(n), 2.0);
  return machine_.binsearch_s_per_step * static_cast<double>(probes) *
         log2d(m);
}

double CostModel::batched_search(usize n, usize probes) const {
  if (probes == 0) return 0.0;
  const double m = std::max(scaled(n), 2.0);
  const double per = log2d(m / static_cast<double>(probes) + 2.0);
  const double batched =
      machine_.binsearch_s_per_step * static_cast<double>(probes) * per;
  return std::min(batched, binary_search(n, probes));
}

}  // namespace hds::net
