#include "net/calibrate.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "core/radix_sort.h"

namespace hds::net {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

CalibrationResult measure_host_constants(usize elements) {
  HDS_CHECK(elements >= 1024);
  CalibrationResult cal;
  Xoshiro256 rng(0xca11b8a7e);
  std::vector<u64> base(elements);
  for (auto& v : base) v = rng();
  const double n = static_cast<double>(elements);
  const double logn = std::log2(n);

  {
    auto data = base;
    const auto t0 = std::chrono::steady_clock::now();
    std::sort(data.begin(), data.end());
    cal.sort_s_per_elem_log = seconds_since(t0) / (n * logn);
  }
  {
    auto a = base;
    std::sort(a.begin(), a.begin() + elements / 2);
    std::sort(a.begin() + elements / 2, a.end());
    std::vector<u64> out(elements);
    const auto t0 = std::chrono::steady_clock::now();
    std::merge(a.begin(), a.begin() + elements / 2,
               a.begin() + elements / 2, a.end(), out.begin());
    cal.merge_s_per_elem = seconds_since(t0) / n;
  }
  {
    auto data = base;
    const u64 pivot = ~u64{0} / 2;
    const auto t0 = std::chrono::steady_clock::now();
    (void)std::partition(data.begin(), data.end(),
                         [&](u64 v) { return v < pivot; });
    cal.partition_s_per_elem = seconds_since(t0) / n;
  }
  {
    const auto t0 = std::chrono::steady_clock::now();
    u64 acc = 0;
    for (u64 v : base) acc += v;
    cal.scan_s_per_elem = seconds_since(t0) / n;
    // Keep the compiler from dropping the loop.
    if (acc == 0x123456789abcdefULL) cal.scan_s_per_elem += 1e-18;
  }
  {
    // Radix kernel: full-range u64 keys execute all 8 passes, so the
    // per-element-per-pass constant is t / (n * passes) after deducting the
    // histogram-building read the cost model charges separately as a scan.
    auto data = base;
    const auto t0 = std::chrono::steady_clock::now();
    const core::RadixSortStats st = core::radix_sort_keys(data);
    const double t = seconds_since(t0);
    const double passes = static_cast<double>(
        st.passes_executed > 0 ? st.passes_executed : st.passes_planned);
    cal.radix_s_per_elem_pass =
        std::max(1e-12, (t - cal.scan_s_per_elem * n) / (n * passes));
    HDS_CHECK(std::is_sorted(data.begin(), data.end()));
  }
  {
    auto data = base;
    std::sort(data.begin(), data.end());
    const usize probes = 4096;
    u64 acc = 0;
    const auto t0 = std::chrono::steady_clock::now();
    Xoshiro256 prng(7);
    for (usize i = 0; i < probes; ++i) {
      acc += static_cast<u64>(
          std::lower_bound(data.begin(), data.end(), prng()) - data.begin());
    }
    cal.binsearch_s_per_step = seconds_since(t0) / (probes * logn);
    if (acc == 0xdeadULL) cal.binsearch_s_per_step += 1e-18;
  }
  return cal;
}

void apply_calibration(MachineModel& machine, const CalibrationResult& cal) {
  HDS_CHECK(cal.sort_s_per_elem_log > 0.0);
  machine.sort_s_per_elem_log = cal.sort_s_per_elem_log;
  // Older CalibrationResult literals may not carry a radix measurement;
  // keep the model default in that case.
  if (cal.radix_s_per_elem_pass > 0.0)
    machine.radix_s_per_elem_pass = cal.radix_s_per_elem_pass;
  machine.merge_s_per_elem = cal.merge_s_per_elem;
  machine.partition_s_per_elem = cal.partition_s_per_elem;
  machine.scan_s_per_elem = cal.scan_s_per_elem;
  machine.binsearch_s_per_step = cal.binsearch_s_per_step;
}

}  // namespace hds::net
