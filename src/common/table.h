// Plain-text table rendering for the benchmark harness. Produces aligned
// columns suitable for terminals and for diffing EXPERIMENTS.md against
// fresh runs.
#pragma once

#include <string>
#include <vector>

namespace hds {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Render with column alignment. Numeric-looking cells are right-aligned.
  std::string to_string() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with the given precision (fixed notation).
std::string fmt(double v, int precision = 3);

/// Format bytes in a human-readable unit (KiB/MiB/GiB).
std::string fmt_bytes(double bytes);

}  // namespace hds
