#include "common/table.h"

#include <algorithm>
#include <cctype>
#include <iomanip>
#include <sstream>

#include "common/error.h"

namespace hds {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  HDS_CHECK(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  HDS_CHECK_MSG(cells.size() == headers_.size(),
                "row has " << cells.size() << " cells, expected "
                           << headers_.size());
  rows_.push_back(std::move(cells));
}

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
          c == '-' || c == '+' || c == 'e' || c == 'E' || c == '%' ||
          c == 'x'))
      return false;
  }
  return true;
}
}  // namespace

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row, bool align_num) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      const bool right = align_num && looks_numeric(row[c]);
      os << ' ' << (right ? std::right : std::left)
         << std::setw(static_cast<int>(widths[c])) << row[c] << " |";
    }
    os << '\n';
  };
  emit_row(headers_, false);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << std::string(widths[c] + 2, '-') << '|';
  os << '\n';
  for (const auto& row : rows_) emit_row(row, true);
  return os.str();
}

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_bytes(double bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  std::ostringstream os;
  os << std::fixed << std::setprecision(bytes < 10 ? 2 : 1) << bytes << ' '
     << units[u];
  return os.str();
}

}  // namespace hds
