// Error handling: always-on checked invariants (HDS_CHECK) and debug-only
// assertions (HDS_ASSERT). Violations throw so tests can observe them and a
// rank failure unwinds cleanly through the Team instead of aborting the
// whole process.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace hds {

/// Thrown when a checked invariant fails.
class invariant_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown on invalid user-supplied arguments (sizes, configs, ...).
class argument_error : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw invariant_error(os.str());
}
}  // namespace detail

}  // namespace hds

#define HDS_CHECK(expr)                                              \
  do {                                                               \
    if (!(expr))                                                     \
      ::hds::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
  } while (false)

#define HDS_CHECK_MSG(expr, msg)                                     \
  do {                                                               \
    if (!(expr)) {                                                   \
      std::ostringstream hds_os_;                                    \
      hds_os_ << msg;                                                \
      ::hds::detail::check_failed(#expr, __FILE__, __LINE__,         \
                                  hds_os_.str());                    \
    }                                                                \
  } while (false)

#ifdef NDEBUG
#define HDS_ASSERT(expr) ((void)0)
#else
#define HDS_ASSERT(expr) HDS_CHECK(expr)
#endif
