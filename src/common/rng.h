// Deterministic, fast pseudo-random number generation.
//
// SplitMix64 seeds streams; Xoshiro256** generates the bulk. Every rank of a
// Team derives an independent stream from (seed, rank) so workloads are
// reproducible regardless of thread scheduling.
#pragma once

#include <array>
#include <cmath>
#include <numbers>

#include "common/types.h"

namespace hds {

/// SplitMix64: tiny, high-quality 64-bit mixer. Used to seed other engines
/// and for stateless hashing of (seed, index) pairs.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(u64 seed) : state_(seed) {}

  constexpr u64 next() {
    u64 z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  u64 state_;
};

/// Stateless mix of two words; handy for deriving per-rank seeds.
constexpr u64 hash_mix(u64 a, u64 b) {
  SplitMix64 sm(a ^ (b * 0x9e3779b97f4a7c15ULL));
  return sm.next();
}

/// Xoshiro256**: fast general-purpose engine with 2^256-1 period.
/// Satisfies the UniformRandomBitGenerator concept.
class Xoshiro256 {
 public:
  using result_type = u64;

  explicit Xoshiro256(u64 seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~u64{0}; }

  result_type operator()() {
    const u64 result = rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform u64 in [lo, hi] inclusive (Lemire-style rejection-free for our
  /// purposes; bias is negligible for the ranges we use, but we reject to be
  /// exact).
  u64 uniform_u64(u64 lo, u64 hi) {
    const u64 range = hi - lo;
    if (range == ~u64{0}) return (*this)();
    const u64 span = range + 1;
    const u64 limit = (~u64{0}) - (~u64{0}) % span;
    u64 x;
    do {
      x = (*this)();
    } while (x >= limit && limit != 0);
    return lo + (x % span);
  }

  /// Standard normal via Box–Muller (cached second value).
  double normal() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = 0.0;
    while (u1 == 0.0) u1 = uniform01();
    const double u2 = uniform01();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  /// Exponential with rate lambda > 0.
  double exponential(double lambda) {
    double u = 0.0;
    while (u == 0.0) u = uniform01();
    return -std::log(u) / lambda;
  }

 private:
  static constexpr u64 rotl(u64 x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<u64, 4> state_{};
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace hds
