// Bit-level helpers used by key bisection, Morton encoding and the cost
// model. All functions are constexpr and branch-free where it matters.
#pragma once

#include <bit>
#include <type_traits>

#include "common/types.h"

namespace hds {

/// ceil(log2(x)) for x >= 1; log2_ceil(1) == 0.
constexpr u32 log2_ceil(u64 x) {
  return x <= 1 ? 0u : 64u - static_cast<u32>(std::countl_zero(x - 1));
}

/// floor(log2(x)) for x >= 1.
constexpr u32 log2_floor(u64 x) {
  return x <= 1 ? 0u : 63u - static_cast<u32>(std::countl_zero(x));
}

constexpr bool is_pow2(u64 x) { return x != 0 && (x & (x - 1)) == 0; }

constexpr u64 next_pow2(u64 x) { return x <= 1 ? 1 : u64{1} << log2_ceil(x); }

/// Integer ceil division for non-negative values.
template <class T>
constexpr T div_ceil(T a, T b) {
  static_assert(std::is_integral_v<T>);
  return static_cast<T>((a + b - 1) / b);
}

/// Midpoint of two unsigned values without overflow; rounds down.
constexpr u64 midpoint_u64(u64 lo, u64 hi) { return lo + (hi - lo) / 2; }

}  // namespace hds
