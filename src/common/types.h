// Fixed-width integer aliases and small vocabulary types used across hds.
#pragma once

#include <cstddef>
#include <cstdint>

namespace hds {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;
using usize = std::size_t;

/// Identifies a rank (process-equivalent) inside a Team. Dense in [0, size).
using rank_t = int;

}  // namespace hds
