// Small statistics helpers for the benchmark harness: median, mean,
// percentile and the 95% confidence interval of the median, matching how the
// paper reports measurements ("median of 10 executions along with the 95%
// confidence interval").
#pragma once

#include <vector>

#include "common/types.h"

namespace hds {

struct Summary {
  double median = 0.0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double ci_lo = 0.0;  ///< lower bound of the 95% CI of the median
  double ci_hi = 0.0;  ///< upper bound of the 95% CI of the median
  usize n = 0;
};

/// Median of a sample (copies, does not reorder the input).
double median(std::vector<double> xs);

/// Arithmetic mean; 0 for an empty sample.
double mean(const std::vector<double>& xs);

/// p-th percentile with linear interpolation, p in [0, 100].
double percentile(std::vector<double> xs, double p);

/// Full summary including a distribution-free (order-statistic) 95%
/// confidence interval for the median.
Summary summarize(std::vector<double> xs);

}  // namespace hds
