#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace hds {

double median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const usize n = xs.size();
  return (n % 2 == 1) ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double percentile(std::vector<double> xs, double p) {
  HDS_CHECK(p >= 0.0 && p <= 100.0);
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  const double pos = p / 100.0 * static_cast<double>(xs.size() - 1);
  const usize lo = static_cast<usize>(pos);
  const usize hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

Summary summarize(std::vector<double> xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;
  std::sort(xs.begin(), xs.end());
  s.min = xs.front();
  s.max = xs.back();
  s.mean = mean(xs);
  const usize n = xs.size();
  s.median = (n % 2 == 1) ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
  // Distribution-free CI for the median via binomial order statistics:
  // ranks floor((n - 1.96*sqrt(n))/2) and ceil(1 + (n + 1.96*sqrt(n))/2).
  const double z = 1.96;
  const double sq = z * std::sqrt(static_cast<double>(n));
  auto clamp_idx = [&](double v) {
    if (v < 0.0) return usize{0};
    if (v >= static_cast<double>(n)) return n - 1;
    return static_cast<usize>(v);
  };
  const usize lo_idx = clamp_idx(std::floor((static_cast<double>(n) - sq) / 2.0));
  const usize hi_idx = clamp_idx(std::ceil((static_cast<double>(n) + sq) / 2.0));
  s.ci_lo = xs[lo_idx];
  s.ci_hi = xs[hi_idx];
  return s;
}

}  // namespace hds
