// Morton (Z-order) encoding: interleaves coordinate bits so that sorting by
// the resulting code yields a space-filling-curve order. Used by the N-body
// load-balancing example, exactly the use case the paper's introduction
// motivates.
#pragma once

#include "common/types.h"

namespace hds {

namespace detail {
// Spread the low 21 bits of x so there are two zero bits between each.
constexpr u64 spread3(u64 x) {
  x &= 0x1fffffULL;  // 21 bits
  x = (x | (x << 32)) & 0x1f00000000ffffULL;
  x = (x | (x << 16)) & 0x1f0000ff0000ffULL;
  x = (x | (x << 8)) & 0x100f00f00f00f00fULL;
  x = (x | (x << 4)) & 0x10c30c30c30c30c3ULL;
  x = (x | (x << 2)) & 0x1249249249249249ULL;
  return x;
}

// Spread the low 32 bits of x so there is one zero bit between each.
constexpr u64 spread2(u64 x) {
  x &= 0xffffffffULL;
  x = (x | (x << 16)) & 0x0000ffff0000ffffULL;
  x = (x | (x << 8)) & 0x00ff00ff00ff00ffULL;
  x = (x | (x << 4)) & 0x0f0f0f0f0f0f0f0fULL;
  x = (x | (x << 2)) & 0x3333333333333333ULL;
  x = (x | (x << 1)) & 0x5555555555555555ULL;
  return x;
}

constexpr u64 compact3(u64 x) {
  x &= 0x1249249249249249ULL;
  x = (x ^ (x >> 2)) & 0x10c30c30c30c30c3ULL;
  x = (x ^ (x >> 4)) & 0x100f00f00f00f00fULL;
  x = (x ^ (x >> 8)) & 0x1f0000ff0000ffULL;
  x = (x ^ (x >> 16)) & 0x1f00000000ffffULL;
  x = (x ^ (x >> 32)) & 0x1fffffULL;
  return x;
}
}  // namespace detail

/// 3D Morton code from 21-bit coordinates (63 bits used).
constexpr u64 morton3(u32 x, u32 y, u32 z) {
  return detail::spread3(x) | (detail::spread3(y) << 1) |
         (detail::spread3(z) << 2);
}

/// 2D Morton code from 32-bit coordinates.
constexpr u64 morton2(u32 x, u32 y) {
  return detail::spread2(x) | (detail::spread2(y) << 1);
}

/// Inverse of morton3 for one axis (axis = 0, 1 or 2).
constexpr u32 morton3_axis(u64 code, int axis) {
  return static_cast<u32>(detail::compact3(code >> axis));
}

/// Quantize a coordinate in [lo, hi] onto the 21-bit Morton grid.
constexpr u32 morton_quantize(double v, double lo, double hi) {
  constexpr double kMax = 2097151.0;  // 2^21 - 1
  if (v <= lo) return 0;
  if (v >= hi) return static_cast<u32>(kMax);
  const double t = (v - lo) / (hi - lo);
  return static_cast<u32>(t * kMax);
}

}  // namespace hds
