// Merged post-run trace: per-rank event timelines plus the per-rank
// SimClock phase sums they must reconcile with. Exports:
//   - Chrome trace-event JSON (chrome://tracing, Perfetto): one virtual
//     timeline track per rank, slices categorized by phase;
//   - a P x P communication matrix (payload bytes rank -> rank) with
//     Gini / max-over-mean imbalance summaries.
#pragma once

#include <array>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.h"
#include "net/sim.h"
#include "obs/events.h"
#include "obs/metrics.h"

namespace hds::obs {

/// P x P matrix of payload bytes sent rank -> rank, built from the
/// per-destination detail of alltoall(v) events and from P2P sends.
/// Imbalance summaries are computed over off-diagonal row sums (the bytes
/// each rank pushed to *other* ranks), matching the off-rank volume the
/// sort's SortStats report.
struct CommMatrix {
  int nranks = 0;
  std::vector<u64> bytes;  ///< row-major [src * nranks + dst]

  u64 at(int src, int dst) const {
    return bytes[static_cast<usize>(src) * nranks + dst];
  }
  u64 row_sum(int src, bool include_self = false) const;
  u64 total(bool include_self = false) const;

  /// Mean of off-diagonal row sums.
  double mean_row() const;
  /// Max over mean of off-diagonal row sums (1.0 = perfectly balanced).
  double max_over_mean() const;
  /// Gini coefficient of off-diagonal row sums (0 = balanced, ->1 = one
  /// rank sends everything).
  double gini() const;

  /// One-line imbalance summary, e.g. "P=32, 12.0 MiB sent, gini=0.031,
  /// max/mean=1.12".
  std::string summary() const;
  /// Human-readable matrix, truncated to max_ranks rows/cols.
  std::string to_string(int max_ranks = 16) const;
};

/// The merged result of one traced Team::run.
struct TraceReport {
  int nranks = 0;
  double makespan_s = 0.0;
  std::vector<std::vector<TraceEvent>> events;  ///< per rank, chronological
  std::vector<std::vector<u64>> details;  ///< per rank: (peer, bytes) pairs
  /// SimClock::phase_seconds per rank at the end of the run — the ground
  /// truth the traced slices must reconcile with.
  std::vector<std::array<double, net::kPhaseCount>> clock_phase_s;
  std::vector<Metrics> metrics;  ///< per-rank counter/series registry

  usize total_events() const;
  /// Per-phase sum of slice durations of one rank's events.
  std::array<double, net::kPhaseCount> traced_phase_seconds(int rank) const;

  /// Payload-byte matrix. With data_only (default), only Traffic::Data ops
  /// count — control-plane collectives (histogram allreduces, boundary-cut
  /// alltoalls) are excluded, so row sums equal each rank's
  /// elements_sent_off_rank * sizeof(T) for the sort's data exchange.
  CommMatrix comm_matrix(bool data_only = true) const;

  /// Chrome trace-event JSON: "X" (complete) events with ts/dur in virtual
  /// microseconds, cat = phase, tid = rank, plus an "hds" section carrying
  /// ranks, phases, per-rank clock phase sums, counters, and (for small P)
  /// the comm matrix — enough for scripts to validate reconciliation
  /// without re-deriving it from the slices.
  void write_chrome_json(std::ostream& os) const;
};

}  // namespace hds::obs
