#include "obs/ledger.h"

#include <algorithm>
#include <iomanip>
#include <ostream>

#include "net/machine.h"

namespace hds::obs {

namespace {

void put(std::ostream& os, double v) { os << std::setprecision(17) << v; }

void put_str(std::ostream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

}  // namespace

RunLedger RunLedger::from_trace(const TraceReport& trace,
                                const net::CostModel& cost) {
  RunLedger led;
  const net::MachineModel& m = cost.machine();
  led.nranks = trace.nranks;
  led.nodes = m.nodes;
  led.ranks_per_node = m.ranks_per_node;
  led.data_scale = cost.data_scale();
  led.makespan_s = trace.makespan_s;
  led.phase_s = trace.clock_phase_s;

  led.machine = {
      {"net_alpha_s", m.net_alpha_s},
      {"net_bandwidth_Bps", m.net_bandwidth_Bps},
      {"bisection_Bps", m.bisection_Bps},
      {"coll_stage_overhead_s", m.coll_stage_overhead_s},
      {"alltoall_efficiency", m.alltoall_efficiency},
      {"mem_alpha_s", m.mem_alpha_s},
      {"memcpy_Bps", m.memcpy_Bps},
      {"numa_Bps", m.numa_Bps},
      {"numa_fabric_Bps", m.numa_fabric_Bps},
      {"sort_s_per_elem_log", m.sort_s_per_elem_log},
      {"radix_s_per_elem_pass", m.radix_s_per_elem_pass},
      {"merge_s_per_elem", m.merge_s_per_elem},
      {"heap_merge_s_per_elem_log", m.heap_merge_s_per_elem_log},
      {"heap_merge_cache_s_per_elem", m.heap_merge_cache_s_per_elem},
      {"partition_s_per_elem", m.partition_s_per_elem},
      {"scan_s_per_elem", m.scan_s_per_elem},
      {"binsearch_s_per_step", m.binsearch_s_per_step},
      {"intra_node_shortcut", m.intra_node_shortcut ? 1.0 : 0.0},
      {"checkpoint_overlap_residue", m.checkpoint_overlap_residue},
      {"merge_overlap_residue", m.merge_overlap_residue},
      {"fault_detect_s", m.fault_detect_s},
      {"agree_stage_s", m.agree_stage_s},
  };

  // Per-class totals, fit samples, and the phase timeline — one pass over
  // every rank's slices. Per-rank vectors may be shorter than nranks for an
  // enabled-but-empty run; missing ranks contribute nothing.
  std::array<SuperstepSpan, net::kPhaseCount> span{};
  std::array<bool, net::kPhaseCount> seen{};
  const usize have =
      std::min(static_cast<usize>(std::max(trace.nranks, 0)),
               trace.events.size());
  for (usize r = 0; r < have; ++r) {
    for (const TraceEvent& e : trace.events[r]) {
      const auto ci = static_cast<usize>(e.cls);
      if (ci < kOpClassCount) {
        OpClassStats& s = led.op_class[ci];
        s.count += 1;
        s.bytes += e.bytes;
        s.slice_s += e.t1 - e.t0;
        s.model_s += e.model_s;
        s.max_slice_s = std::max(s.max_slice_s, e.t1 - e.t0);
      }
      if (e.cls != OpClass::None && e.cls != OpClass::Compute)
        led.samples.push_back(OpSample{e.cls, e.bytes, e.model_s,
                                       e.t1 - e.t0});
      const auto pi = static_cast<usize>(e.phase);
      if (e.op == OpKind::Compute) led.compute_phase_s[pi] += e.t1 - e.t0;
      if (!seen[pi]) {
        span[pi] = SuperstepSpan{e.phase, e.t0, e.t1};
        seen[pi] = true;
      } else {
        span[pi].t0 = std::min(span[pi].t0, e.t0);
        span[pi].t1 = std::max(span[pi].t1, e.t1);
      }
    }
  }
  for (usize p = 0; p < net::kPhaseCount; ++p)
    if (seen[p]) led.timeline.push_back(span[p]);
  std::sort(led.timeline.begin(), led.timeline.end(),
            [](const SuperstepSpan& a, const SuperstepSpan& b) {
              return a.t0 < b.t0;
            });

  const usize have_metrics =
      std::min(static_cast<usize>(std::max(trace.nranks, 0)),
               trace.metrics.size());
  for (usize r = 0; r < have_metrics; ++r) {
    for (usize c = 0; c < kCounterCount; ++c)
      led.counters[c] += trace.metrics[r].value(static_cast<Counter>(c));
    for (double v : trace.metrics[r].series(Series::OverlapMergeFull))
      led.overlap_merge_full_s += v;
    for (double v : trace.metrics[r].series(Series::OverlapMergeCharged))
      led.overlap_merge_charged_s += v;
  }
  return led;
}

void RunLedger::write_json(std::ostream& os) const {
  os << "{\"schema\":\"hds-run-ledger\",\"version\":" << kVersion << ",\n";
  os << "\"bench\":";
  put_str(os, bench);
  os << ",\"nranks\":" << nranks << ",\"nodes\":" << nodes
     << ",\"ranks_per_node\":" << ranks_per_node << ",\"data_scale\":";
  put(os, data_scale);
  os << ",\"makespan_s\":";
  put(os, makespan_s);
  os << ",\"total_elements\":" << total_elements << ",\n";

  os << "\"config\":{";
  for (usize i = 0; i < config.size(); ++i) {
    if (i > 0) os << ",";
    put_str(os, config[i].first);
    os << ":";
    put_str(os, config[i].second);
  }
  os << "},\n\"machine\":{";
  for (usize i = 0; i < machine.size(); ++i) {
    if (i > 0) os << ",";
    put_str(os, machine[i].first);
    os << ":";
    put(os, machine[i].second);
  }
  os << "},\n\"phases\":[";
  for (usize p = 0; p < net::kPhaseCount; ++p) {
    if (p > 0) os << ",";
    os << "\"" << net::phase_name(static_cast<net::Phase>(p)) << "\"";
  }
  os << "],\n\"phase_seconds\":[";
  for (usize r = 0; r < phase_s.size(); ++r) {
    if (r > 0) os << ",";
    os << "[";
    for (usize p = 0; p < net::kPhaseCount; ++p) {
      if (p > 0) os << ",";
      put(os, phase_s[r][p]);
    }
    os << "]";
  }
  os << "],\n\"compute_phase_seconds\":[";
  for (usize p = 0; p < net::kPhaseCount; ++p) {
    if (p > 0) os << ",";
    put(os, compute_phase_s[p]);
  }
  os << "],\n\"op_classes\":{";
  bool first = true;
  for (usize c = 0; c < kOpClassCount; ++c) {
    const OpClassStats& s = op_class[c];
    if (s.count == 0) continue;
    if (!first) os << ",";
    first = false;
    os << "\n\"" << op_class_name(static_cast<OpClass>(c))
       << "\":{\"count\":" << s.count << ",\"bytes\":" << s.bytes
       << ",\"slice_s\":";
    put(os, s.slice_s);
    os << ",\"model_s\":";
    put(os, s.model_s);
    os << ",\"max_slice_s\":";
    put(os, s.max_slice_s);
    os << "}";
  }
  os << "},\n\"samples\":[";
  for (usize i = 0; i < samples.size(); ++i) {
    if (i > 0) os << ",";
    if (i % 8 == 0) os << "\n";
    os << "[" << static_cast<u32>(samples[i].cls) << "," << samples[i].bytes
       << ",";
    put(os, samples[i].model_s);
    os << ",";
    put(os, samples[i].slice_s);
    os << "]";
  }
  os << "],\n\"timeline\":[";
  for (usize i = 0; i < timeline.size(); ++i) {
    if (i > 0) os << ",";
    os << "{\"phase\":\"" << net::phase_name(timeline[i].phase)
       << "\",\"t0\":";
    put(os, timeline[i].t0);
    os << ",\"t1\":";
    put(os, timeline[i].t1);
    os << "}";
  }
  os << "],\n\"counters\":{";
  for (usize c = 0; c < kCounterCount; ++c) {
    if (c > 0) os << ",";
    os << "\"" << counter_name(static_cast<Counter>(c))
       << "\":" << counters[c];
  }
  os << "},\n\"overlap_merge_full_s\":";
  put(os, overlap_merge_full_s);
  os << ",\"overlap_merge_charged_s\":";
  put(os, overlap_merge_charged_s);
  os << ",\n\"scalars\":{";
  for (usize i = 0; i < scalars.size(); ++i) {
    if (i > 0) os << ",";
    put_str(os, scalars[i].first);
    os << ":";
    put(os, scalars[i].second);
  }
  os << "}";
  if (has_features) {
    os << ",\n\"features\":{\"radix_s_per_elem\":";
    put(os, features.radix_s_per_elem);
    os << ",\"merge_s_per_elem\":";
    put(os, features.merge_s_per_elem);
    os << ",\"overlap_residue_realized\":";
    put(os, features.overlap_residue_realized);
    os << ",\"overlap_residue_charged\":";
    put(os, features.overlap_residue_charged);
    os << ",\"total_err2_fit\":";
    put(os, features.total_err2_fit);
    os << ",\"total_err2_default\":";
    put(os, features.total_err2_default);
    os << ",\n\"classes\":{";
    for (usize i = 0; i < features.fits.size(); ++i) {
      const ClassFit& f = features.fits[i];
      if (i > 0) os << ",";
      os << "\n\"" << op_class_name(f.cls) << "\":{\"count\":" << f.count
         << ",\"bytes\":" << f.bytes << ",\"alpha_s\":";
      put(os, f.alpha_s);
      os << ",\"per_byte_s\":";
      put(os, f.per_byte_s);
      os << ",\"default_alpha_s\":";
      put(os, f.default_alpha_s);
      os << ",\"default_per_byte_s\":";
      put(os, f.default_per_byte_s);
      os << ",\"err2_fit\":";
      put(os, f.err2_fit);
      os << ",\"err2_default\":";
      put(os, f.err2_default);
      os << ",\"abs_err_fit\":";
      put(os, f.abs_err_fit);
      os << ",\"abs_err_default\":";
      put(os, f.abs_err_default);
      os << "}";
    }
    os << "}}";
  }
  os << "}\n";
}

}  // namespace hds::obs
