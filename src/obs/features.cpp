#include "obs/features.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <numeric>
#include <ostream>
#include <sstream>
#include <vector>

#include "common/table.h"
#include "net/machine.h"

namespace hds::obs {

namespace {

void put(std::ostream& os, double v) { os << std::setprecision(17) << v; }

std::string sci(double v) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(3) << v;
  return os.str();
}

/// The model's linear surrogate for one op class, evaluated for the
/// ledger's rank count and node placement.
net::OpCost class_default(OpClass cls, const RunLedger& led,
                          const net::CostModel& cost) {
  const int P = std::max(led.nranks, 1);
  const int rpn = std::max(led.ranks_per_node, 1);
  const int ns = std::max(1, std::min(led.nodes, (P + rpn - 1) / rpn));
  switch (cls) {
    case OpClass::Sync: return cost.probe_sync(P, ns);
    case OpClass::Tree: return cost.probe_tree(P, ns, net::Traffic::Control);
    case OpClass::Gather:
      return cost.probe_gather(P, ns, net::Traffic::Control);
    case OpClass::Alltoall: {
      std::vector<rank_t> members(static_cast<usize>(P));
      std::iota(members.begin(), members.end(), rank_t{0});
      return cost.probe_alltoall(members, net::Traffic::Data);
    }
    case OpClass::Send:
      return cost.probe_p2p(0, static_cast<rank_t>(P - 1),
                            net::Traffic::Data);
    case OpClass::Recovery:
      return net::OpCost{cost.detect_and_agree(P), 0.0};
    case OpClass::Checkpoint: {
      // Buddy checkpoints charge the overlap residue of a neighbor p2p;
      // secant it like the probes do.
      const rank_t buddy = P > 1 ? 1 : 0;
      const double a0 = cost.checkpoint(0, buddy, 0, net::Traffic::Data);
      const double a1 =
          cost.checkpoint(0, buddy, 64 * 1024, net::Traffic::Data);
      return net::OpCost{a0, (a1 - a0) / (64.0 * 1024.0)};
    }
    case OpClass::None:
    case OpClass::Recv:
    case OpClass::Compute: return net::OpCost{};
  }
  return net::OpCost{};
}

}  // namespace

CostFeatures fit_features(const RunLedger& ledger,
                          const net::CostModel& cost) {
  CostFeatures out;

  // One least-squares pass per class: y = alpha + beta * bytes against the
  // charged model seconds. Accumulate moments first.
  struct Moments {
    usize n = 0;
    u64 bytes = 0;
    double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  };
  std::array<Moments, kOpClassCount> mom{};
  for (const OpSample& s : ledger.samples) {
    Moments& m = mom[static_cast<usize>(s.cls)];
    const auto x = static_cast<double>(s.bytes);
    m.n += 1;
    m.bytes += s.bytes;
    m.sx += x;
    m.sy += s.model_s;
    m.sxx += x * x;
    m.sxy += x * s.model_s;
  }

  for (usize c = 0; c < kOpClassCount; ++c) {
    const Moments& m = mom[c];
    if (m.n == 0) continue;
    ClassFit f;
    f.cls = static_cast<OpClass>(c);
    f.count = m.n;
    f.bytes = m.bytes;
    const double n = static_cast<double>(m.n);
    const double var = m.sxx - m.sx * m.sx / n;
    // Degenerate byte spread (all samples the same size, or n < 2): the
    // slope is unidentifiable — fall back to beta = 0, alpha = mean.
    if (m.n >= 2 && var > 0.0) {
      f.per_byte_s = (m.sxy - m.sx * m.sy / n) / var;
      f.alpha_s = (m.sy - f.per_byte_s * m.sx) / n;
    } else {
      f.per_byte_s = 0.0;
      f.alpha_s = m.sy / n;
    }
    const net::OpCost def = class_default(f.cls, ledger, cost);
    f.default_alpha_s = def.alpha_s;
    f.default_per_byte_s = def.per_byte_s;
    out.fits.push_back(f);
  }

  // Residual pass.
  for (const OpSample& s : ledger.samples) {
    for (ClassFit& f : out.fits) {
      if (f.cls != s.cls) continue;
      const auto x = static_cast<double>(s.bytes);
      const double rf = s.model_s - (f.alpha_s + f.per_byte_s * x);
      const double rd =
          s.model_s - (f.default_alpha_s + f.default_per_byte_s * x);
      f.err2_fit += rf * rf;
      f.err2_default += rd * rd;
      f.abs_err_fit += std::abs(rf);
      f.abs_err_default += std::abs(rd);
      break;
    }
  }
  for (const ClassFit& f : out.fits) {
    out.total_err2_fit += f.err2_fit;
    out.total_err2_default += f.err2_default;
  }

  // Compute features. Charges use scaled element counts, so normalize by
  // the scaled total to recover the per-element constants.
  const double scaled_elems =
      static_cast<double>(ledger.total_elements) * ledger.data_scale;
  if (scaled_elems > 0.0) {
    out.radix_s_per_elem =
        ledger.compute_phase_s[static_cast<usize>(net::Phase::LocalSort)] /
        scaled_elems;
    out.merge_s_per_elem =
        ledger.compute_phase_s[static_cast<usize>(net::Phase::Merge)] /
        scaled_elems;
  }
  out.overlap_residue_charged = cost.machine().merge_overlap_residue;
  if (ledger.overlap_merge_full_s > 0.0)
    out.overlap_residue_realized =
        ledger.overlap_merge_charged_s / ledger.overlap_merge_full_s;
  return out;
}

void attach_features(RunLedger& ledger, const net::CostModel& cost) {
  ledger.features = fit_features(ledger, cost);
  ledger.has_features = true;
}

std::string attribution_table(const RunLedger& ledger) {
  Table t({"class", "ops", "bytes", "model_s", "wait_s", "alpha_fit",
           "beta_fit", "alpha_model", "beta_model", "err_model", "err_fit"});
  for (const ClassFit& f : ledger.features.fits) {
    const OpClassStats& s = ledger.op_class[static_cast<usize>(f.cls)];
    t.add_row({std::string(op_class_name(f.cls)), std::to_string(f.count),
               fmt_bytes(static_cast<double>(f.bytes)), sci(s.model_s),
               sci(s.slice_s - s.model_s), sci(f.alpha_s), sci(f.per_byte_s),
               sci(f.default_alpha_s), sci(f.default_per_byte_s),
               sci(f.abs_err_default), sci(f.abs_err_fit)});
  }
  std::ostringstream os;
  os << "differential profile (" << ledger.bench << ", P=" << ledger.nranks
     << "): model err " << sci(ledger.features.total_err2_default)
     << " -> fitted " << sci(ledger.features.total_err2_fit)
     << " (sum sq s^2)\n"
     << t.to_string();
  return os.str();
}

void write_calibration_json(std::ostream& os, const RunLedger& ledger) {
  const CostFeatures& ft = ledger.features;
  os << "{\"schema\":\"hds-calibration\",\"version\":1,\"bench\":\""
     << ledger.bench << "\",\"nranks\":" << ledger.nranks << ",\n";
  os << "\"radix_s_per_elem\":";
  put(os, ft.radix_s_per_elem);
  os << ",\"merge_s_per_elem\":";
  put(os, ft.merge_s_per_elem);
  os << ",\"overlap_residue_realized\":";
  put(os, ft.overlap_residue_realized);
  os << ",\"overlap_residue_charged\":";
  put(os, ft.overlap_residue_charged);
  os << ",\n\"classes\":{";
  for (usize i = 0; i < ft.fits.size(); ++i) {
    const ClassFit& f = ft.fits[i];
    if (i > 0) os << ",";
    // Constants feed the Tuner's predictor: negative latency or bandwidth
    // would be nonsense there, so clamp at the export boundary (the
    // unclamped values stay in the ledger for error accounting).
    os << "\n\"" << op_class_name(f.cls) << "\":{\"alpha_s\":";
    put(os, std::max(f.alpha_s, 0.0));
    os << ",\"per_byte_s\":";
    put(os, std::max(f.per_byte_s, 0.0));
    os << ",\"count\":" << f.count << "}";
  }
  os << "}}\n";
}

}  // namespace hds::obs
