// RunLedger: the single versioned JSON artifact every bench and example
// emits under --ledger=FILE. One ledger captures everything a later tuning
// or regression pass needs about one run: machine constants, the run's
// configuration, per-phase simulated time, per-op-class counts / bytes /
// latencies (distilled from RankTracer slices and obs::Metrics), the
// superstep timeline, and — once attach_features ran — the derived cost
// features (fitted alpha/beta per collective class, radix and merge
// seconds-per-element, realized vs charged overlap residue).
//
// The ledger is the data source for two consumers built in this PR:
//   - the differential profiler (obs/features.h), which replays the ledger
//     against CostModel's linear surrogates and reports per-op-class model
//     error plus least-squares-fitted constants (the calibration JSON the
//     ROADMAP-4 Tuner consumes);
//   - tools/perf_history.py, which distills bench ledgers into the
//     append-only BENCH_history.jsonl and gates >10% regressions in ci.sh.
//
// Schema versioning: the top-level JSON always carries
// {"schema": "hds-run-ledger", "version": kVersion}. Fields are only ever
// added; existing keys and the OpClass value order are frozen because
// committed history files persist them.
#pragma once

#include <array>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"
#include "net/cost_model.h"
#include "net/sim.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/report.h"

namespace hds::obs {

/// Totals of one op class over every rank's traced slices.
struct OpClassStats {
  u64 count = 0;        ///< slices recorded
  u64 bytes = 0;        ///< payload bytes summed over slices
  double slice_s = 0.0; ///< sum of [t0, t1] spans (includes sync wait)
  double model_s = 0.0; ///< sum of charged model costs
  double max_slice_s = 0.0;  ///< longest single slice
};

/// One fit observation: exactly one non-compute traced slice.
struct OpSample {
  OpClass cls = OpClass::None;
  u64 bytes = 0;
  double model_s = 0.0;  ///< cost the live model charged for the op
  double slice_s = 0.0;  ///< slice span including synchronization wait
};

/// Per-op-class comparison of the model's linear surrogate against the
/// least-squares fit of the run's own samples (y = charged model seconds,
/// x = payload bytes). Defined here rather than in features.h so RunLedger
/// can embed the result without a circular include.
struct ClassFit {
  OpClass cls = OpClass::None;
  usize count = 0;
  u64 bytes = 0;
  double alpha_s = 0.0;           ///< fitted latency (unclamped)
  double per_byte_s = 0.0;        ///< fitted inverse bandwidth (unclamped)
  double default_alpha_s = 0.0;   ///< CostModel probe surrogate
  double default_per_byte_s = 0.0;
  double err2_fit = 0.0;      ///< sum of squared residuals under the fit
  double err2_default = 0.0;  ///< ... under the probe surrogate
  double abs_err_fit = 0.0;       ///< sum of |residual| under the fit
  double abs_err_default = 0.0;
};

/// Derived cost features of one run — the quantities the ROADMAP-4 Tuner
/// regresses against, exported via features.h's calibration JSON.
struct CostFeatures {
  std::vector<ClassFit> fits;   ///< one row per class that had samples
  double radix_s_per_elem = 0.0;  ///< LocalSort compute seconds / element
  double merge_s_per_elem = 0.0;  ///< Merge compute seconds / element
  /// Realized overlap residue of the k-ary merge windows: sum of charged
  /// overlapped-merge seconds over the sum of full (un-overlapped) costs.
  double overlap_residue_realized = 0.0;
  /// What the machine model charges (MachineModel::merge_overlap_residue).
  double overlap_residue_charged = 0.0;
  double total_err2_fit = 0.0;
  double total_err2_default = 0.0;
};

/// Min-t0 / max-t1 span of one phase over all ranks' events, in start
/// order — the superstep timeline of the run.
struct SuperstepSpan {
  net::Phase phase = net::Phase::Other;
  double t0 = 0.0;
  double t1 = 0.0;
};

struct RunLedger {
  static constexpr int kVersion = 1;

  std::string bench;  ///< producing binary ("quickstart", "bench_exchange")
  int nranks = 0;
  int nodes = 0;
  int ranks_per_node = 0;
  double data_scale = 1.0;
  double makespan_s = 0.0;
  u64 total_elements = 0;  ///< global element count of the sorted input

  /// Run configuration as (key, value) strings — SortConfig knobs, seeds,
  /// key type. Free-form so benches can record whatever defines the cell.
  std::vector<std::pair<std::string, std::string>> config;
  /// Machine-model constants the run was charged with.
  std::vector<std::pair<std::string, double>> machine;

  std::vector<std::array<double, net::kPhaseCount>> phase_s;  ///< per rank
  /// Compute-slice seconds per phase, summed over ranks — the numerators of
  /// the radix / merge seconds-per-element features.
  std::array<double, net::kPhaseCount> compute_phase_s{};
  std::array<OpClassStats, kOpClassCount> op_class{};
  std::vector<OpSample> samples;
  std::vector<SuperstepSpan> timeline;
  std::array<u64, kCounterCount> counters{};  ///< summed over ranks
  /// Sum over ranks of the overlapped-merge series (see obs::Series).
  double overlap_merge_full_s = 0.0;
  double overlap_merge_charged_s = 0.0;

  /// Headline cells of the producing bench (speedups, per-cell seconds) —
  /// what tools/perf_history.py tracks across commits.
  std::vector<std::pair<std::string, double>> scalars;

  CostFeatures features;
  bool has_features = false;

  /// Distill a merged trace into a ledger. Fills everything derived from
  /// the trace and the cost model; bench / config / scalars /
  /// total_elements are the caller's. Works for an enabled-but-empty trace
  /// (all tables zero, no samples).
  static RunLedger from_trace(const TraceReport& trace,
                              const net::CostModel& cost);

  /// Serialize as the versioned hds-run-ledger JSON document. Deterministic
  /// for a given ledger (fixed key order, shortest-round-trip doubles).
  void write_json(std::ostream& os) const;
};

}  // namespace hds::obs
