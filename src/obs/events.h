// hds::obs event vocabulary — the operation ids shared by the runtime's
// communication layer (progress ledger, fault plans, collective-mismatch
// reports) and the tracer. Keeping the enum here lets the observability
// layer name ops without depending on runtime headers; runtime/comm.h
// aliases `detail::OpId = obs::OpKind` so existing fault-plan op ids keep
// their numeric values.
#pragma once

#include <string_view>

#include "common/types.h"
#include "net/cost_model.h"
#include "net/sim.h"

namespace hds::obs {

enum class OpKind : u32 {
  None = 0,
  Barrier = 1,
  Broadcast,
  Allreduce,
  Allgather,
  Allgatherv,
  Gatherv,
  Alltoall,
  Alltoallv,
  Exscan,
  Scan,
  Split,
  // Point-to-point ops: never published into a collective slot, but they
  // share the id space so fault plans and the watchdog dump can name them.
  Send,
  Recv,
  /// Tracer-only pseudo-op: a charged local-computation slice between
  /// communication ops. Never passes through Comm::note_op, so fault-plan
  /// op ids are unaffected.
  Compute,
  // Recovery ops (PR 6). Appended after Compute so every pre-existing op
  // keeps its numeric id (fault-plan op ids and archived traces depend on
  // the values above).
  /// Survivor agreement round after a rank failure: the deterministic
  /// rendezvous in which the survivors adopt a common survivor set and a
  /// fresh communicator. Charged only on the recovery path.
  Agree,
  /// Superstep-boundary checkpoint: snapshot of a rank's compact sort state
  /// replicated to its buddy rank.
  Checkpoint,
  // Hybrid histogramming (PR 10). Appended after Checkpoint so existing op
  // ids keep their numeric values.
  /// Sparse sampled-histogram gather of the hybrid splitter search: each
  /// rank contributes its sampled keys plus exact below/in-range counts for
  /// the unresolved key range, concatenated on every rank. Gather-shaped
  /// (and charged as such), so it shares OpClass::Gather with Allgatherv.
  SampleGather,
};

/// Cost-model class of an op: which analytic formula family the runtime
/// charged for it. The differential profiler fits one (alpha, beta) pair per
/// class, so ops that share a class must share a cost shape. Send and Recv
/// are distinct on purpose: a Recv's charged cost is always 0 (it is a pure
/// wait for the sender's arrival time) and folding it into Send would
/// corrupt the fit. Values are frozen once released (ledgers persist them).
enum class OpClass : u32 {
  None = 0,   ///< untagged / unknown (lint-rejected in Comm op bodies)
  Sync,       ///< zero-payload rendezvous (Barrier)
  Tree,       ///< log-P tree collectives (Broadcast, Allreduce, Scan, Split)
  Gather,     ///< allgather-shaped collectives (Allgather(v), Gatherv)
  Alltoall,   ///< dense P×P exchanges (Alltoall, Alltoallv and pull variant)
  Send,       ///< charged point-to-point send (payload or header)
  Recv,       ///< point-to-point receive wait (charged cost is always 0)
  Recovery,   ///< failure detection + survivor agreement (Agree)
  Checkpoint, ///< buddy checkpoint store/fetch
  Compute,    ///< tracer-only local computation slices
};
inline constexpr u32 kOpClassCount = 10;

constexpr std::string_view op_class_name(OpClass c) {
  switch (c) {
    case OpClass::None: return "none";
    case OpClass::Sync: return "sync";
    case OpClass::Tree: return "tree";
    case OpClass::Gather: return "gather";
    case OpClass::Alltoall: return "alltoall";
    case OpClass::Send: return "send";
    case OpClass::Recv: return "recv";
    case OpClass::Recovery: return "recovery";
    case OpClass::Checkpoint: return "checkpoint";
    case OpClass::Compute: return "compute";
  }
  return "?";
}

/// Canonical OpKind → OpClass mapping. The runtime tags every note_op call
/// explicitly (lint-enforced); this mapping exists so reports and tests can
/// cross-check the tags against the vocabulary.
constexpr OpClass op_class_of(OpKind op) {
  switch (op) {
    case OpKind::None: return OpClass::None;
    case OpKind::Barrier: return OpClass::Sync;
    case OpKind::Broadcast:
    case OpKind::Allreduce:
    case OpKind::Exscan:
    case OpKind::Scan:
    case OpKind::Split: return OpClass::Tree;
    case OpKind::Allgather:
    case OpKind::Allgatherv:
    case OpKind::Gatherv:
    case OpKind::SampleGather: return OpClass::Gather;
    case OpKind::Alltoall:
    case OpKind::Alltoallv: return OpClass::Alltoall;
    case OpKind::Send: return OpClass::Send;
    case OpKind::Recv: return OpClass::Recv;
    case OpKind::Compute: return OpClass::Compute;
    case OpKind::Agree: return OpClass::Recovery;
    case OpKind::Checkpoint: return OpClass::Checkpoint;
  }
  return OpClass::None;
}

constexpr std::string_view op_kind_name(OpKind op) {
  switch (op) {
    case OpKind::None: return "none";
    case OpKind::Barrier: return "Barrier";
    case OpKind::Broadcast: return "Broadcast";
    case OpKind::Allreduce: return "Allreduce";
    case OpKind::Allgather: return "Allgather";
    case OpKind::Allgatherv: return "Allgatherv";
    case OpKind::Gatherv: return "Gatherv";
    case OpKind::Alltoall: return "Alltoall";
    case OpKind::Alltoallv: return "Alltoallv";
    case OpKind::Exscan: return "Exscan";
    case OpKind::Scan: return "Scan";
    case OpKind::Split: return "Split";
    case OpKind::Send: return "Send";
    case OpKind::Recv: return "Recv";
    case OpKind::Compute: return "compute";
    case OpKind::Agree: return "Agree";
    case OpKind::Checkpoint: return "Checkpoint";
    case OpKind::SampleGather: return "SampleGather";
  }
  return "?";
}

/// One slice of a rank's virtual timeline: either a communication op
/// ([entry, exit] including the wait for the collective's common exit time)
/// or a coalesced computation slice between ops. Every SimClock advance of
/// a traced rank lands in exactly one event, so per-phase sums over events
/// reconcile with SimClock::phase_seconds.
struct TraceEvent {
  OpKind op = OpKind::None;
  OpClass cls = OpClass::None;
  net::Phase phase = net::Phase::Other;
  net::Traffic traffic = net::Traffic::Control;
  double t0 = 0.0;  ///< virtual start (seconds)
  double t1 = 0.0;  ///< virtual end (seconds)
  /// Cost the model charged this rank for the op itself, excluding the wait
  /// for the collective's common exit (so model_s <= t1 - t0 always; the
  /// difference is synchronization skew). 0 for Recv and uncharged sends.
  double model_s = 0.0;
  u64 bytes = 0;    ///< payload bytes this rank contributed (received, for Recv)
  u64 tag = 0;      ///< P2P tag (Send/Recv only)
  i32 peer = -1;    ///< world rank of root/partner, -1 if none
  u32 detail_off = 0;    ///< first (peer, bytes) pair in the detail array
  u32 detail_count = 0;  ///< number of (peer, bytes) pairs
};

/// Entry of the always-on ring of recent ops, kept for the watchdog's abort
/// dump even when full tracing is disabled.
struct RingEntry {
  u64 seq = 0;  ///< 0-based index of this op within the run
  OpKind op = OpKind::None;
  net::Phase phase = net::Phase::Other;
  double t = 0.0;  ///< rank's SimClock at op entry
  u64 bytes = 0;
  u64 tag = 0;
  i32 peer = -1;
};

}  // namespace hds::obs
