#include "obs/report.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.h"
#include "common/table.h"

namespace hds::obs {

u64 CommMatrix::row_sum(int src, bool include_self) const {
  u64 s = 0;
  for (int dst = 0; dst < nranks; ++dst)
    if (include_self || dst != src) s += at(src, dst);
  return s;
}

u64 CommMatrix::total(bool include_self) const {
  u64 s = 0;
  for (int src = 0; src < nranks; ++src) s += row_sum(src, include_self);
  return s;
}

double CommMatrix::mean_row() const {
  if (nranks == 0) return 0.0;
  return static_cast<double>(total()) / nranks;
}

double CommMatrix::max_over_mean() const {
  const double mean = mean_row();
  if (mean <= 0.0) return 1.0;
  u64 mx = 0;
  for (int src = 0; src < nranks; ++src)
    mx = std::max(mx, row_sum(src));
  return static_cast<double>(mx) / mean;
}

double CommMatrix::gini() const {
  if (nranks == 0) return 0.0;
  // G = sum_ij |x_i - x_j| / (2 n^2 mu), computed from the sorted rows as
  // G = (2 sum_i (i+1) x_(i) / (n sum x)) - (n+1)/n.
  std::vector<double> rows(static_cast<usize>(nranks));
  for (int src = 0; src < nranks; ++src)
    rows[static_cast<usize>(src)] = static_cast<double>(row_sum(src));
  std::sort(rows.begin(), rows.end());
  double weighted = 0.0, sum = 0.0;
  for (usize i = 0; i < rows.size(); ++i) {
    weighted += static_cast<double>(i + 1) * rows[i];
    sum += rows[i];
  }
  // All off-diagonal row sums zero (an empty or purely local run): nothing
  // is imbalanced, and the closed form above would divide by zero.
  if (sum <= 0.0) return 0.0;
  const double n = static_cast<double>(nranks);
  return 2.0 * weighted / (n * sum) - (n + 1.0) / n;
}

std::string CommMatrix::summary() const {
  std::ostringstream os;
  os << "P=" << nranks << ", " << fmt_bytes(static_cast<double>(total()))
     << " sent off-rank, gini=" << fmt(gini(), 3)
     << ", max/mean=" << fmt(max_over_mean(), 3);
  return os.str();
}

std::string CommMatrix::to_string(int max_ranks) const {
  const int n = std::min(nranks, max_ranks);
  std::ostringstream os;
  os << "bytes sent row -> col (" << nranks << " ranks";
  if (n < nranks) os << ", first " << n << " shown";
  os << "):\n";
  for (int src = 0; src < n; ++src) {
    os << "  " << std::setw(4) << src << " |";
    for (int dst = 0; dst < n; ++dst)
      os << " " << std::setw(9) << at(src, dst);
    os << "  | row " << fmt_bytes(static_cast<double>(row_sum(src))) << "\n";
  }
  return os.str();
}

usize TraceReport::total_events() const {
  usize n = 0;
  for (const auto& ev : events) n += ev.size();
  return n;
}

std::array<double, net::kPhaseCount> TraceReport::traced_phase_seconds(
    int rank) const {
  std::array<double, net::kPhaseCount> sums{};
  for (const TraceEvent& e : events.at(static_cast<usize>(rank)))
    sums[static_cast<usize>(e.phase)] += e.t1 - e.t0;
  return sums;
}

CommMatrix TraceReport::comm_matrix(bool data_only) const {
  CommMatrix m;
  m.nranks = nranks;
  m.bytes.assign(static_cast<usize>(nranks) * nranks, 0);
  // A run with tracing enabled but zero recorded ops (or a partially built
  // report) may carry fewer per-rank vectors than nranks; missing ranks
  // simply contribute nothing.
  const int have =
      std::min(nranks, static_cast<int>(std::min(events.size(),
                                                 details.size())));
  for (int src = 0; src < have; ++src) {
    const auto& det = details[static_cast<usize>(src)];
    for (const TraceEvent& e : events[static_cast<usize>(src)]) {
      if (data_only && e.traffic != net::Traffic::Data) continue;
      if (e.detail_count > 0) {
        for (u32 i = 0; i < e.detail_count; ++i) {
          const usize off = (static_cast<usize>(e.detail_off) + i) * 2;
          const auto dst = static_cast<i32>(det[off]);
          HDS_ASSERT(dst >= 0 && dst < nranks);
          m.bytes[static_cast<usize>(src) * nranks + dst] += det[off + 1];
        }
      } else if (e.op == OpKind::Send && e.peer >= 0 && e.peer < nranks) {
        m.bytes[static_cast<usize>(src) * nranks + e.peer] += e.bytes;
      }
    }
  }
  return m;
}

namespace {

// Shortest round-trip decimal representation, valid JSON (no nan/inf can
// occur: all values derive from finite SimClock times).
void put(std::ostream& os, double v) {
  os << std::setprecision(17) << v;
}

}  // namespace

void TraceReport::write_chrome_json(std::ostream& os) const {
  os << "{\"displayTimeUnit\":\"ms\",\n\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };
  sep();
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
     << "\"args\":{\"name\":\"hds simulated ranks\"}}";
  for (int r = 0; r < nranks; ++r) {
    sep();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << r
       << ",\"args\":{\"name\":\"rank " << r << "\"}}";
  }
  // Guard every per-rank array: a trace-enabled run that recorded nothing
  // (or a hand-built report) must still serialize as valid JSON with empty
  // slice arrays and zeroed sums, never index past the vectors it has.
  for (int r = 0; r < nranks && static_cast<usize>(r) < events.size(); ++r) {
    for (const TraceEvent& e : events[static_cast<usize>(r)]) {
      sep();
      os << "{\"name\":\"" << op_kind_name(e.op) << "\",\"cat\":\""
         << net::phase_name(e.phase) << "\",\"ph\":\"X\",\"pid\":0,\"tid\":"
         << r << ",\"ts\":";
      put(os, e.t0 * 1e6);
      os << ",\"dur\":";
      put(os, (e.t1 - e.t0) * 1e6);
      os << ",\"args\":{\"bytes\":" << e.bytes;
      if (e.peer >= 0) os << ",\"peer\":" << e.peer;
      if (e.op == OpKind::Send || e.op == OpKind::Recv)
        os << ",\"tag\":" << e.tag;
      os << "}}";
    }
  }
  os << "\n],\n\"hds\":{\"ranks\":" << nranks << ",\"makespan_s\":";
  put(os, makespan_s);
  os << ",\n\"phases\":[";
  for (usize p = 0; p < net::kPhaseCount; ++p) {
    if (p > 0) os << ",";
    os << "\"" << net::phase_name(static_cast<net::Phase>(p)) << "\"";
  }
  os << "],\n\"clock_phase_seconds\":[";
  for (int r = 0; r < nranks; ++r) {
    if (r > 0) os << ",";
    os << "[";
    const bool have_clock = static_cast<usize>(r) < clock_phase_s.size();
    for (usize p = 0; p < net::kPhaseCount; ++p) {
      if (p > 0) os << ",";
      put(os, have_clock ? clock_phase_s[static_cast<usize>(r)][p] : 0.0);
    }
    os << "]";
  }
  os << "],\n\"counters\":{";
  for (usize c = 0; c < kCounterCount; ++c) {
    if (c > 0) os << ",";
    os << "\"" << counter_name(static_cast<Counter>(c)) << "\":[";
    for (int r = 0; r < nranks; ++r) {
      if (r > 0) os << ",";
      os << (static_cast<usize>(r) < metrics.size()
                 ? metrics[static_cast<usize>(r)].value(static_cast<Counter>(c))
                 : u64{0});
    }
    os << "]";
  }
  os << "},\n\"histogram_convergence\":[";
  if (!metrics.empty()) {
    const auto conv = metrics[0].series(Series::HistogramConvergence);
    for (usize i = 0; i < conv.size(); ++i) {
      if (i > 0) os << ",";
      put(os, conv[i]);
    }
  }
  os << "]";
  // The full matrix is quadratic in P — only embed it at validation scale.
  if (nranks <= 512) {
    const CommMatrix m = comm_matrix();
    os << ",\n\"comm_matrix_bytes\":[";
    for (int src = 0; src < nranks; ++src) {
      if (src > 0) os << ",";
      os << "[";
      for (int dst = 0; dst < nranks; ++dst) {
        if (dst > 0) os << ",";
        os << m.at(src, dst);
      }
      os << "]";
    }
    os << "]";
  }
  os << "}}\n";
}

}  // namespace hds::obs
