// Differential profiler: replays a RunLedger against the CostModel's
// linearized per-class surrogates (net::CostModel::probe_*) and fits the
// run's own per-class (alpha, beta) constants by least squares over the
// ledger's samples (x = payload bytes, y = charged model seconds).
//
// The output is twofold:
//   - attribution_table(): a human-readable per-op-class table of model
//     error — count, volume, charged vs waited seconds, surrogate error vs
//     fitted error — turning the aggregate <=1e-9 reconciliation the obs
//     tests enforce into per-class attribution;
//   - write_calibration_json(): the fitted constants (clamped to >= 0) plus
//     the derived compute features, in the hds-calibration schema the
//     ROADMAP-4 Tuner consumes.
//
// The least-squares fit minimizes squared residuals over all linear
// predictors, and the probe surrogate is one such predictor — so
// total_err2_fit <= total_err2_default holds by construction, and the
// fitted-constants round-trip test (test_obs_ledger.cpp) asserts the strict
// version on a traced sort.
#pragma once

#include <iosfwd>
#include <string>

#include "net/cost_model.h"
#include "obs/ledger.h"

namespace hds::obs {

/// Fit per-class constants from `ledger.samples` and compare them against
/// the model's probe surrogates (evaluated for the ledger's P / node
/// placement). Returns one ClassFit per class that recorded samples.
CostFeatures fit_features(const RunLedger& ledger, const net::CostModel& cost);

/// fit_features + store the result into the ledger (sets has_features).
void attach_features(RunLedger& ledger, const net::CostModel& cost);

/// Render the per-op-class attribution table (requires attach_features).
std::string attribution_table(const RunLedger& ledger);

/// Emit the hds-calibration JSON document from a ledger with features
/// attached: fitted alpha/beta per class (clamped to >= 0), radix and merge
/// seconds-per-element, and the realized overlap residue.
void write_calibration_json(std::ostream& os, const RunLedger& ledger);

}  // namespace hds::obs
