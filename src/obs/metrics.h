// Typed per-rank counter/series registry. Algorithms emit named quantities
// (histogram iterations, exchange bytes on/off node, merge comparisons)
// through Comm::metrics() instead of growing ad-hoc fields on result
// structs; the Team owns one registry per rank and resets them each run.
// Counters are plain per-rank integers written only by the owning rank's
// thread — reading them is only defined after Team::run returns.
#pragma once

#include <array>
#include <span>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace hds::obs {

enum class Counter : u8 {
  HistogramIterations = 0,  ///< splitter-refinement rounds executed
  SplitterProbes,           ///< candidate splitters evaluated across rounds
  ExchangeBytesOnNode,   ///< payload bytes sent to other ranks on this node
  ExchangeBytesOffNode,  ///< payload bytes sent to ranks on other nodes
  ExchangeElementsKept,  ///< elements whose destination is the local rank
  /// Comparator invocations of the final k-way merge. Only emitted by the
  /// comparison-based strategies (BinaryTree, Tournament); the Sort
  /// strategy's radix path does no comparisons.
  MergeComparisons,
  // Recovery counters (PR 6).
  CheckpointBytes,      ///< serialized checkpoint bytes shipped to the buddy
  CheckpointCount,      ///< superstep-boundary checkpoints taken
  SuperstepsExecuted,   ///< sort supersteps this rank actually ran
  RecoveryCount,        ///< failure-recovery rounds this rank participated in
  // Hybrid histogramming counters (PR 10).
  SampledRounds,        ///< sampled-histogram rounds of the splitter search
  SampleKeysGathered,   ///< sample keys pooled across all sampled rounds
  /// Histogram-phase control bytes moved by sampled gathers (the pooled
  /// sample blocks). Split from the dense bytes so the sampled-vs-dense
  /// traffic trade-off of the hybrid mode is directly visible per run.
  HistogramBytesSampled,
  HistogramBytesDense,  ///< histogram-phase bytes of dense count allreduces
};
inline constexpr usize kCounterCount = 14;

constexpr std::string_view counter_name(Counter c) {
  switch (c) {
    case Counter::HistogramIterations: return "histogram_iterations";
    case Counter::SplitterProbes: return "splitter_probes";
    case Counter::ExchangeBytesOnNode: return "exchange_bytes_on_node";
    case Counter::ExchangeBytesOffNode: return "exchange_bytes_off_node";
    case Counter::ExchangeElementsKept: return "exchange_elements_kept";
    case Counter::MergeComparisons: return "merge_comparisons";
    case Counter::CheckpointBytes: return "checkpoint_bytes";
    case Counter::CheckpointCount: return "checkpoint_count";
    case Counter::SuperstepsExecuted: return "supersteps_executed";
    case Counter::RecoveryCount: return "recovery_count";
    case Counter::SampledRounds: return "sampled_rounds";
    case Counter::SampleKeysGathered: return "sample_keys_gathered";
    case Counter::HistogramBytesSampled: return "histogram_bytes_sampled";
    case Counter::HistogramBytesDense: return "histogram_bytes_dense";
  }
  return "?";
}

enum class Series : u8 {
  /// One value per histogram round: max over unresolved splitter boundaries
  /// of the relative rank error |achieved - target| / N (0.0 once every
  /// boundary is within its tolerance window). The convergence curve of
  /// the paper's Table 3.
  HistogramConvergence = 0,
  /// One value per recovery round: simulated seconds from the failure
  /// becoming visible to this rank until the survivor agreement completed.
  RecoverySeconds,
  /// One value per overlapped merge window: the un-overlapped cost the
  /// k-way heap merge would have charged (kway_heap_merge). Paired with
  /// OverlapMergeCharged so the ledger can derive the *realized* overlap
  /// residue (charged / full) against the model's merge_overlap_residue.
  OverlapMergeFull,
  /// One value per overlapped merge window: the residue-discounted cost the
  /// clock actually advanced (overlapped_merge).
  OverlapMergeCharged,
};
inline constexpr usize kSeriesCount = 4;

constexpr std::string_view series_name(Series s) {
  switch (s) {
    case Series::HistogramConvergence: return "histogram_convergence";
    case Series::RecoverySeconds: return "recovery_seconds";
    case Series::OverlapMergeFull: return "overlap_merge_full_s";
    case Series::OverlapMergeCharged: return "overlap_merge_charged_s";
  }
  return "?";
}

class Metrics {
 public:
  void add(Counter c, u64 v) { counters_[static_cast<usize>(c)] += v; }
  u64 value(Counter c) const { return counters_[static_cast<usize>(c)]; }
  const std::array<u64, kCounterCount>& counters() const { return counters_; }

  void append(Series s, double v) {
    series_[static_cast<usize>(s)].push_back(v);
  }
  std::span<const double> series(Series s) const {
    return series_[static_cast<usize>(s)];
  }

  void reset() {
    counters_.fill(0);
    for (auto& s : series_) s.clear();
  }

 private:
  std::array<u64, kCounterCount> counters_{};
  std::array<std::vector<double>, kSeriesCount> series_{};
};

}  // namespace hds::obs
