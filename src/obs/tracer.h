// Per-rank, append-only event tracer. Each simulated rank owns one
// RankTracer; the communication layer brackets every op with
// op_begin/op_end, and (when tracing is enabled) the rank's SimClock feeds
// every advance through on_advance so charged computation between ops
// becomes coalesced "compute" slices. There is no cross-rank locking on
// the hot path: the event buffers are written only by the owning rank's
// thread and read only after Team::run joins (the join provides the
// happens-before edge).
//
// Independently of the trace toggle, a small fixed-capacity ring of the
// most recent op entries is always maintained under a per-rank mutex so
// the watchdog thread can snapshot "what was this rank doing" for its
// abort dump without racing the rank.
#pragma once

#include <algorithm>
#include <mutex>
#include <span>
#include <vector>

#include "common/types.h"
#include "net/sim.h"
#include "obs/events.h"

namespace hds::obs {

class RankTracer final : public net::AdvanceSink {
 public:
  explicit RankTracer(usize ring_capacity) : ring_(ring_capacity) {}

  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  void reset() {
    events_.clear();
    details_.clear();
    pending_open_ = false;
    compute_open_ = false;
    std::lock_guard lock(ring_mu_);
    ring_seq_ = 0;
  }

  /// A communication op starts at virtual time t. Always records into the
  /// ring; opens a trace event only when tracing is enabled. Advances
  /// between op_begin and op_end (fault stragglers, collective sync,
  /// message-arrival waits) are folded into the op's [t0, t1] span.
  void op_begin(OpKind op, OpClass cls, net::Phase phase, double t, u64 bytes,
                i32 peer, u64 tag, net::Traffic traffic) {
    if (!ring_.empty()) {
      std::lock_guard lock(ring_mu_);
      ring_[ring_seq_ % ring_.size()] =
          RingEntry{ring_seq_, op, phase, t, bytes, tag, peer};
      ++ring_seq_;
    }
    if (!enabled_) return;
    flush_compute();
    if (pending_open_) events_.push_back(pending_);  // defensive: unclosed op
    pending_ = TraceEvent{op,   cls,   phase,
                          traffic,
                          t,    t,     0.0,
                          bytes,
                          tag,  peer,  static_cast<u32>(details_.size() / 2),
                          0};
    pending_open_ = true;
  }

  /// Attach one (destination world rank, bytes) pair to the op in flight —
  /// the per-destination breakdown of an alltoall(v) this rank sent.
  void op_detail(i32 peer_world, u64 bytes) {
    if (!enabled_ || !pending_open_) return;
    details_.push_back(static_cast<u64>(peer_world));
    details_.push_back(bytes);
    ++pending_.detail_count;
  }

  /// Override the payload byte count of the op in flight (Recv learns its
  /// size only once the message arrives).
  void op_bytes(u64 bytes) {
    if (!enabled_ || !pending_open_) return;
    pending_.bytes = bytes;
  }

  /// Record the model cost charged for the op in flight (the epoch's
  /// root-computed cost for collectives, the p2p charge for sends). Kept
  /// separate from [t0, t1] so the differential profiler can split "what the
  /// model charged" from "what the rank waited".
  void op_model(double model_s) {
    if (!enabled_ || !pending_open_) return;
    pending_.model_s = model_s;
  }

  void op_end(double t) {
    if (!enabled_ || !pending_open_) return;
    pending_.t1 = t;
    events_.push_back(pending_);
    pending_open_ = false;
  }

  /// SimClock hook: an advance outside any op becomes (part of) a compute
  /// slice; contiguous same-phase advances coalesce into one event.
  void on_advance(net::Phase p, double t0, double t1) override {
    if (!enabled_ || pending_open_) return;
    if (compute_open_ && compute_.phase == p && compute_.t1 == t0) {
      compute_.t1 = t1;
      return;
    }
    flush_compute();
    compute_ = TraceEvent{OpKind::Compute, OpClass::Compute, p,
                          net::Traffic::Control,
                          t0,              t1, 0.0,
                          0,
                          0,               -1, 0,
                          0};
    compute_open_ = true;
  }

  /// Close the trailing compute slice; call after the rank's thread joined.
  void finalize() { flush_compute(); }

  std::span<const TraceEvent> events() const { return events_; }
  std::span<const u64> details() const { return details_; }
  std::vector<TraceEvent> take_events() { return std::move(events_); }
  std::vector<u64> take_details() { return std::move(details_); }
  usize events_capacity() const { return events_.capacity(); }
  usize details_capacity() const { return details_.capacity(); }

  /// Thread-safe snapshot of the recent-op ring, oldest first. Safe to call
  /// from the watchdog while the rank is running.
  std::vector<RingEntry> ring_snapshot() const {
    std::vector<RingEntry> out;
    std::lock_guard lock(ring_mu_);
    if (ring_.empty() || ring_seq_ == 0) return out;
    const u64 n = std::min<u64>(ring_seq_, ring_.size());
    out.reserve(n);
    for (u64 i = ring_seq_ - n; i < ring_seq_; ++i)
      out.push_back(ring_[i % ring_.size()]);
    return out;
  }

 private:
  void flush_compute() {
    if (compute_open_ && compute_.t1 > compute_.t0)
      events_.push_back(compute_);
    compute_open_ = false;
  }

  bool enabled_ = false;
  bool pending_open_ = false;
  bool compute_open_ = false;
  TraceEvent pending_{};
  TraceEvent compute_{};
  std::vector<TraceEvent> events_;
  std::vector<u64> details_;  ///< flattened (peer, bytes) pairs

  mutable std::mutex ring_mu_;
  std::vector<RingEntry> ring_;
  u64 ring_seq_ = 0;
};

}  // namespace hds::obs
