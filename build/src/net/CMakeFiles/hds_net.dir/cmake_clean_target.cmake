file(REMOVE_RECURSE
  "libhds_net.a"
)
