# Empty dependencies file for hds_net.
# This may be replaced when dependencies are built.
