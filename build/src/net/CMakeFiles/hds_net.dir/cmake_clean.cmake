file(REMOVE_RECURSE
  "CMakeFiles/hds_net.dir/calibrate.cpp.o"
  "CMakeFiles/hds_net.dir/calibrate.cpp.o.d"
  "CMakeFiles/hds_net.dir/cost_model.cpp.o"
  "CMakeFiles/hds_net.dir/cost_model.cpp.o.d"
  "CMakeFiles/hds_net.dir/machine.cpp.o"
  "CMakeFiles/hds_net.dir/machine.cpp.o.d"
  "libhds_net.a"
  "libhds_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hds_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
