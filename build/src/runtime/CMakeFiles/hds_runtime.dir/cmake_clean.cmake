file(REMOVE_RECURSE
  "CMakeFiles/hds_runtime.dir/team.cpp.o"
  "CMakeFiles/hds_runtime.dir/team.cpp.o.d"
  "libhds_runtime.a"
  "libhds_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hds_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
