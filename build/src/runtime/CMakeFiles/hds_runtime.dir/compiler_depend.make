# Empty compiler generated dependencies file for hds_runtime.
# This may be replaced when dependencies are built.
