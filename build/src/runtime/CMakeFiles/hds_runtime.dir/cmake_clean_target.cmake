file(REMOVE_RECURSE
  "libhds_runtime.a"
)
