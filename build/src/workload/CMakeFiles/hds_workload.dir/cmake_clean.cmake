file(REMOVE_RECURSE
  "CMakeFiles/hds_workload.dir/distributions.cpp.o"
  "CMakeFiles/hds_workload.dir/distributions.cpp.o.d"
  "libhds_workload.a"
  "libhds_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hds_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
