file(REMOVE_RECURSE
  "CMakeFiles/hds_common.dir/stats.cpp.o"
  "CMakeFiles/hds_common.dir/stats.cpp.o.d"
  "CMakeFiles/hds_common.dir/table.cpp.o"
  "CMakeFiles/hds_common.dir/table.cpp.o.d"
  "libhds_common.a"
  "libhds_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hds_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
