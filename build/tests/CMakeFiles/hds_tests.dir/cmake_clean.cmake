file(REMOVE_RECURSE
  "CMakeFiles/hds_tests.dir/test_algorithms.cpp.o"
  "CMakeFiles/hds_tests.dir/test_algorithms.cpp.o.d"
  "CMakeFiles/hds_tests.dir/test_baselines.cpp.o"
  "CMakeFiles/hds_tests.dir/test_baselines.cpp.o.d"
  "CMakeFiles/hds_tests.dir/test_capacity_and_verify.cpp.o"
  "CMakeFiles/hds_tests.dir/test_capacity_and_verify.cpp.o.d"
  "CMakeFiles/hds_tests.dir/test_common.cpp.o"
  "CMakeFiles/hds_tests.dir/test_common.cpp.o.d"
  "CMakeFiles/hds_tests.dir/test_core_merge.cpp.o"
  "CMakeFiles/hds_tests.dir/test_core_merge.cpp.o.d"
  "CMakeFiles/hds_tests.dir/test_core_multiselect.cpp.o"
  "CMakeFiles/hds_tests.dir/test_core_multiselect.cpp.o.d"
  "CMakeFiles/hds_tests.dir/test_core_selection.cpp.o"
  "CMakeFiles/hds_tests.dir/test_core_selection.cpp.o.d"
  "CMakeFiles/hds_tests.dir/test_edge_cases.cpp.o"
  "CMakeFiles/hds_tests.dir/test_edge_cases.cpp.o.d"
  "CMakeFiles/hds_tests.dir/test_exchange_algorithms.cpp.o"
  "CMakeFiles/hds_tests.dir/test_exchange_algorithms.cpp.o.d"
  "CMakeFiles/hds_tests.dir/test_key_traits_typed.cpp.o"
  "CMakeFiles/hds_tests.dir/test_key_traits_typed.cpp.o.d"
  "CMakeFiles/hds_tests.dir/test_properties.cpp.o"
  "CMakeFiles/hds_tests.dir/test_properties.cpp.o.d"
  "CMakeFiles/hds_tests.dir/test_runtime.cpp.o"
  "CMakeFiles/hds_tests.dir/test_runtime.cpp.o.d"
  "CMakeFiles/hds_tests.dir/test_sort.cpp.o"
  "CMakeFiles/hds_tests.dir/test_sort.cpp.o.d"
  "CMakeFiles/hds_tests.dir/test_workload.cpp.o"
  "CMakeFiles/hds_tests.dir/test_workload.cpp.o.d"
  "hds_tests"
  "hds_tests.pdb"
  "hds_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hds_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
