
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_algorithms.cpp" "tests/CMakeFiles/hds_tests.dir/test_algorithms.cpp.o" "gcc" "tests/CMakeFiles/hds_tests.dir/test_algorithms.cpp.o.d"
  "/root/repo/tests/test_baselines.cpp" "tests/CMakeFiles/hds_tests.dir/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/hds_tests.dir/test_baselines.cpp.o.d"
  "/root/repo/tests/test_capacity_and_verify.cpp" "tests/CMakeFiles/hds_tests.dir/test_capacity_and_verify.cpp.o" "gcc" "tests/CMakeFiles/hds_tests.dir/test_capacity_and_verify.cpp.o.d"
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/hds_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/hds_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_core_merge.cpp" "tests/CMakeFiles/hds_tests.dir/test_core_merge.cpp.o" "gcc" "tests/CMakeFiles/hds_tests.dir/test_core_merge.cpp.o.d"
  "/root/repo/tests/test_core_multiselect.cpp" "tests/CMakeFiles/hds_tests.dir/test_core_multiselect.cpp.o" "gcc" "tests/CMakeFiles/hds_tests.dir/test_core_multiselect.cpp.o.d"
  "/root/repo/tests/test_core_selection.cpp" "tests/CMakeFiles/hds_tests.dir/test_core_selection.cpp.o" "gcc" "tests/CMakeFiles/hds_tests.dir/test_core_selection.cpp.o.d"
  "/root/repo/tests/test_edge_cases.cpp" "tests/CMakeFiles/hds_tests.dir/test_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/hds_tests.dir/test_edge_cases.cpp.o.d"
  "/root/repo/tests/test_exchange_algorithms.cpp" "tests/CMakeFiles/hds_tests.dir/test_exchange_algorithms.cpp.o" "gcc" "tests/CMakeFiles/hds_tests.dir/test_exchange_algorithms.cpp.o.d"
  "/root/repo/tests/test_key_traits_typed.cpp" "tests/CMakeFiles/hds_tests.dir/test_key_traits_typed.cpp.o" "gcc" "tests/CMakeFiles/hds_tests.dir/test_key_traits_typed.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/hds_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/hds_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_runtime.cpp" "tests/CMakeFiles/hds_tests.dir/test_runtime.cpp.o" "gcc" "tests/CMakeFiles/hds_tests.dir/test_runtime.cpp.o.d"
  "/root/repo/tests/test_sort.cpp" "tests/CMakeFiles/hds_tests.dir/test_sort.cpp.o" "gcc" "tests/CMakeFiles/hds_tests.dir/test_sort.cpp.o.d"
  "/root/repo/tests/test_workload.cpp" "tests/CMakeFiles/hds_tests.dir/test_workload.cpp.o" "gcc" "tests/CMakeFiles/hds_tests.dir/test_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hds_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hds_net.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/hds_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/hds_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
