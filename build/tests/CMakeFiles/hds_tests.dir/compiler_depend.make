# Empty compiler generated dependencies file for hds_tests.
# This may be replaced when dependencies are built.
