# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[example_quickstart]=] "/root/repo/build/examples/quickstart" "--ranks=4" "--keys-per-rank=5000")
set_tests_properties([=[example_quickstart]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_nbody_morton]=] "/root/repo/build/examples/nbody_morton" "--ranks=4" "--particles-per-rank=5000")
set_tests_properties([=[example_nbody_morton]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_sparse_matrix_balance]=] "/root/repo/build/examples/sparse_matrix_balance" "--ranks=6" "--nnz-per-io-rank=8000")
set_tests_properties([=[example_sparse_matrix_balance]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_distributed_topk]=] "/root/repo/build/examples/distributed_topk" "--ranks=4" "--samples-per-rank=20000")
set_tests_properties([=[example_distributed_topk]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
