# Empty compiler generated dependencies file for nbody_morton.
# This may be replaced when dependencies are built.
