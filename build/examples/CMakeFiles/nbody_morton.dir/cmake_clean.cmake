file(REMOVE_RECURSE
  "CMakeFiles/nbody_morton.dir/nbody_morton.cpp.o"
  "CMakeFiles/nbody_morton.dir/nbody_morton.cpp.o.d"
  "nbody_morton"
  "nbody_morton.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbody_morton.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
