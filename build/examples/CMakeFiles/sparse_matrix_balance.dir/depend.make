# Empty dependencies file for sparse_matrix_balance.
# This may be replaced when dependencies are built.
