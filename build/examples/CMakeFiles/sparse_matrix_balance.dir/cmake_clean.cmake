file(REMOVE_RECURSE
  "CMakeFiles/sparse_matrix_balance.dir/sparse_matrix_balance.cpp.o"
  "CMakeFiles/sparse_matrix_balance.dir/sparse_matrix_balance.cpp.o.d"
  "sparse_matrix_balance"
  "sparse_matrix_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_matrix_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
