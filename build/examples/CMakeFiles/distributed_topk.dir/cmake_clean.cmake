file(REMOVE_RECURSE
  "CMakeFiles/distributed_topk.dir/distributed_topk.cpp.o"
  "CMakeFiles/distributed_topk.dir/distributed_topk.cpp.o.d"
  "distributed_topk"
  "distributed_topk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_topk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
