# Empty dependencies file for distributed_topk.
# This may be replaced when dependencies are built.
