# Empty dependencies file for bench_table_iterations.
# This may be replaced when dependencies are built.
