# Empty dependencies file for bench_fig4_shared.
# This may be replaced when dependencies are built.
