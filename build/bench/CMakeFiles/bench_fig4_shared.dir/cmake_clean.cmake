file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_shared.dir/bench_fig4_shared.cpp.o"
  "CMakeFiles/bench_fig4_shared.dir/bench_fig4_shared.cpp.o.d"
  "bench_fig4_shared"
  "bench_fig4_shared.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_shared.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
