
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig4_shared.cpp" "bench/CMakeFiles/bench_fig4_shared.dir/bench_fig4_shared.cpp.o" "gcc" "bench/CMakeFiles/bench_fig4_shared.dir/bench_fig4_shared.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hds_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hds_net.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/hds_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/hds_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
