# Empty compiler generated dependencies file for bench_merge_study.
# This may be replaced when dependencies are built.
