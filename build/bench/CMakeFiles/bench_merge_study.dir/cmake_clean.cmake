file(REMOVE_RECURSE
  "CMakeFiles/bench_merge_study.dir/bench_merge_study.cpp.o"
  "CMakeFiles/bench_merge_study.dir/bench_merge_study.cpp.o.d"
  "bench_merge_study"
  "bench_merge_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_merge_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
