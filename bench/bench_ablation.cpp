// Ablation studies over the design choices the paper discusses:
//
//  (1) epsilon sweep — softening perfect partitioning reduces histogram
//      iterations and end-to-end time (Sec. VI-B: "we certainly get a
//      better scaling if we soften the perfect partitioning requirement");
//  (2) splitter initialization — min/max reduction (the paper's choice) vs
//      sampled quantile brackets (the sample-sort idea, Sec. III-B);
//  (3) PGAS intra-node shortcut — shared-memory collectives vs MPI-through-
//      the-loopback (Sec. VI-A1: "we replace collective communication by
//      fast memcpy operations");
//  (4) final merge strategy on the full sort (Sec. V-C).
#include <iostream>

#include "bench_common.h"
#include "core/histogram_sort.h"
#include "workload/distributions.h"

namespace {

using namespace hds;
using runtime::Comm;
using runtime::Team;

struct RunResult {
  double time;
  usize iterations;
};

// Set once in main; lets run_sort honour --trace without threading the
// argument through every ablation call site. The trace file ends up holding
// the last configuration run.
const bench::Args* g_args = nullptr;

RunResult run_sort(int nodes, int rpn, u64 model_keys, u64 real_keys,
                   core::SortConfig scfg, bool shortcut) {
  runtime::TeamConfig cfg;
  cfg.nranks = nodes * rpn;
  cfg.machine = net::MachineModel::supermuc_phase2(nodes, rpn);
  cfg.machine.intra_node_shortcut = shortcut;
  cfg.data_scale =
      static_cast<double>(model_keys) / static_cast<double>(real_keys);
  cfg.trace = g_args != nullptr && g_args->has("trace");
  Team team(cfg);
  workload::GenConfig gen;
  gen.seed = 11;
  usize iters = 0;
  const usize n_rank = static_cast<usize>(real_keys) / cfg.nranks;
  team.run([&](Comm& c) {
    auto local = workload::generate_u64(gen, c.rank(), c.size(), n_rank);
    const auto st = core::sort(c, local, scfg);
    if (c.rank() == 0) iters = st.histogram_iterations;
  });
  if (g_args != nullptr) {
    bench::write_trace_if_requested(*g_args, team);
    bench::write_ledger_if_requested(
        *g_args, team, "bench_ablation",
        static_cast<u64>(n_rank) * static_cast<u64>(cfg.nranks),
        {{"nodes", std::to_string(nodes)},
         {"ranks_per_node", std::to_string(rpn)},
         {"intra_node_shortcut", shortcut ? "1" : "0"}},
        {{"sim_makespan_s", team.stats().makespan_s}});
  }
  return {team.stats().makespan_s, iters};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hds;
  const bench::Args args(argc, argv);
  g_args = &args;
  const int nodes = static_cast<int>(args.get_int("nodes", 16));
  const int rpn = static_cast<int>(args.get_int("ranks-per-node", 16));
  const u64 model_keys = args.get_int("model-keys", u64{1} << 28);
  const u64 real_keys = args.get_int("real-keys", u64{1} << 19);

  bench::print_header(
      "Ablations over design choices",
      "Secs. III-B, V-A, V-C, VI-A1, VI-B; uniform u64, " +
          std::to_string(nodes) + " nodes x " + std::to_string(rpn) +
          " ranks");

  // (1) epsilon sweep.
  {
    Table t({"epsilon", "histogram iters", "time [s]", "vs eps=0"});
    double t0 = 0.0;
    for (double eps : {0.0, 0.01, 0.05, 0.1, 0.5}) {
      core::SortConfig scfg;
      scfg.epsilon = eps;
      const auto r = run_sort(nodes, rpn, model_keys, real_keys, scfg, true);
      if (eps == 0.0) t0 = r.time;
      t.add_row({fmt(eps, 2), std::to_string(r.iterations), fmt(r.time),
                 fmt(t0 / r.time, 2) + "x"});
    }
    std::cout << "(1) load-balance threshold epsilon:\n" << t.to_string()
              << "\n";
  }

  // (2) splitter initialization.
  {
    Table t({"init strategy", "histogram iters", "time [s]"});
    for (auto [name, init] :
         {std::pair{"min/max reduction (paper)", core::SplitterInit::MinMax},
          std::pair{"sampled brackets", core::SplitterInit::Sampled}}) {
      core::SortConfig scfg;
      scfg.init = init;
      scfg.sample_per_rank = 64;
      const auto r = run_sort(nodes, rpn, model_keys, real_keys, scfg, true);
      t.add_row({name, std::to_string(r.iterations), fmt(r.time)});
    }
    std::cout << "(2) initial splitter guesses:\n" << t.to_string() << "\n";
  }

  // (3) PGAS intra-node shortcut.
  {
    Table t({"intra-node collectives", "time [s]"});
    for (auto [name, shortcut] :
         {std::pair{"shared-memory memcpy (PGAS)", true},
          std::pair{"through the MPI stack", false}}) {
      const auto r =
          run_sort(nodes, rpn, model_keys, real_keys, {}, shortcut);
      t.add_row({name, fmt(r.time)});
    }
    std::cout << "(3) PGAS shared-memory shortcut:\n" << t.to_string()
              << "\n";
  }

  // (4) merge strategy on the full sort.
  {
    Table t({"final merge", "time [s]"});
    for (auto strategy :
         {core::MergeStrategy::Sort, core::MergeStrategy::BinaryTree,
          core::MergeStrategy::Tournament}) {
      core::SortConfig scfg;
      scfg.merge = strategy;
      const auto r = run_sort(nodes, rpn, model_keys, real_keys, scfg, true);
      t.add_row({std::string(core::merge_name(strategy)), fmt(r.time)});
    }
    std::cout << "(4) final local merge strategy:\n" << t.to_string() << "\n";
  }

  // (5) exchange algorithm (Sec. VI-E1 future work, delivered).
  {
    Table t({"exchange", "time [s]"});
    struct Cfg {
      const char* name;
      core::ExchangeAlgorithm algo;
      bool overlap;
    };
    for (const Cfg& x : {Cfg{"ALL-TO-ALLV collective (paper)",
                             core::ExchangeAlgorithm::Alltoallv, false},
                         Cfg{"1-factor pairwise rounds",
                             core::ExchangeAlgorithm::OneFactor, false},
                         Cfg{"1-factor + merge-on-arrival overlap",
                             core::ExchangeAlgorithm::OneFactor, true},
                         Cfg{"hypercube store-and-forward",
                             core::ExchangeAlgorithm::Hypercube, false},
                         Cfg{"hierarchical node leaders",
                             core::ExchangeAlgorithm::Hierarchical, false}}) {
      core::SortConfig scfg;
      scfg.exchange = x.algo;
      scfg.overlap_merge = x.overlap;
      const auto r = run_sort(nodes, rpn, model_keys, real_keys, scfg, true);
      t.add_row({x.name, fmt(r.time)});
    }
    std::cout << "(5) data exchange algorithm:\n" << t.to_string();
  }
  return 0;
}
