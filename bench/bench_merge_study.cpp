// Sec. VI-E2: the parallel k-way merging study. Merge 16 GB of 32-bit keys
// (modelled; equal-size uniformly distributed chunks, the paper's setup)
// on one SuperMUC node, sweeping the number of threads and the number of
// chunks, for three strategies:
//
//   binary-merge  — OpenMP-task-style pairwise merge tree,
//   tournament    — GNU-parallel-style loser-tree k-way merge,
//   re-sort       — task-parallel sort of the concatenation (PSTL stand-in).
//
// Expected shape: two threads already help for few large chunks; many
// threads on many small chunks degrade (cache misses, cross-NUMA traffic);
// re-sorting outperforms merging in that regime — the observation that made
// the paper's implementation use a sort as its final "merge".
#include <iostream>

#include "baselines/parallel_merge_sort.h"
#include "bench_common.h"
#include "core/merge.h"
#include "workload/distributions.h"

namespace {

using namespace hds;
using runtime::Comm;
using runtime::Team;

/// Thread-parallel k-way merge on a Team: each rank merges its share of the
/// chunks with the given local strategy, then a pairwise tree combines rank
/// results (handoffs charged as intra-node traffic). Returns simulated
/// seconds.
double parallel_merge(int threads, usize chunks, usize n_real,
                      double data_scale, core::MergeStrategy strategy,
                      int numa_domains) {
  runtime::TeamConfig cfg;
  cfg.nranks = threads;
  cfg.machine = net::MachineModel::supermuc_node(
      std::max(threads, numa_domains), numa_domains);
  cfg.machine.ranks_per_node = threads;
  cfg.data_scale = data_scale;
  Team team(cfg);

  team.run([&](Comm& c) {
    // This rank's share of the chunks (block distribution).
    const usize per = chunks / threads;
    const usize extra = chunks % threads;
    const usize mine =
        per + (static_cast<usize>(c.rank()) < extra ? 1 : 0);
    const usize chunk_len = n_real / chunks;
    workload::GenConfig gen;
    gen.seed = 3;
    std::vector<u32> data;
    std::vector<usize> counts;
    for (usize k = 0; k < mine; ++k) {
      auto chunk = workload::generate_u32(gen, static_cast<int>(k),
                                          static_cast<int>(chunks + 1),
                                          chunk_len);
      std::sort(chunk.begin(), chunk.end());
      data.insert(data.end(), chunk.begin(), chunk.end());
      counts.push_back(chunk.size());
    }
    core::merge_chunks(c, data, std::span<const usize>(counts), strategy,
                       [](u32 v) { return v; });
    // Cache/DRAM contention of merging many small chunks (the Sec. VI-E2
    // "drastic performance degradation due to a high fraction of cache
    // misses"): in the co-merging libraries the study measured (GNU
    // parallel, OpenMP tasks) every thread touches ~`chunks` run streams;
    // past ~64 streams extractions miss, and the more threads stream from
    // DRAM concurrently the closer each element gets to full miss latency.
    if (chunks > 64) {
      const double excess =
          std::log2(static_cast<double>(chunks) / 64.0);
      const double thread_factor =
          std::clamp(static_cast<double>(threads) / 28.0, 0.15, 1.0);
      c.charge_seconds(18e-9 * excess * thread_factor *
                       c.cost().scaled(data.size()));
    }

    // Pairwise combine across ranks.
    for (int l = 1; static_cast<u64>(1ULL << l) <= next_pow2(static_cast<u64>(threads)); ++l) {
      const int step = 1 << l;
      const int half = step / 2;
      if (c.rank() % step == half) {
        c.send(c.rank() - half, l, std::span<const u32>(data));
        data.clear();
        data.shrink_to_fit();
      } else if (c.rank() % step == 0 && c.rank() + half < threads) {
        const auto theirs = c.recv<u32>(c.rank() + half, l);
        std::vector<u32> merged(data.size() + theirs.size());
        std::merge(data.begin(), data.end(), theirs.begin(), theirs.end(),
                   merged.begin());
        // Co-merge: the 2^l threads whose runs meet here split the merge by
        // merge-path partitioning (as GNU parallel / TBB do), so the
        // charged critical path is merged/2^l, not the serial merge.
        c.charge_merge_pass(std::max<usize>(1, merged.size() >> l));
        data = std::move(merged);
      }
    }
  });
  return team.stats().makespan_s;
}

/// Task-parallel re-sort of the concatenation (the paper's winner).
double parallel_resort(int threads, usize n_real, double data_scale,
                       int numa_domains) {
  runtime::TeamConfig cfg;
  cfg.nranks = threads;
  cfg.machine = net::MachineModel::supermuc_node(
      std::max(threads, numa_domains), numa_domains);
  cfg.machine.ranks_per_node = threads;
  cfg.data_scale = data_scale;
  Team team(cfg);
  team.run([&](Comm& c) {
    workload::GenConfig gen;
    gen.seed = 3;
    auto local = workload::generate_u32(gen, c.rank(), threads,
                                        n_real / threads);
    baselines::parallel_merge_sort(c, local);
  });
  return team.stats().makespan_s;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hds;
  const bench::Args args(argc, argv);
  const u64 model_keys = args.get_int("model-keys", u64{4} << 30);  // 16 GB
  const u64 real_keys = args.get_int("real-keys", u64{1} << 21);
  const double scale = static_cast<double>(model_keys) /
                       static_cast<double>(real_keys);
  const int numa_domains = 4;

  bench::print_header(
      "Parallel k-way merging study",
      "Sec. VI-E2; " + fmt_bytes(static_cast<double>(model_keys) * 4) +
          " of u32 keys (modelled), one SuperMUC node, threads x chunks");

  Table t({"threads", "chunks", "binary-merge t[s]", "tournament t[s]",
           "re-sort t[s]", "best"});
  for (int threads : {1, 2, 4, 8, 16, 28}) {
    for (usize chunks : {usize{2}, usize{16}, usize{128}, usize{1024}}) {
      if (chunks < static_cast<usize>(threads)) continue;
      const double bin =
          parallel_merge(threads, chunks, real_keys, scale,
                         core::MergeStrategy::BinaryTree, numa_domains);
      const double tour =
          parallel_merge(threads, chunks, real_keys, scale,
                         core::MergeStrategy::Tournament, numa_domains);
      const double sortt =
          parallel_resort(threads, real_keys, scale, numa_domains);
      const char* best = (bin <= tour && bin <= sortt) ? "binary"
                         : (tour <= sortt)             ? "tournament"
                                                       : "re-sort";
      t.add_row({std::to_string(threads), std::to_string(chunks), fmt(bin),
                 fmt(tour), fmt(sortt), best});
    }
    std::cerr << "  done: " << threads << " threads\n";
  }
  std::cout << t.to_string();
  std::cout << "\nExpected: merging wins for few large chunks; the "
               "task-parallel re-sort wins for many small chunks on many "
               "threads (Sec. VI-E2).\n";
  return 0;
}
