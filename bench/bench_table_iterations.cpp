// Sec. V-A claims, as a table: the number of histogramming iterations until
// all splitters converge is bounded by the key width (one bit per round),
// is independent of the processor count, and collapses for duplicate-heavy
// inputs once ties are resolved through counts.
//
// Paper reference points: 64-bit floats converge in 60-64 iterations,
// 32-bit floats in 25-35, uniform u64 in [0,1e9] in ~30; P does not matter.
// It also sweeps the PR 10 histogram modes (dense / sampled / hybrid) over
// distribution x epsilon x P cells and emits BENCH_histogram.json: per-cell
// rounds, probe volume, histogram traffic split sampled-vs-dense, and the
// histogram-phase / total simulated seconds. tools/validate_bench.py gates
// the hybrid mode's histogram-time win on the canonical cell.
#include <algorithm>
#include <fstream>
#include <iostream>

#include "bench_common.h"
#include "core/histogram_sort.h"
#include "core/multiselect.h"
#include "workload/distributions.h"

namespace {

using namespace hds;
using runtime::Comm;
using runtime::Team;

template <class T, class Gen>
usize median_iterations(int P, [[maybe_unused]] usize n_rank, int reps,
                        Gen generate) {
  std::vector<double> iters;
  for (int rep = 0; rep < reps; ++rep) {
    Team team({.nranks = P});
    usize it = 0;
    team.run([&](Comm& c) {
      std::vector<T> local = generate(c.rank(), P, rep);
      std::sort(local.begin(), local.end());
      std::vector<usize> targets(P - 1);
      const u64 N = c.allreduce_value<u64>(
          local.size(), [](u64 a, u64 b) { return a + b; });
      for (int b = 0; b + 1 < P; ++b)
        targets[b] = static_cast<usize>(N) * (b + 1) / P;
      const auto res = core::find_splitters(
          c, std::span<const T>(local.data(), local.size()),
          [](const T& v) { return v; }, std::span<const usize>(targets));
      if (c.rank() == 0) it = res.iterations;
    });
    iters.push_back(static_cast<double>(it));
  }
  return static_cast<usize>(median(iters));
}

// --- histogram-mode sweep (PR 10) ------------------------------------------

constexpr const char* mode_name(core::HistogramMode m) {
  switch (m) {
    case core::HistogramMode::Dense: return "dense";
    case core::HistogramMode::Sampled: return "sampled";
    case core::HistogramMode::Hybrid: return "hybrid";
  }
  return "?";
}

struct HistCell {
  std::string dist;
  double epsilon = 0.0;
  int nranks = 0;
  core::HistogramMode mode = core::HistogramMode::Dense;
  core::SortStats stats;
  double histogram_s = 0.0;
  double makespan_s = 0.0;
};

/// One full sort of `n_rank` u64 keys per rank on a multi-node SuperMUC
/// layout (8 ranks per node — histogramming pays inter-node collective
/// latency, the regime the hybrid mode targets). Aborts on unsorted output
/// so a perf sweep can never mask a correctness break.
HistCell run_hist_cell(int P, usize n_rank, double epsilon,
                       const workload::GenConfig& gen, const std::string& dist,
                       core::HistogramMode mode, bool trace = false) {
  runtime::TeamConfig tcfg{.nranks = P, .trace = trace};
  tcfg.machine = net::MachineModel::supermuc_phase2(std::max(1, P / 8), 8);
  Team team(tcfg);
  core::SortStats got;
  team.run([&](Comm& c) {
    std::vector<u64> local =
        workload::generate_u64(gen, c.rank(), P, n_rank);
    core::SortConfig cfg;
    cfg.epsilon = epsilon;
    cfg.histogram = mode;
    const core::SortStats stats = core::sort(c, local, cfg);
    if (!core::is_globally_sorted(
            c, std::span<const u64>(local.data(), local.size()),
            [](u64 v) { return v; })) {
      std::cerr << "FATAL: histogram sweep produced unsorted output ("
                << dist << ", " << mode_name(mode) << ")\n";
      std::abort();
    }
    if (c.rank() == 0) got = stats;
  });
  HistCell cell;
  cell.dist = dist;
  cell.epsilon = epsilon;
  cell.nranks = P;
  cell.mode = mode;
  cell.stats = got;
  cell.histogram_s = team.stats().phase_seconds(net::Phase::Histogram);
  cell.makespan_s = team.stats().makespan_s;
  return cell;
}

void write_hist_json(const std::string& path,
                     const std::vector<HistCell>& cells) {
  std::ofstream out(path);
  out << "[\n";
  for (usize i = 0; i < cells.size(); ++i) {
    const HistCell& c = cells[i];
    out << "  {\"type\": \"u64\", \"dist\": \"" << c.dist
        << "\", \"epsilon\": " << c.epsilon << ", \"nranks\": " << c.nranks
        << ", \"mode\": \"" << mode_name(c.mode)
        << "\", \"iterations\": " << c.stats.histogram_iterations
        << ", \"sampled_rounds\": " << c.stats.sampled_rounds
        << ", \"probes_total\": " << c.stats.splitter_probes
        << ", \"hist_bytes_sampled\": " << c.stats.hist_bytes_sampled
        << ", \"hist_bytes_dense\": " << c.stats.hist_bytes_dense
        << ", \"histogram_s\": " << c.histogram_s
        << ", \"makespan_s\": " << c.makespan_s << "}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "]\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hds;
  const bench::Args args(argc, argv);
  const usize n_rank = static_cast<usize>(args.get_int("keys-per-rank", 4096));
  const int reps = static_cast<int>(args.get_int("reps", 3));

  bench::print_header(
      "Splitter convergence: histogram iterations by key type and P",
      "Sec. V-A (iteration count bounded by key width, independent of P)");

  const std::vector<int> ranks = {4, 16, 64};

  struct Case {
    std::string name;
    std::string paper;
    std::function<usize(int)> run;  // P -> median iterations
  };

  workload::GenConfig uni_1e9;
  uni_1e9.hi = 1'000'000'000;
  workload::GenConfig uni_full;
  uni_full.hi = ~u64{0} >> 1;
  workload::GenConfig norm;
  norm.dist = workload::Dist::Normal;
  workload::GenConfig dup;
  dup.dist = workload::Dist::FewDistinct;
  dup.alphabet = 8;

  std::vector<Case> cases;
  cases.push_back(
      {"u64 uniform [0,1e9] (~2^30)", "~30",
       [&](int P) {
         return median_iterations<u64>(P, n_rank, reps,
                                       [&](int r, int p, int rep) {
                                         auto g = uni_1e9;
                                         g.seed = 100 + rep;
                                         return workload::generate_u64(
                                             g, r, p, n_rank);
                                       });
       }});
  cases.push_back(
      {"u64 uniform full range", "~63",
       [&](int P) {
         return median_iterations<u64>(P, n_rank, reps,
                                       [&](int r, int p, int rep) {
                                         auto g = uni_full;
                                         g.seed = 200 + rep;
                                         return workload::generate_u64(
                                             g, r, p, n_rank);
                                       });
       }});
  cases.push_back(
      {"u32 uniform full range", "~31",
       [&](int P) {
         return median_iterations<u32>(
             P, n_rank, reps, [&](int r, [[maybe_unused]] int p, int rep) {
               workload::GenConfig g;
               g.hi = 0xffffffffULL;
               g.seed = 300 + rep;
               return workload::generate_u32(g, r, p, n_rank);
             });
       }});
  cases.push_back(
      {"f64 normal(0,1)", "60-64",
       [&](int P) {
         return median_iterations<double>(
             P, n_rank, reps, [&](int r, [[maybe_unused]] int p, int rep) {
               auto g = norm;
               g.seed = 400 + rep;
               return workload::generate_f64(g, r, p, n_rank);
             });
       }});
  cases.push_back(
      {"f32 uniform [0,1)", "25-35",
       [&](int P) {
         return median_iterations<float>(
             P, n_rank, reps, [&](int r, [[maybe_unused]] int p, int rep) {
               Xoshiro256 rng(hash_mix(500 + rep, r));
               std::vector<float> v(n_rank);
               for (auto& x : v) x = static_cast<float>(rng.uniform01());
               return v;
             });
       }});
  cases.push_back(
      // Gappy key spaces still bisect down to the exact key value (~key
      // width); the ties themselves are split by counts in the exchange
      // (Alg. 4), so duplicates never block convergence.
      {"u64 few-distinct (8 values)", "key-width bounded",
       [&](int P) {
         return median_iterations<u64>(P, n_rank, reps,
                                       [&](int r, int p, int rep) {
                                         auto g = dup;
                                         g.seed = 600 + rep;
                                         return workload::generate_u64(
                                             g, r, p, n_rank);
                                       });
       }});

  if (!args.has("skip-table")) {
    Table t({"key type / distribution", "paper", "iters P=4", "iters P=16",
             "iters P=64"});
    for (const auto& c : cases) {
      std::vector<std::string> row{c.name, c.paper};
      for (int P : ranks) row.push_back(std::to_string(c.run(P)));
      t.add_row(std::move(row));
      std::cerr << "  done: " << c.name << "\n";
    }
    std::cout << t.to_string();
    std::cout << "\nNote: iteration counts must be (nearly) constant across "
                 "the P columns — the bisection depth depends on the key "
                 "range, not the processor count.\n";
  }

  // --- histogram-mode sweep (PR 10): dense vs sampled vs hybrid ------------
  const std::string out_path =
      args.get_string("out", "BENCH_histogram.json");
  const usize grid_n = static_cast<usize>(
      args.get_int("grid-keys-per-rank", static_cast<i64>(n_rank)));
  workload::GenConfig zipf;
  zipf.dist = workload::Dist::Zipf;
  const std::vector<std::pair<std::string, workload::GenConfig>> dists = {
      {"uniform", uni_1e9}, {"zipf", zipf}, {"fewdistinct", dup}};
  const std::vector<double> epsilons = {0.0, 0.01, 0.1};
  const std::vector<int> grid_ranks = {16, 64};
  const std::vector<core::HistogramMode> modes = {
      core::HistogramMode::Dense, core::HistogramMode::Sampled,
      core::HistogramMode::Hybrid};

  std::vector<HistCell> cells;
  Table ht({"dist", "eps", "P", "mode", "iters (sampled)", "probes",
            "hist KiB s/d", "hist ms", "makespan ms"});
  for (const auto& [dname, dgen] : dists) {
    for (double eps : epsilons) {
      for (int P : grid_ranks) {
        for (core::HistogramMode m : modes) {
          auto g = dgen;
          g.seed = 42;
          HistCell c = run_hist_cell(P, grid_n, eps, g, dname, m);
          ht.add_row(
              {dname, fmt(eps, 2), std::to_string(P), mode_name(m),
               std::to_string(c.stats.histogram_iterations) + " (" +
                   std::to_string(c.stats.sampled_rounds) + ")",
               std::to_string(c.stats.splitter_probes),
               fmt(static_cast<double>(c.stats.hist_bytes_sampled) / 1024.0,
                   1) +
                   " / " +
                   fmt(static_cast<double>(c.stats.hist_bytes_dense) / 1024.0,
                       1),
               fmt(c.histogram_s * 1e3, 3),
               fmt(c.makespan_s * 1e3, 3)});
          cells.push_back(std::move(c));
        }
      }
    }
    std::cerr << "  done: histogram sweep " << dname << "\n";
  }
  std::cout << "\nHistogram-mode sweep (PR 10): hybrid must cut "
               "histogram-phase time and probe volume vs dense, never "
               "regressing the makespan.\n"
            << ht.to_string();
  write_hist_json(out_path, cells);
  std::cout << "wrote " << out_path << " (" << cells.size() << " cells)\n";

  // Ledger for the perf-history harness: re-run the canonical gated cell
  // (uniform u64, P=16, eps=0.01, hybrid) traced, and record the sweep's
  // headline numbers as scalar cells.
  if (args.has("ledger")) {
    auto find_cell = [&](const char* mode) -> const HistCell& {
      for (const HistCell& c : cells)
        if (c.dist == "uniform" && c.epsilon == 0.01 && c.nranks == 16 &&
            std::string(mode_name(c.mode)) == mode)
          return c;
      std::cerr << "FATAL: gated histogram cell missing from sweep\n";
      std::abort();
    };
    const HistCell& dense = find_cell("dense");
    const HistCell& hybrid = find_cell("hybrid");
    auto g = uni_1e9;
    g.seed = 42;
    runtime::TeamConfig tcfg{.nranks = 16, .trace = true};
    tcfg.machine = net::MachineModel::supermuc_phase2(2, 8);
    Team team(tcfg);
    team.run([&](Comm& c) {
      std::vector<u64> local = workload::generate_u64(g, c.rank(), 16, grid_n);
      core::SortConfig cfg;
      cfg.epsilon = 0.01;
      cfg.histogram = core::HistogramMode::Hybrid;
      (void)core::sort(c, local, cfg);
    });
    bench::write_ledger_if_requested(
        args, team, "bench_table_iterations",
        static_cast<u64>(grid_n) * 16,
        {{"dist", "uniform"},
         {"epsilon", "0.01"},
         {"histogram", "hybrid"},
         {"oversample", "8"}},
        {{"sim_hist_dense_s", dense.histogram_s},
         {"sim_hist_hybrid_s", hybrid.histogram_s},
         {"sim_hist_speedup",
          hybrid.histogram_s > 0.0 ? dense.histogram_s / hybrid.histogram_s
                                   : 0.0},
         {"sim_makespan_hybrid_s", hybrid.makespan_s}});
  }
  return 0;
}
