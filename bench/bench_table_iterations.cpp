// Sec. V-A claims, as a table: the number of histogramming iterations until
// all splitters converge is bounded by the key width (one bit per round),
// is independent of the processor count, and collapses for duplicate-heavy
// inputs once ties are resolved through counts.
//
// Paper reference points: 64-bit floats converge in 60-64 iterations,
// 32-bit floats in 25-35, uniform u64 in [0,1e9] in ~30; P does not matter.
#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "core/multiselect.h"
#include "workload/distributions.h"

namespace {

using namespace hds;
using runtime::Comm;
using runtime::Team;

template <class T, class Gen>
usize median_iterations(int P, [[maybe_unused]] usize n_rank, int reps,
                        Gen generate) {
  std::vector<double> iters;
  for (int rep = 0; rep < reps; ++rep) {
    Team team({.nranks = P});
    usize it = 0;
    team.run([&](Comm& c) {
      std::vector<T> local = generate(c.rank(), P, rep);
      std::sort(local.begin(), local.end());
      std::vector<usize> targets(P - 1);
      const u64 N = c.allreduce_value<u64>(
          local.size(), [](u64 a, u64 b) { return a + b; });
      for (int b = 0; b + 1 < P; ++b)
        targets[b] = static_cast<usize>(N) * (b + 1) / P;
      const auto res = core::find_splitters(
          c, std::span<const T>(local.data(), local.size()),
          [](const T& v) { return v; }, std::span<const usize>(targets));
      if (c.rank() == 0) it = res.iterations;
    });
    iters.push_back(static_cast<double>(it));
  }
  return static_cast<usize>(median(iters));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hds;
  const bench::Args args(argc, argv);
  const usize n_rank = static_cast<usize>(args.get_int("keys-per-rank", 4096));
  const int reps = static_cast<int>(args.get_int("reps", 3));

  bench::print_header(
      "Splitter convergence: histogram iterations by key type and P",
      "Sec. V-A (iteration count bounded by key width, independent of P)");

  const std::vector<int> ranks = {4, 16, 64};

  struct Case {
    std::string name;
    std::string paper;
    std::function<usize(int)> run;  // P -> median iterations
  };

  workload::GenConfig uni_1e9;
  uni_1e9.hi = 1'000'000'000;
  workload::GenConfig uni_full;
  uni_full.hi = ~u64{0} >> 1;
  workload::GenConfig norm;
  norm.dist = workload::Dist::Normal;
  workload::GenConfig dup;
  dup.dist = workload::Dist::FewDistinct;
  dup.alphabet = 8;

  std::vector<Case> cases;
  cases.push_back(
      {"u64 uniform [0,1e9] (~2^30)", "~30",
       [&](int P) {
         return median_iterations<u64>(P, n_rank, reps,
                                       [&](int r, int p, int rep) {
                                         auto g = uni_1e9;
                                         g.seed = 100 + rep;
                                         return workload::generate_u64(
                                             g, r, p, n_rank);
                                       });
       }});
  cases.push_back(
      {"u64 uniform full range", "~63",
       [&](int P) {
         return median_iterations<u64>(P, n_rank, reps,
                                       [&](int r, int p, int rep) {
                                         auto g = uni_full;
                                         g.seed = 200 + rep;
                                         return workload::generate_u64(
                                             g, r, p, n_rank);
                                       });
       }});
  cases.push_back(
      {"u32 uniform full range", "~31",
       [&](int P) {
         return median_iterations<u32>(
             P, n_rank, reps, [&](int r, [[maybe_unused]] int p, int rep) {
               workload::GenConfig g;
               g.hi = 0xffffffffULL;
               g.seed = 300 + rep;
               return workload::generate_u32(g, r, p, n_rank);
             });
       }});
  cases.push_back(
      {"f64 normal(0,1)", "60-64",
       [&](int P) {
         return median_iterations<double>(
             P, n_rank, reps, [&](int r, [[maybe_unused]] int p, int rep) {
               auto g = norm;
               g.seed = 400 + rep;
               return workload::generate_f64(g, r, p, n_rank);
             });
       }});
  cases.push_back(
      {"f32 uniform [0,1)", "25-35",
       [&](int P) {
         return median_iterations<float>(
             P, n_rank, reps, [&](int r, [[maybe_unused]] int p, int rep) {
               Xoshiro256 rng(hash_mix(500 + rep, r));
               std::vector<float> v(n_rank);
               for (auto& x : v) x = static_cast<float>(rng.uniform01());
               return v;
             });
       }});
  cases.push_back(
      // Gappy key spaces still bisect down to the exact key value (~key
      // width); the ties themselves are split by counts in the exchange
      // (Alg. 4), so duplicates never block convergence.
      {"u64 few-distinct (8 values)", "key-width bounded",
       [&](int P) {
         return median_iterations<u64>(P, n_rank, reps,
                                       [&](int r, int p, int rep) {
                                         auto g = dup;
                                         g.seed = 600 + rep;
                                         return workload::generate_u64(
                                             g, r, p, n_rank);
                                       });
       }});

  Table t({"key type / distribution", "paper", "iters P=4", "iters P=16",
           "iters P=64"});
  for (const auto& c : cases) {
    std::vector<std::string> row{c.name, c.paper};
    for (int P : ranks) row.push_back(std::to_string(c.run(P)));
    t.add_row(std::move(row));
    std::cerr << "  done: " << c.name << "\n";
  }
  std::cout << t.to_string();
  std::cout << "\nNote: iteration counts must be (nearly) constant across "
               "the P columns — the bisection depth depends on the key "
               "range, not the processor count.\n";
  return 0;
}
