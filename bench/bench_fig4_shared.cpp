// Fig. 4: shared-memory strong scaling on one SuperMUC node — DASH
// (histogram sort run rank-per-core) vs Intel Parallel STL (TBB task merge
// sort) vs an OpenMP task merge sort, 5 GB of 64-bit doubles, normally
// distributed, 7..28 cores = 1..4 NUMA domains.
//
// Expected shape (Sec. VI-D): the tuned merge sort wins inside one NUMA
// domain; once data must cross NUMA boundaries, moving it exactly once
// (histogram sort's single exchange) beats the log(p)-pass merge tree.
#include <iostream>

#include "baselines/parallel_merge_sort.h"
#include "bench_common.h"
#include "core/histogram_sort.h"
#include "workload/distributions.h"

int main(int argc, char** argv) {
  using namespace hds;
  using runtime::Comm;
  using runtime::Team;
  const bench::Args args(argc, argv);
  const int reps = static_cast<int>(args.get_int("reps", 3));
  const u64 model_total = args.get_int("model-keys", 671088640);  // 5 GB f64
  const u64 real_total = args.get_int("real-keys", u64{1} << 21);

  bench::print_header(
      "Shared-memory strong scaling on one node",
      "Fig. 4; 5 GB normal(0,1) doubles in [-1e6,1e6], 7..28 cores "
      "(1..4 NUMA domains)");

  Table fig4({"cores", "NUMA domains", "DASH t[s]", "PSTL t[s]",
              "OpenMP t[s]", "winner"});

  for (int domains = 1; domains <= 4; ++domains) {
    const int cores = 7 * domains;
    runtime::TeamConfig cfg;
    cfg.nranks = cores;
    cfg.machine = net::MachineModel::supermuc_node(cores, domains);
    cfg.data_scale = static_cast<double>(model_total) /
                     static_cast<double>(real_total);
    const usize n_rank = static_cast<usize>(real_total / cores);

    workload::GenConfig gen;
    gen.dist = workload::Dist::Normal;
    gen.mean = 0.0;
    gen.stddev = 1.0;

    auto run_sorter = [&](auto sorter) {
      Team team(cfg);
      return bench::measure(reps, [&](int rep) {
        workload::GenConfig g = gen;
        g.seed = 5 + rep;
        team.run([&](Comm& c) {
          auto local = workload::generate_f64(g, c.rank(), c.size(), n_rank);
          // Scale values into the paper's interval [-1e6, 1e6].
          for (auto& v : local) v *= 1e6 / 4.0;
          sorter(c, local);
        });
        return team.stats().makespan_s;
      }).median;
    };

    const double t_dash = run_sorter([](Comm& c, std::vector<double>& v) {
      core::SortConfig scfg;
      scfg.merge = core::MergeStrategy::Tournament;  // move data once
      core::sort(c, v, scfg);
    });
    const double t_pstl = run_sorter([](Comm& c, std::vector<double>& v) {
      baselines::parallel_merge_sort(c, v);
    });
    const double t_omp = run_sorter([](Comm& c, std::vector<double>& v) {
      // The OpenMP task merge sort: same structure, heavier task overhead
      // and slightly worse merge constants than the tuned TBB version.
      baselines::PMergeSortConfig mcfg;
      mcfg.task_alpha_s = 2.0e-6;
      mcfg.merge_s_per_elem = 1.1e-9;
      mcfg.sort_s_per_elem_log = 1.6e-9;
      baselines::parallel_merge_sort(c, v, mcfg);
    });

    const char* winner = (t_dash < t_pstl && t_dash < t_omp) ? "DASH"
                         : (t_pstl < t_omp)                  ? "PSTL"
                                                             : "OpenMP";
    fig4.add_row({std::to_string(cores), std::to_string(domains),
                  fmt(t_dash), fmt(t_pstl), fmt(t_omp), winner});
    std::cerr << "  done: " << cores << " cores\n";
  }

  std::cout << fig4.to_string();
  std::cout << "\nExpected crossover: PSTL leads on 1 NUMA domain; DASH "
               "leads once data crosses NUMA boundaries (paper Fig. 4).\n";
  return 0;
}
