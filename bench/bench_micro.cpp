// Microbenchmarks (google-benchmark) for the kernels of the sort: local
// histogramming by binary search, weighted median, 3-way partitioning,
// loser-tree merging, and the runtime's collectives at small rank counts.
// These measure real wall-clock time of this machine (not simulated time).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <numeric>

#include "common/rng.h"
#include "core/local_sort.h"
#include "core/merge.h"
#include "core/selection.h"
#include "runtime/comm.h"
#include "runtime/team.h"
#include "workload/distributions.h"

namespace {

using namespace hds;

std::vector<u64> sorted_keys(usize n, u64 seed) {
  Xoshiro256 rng(seed);
  std::vector<u64> v(n);
  for (auto& x : v) x = rng();
  std::sort(v.begin(), v.end());
  return v;
}

void BM_LocalHistogram(benchmark::State& state) {
  const usize n = state.range(0);
  const usize probes = state.range(1);
  const auto keys = sorted_keys(n, 1);
  Xoshiro256 rng(2);
  std::vector<u64> ps(probes);
  for (auto& p : ps) p = rng();
  auto id = [](u64 v) { return v; };
  for (auto _ : state) {
    u64 acc = 0;
    for (u64 p : ps) {
      acc += core::count_below(std::span<const u64>(keys), p, id);
      acc += core::count_below_equal(std::span<const u64>(keys), p, id);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * probes * 2);
}
BENCHMARK(BM_LocalHistogram)
    ->Args({1 << 16, 15})
    ->Args({1 << 20, 15})
    ->Args({1 << 20, 255});

void BM_WeightedMedian(benchmark::State& state) {
  const usize n = state.range(0);
  Xoshiro256 rng(3);
  std::vector<std::pair<u64, double>> sample;
  for (usize i = 0; i < n; ++i)
    sample.emplace_back(rng(), rng.uniform01() + 0.01);
  for (auto _ : state) {
    auto copy = sample;
    benchmark::DoNotOptimize(core::weighted_median(std::move(copy)));
  }
}
BENCHMARK(BM_WeightedMedian)->Arg(16)->Arg(256)->Arg(4096);

void BM_ThreeWayPartition(benchmark::State& state) {
  const usize n = state.range(0);
  Xoshiro256 rng(4);
  std::vector<u64> base(n);
  for (auto& x : base) x = rng() % 1000;
  for (auto _ : state) {
    auto v = base;
    const u64 pivot = 500;
    auto* mid1 = std::partition(v.data(), v.data() + n,
                                [&](u64 x) { return x < pivot; });
    auto* mid2 = std::partition(mid1, v.data() + n,
                                [&](u64 x) { return x <= pivot; });
    benchmark::DoNotOptimize(mid2);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ThreeWayPartition)->Arg(1 << 16)->Arg(1 << 20);

void BM_LoserTreeMerge(benchmark::State& state) {
  const usize k = state.range(0);
  const usize per = state.range(1);
  std::vector<std::vector<u64>> chunks(k);
  Xoshiro256 rng(5);
  for (auto& c : chunks) {
    c.resize(per);
    for (auto& x : c) x = rng();
    std::sort(c.begin(), c.end());
  }
  auto less = [](u64 a, u64 b) { return a < b; };
  for (auto _ : state) {
    std::vector<std::span<const u64>> runs(chunks.begin(), chunks.end());
    core::LoserTree<u64, decltype(less)> tree(std::move(runs), less);
    u64 acc = 0;
    while (!tree.empty()) acc ^= tree.pop();
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * k * per);
}
BENCHMARK(BM_LoserTreeMerge)->Args({4, 1 << 14})->Args({64, 1 << 10});

void BM_StdSortReference(benchmark::State& state) {
  const usize n = state.range(0);
  Xoshiro256 rng(6);
  std::vector<u64> base(n);
  for (auto& x : base) x = rng();
  for (auto _ : state) {
    auto v = base;
    std::sort(v.begin(), v.end());
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_StdSortReference)->Arg(1 << 16)->Arg(1 << 20);

void BM_Allreduce(benchmark::State& state) {
  const int P = static_cast<int>(state.range(0));
  const usize n = state.range(1);
  runtime::Team team({.nranks = P});
  for (auto _ : state) {
    team.run([&](runtime::Comm& c) {
      std::vector<u64> in(n, c.rank()), out(n);
      c.allreduce(in.data(), out.data(), n, std::plus<>{});
      benchmark::DoNotOptimize(out.data());
    });
  }
}
BENCHMARK(BM_Allreduce)->Args({4, 64})->Args({16, 64})->Args({16, 4096})->Iterations(30);

void BM_Alltoallv(benchmark::State& state) {
  const int P = static_cast<int>(state.range(0));
  const usize per = state.range(1);
  runtime::Team team({.nranks = P});
  for (auto _ : state) {
    team.run([&](runtime::Comm& c) {
      std::vector<u64> data(per * P, c.rank());
      std::vector<usize> counts(P, per);
      auto out = c.alltoallv(std::span<const u64>(data), counts);
      benchmark::DoNotOptimize(out.data());
    });
  }
}
BENCHMARK(BM_Alltoallv)->Args({4, 1 << 12})->Args({16, 1 << 10})->Iterations(30);

}  // namespace

BENCHMARK_MAIN();
